// Package restore is a Go reproduction of ReStore (Elghandour & Aboulnaga,
// PVLDB 5(6), 2012): a system that stores the outputs of MapReduce jobs
// produced by a Pig-like dataflow engine and reuses them to answer future
// queries, either as whole jobs or as materialized sub-jobs.
//
// The package wires together the full stack built in internal/: a Pig Latin
// dialect front end, a logical plan builder, a MapReduce compiler, a
// from-scratch MapReduce engine over a simulated DFS, a cluster cost model,
// and the ReStore core (plan matcher/rewriter, sub-job enumerator, and
// repository manager).
//
// Basic usage:
//
//	sys := restore.New()
//	// load data into sys.FS(), then:
//	res, err := sys.Execute(`
//	    A = load 'page_views' as (user, timestamp, est_revenue:double);
//	    B = foreach A generate user, est_revenue;
//	    store B into 'out/projected';
//	`)
//
// Executing related queries afterwards reuses the stored intermediate
// results automatically; Result.Rewrites reports what was reused.
package restore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mapred"
	"repro/internal/mrcompile"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/piglatin"
	"repro/internal/types"
)

// Heuristic re-exports the sub-job enumeration heuristics of §4.
type Heuristic = core.Heuristic

// Heuristic values.
const (
	// HeuristicOff disables sub-job materialization.
	HeuristicOff = core.HeuristicOff
	// HeuristicConservative materializes Project/Filter outputs.
	HeuristicConservative = core.HeuristicConservative
	// HeuristicAggressive also materializes Join/Group/CoGroup outputs
	// (the paper's default).
	HeuristicAggressive = core.HeuristicAggressive
	// HeuristicAll materializes after every operator ("No Heuristic").
	HeuristicAll = core.HeuristicAll
)

// Policy re-exports the repository management policy of §5.
type Policy = core.Policy

// DefaultReduceTasks re-exports the engine's default reduce partition count
// (the -reduce-tasks flag default).
const DefaultReduceTasks = mapred.DefaultReduceTasks

// System is a ReStore deployment: a DFS, a cluster model, a MapReduce
// engine, and the shared repository that persists across queries.
//
// Concurrency contract: every method is safe for concurrent use. Prepare
// (parse / plan / compile) runs lock-free, so many clients can prepare
// queries in parallel. ExecutePrepared admits executions through a
// path-lease table keyed by each Prepared query's declared read and write
// sets (Prepared.Access): path-disjoint workflows execute fully in
// parallel, while workflows whose write sets overlap another's reads or
// writes wait their turn in FIFO order. Stored outputs a rewrite decides
// to reuse are pinned in the repository for the duration of the execution,
// so a concurrent workflow's eviction can never delete a file mid-reuse.
// SaveState, SaveRepository, LoadRepositoryFrom, and SetDataScale take a
// universal (write-set-universal) lease: they drain every in-flight
// execution and block new admissions, which is what makes a checkpoint a
// consistent repository+DFS pair. Explain and the read-only accessors only
// take the repository's and DFS's own read locks.
type System struct {
	fs      *dfs.FS
	cluster *cluster.Config
	engine  *mapred.Engine
	// backend executes compiled workflows. It defaults to the in-process
	// engine; WithBackend/SetBackend swap in a remote coordinator (the
	// fleet). Everything above this boundary — planning, rewriting,
	// admission, repository registration — is backend-agnostic.
	backend Backend
	// repo is an atomic pointer so lock-free readers (Explain, Repository)
	// stay safe across a LoadRepositoryFrom swap.
	repo      atomic.Pointer[core.Repository]
	selector  *core.Selector
	heuristic Heuristic
	reuse     bool
	register  bool
	// registerFinals additionally stores user-named query outputs (the
	// Facebook keep-results-for-7-days mode); by default only workflow
	// intermediates and injected sub-jobs enter the repository.
	registerFinals bool

	// plans is the bounded LRU prepared-plan cache behind PrepareCached;
	// nil when disabled (WithPlanCache(0)). Cached compiled workflows are
	// immutable templates — clones re-mint only the per-query tmp namespace
	// and access set — so the cache needs no invalidation: plans are a pure
	// function of the script text, independent of data and repository state.
	plans *planCache

	// leases admits mutating operations by declared read/write path sets;
	// parsing, planning, and compilation happen outside it. Disjoint
	// executions hold leases concurrently; universal operations
	// (checkpoints, repository swaps) drain them. Split into one table per
	// shard (shardkey routing, same as the DFS namespace): disjoint
	// executions on different shards never touch the same lease mutex, and
	// universal operations become the cross-shard barrier, acquiring every
	// table in ascending order.
	leases *shardedLeases
	// shards is the execution-core shard count (DFS namespace, lease
	// tables, repository path indexes, WAL streams, GC scanners). 1 — the
	// default — is the single-domain oracle configuration.
	shards int
	// seq is the workflow sequence: assigned right after admission (lease
	// grant) so repository statistics (CreatedSeq, LastUsedSeq) and the §5
	// eviction window see sequence numbers ordered along every conflict
	// chain (disjoint concurrent queries may interleave theirs), even when
	// many queries prepare concurrently. prep numbers the
	// restore/tmp/qN compile namespaces (prepare order, lock-free) and
	// subPath the restore/sub/sN injection outputs.
	seq     atomic.Int64
	prep    atomic.Int64
	subPath atomic.Int64
	stats   core.Stats

	// obs records stage latencies and lease gauges; nil (or obs.Disabled)
	// makes every record a single-branch no-op, so library users who never
	// call SetObserver pay nothing. Shared with leases.obs — set both via
	// SetObserver before traffic, never mid-stream.
	obs *obs.Registry

	// fullSweep requests one naive full-repository eviction sweep before
	// the next query. Set at construction and by AdoptRepository: an
	// adopted repository may reference files mutated or missing in ways the
	// DFS mutation feed never saw (a repository loaded without its DFS
	// snapshot), so the first query after a swap re-validates everything.
	// Afterwards Rule-4 work is index-driven: each query checks only the
	// entries touching the paths mutated since the previous check
	// (dfs.TakeEvictionDirty -> Selector.EvictPaths).
	fullSweep atomic.Bool
}

// Option configures a System.
type Option func(*System)

// WithClusterConfig replaces the default 15-node cluster model.
func WithClusterConfig(c *cluster.Config) Option {
	return func(s *System) { s.cluster = c }
}

// WithHeuristic selects the sub-job enumeration heuristic (default
// Aggressive, as in the paper's experiments).
func WithHeuristic(h Heuristic) Option {
	return func(s *System) { s.heuristic = h }
}

// WithReuse toggles plan matching and rewriting (default on). Disabling it
// yields the "No Data Reuse" baseline of §7.
func WithReuse(on bool) Option {
	return func(s *System) { s.reuse = on }
}

// WithRegistration toggles storing executed job outputs in the repository
// (default on).
func WithRegistration(on bool) Option {
	return func(s *System) { s.register = on }
}

// WithRegisterFinalOutputs additionally registers user-named outputs, not
// just intermediates and sub-jobs. Reusing such an entry reads a path other
// queries may overwrite, so the rewriter extends the running query's lease
// with that path (skipping the reuse if a conflicting writer is in flight),
// and eviction invalidates the entry once the file's version moves.
func WithRegisterFinalOutputs(on bool) Option {
	return func(s *System) { s.registerFinals = on }
}

// WithPolicy sets the repository keep/evict policy (§5). The default keeps
// every candidate, matching the paper's experimental setup.
func WithPolicy(p Policy) Option {
	return func(s *System) { s.selector.Policy = p }
}

// WithReducePartitions sets the number of real reduce partitions the engine
// hash-partitions each shuffle into (not the simulated reduce task count).
func WithReducePartitions(n int) Option {
	return func(s *System) { s.engine.ReduceTasks = n }
}

// WithMapParallelism bounds how many map tasks the engine runs
// concurrently per job; n <= 0 (the default) selects
// runtime.GOMAXPROCS(0).
func WithMapParallelism(n int) Option {
	return func(s *System) { s.engine.MapParallelism = n }
}

// WithReduceParallelism bounds how many reduce partitions the engine runs
// concurrently per job; n <= 0 (the default) selects
// runtime.GOMAXPROCS(0). Reduce partitions are independent, so the setting
// changes wall clock only, never results.
func WithReduceParallelism(n int) Option {
	return func(s *System) { s.engine.ReduceParallelism = n }
}

// WithJobLatency emulates a remote cluster: each executed job additionally
// waits scale * its simulated time in real wall clock. In the paper's
// deployment the daemon orchestrates minutes-long Hadoop jobs; with this
// set, benchmarks reproduce that regime — concurrent path-disjoint
// execution overlaps the cluster waits a FIFO scheduler would serialize.
// 0 (the default) disables the emulation.
func WithJobLatency(scale float64) Option {
	return func(s *System) { s.engine.LatencyScale = scale }
}

// WithBackend installs the execution backend the System submits compiled
// workflows to. The default is the System's own in-process engine (which a
// nil b restores). Backends that need the System's final FS or repository —
// built only after New returns — can use SetBackend instead.
func WithBackend(b Backend) Option {
	return func(s *System) { s.backend = b }
}

// WithPlanCache sizes the prepared-plan cache behind PrepareCached: how
// many canonical compiled plans are retained (LRU). n <= 0 disables the
// cache, making PrepareCached exactly Prepare. The default is
// DefaultPlanCacheSize.
func WithPlanCache(n int) Option {
	return func(s *System) {
		if n <= 0 {
			s.plans = nil
			return
		}
		s.plans = newPlanCache(n)
	}
}

// DefaultPlanCacheSize is the prepared-plan cache capacity a System is
// constructed with (override with WithPlanCache).
const DefaultPlanCacheSize = 256

// WithObserver installs a telemetry registry at construction; equivalent to
// calling SetObserver before any traffic.
func WithObserver(r *obs.Registry) Option {
	return func(s *System) { s.SetObserver(r) }
}

// WithShards splits the execution core — DFS namespace, lease tables, and
// repository path-keyed state — into n independently locked shards, routed
// by shardkey (a path's whole subtree colocates; universal operations
// barrier across all shards in canonical order). n <= 0 selects
// runtime.GOMAXPROCS(0). The default is 1: a single-shard System is
// behaviorally identical to the pre-sharding implementation and serves as
// the differential-test oracle for the sharded configurations. Reuse
// semantics are independent of n — the match/fingerprint index is shared at
// every shard count.
func WithShards(n int) Option {
	return func(s *System) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.shards = n
	}
}

// New creates a System with an empty DFS and repository.
func New(opts ...Option) *System {
	fs := dfs.New()
	clus := cluster.Default()
	s := &System{
		fs:        fs,
		cluster:   clus,
		engine:    mapred.NewEngine(fs, clus),
		heuristic: HeuristicAggressive,
		reuse:     true,
		register:  true,
		plans:     newPlanCache(DefaultPlanCacheSize),
		shards:    1,
	}
	s.repo.Store(core.NewRepository())
	s.selector = &core.Selector{Repo: s.repo.Load(), FS: fs, Cluster: clus, Policy: core.DefaultPolicy()}
	s.fullSweep.Store(true)
	for _, opt := range opts {
		opt(s)
	}
	// Options may replace the cluster config; keep the engine and selector
	// pointed at the final one.
	s.engine.Cluster = s.cluster
	s.selector.Cluster = s.cluster
	if s.shards != 1 {
		// WithShards: rebuild the empty storage domains at the requested
		// shard count (nothing has been written yet — options only set
		// configuration) and repoint every component that captured the
		// originals.
		s.fs = dfs.NewSharded(s.shards)
		s.engine.FS = s.fs
		s.selector.FS = s.fs
		s.repo.Store(core.NewShardedRepository(s.shards))
		s.selector.Repo = s.repo.Load()
	}
	s.leases = newShardedLeases(s.shards)
	s.leases.obs = s.obs // WithObserver may have run before leases existed
	if s.backend == nil {
		s.backend = s.engine
	}
	return s
}

// SetBackend swaps the execution backend after construction (nil restores
// the in-process engine). Remote coordinators are wired here rather than via
// WithBackend because they need the System's final FS and repository, which
// exist only once New has applied every option. Call it before submitting
// traffic — installation is not synchronized against in-flight executions.
func (s *System) SetBackend(b Backend) {
	if b == nil {
		b = s.engine
	}
	s.backend = b
}

// Backend returns the installed execution backend.
func (s *System) Backend() Backend { return s.backend }

// Shards returns the execution-core shard count the System was built with.
func (s *System) Shards() int { return s.shards }

// SetObserver installs the telemetry registry the System (and its lease
// table) records stage latencies, lease waits, and gauges into. Call it
// before submitting traffic — installation is not synchronized against
// in-flight executions. nil or obs.Disabled turns recording off.
func (s *System) SetObserver(r *obs.Registry) {
	s.obs = r
	if s.leases != nil {
		s.leases.obs = r
	}
}

// Observer returns the installed telemetry registry (nil when none was
// set). The restored daemon uses it to render GET /metrics.
func (s *System) Observer() *obs.Registry { return s.obs }

// FS exposes the simulated distributed file system (for loading data sets
// and reading results).
func (s *System) FS() *dfs.FS { return s.fs }

// Cluster exposes the cost-model configuration.
func (s *System) Cluster() *cluster.Config { return s.cluster }

// Engine exposes the MapReduce engine (for inspection and tests asserting
// option/flag wiring).
func (s *System) Engine() *mapred.Engine { return s.engine }

// Repository exposes the ReStore repository (for inspection and tooling).
func (s *System) Repository() *core.Repository { return s.repo.Load() }

// JobReport describes one executed MapReduce job.
type JobReport struct {
	JobID         string
	InputBytes    int64
	ShuffleBytes  int64
	OutputBytes   int64
	InjectedBytes int64
	SimulatedTime time.Duration
}

// Result reports one executed query.
type Result struct {
	// Seq is the workflow sequence number assigned when the query was
	// admitted for execution. Sequence numbers are unique, and two
	// conflicting queries (which execute one after the other) always see
	// them in execution order; concurrently admitted disjoint queries may
	// draw theirs in either order.
	Seq int64
	// Outputs maps each requested store path to the DFS file that holds
	// its data — the path itself, or a stored repository file when the
	// producing job was eliminated by reuse.
	Outputs map[string]string
	// SimulatedTime is the Equation-1 workflow completion time on the
	// modeled cluster.
	SimulatedTime time.Duration
	// Rewrites lists the reuses applied by the plan matcher.
	Rewrites []core.RewriteInfo
	// Jobs reports the jobs that actually executed (possibly none).
	Jobs []JobReport
	// InjectedBytes totals the output of ReStore-injected Store operators
	// (the materialization overhead of §7.2).
	InjectedBytes int64
	// Registered counts new repository entries created by this query.
	Registered int
	// Evicted lists repository entries evicted after this query.
	Evicted []string
}

// Prepared is a parsed, planned, and compiled query awaiting execution. It
// holds no references to shared mutable state, so preparation runs without
// any lock and a Prepared value can cross goroutines (the restored daemon
// prepares on request goroutines and executes on its scheduler).
type Prepared struct {
	// Source is the original query text.
	Source string

	requested []string
	workflow  *mapred.Workflow
	access    AccessSet
	flightKey string
	tmpBase   string
}

// FlightKey returns a canonical fingerprint of what the prepared query
// computes: a hash over the sorted requested output paths and each compiled
// job's canonical plan form, with the preparation-private restore/tmp/qN
// namespace normalized away. Two queries whose scripts differ only in
// whitespace, variable names, or statement formatting prepare to identical
// canonical plans and therefore share a key — the restored daemon's
// single-flight group dedups on this, so semantically identical concurrent
// submissions share one execution.
func (p *Prepared) FlightKey() string { return p.flightKey }

// canonicalFlightKey derives FlightKey from a compiled workflow. Canonical
// plan forms are alias-free and operator-ID-free (physical.Plan.Canonical);
// Load paths inside the per-preparation tmp namespace are rewritten to a
// fixed placeholder so every preparation of the same script agrees, and
// Store paths (excluded from operator signatures on purpose — the matcher
// must ignore them) are appended explicitly: queries writing different
// outputs must not share a flight.
func canonicalFlightKey(w *mapred.Workflow, requested []string, tmpBase string) string {
	h := sha256.New()
	req := append([]string(nil), requested...)
	sort.Strings(req)
	for _, p := range req {
		_, _ = io.WriteString(h, p)
		h.Write([]byte{0})
	}
	for _, job := range w.Jobs {
		_, _ = io.WriteString(h, canonicalPlanKey(job.Plan, tmpBase))
		h.Write([]byte{1})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalPlanKey renders one job's plan canonically with tmp paths
// normalized and store destinations appended.
func canonicalPlanKey(p *physical.Plan, tmpBase string) string {
	norm := p.Clone()
	var stores []string
	for _, o := range norm.Ops() {
		if o.Path == "" {
			continue
		}
		o.Path = normalizeTmpPath(o.Path, tmpBase)
		if o.Kind == physical.OpStore {
			stores = append(stores, o.Path)
		}
	}
	sort.Strings(stores)
	return norm.Canonical() + "\nstores:" + strings.Join(stores, ",")
}

// normalizeTmpPath replaces the preparation-private tmp namespace prefix
// with a fixed placeholder; all other paths pass through.
func normalizeTmpPath(p, tmpBase string) string {
	if rest, ok := strings.CutPrefix(p, tmpBase); ok && (rest == "" || rest[0] == '/') {
		return "restore/tmp/q#" + rest
	}
	return p
}

// Access returns the query's declared read and write path sets: reads are
// the workflow's external inputs (loads not produced by the workflow
// itself), writes are the requested store paths plus the query's private
// restore/tmp/qN compile namespace. Paths the execution mints at run time
// (restore/sub/sN injection outputs) are globally unique across concurrent
// executions and need no declaration; stored outputs a rewrite reuses are
// protected by repository pinning rather than declaration. The daemon's
// scheduler and the System's internal lease table both key on this set.
func (p *Prepared) Access() AccessSet { return p.access }

// Prepare parses, plans, and compiles one query without executing it or
// touching the repository. Safe to call from many goroutines at once.
func (s *System) Prepare(src string) (*Prepared, error) {
	// The registry's parse-stage histogram covers the whole prepare path —
	// including failed parses, which still cost the client that latency.
	// Per-trace spans are recorded by the caller (the daemon), which owns
	// the trace.
	start := time.Now()
	defer func() { s.obs.ObserveStage(obs.StageParse, time.Since(start)) }()
	script, err := piglatin.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := logical.Build(script)
	if err != nil {
		return nil, err
	}
	requested := make([]string, 0, len(plan.Sinks()))
	for _, st := range plan.Sinks() {
		requested = append(requested, st.Path)
	}
	tmpBase := fmt.Sprintf("restore/tmp/q%d", s.prep.Add(1))
	workflow, err := mrcompile.Compile(plan, tmpBase)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		Source:    src,
		requested: requested,
		workflow:  workflow,
		access:    workflowAccess(workflow, requested, tmpBase),
		flightKey: canonicalFlightKey(workflow, requested, tmpBase),
		tmpBase:   tmpBase,
	}, nil
}

// PrepareCached is Prepare through the prepared-plan cache: a script whose
// compiled form is cached skips parse, logical planning, and MapReduce
// compilation entirely — the cached workflow template is deep-cloned with a
// fresh restore/tmp/qN namespace (and a re-derived access set), so the
// returned Prepared is as independent as a freshly compiled one. hit
// reports whether the cache served the preparation. A miss compiles
// normally and populates the cache; with the cache disabled
// (WithPlanCache(0)) PrepareCached is exactly Prepare. Safe for concurrent
// use.
func (s *System) PrepareCached(src string) (p *Prepared, hit bool, err error) {
	if s.plans == nil {
		p, err = s.Prepare(src)
		return p, false, err
	}
	if cp := s.plans.lookup(src); cp != nil {
		start := time.Now()
		p, err = s.prepareFromCache(cp, src)
		if err == nil {
			// The clone cost lands in the parse-stage histogram like any
			// other preparation — the hit-vs-miss collapse is visible there.
			s.obs.ObserveStage(obs.StageParse, time.Since(start))
			s.stats.RecordPlanCache(true)
			return p, true, nil
		}
		// A clone failure means the cached template is unusable (it should
		// never happen: templates come from successful preparations); fall
		// through to a full prepare rather than failing the query.
	}
	p, err = s.Prepare(src)
	if err != nil {
		return nil, false, err
	}
	s.stats.RecordPlanCache(false)
	s.plans.add(src, p)
	return p, false, nil
}

// prepareFromCache mints an independent Prepared from a cached compiled
// template: every job plan is deep-cloned with paths under the template's
// private tmp namespace remapped into a freshly drawn one, jobs are rebuilt
// (re-validating and recomputing their map/reduce split), and the access
// set is re-derived. The FlightKey carries over unchanged — it is canonical
// precisely because the tmp namespace is normalized out of it.
func (s *System) prepareFromCache(cp *cachedPlan, src string) (*Prepared, error) {
	tmpBase := fmt.Sprintf("restore/tmp/q%d", s.prep.Add(1))
	jobs := make([]*mapred.Job, 0, len(cp.workflow.Jobs))
	for _, job := range cp.workflow.Jobs {
		plan := job.Plan.Clone()
		for _, o := range plan.Ops() {
			if o.Path != "" {
				o.Path = remapTmpPath(o.Path, cp.tmpBase, tmpBase)
			}
		}
		nj, err := mapred.NewJob(job.ID, plan)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, nj)
	}
	w := &mapred.Workflow{Jobs: jobs}
	requested := append([]string(nil), cp.requested...)
	return &Prepared{
		Source:    src,
		requested: requested,
		workflow:  w,
		access:    workflowAccess(w, requested, tmpBase),
		flightKey: cp.key,
		tmpBase:   tmpBase,
	}, nil
}

// workflowAccess derives a compiled workflow's declared path sets: reads
// are every loaded path not produced by one of its own jobs; writes are the
// user-requested store paths plus the whole private tmp namespace (which
// prefix-covers the inter-job temporaries).
func workflowAccess(w *mapred.Workflow, requested []string, tmpBase string) AccessSet {
	produced := make(map[string]bool)
	for _, j := range w.Jobs {
		for _, out := range j.OutputPaths() {
			produced[out] = true
		}
	}
	a := AccessSet{Writes: append([]string{tmpBase}, requested...)}
	for _, j := range w.Jobs {
		for _, in := range j.InputPaths() {
			if !produced[in] {
				a.Reads = append(a.Reads, in)
			}
		}
	}
	a.normalize()
	return a
}

// Execute parses, compiles, rewrites, and runs one query, then updates the
// repository. It is the JobControlCompiler extension of §6.2. Safe for
// concurrent use: preparation runs in parallel, execution serializes.
func (s *System) Execute(src string) (*Result, error) {
	p, err := s.Prepare(src)
	if err != nil {
		return nil, err
	}
	return s.ExecutePrepared(p)
}

// ExecutePrepared runs a prepared query through eviction, rewrite,
// sub-job enumeration, the MapReduce engine, and repository registration.
// The mutating phases hold a path lease on the query's declared read/write
// sets: path-disjoint callers run fully in parallel, conflicting callers
// are admitted FIFO. Stored outputs the rewrite reuses are pinned until the
// execution finishes, so no concurrent eviction can delete them mid-run.
func (s *System) ExecutePrepared(p *Prepared) (*Result, error) {
	return s.ExecutePreparedTraced(p, nil)
}

// ExecutePreparedTraced is ExecutePrepared with per-phase telemetry: each
// phase's duration is recorded as a span on tr and as a sample in the
// installed observer's stage histograms. A nil tr records registry samples
// only; a nil observer records trace spans only; both nil is exactly
// ExecutePrepared. Phases that error out leave no span — the failure
// surfaces through the error, not the trace.
func (s *System) ExecutePreparedTraced(p *Prepared, tr *obs.Trace) (*Result, error) {
	t := time.Now()
	lease := s.leases.acquire(p.access)
	defer s.leases.release(lease)
	// The lease-wait histogram (all acquirers) is recorded by the lease
	// table itself; this stage sample covers query executions only.
	s.obs.ObserveStage(obs.StageLease, tr.ObserveSince(obs.StageLease, t))

	seq := s.seq.Add(1)
	requested := p.requested
	workflow := p.workflow

	// Phase 0 (§5): evict stale or invalidated entries before matching.
	// Index-driven: Rule-4 checks touch only entries reading a path the DFS
	// mutation feed reports changed (plus one full sweep after a repository
	// swap), and the Rule-3 window / size budget scan in-memory usage
	// metadata only — per-query eviction work scales with what changed, not
	// with repository size. Owned-file delete failures are counted and the
	// files re-queued (see Selector.removeEntry); they never fail this
	// unrelated query.
	t = time.Now()
	var est core.EvictStats
	evicted := s.evictPhase(seq, &est)
	s.obs.ObserveStage(obs.StageEvict, tr.ObserveSince(obs.StageEvict, t))

	// Phase 1 (§3): match and rewrite against the repository. The rewriter
	// pins every reused entry; hold the pins until this execution is done
	// (rows in res.Outputs may alias pinned stored files) so a concurrent
	// disjoint execution's eviction cannot delete them underneath us.
	aliases := make(map[string]string)
	var rewrites []core.RewriteInfo
	var matchStats core.MatchStats
	jobs := workflow.Jobs
	t = time.Now()
	if s.reuse {
		repo := s.repo.Load()
		rw := &core.Rewriter{Repo: repo, Seq: seq, Guard: func(e *core.Entry) bool {
			// Pin-time freshness: with eviction demoted to the mutation feed
			// and the GC loop, this check (not a pre-match sweep) is what
			// guarantees a modified input is never answered from old
			// results — a concurrent query may have consumed the feed batch
			// that would have evicted this entry, leaving it present but
			// stale. The entry's inputs are covered by this execution's
			// lease (they are loads of the matched plan region), so
			// freshness established here holds through the run.
			if !core.EntryFresh(s.fs, e, s.selector.Policy.CheckInputVersions, &est) {
				// Queue the stale entry so the next indexed pass evicts it.
				s.selector.NoteStale(e.ID)
				return false
			}
			if e.OwnsFile {
				// Repository-owned files live in minted-once namespaces:
				// nothing ever rewrites them, and the pin (below) blocks
				// eviction. Safe without touching the lease.
				return true
			}
			// A user-named stored output can be overwritten by a concurrent
			// path-disjoint workflow that declared it as a write. Extend
			// this execution's lease with the read; if a conflicting writer
			// is already in flight, skip the reuse instead of racing it.
			return s.leases.extendReads(lease, e.OutputPath)
		}}
		outcome, err := rw.RewriteWorkflow(workflow)
		if err != nil {
			return nil, err
		}
		defer repo.Unpin(outcome.Pinned)
		jobs = outcome.Jobs
		aliases = outcome.Aliases
		rewrites = outcome.Rewrites
		matchStats = outcome.Match
	}
	s.obs.ObserveStage(obs.StageMatch, tr.ObserveSince(obs.StageMatch, t))

	// Phase 2 (§4): enumerate sub-jobs and inject materialization points.
	t = time.Now()
	var pending []pendingCandidate
	finalJobs := make([]*mapred.Job, 0, len(jobs))
	for _, job := range jobs {
		jp := job.Plan.Clone()
		injs, err := core.EnumerateSubJobs(jp, s.heuristic, func() string {
			return fmt.Sprintf("restore/sub/s%d", s.subPath.Add(1))
		})
		if err != nil {
			return nil, err
		}
		nj, err := mapred.NewJob(job.ID, jp)
		if err != nil {
			return nil, err
		}
		finalJobs = append(finalJobs, nj)
		for _, inj := range injs {
			pending = append(pending, pendingCandidate{jobID: job.ID, inj: inj})
		}
	}
	s.obs.ObserveStage(obs.StagePlan, tr.ObserveSince(obs.StagePlan, t))

	// Phase 3: execute on the MapReduce engine.
	t = time.Now()
	res := &Result{Seq: seq, Outputs: make(map[string]string), Rewrites: rewrites}
	var wfRes *mapred.WorkflowResult
	if len(finalJobs) > 0 {
		var err error
		wfRes, err = s.backend.RunWorkflow(context.Background(), &mapred.Workflow{Jobs: finalJobs})
		if err != nil {
			return nil, err
		}
		res.SimulatedTime = wfRes.SimulatedTime
		res.InjectedBytes = wfRes.TotalInjectedBytes
		for _, id := range wfRes.Order {
			jr := wfRes.JobResults[id]
			res.Jobs = append(res.Jobs, JobReport{
				JobID:         id,
				InputBytes:    jr.Stats.InputBytes,
				ShuffleBytes:  jr.Stats.ShuffleBytes,
				OutputBytes:   jr.Stats.OutputBytes,
				InjectedBytes: jr.InjectedStoreBytes,
				SimulatedTime: jr.Times.Total,
			})
		}
	}
	s.obs.ObserveStage(obs.StageExecute, tr.ObserveSince(obs.StageExecute, t))

	// Phase 4 (§5): register candidates.
	t = time.Now()
	rejected := 0
	if s.register && wfRes != nil {
		added, rej, err := s.registerCandidates(finalJobs, pending, wfRes, seq)
		if err != nil {
			return nil, err
		}
		res.Registered = added
		rejected = rej
	}
	res.Evicted = evicted

	for _, p := range requested {
		actual := p
		if a, ok := aliases[p]; ok {
			actual = a
		}
		res.Outputs[p] = actual
		// Track user-named outputs for the §5 keep-results-for-N retention
		// mode: remember the sequence that last produced (or, via an alias,
		// re-requested) the path, and its file version, so retention never
		// retires a file a client recently asked for — and never one an
		// upload has since overwritten. Only under a retention policy:
		// with retention off nothing would ever consume or prune the
		// table, and it (plus its WAL records) would grow forever.
		if s.selector.Policy.OutputRetention > 0 && !isSystemPath(p) {
			if v, verr := s.fs.Version(p); verr == nil {
				s.repo.Load().NoteOutput(p, seq, v)
			}
		}
	}

	qs := core.QueryStats{
		JobsCompiled:  len(workflow.Jobs),
		JobsExecuted:  len(finalJobs),
		Registered:    res.Registered,
		Rejected:      rejected,
		Evict:         est,
		SimulatedTime: res.SimulatedTime,
		Match:         matchStats,
	}
	for _, ri := range rewrites {
		if ri.WholeJob {
			qs.WholeJobReuses++
		} else {
			qs.SubJobReuses++
		}
		// Estimate savings from the reused entry's recorded statistics: its
		// input no longer needs scanning (beyond reading the smaller stored
		// output) and its recorded execution time is not re-spent.
		if e := s.repo.Load().Get(ri.EntryID); e != nil {
			if d := e.InputBytes - e.OutputBytes; d > 0 {
				qs.SavedBytes += d
			}
			qs.SavedTime += e.ExecTime
		}
	}
	s.stats.RecordQuery(qs)
	s.obs.ObserveStage(obs.StageStore, tr.ObserveSince(obs.StageStore, t))
	return res, nil
}

// TryServeStored is the admission-time result fast path: it probes whether
// p is answerable entirely from fresh stored outputs and, if so, serves it
// without taking any execution lease, touching the scheduler, or running
// the engine — the repeat query pays index-probe plus read cost instead of
// execution cost.
//
// Every matched entry must be pin-time fresh (core.EntryFresh: inputs exist
// at their recorded versions, the stored file exists at its recorded
// version). Repository-owned entries (Entry.OwnsFile) are immutable and
// eviction-proof while pinned; user-named stored outputs (the
// WithRegisterFinalOutputs mode) can be overwritten by a concurrent leased
// writer the fast path holds no lease against, so they are admitted only
// when the OutputVersion guard is live (versions recorded and checking on)
// and re-validated after the read — DFS versions are globally monotonic, so
// recorded-version-before == recorded-version-after proves no overwrite
// intersected the read. Matched entries stay pinned while read (invoked
// with the built Result, rows still protected from eviction) and are
// unpinned before returning; usage statistics and the reuse counters commit
// only when the serve succeeds, so abandoned probes perturb no eviction
// decisions. ok=false — no fresh whole-query match, or read returned an
// error — means the caller must fall back to ExecutePrepared; a
// concurrently evicted entry simply fails its pin or freshness check and
// lands there too, never serving deleted bytes.
//
// Consistency: no lease is held, so a serve is linearized at its pin-time
// freshness check — equivalent to the query having executed just before any
// concurrent upload landed, exactly as a leased execution admitted first
// would have been.
func (s *System) TryServeStored(p *Prepared, tr *obs.Trace, read func(*Result) error) (*Result, bool) {
	if !s.reuse {
		return nil, false
	}
	t := time.Now()
	repo := s.repo.Load()
	var est core.EvictStats
	guard := func(e *core.Entry) bool {
		if !e.OwnsFile && (!s.selector.Policy.CheckInputVersions || e.OutputVersion == 0) {
			// A user-named stored output without a live OutputVersion guard
			// (versions off, or a pre-version persisted entry) cannot be
			// served leaselessly: an overwrite would be undetectable.
			return false
		}
		if !core.EntryFresh(s.fs, e, s.selector.Policy.CheckInputVersions, &est) {
			// Queue the stale entry so the next indexed eviction pass
			// removes it.
			s.selector.NoteStale(e.ID)
			return false
		}
		return true
	}
	fsv, ok, err := core.ProbeWholeQuery(p.workflow, repo, guard)
	fallBack := func() (*Result, bool) {
		s.obs.ObserveStage(obs.StageHot, tr.ObserveSince(obs.StageHot, t))
		if fsv != nil {
			s.stats.RecordMatchWork(fsv.Match)
		}
		s.stats.RecordEviction(est)
		s.stats.RecordFastPath(false)
		return nil, false
	}
	if err != nil || !ok {
		return fallBack()
	}
	res := &Result{Seq: s.seq.Add(1), Outputs: make(map[string]string, len(p.requested)), Rewrites: fsv.Rewrites}
	complete := true
	for _, out := range p.requested {
		actual, have := fsv.Aliases[out]
		if !have {
			complete = false
			break
		}
		res.Outputs[out] = actual
	}
	if !complete {
		// Defensive: a fully collapsed workflow aliases every store path;
		// if that invariant ever breaks, fall back rather than serve a
		// partial result.
		repo.Unpin(fsv.Pinned)
		return fallBack()
	}
	// The probe (everything up to here) is the hot span; the pinned read is
	// timed by the caller as its rows stage.
	s.obs.ObserveStage(obs.StageHot, tr.ObserveSince(obs.StageHot, t))
	abort := func() (*Result, bool) {
		repo.Unpin(fsv.Pinned)
		s.stats.RecordMatchWork(fsv.Match)
		s.stats.RecordEviction(est)
		s.stats.RecordFastPath(false)
		return nil, false
	}
	if read != nil {
		if err := read(res); err != nil {
			return abort()
		}
	}
	// Pins shield owned files from eviction, not user-named files from a
	// concurrent leased overwrite. Re-validate those entries' output
	// versions now: the DFS version counter is globally monotonic, so an
	// unchanged recorded version brackets the read — no overwrite (whose
	// Create bumps the version before any new byte is visible) intersected
	// it. A moved version means the bytes just read may mix states; discard
	// and fall back to a leased execution.
	for _, id := range fsv.Uses {
		e := repo.Get(id)
		if e == nil || e.OwnsFile {
			continue
		}
		if v, verr := s.fs.Version(e.OutputPath); verr != nil || v != e.OutputVersion {
			s.selector.NoteStale(id)
			return abort()
		}
	}
	// Commit: the serve happened. Usage statistics feed the Rule-3 eviction
	// window; retention notes keep recently re-requested outputs alive.
	for _, id := range fsv.Uses {
		repo.MarkUsed(id, res.Seq)
	}
	repo.Unpin(fsv.Pinned)
	if s.selector.Policy.OutputRetention > 0 {
		for _, out := range p.requested {
			if isSystemPath(out) {
				continue
			}
			if v, verr := s.fs.Version(out); verr == nil {
				repo.NoteOutput(out, res.Seq, v)
			}
		}
	}
	qs := core.QueryStats{
		JobsCompiled: len(p.workflow.Jobs),
		Evict:        est,
		Match:        fsv.Match,
	}
	for _, ri := range fsv.Rewrites {
		if ri.WholeJob {
			qs.WholeJobReuses++
		} else {
			qs.SubJobReuses++
		}
		if e := repo.Get(ri.EntryID); e != nil {
			if d := e.InputBytes - e.OutputBytes; d > 0 {
				qs.SavedBytes += d
			}
			qs.SavedTime += e.ExecTime
		}
	}
	s.stats.RecordQuery(qs)
	s.stats.RecordFastPath(true)
	return res, true
}

// Stats returns a snapshot of the system's lifetime reuse counters.
func (s *System) Stats() core.StatsSnapshot { return s.stats.Snapshot() }

// Seq returns the current workflow sequence number (the clock the §5
// eviction window and retention policies measure in).
func (s *System) Seq() int64 { return s.seq.Load() }

// evictPhase is phase 0 of every execution: one Rule-4 pass (the naive full
// sweep when a repository swap demands it, the mutation-feed-indexed pass
// otherwise), one Rule-3-window/size-budget pass when the policy asks for
// either, then the cascade fixpoint — an evicted entry's deleted file marks
// the feed, so each extra round touches only the entries reading the paths
// the previous round deleted and the loop stops as soon as nothing relevant
// was evicted (no full re-scans). Delete failures are counted in st, never
// returned: they must not fail the triggering query.
func (s *System) evictPhase(seq int64, st *core.EvictStats) []string {
	var evicted []string
	if s.fullSweep.CompareAndSwap(true, false) {
		// The sweep re-validates every entry; the pending feed batch is
		// subsumed by it.
		s.fs.TakeEvictionDirty()
		ev, _ := s.selector.Evict(seq, st)
		evicted = append(evicted, ev...)
	} else if dirty := s.fs.TakeEvictionDirty(); len(dirty) > 0 || s.selector.PendingWork() {
		ev, _ := s.selector.EvictPaths(seq, dirty, st)
		evicted = append(evicted, ev...)
	}
	pol := s.selector.Policy
	if pol.EvictionWindow > 0 || pol.RepoBudgetBytes > 0 {
		ev, _ := s.selector.EvictWindowBudget(seq, st)
		evicted = append(evicted, ev...)
	}
	for last := evicted; len(last) > 0; {
		dirty := s.fs.TakeEvictionDirty()
		if len(dirty) == 0 {
			break
		}
		ev, _ := s.selector.EvictPaths(seq, dirty, st)
		evicted = append(evicted, ev...)
		last = ev
	}
	return evicted
}

// GCReport summarizes one CollectGarbage pass.
type GCReport struct {
	// Evicted lists the repository entries the pass removed (Rules 3/4,
	// size budget, and cascades).
	Evicted []string
	// Retired lists the user-named outputs the retention policy deleted.
	Retired []string
	// Stats counts the pass's staleness scans, DFS probes, and delete
	// failures.
	Stats core.EvictStats
}

// CollectGarbage runs one repository growth-management pass: the full
// (reference) eviction sweep, the Rule-3 window and size-budget passes, the
// cascade fixpoint, and — when the policy enables it — user-output
// retention. The restored daemon's GC loop calls it on a cadence so the
// per-query path stays index-driven; library users running long query
// streams with a retention policy call it themselves.
//
// Leasing: eviction needs no lease (pinned entries are never removed), but
// retiring a user-named out/... file must not race an in-flight query
// reading it, so the pass takes a write lease on exactly the retention
// candidates — disjoint queries keep executing throughout. Delete failures
// are counted in the report's Stats, not returned.
func (s *System) CollectGarbage() GCReport {
	nowSeq := s.seq.Load()
	// Candidates are computed from the atomically-loaded repository
	// pointer — no lease is held yet, and reading s.selector.Repo here
	// would race a concurrent AdoptRepository swap. RetireOutputs
	// re-validates every candidate under the lease, so a set computed
	// against a repository that is swapped out before the lease grant is
	// harmless (the stale paths simply fail re-validation).
	cands := core.RetentionCandidates(s.repo.Load(), s.selector.Policy, nowSeq)
	lease := s.leases.acquire(AccessSet{Writes: cands})
	defer s.leases.release(lease)

	var rep GCReport
	st := &rep.Stats
	s.fullSweep.Store(false) // the sweep below covers the pending request
	s.fs.TakeEvictionDirty()
	ev, _ := s.selector.Evict(nowSeq, st)
	rep.Evicted = append(rep.Evicted, ev...)
	wb, _ := s.selector.EvictWindowBudget(nowSeq, st)
	rep.Evicted = append(rep.Evicted, wb...)
	for last := rep.Evicted; len(last) > 0; {
		dirty := s.fs.TakeEvictionDirty()
		if len(dirty) == 0 {
			break
		}
		ev, _ := s.selector.EvictPaths(nowSeq, dirty, st)
		rep.Evicted = append(rep.Evicted, ev...)
		last = ev
	}
	rep.Retired, _ = s.selector.RetireOutputs(nowSeq, cands, st)
	s.stats.RecordEviction(*st)
	return rep
}

// CollectShardGarbage runs one eviction pass over a single shard's slice of
// the DFS mutation feed: the indexed Rule-4 pass (plus the cascade fixpoint)
// on only the entries touching paths that shard reported mutated. The
// restored daemon runs one scanner per shard on a cadence, so each
// scanner's work is proportional to its own shard's churn and scanners on
// different shards drain their feeds concurrently.
//
// Leasing: eviction itself needs no path lease (pinned entries are never
// removed), but the pass must not race a universal repository swap
// (AdoptRepository mutating selector.Repo), so it holds an empty access-set
// lease — conflicting with nothing except universal barriers, exactly like
// an in-flight query. A pending full sweep subsumes per-shard work: the
// pass leaves the feed for the sweep.
func (s *System) CollectShardGarbage(shard int) GCReport {
	var rep GCReport
	if shard < 0 || shard >= s.shards {
		return rep
	}
	lease := s.leases.acquire(AccessSet{})
	defer s.leases.release(lease)
	if s.fullSweep.Load() {
		return rep
	}
	nowSeq := s.seq.Load()
	dirty := s.fs.TakeEvictionDirtyShard(shard)
	if len(dirty) == 0 && !s.selector.PendingWork() {
		return rep
	}
	st := &rep.Stats
	ev, _ := s.selector.EvictPaths(nowSeq, dirty, st)
	rep.Evicted = append(rep.Evicted, ev...)
	// Cascade fixpoint within the shard: an evicted entry's deleted owned
	// file re-marks this shard's feed (owned files colocate with their
	// namespace root), so each extra round touches only readers of the
	// just-deleted outputs.
	for last := ev; len(last) > 0; {
		d := s.fs.TakeEvictionDirtyShard(shard)
		if len(d) == 0 {
			break
		}
		ev, _ = s.selector.EvictPaths(nowSeq, d, st)
		rep.Evicted = append(rep.Evicted, ev...)
		last = ev
	}
	s.stats.RecordEviction(*st)
	return rep
}

// pendingCandidate is a sub-job injection awaiting post-execution
// registration.
type pendingCandidate struct {
	jobID string
	inj   core.Injection
}

// registerCandidates turns executed outputs into repository entries: every
// non-final primary store (workflow intermediates), every injected sub-job,
// and — when configured — the user-named outputs. It returns how many
// candidates entered the repository and how many the §5 keep rules (or a
// vanished input) rejected; duplicates of already-stored plans count as
// neither.
func (s *System) registerCandidates(jobs []*mapred.Job, pending []pendingCandidate, wfRes *mapred.WorkflowResult, seq int64) (int, int, error) {
	added, rejected := 0, 0
	note := func(e *core.Entry, ok bool) {
		switch {
		case ok:
			added++
		case e == nil:
			rejected++
		}
	}
	for _, job := range jobs {
		jr := wfRes.JobResults[job.ID]
		if jr == nil {
			continue
		}
		for _, st := range job.Plan.Sinks() {
			if st.Injected {
				continue // handled via pending injections below
			}
			owns := isSystemPath(st.Path)
			if !owns && !s.registerFinals {
				continue
			}
			cand, err := core.WholeJobCandidate(job.Plan, st)
			if err != nil {
				return added, rejected, err
			}
			entry, ok, err := s.selector.Consider(core.Candidate{
				Plan:       cand,
				OutputPath: st.Path,
				Schema:     st.Schema,
				InputBytes: jr.Stats.InputBytes,
				OutputBytes: func() int64 {
					if b, ok := jr.StoreBytes[st.Path]; ok {
						return b
					}
					return 0
				}(),
				ExecTime: jr.Times.Total,
				OwnsFile: owns,
			}, seq)
			if err != nil {
				return added, rejected, err
			}
			note(entry, ok)
		}
	}
	byID := make(map[string]*mapred.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	for _, pc := range pending {
		jr := wfRes.JobResults[pc.jobID]
		if jr == nil {
			continue
		}
		entry, ok, err := s.selector.Consider(core.Candidate{
			Plan:        pc.inj.CandidatePlan,
			OutputPath:  pc.inj.Path,
			Schema:      pc.inj.CandidatePlan.Sinks()[0].Schema,
			InputBytes:  jr.Stats.InputBytes,
			OutputBytes: jr.StoreBytes[pc.inj.Path],
			ExecTime:    jr.Times.Total,
			OwnsFile:    true,
		}, seq)
		if err != nil {
			return added, rejected, err
		}
		note(entry, ok)
	}
	return added, rejected, nil
}

// isSystemPath reports whether the path is in ReStore's namespace (temps and
// sub-job outputs), i.e. the repository owns the file.
func isSystemPath(p string) bool {
	return len(p) >= 8 && p[:8] == "restore/"
}

// SaveRepository persists the repository (plans, filenames, statistics) as
// JSON, the §6.2 "table" of stored job outputs. It takes a universal lease
// so the snapshot never interleaves with a half-registered query.
func (s *System) SaveRepository(w io.Writer) error {
	lease := s.leases.acquire(UniversalAccess())
	defer s.leases.release(lease)
	return s.repo.Load().Save(w)
}

// Quiesce runs fn under a universal (write-set-universal) lease — the drain
// barrier: every in-flight execution completes first and no new mutating
// operation is admitted until fn returns. The persistence layer uses it for
// compaction (snapshot + WAL truncation), where the snapshot pair, the log
// rotation, and the orphan sweep must all observe the same quiescent state.
// fn must not call Execute/ExecutePrepared or any other lease-taking method
// on the same System — that would self-deadlock.
func (s *System) Quiesce(fn func() error) error {
	lease := s.leases.acquire(UniversalAccess())
	defer s.leases.release(lease)
	return fn()
}

// SaveState persists the repository and the full DFS (data, schemas, file
// versions) as one consistent snapshot pair, for the daemon's durable-state
// directory. It runs under Quiesce, so the pair can never capture a torn
// DFS (a file created but not yet committed) or a repository entry whose
// output file missed the snapshot.
func (s *System) SaveState(repoW, dfsW io.Writer) error {
	return s.Quiesce(func() error {
		if err := s.repo.Load().Save(repoW); err != nil {
			return err
		}
		return s.fs.Export(dfsW)
	})
}

// LoadRepositoryFrom replaces the repository with one previously saved by
// SaveRepository. The DFS must already contain the referenced output files
// (a mismatch is caught by Rule-4 eviction on the next query).
func (s *System) LoadRepositoryFrom(r io.Reader) error {
	repo, err := core.LoadRepositorySharded(r, s.shards)
	if err != nil {
		return err
	}
	s.AdoptRepository(repo)
	return nil
}

// AdoptRepository installs repo as the system's repository under a
// universal lease and advances the workflow/namespace counters past
// everything the repository and current DFS reference. The recovery path
// uses it after replaying the write-ahead log into a loaded repository;
// passing the system's current repository is allowed and just re-advances
// the counters. Any journal attached to the previous repository is NOT
// carried over — re-attach with Repository().SetJournal afterwards.
func (s *System) AdoptRepository(repo *core.Repository) {
	lease := s.leases.acquire(UniversalAccess())
	defer s.leases.release(lease)
	s.repo.Store(repo)
	s.selector.Repo = repo
	s.advanceCounters(repo)
	// The adopted repository may reference files the mutation feed never
	// saw change (or that are simply missing); re-validate everything once.
	s.fullSweep.Store(true)
}

// advanceCounters pushes the workflow-sequence, compile-namespace, and
// sub-job-path counters past everything the loaded repository and current
// DFS have seen, so a restarted system never reuses a restore/tmp/qN or
// restore/sub/sN namespace that a persisted entry still references.
func (s *System) advanceCounters(repo *core.Repository) {
	var maxSeq, maxPrep, maxSub int64
	for _, e := range repo.All() {
		if e.CreatedSeq > maxSeq {
			maxSeq = e.CreatedSeq
		}
		if e.LastUsedSeq > maxSeq {
			maxSeq = e.LastUsedSeq
		}
	}
	for _, p := range s.fs.List("restore/") {
		if n, ok := pathCounter(p, "restore/tmp/q"); ok && n > maxPrep {
			maxPrep = n
		}
		if n, ok := pathCounter(p, "restore/sub/s"); ok && n > maxSub {
			maxSub = n
		}
	}
	advanceAtomic(&s.seq, maxSeq)
	advanceAtomic(&s.prep, maxPrep)
	advanceAtomic(&s.subPath, maxSub)
}

// advanceAtomic raises v to at least min. CAS loop, not load-compare-store:
// Prepare bumps these counters lock-free, and a plain Store could roll back
// a value another goroutine just claimed, handing two queries the same
// namespace.
func advanceAtomic(v *atomic.Int64, min int64) {
	for {
		cur := v.Load()
		if min <= cur || v.CompareAndSwap(cur, min) {
			return
		}
	}
}

// pathCounter extracts N from prefix+"N" or prefix+"N/...".
func pathCounter(p, prefix string) (int64, bool) {
	rest, ok := strings.CutPrefix(p, prefix)
	if !ok {
		return 0, false
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Explanation is a dry-run report of what executing a query would reuse.
type Explanation struct {
	// JobsBeforeRewrite and JobsAfterRewrite count the workflow's MapReduce
	// jobs before and after matching against the repository.
	JobsBeforeRewrite int
	JobsAfterRewrite  int
	// Rewrites lists the reuses the matcher would apply.
	Rewrites []core.RewriteInfo
	// Aliases maps requested outputs that would not execute at all to the
	// stored files holding their data.
	Aliases map[string]string
}

// Explain compiles and rewrites a query against the current repository
// without executing it or changing any state.
func (s *System) Explain(src string) (*Explanation, error) {
	script, err := piglatin.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := logical.Build(script)
	if err != nil {
		return nil, err
	}
	workflow, err := mrcompile.Compile(plan, "restore/tmp/explain")
	if err != nil {
		return nil, err
	}
	ex := &Explanation{JobsBeforeRewrite: len(workflow.Jobs)}
	rw := &core.Rewriter{Repo: s.repo.Load(), Seq: s.seq.Load(), DryRun: true}
	outcome, err := rw.RewriteWorkflow(workflow)
	if err != nil {
		return nil, err
	}
	ex.JobsAfterRewrite = len(outcome.Jobs)
	ex.Rewrites = outcome.Rewrites
	ex.Aliases = outcome.Aliases
	return ex, nil
}

// ReadOutput reads the tuples of one requested output of a Result,
// following aliases.
func (s *System) ReadOutput(res *Result, requested string) ([]types.Tuple, error) {
	actual, ok := res.Outputs[requested]
	if !ok {
		return nil, fmt.Errorf("restore: %q is not an output of this query", requested)
	}
	return s.fs.ReadAll(actual)
}

// ReadOutputTSV reads an output as sorted tab-separated lines — convenient
// for comparisons and examples.
func (s *System) ReadOutputTSV(res *Result, requested string) ([]string, error) {
	tuples, err := s.ReadOutput(res, requested)
	if err != nil {
		return nil, err
	}
	lines := make([]string, len(tuples))
	for i, t := range tuples {
		lines[i] = types.FormatTSV(t)
	}
	sort.Strings(lines)
	return lines, nil
}
