// Package restore is a Go reproduction of ReStore (Elghandour & Aboulnaga,
// PVLDB 5(6), 2012): a system that stores the outputs of MapReduce jobs
// produced by a Pig-like dataflow engine and reuses them to answer future
// queries, either as whole jobs or as materialized sub-jobs.
//
// The package wires together the full stack built in internal/: a Pig Latin
// dialect front end, a logical plan builder, a MapReduce compiler, a
// from-scratch MapReduce engine over a simulated DFS, a cluster cost model,
// and the ReStore core (plan matcher/rewriter, sub-job enumerator, and
// repository manager).
//
// Basic usage:
//
//	sys := restore.New()
//	// load data into sys.FS(), then:
//	res, err := sys.Execute(`
//	    A = load 'page_views' as (user, timestamp, est_revenue:double);
//	    B = foreach A generate user, est_revenue;
//	    store B into 'out/projected';
//	`)
//
// Executing related queries afterwards reuses the stored intermediate
// results automatically; Result.Rewrites reports what was reused.
package restore

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mapred"
	"repro/internal/mrcompile"
	"repro/internal/piglatin"
	"repro/internal/types"
)

// Heuristic re-exports the sub-job enumeration heuristics of §4.
type Heuristic = core.Heuristic

// Heuristic values.
const (
	// HeuristicOff disables sub-job materialization.
	HeuristicOff = core.HeuristicOff
	// HeuristicConservative materializes Project/Filter outputs.
	HeuristicConservative = core.HeuristicConservative
	// HeuristicAggressive also materializes Join/Group/CoGroup outputs
	// (the paper's default).
	HeuristicAggressive = core.HeuristicAggressive
	// HeuristicAll materializes after every operator ("No Heuristic").
	HeuristicAll = core.HeuristicAll
)

// Policy re-exports the repository management policy of §5.
type Policy = core.Policy

// System is a ReStore deployment: a DFS, a cluster model, a MapReduce
// engine, and the shared repository that persists across queries.
type System struct {
	fs        *dfs.FS
	cluster   *cluster.Config
	engine    *mapred.Engine
	repo      *core.Repository
	selector  *core.Selector
	heuristic Heuristic
	reuse     bool
	register  bool
	// registerFinals additionally stores user-named query outputs (the
	// Facebook keep-results-for-7-days mode); by default only workflow
	// intermediates and injected sub-jobs enter the repository.
	registerFinals bool

	seq     int64
	subPath int64
}

// Option configures a System.
type Option func(*System)

// WithClusterConfig replaces the default 15-node cluster model.
func WithClusterConfig(c *cluster.Config) Option {
	return func(s *System) { s.cluster = c }
}

// WithHeuristic selects the sub-job enumeration heuristic (default
// Aggressive, as in the paper's experiments).
func WithHeuristic(h Heuristic) Option {
	return func(s *System) { s.heuristic = h }
}

// WithReuse toggles plan matching and rewriting (default on). Disabling it
// yields the "No Data Reuse" baseline of §7.
func WithReuse(on bool) Option {
	return func(s *System) { s.reuse = on }
}

// WithRegistration toggles storing executed job outputs in the repository
// (default on).
func WithRegistration(on bool) Option {
	return func(s *System) { s.register = on }
}

// WithRegisterFinalOutputs additionally registers user-named outputs, not
// just intermediates and sub-jobs.
func WithRegisterFinalOutputs(on bool) Option {
	return func(s *System) { s.registerFinals = on }
}

// WithPolicy sets the repository keep/evict policy (§5). The default keeps
// every candidate, matching the paper's experimental setup.
func WithPolicy(p Policy) Option {
	return func(s *System) { s.selector.Policy = p }
}

// WithReducePartitions sets the real execution parallelism of the reduce
// phase (not the simulated reduce task count).
func WithReducePartitions(n int) Option {
	return func(s *System) { s.engine.ReduceTasks = n }
}

// New creates a System with an empty DFS and repository.
func New(opts ...Option) *System {
	fs := dfs.New()
	clus := cluster.Default()
	s := &System{
		fs:        fs,
		cluster:   clus,
		engine:    mapred.NewEngine(fs, clus),
		repo:      core.NewRepository(),
		heuristic: HeuristicAggressive,
		reuse:     true,
		register:  true,
	}
	s.selector = &core.Selector{Repo: s.repo, FS: fs, Cluster: clus, Policy: core.DefaultPolicy()}
	for _, opt := range opts {
		opt(s)
	}
	// Options may replace the cluster config; keep the engine and selector
	// pointed at the final one.
	s.engine.Cluster = s.cluster
	s.selector.Cluster = s.cluster
	return s
}

// FS exposes the simulated distributed file system (for loading data sets
// and reading results).
func (s *System) FS() *dfs.FS { return s.fs }

// Cluster exposes the cost-model configuration.
func (s *System) Cluster() *cluster.Config { return s.cluster }

// Repository exposes the ReStore repository (for inspection and tooling).
func (s *System) Repository() *core.Repository { return s.repo }

// JobReport describes one executed MapReduce job.
type JobReport struct {
	JobID         string
	InputBytes    int64
	ShuffleBytes  int64
	OutputBytes   int64
	InjectedBytes int64
	SimulatedTime time.Duration
}

// Result reports one executed query.
type Result struct {
	// Outputs maps each requested store path to the DFS file that holds
	// its data — the path itself, or a stored repository file when the
	// producing job was eliminated by reuse.
	Outputs map[string]string
	// SimulatedTime is the Equation-1 workflow completion time on the
	// modeled cluster.
	SimulatedTime time.Duration
	// Rewrites lists the reuses applied by the plan matcher.
	Rewrites []core.RewriteInfo
	// Jobs reports the jobs that actually executed (possibly none).
	Jobs []JobReport
	// InjectedBytes totals the output of ReStore-injected Store operators
	// (the materialization overhead of §7.2).
	InjectedBytes int64
	// Registered counts new repository entries created by this query.
	Registered int
	// Evicted lists repository entries evicted after this query.
	Evicted []string
}

// Execute parses, compiles, rewrites, and runs one query, then updates the
// repository. It is the JobControlCompiler extension of §6.2.
func (s *System) Execute(src string) (*Result, error) {
	s.seq++
	seq := s.seq

	script, err := piglatin.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := logical.Build(script)
	if err != nil {
		return nil, err
	}
	requested := make([]string, 0, len(plan.Sinks()))
	for _, st := range plan.Sinks() {
		requested = append(requested, st.Path)
	}
	workflow, err := mrcompile.Compile(plan, fmt.Sprintf("restore/tmp/q%d", seq))
	if err != nil {
		return nil, err
	}

	// Phase 0 (§5, Rules 3-4): evict stale or invalidated entries before
	// matching, so a modified input is never answered from old results.
	// Evicting one entry can invalidate entries reading its file, so run to
	// a fixpoint.
	var evicted []string
	for {
		ev, err := s.selector.Evict(seq)
		if err != nil {
			return nil, err
		}
		if len(ev) == 0 {
			break
		}
		evicted = append(evicted, ev...)
	}

	// Phase 1 (§3): match and rewrite against the repository.
	aliases := make(map[string]string)
	var rewrites []core.RewriteInfo
	jobs := workflow.Jobs
	if s.reuse {
		rw := &core.Rewriter{Repo: s.repo, Seq: seq}
		outcome, err := rw.RewriteWorkflow(workflow)
		if err != nil {
			return nil, err
		}
		jobs = outcome.Jobs
		aliases = outcome.Aliases
		rewrites = outcome.Rewrites
	}

	// Phase 2 (§4): enumerate sub-jobs and inject materialization points.
	var pending []pendingCandidate
	finalJobs := make([]*mapred.Job, 0, len(jobs))
	for _, job := range jobs {
		p := job.Plan.Clone()
		injs, err := core.EnumerateSubJobs(p, s.heuristic, func() string {
			s.subPath++
			return fmt.Sprintf("restore/sub/s%d", s.subPath)
		})
		if err != nil {
			return nil, err
		}
		nj, err := mapred.NewJob(job.ID, p)
		if err != nil {
			return nil, err
		}
		finalJobs = append(finalJobs, nj)
		for _, inj := range injs {
			pending = append(pending, pendingCandidate{jobID: job.ID, inj: inj})
		}
	}

	// Phase 3: execute on the MapReduce engine.
	res := &Result{Outputs: make(map[string]string), Rewrites: rewrites}
	var wfRes *mapred.WorkflowResult
	if len(finalJobs) > 0 {
		wfRes, err = s.engine.RunWorkflow(&mapred.Workflow{Jobs: finalJobs})
		if err != nil {
			return nil, err
		}
		res.SimulatedTime = wfRes.SimulatedTime
		res.InjectedBytes = wfRes.TotalInjectedBytes
		for _, id := range wfRes.Order {
			jr := wfRes.JobResults[id]
			res.Jobs = append(res.Jobs, JobReport{
				JobID:         id,
				InputBytes:    jr.Stats.InputBytes,
				ShuffleBytes:  jr.Stats.ShuffleBytes,
				OutputBytes:   jr.Stats.OutputBytes,
				InjectedBytes: jr.InjectedStoreBytes,
				SimulatedTime: jr.Times.Total,
			})
		}
	}

	// Phase 4 (§5): register candidates.
	if s.register && wfRes != nil {
		added, err := s.registerCandidates(finalJobs, pending, wfRes, seq)
		if err != nil {
			return nil, err
		}
		res.Registered = added
	}
	res.Evicted = evicted

	for _, p := range requested {
		actual := p
		if a, ok := aliases[p]; ok {
			actual = a
		}
		res.Outputs[p] = actual
	}
	return res, nil
}

// pendingCandidate is a sub-job injection awaiting post-execution
// registration.
type pendingCandidate struct {
	jobID string
	inj   core.Injection
}

// registerCandidates turns executed outputs into repository entries: every
// non-final primary store (workflow intermediates), every injected sub-job,
// and — when configured — the user-named outputs.
func (s *System) registerCandidates(jobs []*mapred.Job, pending []pendingCandidate, wfRes *mapred.WorkflowResult, seq int64) (int, error) {
	added := 0
	for _, job := range jobs {
		jr := wfRes.JobResults[job.ID]
		if jr == nil {
			continue
		}
		for _, st := range job.Plan.Sinks() {
			if st.Injected {
				continue // handled via pending injections below
			}
			owns := isSystemPath(st.Path)
			if !owns && !s.registerFinals {
				continue
			}
			cand, err := core.WholeJobCandidate(job.Plan, st)
			if err != nil {
				return added, err
			}
			_, ok, err := s.selector.Consider(core.Candidate{
				Plan:       cand,
				OutputPath: st.Path,
				Schema:     st.Schema,
				InputBytes: jr.Stats.InputBytes,
				OutputBytes: func() int64 {
					if b, ok := jr.StoreBytes[st.Path]; ok {
						return b
					}
					return 0
				}(),
				ExecTime: jr.Times.Total,
				OwnsFile: owns,
			}, seq)
			if err != nil {
				return added, err
			}
			if ok {
				added++
			}
		}
	}
	byID := make(map[string]*mapred.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	for _, pc := range pending {
		jr := wfRes.JobResults[pc.jobID]
		if jr == nil {
			continue
		}
		_, ok, err := s.selector.Consider(core.Candidate{
			Plan:        pc.inj.CandidatePlan,
			OutputPath:  pc.inj.Path,
			Schema:      pc.inj.CandidatePlan.Sinks()[0].Schema,
			InputBytes:  jr.Stats.InputBytes,
			OutputBytes: jr.StoreBytes[pc.inj.Path],
			ExecTime:    jr.Times.Total,
			OwnsFile:    true,
		}, seq)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// isSystemPath reports whether the path is in ReStore's namespace (temps and
// sub-job outputs), i.e. the repository owns the file.
func isSystemPath(p string) bool {
	return len(p) >= 8 && p[:8] == "restore/"
}

// SaveRepository persists the repository (plans, filenames, statistics) as
// JSON, the §6.2 "table" of stored job outputs.
func (s *System) SaveRepository(w io.Writer) error {
	return s.repo.Save(w)
}

// LoadRepositoryFrom replaces the repository with one previously saved by
// SaveRepository. The DFS must already contain the referenced output files
// (a mismatch is caught by Rule-4 eviction on the next query).
func (s *System) LoadRepositoryFrom(r io.Reader) error {
	repo, err := core.LoadRepository(r)
	if err != nil {
		return err
	}
	s.repo = repo
	s.selector.Repo = repo
	return nil
}

// Explanation is a dry-run report of what executing a query would reuse.
type Explanation struct {
	// JobsBeforeRewrite and JobsAfterRewrite count the workflow's MapReduce
	// jobs before and after matching against the repository.
	JobsBeforeRewrite int
	JobsAfterRewrite  int
	// Rewrites lists the reuses the matcher would apply.
	Rewrites []core.RewriteInfo
	// Aliases maps requested outputs that would not execute at all to the
	// stored files holding their data.
	Aliases map[string]string
}

// Explain compiles and rewrites a query against the current repository
// without executing it or changing any state.
func (s *System) Explain(src string) (*Explanation, error) {
	script, err := piglatin.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := logical.Build(script)
	if err != nil {
		return nil, err
	}
	workflow, err := mrcompile.Compile(plan, "restore/tmp/explain")
	if err != nil {
		return nil, err
	}
	ex := &Explanation{JobsBeforeRewrite: len(workflow.Jobs)}
	rw := &core.Rewriter{Repo: s.repo, Seq: s.seq, DryRun: true}
	outcome, err := rw.RewriteWorkflow(workflow)
	if err != nil {
		return nil, err
	}
	ex.JobsAfterRewrite = len(outcome.Jobs)
	ex.Rewrites = outcome.Rewrites
	ex.Aliases = outcome.Aliases
	return ex, nil
}

// ReadOutput reads the tuples of one requested output of a Result,
// following aliases.
func (s *System) ReadOutput(res *Result, requested string) ([]types.Tuple, error) {
	actual, ok := res.Outputs[requested]
	if !ok {
		return nil, fmt.Errorf("restore: %q is not an output of this query", requested)
	}
	return s.fs.ReadAll(actual)
}

// ReadOutputTSV reads an output as sorted tab-separated lines — convenient
// for comparisons and examples.
func (s *System) ReadOutputTSV(res *Result, requested string) ([]string, error) {
	tuples, err := s.ReadOutput(res, requested)
	if err != nil {
		return nil, err
	}
	lines := make([]string, len(tuples))
	for i, t := range tuples {
		lines[i] = types.FormatTSV(t)
	}
	sort.Strings(lines)
	return lines, nil
}
