package restore

import (
	"context"

	"repro/internal/mapred"
)

// Backend executes compiled MapReduce workflows on behalf of a System. The
// in-process *mapred.Engine satisfies it directly and is the default; a
// fleet coordinator (internal/fleet) satisfies it by shipping serialized job
// stages to worker processes. The System's planning, reuse rewriting, lease
// admission, and repository registration sit entirely above this boundary,
// so swapping backends never changes which workflows run or what is stored —
// only where the tasks execute.
type Backend interface {
	// RunWorkflow executes every job of the workflow in dependency order.
	// Cancelling ctx stops in-flight tasks and skips unstarted jobs.
	RunWorkflow(ctx context.Context, w *mapred.Workflow) (*mapred.WorkflowResult, error)
}
