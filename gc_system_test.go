package restore

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/types"
)

// faultDFS wraps the system's DFS for the selector, failing deletes of
// matching paths — the fault-injected delete of the eviction regression
// tests.
type faultDFS struct {
	sys  *System
	fail func(path string) bool
}

func (f *faultDFS) Version(path string) (uint64, error) { return f.sys.fs.Version(path) }
func (f *faultDFS) Exists(path string) bool             { return f.sys.fs.Exists(path) }
func (f *faultDFS) Delete(path string) error {
	if f.fail != nil && f.fail(path) {
		return fmt.Errorf("injected delete fault for %s", path)
	}
	return f.sys.fs.Delete(path)
}

// TestDeleteFailureDoesNotFailQuery is the system-level regression for the
// eviction-path bug: a DFS delete failure during phase-0 eviction must not
// fail the (unrelated) triggering query, must surface as a metrics counter,
// and must never leak the file permanently once the fault clears.
func TestDeleteFailureDoesNotFailQuery(t *testing.T) {
	sys := New()
	seedPaperData(t, sys, 200)
	q := `A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
C = group B by user;
D = foreach C generate group, SUM(B.est_revenue);
store D into 'out/gross';`
	if _, err := sys.Execute(q); err != nil {
		t.Fatal(err)
	}
	if sys.Repository().Len() == 0 {
		t.Fatal("first query registered nothing; test premise broken")
	}

	// Every stored file's delete now fails, and every entry is stale.
	fault := &faultDFS{sys: sys, fail: func(p string) bool { return strings.HasPrefix(p, "restore/") }}
	sys.selector.FS = fault
	if err := sys.fs.WriteTuples("page_views", types.Schema{}, []types.Tuple{{types.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}

	res, err := sys.Execute(`A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user;
store B into 'out/users_only';`)
	if err != nil {
		t.Fatalf("delete failure failed the unrelated query: %v", err)
	}
	if len(res.Evicted) == 0 {
		t.Fatal("stale entries were not evicted")
	}
	snap := sys.Stats()
	if snap.Evict.DeleteErrors == 0 {
		t.Error("delete failures not surfaced in the metrics counters")
	}
	leaked := sys.fs.List("restore/")
	var orphans []string
	for _, p := range leaked {
		if !sys.Repository().ReferencesPath(p) {
			orphans = append(orphans, p)
		}
	}
	if len(orphans) == 0 {
		t.Fatal("expected orphaned files awaiting retry while the fault holds")
	}

	// Fault clears: the next query's phase-0 retries the deferred deletes
	// and the leak heals without any external sweep.
	sys.selector.FS = sys.fs
	if _, err := sys.Execute(`A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate est_revenue;
store B into 'out/rev_only';`); err != nil {
		t.Fatal(err)
	}
	for _, p := range orphans {
		if sys.fs.Exists(p) && !sys.Repository().ReferencesPath(p) {
			t.Errorf("transient delete failure permanently leaked %s", p)
		}
	}
	if snap := sys.Stats(); snap.Evict.RequeueRetired == 0 {
		t.Error("requeued deletes were never retired")
	}
}

// TestCollectGarbageRetiresOldOutputs drives the keep-results-for-N mode at
// the library level: an out/ file not re-requested within the window is
// retired by CollectGarbage, while recent outputs survive.
func TestCollectGarbageRetiresOldOutputs(t *testing.T) {
	sys := New(WithPolicy(Policy{KeepAll: true, CheckInputVersions: true, OutputRetention: 2}))
	seedPaperData(t, sys, 100)
	run := func(out string) {
		t.Helper()
		q := fmt.Sprintf(`A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = filter A by est_revenue > %d.0;
store B into '%s';`, len(out), out)
		if _, err := sys.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	run("out/old") // seq 1
	for i := 0; i < 4; i++ {
		run(fmt.Sprintf("out/fresh%d", i)) // seq 2..5
	}
	if !sys.fs.Exists("out/old") {
		t.Fatal("premise: out/old missing before GC")
	}
	rep := sys.CollectGarbage()
	found := false
	for _, p := range rep.Retired {
		if p == "out/old" {
			found = true
		}
	}
	if !found {
		t.Fatalf("retention did not retire out/old: %v", rep.Retired)
	}
	if sys.fs.Exists("out/old") {
		t.Error("retired output still on the DFS")
	}
	if !sys.fs.Exists("out/fresh3") {
		t.Error("retention deleted a fresh output")
	}
	if snap := sys.Stats(); snap.Evict.OutputsRetired == 0 {
		t.Error("retirement missing from stats")
	}
}

// TestIndexedEvictionScansStayFlat pins the per-query Rule-4 bound at the
// system level: after the initial full sweep, a query following a single
// input mutation scans only the entries touching the mutated paths, not the
// whole repository.
func TestIndexedEvictionScansStayFlat(t *testing.T) {
	sys := New()
	seedPaperData(t, sys, 100)
	// Populate the repository with several distinct queries.
	for i := 0; i < 6; i++ {
		q := fmt.Sprintf(`A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = filter A by est_revenue > %d.0;
C = group B by user;
D = foreach C generate group, COUNT(B);
store D into 'out/flat%d';`, i, i)
		if _, err := sys.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	entries := sys.Repository().Len()
	if entries < 6 {
		t.Fatalf("premise: repository too small (%d)", entries)
	}

	// A query over an untouched dataset: its phase-0 consumes only the
	// previous query's own writes — far fewer than the repository.
	if err := sys.LoadTSV("in/flatprobe", "k:int, v:int", []string{"1\t2", "3\t4"}, 1); err != nil {
		t.Fatal(err)
	}
	before := sys.Stats().Evict
	if _, err := sys.Execute(`A = load 'in/flatprobe' as (k:int, v:int);
B = filter A by v > 1;
store B into 'out/flatprobe';`); err != nil {
		t.Fatal(err)
	}
	delta := sys.Stats().Evict.Scans - before.Scans
	if delta >= int64(entries) {
		t.Errorf("indexed phase-0 scanned %d entries with %d stored — not index-driven", delta, entries)
	}
}
