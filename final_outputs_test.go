package restore_test

import (
	"testing"

	restore "repro"
)

// TestOverwrittenFinalOutputIsNotReused pins the output-version eviction
// rule: with WithRegisterFinalOutputs, a user-named store path enters the
// repository — but user paths can be overwritten, after which the entry's
// plan no longer describes the file. A query matching the stale entry must
// recompute from the (new) base data, never serve the recycled file.
func TestOverwrittenFinalOutputIsNotReused(t *testing.T) {
	sys := restore.New(restore.WithRegisterFinalOutputs(true))
	if err := sys.LoadTSV("in/base", "k:int, v:int", []string{"1\t10", "2\t20", "3\t30"}, 1); err != nil {
		t.Fatal(err)
	}

	const q = `A = load 'in/base' as (k:int, v:int);
B = filter A by v > 15;
store B into 'out/final';`

	if _, err := sys.Execute(q); err != nil {
		t.Fatal(err)
	}
	entries := sys.Repository().All()
	foundFinal := false
	for _, e := range entries {
		if e.OutputPath == "out/final" {
			foundFinal = true
			if e.OwnsFile {
				t.Error("user-named output registered as repository-owned")
			}
			if e.OutputVersion == 0 {
				t.Error("registered entry carries no output version")
			}
		}
	}
	if !foundFinal {
		t.Fatal("final output was not registered despite WithRegisterFinalOutputs")
	}

	// Recycle the path with unrelated data (bumps its DFS version).
	if err := sys.LoadTSV("out/final", "x:int", []string{"999"}, 1); err != nil {
		t.Fatal(err)
	}

	// A query whose plan matches the stale entry must not be answered from
	// the recycled file: the entry is evicted and the query recomputes.
	res, err := sys.Execute(`A = load 'in/base' as (k:int, v:int);
B = filter A by v > 15;
store B into 'out/final2';`)
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range res.Rewrites {
		if ri.OutputPath == "out/final" {
			t.Fatalf("query reused overwritten output %q: %+v", ri.OutputPath, ri)
		}
	}
	rows, err := sys.ReadOutputTSV(res, "out/final2")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"2\t20", "3\t30"}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("rows = %v, want %v", rows, want)
		}
	}
}
