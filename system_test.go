package restore

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/types"
)

// seedPaperData loads a miniature page_views/users instance.
func seedPaperData(t testing.TB, s *System, rows int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	viewsSchema := types.NewSchema(
		types.Field{Name: "user", Kind: types.KindString},
		types.Field{Name: "timestamp", Kind: types.KindInt},
		types.Field{Name: "est_revenue", Kind: types.KindFloat},
		types.Field{Name: "page_info", Kind: types.KindString},
		types.Field{Name: "page_links", Kind: types.KindString},
	)
	views := make([]types.Tuple, rows)
	for i := range views {
		views[i] = types.Tuple{
			types.NewString(fmt.Sprintf("user%03d", rng.Intn(50))),
			types.NewInt(int64(rng.Intn(86400))),
			types.NewFloat(float64(rng.Intn(1000)) / 100),
			types.NewString(strings.Repeat("i", 20)),
			types.NewString(strings.Repeat("l", 20)),
		}
	}
	if err := s.FS().WritePartitioned("page_views", viewsSchema, views, 4); err != nil {
		t.Fatal(err)
	}
	usersSchema := types.NewSchema(
		types.Field{Name: "name", Kind: types.KindString},
		types.Field{Name: "phone", Kind: types.KindString},
		types.Field{Name: "address", Kind: types.KindString},
		types.Field{Name: "city", Kind: types.KindString},
	)
	users := make([]types.Tuple, 40)
	for i := range users {
		users[i] = types.Tuple{
			types.NewString(fmt.Sprintf("user%03d", i)),
			types.NewString("555"),
			types.NewString("addr"),
			types.NewString("city"),
		}
	}
	if err := s.FS().WritePartitioned("users", usersSchema, users, 2); err != nil {
		t.Fatal(err)
	}
}

const sysQ1 = `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'out/q1';
`

const sysQ2 = `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'out/q2';
`

func TestExecuteBasicQuery(t *testing.T) {
	s := New()
	seedPaperData(t, s, 500)
	res, err := s.Execute(sysQ1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["out/q1"] != "out/q1" {
		t.Errorf("outputs = %v", res.Outputs)
	}
	rows, err := s.ReadOutput(res, "out/q1")
	if err != nil || len(rows) == 0 {
		t.Fatalf("no output rows: %v", err)
	}
	if res.SimulatedTime <= 0 {
		t.Error("no simulated time")
	}
	if res.Registered == 0 {
		t.Error("no candidates registered (HA should store the projections)")
	}
}

// TestReuseProducesIdenticalResults is the correctness heart of the
// reproduction: the paper's Q1-then-Q2 scenario must produce byte-identical
// results with and without ReStore.
func TestReuseProducesIdenticalResults(t *testing.T) {
	baseline := New(WithReuse(false), WithHeuristic(HeuristicOff), WithRegistration(false))
	seedPaperData(t, baseline, 500)
	bq1, err := baseline.Execute(sysQ1)
	if err != nil {
		t.Fatal(err)
	}
	bq2, err := baseline.Execute(sysQ2)
	if err != nil {
		t.Fatal(err)
	}
	wantQ1, err := baseline.ReadOutputTSV(bq1, "out/q1")
	if err != nil {
		t.Fatal(err)
	}
	wantQ2, err := baseline.ReadOutputTSV(bq2, "out/q2")
	if err != nil {
		t.Fatal(err)
	}

	sys := New() // full ReStore: reuse + aggressive heuristic
	seedPaperData(t, sys, 500)
	rq1, err := sys.Execute(sysQ1)
	if err != nil {
		t.Fatal(err)
	}
	rq2, err := sys.Execute(sysQ2)
	if err != nil {
		t.Fatal(err)
	}
	gotQ1, err := sys.ReadOutputTSV(rq1, "out/q1")
	if err != nil {
		t.Fatal(err)
	}
	gotQ2, err := sys.ReadOutputTSV(rq2, "out/q2")
	if err != nil {
		t.Fatal(err)
	}

	if strings.Join(gotQ1, "\n") != strings.Join(wantQ1, "\n") {
		t.Error("Q1 results differ under ReStore")
	}
	if strings.Join(gotQ2, "\n") != strings.Join(wantQ2, "\n") {
		t.Error("Q2 results differ under ReStore")
	}
	if len(rq2.Rewrites) == 0 {
		t.Error("Q2 did not reuse anything from Q1's execution")
	}
	// Reuse must strictly reduce the data the workflow reads. (Whether that
	// wins wall-clock depends on data scale vs fixed costs — the bench
	// shape tests assert the timing at paper scale.)
	baseIn, reuseIn := int64(0), int64(0)
	for _, j := range bq2.Jobs {
		baseIn += j.InputBytes
	}
	for _, j := range rq2.Jobs {
		reuseIn += j.InputBytes
	}
	if reuseIn >= baseIn {
		t.Errorf("reuse did not reduce bytes read: baseline=%d reuse=%d", baseIn, reuseIn)
	}
}

func TestRepeatedQueryCollapses(t *testing.T) {
	s := New()
	seedPaperData(t, s, 300)
	if _, err := s.Execute(sysQ2); err != nil {
		t.Fatal(err)
	}
	res2, err := s.Execute(strings.Replace(sysQ2, "out/q2", "out/q2_rerun", 1))
	if err != nil {
		t.Fatal(err)
	}
	// The join job collapses; only the group job (or less) remains.
	if len(res2.Jobs) > 1 {
		t.Errorf("rerun executed %d jobs, want <=1", len(res2.Jobs))
	}
	got, err := s.ReadOutputTSV(res2, "out/q2_rerun")
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.FS().ReadAll("out/q2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(first) {
		t.Errorf("rerun rows = %d, original = %d", len(got), len(first))
	}
}

func TestVariantQueryReusesJoin(t *testing.T) {
	// The paper's L3-variant scenario: same join, different aggregate.
	s := New()
	seedPaperData(t, s, 300)
	if _, err := s.Execute(sysQ2); err != nil {
		t.Fatal(err)
	}
	variant := strings.Replace(strings.Replace(sysQ2, "SUM(", "MAX(", 1), "out/q2", "out/q2max", 1)
	res, err := s.Execute(variant)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewrites) == 0 {
		t.Error("variant did not reuse the shared join")
	}
	// Verify against a fresh baseline.
	base := New(WithReuse(false), WithHeuristic(HeuristicOff), WithRegistration(false))
	seedPaperData(t, base, 300)
	bres, err := base.Execute(variant)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.ReadOutputTSV(bres, "out/q2max")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadOutputTSV(res, "out/q2max")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Error("variant results differ under reuse")
	}
}

func TestHeuristicOffNoInjection(t *testing.T) {
	s := New(WithHeuristic(HeuristicOff))
	seedPaperData(t, s, 200)
	res, err := s.Execute(sysQ1)
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectedBytes != 0 {
		t.Errorf("injected bytes = %d with HeuristicOff", res.InjectedBytes)
	}
}

func TestInjectionOverheadVisible(t *testing.T) {
	off := New(WithHeuristic(HeuristicOff), WithReuse(false), WithRegistration(false))
	seedPaperData(t, off, 400)
	resOff, err := off.Execute(sysQ1)
	if err != nil {
		t.Fatal(err)
	}
	agg := New(WithHeuristic(HeuristicAggressive), WithReuse(false))
	seedPaperData(t, agg, 400)
	resAgg, err := agg.Execute(sysQ1)
	if err != nil {
		t.Fatal(err)
	}
	if resAgg.InjectedBytes == 0 {
		t.Fatal("aggressive heuristic stored nothing")
	}
	if resAgg.SimulatedTime <= resOff.SimulatedTime {
		t.Errorf("injection shows no overhead: off=%v agg=%v", resOff.SimulatedTime, resAgg.SimulatedTime)
	}
}

func TestEvictionOnInputChange(t *testing.T) {
	s := New()
	seedPaperData(t, s, 200)
	if _, err := s.Execute(sysQ1); err != nil {
		t.Fatal(err)
	}
	if s.Repository().Len() == 0 {
		t.Fatal("nothing registered")
	}
	// Modify the base table: all entries derived from it must be evicted on
	// the next query.
	seedPaperData(t, s, 210)
	res, err := s.Execute(strings.Replace(sysQ1, "out/q1", "out/q1b", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewrites) != 0 {
		t.Error("stale entries were reused after input changed")
	}
	if len(res.Evicted) == 0 {
		t.Error("no entries evicted after input change")
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	s := New()
	if _, err := s.Execute("this is not pig latin"); err == nil {
		t.Error("bad script accepted")
	}
	if _, err := s.Execute("A = load 'x' as (a);"); err == nil {
		t.Error("store-less script accepted")
	}
}

func TestReadOutputUnknownPath(t *testing.T) {
	s := New()
	seedPaperData(t, s, 100)
	res, err := s.Execute(sysQ1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadOutput(res, "out/never_stored"); err == nil {
		t.Error("unknown output accepted")
	}
}

func TestSequentialQueriesShareRepositoryGrowth(t *testing.T) {
	s := New()
	seedPaperData(t, s, 200)
	if _, err := s.Execute(sysQ1); err != nil {
		t.Fatal(err)
	}
	n1 := s.Repository().Len()
	if _, err := s.Execute(sysQ2); err != nil {
		t.Fatal(err)
	}
	n2 := s.Repository().Len()
	if n1 == 0 || n2 < n1 {
		t.Errorf("repository growth wrong: %d -> %d", n1, n2)
	}
	// A third run of Q2 should add nothing new (all plans deduplicated).
	if _, err := s.Execute(strings.Replace(sysQ2, "out/q2", "out/q2c", 1)); err != nil {
		t.Fatal(err)
	}
	if s.Repository().Len() != n2 {
		t.Errorf("duplicate plans entered repository: %d -> %d", n2, s.Repository().Len())
	}
}
