// Package shardkey derives stable shard keys from DFS paths. It is the one
// routing function shared by every sharded domain of the execution core —
// the DFS namespace shards, the per-shard lease tables, the repository's
// path-index shards, and the per-shard WAL streams — so that a path always
// lands in the same shard no matter which subsystem asks.
//
// The derivation must satisfy one invariant on top of determinism, because
// the lease tables detect conflicts only within a shard: any two paths that
// can conflict under prefix scoping (restore.PathsConflict — equal, or one a
// parent of the other at a '/' boundary) must either map to the same shard
// or at least one of them must be classified shallow, in which case its
// access set registers in every shard (the barrier). Root implements that
// with a namespace-aware depth rule:
//
//   - Outside the "restore/" namespace the root is the first path segment.
//     Two conflicting paths always share their first segment, so they always
//     share a root — single-segment dataset names like "page_views" are
//     deep, not barriers.
//   - Inside "restore/" the root is the first three segments ("restore/tmp/q7",
//     "restore/sub/s12"): each query's private compile namespace and each
//     injected sub-job output gets its own shard instead of all of ReStore's
//     bookkeeping serializing on one. A restore/ path with fewer than three
//     segments ("restore", "restore/tmp") prefix-covers many roots at once,
//     so it is shallow: its lease must take the cross-shard barrier.
//
// Storage routing (Index) needs only per-path determinism, not cross-path
// colocation, so shallow paths hash by their full path there instead of
// forcing anything global.
package shardkey

import "strings"

// restoreNS is the system namespace whose layout is minted by the engine
// itself (restore/tmp/qN compile namespaces, restore/sub/sN injections).
const restoreNS = "restore"

// restoreDepth is how many leading segments form a shard root under
// restore/: "restore/tmp/q7/part0" roots at "restore/tmp/q7".
const restoreDepth = 3

// Root returns the shard-colocation root of a path and whether the path is
// deep. Deep paths with a common prefix-scoped ancestor share a root (see
// the package comment for the invariant); shallow paths (restore/ paths
// shorter than restoreDepth, or an empty path) have no colocation-safe root
// and must be treated as touching every shard by lease derivation.
func Root(path string) (root string, deep bool) {
	if path == "" {
		return "", false
	}
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	if first != restoreNS {
		return first, true
	}
	// Under restore/: take the first restoreDepth segments, or declare the
	// path shallow when it has fewer.
	end := 0
	for seg := 0; seg < restoreDepth; seg++ {
		i := strings.IndexByte(path[end:], '/')
		if i < 0 {
			if seg == restoreDepth-1 {
				return path, true
			}
			return path, false
		}
		if seg == restoreDepth-1 {
			return path[:end+i], true
		}
		end += i + 1
	}
	return path, false // unreachable
}

// Index returns the shard index of a path for an n-way sharding. It is a
// total deterministic function: deep paths hash by their Root (so a root's
// whole subtree colocates), shallow paths hash by their full path (storage
// structures like the DFS only need per-path stability; lease derivation
// handles shallow paths via the barrier instead). n < 2 always returns 0.
func Index(path string, n int) int {
	if n < 2 {
		return 0
	}
	root, deep := Root(path)
	if !deep {
		root = path
	}
	return int(fnv32a(root) % uint32(n))
}

// Shards returns the ascending shard-index set an operation touching the
// given paths must register in, for an n-way sharding. barrier reports that
// the operation must hold every shard: the caller passed universal=true
// (checkpoints, repository swaps), or some path is shallow — its prefix
// scope spans roots that hash apart, so only the full barrier preserves the
// lease table's conflict detection. With barrier true the returned set is
// 0..n-1.
func Shards(paths []string, universal bool, n int) (shards []int, barrier bool) {
	if n < 2 {
		return []int{0}, universal
	}
	if universal {
		return allShards(n), true
	}
	var mask = make([]bool, n)
	count := 0
	for _, p := range paths {
		if _, deep := Root(p); !deep {
			return allShards(n), true
		}
		if i := Index(p, n); !mask[i] {
			mask[i] = true
			count++
		}
	}
	if count == 0 {
		// A set touching no paths still needs a home table so universal
		// barriers drain it; shard 0 is the canonical one.
		return []int{0}, false
	}
	shards = make([]int, 0, count)
	for i, on := range mask {
		if on {
			shards = append(shards, i)
		}
	}
	return shards, false
}

// allShards returns 0..n-1.
func allShards(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// fnv32a is the 32-bit FNV-1a hash (inlined to keep the hot routing path
// allocation-free; hash/fnv's interface forces a write-through object).
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
