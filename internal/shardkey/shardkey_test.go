package shardkey

import (
	"strings"
	"testing"
)

// pathsConflict mirrors restore.PathsConflict (equal, or parent at a '/'
// boundary). Duplicated here so the fuzz target stays dependency-free: the
// root package imports shardkey, and the colocation invariant under test is
// defined in terms of exactly this predicate.
func pathsConflict(a, b string) bool {
	if a == b {
		return true
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	return strings.HasPrefix(b, a) && b[len(a)] == '/'
}

func TestRootDepthRule(t *testing.T) {
	cases := []struct {
		path string
		root string
		deep bool
	}{
		{"page_views", "page_views", true},
		{"users", "users", true},
		{"in/c0", "in", true},
		{"out/c3/q2/part0", "out", true},
		{"restore/tmp/q7", "restore/tmp/q7", true},
		{"restore/tmp/q7/j1-out", "restore/tmp/q7", true},
		{"restore/sub/s12", "restore/sub/s12", true},
		{"restore/tmp", "restore/tmp", false},
		{"restore", "restore", false},
		{"", "", false},
	}
	for _, c := range cases {
		root, deep := Root(c.path)
		if root != c.root || deep != c.deep {
			t.Errorf("Root(%q) = (%q, %v), want (%q, %v)", c.path, root, deep, c.root, c.deep)
		}
	}
}

func TestIndexStableAndBounded(t *testing.T) {
	paths := []string{"page_views", "in/c0", "out/c1/q1", "restore/tmp/q1", "restore/tmp/q1/x", "restore/tmp", ""}
	for _, p := range paths {
		for _, n := range []int{1, 2, 4, 8, 13} {
			i := Index(p, n)
			if i < 0 || i >= max(n, 1) {
				t.Fatalf("Index(%q, %d) = %d out of range", p, n, i)
			}
			if j := Index(p, n); j != i {
				t.Fatalf("Index(%q, %d) unstable: %d then %d", p, n, i, j)
			}
		}
	}
}

func TestSubtreeColocates(t *testing.T) {
	const n = 8
	for _, base := range []string{"out/c3", "restore/tmp/q7", "restore/sub/s12", "page_views"} {
		want := Index(base, n)
		for _, suffix := range []string{"/part0", "/a/b/c", "/x"} {
			if got := Index(base+suffix, n); got != want {
				t.Errorf("Index(%q) = %d, want %d (same as %q)", base+suffix, got, want, base)
			}
		}
	}
}

func TestShardsBarrier(t *testing.T) {
	const n = 4
	if s, barrier := Shards(nil, true, n); !barrier || len(s) != n {
		t.Fatalf("universal: shards=%v barrier=%v, want all %d + barrier", s, barrier, n)
	}
	// A shallow restore/ path forces the barrier.
	if s, barrier := Shards([]string{"restore/tmp"}, false, n); !barrier || len(s) != n {
		t.Fatalf("shallow: shards=%v barrier=%v, want all %d + barrier", s, barrier, n)
	}
	// Deep disjoint paths get a proper subset.
	s, barrier := Shards([]string{"in/c0", "restore/tmp/q1"}, false, n)
	if barrier || len(s) == 0 || len(s) > 2 {
		t.Fatalf("deep: shards=%v barrier=%v", s, barrier)
	}
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Fatalf("shards not ascending: %v", s)
		}
	}
	// The empty set still registers somewhere so universal leases drain it.
	if s, barrier := Shards(nil, false, n); barrier || len(s) != 1 || s[0] != 0 {
		t.Fatalf("empty: shards=%v barrier=%v, want [0]", s, barrier)
	}
	// n=1 degenerates to the single-domain oracle.
	if s, barrier := Shards([]string{"a", "restore/tmp"}, false, 1); barrier || len(s) != 1 || s[0] != 0 {
		t.Fatalf("n=1: shards=%v barrier=%v, want [0]", s, barrier)
	}
}

// FuzzShardKey checks the colocation invariant the lease tables rely on:
// for ANY two conflicting paths (prefix-scoped overlap), their lease shard
// sets must collide — same shard, or at least one side classified as the
// cross-shard barrier — and universal sets always map to the barrier.
// Storage routing (Index) must be total, stable, and subtree-colocated for
// deep paths.
func FuzzShardKey(f *testing.F) {
	f.Add("page_views", "page_views/part0", 8)
	f.Add("restore/tmp/q1", "restore/tmp/q1/j2-out", 8)
	f.Add("restore/tmp", "restore/tmp/q9", 4)
	f.Add("restore", "restore/sub/s3", 5)
	f.Add("in/c0", "in/c1", 2)
	f.Add("out/a", "out/ab", 3)
	f.Add("", "x", 7)
	f.Fuzz(func(t *testing.T, a, b string, n int) {
		if n < 1 || n > 64 {
			n = 1 + (abs(n) % 64)
		}
		// Index is total and bounded for every input.
		for _, p := range []string{a, b} {
			i := Index(p, n)
			if i < 0 || i >= n {
				t.Fatalf("Index(%q, %d) = %d out of range", p, n, i)
			}
		}
		// Subtree colocation: every deep path shares its root's shard.
		for _, p := range []string{a, b} {
			if root, deep := Root(p); deep {
				if Index(p, n) != Index(root, n) {
					t.Fatalf("deep path %q shard %d != root %q shard %d", p, Index(p, n), root, Index(root, n))
				}
				if _, barrier := Shards([]string{p}, false, n); barrier {
					t.Fatalf("deep path %q forced the barrier", p)
				}
			}
		}
		// The lease-table invariant: conflicting paths collide in some shard.
		if pathsConflict(a, b) {
			sa, ba := Shards([]string{a}, false, n)
			sb, bb := Shards([]string{b}, false, n)
			if !ba && !bb && !intersect(sa, sb) {
				t.Fatalf("conflicting paths %q (shards %v) and %q (shards %v) never meet", a, sa, b, sb)
			}
		}
		// Universal sets map to the full barrier regardless of paths.
		if s, barrier := Shards([]string{a, b}, true, n); !barrier || len(s) != n {
			t.Fatalf("universal over (%q, %q): shards=%v barrier=%v", a, b, s, barrier)
		}
	})
}

func intersect(a, b []int) bool {
	seen := make(map[int]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, y := range b {
		if seen[y] {
			return true
		}
	}
	return false
}

func abs(n int) int {
	if n < 0 {
		if n == -n { // MinInt
			return 0
		}
		return -n
	}
	return n
}
