package types

import (
	"encoding/json"
	"fmt"
)

// valueJSON is the wire form of a Value for repository persistence. Only
// scalar values appear in plans (literals in expressions), but the codec
// supports the full model for completeness.
type valueJSON struct {
	Kind  string        `json:"kind"`
	Bool  bool          `json:"bool,omitempty"`
	Int   int64         `json:"int,omitempty"`
	Float float64       `json:"float,omitempty"`
	Str   string        `json:"str,omitempty"`
	Tuple []valueJSON   `json:"tuple,omitempty"`
	Bag   [][]valueJSON `json:"bag,omitempty"`
}

func toValueJSON(v Value) valueJSON {
	out := valueJSON{Kind: v.kind.String()}
	switch v.kind {
	case KindBool:
		out.Bool = v.b
	case KindInt:
		out.Int = v.i
	case KindFloat:
		out.Float = v.f
	case KindString:
		out.Str = v.s
	case KindTuple:
		for _, e := range v.t {
			out.Tuple = append(out.Tuple, toValueJSON(e))
		}
	case KindBag:
		for _, t := range v.bag.Tuples {
			var row []valueJSON
			for _, e := range t {
				row = append(row, toValueJSON(e))
			}
			out.Bag = append(out.Bag, row)
		}
	}
	return out
}

func fromValueJSON(j valueJSON) (Value, error) {
	switch j.Kind {
	case "null":
		return Null(), nil
	case "bool":
		return NewBool(j.Bool), nil
	case "int":
		return NewInt(j.Int), nil
	case "float":
		return NewFloat(j.Float), nil
	case "string":
		return NewString(j.Str), nil
	case "tuple":
		t := make(Tuple, len(j.Tuple))
		for i, e := range j.Tuple {
			v, err := fromValueJSON(e)
			if err != nil {
				return Value{}, err
			}
			t[i] = v
		}
		return NewTuple(t), nil
	case "bag":
		bag := &Bag{}
		for _, row := range j.Bag {
			t := make(Tuple, len(row))
			for i, e := range row {
				v, err := fromValueJSON(e)
				if err != nil {
					return Value{}, err
				}
				t[i] = v
			}
			bag.Add(t)
		}
		return NewBag(bag), nil
	default:
		return Value{}, fmt.Errorf("types: unknown value kind %q in JSON", j.Kind)
	}
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	return json.Marshal(toValueJSON(v))
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var j valueJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	out, err := fromValueJSON(j)
	if err != nil {
		return err
	}
	*v = out
	return nil
}

// MarshalJSON implements json.Marshaler for Kind (as its name).
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON implements json.Unmarshaler for Kind.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "null":
		*k = KindNull
	case "bool":
		*k = KindBool
	case "int":
		*k = KindInt
	case "float":
		*k = KindFloat
	case "string":
		*k = KindString
	case "tuple":
		*k = KindTuple
	case "bag":
		*k = KindBag
	default:
		return fmt.Errorf("types: unknown kind %q", s)
	}
	return nil
}
