// Package types defines the data model shared by every layer of the system:
// scalar values, tuples, bags, schemas, ordering, and the binary and text
// codecs used to persist datasets in the distributed file system and to move
// records through the MapReduce shuffle.
package types

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value. The vocabulary follows the Pig
// data model: scalars, tuples, and bags (unordered collections of tuples).
type Kind uint8

const (
	// KindNull is the absence of a value.
	KindNull Kind = iota
	// KindBool is a boolean scalar.
	KindBool
	// KindInt is a 64-bit signed integer scalar.
	KindInt
	// KindFloat is a 64-bit floating point scalar.
	KindFloat
	// KindString is a UTF-8 string scalar.
	KindString
	// KindTuple is an ordered sequence of values.
	KindTuple
	// KindBag is a collection of tuples (the output of Group/CoGroup).
	KindBag
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTuple:
		return "tuple"
	case KindBag:
		return "bag"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed datum. The zero Value is null. Values are
// represented as a tagged struct rather than an interface so that hot loops
// (comparison, hashing, encoding) avoid per-datum allocations.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	t    Tuple
	bag  *Bag
}

// Tuple is an ordered sequence of values.
type Tuple []Value

// Bag is a collection of tuples. Bags preserve insertion order internally but
// are compared as multisets.
type Bag struct {
	Tuples []Tuple
}

// Null returns the null value.
func Null() Value { return Value{} }

// NewBool wraps a bool.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// NewInt wraps an int64.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat wraps a float64.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString wraps a string.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewTuple wraps a tuple.
func NewTuple(t Tuple) Value { return Value{kind: KindTuple, t: t} }

// NewBag wraps a bag.
func NewBag(b *Bag) Value { return Value{kind: KindBag, bag: b} }

// Kind reports the runtime kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload. It panics if the kind is not KindBool.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.b
}

// Int returns the integer payload. It panics if the kind is not KindInt.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload. It panics if the kind is not KindFloat.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
	return v.f
}

// Str returns the string payload. It panics if the kind is not KindString.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// Tuple returns the tuple payload. It panics if the kind is not KindTuple.
func (v Value) Tuple() Tuple {
	if v.kind != KindTuple {
		panic(fmt.Sprintf("types: Tuple() on %s value", v.kind))
	}
	return v.t
}

// Bag returns the bag payload. It panics if the kind is not KindBag.
func (v Value) Bag() *Bag {
	if v.kind != KindBag {
		panic(fmt.Sprintf("types: Bag() on %s value", v.kind))
	}
	return v.bag
}

// AsFloat converts numeric values to float64 for arithmetic. ok is false for
// non-numeric values.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Truthy reports whether the value counts as true in a filter predicate.
// Null is false; only boolean true is true.
func (v Value) Truthy() bool { return v.kind == KindBool && v.b }

// String renders the value in the text (tab-free) form used by the text
// codec and by error messages.
func (v Value) String() string {
	var sb strings.Builder
	v.appendText(&sb)
	return sb.String()
}

func (v Value) appendText(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteString("")
	case KindBool:
		sb.WriteString(strconv.FormatBool(v.b))
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		sb.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
	case KindString:
		sb.WriteString(v.s)
	case KindTuple:
		sb.WriteByte('(')
		for i, e := range v.t {
			if i > 0 {
				sb.WriteByte(',')
			}
			e.appendText(sb)
		}
		sb.WriteByte(')')
	case KindBag:
		sb.WriteByte('{')
		for i, t := range v.bag.Tuples {
			if i > 0 {
				sb.WriteByte(',')
			}
			NewTuple(t).appendText(sb)
		}
		sb.WriteByte('}')
	}
}

// Compare defines a total order over values. Nulls sort first, then values
// order by kind, then by payload. Int and Float compare numerically with each
// other. Bags compare as sorted multisets.
func Compare(a, b Value) int {
	an, bn := a.numericKind(), b.numericKind()
	if an && bn {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindTuple:
		return CompareTuples(a.t, b.t)
	case KindBag:
		return compareBags(a.bag, b.bag)
	default:
		return 0
	}
}

func (v Value) numericKind() bool { return v.kind == KindInt || v.kind == KindFloat }

// CompareColumn is Compare with the dispatch flattened for the scalar kinds
// the shuffle hot path actually sees. The engine's compiled per-job
// comparators call it per key column instead of threading every field
// through the generic closure chain; the order is identical to Compare's —
// in particular int/int still compares through float64 (as Compare does via
// AsFloat), so the two can never disagree, even past 2^53 where that
// conversion collapses distinct integers. Mixed and nested kinds fall back
// to Compare.
func CompareColumn(a, b Value) int {
	if a.kind != b.kind {
		return Compare(a, b)
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	case KindInt:
		af, bf := float64(a.i), float64(b.i)
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	case KindFloat:
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(a.s, b.s)
	default:
		return Compare(a, b)
	}
}

// CompareTuples orders tuples lexicographically field by field, shorter
// tuples first on ties.
func CompareTuples(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func compareBags(a, b *Bag) int {
	as := a.sortedCopy()
	bs := b.sortedCopy()
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		if c := CompareTuples(as[i], bs[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(as) < len(bs):
		return -1
	case len(as) > len(bs):
		return 1
	default:
		return 0
	}
}

func (b *Bag) sortedCopy() []Tuple {
	out := make([]Tuple, len(b.Tuples))
	copy(out, b.Tuples)
	sort.Slice(out, func(i, j int) bool { return CompareTuples(out[i], out[j]) < 0 })
	return out
}

// Equal reports deep equality under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// EqualTuples reports deep equality of tuples.
func EqualTuples(a, b Tuple) bool { return CompareTuples(a, b) == 0 }

// Add adds the tuple to the bag.
func (b *Bag) Add(t Tuple) { b.Tuples = append(b.Tuples, t) }

// Len returns the number of tuples in the bag.
func (b *Bag) Len() int { return len(b.Tuples) }

// Clone returns a deep copy of the tuple. Scalar payloads are immutable so
// only the container spine is copied.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// CoerceInt parses ints out of int, float, and numeric string values.
func CoerceInt(v Value) (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		if v.f == math.Trunc(v.f) {
			return int64(v.f), true
		}
		return 0, false
	case KindString:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return 0, false
		}
		return n, true
	default:
		return 0, false
	}
}

// CoerceFloat parses floats out of int, float, and numeric string values.
func CoerceFloat(v Value) (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}
