package types

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tuples := []Tuple{
		{},
		{Null()},
		{NewInt(0), NewInt(-1), NewInt(1 << 40)},
		{NewFloat(3.14159), NewString(""), NewString("hello\tworld")},
		{NewBool(true), NewBool(false)},
		{NewTuple(Tuple{NewInt(1), NewTuple(Tuple{NewString("nested")})})},
		{NewBag(&Bag{Tuples: []Tuple{{NewInt(1)}, {NewString("a"), Null()}}})},
	}
	for _, in := range tuples {
		buf := EncodeTuple(nil, in)
		out, n, err := DecodeTuple(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if n != len(buf) {
			t.Errorf("decode consumed %d of %d bytes", n, len(buf))
		}
		if !EqualTuples(in, out) {
			t.Errorf("round trip %v -> %v", in, out)
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomTuple(r, 3)
		buf := EncodeTuple(nil, in)
		out, n, err := DecodeTuple(buf)
		if err != nil || n != len(buf) {
			return false
		}
		// Compare structurally (not via Compare, which treats bags as
		// multisets): re-encode and compare bytes.
		return bytes.Equal(buf, EncodeTuple(nil, out))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1},
		{2, byte(KindString), 0xff}, // truncated string length
		{1, 200},                    // unknown kind
		{1, byte(KindFloat), 1, 2},  // short float
	}
	for _, buf := range cases {
		if _, _, err := DecodeTuple(buf); err == nil {
			t.Errorf("decode of corrupt %v succeeded", buf)
		}
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Tuple{
		{NewString("alice"), NewInt(10)},
		{NewString("bob"), NewInt(20)},
		{NewString("carol"), NewFloat(1.5)},
	}
	for _, tu := range want {
		if err := w.Write(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records != 3 {
		t.Errorf("Records = %d", w.Records)
	}
	if w.Bytes != int64(buf.Len()) {
		t.Errorf("Bytes = %d, buffer has %d", w.Bytes, buf.Len())
	}

	r := NewReader(&buf)
	for i := 0; ; i++ {
		tu, err := r.Read()
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("got %d tuples, want %d", i, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !EqualTuples(tu, want[i]) {
			t.Errorf("tuple %d = %v, want %v", i, tu, want[i])
		}
	}
}

func TestHashTupleStable(t *testing.T) {
	a := Tuple{NewString("user1"), NewInt(7)}
	b := Tuple{NewString("user1"), NewInt(7)}
	if HashTuple(a) != HashTuple(b) {
		t.Error("equal tuples must hash equal")
	}
	c := Tuple{NewString("user2"), NewInt(7)}
	if HashTuple(a) == HashTuple(c) {
		t.Error("different tuples should (almost surely) hash differently")
	}
}

func TestFormatAndParseTSV(t *testing.T) {
	schema := NewSchema(
		Field{Name: "user", Kind: KindString},
		Field{Name: "n", Kind: KindInt},
		Field{Name: "rev", Kind: KindFloat},
	)
	tu := ParseTSVTyped("alice\t3\t1.25", schema)
	if tu[0].Str() != "alice" || tu[1].Int() != 3 || tu[2].Float() != 1.25 {
		t.Errorf("parsed = %v", tu)
	}
	if got := FormatTSV(tu); got != "alice\t3\t1.25" {
		t.Errorf("FormatTSV = %q", got)
	}
	// Missing and malformed columns become null.
	tu = ParseTSVTyped("bob\tnotanint", schema)
	if !tu[1].IsNull() || !tu[2].IsNull() {
		t.Errorf("expected nulls, got %v", tu)
	}
}

func BenchmarkEncodeTuple(b *testing.B) {
	tu := Tuple{NewString("user_1234567"), NewInt(123456), NewFloat(9.99), NewString("page_info_payload")}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = EncodeTuple(buf[:0], tu)
	}
}

func BenchmarkDecodeTuple(b *testing.B) {
	tu := Tuple{NewString("user_1234567"), NewInt(123456), NewFloat(9.99), NewString("page_info_payload")}
	buf := EncodeTuple(nil, tu)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeTuple(buf); err != nil {
			b.Fatal(err)
		}
	}
}
