package types

import (
	"fmt"
	"strings"
)

// Field describes one column of a relation: a name and a declared kind.
// KindNull means "unknown/any", which is how Pig treats undeclared columns.
// Bag and tuple columns carry the element schema in Sub so expressions such
// as SUM(C.est_revenue) can resolve names inside the nested relation.
type Field struct {
	Name string  `json:"name"`
	Kind Kind    `json:"kind"`
	Sub  *Schema `json:"sub,omitempty"`
}

// Schema describes the columns of a relation. Schemas are value types;
// transformations return new schemas.
type Schema struct {
	Fields []Field `json:"fields"`
}

// NewSchema builds a schema from (name, kind) pairs.
func NewSchema(fields ...Field) Schema {
	return Schema{Fields: fields}
}

// SchemaFromNames builds a schema of untyped (KindNull) columns.
func SchemaFromNames(names ...string) Schema {
	fields := make([]Field, len(names))
	for i, n := range names {
		fields[i] = Field{Name: n}
	}
	return Schema{Fields: fields}
}

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Fields) }

// IndexOf returns the position of the named column, or -1 if absent.
func (s Schema) IndexOf(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = f.Name
	}
	return out
}

// String renders the schema as "(a:int, b, c:string)".
func (s Schema) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.Name)
		if f.Kind != KindNull {
			sb.WriteByte(':')
			sb.WriteString(f.Kind.String())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// Concat returns the concatenation of two schemas, prefixing duplicate names
// to keep columns addressable (mirrors Pig's a::col disambiguation).
func (s Schema) Concat(other Schema) Schema {
	seen := make(map[string]bool, len(s.Fields))
	out := make([]Field, 0, len(s.Fields)+len(other.Fields))
	for _, f := range s.Fields {
		seen[f.Name] = true
		out = append(out, f)
	}
	for _, f := range other.Fields {
		name := f.Name
		for seen[name] {
			name = "r::" + name
		}
		seen[name] = true
		out = append(out, Field{Name: name, Kind: f.Kind})
	}
	return Schema{Fields: out}
}

// Project returns the sub-schema at the given column indexes.
func (s Schema) Project(idxs []int) (Schema, error) {
	out := make([]Field, len(idxs))
	for i, ix := range idxs {
		if ix < 0 || ix >= len(s.Fields) {
			return Schema{}, fmt.Errorf("types: project index %d out of range for schema %s", ix, s)
		}
		out[i] = s.Fields[ix]
	}
	return Schema{Fields: out}, nil
}

// Canonical returns a deterministic string used in physical-plan operator
// signatures. Unlike String it always includes kinds.
func (s Schema) Canonical() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(f.Name)
		sb.WriteByte(':')
		sb.WriteString(f.Kind.String())
		if f.Sub != nil {
			sb.WriteString(f.Sub.Canonical())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}
