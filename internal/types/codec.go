package types

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strings"
)

// The binary codec is the storage and shuffle format. Layout per value:
//
//	kind byte, then payload:
//	  null            -> nothing
//	  bool            -> 1 byte
//	  int             -> uvarint(zigzag)
//	  float           -> 8 bytes big endian IEEE-754
//	  string          -> uvarint length + bytes
//	  tuple           -> uvarint arity + values
//	  bag             -> uvarint count + tuples (each as a tuple payload)
//
// A record on disk is one tuple value. Records are length-prefixed so a
// reader can skip without decoding.

// EncodeTuple appends the binary encoding of t to dst and returns it.
func EncodeTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = encodeValue(dst, v)
	}
	return dst
}

func encodeValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		dst = binary.AppendVarint(dst, v.i)
	case KindFloat:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.f))
		dst = append(dst, buf[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindTuple:
		dst = EncodeTuple(dst, v.t)
	case KindBag:
		dst = binary.AppendUvarint(dst, uint64(len(v.bag.Tuples)))
		for _, t := range v.bag.Tuples {
			dst = EncodeTuple(dst, t)
		}
	}
	return dst
}

// DecodeTuple decodes one tuple from buf, returning the tuple and the number
// of bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	arity, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("types: corrupt tuple arity")
	}
	off := n
	t := make(Tuple, arity)
	for i := range t {
		v, n, err := decodeValue(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		t[i] = v
		off += n
	}
	return t, off, nil
}

func decodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Value{}, 0, io.ErrUnexpectedEOF
	}
	kind := Kind(buf[0])
	off := 1
	switch kind {
	case KindNull:
		return Null(), off, nil
	case KindBool:
		if len(buf) < 2 {
			return Value{}, 0, io.ErrUnexpectedEOF
		}
		return NewBool(buf[1] != 0), 2, nil
	case KindInt:
		i, n := binary.Varint(buf[off:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("types: corrupt varint")
		}
		return NewInt(i), off + n, nil
	case KindFloat:
		if len(buf) < off+8 {
			return Value{}, 0, io.ErrUnexpectedEOF
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		return NewFloat(f), off + 8, nil
	case KindString:
		l, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("types: corrupt string length")
		}
		off += n
		if uint64(len(buf)-off) < l {
			return Value{}, 0, io.ErrUnexpectedEOF
		}
		return NewString(string(buf[off : off+int(l)])), off + int(l), nil
	case KindTuple:
		t, n, err := DecodeTuple(buf[off:])
		if err != nil {
			return Value{}, 0, err
		}
		return NewTuple(t), off + n, nil
	case KindBag:
		count, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("types: corrupt bag count")
		}
		off += n
		bag := &Bag{Tuples: make([]Tuple, 0, count)}
		for i := uint64(0); i < count; i++ {
			t, n, err := DecodeTuple(buf[off:])
			if err != nil {
				return Value{}, 0, err
			}
			bag.Add(t)
			off += n
		}
		return NewBag(bag), off, nil
	default:
		return Value{}, 0, fmt.Errorf("types: unknown kind byte %d", buf[0])
	}
}

// Writer streams length-prefixed tuple records to an io.Writer.
type Writer struct {
	w       *bufio.Writer
	scratch []byte
	// Records and Bytes count what has been written.
	Records int64
	Bytes   int64
}

// NewWriter wraps w in a record writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one tuple record.
func (w *Writer) Write(t Tuple) error {
	w.scratch = EncodeTuple(w.scratch[:0], t)
	var lenbuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenbuf[:], uint64(len(w.scratch)))
	if _, err := w.w.Write(lenbuf[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		return err
	}
	w.Records++
	w.Bytes += int64(n + len(w.scratch))
	return nil
}

// Flush flushes the underlying buffer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams length-prefixed tuple records from an io.Reader.
type Reader struct {
	r       *bufio.Reader
	scratch []byte
}

// NewReader wraps r in a record reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read returns the next tuple or io.EOF.
func (r *Reader) Read() (Tuple, error) {
	l, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, err
	}
	if cap(r.scratch) < int(l) {
		r.scratch = make([]byte, l)
	}
	buf := r.scratch[:l]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, fmt.Errorf("types: short record: %w", err)
	}
	t, _, err := DecodeTuple(buf)
	return t, err
}

// HashTuple returns a stable 64-bit hash of the tuple, used to partition
// shuffle keys across reducers.
func HashTuple(t Tuple) uint64 {
	h := fnv.New64a()
	var buf []byte
	buf = EncodeTuple(buf, t)
	h.Write(buf)
	return h.Sum64()
}

// FormatTSV renders a tuple as a tab-separated line (the human-readable
// export format, mirroring PigStorage).
func FormatTSV(t Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return strings.Join(parts, "\t")
}

// ParseTSVTyped parses one tab-separated line according to a schema. Columns
// with KindNull schema entries stay strings; missing columns become null.
func ParseTSVTyped(line string, schema Schema) Tuple {
	cols := strings.Split(line, "\t")
	n := schema.Len()
	if n == 0 {
		n = len(cols)
	}
	t := make(Tuple, n)
	for i := 0; i < n; i++ {
		if i >= len(cols) {
			t[i] = Null()
			continue
		}
		raw := cols[i]
		kind := KindNull
		if i < schema.Len() {
			kind = schema.Fields[i].Kind
		}
		switch kind {
		case KindInt:
			if iv, ok := CoerceInt(NewString(raw)); ok {
				t[i] = NewInt(iv)
			} else {
				t[i] = Null()
			}
		case KindFloat:
			if fv, ok := CoerceFloat(NewString(raw)); ok {
				t[i] = NewFloat(fv)
			} else {
				t[i] = Null()
			}
		case KindBool:
			t[i] = NewBool(raw == "true")
		default:
			t[i] = NewString(raw)
		}
	}
	return t
}
