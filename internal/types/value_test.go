package types

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		want string
	}{
		{Null(), KindNull, ""},
		{NewBool(true), KindBool, "true"},
		{NewInt(-42), KindInt, "-42"},
		{NewFloat(2.5), KindFloat, "2.5"},
		{NewString("hello"), KindString, "hello"},
		{NewTuple(Tuple{NewInt(1), NewString("x")}), KindTuple, "(1,x)"},
		{NewBag(&Bag{Tuples: []Tuple{{NewInt(1)}, {NewInt(2)}}}), KindBag, "{(1),(2)}"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on string value did not panic")
		}
	}()
	NewString("x").Int()
}

func TestCompareScalars(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewFloat(1.5), NewInt(2), -1},
		{NewString("a"), NewString("b"), -1},
		{Null(), NewInt(0), -1},
		{Null(), Null(), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareTuples(t *testing.T) {
	a := Tuple{NewInt(1), NewString("a")}
	b := Tuple{NewInt(1), NewString("b")}
	if CompareTuples(a, b) >= 0 {
		t.Error("expected a < b")
	}
	if CompareTuples(a, a) != 0 {
		t.Error("expected a == a")
	}
	short := Tuple{NewInt(1)}
	if CompareTuples(short, a) >= 0 {
		t.Error("shorter tuple should sort first on shared prefix")
	}
}

func TestCompareBagsAsMultisets(t *testing.T) {
	a := NewBag(&Bag{Tuples: []Tuple{{NewInt(1)}, {NewInt(2)}}})
	b := NewBag(&Bag{Tuples: []Tuple{{NewInt(2)}, {NewInt(1)}}})
	if Compare(a, b) != 0 {
		t.Error("bags with same tuples in different order should compare equal")
	}
	c := NewBag(&Bag{Tuples: []Tuple{{NewInt(1)}}})
	if Compare(c, a) >= 0 {
		t.Error("smaller bag should sort first")
	}
}

func TestTruthy(t *testing.T) {
	if !NewBool(true).Truthy() {
		t.Error("true should be truthy")
	}
	for _, v := range []Value{NewBool(false), Null(), NewInt(1), NewString("true")} {
		if v.Truthy() {
			t.Errorf("%v should not be truthy", v)
		}
	}
}

func TestCoerce(t *testing.T) {
	if n, ok := CoerceInt(NewString(" 42 ")); !ok || n != 42 {
		t.Errorf("CoerceInt string = %d,%v", n, ok)
	}
	if _, ok := CoerceInt(NewString("x")); ok {
		t.Error("CoerceInt should fail on non-numeric string")
	}
	if n, ok := CoerceInt(NewFloat(3.0)); !ok || n != 3 {
		t.Errorf("CoerceInt float = %d,%v", n, ok)
	}
	if _, ok := CoerceInt(NewFloat(3.5)); ok {
		t.Error("CoerceInt should fail on fractional float")
	}
	if f, ok := CoerceFloat(NewString("2.5")); !ok || f != 2.5 {
		t.Errorf("CoerceFloat = %v,%v", f, ok)
	}
	if f, ok := CoerceFloat(NewInt(2)); !ok || f != 2 {
		t.Errorf("CoerceFloat int = %v,%v", f, ok)
	}
}

func TestTupleClone(t *testing.T) {
	orig := Tuple{NewInt(1), NewString("a")}
	cl := orig.Clone()
	cl[0] = NewInt(99)
	if orig[0].Int() != 1 {
		t.Error("clone aliases original")
	}
}

// randomValue builds an arbitrary value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	max := 7
	if depth <= 0 {
		max = 5 // scalars only
	}
	switch r.Intn(max) {
	case 0:
		return Null()
	case 1:
		return NewBool(r.Intn(2) == 0)
	case 2:
		return NewInt(r.Int63() - (1 << 62))
	case 3:
		return NewFloat(r.NormFloat64() * 1e6)
	case 4:
		b := make([]byte, r.Intn(12))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return NewString(string(b))
	case 5:
		return NewTuple(randomTuple(r, depth-1))
	default:
		bag := &Bag{}
		for i, n := 0, r.Intn(3); i < n; i++ {
			bag.Add(randomTuple(r, depth-1))
		}
		return NewBag(bag)
	}
}

func randomTuple(r *rand.Rand, depth int) Tuple {
	t := make(Tuple, r.Intn(5))
	for i := range t {
		t[i] = randomValue(r, depth)
	}
	return t
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r, 2), randomValue(r, 2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Reflexivity.
	g := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomValue(r, 2)
		return Compare(a, a) == 0
	}
	if err := quick.Check(g, cfg); err != nil {
		t.Error(err)
	}
	// Transitivity on sorted triples.
	h := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := []Value{randomValue(r, 2), randomValue(r, 2), randomValue(r, 2)}
		sort.Slice(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
		return Compare(vs[0], vs[1]) <= 0 && Compare(vs[1], vs[2]) <= 0 && Compare(vs[0], vs[2]) <= 0
	}
	if err := quick.Check(h, cfg); err != nil {
		t.Error(err)
	}
}

// TestCompareColumnMatchesCompare pins the engine's flattened column
// comparator to the generic total order: any disagreement would let the
// MapReduce shuffle's compiled comparators order keys differently from the
// serial reference plane. The explicit pairs cover the traps — int/int past
// 2^53 where the float64 conversion collapses neighbors, int/float numeric
// ties, and mixed-kind fallbacks.
func TestCompareColumnMatchesCompare(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(1<<53 + 1), NewInt(1<<53 + 2)}, // collide under float64: both orders must agree they tie
		{NewInt(math.MaxInt64), NewInt(math.MaxInt64 - 1)},
		{NewInt(3), NewFloat(3)},
		{NewFloat(2.5), NewInt(2)},
		{Null(), NewInt(0)},
		{NewBool(false), NewBool(true)},
		{NewString("ab"), NewString("ab\x00")},
		{NewTuple(Tuple{NewInt(1)}), NewTuple(Tuple{NewInt(1), NewInt(2)})},
	}
	for _, p := range pairs {
		if got, want := CompareColumn(p[0], p[1]), Compare(p[0], p[1]); got != want {
			t.Errorf("CompareColumn(%v, %v) = %d, Compare = %d", p[0], p[1], got, want)
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r, 2), randomValue(r, 2)
		return CompareColumn(a, b) == Compare(a, b) && CompareColumn(b, a) == Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(Field{Name: "user", Kind: KindString}, Field{Name: "rev", Kind: KindFloat})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.IndexOf("rev") != 1 || s.IndexOf("missing") != -1 {
		t.Error("IndexOf wrong")
	}
	if got := s.String(); got != "(user:string, rev:float)" {
		t.Errorf("String = %q", got)
	}
	if !reflect.DeepEqual(s.Names(), []string{"user", "rev"}) {
		t.Error("Names wrong")
	}
	p, err := s.Project([]int{1})
	if err != nil || p.Fields[0].Name != "rev" {
		t.Errorf("Project = %v, %v", p, err)
	}
	if _, err := s.Project([]int{5}); err == nil {
		t.Error("Project out of range should error")
	}
}

func TestSchemaConcatDisambiguates(t *testing.T) {
	a := SchemaFromNames("user", "x")
	b := SchemaFromNames("user", "y")
	c := a.Concat(b)
	want := []string{"user", "x", "r::user", "y"}
	if !reflect.DeepEqual(c.Names(), want) {
		t.Errorf("Concat names = %v, want %v", c.Names(), want)
	}
}

func TestSchemaCanonicalDeterministic(t *testing.T) {
	s := NewSchema(Field{Name: "a", Kind: KindInt}, Field{Name: "b"})
	if s.Canonical() != "(a:int,b:null)" {
		t.Errorf("Canonical = %q", s.Canonical())
	}
}
