package dfs

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// This file is the FS half of the incremental-persistence subsystem: instead
// of re-exporting the whole filesystem on every checkpoint (Export), the FS
// emits one append-only Mutation record per committed change and tracks
// which files are dirty since the last snapshot. A write-ahead log
// (internal/persist) appends the records durably while queries execute;
// replaying them over the last snapshot (Apply) reconstructs the FS exactly.
// Each namespace shard has its own journal hook and dirty feeds, so a
// sharded persister can run one WAL stream per shard with no cross-shard
// ordering requirement: a path's records are totally ordered within its own
// shard's stream, and records for different paths commute (they carry
// absolute state and touch disjoint keys).

// MutationOp enumerates the journaled FS mutations.
type MutationOp string

// Mutation operations. Every mutating FS method maps to exactly one op.
const (
	// MutCreate records Create: a file (re)created with empty partitions.
	MutCreate MutationOp = "create"
	// MutCommit records CommitPartition: one partition's bytes installed.
	MutCommit MutationOp = "commit"
	// MutSchema records SetSchema.
	MutSchema MutationOp = "schema"
	// MutDelete records Delete.
	MutDelete MutationOp = "delete"
)

// Mutation is one committed FS change, journaled in apply order. Records
// carry absolute resulting state (the assigned file version, the full
// partition bytes) rather than deltas, so replaying any suffix of the log —
// even records already reflected in a newer snapshot — converges to the
// state at the end of the log. That idempotence is what makes the
// compactor's snapshot-then-truncate sequence crash-safe at every
// intermediate point (see internal/server/persist.go).
type Mutation struct {
	Op   MutationOp `json:"op"`
	Path string     `json:"path"`
	// Version is the file version assigned by Create, or the FS clock after
	// a Delete (deletes bump the clock so recreations get fresh versions).
	Version uint64 `json:"version,omitempty"`
	// Partitions is the partition count of a created file.
	Partitions int `json:"partitions,omitempty"`
	// Part, Data, and Records describe a committed partition. Data aliases
	// the committed copy-on-write slice and must not be modified.
	Part    int    `json:"part,omitempty"`
	Data    []byte `json:"data,omitempty"`
	Records int64  `json:"records,omitempty"`
	// Schema is the layout attached by SetSchema.
	Schema types.Schema `json:"schema,omitempty"`
}

// Journal receives every committed FS mutation, in commit order. Record is
// called synchronously while the owning shard's write lock is held, so the
// order of Record calls on one journal is exactly the order that shard's
// mutations took effect; implementations must be fast (buffer in memory) and
// must not call back into the FS.
type Journal interface {
	Record(m Mutation)
}

// SetJournal attaches (or with nil detaches) the same mutation journal to
// every shard. Attach it only when the FS is quiescent (daemon startup,
// after recovery): mutations committed before the attach are not replayed to
// the journal. With more than one shard the single journal sees concurrent
// Record calls ordered only per shard; use SetShardJournals for one stream
// per shard.
func (fs *FS) SetJournal(j Journal) {
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.Lock()
		sh.journal = j
		sh.mu.Unlock()
	}
}

// SetShardJournals attaches one journal per shard (js[i] receives exactly
// shard i's mutations, each under shard i's write lock — so per-journal
// Record calls are totally ordered and never concurrent). len(js) must equal
// NumShards. Same quiescence requirement as SetJournal.
func (fs *FS) SetShardJournals(js []Journal) {
	if len(js) != len(fs.shards) {
		panic(fmt.Sprintf("dfs: SetShardJournals: %d journals for %d shards", len(js), len(fs.shards)))
	}
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.Lock()
		sh.journal = js[i]
		sh.mu.Unlock()
	}
}

// noteLocked records one committed mutation: it marks the file dirty (for
// both the snapshot and eviction consumers), bumps the mutation counter, and
// forwards the record to the shard's journal. Called with sh.mu held by
// every mutating method, and sh must own m.Path.
func (fs *FS) noteLocked(sh *fsShard, m Mutation) {
	if sh.dirty == nil {
		sh.dirty = make(map[string]struct{})
	}
	sh.dirty[m.Path] = struct{}{}
	markEvictDirtyLocked(sh, m.Path)
	fs.mutations.Add(1)
	if sh.journal != nil {
		sh.journal.Record(m)
	}
}

// markEvictDirtyLocked adds the path to the shard's eviction mutation feed.
// Called with sh.mu held.
func markEvictDirtyLocked(sh *fsShard, path string) {
	if sh.evictDirty == nil {
		sh.evictDirty = make(map[string]struct{})
	}
	sh.evictDirty[path] = struct{}{}
}

// DirtyPaths returns the sorted paths mutated since the last TakeDirty (or
// since the FS was created/imported). A path stays dirty even if later
// deleted — the deletion itself is a pending change the next snapshot must
// capture.
func (fs *FS) DirtyPaths() []string {
	var out []string
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.RLock()
		for p := range sh.dirty {
			out = append(out, p)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// TakeDirty returns the dirty paths and resets the tracking — the compactor
// calls it when a snapshot has captured everything, so DirtyPaths afterwards
// reports only post-snapshot churn.
func (fs *FS) TakeDirty() []string {
	var out []string
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.Lock()
		dirty := sh.dirty
		sh.dirty = nil
		sh.mu.Unlock()
		for p := range dirty {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// TakeEvictionDirty returns the sorted paths mutated since the last
// TakeEvictionDirty and resets the feed across every shard. This is the
// eviction subsystem's mutation feed: consumers run Rule-4 staleness checks
// only on repository entries touching the returned paths, so per-query
// invalidation work scales with what changed rather than with repository
// size. The feed is independent of the snapshot consumer
// (DirtyPaths/TakeDirty); any one taker owns a returned batch exclusively.
func (fs *FS) TakeEvictionDirty() []string {
	var out []string
	for i := range fs.shards {
		out = append(out, fs.TakeEvictionDirtyShard(i)...)
	}
	sort.Strings(out)
	return out
}

// TakeEvictionDirtyShard drains shard i's eviction feed only — the per-shard
// GC scanners use it so each scanner's work is proportional to its own
// shard's churn and scanners on different shards never contend.
func (fs *FS) TakeEvictionDirtyShard(i int) []string {
	sh := &fs.shards[i]
	sh.mu.Lock()
	taken := sh.evictDirty
	sh.evictDirty = nil
	sh.mu.Unlock()
	out := make([]string, 0, len(taken))
	for p := range taken {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// MutationCount returns the number of mutations committed over the FS's
// lifetime (monotonic; snapshot Import does not reset it).
func (fs *FS) MutationCount() uint64 { return fs.mutations.Load() }

// DirtyCount reports how many files are dirty (metrics poll this on every
// scrape, where materializing DirtyPaths would be wasted work).
func (fs *FS) DirtyCount() int {
	n := 0
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.RLock()
		n += len(sh.dirty)
		sh.mu.RUnlock()
	}
	return n
}

// advanceClock lifts the FS-global version clock to at least v (CAS-max, so
// concurrent replays of different shards' streams may race freely).
func (fs *FS) advanceClock(v uint64) {
	for {
		cur := fs.version.Load()
		if v <= cur || fs.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Apply replays one journaled mutation, without re-journaling it. It is the
// recovery-time inverse of the Journal hook: applying a log's records in
// order over the snapshot they extend reconstructs the FS exactly. Apply is
// deliberately tolerant of records already reflected in the state (a crash
// between the compactor's snapshot rename and its log truncation makes the
// log a superset of the snapshot): creates overwrite, deletes of missing
// files are no-ops, and version fields only ever advance the FS clock.
// Because records carry absolute state, replay only needs per-path order —
// shard streams may be applied in any interleaving (order-independence is
// what the crash battery's shuffled-replay test asserts).
func (fs *FS) Apply(m Mutation) error {
	sh := fs.shardOf(m.Path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch m.Op {
	case MutCreate:
		parts := m.Partitions
		if parts < 1 {
			parts = 1
		}
		sh.files[m.Path] = &File{Path: m.Path, Parts: make([]Partition, parts), Version: m.Version}
		fs.advanceClock(m.Version)
	case MutCommit:
		f, ok := sh.files[m.Path]
		if !ok {
			return fmt.Errorf("dfs: apply commit to %s: %w", m.Path, ErrNotExist)
		}
		if m.Part < 0 || m.Part >= len(f.Parts) {
			return fmt.Errorf("dfs: apply commit to %s: partition %d out of range [0,%d)", m.Path, m.Part, len(f.Parts))
		}
		f.Parts[m.Part] = Partition{Data: m.Data, Records: m.Records}
	case MutSchema:
		f, ok := sh.files[m.Path]
		if !ok {
			return fmt.Errorf("dfs: apply schema to %s: %w", m.Path, ErrNotExist)
		}
		f.Schema = m.Schema
	case MutDelete:
		delete(sh.files, m.Path)
		fs.advanceClock(m.Version)
	default:
		return fmt.Errorf("dfs: apply: unknown mutation op %q", m.Op)
	}
	// Replayed state is not yet covered by any snapshot (the log still holds
	// it), so it counts as dirty until the next compaction — and feeds the
	// eviction consumer, which rechecks entries touching replayed paths.
	if sh.dirty == nil {
		sh.dirty = make(map[string]struct{})
	}
	sh.dirty[m.Path] = struct{}{}
	markEvictDirtyLocked(sh, m.Path)
	fs.mutations.Add(1)
	return nil
}
