// Package dfs implements the simulated distributed file system that stands in
// for HDFS. Datasets are partitioned files of encoded tuple records; the FS
// tracks logical bytes, physical (replicated) bytes, record counts, and a
// version number per file so that ReStore's repository can detect when a
// stored job output has been invalidated by changes to its inputs
// (eviction Rule 4 in the paper, §5).
//
// Invariants the rest of the system relies on:
//
//   - Committed partition data is copy-on-write and never mutated in place,
//     so readers and snapshots may share the slices under the read lock.
//   - File versions only ever advance: Create assigns a fresh FS-clock value
//     and Delete bumps the clock, so a path recreated after deletion never
//     reuses a version Rule-4 comparisons have already seen.
//   - Every mutation is journaled (SetJournal) in its commit order, under
//     the same write lock that applied it, as an absolute-state Mutation
//     record; replaying a snapshot plus the journaled suffix (Apply)
//     reconstructs the FS exactly. DirtyPaths/TakeDirty track which files
//     changed since the last snapshot.
package dfs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// DefaultBlockSize mirrors the classic HDFS 64 MB block, used to derive the
// number of map tasks per input file.
const DefaultBlockSize = 64 << 20

// DefaultReplication is the HDFS default 3-way replication the paper's
// cluster used.
const DefaultReplication = 3

// Partition is one part-file of a dataset (what a single task wrote).
type Partition struct {
	Data    []byte
	Records int64
}

// File is a dataset: an ordered list of partitions plus bookkeeping.
type File struct {
	Path    string
	Parts   []Partition
	Version uint64 // bumped whenever the file is (re)written
	// Schema optionally records the column layout of the dataset so that
	// loads of materialized intermediates keep column names.
	Schema types.Schema
}

// Bytes returns the logical (pre-replication) size of the file.
func (f *File) Bytes() int64 {
	var n int64
	for _, p := range f.Parts {
		n += int64(len(p.Data))
	}
	return n
}

// Records returns the number of tuple records in the file.
func (f *File) Records() int64 {
	var n int64
	for _, p := range f.Parts {
		n += p.Records
	}
	return n
}

// Stat is a point-in-time description of a file.
type Stat struct {
	Path       string
	Bytes      int64
	Records    int64
	Partitions int
	Version    uint64
}

// FS is the simulated distributed file system. All methods are safe for
// concurrent use.
//
// Partition data is copy-on-write: tasks buffer locally and CommitPartition
// installs the whole byte slice at once; committed slices are never mutated
// in place afterwards. That discipline is what lets readers (OpenPartition)
// and the snapshot Export share slices under the read lock while concurrent
// writers to *other* paths keep committing — a snapshot never observes a
// half-written partition, only a partition that is entirely present or
// entirely absent.
type FS struct {
	mu          sync.RWMutex
	files       map[string]*File
	version     uint64
	blockSize   int64
	replication int

	// Counters accumulate across the lifetime of the FS; atomics so the
	// read path (OpenPartition) needs only the read lock and concurrent
	// map tasks of parallel workflows never serialize on fs.mu.
	bytesWritten atomic.Int64 // logical bytes written
	bytesRead    atomic.Int64 // logical bytes read

	// journal, dirty, and mutations implement incremental persistence (see
	// journal.go): every committed mutation is forwarded to the journal and
	// marks its path dirty until the next snapshot claims it. evictDirty is
	// the second, independent consumer of the same dirty marks: the mutation
	// feed eviction Rule-4 checks drain (TakeEvictionDirty), so invalidation
	// work scales with what changed, not with repository size.
	journal    Journal
	dirty      map[string]struct{}
	evictDirty map[string]struct{}
	mutations  atomic.Uint64
}

// New creates an empty FS with default block size and replication.
func New() *FS {
	return &FS{
		files:       make(map[string]*File),
		blockSize:   DefaultBlockSize,
		replication: DefaultReplication,
	}
}

// BlockSize returns the configured block size.
func (fs *FS) BlockSize() int64 { return fs.blockSize }

// Replication returns the configured replication factor.
func (fs *FS) Replication() int { return fs.replication }

// SetReplication overrides the replication factor (affects physical-byte
// accounting only).
func (fs *FS) SetReplication(r int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if r < 1 {
		r = 1
	}
	fs.replication = r
}

// Exists reports whether a file exists.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// StatFile returns metadata for the file at path.
func (fs *FS) StatFile(path string) (Stat, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return Stat{}, fmt.Errorf("dfs: %s: %w", path, ErrNotExist)
	}
	return Stat{Path: path, Bytes: f.Bytes(), Records: f.Records(), Partitions: len(f.Parts), Version: f.Version}, nil
}

// ErrNotExist is returned when a path is absent.
var ErrNotExist = fmt.Errorf("file does not exist")

// Create makes (or truncates) a file with the given number of partitions and
// returns its new version.
func (fs *FS) Create(path string, partitions int) (uint64, error) {
	if path == "" {
		return 0, fmt.Errorf("dfs: empty path")
	}
	if partitions < 1 {
		partitions = 1
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.version++
	fs.files[path] = &File{Path: path, Parts: make([]Partition, partitions), Version: fs.version}
	fs.noteLocked(Mutation{Op: MutCreate, Path: path, Version: fs.version, Partitions: partitions})
	return fs.version, nil
}

// SetSchema attaches a schema to an existing file.
func (fs *FS) SetSchema(path string, schema types.Schema) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("dfs: %s: %w", path, ErrNotExist)
	}
	f.Schema = schema
	fs.noteLocked(Mutation{Op: MutSchema, Path: path, Schema: schema})
	return nil
}

// SchemaOf returns the schema recorded for the file (possibly empty).
func (fs *FS) SchemaOf(path string) (types.Schema, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return types.Schema{}, fmt.Errorf("dfs: %s: %w", path, ErrNotExist)
	}
	return f.Schema, nil
}

// CommitPartition atomically installs the bytes for one partition of a file
// created with Create. Tasks buffer locally and commit once, keeping the FS
// lock out of the encode path.
func (fs *FS) CommitPartition(path string, idx int, data []byte, records int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("dfs: commit to %s: %w", path, ErrNotExist)
	}
	if idx < 0 || idx >= len(f.Parts) {
		return fmt.Errorf("dfs: commit to %s: partition %d out of range [0,%d)", path, idx, len(f.Parts))
	}
	f.Parts[idx] = Partition{Data: data, Records: records}
	fs.bytesWritten.Add(int64(len(data)))
	fs.noteLocked(Mutation{Op: MutCommit, Path: path, Part: idx, Data: data, Records: records})
	return nil
}

// Delete removes a file. Deleting a missing file is an error so that callers
// notice double-deletes.
func (fs *FS) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("dfs: delete %s: %w", path, ErrNotExist)
	}
	delete(fs.files, path)
	fs.version++
	fs.noteLocked(Mutation{Op: MutDelete, Path: path, Version: fs.version})
	return nil
}

// Version returns the current version of the file at path, or 0 with
// ErrNotExist if absent. ReStore snapshots input versions when storing a job
// output and compares them later to detect invalidation.
func (fs *FS) Version(path string) (uint64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: %s: %w", path, ErrNotExist)
	}
	return f.Version, nil
}

// List returns the paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Partitions returns the number of partitions of a file.
func (fs *FS) Partitions(path string) (int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: %s: %w", path, ErrNotExist)
	}
	return len(f.Parts), nil
}

// OpenPartition returns a record reader over one partition and charges the
// read counters. Read lock only: committed partition data is immutable
// (copy-on-write), so concurrent map tasks of parallel workflows read
// without serializing.
func (fs *FS) OpenPartition(path string, idx int) (*types.Reader, int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, 0, fmt.Errorf("dfs: open %s: %w", path, ErrNotExist)
	}
	if idx < 0 || idx >= len(f.Parts) {
		return nil, 0, fmt.Errorf("dfs: open %s: partition %d out of range [0,%d)", path, idx, len(f.Parts))
	}
	data := f.Parts[idx].Data
	fs.bytesRead.Add(int64(len(data)))
	return types.NewReader(&sliceReader{data: data}), int64(len(data)), nil
}

// ReadAll decodes every tuple in the file, in partition order. Intended for
// tests and result verification, not the execution hot path.
func (fs *FS) ReadAll(path string) ([]types.Tuple, error) {
	n, err := fs.Partitions(path)
	if err != nil {
		return nil, err
	}
	var out []types.Tuple
	for i := 0; i < n; i++ {
		r, _, err := fs.OpenPartition(path, i)
		if err != nil {
			return nil, err
		}
		for {
			t, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// WriteTuples creates a single-partition file holding the given tuples.
// Convenience for tests and data generators.
func (fs *FS) WriteTuples(path string, schema types.Schema, tuples []types.Tuple) error {
	if _, err := fs.Create(path, 1); err != nil {
		return err
	}
	var buf writeBuffer
	w := types.NewWriter(&buf)
	for _, t := range tuples {
		if err := w.Write(t); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := fs.CommitPartition(path, 0, buf.b, w.Records); err != nil {
		return err
	}
	return fs.SetSchema(path, schema)
}

// WritePartitioned creates a file with the tuples spread round-robin over n
// partitions, so the MapReduce engine schedules n map tasks against it.
func (fs *FS) WritePartitioned(path string, schema types.Schema, tuples []types.Tuple, n int) error {
	if n < 1 {
		n = 1
	}
	if _, err := fs.Create(path, n); err != nil {
		return err
	}
	bufs := make([]writeBuffer, n)
	ws := make([]*types.Writer, n)
	for i := range ws {
		ws[i] = types.NewWriter(&bufs[i])
	}
	for i, t := range tuples {
		if err := ws[i%n].Write(t); err != nil {
			return err
		}
	}
	for i := range ws {
		if err := ws[i].Flush(); err != nil {
			return err
		}
		if err := fs.CommitPartition(path, i, bufs[i].b, ws[i].Records); err != nil {
			return err
		}
	}
	return fs.SetSchema(path, schema)
}

// Counters returns cumulative logical bytes written and read.
func (fs *FS) Counters() (written, read int64) {
	return fs.bytesWritten.Load(), fs.bytesRead.Load()
}

// TotalBytes sums the logical bytes of the files at the given paths,
// skipping any that are missing.
func (fs *FS) TotalBytes(paths ...string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for _, p := range paths {
		if f, ok := fs.files[p]; ok {
			n += f.Bytes()
		}
	}
	return n
}

type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

type writeBuffer struct{ b []byte }

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
