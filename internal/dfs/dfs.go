// Package dfs implements the simulated distributed file system that stands in
// for HDFS. Datasets are partitioned files of encoded tuple records; the FS
// tracks logical bytes, physical (replicated) bytes, record counts, and a
// version number per file so that ReStore's repository can detect when a
// stored job output has been invalidated by changes to its inputs
// (eviction Rule 4 in the paper, §5).
//
// Invariants the rest of the system relies on:
//
//   - Committed partition data is copy-on-write and never mutated in place,
//     so readers and snapshots may share the slices under the read lock.
//   - File versions only ever advance: Create assigns a fresh FS-clock value
//     and Delete bumps the clock, so a path recreated after deletion never
//     reuses a version Rule-4 comparisons have already seen. The clock is
//     FS-global (one atomic counter across every shard), so versions are
//     globally monotonic — the leaseless result fast path brackets its reads
//     with version comparisons and depends on exactly that.
//   - Every mutation is journaled (SetJournal / SetShardJournals) in its
//     commit order, under the same shard write lock that applied it, as an
//     absolute-state Mutation record; replaying a snapshot plus the
//     journaled suffix (Apply) reconstructs the FS exactly.
//     DirtyPaths/TakeDirty track which files changed since the last snapshot.
//
// The namespace is sharded (NewSharded): each path is owned by exactly one
// shard — chosen by shardkey.Index, so a shard root's whole subtree
// colocates — and each shard has its own lock, files map, journal, and dirty
// feeds. Mutations to paths in different shards never contend; operations
// that span the namespace (List, Export, Import) take every shard lock in
// ascending order. New() builds the single-shard FS, which is byte-for-byte
// the old single-mutex implementation and serves as the differential oracle
// for the sharded configurations.
package dfs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/shardkey"
	"repro/internal/types"
)

// DefaultBlockSize mirrors the classic HDFS 64 MB block, used to derive the
// number of map tasks per input file.
const DefaultBlockSize = 64 << 20

// DefaultReplication is the HDFS default 3-way replication the paper's
// cluster used.
const DefaultReplication = 3

// Partition is one part-file of a dataset (what a single task wrote).
type Partition struct {
	Data    []byte
	Records int64
}

// File is a dataset: an ordered list of partitions plus bookkeeping.
type File struct {
	Path    string
	Parts   []Partition
	Version uint64 // bumped whenever the file is (re)written
	// Schema optionally records the column layout of the dataset so that
	// loads of materialized intermediates keep column names.
	Schema types.Schema
}

// Bytes returns the logical (pre-replication) size of the file.
func (f *File) Bytes() int64 {
	var n int64
	for _, p := range f.Parts {
		n += int64(len(p.Data))
	}
	return n
}

// Records returns the number of tuple records in the file.
func (f *File) Records() int64 {
	var n int64
	for _, p := range f.Parts {
		n += p.Records
	}
	return n
}

// Stat is a point-in-time description of a file.
type Stat struct {
	Path       string
	Bytes      int64
	Records    int64
	Partitions int
	Version    uint64
}

// fsShard is one independently locked slice of the namespace: the files
// whose paths route to it, plus that slice's journal and dirty feeds.
type fsShard struct {
	mu         sync.RWMutex
	files      map[string]*File
	journal    Journal
	dirty      map[string]struct{}
	evictDirty map[string]struct{}
}

// FS is the simulated distributed file system. All methods are safe for
// concurrent use.
//
// Partition data is copy-on-write: tasks buffer locally and CommitPartition
// installs the whole byte slice at once; committed slices are never mutated
// in place afterwards. That discipline is what lets readers (OpenPartition)
// and the snapshot Export share slices under the read lock while concurrent
// writers to *other* paths keep committing — a snapshot never observes a
// half-written partition, only a partition that is entirely present or
// entirely absent.
type FS struct {
	shards    []fsShard
	version   atomic.Uint64
	blockSize int64
	// replication affects physical-byte accounting only; atomic so
	// SetReplication needs no shard lock.
	replication atomic.Int64

	// Counters accumulate across the lifetime of the FS; atomics so the
	// read path (OpenPartition) needs only the read lock and concurrent
	// map tasks of parallel workflows never serialize on a shard lock.
	bytesWritten atomic.Int64 // logical bytes written
	bytesRead    atomic.Int64 // logical bytes read

	// mutations counts committed mutations FS-wide (see journal.go).
	mutations atomic.Uint64

	// opLatency (ns), when set, is slept inside each mutating operation
	// while its shard lock is held — emulating the namenode/commit RPC a
	// real DFS pays per metadata mutation, the way mapred's LatencyScale
	// emulates cluster job time. Benchmarks use it to make the serialized
	// hold time of a lock domain visible in wall clock; 0 (the default)
	// disables it.
	opLatency atomic.Int64
}

// New creates an empty single-shard FS with default block size and
// replication — the single-domain configuration, and the differential
// oracle the sharded configurations are tested against.
func New() *FS { return NewSharded(1) }

// NewSharded creates an empty FS whose namespace is split over n
// independently locked shards (n < 1 is clamped to 1). Shard routing is
// shardkey.Index, shared with the lease tables and the WAL streams.
func NewSharded(n int) *FS {
	if n < 1 {
		n = 1
	}
	fs := &FS{
		shards:    make([]fsShard, n),
		blockSize: DefaultBlockSize,
	}
	fs.replication.Store(DefaultReplication)
	for i := range fs.shards {
		fs.shards[i].files = make(map[string]*File)
	}
	return fs
}

// NumShards returns how many namespace shards the FS was built with.
func (fs *FS) NumShards() int { return len(fs.shards) }

// ShardOf returns the index of the shard owning path.
func (fs *FS) ShardOf(path string) int { return shardkey.Index(path, len(fs.shards)) }

// shardOf returns the shard owning path.
func (fs *FS) shardOf(path string) *fsShard {
	return &fs.shards[shardkey.Index(path, len(fs.shards))]
}

// SetOpLatency emulates the per-mutation metadata RPC of a remote DFS: every
// mutating operation (Create, CommitPartition, SetSchema, Delete) sleeps d
// while holding its shard's write lock. Benchmarks use it to reproduce the
// regime where namespace mutations are wall-clock-bound rather than
// CPU-bound, so the serialization removed by sharding is measurable on any
// machine. 0 disables the emulation.
func (fs *FS) SetOpLatency(d time.Duration) { fs.opLatency.Store(int64(d)) }

// emulateOp pays the configured per-mutation latency. Called with the
// owning shard's write lock held.
func (fs *FS) emulateOp() {
	if d := fs.opLatency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// BlockSize returns the configured block size.
func (fs *FS) BlockSize() int64 { return fs.blockSize }

// Replication returns the configured replication factor.
func (fs *FS) Replication() int { return int(fs.replication.Load()) }

// SetReplication overrides the replication factor (affects physical-byte
// accounting only).
func (fs *FS) SetReplication(r int) {
	if r < 1 {
		r = 1
	}
	fs.replication.Store(int64(r))
}

// Exists reports whether a file exists.
func (fs *FS) Exists(path string) bool {
	sh := fs.shardOf(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.files[path]
	return ok
}

// StatFile returns metadata for the file at path.
func (fs *FS) StatFile(path string) (Stat, error) {
	sh := fs.shardOf(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, ok := sh.files[path]
	if !ok {
		return Stat{}, fmt.Errorf("dfs: %s: %w", path, ErrNotExist)
	}
	return Stat{Path: path, Bytes: f.Bytes(), Records: f.Records(), Partitions: len(f.Parts), Version: f.Version}, nil
}

// ErrNotExist is returned when a path is absent.
var ErrNotExist = fmt.Errorf("file does not exist")

// Create makes (or truncates) a file with the given number of partitions and
// returns its new version. The version comes off the FS-global clock, so
// versions stay globally monotonic across shards.
func (fs *FS) Create(path string, partitions int) (uint64, error) {
	if path == "" {
		return 0, fmt.Errorf("dfs: empty path")
	}
	if partitions < 1 {
		partitions = 1
	}
	sh := fs.shardOf(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fs.emulateOp()
	v := fs.version.Add(1)
	sh.files[path] = &File{Path: path, Parts: make([]Partition, partitions), Version: v}
	fs.noteLocked(sh, Mutation{Op: MutCreate, Path: path, Version: v, Partitions: partitions})
	return v, nil
}

// SetSchema attaches a schema to an existing file.
func (fs *FS) SetSchema(path string, schema types.Schema) error {
	sh := fs.shardOf(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.files[path]
	if !ok {
		return fmt.Errorf("dfs: %s: %w", path, ErrNotExist)
	}
	fs.emulateOp()
	f.Schema = schema
	fs.noteLocked(sh, Mutation{Op: MutSchema, Path: path, Schema: schema})
	return nil
}

// SchemaOf returns the schema recorded for the file (possibly empty).
func (fs *FS) SchemaOf(path string) (types.Schema, error) {
	sh := fs.shardOf(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, ok := sh.files[path]
	if !ok {
		return types.Schema{}, fmt.Errorf("dfs: %s: %w", path, ErrNotExist)
	}
	return f.Schema, nil
}

// CommitPartition atomically installs the bytes for one partition of a file
// created with Create. Tasks buffer locally and commit once, keeping the FS
// lock out of the encode path.
func (fs *FS) CommitPartition(path string, idx int, data []byte, records int64) error {
	sh := fs.shardOf(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.files[path]
	if !ok {
		return fmt.Errorf("dfs: commit to %s: %w", path, ErrNotExist)
	}
	if idx < 0 || idx >= len(f.Parts) {
		return fmt.Errorf("dfs: commit to %s: partition %d out of range [0,%d)", path, idx, len(f.Parts))
	}
	fs.emulateOp()
	f.Parts[idx] = Partition{Data: data, Records: records}
	fs.bytesWritten.Add(int64(len(data)))
	fs.noteLocked(sh, Mutation{Op: MutCommit, Path: path, Part: idx, Data: data, Records: records})
	return nil
}

// Delete removes a file. Deleting a missing file is an error so that callers
// notice double-deletes.
func (fs *FS) Delete(path string) error {
	sh := fs.shardOf(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.files[path]; !ok {
		return fmt.Errorf("dfs: delete %s: %w", path, ErrNotExist)
	}
	fs.emulateOp()
	delete(sh.files, path)
	v := fs.version.Add(1)
	fs.noteLocked(sh, Mutation{Op: MutDelete, Path: path, Version: v})
	return nil
}

// Version returns the current version of the file at path, or 0 with
// ErrNotExist if absent. ReStore snapshots input versions when storing a job
// output and compares them later to detect invalidation.
func (fs *FS) Version(path string) (uint64, error) {
	sh := fs.shardOf(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, ok := sh.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: %s: %w", path, ErrNotExist)
	}
	return f.Version, nil
}

// List returns the paths with the given prefix, sorted. Shards are scanned
// one at a time, so the listing is per-shard consistent; callers needing a
// globally consistent view (recovery sweeps, counter advancement) run under
// the system's universal lease, where nothing mutates concurrently.
func (fs *FS) List(prefix string) []string {
	var out []string
	for i := range fs.shards {
		sh := &fs.shards[i]
		sh.mu.RLock()
		for p := range sh.files {
			if strings.HasPrefix(p, prefix) {
				out = append(out, p)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Partitions returns the number of partitions of a file.
func (fs *FS) Partitions(path string) (int, error) {
	sh := fs.shardOf(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, ok := sh.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: %s: %w", path, ErrNotExist)
	}
	return len(f.Parts), nil
}

// OpenPartition returns a record reader over one partition and charges the
// read counters. Read lock only: committed partition data is immutable
// (copy-on-write), so concurrent map tasks of parallel workflows read
// without serializing.
func (fs *FS) OpenPartition(path string, idx int) (*types.Reader, int64, error) {
	sh := fs.shardOf(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, ok := sh.files[path]
	if !ok {
		return nil, 0, fmt.Errorf("dfs: open %s: %w", path, ErrNotExist)
	}
	if idx < 0 || idx >= len(f.Parts) {
		return nil, 0, fmt.Errorf("dfs: open %s: partition %d out of range [0,%d)", path, idx, len(f.Parts))
	}
	data := f.Parts[idx].Data
	fs.bytesRead.Add(int64(len(data)))
	return types.NewReader(&sliceReader{data: data}), int64(len(data)), nil
}

// ReadPartitionRaw returns the committed payload bytes of one partition in
// the encoded wire format, charging the read counters exactly like
// OpenPartition. The fleet coordinator uses it to ship input partitions to
// workers (which decode them with types.NewReader) and to assemble replay
// payloads from stored sub-job outputs. Callers must not mutate the
// returned slice.
func (fs *FS) ReadPartitionRaw(path string, idx int) ([]byte, error) {
	sh := fs.shardOf(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, ok := sh.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: open %s: %w", path, ErrNotExist)
	}
	if idx < 0 || idx >= len(f.Parts) {
		return nil, fmt.Errorf("dfs: open %s: partition %d out of range [0,%d)", path, idx, len(f.Parts))
	}
	data := f.Parts[idx].Data
	fs.bytesRead.Add(int64(len(data)))
	return data, nil
}

// ReadAll decodes every tuple in the file, in partition order. Intended for
// tests and result verification, not the execution hot path.
func (fs *FS) ReadAll(path string) ([]types.Tuple, error) {
	n, err := fs.Partitions(path)
	if err != nil {
		return nil, err
	}
	var out []types.Tuple
	for i := 0; i < n; i++ {
		r, _, err := fs.OpenPartition(path, i)
		if err != nil {
			return nil, err
		}
		for {
			t, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// WriteTuples creates a single-partition file holding the given tuples.
// Convenience for tests and data generators.
func (fs *FS) WriteTuples(path string, schema types.Schema, tuples []types.Tuple) error {
	if _, err := fs.Create(path, 1); err != nil {
		return err
	}
	var buf writeBuffer
	w := types.NewWriter(&buf)
	for _, t := range tuples {
		if err := w.Write(t); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := fs.CommitPartition(path, 0, buf.b, w.Records); err != nil {
		return err
	}
	return fs.SetSchema(path, schema)
}

// WritePartitioned creates a file with the tuples spread round-robin over n
// partitions, so the MapReduce engine schedules n map tasks against it.
func (fs *FS) WritePartitioned(path string, schema types.Schema, tuples []types.Tuple, n int) error {
	if n < 1 {
		n = 1
	}
	if _, err := fs.Create(path, n); err != nil {
		return err
	}
	bufs := make([]writeBuffer, n)
	ws := make([]*types.Writer, n)
	for i := range ws {
		ws[i] = types.NewWriter(&bufs[i])
	}
	for i, t := range tuples {
		if err := ws[i%n].Write(t); err != nil {
			return err
		}
	}
	for i := range ws {
		if err := ws[i].Flush(); err != nil {
			return err
		}
		if err := fs.CommitPartition(path, i, bufs[i].b, ws[i].Records); err != nil {
			return err
		}
	}
	return fs.SetSchema(path, schema)
}

// Counters returns cumulative logical bytes written and read.
func (fs *FS) Counters() (written, read int64) {
	return fs.bytesWritten.Load(), fs.bytesRead.Load()
}

// TotalBytes sums the logical bytes of the files at the given paths,
// skipping any that are missing.
func (fs *FS) TotalBytes(paths ...string) int64 {
	var n int64
	for _, p := range paths {
		sh := fs.shardOf(p)
		sh.mu.RLock()
		if f, ok := sh.files[p]; ok {
			n += f.Bytes()
		}
		sh.mu.RUnlock()
	}
	return n
}

type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

type writeBuffer struct{ b []byte }

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
