package dfs

import (
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/types"
)

func tupleN(n int64) types.Tuple {
	return types.Tuple{types.NewInt(n), types.NewString("payload")}
}

func TestCreateCommitRead(t *testing.T) {
	fs := New()
	if _, err := fs.Create("data/x", 2); err != nil {
		t.Fatal(err)
	}
	var buf writeBuffer
	w := types.NewWriter(&buf)
	for i := int64(0); i < 5; i++ {
		if err := w.Write(tupleN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fs.CommitPartition("data/x", 0, buf.b, 5); err != nil {
		t.Fatal(err)
	}
	st, err := fs.StatFile("data/x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 5 || st.Partitions != 2 || st.Bytes != int64(len(buf.b)) {
		t.Errorf("stat = %+v", st)
	}

	r, n, err := fs.OpenPartition("data/x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(buf.b)) {
		t.Errorf("partition size = %d", n)
	}
	count := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 5 {
		t.Errorf("read %d records", count)
	}
}

func TestErrors(t *testing.T) {
	fs := New()
	if _, err := fs.StatFile("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat missing: %v", err)
	}
	if err := fs.Delete("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("delete missing: %v", err)
	}
	if err := fs.CommitPartition("missing", 0, nil, 0); !errors.Is(err, ErrNotExist) {
		t.Errorf("commit missing: %v", err)
	}
	if _, err := fs.Create("", 1); err == nil {
		t.Error("create empty path should fail")
	}
	if _, err := fs.Create("f", 1); err != nil {
		t.Fatal(err)
	}
	if err := fs.CommitPartition("f", 3, nil, 0); err == nil {
		t.Error("commit out-of-range partition should fail")
	}
	if _, _, err := fs.OpenPartition("f", 9); err == nil {
		t.Error("open out-of-range partition should fail")
	}
}

func TestVersionBumpsOnRewrite(t *testing.T) {
	fs := New()
	v1, err := fs.Create("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := fs.Create("a", 1) // truncate/rewrite
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Errorf("version did not advance: %d -> %d", v1, v2)
	}
	got, err := fs.Version("a")
	if err != nil || got != v2 {
		t.Errorf("Version = %d, %v", got, err)
	}
	if err := fs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Version("a"); !errors.Is(err, ErrNotExist) {
		t.Errorf("version of deleted file: %v", err)
	}
}

func TestWriteTuplesAndReadAll(t *testing.T) {
	fs := New()
	schema := types.SchemaFromNames("n", "s")
	in := []types.Tuple{tupleN(1), tupleN(2), tupleN(3)}
	if err := fs.WriteTuples("d", schema, in); err != nil {
		t.Fatal(err)
	}
	out, err := fs.ReadAll("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d tuples", len(out))
	}
	for i := range in {
		if !types.EqualTuples(in[i], out[i]) {
			t.Errorf("tuple %d: %v != %v", i, in[i], out[i])
		}
	}
	s, err := fs.SchemaOf("d")
	if err != nil || s.Len() != 2 {
		t.Errorf("schema = %v, %v", s, err)
	}
}

func TestWritePartitionedSpreadsRecords(t *testing.T) {
	fs := New()
	var in []types.Tuple
	for i := int64(0); i < 10; i++ {
		in = append(in, tupleN(i))
	}
	if err := fs.WritePartitioned("p", types.Schema{}, in, 4); err != nil {
		t.Fatal(err)
	}
	n, err := fs.Partitions("p")
	if err != nil || n != 4 {
		t.Fatalf("partitions = %d, %v", n, err)
	}
	out, err := fs.ReadAll("p")
	if err != nil || len(out) != 10 {
		t.Fatalf("read %d tuples, %v", len(out), err)
	}
}

func TestListAndTotalBytes(t *testing.T) {
	fs := New()
	for _, p := range []string{"restore/sub1", "restore/sub2", "base/users"} {
		if err := fs.WriteTuples(p, types.Schema{}, []types.Tuple{tupleN(1)}); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List("restore/")
	if len(got) != 2 || got[0] != "restore/sub1" || got[1] != "restore/sub2" {
		t.Errorf("List = %v", got)
	}
	if fs.TotalBytes("restore/sub1", "missing") == 0 {
		t.Error("TotalBytes should count existing files and skip missing")
	}
}

func TestCountersAccumulate(t *testing.T) {
	fs := New()
	if err := fs.WriteTuples("c", types.Schema{}, []types.Tuple{tupleN(1), tupleN(2)}); err != nil {
		t.Fatal(err)
	}
	w0, r0 := fs.Counters()
	if w0 == 0 {
		t.Error("bytesWritten should be counted")
	}
	if _, err := fs.ReadAll("c"); err != nil {
		t.Fatal(err)
	}
	_, r1 := fs.Counters()
	if r1 <= r0 {
		t.Error("bytesRead should advance on reads")
	}
}

func TestConcurrentCommits(t *testing.T) {
	fs := New()
	const parts = 16
	if _, err := fs.Create("conc", parts); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < parts; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			var buf writeBuffer
			w := types.NewWriter(&buf)
			for j := 0; j < 100; j++ {
				if err := w.Write(tupleN(int64(idx*100 + j))); err != nil {
					t.Error(err)
					return
				}
			}
			if err := w.Flush(); err != nil {
				t.Error(err)
				return
			}
			if err := fs.CommitPartition("conc", idx, buf.b, 100); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st, err := fs.StatFile("conc")
	if err != nil || st.Records != parts*100 {
		t.Errorf("stat = %+v, %v", st, err)
	}
}

func TestSetReplicationClamps(t *testing.T) {
	fs := New()
	fs.SetReplication(0)
	if fs.Replication() != 1 {
		t.Errorf("replication = %d, want clamp to 1", fs.Replication())
	}
	fs.SetReplication(3)
	if fs.Replication() != 3 {
		t.Errorf("replication = %d", fs.Replication())
	}
}
