package dfs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/types"
)

// The restored daemon persists the whole simulated DFS alongside the ReStore
// repository so that a restart resumes with both the learned repository and
// the files its entries reference — without the snapshot, Rule-4 eviction
// would correctly drop every entry on the first query after a restart.

// snapshotJSON is the persisted form. Partition data is raw encoded tuple
// records; encoding/json base64s the byte slices. The snapshot is
// shard-count-agnostic: files carry no shard assignment, so a snapshot
// written by an N-shard FS imports cleanly into an M-shard one (paths
// re-route through shardkey on Import).
type snapshotJSON struct {
	Version int        `json:"version"`
	Clock   uint64     `json:"clock"` // the FS-wide version counter
	Files   []fileJSON `json:"files"`
}

type fileJSON struct {
	Path    string          `json:"path"`
	Version uint64          `json:"fileVersion"`
	Schema  types.Schema    `json:"schema"`
	Parts   []partitionJSON `json:"parts"`
}

type partitionJSON struct {
	Data    []byte `json:"data"`
	Records int64  `json:"records"`
}

const snapshotVersion = 1

// Export writes every file (data, schema, version) as JSON. Versions are
// preserved exactly so repository entries' InputVersions stay valid across
// an Export/Import round trip. Every shard's read lock is held (acquired in
// ascending index order) while the document is built, so the snapshot is a
// consistent cut across the whole namespace.
func (fs *FS) Export(w io.Writer) error {
	for i := range fs.shards {
		fs.shards[i].mu.RLock()
	}
	doc := snapshotJSON{Version: snapshotVersion, Clock: fs.version.Load()}
	var paths []string
	for i := range fs.shards {
		for p := range fs.shards[i].files {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		f := fs.shardOf(p).files[p]
		fj := fileJSON{Path: p, Version: f.Version, Schema: f.Schema}
		for _, part := range f.Parts {
			fj.Parts = append(fj.Parts, partitionJSON{Data: part.Data, Records: part.Records})
		}
		doc.Files = append(doc.Files, fj)
	}
	for i := len(fs.shards) - 1; i >= 0; i-- {
		fs.shards[i].mu.RUnlock()
	}

	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("dfs: export: %w", err)
	}
	return nil
}

// Import replaces the FS contents with a snapshot written by Export. The
// read/write byte counters are left untouched (they describe this process's
// lifetime, not the dataset's). Import is a recovery-time wholesale replace,
// not a journaled mutation: call it before attaching a Journal — it resets
// the dirty-path tracking to an all-clean baseline (the snapshot is, by
// definition, already persisted).
func (fs *FS) Import(r io.Reader) error {
	var doc snapshotJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("dfs: import: %w", err)
	}
	if doc.Version != snapshotVersion {
		return fmt.Errorf("dfs: import: unsupported snapshot version %d", doc.Version)
	}
	shardFiles := make([]map[string]*File, len(fs.shards))
	for i := range shardFiles {
		shardFiles[i] = make(map[string]*File)
	}
	seen := make(map[string]bool, len(doc.Files))
	clock := doc.Clock
	for _, fj := range doc.Files {
		if fj.Path == "" {
			return fmt.Errorf("dfs: import: file with empty path")
		}
		if seen[fj.Path] {
			return fmt.Errorf("dfs: import: duplicate path %q", fj.Path)
		}
		seen[fj.Path] = true
		f := &File{Path: fj.Path, Version: fj.Version, Schema: fj.Schema}
		for _, part := range fj.Parts {
			f.Parts = append(f.Parts, Partition{Data: part.Data, Records: part.Records})
		}
		if len(f.Parts) == 0 {
			f.Parts = make([]Partition, 1)
		}
		if fj.Version > clock {
			clock = fj.Version
		}
		shardFiles[fs.ShardOf(fj.Path)][fj.Path] = f
	}
	for i := range fs.shards {
		fs.shards[i].mu.Lock()
	}
	for i := range fs.shards {
		fs.shards[i].files = shardFiles[i]
		fs.shards[i].dirty = nil
	}
	fs.version.Store(clock)
	for i := len(fs.shards) - 1; i >= 0; i-- {
		fs.shards[i].mu.Unlock()
	}
	return nil
}
