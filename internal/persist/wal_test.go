package persist

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dfs"
	"repro/internal/types"
)

func mkRecord(i int) Record {
	return Record{DFS: &dfs.Mutation{
		Op:      dfs.MutCommit,
		Path:    fmt.Sprintf("out/f%d", i%3),
		Part:    i % 4,
		Data:    bytes.Repeat([]byte{byte(i)}, 10+i*7%40),
		Records: int64(i),
	}}
}

func writeSegment(t *testing.T, path string, n int, syncEach bool) {
	t.Helper()
	w, err := OpenWriter(path, syncEach)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := w.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, path string) (recs []Record, torn bool) {
	t.Helper()
	var out []Record
	n, torn, err := ReplayFile(path, func(r Record) error {
		out = append(out, r)
		return nil
	}, true)
	if err != nil {
		t.Fatalf("replay %s: %v", path, err)
	}
	if n != len(out) {
		t.Fatalf("replay reported %d records, applied %d", n, len(out))
	}
	return out, torn
}

func TestWALRoundTrip(t *testing.T) {
	for _, syncEach := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "wal-000001.log")
		writeSegment(t, path, 5, syncEach)
		recs, torn := replayAll(t, path)
		if torn {
			t.Fatalf("syncEach=%v: clean segment reported torn", syncEach)
		}
		if len(recs) != 5 {
			t.Fatalf("syncEach=%v: got %d records, want 5", syncEach, len(recs))
		}
		for i, r := range recs {
			want := mkRecord(i)
			if r.DFS == nil || r.DFS.Path != want.DFS.Path || !bytes.Equal(r.DFS.Data, want.DFS.Data) {
				t.Fatalf("record %d mismatch: %+v", i, r)
			}
		}
	}
}

// TestWALPerRecordSyncIsImmediatelyDurable: in per-record mode the records
// must be on disk without any Flush/Close — the file as-is (as a crash
// would leave it) replays completely.
func TestWALPerRecordSyncIsImmediatelyDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.log")
	w, err := OpenWriter(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Flush, no Close: simulate the process dying here.
	recs, torn := replayAll(t, path)
	if torn || len(recs) != 3 {
		t.Fatalf("per-record sync left %d records (torn=%v), want 3", len(recs), torn)
	}
	_ = w.Close()
}

// TestWALBatchedBuffersUntilFlush: batched mode must NOT have written
// anything before Flush (that is the contract the -wal-sync window
// documents: a crash may lose the unflushed tail).
func TestWALBatchedBuffersUntilFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.log")
	w, err := OpenWriter(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(mkRecord(0)); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != 0 {
		t.Fatalf("batched append hit disk before Flush (size %d)", st.Size())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if recs, torn := replayAll(t, path); torn || len(recs) != 1 {
		t.Fatalf("after flush: %d records, torn=%v", len(recs), torn)
	}
}

// TestWALTornTailEveryCutPoint is the crash-point sweep: truncating the
// segment at EVERY byte offset must recover exactly the records whose
// frames fit, report torn for any mid-record cut, physically truncate the
// tail, and leave the segment appendable.
func TestWALTornTailEveryCutPoint(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "wal-000001.log")
	const n = 4
	writeSegment(t, full, n, false)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries, from re-framing the same records.
	bounds := []int64{0}
	for i := 0; i < n; i++ {
		frame, err := encode(mkRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, bounds[len(bounds)-1]+int64(len(frame)))
	}
	if bounds[n] != int64(len(data)) {
		t.Fatalf("frame math: bounds end %d, file %d", bounds[n], len(data))
	}
	intactAt := func(cut int64) (count int, boundary int64) {
		for i := n; i >= 0; i-- {
			if bounds[i] <= cut {
				return i, bounds[i]
			}
		}
		return 0, 0
	}

	for cut := int64(0); cut <= int64(len(data)); cut++ {
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, torn := replayAll(t, path)
		wantCount, wantBoundary := intactAt(cut)
		if len(recs) != wantCount {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), wantCount)
		}
		if wantTorn := cut != wantBoundary; torn != wantTorn {
			t.Fatalf("cut %d: torn=%v, want %v", cut, torn, wantTorn)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != wantBoundary {
			t.Fatalf("cut %d: tail not truncated: size %d, want %d", cut, st.Size(), wantBoundary)
		}
		// The truncated segment must accept appends and replay cleanly.
		w, err := OpenWriter(path, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(mkRecord(99)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		recs2, torn2 := replayAll(t, path)
		if torn2 || len(recs2) != wantCount+1 {
			t.Fatalf("cut %d: after re-append got %d records (torn=%v), want %d", cut, len(recs2), torn2, wantCount+1)
		}
	}
}

// TestWALReplayPreservesTornEvidence: without truncateTorn (how recovery
// replays non-final segments), a tear is reported but the file is left
// byte-for-byte intact — the corruption evidence must survive for the
// operator instead of being repaired into a silent hole on the next boot.
func TestWALReplayPreservesTornEvidence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.log")
	writeSegment(t, path, 3, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(len(data) - 5)
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
	n, torn, err := ReplayFile(path, func(Record) error { return nil }, false)
	if err != nil || !torn || n != 2 {
		t.Fatalf("replay: n=%d torn=%v err=%v; want 2, true, nil", n, torn, err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != cut {
		t.Fatalf("non-truncating replay modified the file: size %d, want %d", st.Size(), cut)
	}
}

// TestWALChecksumCatchesCorruption: flipping a payload byte (same length,
// wrong content) must be detected by the CRC and treated as a tear.
func TestWALChecksumCatchesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-000001.log")
	writeSegment(t, path, 3, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, torn := replayAll(t, path)
	if !torn || len(recs) != 2 {
		t.Fatalf("corrupted final record: got %d records, torn=%v; want 2, true", len(recs), torn)
	}
}

func TestSegmentListingAndGC(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []uint64{3, 1, 2} {
		writeSegment(t, SegmentPath(dir, n), 1, false)
	}
	// A stranger file must not confuse the listing.
	if err := os.WriteFile(filepath.Join(dir, "wal-junk.log"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || segs[0].N != 1 || segs[2].N != 3 {
		t.Fatalf("segments: %+v", segs)
	}
	removed, err := RemoveSegmentsBelow(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d segments, want 2", removed)
	}
	segs, err = Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].N != 3 {
		t.Fatalf("segments after GC: %+v", segs)
	}
}

// TestJournaledFSReplayReconstructs drives a random mutation sequence
// through a journaled FS into a WAL, replays the log into a fresh FS, and
// requires byte-identical Export output — the core correctness property the
// daemon's recovery path is built on.
func TestJournaledFSReplayReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	path := filepath.Join(t.TempDir(), "wal-000001.log")
	w, err := OpenWriter(path, false)
	if err != nil {
		t.Fatal(err)
	}
	src := dfs.New()
	src.SetJournal(journalFunc(func(m dfs.Mutation) {
		if _, err := w.Append(Record{DFS: &m}); err != nil {
			t.Errorf("append: %v", err)
		}
	}))

	schema := types.SchemaFromNames("a", "b")
	live := []string{}
	for i := 0; i < 200; i++ {
		switch {
		case len(live) == 0 || rng.Intn(4) == 0: // create (or truncate)
			p := fmt.Sprintf("data/f%d", rng.Intn(10))
			existed := src.Exists(p)
			if _, err := src.Create(p, 1+rng.Intn(3)); err != nil {
				t.Fatal(err)
			}
			if err := src.SetSchema(p, schema); err != nil {
				t.Fatal(err)
			}
			if !existed {
				live = append(live, p)
			}
		case rng.Intn(5) == 0: // delete
			j := rng.Intn(len(live))
			if err := src.Delete(live[j]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:j], live[j+1:]...)
		default: // commit a partition
			p := live[rng.Intn(len(live))]
			parts, err := src.Partitions(p)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, 1+rng.Intn(64))
			rng.Read(data)
			if err := src.CommitPartition(p, rng.Intn(parts), data, int64(rng.Intn(9))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	dst := dfs.New()
	if _, torn, err := ReplayFile(path, func(r Record) error { return dst.Apply(*r.DFS) }, true); err != nil || torn {
		t.Fatalf("replay: torn=%v err=%v", torn, err)
	}
	var want, got bytes.Buffer
	if err := src.Export(&want); err != nil {
		t.Fatal(err)
	}
	if err := dst.Export(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("replayed FS does not match the journaled FS")
	}
}

// journalFunc adapts a func to dfs.Journal.
type journalFunc func(dfs.Mutation)

func (f journalFunc) Record(m dfs.Mutation) { f(m) }
