// Package persist implements the write-ahead log behind restored's durable
// state: length+checksum-framed mutation records appended to numbered
// segment files, with fsync batching on the write path and torn-tail
// detection on replay.
//
// The daemon's state directory holds a snapshot pair (repository.json +
// dfs.json, written only by compaction) plus one or more wal-NNNNNN.log
// segments carrying every mutation committed since the oldest segment
// began. The durability contract:
//
//   - A record is durable once the segment has been fsynced (Writer.Flush,
//     or every append in per-record sync mode). A crash loses at most the
//     records buffered since the last sync.
//   - A crash mid-append leaves a torn final record; Replay detects it by
//     the frame's length+CRC32 and truncates the segment back to the last
//     intact record, so the tail never corrupts recovery or later appends.
//   - Records carry absolute resulting state (see dfs.Mutation and
//     core.Mutation), so replaying every on-disk segment in order over
//     whatever snapshot pair survives converges to the state at the end of
//     the log. That convergence is what makes compaction crash-safe without
//     a manifest: the compactor may crash between writing the new snapshot
//     and deleting old segments at any point, and recovery still lands on
//     the right state.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/dfs"
)

// Record is one WAL entry: exactly one of the two mutation kinds. The DFS
// and repository share a single log so that cross-structure ordering (an
// eviction's repository remove followed by its DFS file delete) is replayed
// in commit order.
type Record struct {
	DFS  *dfs.Mutation  `json:"dfs,omitempty"`
	Repo *core.Mutation `json:"repo,omitempty"`
}

// Frame layout: a fixed header of payload length and CRC32 (IEEE) of the
// payload, then the JSON payload itself. Little-endian, matching no
// particular tradition beyond being explicit.
const frameHeaderSize = 8

// maxRecordSize bounds a single record's payload. Any length field above it
// is treated as a torn/corrupt tail rather than an allocation request — a
// few flipped bits in the length must not make recovery attempt a
// multi-gigabyte read.
const maxRecordSize = 1 << 30

// encode frames one record.
func encode(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("persist: encode record: %w", err)
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	return buf, nil
}

// segmentPattern names WAL segments so lexical order equals numeric order.
const segmentPattern = "wal-%06d.log"

// SegmentPath returns the path of segment n inside dir.
func SegmentPath(dir string, n uint64) string {
	return filepath.Join(dir, fmt.Sprintf(segmentPattern, n))
}

// Segment is one on-disk WAL segment.
type Segment struct {
	N    uint64
	Path string
}

// Segments lists the WAL segments in dir in ascending order.
func Segments(dir string) ([]Segment, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	var out []Segment
	for _, p := range names {
		var n uint64
		if _, err := fmt.Sscanf(filepath.Base(p), segmentPattern, &n); err != nil {
			continue // not ours
		}
		out = append(out, Segment{N: n, Path: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].N < out[j].N })
	return out, nil
}

// SyncDir fsyncs a directory, making its entry operations — segment
// creations, snapshot renames — durable. Without it, a crash can persist a
// later unlink but not an earlier rename (ordering of directory metadata
// is filesystem-dependent), which is exactly the window where compaction
// could otherwise lose committed records: segments deleted while the new
// snapshot pair's renames never reached disk.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: sync dir: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("persist: sync dir %s: %w", dir, serr)
	}
	return cerr
}

// RemoveSegmentsBelow deletes every segment numbered < n (compaction's log
// truncation, run only after the new snapshot pair is fully renamed into
// place). Returns the number removed.
func RemoveSegmentsBelow(dir string, n uint64) (int, error) {
	segs, err := Segments(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, s := range segs {
		if s.N >= n {
			continue
		}
		if err := os.Remove(s.Path); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// shardSegmentPattern names per-shard WAL stream segments. The name encodes
// the sharding layout the segment was written under — total stream count,
// this stream's shard index, then the epoch — so a directory whose streams
// were written at a different -shards setting is self-describing: recovery
// detects the count mismatch from the filenames alone and compacts the old
// layout away instead of replaying records whose per-path stream routing no
// longer matches. Epoch numbers share one counter with the meta stream
// (the legacy wal-NNNNNN.log names, which carry repository mutations): all
// streams rotate together at compaction.
const shardSegmentPattern = "wal-s%d-%03d-%06d.log"

// ShardSegmentPath returns the path of shard stream shard-of-count's epoch
// segment inside dir.
func ShardSegmentPath(dir string, count, shard int, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf(shardSegmentPattern, count, shard, epoch))
}

// ShardSegment is one on-disk per-shard WAL stream segment.
type ShardSegment struct {
	Count int    // stream count the segment was written under
	Shard int    // this stream's shard index, 0 <= Shard < Count
	Epoch uint64 // rotation epoch, shared with the meta stream
	Path  string
}

// ShardSegments lists the per-shard stream segments in dir, ordered by
// (Epoch, Shard) ascending — replay order within an epoch is meta stream
// first, then shard streams (any shard order is correct: streams for
// different shards never carry records for the same path).
func ShardSegments(dir string) ([]ShardSegment, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-s*-*-*.log"))
	if err != nil {
		return nil, err
	}
	var out []ShardSegment
	for _, p := range names {
		var s ShardSegment
		if _, err := fmt.Sscanf(filepath.Base(p), shardSegmentPattern, &s.Count, &s.Shard, &s.Epoch); err != nil {
			continue // not ours
		}
		s.Path = p
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Epoch != out[j].Epoch {
			return out[i].Epoch < out[j].Epoch
		}
		return out[i].Shard < out[j].Shard
	})
	return out, nil
}

// RemoveAllSegmentsBelow deletes every segment — meta stream and shard
// streams of any layout — numbered below epoch n. Compaction's truncation
// for the sharded WAL: having rotated all streams to epoch n, everything
// older (including streams of an abandoned shard count) is covered by the
// new snapshot pair.
func RemoveAllSegmentsBelow(dir string, n uint64) (int, error) {
	removed, err := RemoveSegmentsBelow(dir, n)
	if err != nil {
		return removed, err
	}
	shards, err := ShardSegments(dir)
	if err != nil {
		return removed, err
	}
	for _, s := range shards {
		if s.Epoch >= n {
			continue
		}
		if err := os.Remove(s.Path); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
