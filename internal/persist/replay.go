package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReplayFile reads the segment at path and calls apply for each intact
// record in order. A torn tail — a crash mid-append leaving a partial
// header, a partial payload, an implausible length, or a checksum mismatch
// — is detected and reported via torn=true. With truncateTorn, the tail is
// also physically truncated off the segment so later appends continue from
// a clean record boundary; without it the file is left untouched. Callers
// pass truncateTorn only for the segment that was being appended at the
// crash (the final one) — a tear anywhere else is evidence of real
// corruption that must be preserved, not repaired away, or the fatal
// condition would vanish on the next restart and the records after the
// tear would silently apply over a hole.
//
// An apply error aborts the replay and is returned as err (the state dir is
// corrupt in a way framing cannot explain — e.g. a record referencing a
// file no earlier record created); torn stays false in that case.
func ReplayFile(path string, apply func(Record) error, truncateTorn bool) (records int, torn bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("persist: replay %s: %w", path, err)
	}
	defer f.Close()

	var off int64 // offset of the record being read — the truncation point on a tear
	tear := func() (int, bool, error) {
		if !truncateTorn {
			return records, true, nil
		}
		if terr := f.Truncate(off); terr != nil {
			return records, true, fmt.Errorf("persist: truncate torn tail of %s at %d: %w", path, off, terr)
		}
		return records, true, nil
	}
	header := make([]byte, frameHeaderSize)
	var payload []byte
	for {
		n, rerr := io.ReadFull(f, header)
		if rerr == io.EOF {
			return records, false, nil // clean end
		}
		if rerr == io.ErrUnexpectedEOF {
			return tear() // partial header
		}
		if rerr != nil {
			return records, false, fmt.Errorf("persist: replay %s: %w", path, rerr)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > maxRecordSize {
			// A corrupt length field; everything from here on is garbage.
			return tear()
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, rerr := io.ReadFull(f, payload); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return tear() // partial payload
			}
			return records, false, fmt.Errorf("persist: replay %s: %w", path, rerr)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return tear() // bit rot or torn overwrite
		}
		var rec Record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			// The checksum matched, so this is not a torn write; the format
			// itself is bad.
			return records, false, fmt.Errorf("persist: replay %s: record %d: %w", path, records, jerr)
		}
		if aerr := apply(rec); aerr != nil {
			return records, false, fmt.Errorf("persist: replay %s: record %d: %w", path, records, aerr)
		}
		records++
		off += int64(n) + int64(length)
	}
}
