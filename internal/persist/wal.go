package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Writer appends framed records to one WAL segment. Safe for concurrent
// use. Two durability modes:
//
//   - batched (syncEach=false): Append buffers in memory and returns
//     immediately; Flush writes the buffer and fsyncs. The daemon flushes
//     on its -wal-sync interval, so a crash loses at most that window.
//   - per-record (syncEach=true): every Append writes and fsyncs before
//     returning. Nothing acknowledged is ever lost, at the cost of an
//     fsync inside each mutation.
//
// Errors are sticky: after a failed write or sync every later Append/Flush
// returns the same error, so a full disk surfaces instead of silently
// dropping records.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	buf      []byte
	syncEach bool
	err      error
}

// OpenWriter opens (creating or appending to) the segment at path. The
// containing directory is fsynced so a freshly created segment's entry is
// durable before any record in it claims to be.
func OpenWriter(path string, syncEach bool) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, syncEach: syncEach}, nil
}

// Append frames and appends one record, returning the framed size. In
// per-record mode the record is durable when Append returns; in batched
// mode it is durable after the next Flush.
func (w *Writer) Append(rec Record) (int, error) {
	frame, err := encode(rec)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.syncEach {
		if _, err := w.f.Write(frame); err != nil {
			w.err = fmt.Errorf("persist: wal write: %w", err)
			return 0, w.err
		}
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("persist: wal sync: %w", err)
			return 0, w.err
		}
	} else {
		w.buf = append(w.buf, frame...)
	}
	return len(frame), nil
}

// Flush writes any buffered records and fsyncs the segment.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *Writer) flushLocked() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) > 0 {
		if _, err := w.f.Write(w.buf); err != nil {
			w.err = fmt.Errorf("persist: wal write: %w", err)
			return w.err
		}
		w.buf = w.buf[:0]
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("persist: wal sync: %w", err)
		return w.err
	}
	return nil
}

// Close flushes and closes the segment. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	ferr := w.flushLocked()
	cerr := w.f.Close()
	if w.err == nil {
		w.err = fmt.Errorf("persist: wal closed")
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}
