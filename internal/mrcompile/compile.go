// Package mrcompile turns a physical plan into a workflow of MapReduce jobs,
// reproducing the MapReduce-compiler stage of Pig (§2 and §6.1 of the
// paper): each blocking operator (Join, Group, CoGroup, Distinct, Order,
// Limit) needs its own shuffle, so the plan is cut into jobs containing at
// most one blocking operator each. Intermediate results flow between jobs
// through temporary DFS files, exactly the files ReStore later decides to
// keep and reuse.
package mrcompile

import (
	"fmt"

	"repro/internal/mapred"
	"repro/internal/physical"
)

// Compile cuts the plan into MapReduce jobs. tmpPrefix namespaces the
// intermediate files of this workflow (it must be unique per submitted
// query so that repository-managed intermediates are never overwritten).
func Compile(plan *physical.Plan, tmpPrefix string) (*mapred.Workflow, error) {
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("mrcompile: %w", err)
	}
	remaining := plan.Clone()
	var jobs []*mapred.Job
	jobNo := 0
	tmpNo := 0

	newTmp := func() string {
		tmpNo++
		return fmt.Sprintf("%s/tmp%d", tmpPrefix, tmpNo)
	}

	for {
		b := pickBlockingRoot(remaining)
		if b == nil {
			break
		}
		include := remaining.ReachableFrom(b.ID)
		growReduceSide(remaining, b, include)
		jobPlan, err := extractJob(remaining, include, newTmp)
		if err != nil {
			return nil, err
		}
		jobNo++
		job, err := mapred.NewJob(fmt.Sprintf("job%d", jobNo), jobPlan)
		if err != nil {
			return nil, fmt.Errorf("mrcompile: cut job %d: %w", jobNo, err)
		}
		jobs = append(jobs, job)
	}

	// Whatever remains is map-only work (possibly nothing).
	pruneDeadOps(remaining)
	if remaining.Len() > 0 {
		if len(remaining.Sinks()) == 0 {
			return nil, fmt.Errorf("mrcompile: %d residual operators without stores", remaining.Len())
		}
		jobNo++
		job, err := mapred.NewJob(fmt.Sprintf("job%d", jobNo), remaining)
		if err != nil {
			return nil, fmt.Errorf("mrcompile: map-only job: %w", err)
		}
		jobs = append(jobs, job)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("mrcompile: plan compiled to zero jobs")
	}
	return &mapred.Workflow{Jobs: jobs}, nil
}

// pickBlockingRoot returns a blocking operator with no blocking ancestor in
// the plan, preferring the lowest ID for determinism. Returns nil when the
// plan has no blocking operators.
func pickBlockingRoot(p *physical.Plan) *physical.Operator {
	for _, o := range p.Ops() {
		if !o.Kind.Blocking() {
			continue
		}
		hasBlockingAncestor := false
		for id := range p.ReachableFrom(o.ID) {
			if id != o.ID && p.Op(id).Kind.Blocking() {
				hasBlockingAncestor = true
				break
			}
		}
		if !hasBlockingAncestor {
			return o
		}
	}
	return nil
}

// growReduceSide extends the included set with the maximal set of
// non-blocking descendants of b whose inputs are all inside the set — the
// operators that can run in b's reduce phase.
func growReduceSide(p *physical.Plan, b *physical.Operator, include map[int]bool) {
	changed := true
	for changed {
		changed = false
		for id := range include {
			for _, c := range p.Consumers(id) {
				if include[c.ID] || c.Kind.Blocking() {
					continue
				}
				allIn := true
				for _, in := range c.Inputs {
					if !include[in] {
						allIn = false
						break
					}
				}
				if allIn {
					include[c.ID] = true
					changed = true
				}
			}
		}
	}
}

// extractJob removes the included operators from remaining and returns them
// as a standalone job plan. Edges from included operators to excluded
// consumers are cut by materializing the producer to a temp file: the job
// gains a Store, the remainder gains a Load. Included Loads that excluded
// operators also read are duplicated instead (a Load has no state to cut).
func extractJob(remaining *physical.Plan, include map[int]bool, newTmp func() string) (*physical.Plan, error) {
	jobPlan := physical.NewPlan()
	remap := make(map[int]int) // remaining ID -> job plan ID

	for _, o := range remaining.Ops() {
		if include[o.ID] {
			cp := o.Clone()
			jobPlan.Add(cp)
			remap[o.ID] = cp.ID
		}
	}
	for oldID, newID := range remap {
		op := jobPlan.Op(newID)
		for i, in := range remaining.Op(oldID).Inputs {
			mapped, ok := remap[in]
			if !ok {
				return nil, fmt.Errorf("mrcompile: included op %d has excluded input %d", oldID, in)
			}
			op.Inputs[i] = mapped
		}
	}

	// Cut outgoing edges.
	for _, o := range remaining.Ops() {
		if !include[o.ID] {
			continue
		}
		var outside []*physical.Operator
		for _, c := range remaining.Consumers(o.ID) {
			if !include[c.ID] {
				outside = append(outside, c)
			}
		}
		if len(outside) == 0 {
			continue
		}
		if o.Kind == physical.OpLoad {
			// Duplicate the Load into the remainder.
			dup := o.Clone()
			dup.Inputs = nil
			remaining.Add(dup)
			for _, c := range outside {
				c.ReplaceInput(o.ID, dup.ID)
			}
			continue
		}
		// Reuse an existing user Store of this producer when present, so
		// the workflow does not write the same bytes twice.
		var path string
		for _, c := range jobPlan.Consumers(remap[o.ID]) {
			if c.Kind == physical.OpStore && !c.Injected {
				path = c.Path
				break
			}
		}
		if path == "" {
			path = newTmp()
			jobPlan.Add(&physical.Operator{
				Kind:   physical.OpStore,
				Path:   path,
				Inputs: []int{remap[o.ID]},
				Schema: o.Schema,
			})
		}
		load := remaining.Add(&physical.Operator{
			Kind:   physical.OpLoad,
			Path:   path,
			Schema: o.Schema,
		})
		for _, c := range outside {
			c.ReplaceInput(o.ID, load.ID)
		}
	}

	// Remove the extracted operators from the remainder.
	for oldID := range remap {
		remaining.Remove(oldID)
	}

	// The job's terminal operators need Stores: if the blocking segment's
	// frontier ends without one (all consumers were excluded and cut above,
	// which added Stores), validation will catch residual problems.
	if len(jobPlan.Sinks()) == 0 {
		return nil, fmt.Errorf("mrcompile: extracted job has no store")
	}
	return jobPlan, nil
}

// pruneDeadOps removes operators that no longer reach a Store (artifacts of
// edge cutting).
func pruneDeadOps(p *physical.Plan) {
	live := make(map[int]bool)
	for _, st := range p.Sinks() {
		for id := range p.ReachableFrom(st.ID) {
			live[id] = true
		}
	}
	for _, o := range p.Ops() {
		if !live[o.ID] {
			p.Remove(o.ID)
		}
	}
}
