package mrcompile

import (
	"context"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mapred"
	"repro/internal/physical"
	"repro/internal/piglatin"
	"repro/internal/types"
)

func compile(t *testing.T, src, tmpPrefix string) *mapred.Workflow {
	t.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := logical.Build(script)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	w, err := Compile(plan, tmpPrefix)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return w
}

func seed(t *testing.T, fs *dfs.FS) {
	t.Helper()
	views := types.NewSchema(
		types.Field{Name: "user", Kind: types.KindString},
		types.Field{Name: "timestamp", Kind: types.KindInt},
		types.Field{Name: "est_revenue", Kind: types.KindFloat},
	)
	if err := fs.WritePartitioned("page_views", views, []types.Tuple{
		{types.NewString("alice"), types.NewInt(1), types.NewFloat(1.5)},
		{types.NewString("alice"), types.NewInt(2), types.NewFloat(2.5)},
		{types.NewString("bob"), types.NewInt(3), types.NewFloat(3.0)},
		{types.NewString("eve"), types.NewInt(4), types.NewFloat(9.9)},
	}, 2); err != nil {
		t.Fatal(err)
	}
	users := types.NewSchema(
		types.Field{Name: "name", Kind: types.KindString},
		types.Field{Name: "phone", Kind: types.KindString},
	)
	if err := fs.WritePartitioned("users", users, []types.Tuple{
		{types.NewString("alice"), types.NewString("555-1")},
		{types.NewString("bob"), types.NewString("555-2")},
		{types.NewString("carol"), types.NewString("555-3")},
	}, 2); err != nil {
		t.Fatal(err)
	}
}

func runWorkflow(t *testing.T, fs *dfs.FS, w *mapred.Workflow) *mapred.WorkflowResult {
	t.Helper()
	e := mapred.NewEngine(fs, cluster.Default())
	res, err := e.RunWorkflow(context.Background(), w)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func sorted(t *testing.T, fs *dfs.FS, path string) []string {
	t.Helper()
	rows, err := fs.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = types.FormatTSV(r)
	}
	sort.Strings(out)
	return out
}

const q1Src = `
A = load 'page_views' as (user, timestamp, est_revenue:double);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'out/q1';
`

const q2Src = `
A = load 'page_views' as (user, timestamp, est_revenue:double);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'out/q2';
`

func TestCompileQ1SingleJob(t *testing.T) {
	w := compile(t, q1Src, "tmp/q1")
	if len(w.Jobs) != 1 {
		t.Fatalf("Q1 compiled to %d jobs, want 1 (paper Fig. 2)", len(w.Jobs))
	}
	if w.Jobs[0].Blocking() == nil || w.Jobs[0].Blocking().Kind != physical.OpJoin {
		t.Error("Q1 job should block on Join")
	}
}

func TestCompileAndRunQ1(t *testing.T) {
	fs := dfs.New()
	seed(t, fs)
	w := compile(t, q1Src, "tmp/q1")
	runWorkflow(t, fs, w)
	got := sorted(t, fs, "out/q1")
	want := []string{
		"alice\talice\t1.5",
		"alice\talice\t2.5",
		"bob\tbob\t3",
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("q1 = %v, want %v", got, want)
	}
}

func TestCompileQ2TwoJobs(t *testing.T) {
	w := compile(t, q2Src, "tmp/q2")
	if len(w.Jobs) != 2 {
		t.Fatalf("Q2 compiled to %d jobs, want 2 (paper Fig. 3)", len(w.Jobs))
	}
	deps := w.DependencyMap()
	if len(deps["job2"]) != 1 || deps["job2"][0] != "job1" {
		t.Errorf("deps = %v", deps)
	}
	// Job 1 blocks on Join, job 2 on Group — the paper's exact cut.
	if w.Jobs[0].Blocking().Kind != physical.OpJoin || w.Jobs[1].Blocking().Kind != physical.OpGroup {
		t.Errorf("blocking ops = %s, %s", w.Jobs[0].Blocking().Kind, w.Jobs[1].Blocking().Kind)
	}
}

func TestCompileAndRunQ2(t *testing.T) {
	fs := dfs.New()
	seed(t, fs)
	w := compile(t, q2Src, "tmp/q2")
	runWorkflow(t, fs, w)
	got := sorted(t, fs, "out/q2")
	want := []string{"alice\t4", "bob\t3"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("q2 = %v, want %v", got, want)
	}
}

const l11Src = `
A = load 'page_views' as (user, timestamp, est_revenue:double);
B = foreach A generate user;
C = distinct B;
alpha = load 'users' as (name, phone);
beta = foreach alpha generate name;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into 'out/l11';
`

func TestCompileL11ThreeJobs(t *testing.T) {
	w := compile(t, l11Src, "tmp/l11")
	if len(w.Jobs) != 3 {
		t.Fatalf("L11 compiled to %d jobs, want 3 (paper §7.1)", len(w.Jobs))
	}
	deps := w.DependencyMap()
	finals := 0
	for _, d := range deps {
		if len(d) == 2 {
			finals++
		}
	}
	if finals != 1 {
		t.Errorf("expected one job depending on the other two: %v", deps)
	}
}

func TestCompileAndRunL11(t *testing.T) {
	fs := dfs.New()
	seed(t, fs)
	w := compile(t, l11Src, "tmp/l11")
	runWorkflow(t, fs, w)
	got := sorted(t, fs, "out/l11")
	want := []string{"alice", "bob", "carol", "eve"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("l11 = %v, want %v", got, want)
	}
}

func TestCompileMapOnlyScript(t *testing.T) {
	fs := dfs.New()
	seed(t, fs)
	w := compile(t, `
A = load 'page_views' as (user, timestamp, est_revenue:double);
B = filter A by est_revenue > 2.0;
C = foreach B generate user;
store C into 'out/maponly';
`, "tmp/mo")
	if len(w.Jobs) != 1 || w.Jobs[0].Blocking() != nil {
		t.Fatalf("map-only script compiled wrong: %d jobs", len(w.Jobs))
	}
	runWorkflow(t, fs, w)
	got := sorted(t, fs, "out/maponly")
	want := []string{"alice", "bob", "eve"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("maponly = %v, want %v", got, want)
	}
}

func TestCompileStoreAndContinue(t *testing.T) {
	// The join result is both stored by the user and grouped further: the
	// cut must reuse the user's store path instead of a duplicate temp.
	fs := dfs.New()
	seed(t, fs)
	src := `
A = load 'page_views' as (user, timestamp, est_revenue:double);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'out/joined';
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'out/agg';
`
	w := compile(t, src, "tmp/sc")
	if len(w.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(w.Jobs))
	}
	// Job 2 should read the user's stored join output, not a temp.
	if in := w.Jobs[1].InputPaths(); len(in) != 1 || in[0] != "out/joined" {
		t.Errorf("job2 inputs = %v, want [out/joined]", in)
	}
	runWorkflow(t, fs, w)
	if got := sorted(t, fs, "out/agg"); strings.Join(got, "|") != "alice\t4|bob\t3" {
		t.Errorf("agg = %v", got)
	}
	if got := sorted(t, fs, "out/joined"); len(got) != 3 {
		t.Errorf("joined rows = %d", len(got))
	}
}

func TestCompileNestedForeachRuns(t *testing.T) {
	fs := dfs.New()
	seed(t, fs)
	src := `
A = load 'page_views' as (user, timestamp:int, est_revenue:double);
B = group A by user;
C = foreach B {
  early = filter A by timestamp < 3;
  generate group, COUNT(early), COUNT(A);
};
store C into 'out/nested';
`
	w := compile(t, src, "tmp/nf")
	runWorkflow(t, fs, w)
	got := sorted(t, fs, "out/nested")
	want := []string{"alice\t2\t2", "bob\t0\t1", "eve\t0\t1"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("nested = %v, want %v", got, want)
	}
}

func TestCompileOrderAfterGroup(t *testing.T) {
	fs := dfs.New()
	seed(t, fs)
	src := `
A = load 'page_views' as (user, timestamp, est_revenue:double);
B = group A by user;
C = foreach B generate group, SUM(A.est_revenue) as total;
D = order C by total desc;
store D into 'out/top';
`
	w := compile(t, src, "tmp/og")
	if len(w.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2 (group job + order job)", len(w.Jobs))
	}
	runWorkflow(t, fs, w)
	rows, err := fs.ReadAll("out/top")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].Str() != "eve" {
		t.Errorf("top = %v", rows)
	}
}

func TestTempPathsNamespaced(t *testing.T) {
	w := compile(t, q2Src, "tmp/queryX")
	for _, j := range w.Jobs {
		for _, out := range j.OutputPaths() {
			if !strings.HasPrefix(out, "out/") && !strings.HasPrefix(out, "tmp/queryX/") {
				t.Errorf("temp path %q not under requested prefix", out)
			}
		}
	}
}
