package pigmix

import (
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/piglatin"
)

func tinyConfig() GenConfig {
	return GenConfig{PageViewsRows: 500, Users: 60, PowerUsers: 10, WideRows: 100, Partitions: 2, Seed: 7}
}

func TestGenerateTables(t *testing.T) {
	fs := dfs.New()
	if err := Generate(fs, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{PathPageViews, PathUsers, PathPowerUsers, PathWideRow} {
		st, err := fs.StatFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Records == 0 || st.Bytes == 0 {
			t.Errorf("%s empty: %+v", p, st)
		}
	}
	st, _ := fs.StatFile(PathPageViews)
	if st.Records != 500 || st.Partitions != 2 {
		t.Errorf("page_views = %+v", st)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := dfs.New(), dfs.New()
	if err := Generate(a, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if err := Generate(b, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	ra, err := a.ReadAll(PathPageViews)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.ReadAll(PathPageViews)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatal("row counts differ")
	}
	for i := range ra {
		if ra[i][0].Str() != rb[i][0].Str() {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if err := Generate(dfs.New(), GenConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestAllQueriesParseAndCompile(t *testing.T) {
	wantJobs := map[string]int{
		"L2": 1, "L3": 2, "L4": 1, "L5": 1, "L6": 1, "L7": 1, "L8": 1, "L11": 3,
		"L3a": 2, "L3b": 2, "L3c": 2, "L11a": 3, "L11b": 3, "L11c": 3, "L11d": 3,
	}
	for name, want := range wantJobs {
		src, err := Query(name, "out/"+name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		script, err := piglatin.Parse(src)
		if err != nil {
			t.Fatalf("%s parse: %v", name, err)
		}
		plan, err := logical.Build(script)
		if err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		w, err := mrcompile.Compile(plan, "tmp/"+name)
		if err != nil {
			t.Fatalf("%s compile: %v", name, err)
		}
		if len(w.Jobs) != want {
			t.Errorf("%s compiled to %d jobs, want %d", name, len(w.Jobs), want)
		}
	}
}

func TestUnknownQuery(t *testing.T) {
	if _, err := Query("L99", "out"); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestQuerySubstitutesOut(t *testing.T) {
	src, err := Query("L2", "results/here")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "results/here") || strings.Contains(src, "$out") {
		t.Error("output path not substituted")
	}
}

func TestNamesAndVariants(t *testing.T) {
	if len(Names()) != 8 {
		t.Errorf("Names = %v", Names())
	}
	if len(VariantNames()) != 9 {
		t.Errorf("VariantNames = %v", VariantNames())
	}
	for _, n := range append(Names(), VariantNames()...) {
		if _, err := Query(n, "o"); err != nil {
			t.Errorf("query %s missing: %v", n, err)
		}
	}
}

func TestInstancesKeepPaperRatio(t *testing.T) {
	i15, i150 := Instance15GB(), Instance150GB()
	if i150.Config.PageViewsRows != 10*i15.Config.PageViewsRows {
		t.Error("instances should keep the paper's 1:10 row ratio")
	}
	if i15.TargetBytes != 15<<30 || i150.TargetBytes != 150<<30 {
		t.Error("target bytes wrong")
	}
}
