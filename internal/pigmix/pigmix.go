// Package pigmix provides the PigMix-style workload of the paper's
// evaluation (§7): a data generator for the page_views / users /
// power_users / widerow tables and the queries L2–L8 and L11 (plus the
// L3/L11 variants of §7.1) written in this repository's Pig Latin dialect.
//
// The paper generated two instances: 10M rows (~15 GB) and 100M rows
// (~150 GB). Laptop-scale reproduction keeps the 1:10 row ratio and bills
// simulated time through cluster.Config.ScaleFactor (see DESIGN.md).
package pigmix

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dfs"
	"repro/internal/types"
)

// GenConfig sizes one generated instance.
type GenConfig struct {
	// PageViewsRows is the number of rows of the dominant table.
	PageViewsRows int
	// Users is the number of distinct users (rows in the users table).
	Users int
	// PowerUsers is the size of the small power_users table.
	PowerUsers int
	// WideRows is the number of rows of the widerow table.
	WideRows int
	// Partitions is the partition count of page_views (drives real map
	// parallelism).
	Partitions int
	// Seed makes generation deterministic.
	Seed int64
}

// Instance describes a generated dataset standing in for one of the paper's
// two instances.
type Instance struct {
	Name        string
	Config      GenConfig
	TargetBytes int64 // the paper-scale size this instance represents
}

// Instance15GB mirrors the paper's 10M-row / 15 GB instance.
func Instance15GB() Instance {
	return Instance{
		Name: "15GB",
		Config: GenConfig{
			PageViewsRows: 6_000,
			Users:         500,
			PowerUsers:    50,
			WideRows:      1_200,
			Partitions:    4,
			Seed:          1,
		},
		TargetBytes: 15 << 30,
	}
}

// Instance150GB mirrors the paper's 100M-row / 150 GB instance (10x rows).
func Instance150GB() Instance {
	return Instance{
		Name: "150GB",
		Config: GenConfig{
			PageViewsRows: 60_000,
			Users:         5_000,
			PowerUsers:    500,
			WideRows:      12_000,
			Partitions:    8,
			Seed:          1,
		},
		TargetBytes: 150 << 30,
	}
}

// Table paths in the DFS.
const (
	PathPageViews  = "pigmix/page_views"
	PathUsers      = "pigmix/users"
	PathPowerUsers = "pigmix/power_users"
	PathWideRow    = "pigmix/widerow"
)

// PageViewsSchema is the declared schema of page_views.
func PageViewsSchema() types.Schema {
	return types.NewSchema(
		types.Field{Name: "user", Kind: types.KindString},
		types.Field{Name: "action", Kind: types.KindInt},
		types.Field{Name: "timespent", Kind: types.KindInt},
		types.Field{Name: "query_term", Kind: types.KindString},
		types.Field{Name: "ip_addr", Kind: types.KindString},
		types.Field{Name: "timestamp", Kind: types.KindInt},
		types.Field{Name: "estimated_revenue", Kind: types.KindFloat},
		types.Field{Name: "page_info", Kind: types.KindString},
		types.Field{Name: "page_links", Kind: types.KindString},
	)
}

// UsersSchema is the declared schema of users and power_users.
func UsersSchema() types.Schema {
	return types.NewSchema(
		types.Field{Name: "name", Kind: types.KindString},
		types.Field{Name: "phone", Kind: types.KindString},
		types.Field{Name: "address", Kind: types.KindString},
		types.Field{Name: "city", Kind: types.KindString},
		types.Field{Name: "state", Kind: types.KindString},
		types.Field{Name: "zip", Kind: types.KindString},
	)
}

// WideRowSchema is the declared schema of widerow.
func WideRowSchema() types.Schema {
	fields := []types.Field{{Name: "user", Kind: types.KindString}}
	for i := 1; i <= 10; i++ {
		fields = append(fields, types.Field{Name: fmt.Sprintf("c%d", i), Kind: types.KindString})
	}
	return types.Schema{Fields: fields}
}

// Generate writes all four tables into the DFS, deterministically per seed.
func Generate(fs *dfs.FS, cfg GenConfig) error {
	if cfg.PageViewsRows <= 0 || cfg.Users <= 0 {
		return fmt.Errorf("pigmix: non-positive table sizes")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	userName := func(i int) string { return fmt.Sprintf("user%06d", i) }

	views := make([]types.Tuple, cfg.PageViewsRows)
	for i := range views {
		// Zipf-flavored skew: quadratic bias toward low user IDs, like the
		// PigMix generator's power-law user activity.
		u := int(float64(cfg.Users) * rng.Float64() * rng.Float64())
		if u >= cfg.Users {
			u = cfg.Users - 1
		}
		views[i] = types.Tuple{
			types.NewString(userName(u)),
			types.NewInt(int64(1 + rng.Intn(10))),
			types.NewInt(int64(rng.Intn(600))),
			types.NewString(fmt.Sprintf("term%04d", rng.Intn(1000))),
			types.NewString(fmt.Sprintf("10.0.%d.%d", rng.Intn(256), rng.Intn(256))),
			types.NewInt(int64(rng.Intn(86400))),
			types.NewFloat(float64(rng.Intn(10000)) / 100),
			// page_info / page_links dominate PigMix's row width (maps and
			// bags in the original); they are what makes the projected
			// sub-jobs so much smaller than the input (Table 1).
			types.NewString(randText(rng, 350)),
			types.NewString(randText(rng, 350)),
		}
	}
	if err := fs.WritePartitioned(PathPageViews, PageViewsSchema(), views, cfg.Partitions); err != nil {
		return err
	}

	mkUser := func(i int) types.Tuple {
		return types.Tuple{
			types.NewString(userName(i)),
			types.NewString(fmt.Sprintf("555-%04d", rng.Intn(10000))),
			types.NewString(randText(rng, 12)),
			types.NewString(fmt.Sprintf("city%03d", rng.Intn(200))),
			types.NewString(fmt.Sprintf("st%02d", rng.Intn(50))),
			types.NewString(fmt.Sprintf("%05d", rng.Intn(100000))),
		}
	}
	users := make([]types.Tuple, cfg.Users)
	for i := range users {
		users[i] = mkUser(i)
	}
	if err := fs.WritePartitioned(PathUsers, UsersSchema(), users, 2); err != nil {
		return err
	}

	if cfg.PowerUsers > cfg.Users {
		cfg.PowerUsers = cfg.Users
	}
	power := make([]types.Tuple, cfg.PowerUsers)
	for i := range power {
		power[i] = mkUser(i) // the most active users
	}
	if err := fs.WritePartitioned(PathPowerUsers, UsersSchema(), power, 1); err != nil {
		return err
	}

	wide := make([]types.Tuple, cfg.WideRows)
	for i := range wide {
		row := types.Tuple{types.NewString(userName(rng.Intn(cfg.Users * 2)))} // half overlap
		for c := 0; c < 10; c++ {
			row = append(row, types.NewString(randText(rng, 8)))
		}
		wide[i] = row
	}
	return fs.WritePartitioned(PathWideRow, WideRowSchema(), wide, 2)
}

func randText(rng *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + rng.Intn(26)))
	}
	return sb.String()
}

const loadPageViews = `A = load 'pigmix/page_views' as (user, action:int, timespent:int, query_term, ip_addr, timestamp:int, estimated_revenue:double, page_info, page_links);`

// Query returns the named query storing into out. Names: L2–L8, L11, and
// the §7.1 variants L3a–L3c (different aggregates) and L11a–L11d
// (different unioned data sets).
func Query(name, out string) (string, error) {
	body, ok := queries[name]
	if !ok {
		return "", fmt.Errorf("pigmix: unknown query %q", name)
	}
	return strings.ReplaceAll(body, "$out", out), nil
}

// Names lists the base benchmark queries in evaluation order.
func Names() []string {
	return []string{"L2", "L3", "L4", "L5", "L6", "L7", "L8", "L11"}
}

// VariantNames lists the whole-job-reuse workload of §7.1.
func VariantNames() []string {
	return []string{"L3", "L3a", "L3b", "L3c", "L11", "L11a", "L11b", "L11c", "L11d"}
}

var queries = map[string]string{
	// L2: project the big table and join with the small power_users table.
	"L2": loadPageViews + `
B = foreach A generate user, estimated_revenue;
alpha = load 'pigmix/power_users' as (name, phone, address, city, state, zip);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into '$out';`,

	// L3: join the big table with users, then group and aggregate.
	"L3": loadPageViews + `
B = foreach A generate user, estimated_revenue;
alpha = load 'pigmix/users' as (name, phone, address, city, state, zip);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.estimated_revenue);
store E into '$out';`,

	"L3a": loadPageViews + `
B = foreach A generate user, estimated_revenue;
alpha = load 'pigmix/users' as (name, phone, address, city, state, zip);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, AVG(C.estimated_revenue);
store E into '$out';`,

	"L3b": loadPageViews + `
B = foreach A generate user, estimated_revenue;
alpha = load 'pigmix/users' as (name, phone, address, city, state, zip);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, MIN(C.estimated_revenue);
store E into '$out';`,

	"L3c": loadPageViews + `
B = foreach A generate user, estimated_revenue;
alpha = load 'pigmix/users' as (name, phone, address, city, state, zip);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, MAX(C.estimated_revenue);
store E into '$out';`,

	// L4: distinct aggregate inside a nested foreach.
	"L4": loadPageViews + `
B = foreach A generate user, action;
C = group B by user;
D = foreach C {
  aleph = distinct B.action;
  generate group, COUNT(aleph);
};
store D into '$out';`,

	// L5: anti-join — users with no page views, via cogroup + IsEmpty.
	"L5": loadPageViews + `
B = foreach A generate user;
alpha = load 'pigmix/users' as (name, phone, address, city, state, zip);
beta = foreach alpha generate name;
C = cogroup beta by name, B by user;
D = filter C by ISEMPTY(B);
E = foreach D generate group;
store E into '$out';`,

	// L6: large group-by producing a big aggregate output.
	"L6": loadPageViews + `
B = foreach A generate user, action, timespent, query_term;
C = group B by (user, query_term);
D = foreach C generate group, SUM(B.timespent);
store D into '$out';`,

	// L7: nested plan with split-like conditional counts.
	"L7": loadPageViews + `
B = foreach A generate user, timestamp;
C = group B by user;
D = foreach C {
  morning = filter B by timestamp < 43200;
  afternoon = filter B by timestamp >= 43200;
  generate group, COUNT(morning), COUNT(afternoon);
};
store D into '$out';`,

	// L8: global aggregates over the whole table.
	"L8": loadPageViews + `
B = foreach A generate user, estimated_revenue, timespent;
C = group B all;
D = foreach C generate COUNT(B), SUM(B.estimated_revenue), SUM(B.timespent);
store D into '$out';`,

	// L11: distinct users unioned across two tables (3 MapReduce jobs:
	// two distincts feeding a final union+distinct).
	"L11": loadPageViews + `
B = foreach A generate user;
C = distinct B;
alpha = load 'pigmix/widerow' as (user, c1, c2, c3, c4, c5, c6, c7, c8, c9, c10);
beta = foreach alpha generate user;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into '$out';`,

	// L11 variants: different table combinations (§7.1 "changed the data
	// sets that are combined").
	"L11a": loadPageViews + `
B = foreach A generate user;
C = distinct B;
alpha = load 'pigmix/users' as (name, phone, address, city, state, zip);
beta = foreach alpha generate name;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into '$out';`,

	"L11b": loadPageViews + `
B = foreach A generate user;
C = distinct B;
alpha = load 'pigmix/power_users' as (name, phone, address, city, state, zip);
beta = foreach alpha generate name;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into '$out';`,

	"L11c": loadPageViews + `
B = foreach A generate query_term;
C = distinct B;
alpha = load 'pigmix/widerow' as (user, c1, c2, c3, c4, c5, c6, c7, c8, c9, c10);
beta = foreach alpha generate c1;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into '$out';`,

	"L11d": loadPageViews + `
B = foreach A generate ip_addr;
C = distinct B;
alpha = load 'pigmix/widerow' as (user, c1, c2, c3, c4, c5, c6, c7, c8, c9, c10);
beta = foreach alpha generate c2;
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into '$out';`,
}
