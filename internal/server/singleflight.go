package server

import (
	"sync"
	"sync/atomic"

	restore "repro"
)

// Single-flight deduplication: under real traffic the dominant reuse case is
// the degenerate one — many clients submitting the *same* query at the same
// time. Instead of executing each copy (each after the first reusing the
// previous one's stored output), the first submission becomes the flight
// leader and every identical in-flight submission waits for and shares its
// result.
//
// Flights are keyed on restore.Prepared.FlightKey — the canonical
// fingerprint of the prepared workflow's plans — not on the script text, so
// submissions that differ only in whitespace, variable names, or statement
// formatting still share one flight (they compile to identical canonical
// plans writing the same outputs).

// flightOutcome is what a flight produces: the execution result, plus each
// output's rows when the leader read them (inside the execution slot, where
// no concurrent eviction can delete an aliased file underneath).
type flightOutcome struct {
	res  *restore.Result
	rows map[string][]string
	err  error
	// rowsFailed marks an err that arose reading rows *after* a successful
	// execution (a reused stored file evicted in between) — worth one
	// resubmission, unlike an execution failure.
	rowsFailed bool
}

type flightCall struct {
	done chan struct{}
	out  flightOutcome
	// wantRows is set by any flight member that asked for output rows; the
	// leader checks it inside the execution slot so joiners' rows are read
	// before a later query's eviction can delete an aliased stored file.
	wantRows atomic.Bool
}

// flightGroup is a minimal single-flight group over query results.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flightCall
}

// do executes fn for the first caller of key and hands every concurrent
// caller of the same key the leader's outcome. shared reports whether this
// caller joined an existing flight. wantRows records this caller's interest
// in output rows on the flight (fn receives the flag to check inside the
// execution slot). Once a flight completes its key is released, so later
// submissions execute again (and hit the repository's stored outputs
// instead).
func (g *flightGroup) do(key string, wantRows bool, fn func(wantRows *atomic.Bool) flightOutcome) (out flightOutcome, shared bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flightCall)
	}
	if c, ok := g.flights[key]; ok {
		if wantRows {
			c.wantRows.Store(true)
		}
		g.mu.Unlock()
		<-c.done
		return c.out, true
	}
	c := &flightCall{done: make(chan struct{})}
	c.wantRows.Store(wantRows)
	g.flights[key] = c
	g.mu.Unlock()

	c.out = fn(&c.wantRows)

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(c.done)
	return c.out, false
}
