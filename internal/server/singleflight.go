package server

import (
	"sync"
	"sync/atomic"

	restore "repro"
)

// Single-flight deduplication: under real traffic the dominant reuse case is
// the degenerate one — many clients submitting the *same* query at the same
// time. Instead of executing each copy (each after the first reusing the
// previous one's stored output), the first submission becomes the flight
// leader and every identical in-flight submission waits for and shares its
// result.
//
// Flights are keyed on restore.Prepared.FlightKey — the canonical
// fingerprint of the prepared workflow's plans — not on the script text, so
// submissions that differ only in whitespace, variable names, or statement
// formatting still share one flight (they compile to identical canonical
// plans writing the same outputs).

// flightOutcome is what a flight produces: the execution result, plus each
// output's rows when the leader read them (inside the execution slot or the
// fast path's pin window, where no concurrent eviction can delete an
// aliased file underneath).
type flightOutcome struct {
	res  *restore.Result
	rows map[string][]string
	err  error
	// rowsFailed marks an err that arose reading rows *after* a successful
	// execution (a reused stored file evicted in between) — worth one
	// resubmission, unlike an execution failure.
	rowsFailed bool
}

type flightCall struct {
	done chan struct{}
	out  flightOutcome
	// wantRows is set by any flight member that asked for output rows.
	// Joiners set it under the group mutex while the flight is still in the
	// map, so the value the leader reads from seal — which removes the
	// flight from the map under the same mutex — is final and complete: no
	// joiner can arrive after seal, and none that arrived before it is
	// missed.
	wantRows atomic.Bool
	// sealed guards against double removal; protected by the group mutex.
	sealed bool
}

// flightHandle is the leader's control over its open flight, passed to the
// flight function.
type flightHandle struct {
	g   *flightGroup
	key string
	c   *flightCall
}

// wantRows reports whether any flight member so far asked for output rows.
// More may still join until seal; use seal for the final answer.
func (h *flightHandle) wantRows() bool { return h.c.wantRows.Load() }

// seal closes the flight to new joiners — the key is removed from the
// group, so later identical submissions start a fresh flight — and returns
// the now-final wantRows. The leader calls it from inside its execution
// slot (or the fast path's pin window) before reading rows: every joiner
// that will ever share this outcome is accounted for at that point, which
// is what makes the in-slot rows read cover them deterministically instead
// of racing a post-flight fallback read against eviction. Idempotent; do
// calls it as a backstop after the flight function returns.
func (h *flightHandle) seal() bool {
	h.g.mu.Lock()
	if !h.c.sealed {
		h.c.sealed = true
		delete(h.g.flights, h.key)
	}
	h.g.mu.Unlock()
	return h.c.wantRows.Load()
}

// flightGroup is a minimal single-flight group over query results.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flightCall
}

// do executes fn for the first caller of key and hands every concurrent
// caller of the same key the leader's outcome. shared reports whether this
// caller joined an existing flight. wantRows records this caller's interest
// in output rows on the flight; fn receives a handle to check it and to
// seal the flight from inside the execution slot. Once a flight is sealed
// (at the latest when fn returns) its key is released, so later submissions
// execute again (and hit the repository's stored outputs instead).
func (g *flightGroup) do(key string, wantRows bool, fn func(h *flightHandle) flightOutcome) (out flightOutcome, shared bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flightCall)
	}
	if c, ok := g.flights[key]; ok {
		if wantRows {
			c.wantRows.Store(true)
		}
		g.mu.Unlock()
		<-c.done
		return c.out, true
	}
	c := &flightCall{done: make(chan struct{})}
	c.wantRows.Store(wantRows)
	g.flights[key] = c
	g.mu.Unlock()

	h := &flightHandle{g: g, key: key, c: c}
	c.out = fn(h)
	// Backstop for flight functions that never reached their seal point
	// (scheduler rejection, execution error).
	h.seal()
	close(c.done)
	return c.out, false
}
