package server

import (
	"context"
	"net/http/httptest"
	"testing"

	restore "repro"
	"repro/internal/obs"
)

// benchmarkSubmit drives repeated submissions of the same (repository-warm)
// query through a daemon with the given registry, pricing the full HTTP
// request path per iteration.
func benchmarkSubmit(b *testing.B, reg *obs.Registry) {
	srv, err := New(Config{System: restore.New(), Obs: reg})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		if err := srv.Close(context.Background()); err != nil {
			b.Errorf("close: %v", err)
		}
	}()
	c := NewClient(hs.URL)
	if _, err := c.Upload("data/pages", pagesSchema, 2, []string{
		"alice\t3\t1.5",
		"bob\t7\t2.5",
		"alice\t2\t4.0",
		"carol\t1\t0.5",
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Submit(projectQuery, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Submit(projectQuery, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerSubmit compares the per-request cost of the serving path
// with telemetry on (histograms, trace, slow ring, rate window) vs
// obs.Disabled. This is the microscopic companion to the server-obs bench
// experiment, which measures the same split under the representative
// cluster-latency workload.
func BenchmarkServerSubmit(b *testing.B) {
	b.Run("instrumented", func(b *testing.B) { benchmarkSubmit(b, nil) })
	b.Run("disabled", func(b *testing.B) { benchmarkSubmit(b, obs.Disabled) })
}
