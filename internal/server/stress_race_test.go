package server

import (
	"fmt"
	"sync"
	"testing"

	restore "repro"
)

// Race/stress battery: hammer the concurrent execution path from many
// goroutines with a deliberately nasty mix — disjoint writes, identical
// scripts (single-flight at the daemon, write-write leases at the System),
// and prefix-overlapping store namespaces — and assert the global
// invariants that pin the conflict semantics down. Run under -race (the
// Makefile `check` target does).

// TestStressSystemMixedConflicts drives System.ExecutePrepared directly:
// no daemon-side scheduler, so the System's own lease table is the only
// thing between N goroutines and a torn DFS.
func TestStressSystemMixedConflicts(t *testing.T) {
	sys := restore.New()
	seedStressData(t, sys)

	const workers = 8
	const rounds = 5
	type outcome struct {
		seq int64
		err error
	}
	outcomes := make(chan outcome, workers*rounds)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var src string
				switch r % 3 {
				case 0:
					// Disjoint: per-worker output namespace.
					src = fmt.Sprintf(`A = load 'in/s0' as (k:int, v:int);
B = filter A by v > %d;
store B into 'out/w%d/r%d';`, (w*rounds+r)%7, w, r)
				case 1:
					// Identical across workers: write-write conflict on the
					// same store path, must serialize and stay consistent.
					src = `A = load 'in/s1' as (k:int, v:int);
B = group A by k;
C = foreach B generate group, COUNT(A);
store C into 'out/shared';`
				default:
					// Prefix-overlapping: out/p vs out/p/<w> — the
					// conflict detector must treat these as overlapping.
					if w%2 == 0 {
						src = fmt.Sprintf(`A = load 'in/s2' as (k:int, v:int);
B = filter A by v > 5;
store B into 'out/p/w%d';`, w)
					} else {
						src = `A = load 'in/s2' as (k:int, v:int);
B = filter A by v > 5;
store B into 'out/p';`
					}
				}
				p, err := sys.Prepare(src)
				if err != nil {
					outcomes <- outcome{err: err}
					continue
				}
				res, err := sys.ExecutePrepared(p)
				if err != nil {
					outcomes <- outcome{err: err}
					continue
				}
				outcomes <- outcome{seq: res.Seq}
			}
		}()
	}
	wg.Wait()
	close(outcomes)

	total := workers * rounds
	seqs := make(map[int64]bool)
	var maxSeq int64
	n := 0
	for o := range outcomes {
		if o.err != nil {
			t.Fatalf("execution failed under stress: %v", o.err)
		}
		if o.seq <= 0 {
			t.Fatalf("result carries no sequence number: %d", o.seq)
		}
		if seqs[o.seq] {
			t.Fatalf("duplicate sequence number %d — two executions admitted as one", o.seq)
		}
		seqs[o.seq] = true
		if o.seq > maxSeq {
			maxSeq = o.seq
		}
		n++
	}
	if n != total {
		t.Fatalf("got %d results, want %d", n, total)
	}
	// Seq is assigned once per execution from a shared counter: with no
	// other traffic, the set must be exactly 1..total (monotone, no gaps,
	// nothing lost).
	if maxSeq != int64(total) {
		t.Errorf("max seq = %d, want %d (gaps mean admissions were lost)", maxSeq, total)
	}

	// Stats counters must account for every execution exactly once.
	stats := sys.Stats()
	if stats.Queries != int64(total) {
		t.Errorf("stats.Queries = %d, want %d", stats.Queries, total)
	}
	if stats.QueriesReused == 0 {
		t.Error("no reuse under the stress mix — repository not shared across workers")
	}

	// No lost repository entries: every entry's stored output must still
	// exist in the DFS (an entry whose file vanished would poison every
	// future rewrite), and the repository must not be empty.
	repo := sys.Repository()
	if repo.Len() == 0 {
		t.Fatal("repository empty after the stress mix")
	}
	for _, e := range repo.OrderedSnapshot() {
		if !sys.FS().Exists(e.OutputPath) {
			t.Errorf("repository entry %s lost its stored output %s", e.ID, e.OutputPath)
		}
	}
}

// TestStressDaemonMixedTraffic drives the same mix through the HTTP
// daemon, adding single-flight dedup, uploads riding alongside queries,
// and the metrics identity submitted = executed + deduped + failed.
func TestStressDaemonMixedTraffic(t *testing.T) {
	sys := restore.New()
	seedStressData(t, sys)
	base, stop := startDaemon(t, Config{System: sys, Workers: 4, BarrierWindow: 8})
	defer stop()

	const clients = 8
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*2)
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(base)
			for r := 0; r < rounds; r++ {
				var src string
				if r%2 == 0 {
					// Identical across clients: the single-flight layer
					// collapses the pile-up.
					src = fmt.Sprintf(`A = load 'in/s0' as (k:int, v:int);
B = group A by k;
C = foreach B generate group, COUNT(A);
store C into 'out/dedup/r%d';`, r)
				} else {
					src = fmt.Sprintf(`A = load 'in/s1' as (k:int, v:int);
B = filter A by v > %d;
store B into 'out/cl%d/r%d';`, r, cl, r)
				}
				if _, err := c.Submit(src, true); err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", cl, r, err)
					return
				}
				// Concurrent uploads to fresh paths must ride alongside
				// query execution without invalidating anything.
				if _, err := c.Upload(fmt.Sprintf("in/up%d_%d", cl, r), "k:int, v:int",
					1, []string{"1\t2", "3\t4"}); err != nil {
					errs <- fmt.Errorf("client %d upload %d: %w", cl, r, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m, err := NewClient(base).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesSubmitted != int64(clients*rounds) {
		t.Errorf("submitted = %d, want %d", m.QueriesSubmitted, clients*rounds)
	}
	if m.QueriesSubmitted != m.QueriesExecuted+m.QueriesDeduped+m.QueriesFailed {
		t.Errorf("metrics identity broken: submitted=%d executed=%d deduped=%d failed=%d",
			m.QueriesSubmitted, m.QueriesExecuted, m.QueriesDeduped, m.QueriesFailed)
	}
	if m.QueriesFailed != 0 {
		t.Errorf("%d queries failed under stress", m.QueriesFailed)
	}
	if m.Uploads != int64(clients*rounds) {
		t.Errorf("uploads = %d, want %d", m.Uploads, clients*rounds)
	}
	if m.Workers != 4 {
		t.Errorf("workers = %d, want 4", m.Workers)
	}
	// System-level accounting agrees with the daemon's.
	if m.Reuse.Queries != m.QueriesExecuted {
		t.Errorf("system executed %d queries, daemon says %d", m.Reuse.Queries, m.QueriesExecuted)
	}
	for _, e := range sys.Repository().OrderedSnapshot() {
		if !sys.FS().Exists(e.OutputPath) {
			t.Errorf("repository entry %s lost its stored output %s", e.ID, e.OutputPath)
		}
	}
}

// seedStressData loads the three deterministic datasets the stress queries
// read.
func seedStressData(t *testing.T, sys *restore.System) {
	t.Helper()
	for d := 0; d < 3; d++ {
		lines := make([]string, 200)
		for i := range lines {
			lines[i] = fmt.Sprintf("%d\t%d", (i*7+d)%13, (i*11+d)%17)
		}
		if err := sys.LoadTSV(fmt.Sprintf("in/s%d", d), "k:int, v:int", lines, 2); err != nil {
			t.Fatal(err)
		}
	}
}
