package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	restore "repro"
)

// Drain-barrier battery: before this PR, checkpoints were only consistent
// because a single global worker meant nothing else could be mid-execution
// when a save ran. With path-disjoint concurrency that guarantee has to be
// explicit — SaveState takes a universal lease that drains in-flight
// executions — and these tests would catch a torn snapshot if it ever
// regressed.

// TestCheckpointDrainBarrier hammers SaveState while disjoint queries
// execute concurrently, and verifies every captured snapshot pair is
// consistent: any user output present in the DFS snapshot is complete (an
// engine mid-run would leave a created-but-uncommitted file with missing
// partitions), and every repository entry's stored output made it into the
// same snapshot.
func TestCheckpointDrainBarrier(t *testing.T) {
	sys := restore.New()
	const rows = 120
	lines := make([]string, rows)
	for i := range lines {
		lines[i] = fmt.Sprintf("%d\t%d", i%10, i)
	}
	if err := sys.LoadTSV("in/drain", "k:int, v:int", lines, 3); err != nil {
		t.Fatal(err)
	}

	// Writers: every query keeps all rows (v > -1), so each out/ file is
	// either absent from a snapshot or holds exactly `rows` records —
	// anything in between is a torn capture.
	const writers = 6
	const perWriter = 4
	var wg sync.WaitGroup
	execErrs := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perWriter; r++ {
				src := fmt.Sprintf(`A = load 'in/drain' as (k:int, v:int);
B = filter A by v > -1;
store B into 'out/d%d/r%d';`, w, r)
				if _, err := sys.Execute(src); err != nil {
					execErrs <- err
					return
				}
			}
		}()
	}

	// Checkpointer: capture snapshot pairs while the writers run.
	const snapshots = 8
	type pair struct{ repo, dfs []byte }
	pairs := make([]pair, 0, snapshots)
	for i := 0; i < snapshots; i++ {
		var repoBuf, dfsBuf bytes.Buffer
		if err := sys.SaveState(&repoBuf, &dfsBuf); err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, pair{repo: repoBuf.Bytes(), dfs: dfsBuf.Bytes()})
	}
	wg.Wait()
	close(execErrs)
	for err := range execErrs {
		t.Fatal(err)
	}

	for i, p := range pairs {
		restored := restore.New()
		if err := restored.FS().Import(bytes.NewReader(p.dfs)); err != nil {
			t.Fatalf("snapshot %d: import DFS: %v", i, err)
		}
		if err := restored.LoadRepositoryFrom(bytes.NewReader(p.repo)); err != nil {
			t.Fatalf("snapshot %d: load repository: %v", i, err)
		}
		// Every user output present in this snapshot must be complete.
		for _, path := range restored.FS().List("out/") {
			st, err := restored.FS().StatFile(path)
			if err != nil {
				t.Fatalf("snapshot %d: stat %s: %v", i, path, err)
			}
			if st.Records != rows {
				t.Errorf("snapshot %d: torn DFS capture: %s holds %d of %d records",
					i, path, st.Records, rows)
			}
		}
		// Every repository entry's stored file must be in the same
		// snapshot (a repo-newer-than-DFS pair would evict everything on
		// the first post-restart query).
		for _, e := range restored.Repository().OrderedSnapshot() {
			if !restored.FS().Exists(e.OutputPath) {
				t.Errorf("snapshot %d: entry %s references %s, absent from the paired DFS snapshot",
					i, e.ID, e.OutputPath)
			}
		}
	}
}

// TestDaemonCheckpointDrainsWorkerPool checks the scheduler half of the
// barrier: a checkpoint submitted while the worker pool is saturated with
// in-flight executions must drain them first, and the state directory it
// writes must load into a daemon whose repository answers queries.
func TestDaemonCheckpointDrainsWorkerPool(t *testing.T) {
	stateDir := t.TempDir()
	sys := restore.New()
	seedStressData(t, sys)
	base, stop := startDaemon(t, Config{System: sys, StateDir: stateDir, Workers: 4})

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(base)
			for r := 0; r < 3; r++ {
				src := fmt.Sprintf(`A = load 'in/s%d' as (k:int, v:int);
B = group A by k;
C = foreach B generate group, SUM(A.v);
store C into 'out/ck%d/r%d';`, cl%3, cl, r)
				if _, err := c.Submit(src, false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Fire checkpoints into the middle of the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := NewClient(base)
		for i := 0; i < 4; i++ {
			if err := c.Checkpoint(); err != nil {
				errs <- fmt.Errorf("mid-run checkpoint: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stop()

	// The files on disk must form a loadable, self-consistent pair.
	for _, f := range []string{repoStateFile, dfsStateFile} {
		if _, err := os.Stat(filepath.Join(stateDir, f)); err != nil {
			t.Fatalf("checkpoint never wrote %s: %v", f, err)
		}
	}
	base2, stop2 := startDaemon(t, Config{StateDir: stateDir})
	defer stop2()
	c2 := NewClient(base2)
	repo, err := c2.Repository()
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Entries) == 0 {
		t.Fatal("restarted daemon has an empty repository")
	}
	// A repeated query must be answered from the persisted repository
	// without evictions (evictions would mean the pair captured
	// inconsistent input versions).
	resp, err := c2.Submit(`A = load 'in/s0' as (k:int, v:int);
B = group A by k;
C = foreach B generate group, SUM(A.v);
store C into 'out/after-restart';`, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rewrites) == 0 {
		t.Error("restarted daemon applied no rewrites to a repeated query")
	}
	if len(resp.Result.Evicted) != 0 {
		t.Errorf("restart evicted entries %v — checkpoint pair was inconsistent", resp.Result.Evicted)
	}
}
