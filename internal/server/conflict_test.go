package server

import (
	"testing"

	restore "repro"
)

func mkTask(reads, writes []string) *task {
	return &task{access: restore.AccessSet{Reads: reads, Writes: writes}}
}

func TestNextDispatchableHeadFirst(t *testing.T) {
	q := []*task{
		mkTask(nil, []string{"out/a"}),
		mkTask(nil, []string{"out/b"}),
	}
	if i := nextDispatchable(q, nil, 16); i != 0 {
		t.Fatalf("idle scheduler must dispatch the head, got index %d", i)
	}
}

func TestNextDispatchableOvertakesBlockedHead(t *testing.T) {
	inflight := []restore.AccessSet{{Writes: []string{"out/a"}}}
	q := []*task{
		mkTask([]string{"out/a"}, []string{"out/c"}), // blocked: reads an in-flight write
		mkTask(nil, []string{"out/b"}),               // disjoint: may overtake
	}
	if i := nextDispatchable(q, inflight, 16); i != 1 {
		t.Fatalf("disjoint entry should overtake blocked head, got index %d", i)
	}
}

func TestNextDispatchableNeverReordersConflictingTasks(t *testing.T) {
	inflight := []restore.AccessSet{{Writes: []string{"out/a"}}}
	q := []*task{
		mkTask([]string{"out/a"}, []string{"out/c"}), // blocked on in-flight
		mkTask([]string{"out/c"}, []string{"out/d"}), // disjoint from in-flight but reads head's write
	}
	if i := nextDispatchable(q, inflight, 16); i != -1 {
		t.Fatalf("entry conflicting with a queued predecessor must not overtake it, got index %d", i)
	}
}

func TestNextDispatchableBarrierWindow(t *testing.T) {
	inflight := []restore.AccessSet{{Writes: []string{"out/a"}}}
	q := []*task{
		mkTask(nil, []string{"out/a/x"}), // blocked
		mkTask(nil, []string{"out/a/y"}), // blocked
		mkTask(nil, []string{"out/b"}),   // disjoint, but outside window 2
	}
	if i := nextDispatchable(q, inflight, 2); i != -1 {
		t.Fatalf("window 2 must not consider position 2, got index %d", i)
	}
	if i := nextDispatchable(q, inflight, 3); i != 2 {
		t.Fatalf("window 3 should dispatch position 2, got index %d", i)
	}
	// window < 1 degrades to strict FIFO: only the head.
	if i := nextDispatchable(q, inflight, 0); i != -1 {
		t.Fatalf("strict FIFO must not overtake, got index %d", i)
	}
}

func TestNextDispatchableUniversalBarrier(t *testing.T) {
	// A queued universal task (checkpoint) blocks everything behind it.
	q := []*task{
		{access: restore.UniversalAccess()},
		mkTask(nil, []string{"out/b"}),
	}
	inflight := []restore.AccessSet{{Writes: []string{"out/a"}}}
	if i := nextDispatchable(q, inflight, 16); i != -1 {
		t.Fatalf("nothing may dispatch around a queued universal task, got index %d", i)
	}
	// Once in-flight work drains, the universal itself dispatches.
	if i := nextDispatchable(q, nil, 16); i != 0 {
		t.Fatalf("universal task should dispatch on an idle scheduler, got index %d", i)
	}
}

// TestSchedulerRunsDisjointConcurrently is the smallest end-to-end check of
// the worker pool: two disjoint blocking tasks must be in flight at once.
func TestSchedulerRunsDisjointConcurrently(t *testing.T) {
	s := newScheduler(16, 4, 16)
	defer s.close()
	both := make(chan struct{})
	arrived := make(chan struct{}, 2)
	task := func(path string) func() {
		return func() {
			arrived <- struct{}{}
			<-both
		}
	}
	if err := s.submit(restore.AccessSet{Writes: []string{"out/a"}}, task("out/a")); err != nil {
		t.Fatal(err)
	}
	if err := s.submit(restore.AccessSet{Writes: []string{"out/b"}}, task("out/b")); err != nil {
		t.Fatal(err)
	}
	<-arrived
	<-arrived // both running before either is released: true concurrency
	close(both)
}
