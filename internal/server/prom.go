package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// This file renders GET /metrics in the Prometheus text exposition format
// (version 0.0.4). It is hand-written on purpose: the repo takes no
// third-party dependencies, and the format is a few dozen lines of
// counters, gauges, and cumulative histogram buckets. Every counter in
// MetricsSnapshot and core.StatsSnapshot appears here under a restore_*
// name, plus the latency histograms only this endpoint exposes in full
// (the JSON document carries condensed summaries). The golden test in
// prom_test.go pins the family names, labels, and HELP strings.

// promWriter accumulates one exposition document.
type promWriter struct{ b strings.Builder }

// family emits one # HELP / # TYPE header pair.
func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// counter emits a single-series counter family.
func (p *promWriter) counter(name, help string, v int64) {
	p.family(name, help, "counter")
	fmt.Fprintf(&p.b, "%s %d\n", name, v)
}

// gauge emits a single-series gauge family.
func (p *promWriter) gauge(name, help string, v float64) {
	p.family(name, help, "gauge")
	fmt.Fprintf(&p.b, "%s %s\n", name, promFloat(v))
}

// series emits one raw series line (for labeled families).
func (p *promWriter) series(line string, v int64) {
	fmt.Fprintf(&p.b, "%s %d\n", line, v)
}

// histogram emits one histogram family with a single (unlabeled) series.
func (p *promWriter) histogram(name, help string, h obs.HistogramSnapshot) {
	p.family(name, help, "histogram")
	p.histogramSeries(name, "", h)
}

// histogramSeries emits the cumulative bucket, sum, and count lines of one
// histogram series. labels is either empty or a `key="value",` prefix
// (trailing comma included) merged before the le label.
func (p *promWriter) histogramSeries(name, labels string, h obs.HistogramSnapshot) {
	var cum int64
	for i := 0; i < obs.NumBuckets; i++ {
		cum += h.Buckets[i]
		fmt.Fprintf(&p.b, "%s_bucket{%sle=%q} %d\n", name, labels, promLE(i), cum)
	}
	sum := float64(h.SumNanos) / float64(time.Second)
	if labels == "" {
		fmt.Fprintf(&p.b, "%s_sum %s\n%s_count %d\n", name, promFloat(sum), name, h.Count)
		return
	}
	trimmed := strings.TrimSuffix(labels, ",")
	fmt.Fprintf(&p.b, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, trimmed, promFloat(sum), name, trimmed, h.Count)
}

// promLE renders bucket i's upper bound in seconds ("+Inf" for the
// overflow bucket).
func promLE(i int) string {
	if i == obs.NumBuckets-1 {
		return "+Inf"
	}
	return promFloat(obs.BucketBound(i).Seconds())
}

// promFloat renders a float the way Prometheus clients conventionally do.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// handleProm serves the Prometheus exposition.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	snap := s.met.snapshot()
	reg := s.obsReg
	var p promWriter

	p.gauge("restore_uptime_seconds", "Seconds since the daemon started.", snap.UptimeSeconds)
	p.counter("restore_queries_submitted_total", "Query submissions (each retry counts once).", snap.QueriesSubmitted)
	p.counter("restore_queries_executed_total", "Submissions that led their flight and ran to completion.", snap.QueriesExecuted)
	p.counter("restore_queries_deduped_total", "Submissions served by joining an identical in-flight query.", snap.QueriesDeduped)
	p.counter("restore_queries_hot_total", "Executed flights served by the admission-time result fast path (subset of executed).", snap.QueriesHot)
	p.family("restore_queries_failed_total", "Failed submissions by cause: parse (script rejected), shed (queue full or shutting down), exec (execution or rows read failed).", "counter")
	p.series(`restore_queries_failed_total{cause="parse"}`, snap.QueriesFailedParse)
	p.series(`restore_queries_failed_total{cause="shed"}`, snap.QueriesFailedShed)
	p.series(`restore_queries_failed_total{cause="exec"}`, snap.QueriesFailedExec)
	p.gauge("restore_qps", "Lifetime average submissions per second.", snap.QPS)
	p.gauge("restore_qps_1m", "Submissions per second over the trailing 60s window.", snap.QPS1m)
	p.gauge("restore_queue_depth", "Tasks waiting in the conflict-aware scheduler queue.", float64(s.sched.queueDepth()))
	p.gauge("restore_executing", "Tasks running on the worker pool right now.", float64(s.sched.executing()))
	p.gauge("restore_workers", "Worker-pool size (max concurrent path-disjoint workflows).", float64(s.sched.workers))
	p.counter("restore_uploads_total", "Dataset uploads accepted.", snap.Uploads)
	p.counter("restore_checkpoints_total", "Completed WAL compactions (periodic, manual, shutdown).", snap.Checkpoints)
	p.counter("restore_gc_runs_total", "Background growth-management passes.", snap.GCRuns)
	p.counter("restore_gc_evicted_total", "Repository entries evicted by background GC passes.", snap.GCEvicted)
	p.counter("restore_gc_outputs_retired_total", "User-named outputs deleted by retention.", snap.GCOutputsRetired)

	p.gauge("restore_lease_waiting", "Operations queued for path-lease admission.", float64(reg.LeaseWaiting.Load()))
	p.gauge("restore_lease_inflight", "Path leases currently held.", float64(reg.LeaseInflight.Load()))
	p.gauge("restore_universal_waiting", "Universal drain barriers currently stalled waiting for the system to drain.", float64(reg.UniversalWaiting.Load()))
	p.counter("restore_universal_acquires_total", "Universal drain-barrier acquisitions.", reg.UniversalAcquires.Load())

	ru := s.sys.Stats()
	p.counter("restore_reuse_queries_total", "Queries executed by the System (library counter; excludes deduped joiners).", ru.Queries)
	p.counter("restore_reuse_queries_reused_total", "Queries that reused at least one stored output.", ru.QueriesReused)
	p.gauge("restore_reuse_hit_rate", "Fraction of executed queries that reused stored outputs.", ru.HitRate)
	p.counter("restore_reuse_whole_job_total", "Whole-job reuses applied by the plan matcher.", ru.WholeJobReuses)
	p.counter("restore_reuse_sub_job_total", "Sub-job reuses applied by the plan matcher.", ru.SubJobReuses)
	p.counter("restore_jobs_compiled_total", "MapReduce jobs compiled from submitted queries.", ru.JobsCompiled)
	p.counter("restore_jobs_executed_total", "MapReduce jobs that actually ran (after rewrite).", ru.JobsExecuted)
	p.counter("restore_jobs_eliminated_total", "MapReduce jobs eliminated by reuse.", ru.JobsEliminated)
	p.counter("restore_repository_registered_total", "Candidates that entered the repository.", ru.Registered)
	p.counter("restore_repository_rejected_total", "Candidates the keep policy (or a vanished input) rejected.", ru.Rejected)
	p.counter("restore_repository_evicted_total", "Repository entries evicted (per-query passes and GC alike).", ru.Evicted)
	p.counter("restore_reuse_saved_bytes_total", "Input bytes not rescanned thanks to reuse (estimate).", ru.SavedBytes)
	p.gauge("restore_reuse_saved_simulated_seconds_total", "Simulated cluster seconds saved by reuse (estimate).", ru.SavedTime.Seconds())
	p.gauge("restore_simulated_seconds_total", "Simulated cluster seconds of executed workflows.", ru.SimulatedTime.Seconds())
	p.counter("restore_hot_plan_cache_hits_total", "Preparations served by cloning a cached compiled plan (no parse/plan/compile).", ru.Hot.PlanCacheHits)
	p.counter("restore_hot_plan_cache_misses_total", "Full preparations that populated the prepared-plan cache.", ru.Hot.PlanCacheMisses)
	p.counter("restore_hot_results_served_total", "Queries answered entirely from fresh stored outputs without execution leases.", ru.Hot.ResultsServed)
	p.counter("restore_hot_fallbacks_total", "Fast-path probes that found no fresh whole-query match and fell back to normal execution.", ru.Hot.Fallbacks)
	p.counter("restore_match_probes_total", "Repository match probes (entry plan containment tests).", ru.Match.Probes)
	p.counter("restore_match_index_hits_total", "Match probes answered through the fingerprint index.", ru.Match.IndexHits)
	p.counter("restore_match_fallback_scans_total", "Match scans that fell back to the full repository walk.", ru.Match.FallbackScans)
	p.counter("restore_evict_scans_total", "Eviction passes (staleness scans).", ru.Evict.Scans)
	p.counter("restore_evict_probes_total", "Eviction DFS probes (file version checks).", ru.Evict.Probes)
	p.counter("restore_evict_delete_errors_total", "Failed stored-file deletes (re-queued for retry).", ru.Evict.DeleteErrors)
	p.counter("restore_evict_requeue_retired_total", "Previously-failed deletes finally retired.", ru.Evict.RequeueRetired)
	p.counter("restore_evict_outputs_retired_total", "User-named outputs deleted by retention (System counter; the gc_* variant counts per-pass).", ru.Evict.OutputsRetired)

	repo := s.sys.Repository()
	p.gauge("restore_repository_entries", "Stored job outputs currently in the repository.", float64(repo.Len()))
	p.gauge("restore_repository_stored_bytes", "Bytes of DFS data the repository's stored outputs occupy.", float64(repo.TotalStoredBytes()))

	if s.persist != nil {
		ws := s.persist.stats()
		p.gauge("restore_wal_segment", "Current write-ahead-log segment number.", float64(ws.Segment))
		p.counter("restore_wal_records_total", "WAL records appended since daemon start.", ws.Records)
		p.counter("restore_wal_bytes_total", "WAL bytes appended since daemon start.", ws.Bytes)
		p.counter("restore_wal_append_errors_total", "WAL records dropped by a failed append.", ws.AppendErrors)
		p.counter("restore_wal_compactions_total", "Snapshot+truncate compaction cycles.", ws.Compactions)
		p.counter("restore_wal_compact_bytes_total", "Snapshot bytes written by compactions.", ws.CompactBytes)
		p.counter("restore_wal_swept_files_total", "Orphaned restore/ files reclaimed by recovery and compaction sweeps.", ws.TempFilesSwept)
		p.gauge("restore_wal_dirty_files", "DFS files changed since the last compaction.", float64(ws.DirtyFiles))
		p.gauge("restore_wal_recovered_records", "Log records replayed over the snapshot at startup.", float64(ws.RecoveredRecords))
		torn := 0.0
		if ws.RecoveredTorn {
			torn = 1
		}
		p.gauge("restore_wal_recovered_torn", "Whether startup replay truncated a torn final record (0/1).", torn)
	}

	if s.fleet != nil {
		fs := s.fleet.Stats()
		p.counter("restore_fleet_map_tasks_dispatched_total", "Map task dispatch attempts to fleet workers.", fs.MapTasksDispatched)
		p.counter("restore_fleet_reduce_tasks_dispatched_total", "Reduce partition dispatch attempts to fleet workers.", fs.ReduceTasksDispatched)
		p.counter("restore_fleet_tasks_retried_total", "Tasks re-executed in full after a worker failure.", fs.TasksRetried)
		p.counter("restore_fleet_tasks_recovered_total", "Lost tasks rebuilt from repository-backed stored outputs (reuse as recovery).", fs.TasksRecovered)
		p.counter("restore_fleet_worker_failures_total", "Workers the coordinator declared dead.", fs.WorkerFailures)
		p.counter("restore_fleet_shuffle_bytes_pulled_total", "Shuffle bytes reduce workers pulled from peers.", fs.ShuffleBytesPulled)
		p.family("restore_fleet_worker_alive", "Per-worker liveness (1 = dispatching, 0 = dead).", "gauge")
		for _, w := range fs.Workers {
			alive := int64(0)
			if w.Alive {
				alive = 1
			}
			p.series(fmt.Sprintf("restore_fleet_worker_alive{worker=%q}", w.Addr), alive)
		}
	}

	p.histogram("restore_query_duration_seconds", "End-to-end query latency (handler arrival to response build).", reg.Query.Snapshot())
	p.family("restore_stage_duration_seconds", "Per-stage query latency; stages in lifecycle order: parse, queue, flightWait, hot, lease, evict, match, plan, execute, store, rows.", "histogram")
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		p.histogramSeries("restore_stage_duration_seconds", fmt.Sprintf("stage=%q,", st.String()), reg.Stages[st].Snapshot())
	}
	p.histogram("restore_lease_wait_seconds", "Path-lease admission wait of every acquirer (queries, GC, universal barriers).", reg.LeaseWait.Snapshot())
	p.histogram("restore_wal_append_seconds", "Per-record WAL append (framing plus buffered write).", reg.WALAppend.Snapshot())
	p.histogram("restore_wal_fsync_seconds", "WAL flush/fsync batches.", reg.WALFsync.Snapshot())
	p.histogram("restore_gc_sweep_seconds", "Background CollectGarbage passes.", reg.GCSweep.Snapshot())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(p.b.String()))
}
