package server

import (
	restore "repro"
)

// Conflict-aware admission for the execution scheduler. Each queued task
// carries the restore.AccessSet it declared (prefix-scoped read and write
// path sets, see restore.PathsConflict); this file decides which queued
// tasks may dispatch given what is already in flight.
//
// The rules:
//
//   - A task conflicts with another when either is universal or their path
//     sets overlap read/write, write/read, or write/write (prefix-aware:
//     "out/a" overlaps "out/a/part0"). Read/read sharing is free.
//   - Admission is FIFO-fair: the queue head dispatches as soon as nothing
//     in flight conflicts with it. A later entry may overtake a blocked
//     head only when it conflicts with neither the in-flight set nor any
//     entry queued ahead of it — overtaking never reorders two conflicting
//     tasks, so clients observe their own submissions' effects in order.
//   - Overtaking is limited to a barrier window: only the first window
//     queue positions are considered, bounding how far a burst of disjoint
//     traffic can push past a blocked head (and keeping the scan cheap).
//   - A universal task (checkpoint, shutdown drain) conflicts with
//     everything: it waits for all in-flight work, and nothing behind it
//     can overtake it — submitting one is a drain barrier.

// conflictsAny reports whether a conflicts with any of the given sets.
func conflictsAny(a restore.AccessSet, others []restore.AccessSet) bool {
	for _, o := range others {
		if a.ConflictsWith(o) {
			return true
		}
	}
	return false
}

// nextDispatchable returns the queue index of the first task that may
// dispatch under the rules above, or -1 when nothing is eligible. queue is
// FIFO order; inflight the access sets currently executing; window the
// barrier window (positions considered; values < 1 mean strict FIFO, head
// only).
func nextDispatchable(queue []*task, inflight []restore.AccessSet, window int) int {
	if window < 1 {
		window = 1
	}
	limit := len(queue)
	if limit > window {
		limit = window
	}
	for i := 0; i < limit; i++ {
		t := queue[i]
		if conflictsAny(t.access, inflight) {
			continue
		}
		blocked := false
		for _, ahead := range queue[:i] {
			if t.access.ConflictsWith(ahead.access) {
				blocked = true
				break
			}
		}
		if !blocked {
			return i
		}
	}
	return -1
}
