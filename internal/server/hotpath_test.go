package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	restore "repro"
)

// newHotServer builds a server over a System configured the way the hot
// path shines: final outputs registered (the paper's keep-results mode), so
// an exact repeat query whole-collapses onto the stored result.
func newHotServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	sys := restore.New(restore.WithRegisterFinalOutputs(true))
	srv, err := New(Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Close(context.Background()); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, NewClient(hs.URL)
}

const hotQuery = `A = load 'data/pages' as (user, views:int, revenue:double);
B = filter A by views > 1;
store B into 'out/hot';`

// hotQueryVariant is hotQuery with different aliases and whitespace — the
// same canonical plan, a different script text.
const hotQueryVariant = `  alpha = load 'data/pages' as (u, vw:int, rev:double);
beta = filter alpha by vw > 1;   store beta into 'out/hot';`

// TestHotPathServesRepeatQuery pins the tentpole end to end: the first
// submission executes and registers its result; the repeat submission is
// served by the admission-time fast path (no scheduler, no lease, no
// engine run) with identical rows, and every counter layer agrees —
// queriesHot, reuse.hot, and the submitted = executed + deduped + failed
// identity.
func TestHotPathServesRepeatQuery(t *testing.T) {
	_, c := newHotServer(t)
	uploadPages(t, c)

	r1, err := c.Submit(hotQuery, true)
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	if len(r1.Rows["out/hot"]) == 0 {
		t.Fatal("cold query returned no rows")
	}

	r2, err := c.Submit(hotQuery, true)
	if err != nil {
		t.Fatalf("repeat submit: %v", err)
	}
	if r2.Deduped {
		t.Error("sequential repeat reported deduped")
	}
	if got, want := fmt.Sprint(r2.Rows["out/hot"]), fmt.Sprint(r1.Rows["out/hot"]); got != want {
		t.Errorf("hot-served rows differ from executed rows:\nhot:  %s\ncold: %s", got, want)
	}
	if len(r2.Result.Rewrites) == 0 {
		t.Error("hot serve reported no rewrites")
	}

	// A semantically identical script with different text must hot-serve
	// too: the plan cache misses on text but the flight key (and therefore
	// the whole-query match) is canonical.
	r3, err := c.Submit(hotQueryVariant, true)
	if err != nil {
		t.Fatalf("variant submit: %v", err)
	}
	if got, want := fmt.Sprint(r3.Rows["out/hot"]), fmt.Sprint(r1.Rows["out/hot"]); got != want {
		t.Errorf("variant hot rows differ: %s vs %s", got, want)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesHot != 2 {
		t.Errorf("queriesHot = %d, want 2 (two repeat serves)", m.QueriesHot)
	}
	if m.QueriesSubmitted != 3 || m.QueriesExecuted != 3 || m.QueriesDeduped != 0 || m.QueriesFailed != 0 {
		t.Errorf("submitted=%d executed=%d deduped=%d failed=%d, want 3/3/0/0",
			m.QueriesSubmitted, m.QueriesExecuted, m.QueriesDeduped, m.QueriesFailed)
	}
	if m.QueriesSubmitted != m.QueriesExecuted+m.QueriesDeduped+m.QueriesFailed {
		t.Error("submitted = executed + deduped + failed identity broken")
	}
	hot := m.Reuse.Hot
	if hot.ResultsServed != 2 {
		t.Errorf("reuse.hot.resultsServed = %d, want 2", hot.ResultsServed)
	}
	// The cold submission probed and fell back; the serves must not count
	// as fallbacks.
	if hot.Fallbacks != 1 {
		t.Errorf("reuse.hot.fallbacks = %d, want 1 (the cold probe)", hot.Fallbacks)
	}
	// Exact repeat hit the plan cache; the text variant missed (text-keyed
	// lookup) and the cold submission populated it.
	if hot.PlanCacheHits != 1 || hot.PlanCacheMisses != 2 {
		t.Errorf("plan cache hits=%d misses=%d, want 1/2", hot.PlanCacheHits, hot.PlanCacheMisses)
	}
}

// TestHotPathTraceAndStages: a hot-served query's trace must cover the
// request with parse + hot (+ rows) spans — no queue, lease, or execute.
func TestHotPathTraceAndStages(t *testing.T) {
	_, c := newHotServer(t)
	uploadPages(t, c)
	if _, err := c.Submit(hotQuery, true); err != nil {
		t.Fatal(err)
	}
	resp, err := c.SubmitTraced(hotQuery, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("no trace returned")
	}
	stages := make(map[string]bool)
	for _, sp := range resp.Trace.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{"parse", "hot", "rows"} {
		if !stages[want] {
			t.Errorf("hot-served trace missing %q span (got %v)", want, resp.Trace.Spans)
		}
	}
	for _, absent := range []string{"queue", "lease", "execute", "store"} {
		if stages[absent] {
			t.Errorf("hot-served trace contains %q span — fast path took the slow road (got %v)", absent, resp.Trace.Spans)
		}
	}
}

// TestPreparedPlanCacheEquivalence is the cached-vs-recompiled oracle: two
// identically seeded systems run the same script sequence, one through
// fresh Prepare each time, the other through PrepareCached (asserting the
// second preparation of each script is a cache hit and executing the
// cached clone). Flight keys and every output's rows must agree at every
// step — including later steps where both repositories rewrite against
// entries registered by earlier ones.
func TestPreparedPlanCacheEquivalence(t *testing.T) {
	seed := func() *restore.System {
		sys := restore.New()
		lines := []string{
			"alice\t3\t1.5", "bob\t7\t2.5", "alice\t2\t4.0",
			"carol\t1\t0.5", "bob\t4\t3.5", "dave\t9\t0.25",
		}
		if err := sys.LoadTSV("data/pages", pagesSchema, lines, 2); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sysFresh, sysCached := seed(), seed()

	scripts := []string{
		`A = load 'data/pages' as (user, views:int, revenue:double);
B = foreach A generate user, revenue;
store B into 'out/eq1';`,
		`A = load 'data/pages' as (user, views:int, revenue:double);
B = filter A by views > 2;
store B into 'out/eq2';`,
		`A = load 'data/pages' as (user, views:int, revenue:double);
B = filter A by views > 2;
C = group B by user;
D = foreach C generate group, SUM(B.revenue);
store D into 'out/eq3';`,
		`A = load 'data/pages' as (user, views:int, revenue:double);
B = group A by user;
C = foreach B generate group, COUNT(A);
D = order C by $1;
store D into 'out/eq4';`,
		// Exact repeat of an earlier script: maximal reuse on both sides.
		`A = load 'data/pages' as (user, views:int, revenue:double);
B = filter A by views > 2;
store B into 'out/eq2';`,
	}

	for i, src := range scripts {
		pF, err := sysFresh.Prepare(src)
		if err != nil {
			t.Fatalf("script %d: fresh prepare: %v", i, err)
		}
		pMiss, hit, err := sysCached.PrepareCached(src)
		if err != nil {
			t.Fatalf("script %d: cached prepare (miss): %v", i, err)
		}
		if i < 4 && hit {
			t.Errorf("script %d: first preparation reported a cache hit", i)
		}
		pHit, hit, err := sysCached.PrepareCached(src)
		if err != nil {
			t.Fatalf("script %d: cached prepare (hit): %v", i, err)
		}
		if !hit {
			t.Errorf("script %d: second preparation missed the plan cache", i)
		}
		if pF.FlightKey() != pMiss.FlightKey() || pMiss.FlightKey() != pHit.FlightKey() {
			t.Errorf("script %d: flight keys diverge: fresh=%q miss=%q hit=%q",
				i, pF.FlightKey(), pMiss.FlightKey(), pHit.FlightKey())
		}

		resF, err := sysFresh.ExecutePrepared(pF)
		if err != nil {
			t.Fatalf("script %d: fresh execute: %v", i, err)
		}
		// Execute the cache-cloned preparation, not the one that populated
		// the cache — that is the artifact under test.
		resC, err := sysCached.ExecutePrepared(pHit)
		if err != nil {
			t.Fatalf("script %d: cached-clone execute: %v", i, err)
		}
		outs := make([]string, 0, len(resF.Outputs))
		for out := range resF.Outputs {
			outs = append(outs, out)
		}
		sort.Strings(outs)
		for _, out := range outs {
			rowsF, err := sysFresh.ReadOutputTSV(resF, out)
			if err != nil {
				t.Fatalf("script %d: read fresh %s: %v", i, out, err)
			}
			rowsC, err := sysCached.ReadOutputTSV(resC, out)
			if err != nil {
				t.Fatalf("script %d: read cached %s: %v", i, out, err)
			}
			if fmt.Sprint(rowsF) != fmt.Sprint(rowsC) {
				t.Errorf("script %d output %s: cached-clone rows diverge from recompiled rows:\nfresh:  %v\ncached: %v",
					i, out, rowsF, rowsC)
			}
		}
	}
	hot := sysCached.Stats().Hot
	if hot.PlanCacheHits == 0 || hot.PlanCacheMisses == 0 {
		t.Errorf("plan cache counters not exercised: %+v", hot)
	}
}

// TestHotPathFallsBackWhenStoredFileDeleted is the deterministic
// eviction-vs-fast-path case: once the stored file behind a hot-servable
// match is deleted, the next submission must fall back to normal execution
// and still answer correctly — never serve deleted bytes, never fail.
func TestHotPathFallsBackWhenStoredFileDeleted(t *testing.T) {
	srv, c := newHotServer(t)
	uploadPages(t, c)

	r1, err := c.Submit(hotQuery, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(hotQuery, true); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesHot != 1 {
		t.Fatalf("setup: queriesHot = %d, want 1", m.QueriesHot)
	}

	// Evict the stored result out from under the fast path.
	if err := srv.sys.FS().Delete("out/hot"); err != nil {
		t.Fatalf("delete stored output: %v", err)
	}

	r3, err := c.Submit(hotQuery, true)
	if err != nil {
		t.Fatalf("post-delete submit: %v", err)
	}
	if got, want := fmt.Sprint(r3.Rows["out/hot"]), fmt.Sprint(r1.Rows["out/hot"]); got != want {
		t.Errorf("post-delete rows differ: %s vs %s", got, want)
	}
	m, err = c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesHot != 1 {
		t.Errorf("queriesHot = %d after deletion, want still 1 (fallback, not serve)", m.QueriesHot)
	}
	if m.QueriesFailed != 0 {
		t.Errorf("queriesFailed = %d, want 0 — fallback must be invisible to the client", m.QueriesFailed)
	}

	// The fallback re-executed and re-registered; the path is hot again.
	if _, err := c.Submit(hotQuery, true); err != nil {
		t.Fatal(err)
	}
	m, err = c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesHot != 2 {
		t.Errorf("queriesHot = %d after re-registration, want 2", m.QueriesHot)
	}
}

// TestHotPathEvictionRaceStress races repeat submissions against input
// re-uploads (each bump invalidates the registered entries, forcing the
// fast path through its pin-time freshness guard and back to execution)
// under -race. Every submission must succeed with the same rows — the fast
// path may win or lose each race, but it must never serve stale or deleted
// bytes and never surface an error.
func TestHotPathEvictionRaceStress(t *testing.T) {
	_, c := newHotServer(t)
	uploadPages(t, c)

	want, err := c.Submit(hotQuery, true)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := fmt.Sprint(want.Rows["out/hot"])
	if wantRows == "[]" {
		t.Fatal("seed query returned no rows")
	}

	const (
		uploaders = 2
		queriers  = 4
		rounds    = 15
	)
	lines := []string{"alice\t3\t1.5", "bob\t7\t2.5", "alice\t2\t4.0", "carol\t1\t0.5"}
	var wg sync.WaitGroup
	errs := make(chan error, uploaders+queriers)
	for i := 0; i < uploaders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Identical bytes, new version: entries go stale, rows don't.
				if _, err := c.Upload("data/pages", pagesSchema, 2, lines); err != nil {
					errs <- fmt.Errorf("upload round %d: %w", r, err)
					return
				}
			}
		}()
	}
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := c.Submit(hotQuery, true)
				if err != nil {
					errs <- fmt.Errorf("querier %d round %d: %w", id, r, err)
					return
				}
				if got := fmt.Sprint(resp.Rows["out/hot"]); got != wantRows {
					errs <- fmt.Errorf("querier %d round %d: rows diverged:\ngot:  %s\nwant: %s", id, r, got, wantRows)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesFailed != 0 {
		t.Errorf("queriesFailed = %d under the race, want 0", m.QueriesFailed)
	}
	if m.QueriesSubmitted != m.QueriesExecuted+m.QueriesDeduped+m.QueriesFailed {
		t.Errorf("identity broken: submitted=%d executed=%d deduped=%d failed=%d",
			m.QueriesSubmitted, m.QueriesExecuted, m.QueriesDeduped, m.QueriesFailed)
	}
}

// TestRetryAccountingIdentity is the satellite-1 regression test: a forced
// retryable failure (the in-slot rows read loses its stored file) must
// count the failed attempt — in queriesFailed, its cause split, the
// slow-query ring, and the completion log — while the retry succeeds, and
// the submitted = executed + deduped + failed identity must hold across
// both attempts.
func TestRetryAccountingIdentity(t *testing.T) {
	srv, c := newTestServer(t)
	uploadPages(t, c)

	var once sync.Once
	srv.testRowsHook = func(res *restore.Result) {
		once.Do(func() {
			// Delete one produced output between execution and the in-slot
			// rows read — the window the retry exists for.
			for _, actual := range res.Outputs {
				if err := srv.sys.FS().Delete(actual); err != nil {
					t.Errorf("hook delete %s: %v", actual, err)
				}
				return
			}
		})
	}

	resp, err := c.Submit(projectQuery, true)
	if err != nil {
		t.Fatalf("submit (expected transparent retry): %v", err)
	}
	if len(resp.Rows["out/projected"]) == 0 {
		t.Fatal("retried query returned no rows")
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesSubmitted != 2 {
		t.Errorf("queriesSubmitted = %d, want 2 (failed attempt + retry)", m.QueriesSubmitted)
	}
	if m.QueriesExecuted != 1 || m.QueriesFailed != 1 || m.QueriesDeduped != 0 {
		t.Errorf("executed=%d failed=%d deduped=%d, want 1/1/0",
			m.QueriesExecuted, m.QueriesFailed, m.QueriesDeduped)
	}
	if m.QueriesFailedExec != 1 || m.QueriesFailedParse != 0 || m.QueriesFailedShed != 0 {
		t.Errorf("failure split exec=%d parse=%d shed=%d, want 1/0/0",
			m.QueriesFailedExec, m.QueriesFailedParse, m.QueriesFailedShed)
	}
	if m.QueriesSubmitted != m.QueriesExecuted+m.QueriesDeduped+m.QueriesFailed {
		t.Error("submitted = executed + deduped + failed identity broken across the retry")
	}

	// The failed attempt must be visible in the slow-query ring (the bug:
	// `continue` skipped finishQuery, so it vanished).
	slow, err := c.Slow()
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) != 2 {
		t.Fatalf("slow ring holds %d completions, want 2 (failed attempt + retry)", len(slow))
	}
	failed := 0
	for _, sq := range slow {
		if sq.Error != "" {
			failed++
		}
	}
	if failed != 1 {
		t.Errorf("slow ring holds %d failed completions, want exactly 1", failed)
	}
}
