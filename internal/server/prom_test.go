package server

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusExpositionGolden pins the full shape of GET /metrics — every
// family name, label set, HELP string, and TYPE — against a golden file.
// Values vary run to run (latencies, uptime), so series lines are normalized
// down to their name{labels} part; the # HELP/# TYPE lines are kept
// verbatim. Renaming a metric, dropping one, or changing its labels fails
// here first, which is exactly the compatibility surface scrape configs and
// dashboards depend on.
func TestPrometheusExpositionGolden(t *testing.T) {
	srv, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		if err := srv.Close(context.Background()); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	c := NewClient(hs.URL)
	uploadPages(t, c)
	if _, err := c.Submit(projectQuery, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("not pig latin", false); err == nil {
		t.Fatal("expected parse error")
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeExposition(t, string(body))

	goldenPath := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition shape drifted from %s (rerun with -update if intentional):\n%s",
			goldenPath, firstDiff(got, string(want)))
	}
}

// normalizeExposition strips the varying values: comment lines pass through
// verbatim, series lines are cut down to their name{labels} part, and
// duplicate consecutive series shapes collapse (cumulative histogram buckets
// all share a shape modulo the le label, which is kept).
func normalizeExposition(t *testing.T, body string) string {
	t.Helper()
	var out strings.Builder
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			out.WriteString(line)
			out.WriteByte('\n')
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed series line %q", line)
		}
		out.WriteString(line[:i])
		out.WriteByte('\n')
	}
	return out.String()
}

// firstDiff renders the first differing line of two exposition dumps.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("length differs: got %d lines, want %d", len(g), len(w))
}

// TestPrometheusHistogramCumulative checks the bucket math on live output:
// buckets are cumulative, the +Inf bucket equals _count, and the recorded
// query samples show up.
func TestPrometheusHistogramCumulative(t *testing.T) {
	srv, c := newTestServer(t)
	uploadPages(t, c)
	if _, err := c.Submit(projectQuery, false); err != nil {
		t.Fatal(err)
	}
	_ = srv

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	srv.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()

	var infCount, count int64
	var prev int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "restore_query_duration_seconds_bucket{") {
			var v int64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("bucket counts not cumulative at %q (prev %d)", line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				infCount = v
			}
		}
		if strings.HasPrefix(line, "restore_query_duration_seconds_count ") {
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &count); err != nil {
				t.Fatal(err)
			}
		}
	}
	if count < 1 {
		t.Fatalf("query histogram count = %d, want >= 1", count)
	}
	if infCount != count {
		t.Errorf("+Inf bucket = %d, _count = %d; must be equal", infCount, count)
	}
}
