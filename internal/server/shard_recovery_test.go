package server

import (
	"bytes"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"

	restore "repro"
	"repro/internal/dfs"
	"repro/internal/persist"
	"repro/internal/pigmix"
)

// Crash battery for the sharded WAL layout: a daemon running one stream per
// execution-core shard plus a meta stream must recover exactly like the
// single-stream one — per-stream torn tails repaired, interleaved shard
// segments replayed order-independently, cross-stream divergence healed,
// and a -shards change across restarts absorbed by a layout compaction.

const testShards = 3

// shardedPigmixSystem builds a sharded System seeded with the tiny PigMix
// tables.
func shardedPigmixSystem(t *testing.T) *restore.System {
	t.Helper()
	sys := restore.New(restore.WithShards(testShards))
	if err := pigmix.Generate(sys.FS(), tinyPigmix); err != nil {
		t.Fatal(err)
	}
	return sys
}

// shardStreamFiles returns the on-disk shard stream segments grouped by
// shard index (meta stream excluded).
func shardStreamFiles(t *testing.T, dir string) map[int][]persist.ShardSegment {
	t.Helper()
	segs, err := persist.ShardSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	byShard := map[int][]persist.ShardSegment{}
	for _, s := range segs {
		byShard[s.Shard] = append(byShard[s.Shard], s)
	}
	return byShard
}

// TestShardedCrashRecovery is the sharded analogue of the headline recovery
// test: a sharded daemon killed after its streams absorbed a workload but
// before any compaction must restart — as a sharded daemon — to
// byte-identical repository and DFS state, replaying records from the meta
// stream and every shard stream.
func TestShardedCrashRecovery(t *testing.T) {
	stateDir := t.TempDir()
	d, base := startCrashable(t, Config{System: shardedPigmixSystem(t), StateDir: stateDir})
	c := NewClient(base)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, src := range variantWorkload(t, 6) {
		if _, err := c.Submit(src, false); err != nil {
			t.Fatal(err)
		}
	}
	want := exportState(t, d.srv.System())
	wantStreams := d.srv.persist.stats().Streams
	d.crash()

	if wantStreams != 1+testShards {
		t.Fatalf("sharded daemon ran %d WAL streams, want %d", wantStreams, 1+testShards)
	}
	// The workload's DFS mutations must actually be spread over the shard
	// streams, or the whole layout is vacuous.
	populated := 0
	for _, segs := range shardStreamFiles(t, stateDir) {
		for _, s := range segs {
			if st, err := os.Stat(s.Path); err == nil && st.Size() > 0 {
				populated++
				break
			}
		}
	}
	if populated < 2 {
		t.Fatalf("only %d shard streams hold records; workload never spread across shards", populated)
	}

	srv2, err := New(Config{Shards: testShards, StateDir: stateDir, WALSyncInterval: SyncEveryRecord})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if got := srv2.System().Shards(); got != testShards {
		t.Fatalf("recovered daemon runs %d shards, want %d", got, testShards)
	}
	if got := exportState(t, srv2.System()); !bytes.Equal(want, got) {
		t.Fatalf("recovered state differs from pre-crash state (%d vs %d bytes)", len(want), len(got))
	}
	ws := srv2.persist.stats()
	if ws.RecoveredRecords == 0 {
		t.Error("recovery replayed no WAL records")
	}
	if ws.RecoveredTorn {
		t.Error("clean log reported a torn tail")
	}
}

// TestShardReplayOrderIndependent proves the per-shard stream replay is
// order-independent: the shard streams of a crashed sharded daemon, applied
// to the recovered snapshot in many shuffled stream orders, always converge
// to the same DFS state. (Streams for different shards never carry records
// for the same path, so no interleaving can change the outcome.)
func TestShardReplayOrderIndependent(t *testing.T) {
	stateDir := t.TempDir()
	d, base := startCrashable(t, Config{System: shardedPigmixSystem(t), StateDir: stateDir})
	c := NewClient(base)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, src := range variantWorkload(t, 6) {
		if _, err := c.Submit(src, false); err != nil {
			t.Fatal(err)
		}
	}
	d.crash()

	segs, err := persist.ShardSegments(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("want >= 2 shard stream segments to permute, got %d", len(segs))
	}
	metaSegs, err := persist.Segments(stateDir)
	if err != nil {
		t.Fatal(err)
	}

	replayInOrder := func(order []int) []byte {
		fs := dfs.NewSharded(testShards)
		f, err := os.Open(filepath.Join(stateDir, dfsStateFile))
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Import(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		apply := func(rec persist.Record) error {
			if rec.DFS != nil {
				return fs.Apply(*rec.DFS)
			}
			return nil
		}
		// Meta first (it may carry pre-sharding DFS records), then the
		// shard streams in the permuted order.
		for _, seg := range metaSegs {
			if _, _, err := persist.ReplayFile(seg.Path, apply, false); err != nil {
				t.Fatal(err)
			}
		}
		for _, i := range order {
			if _, _, err := persist.ReplayFile(segs[i].Path, apply, false); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := fs.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	base0 := make([]int, len(segs))
	for i := range base0 {
		base0[i] = i
	}
	want := replayInOrder(base0)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		order := append([]int(nil), base0...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		if got := replayInOrder(order); !bytes.Equal(want, got) {
			t.Fatalf("trial %d: shard replay order %v diverged (%d vs %d bytes)", trial, order, len(got), len(want))
		}
	}
}

// TestShardedTornTailSweep truncates each shard stream's final segment (and
// the meta stream's) at a spread of byte offsets: every cut must recover
// deterministically — booting the same truncated directory twice yields
// byte-identical state — and leave a daemon that still answers queries.
// This is the kill-between-shard-appends case: one stream's tail is torn or
// short while its siblings are intact.
func TestShardedTornTailSweep(t *testing.T) {
	stateDir := t.TempDir()
	d, base := startCrashable(t, Config{System: shardedPigmixSystem(t), StateDir: stateDir})
	c := NewClient(base)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, src := range variantWorkload(t, 5) {
		if _, err := c.Submit(src, false); err != nil {
			t.Fatal(err)
		}
	}
	d.crash()

	// Capture the whole directory once; each variant rebuilds it with one
	// stream's tail cut.
	files := map[string][]byte{}
	ents, err := os.ReadDir(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(stateDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = b
	}

	makeDir := func(victim string, cut int) string {
		dir := t.TempDir()
		for name, b := range files {
			if name == victim {
				b = b[:cut]
			}
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}
	recoverState := func(dir string) ([]byte, *WALStats) {
		srv, err := New(Config{Shards: testShards, StateDir: dir, WALSyncInterval: SyncEveryRecord})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		return exportState(t, srv.System()), srv.persist.stats()
	}

	// Every stream with records is a victim; cut its tail mid-record and at
	// a deep truncation.
	var victims []string
	for name, b := range files {
		if filepath.Ext(name) == ".log" && len(b) > 8 {
			victims = append(victims, name)
		}
	}
	if len(victims) < 2 {
		t.Fatalf("only %d populated streams; battery premise broken", len(victims))
	}
	for _, victim := range victims {
		size := len(files[victim])
		for _, cut := range []int{size - 3, size / 2, 1} {
			if cut < 0 || cut >= size {
				continue
			}
			stateA, statsA := recoverState(makeDir(victim, cut))
			stateB, _ := recoverState(makeDir(victim, cut))
			if !bytes.Equal(stateA, stateB) {
				t.Fatalf("%s cut %d: recovery is not deterministic", victim, cut)
			}
			if cut == size-3 && !statsA.RecoveredTorn {
				t.Errorf("%s cut %d: mid-record cut not reported as torn tail", victim, cut)
			}

			// The healed daemon must still serve with reuse: boot one for
			// real and run a query.
			dir := makeDir(victim, cut)
			d2, base2 := startCrashable(t, Config{Shards: testShards, StateDir: dir})
			c2 := NewClient(base2)
			resp, err := c2.Submit(variantWorkload(t, 1)[0], true)
			if err != nil {
				t.Fatalf("%s cut %d: recovered daemon cannot execute: %v", victim, cut, err)
			}
			if len(resp.Rows) == 0 {
				t.Fatalf("%s cut %d: recovered daemon returned no rows", victim, cut)
			}
			d2.stop()
		}
	}
}

// TestShardedLostStreamHealed models the worst cross-stream divergence: an
// entire shard stream's unflushed records lost (the file deleted) while the
// meta stream kept the repository adds referencing those outputs. Recovery
// must drop the stranded entries instead of serving reads of missing files,
// and the daemon must keep answering.
func TestShardedLostStreamHealed(t *testing.T) {
	stateDir := t.TempDir()
	d, base := startCrashable(t, Config{System: shardedPigmixSystem(t), StateDir: stateDir})
	c := NewClient(base)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, src := range variantWorkload(t, 6) {
		if _, err := c.Submit(src, false); err != nil {
			t.Fatal(err)
		}
	}
	d.crash()

	// Delete the fattest shard stream: its creates (stored outputs among
	// them) are gone, but the meta stream still replays their entries.
	var victim string
	var victimSize int64 = -1
	for _, segs := range shardStreamFiles(t, stateDir) {
		for _, s := range segs {
			if st, err := os.Stat(s.Path); err == nil && st.Size() > victimSize {
				victim, victimSize = s.Path, st.Size()
			}
		}
	}
	if victim == "" || victimSize <= 0 {
		t.Fatal("no populated shard stream to lose")
	}
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{Shards: testShards, StateDir: stateDir, WALSyncInterval: SyncEveryRecord})
	if err != nil {
		t.Fatalf("recovery with a lost shard stream failed: %v", err)
	}
	// Every surviving entry's stored output must exist; stranded ones were
	// dropped and counted.
	fs := srv2.System().FS()
	for _, e := range srv2.System().Repository().All() {
		if !fs.Exists(e.OutputPath) {
			t.Errorf("entry %s survived recovery but its output %s is gone", e.ID, e.OutputPath)
		}
	}

	ln, base2 := startCrashable2(t, srv2)
	defer ln.stop()
	c2 := NewClient(base2)
	resp, err := c2.Submit(variantWorkload(t, 1)[0], true)
	if err != nil {
		t.Fatalf("daemon with healed divergence cannot execute: %v", err)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("daemon with healed divergence returned no rows")
	}
}

// startCrashable2 serves an already-built Server (the recovery probes build
// the Server first to inspect it, then need it live).
func startCrashable2(t *testing.T, srv *Server) (*crashableDaemon, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := &crashableDaemon{t: t, srv: srv, ln: ln, err: make(chan error, 1)}
	go func() { d.err <- srv.Serve(ln) }()
	return d, "http://" + ln.Addr().String()
}

// TestShardLayoutChangeAcrossRestart restarts a sharded state directory
// under a different shard count: recovery must replay the foreign layout
// correctly, then compact it away — the directory afterwards holds only the
// new layout's streams and the daemon's state matches the pre-restart
// state.
func TestShardLayoutChangeAcrossRestart(t *testing.T) {
	stateDir := t.TempDir()
	d, base := startCrashable(t, Config{System: shardedPigmixSystem(t), StateDir: stateDir})
	c := NewClient(base)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, src := range variantWorkload(t, 5) {
		if _, err := c.Submit(src, false); err != nil {
			t.Fatal(err)
		}
	}
	want := exportState(t, d.srv.System())
	d.crash()

	for _, newShards := range []int{2, 1} {
		srv2, err := New(Config{Shards: newShards, StateDir: stateDir, WALSyncInterval: SyncEveryRecord})
		if err != nil {
			t.Fatalf("recovery at %d shards failed: %v", newShards, err)
		}
		if got := exportState(t, srv2.System()); !bytes.Equal(want, got) {
			t.Fatalf("state after -shards=%d restart differs (%d vs %d bytes)", newShards, len(got), len(want))
		}
		// The layout compaction must have removed every foreign-layout
		// stream.
		segs, err := persist.ShardSegments(stateDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range segs {
			if s.Count != newShards {
				t.Fatalf("foreign-layout stream %s survived the -shards=%d restart", filepath.Base(s.Path), newShards)
			}
		}
		if err := srv2.persist.close(); err != nil {
			t.Fatal(err)
		}
	}
}
