package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer returns a Server (no persistence) behind an httptest server,
// plus a Client pointed at it.
func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Close(context.Background()); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, NewClient(hs.URL)
}

const pagesSchema = "user, views:int, revenue:double"

func uploadPages(t *testing.T, c *Client) {
	t.Helper()
	lines := []string{
		"alice\t3\t1.5",
		"bob\t7\t2.5",
		"alice\t2\t4.0",
		"carol\t1\t0.5",
	}
	info, err := c.Upload("data/pages", pagesSchema, 2, lines)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if info.Records != 4 || info.Partitions != 2 {
		t.Fatalf("upload stat = %+v, want 4 records in 2 partitions", info)
	}
}

const projectQuery = `A = load 'data/pages' as (user, views:int, revenue:double);
B = foreach A generate user, revenue;
store B into 'out/projected';`

func TestQueryUploadInspectCycle(t *testing.T) {
	_, c := newTestServer(t)
	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
	uploadPages(t, c)

	ds, err := c.Datasets("data/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Path != "data/pages" {
		t.Fatalf("datasets = %+v", ds)
	}

	resp, err := c.Submit(projectQuery, true)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.Deduped {
		t.Error("lone query reported deduped")
	}
	rows := resp.Rows["out/projected"]
	if len(rows) != 4 {
		t.Fatalf("rows = %v, want 4", rows)
	}
	if rows[0] != "alice\t1.5" {
		t.Errorf("first sorted row = %q", rows[0])
	}

	// An aggregation registers its intermediate projection sub-job; the
	// same aggregation with a different aggregate must then reuse it.
	sums := `A = load 'data/pages' as (user, views:int, revenue:double);
B = foreach A generate user, revenue;
C = group B by user;
D = foreach C generate group, SUM(B.revenue);
store D into 'out/sums';`
	if _, err := c.Submit(sums, false); err != nil {
		t.Fatal(err)
	}
	avgs := strings.ReplaceAll(strings.ReplaceAll(sums, "SUM", "AVG"), "out/sums", "out/avgs")
	ex, err := c.Explain(avgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Rewrites) == 0 {
		t.Error("explain found no reuse after the SUM query registered its sub-jobs")
	}
	resp2, err := c.Submit(avgs, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Result.Rewrites) == 0 {
		t.Error("AVG query applied no rewrites")
	}

	repo, err := c.Repository()
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Entries) == 0 {
		t.Fatal("repository empty after the aggregation queries")
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesSubmitted != 3 || m.QueriesExecuted != 3 {
		t.Errorf("metrics submitted=%d executed=%d, want 3/3", m.QueriesSubmitted, m.QueriesExecuted)
	}
	if m.Reuse.Queries != 3 || m.Reuse.QueriesReused != 1 {
		t.Errorf("reuse stats = %+v, want 3 queries / 1 reused", m.Reuse)
	}
	if m.Reuse.SavedTime <= 0 {
		t.Errorf("saved time = %v, want > 0", m.Reuse.SavedTime)
	}
	if m.RepositoryEntries != len(repo.Entries) {
		t.Errorf("metrics repo entries = %d, repository endpoint = %d", m.RepositoryEntries, len(repo.Entries))
	}
}

func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t)

	if _, err := c.Submit("", false); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("empty script: %v", err)
	}
	if _, err := c.Submit("not pig latin at all", false); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("parse error: %v", err)
	}
	if _, err := c.Upload("", "", 1, nil); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("upload without path/schema: %v", err)
	}
	if _, err := c.Upload("p", "a:notatype", 1, nil); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("bad schema: %v", err)
	}
	// The restore/ namespace backs repository entries; clients must not be
	// able to overwrite stored outputs.
	if _, err := c.Upload("restore/sub/s1", "a", 1, []string{"x"}); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("upload into restore/ namespace: %v", err)
	}
	// Checkpoint without a state dir is the client's mistake (400), not a
	// server fault.
	if err := c.Checkpoint(); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("checkpoint without state dir: %v", err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesFailed == 0 {
		t.Error("unparsable query not counted as failed")
	}
}
