package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	restore "repro"
	"repro/internal/obs"
)

// TestTraceCoversWallClock is the instrumentation-coverage gate: the stage
// spans of a ?trace=1 submission must account for at least 95% of the
// trace's measured wall-clock. If a future refactor adds an await to the
// query path outside every stage (a second queue, an extra channel
// handoff), the gap shows up here before it shows up as an unexplainable
// latency mystery in production.
func TestTraceCoversWallClock(t *testing.T) {
	// Emulated cluster latency makes the query representative: in the
	// paper's regime execution dominates the request, so the few fixed
	// microseconds of channel handoffs between stages stay well under the
	// 5% budget. (A 160µs micro-query would spend ~6% in handoffs alone —
	// real deployments never look like that.)
	sys := restore.New(restore.WithJobLatency(2.5e-4))
	srv, err := New(Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		if err := srv.Close(context.Background()); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	c := NewClient(hs.URL)
	uploadPages(t, c)

	resp, err := c.SubmitTraced(projectQuery, true)
	if err != nil {
		t.Fatal(err)
	}
	tr := resp.Trace
	if tr == nil {
		t.Fatal("?trace=1 response has no trace")
	}
	if tr.TotalNanos <= 0 {
		t.Fatalf("trace total = %d", tr.TotalNanos)
	}
	covered := tr.SpanNanos()
	if covered < tr.TotalNanos*95/100 {
		t.Errorf("spans cover %dns of %dns (%.1f%%), want >= 95%%:\n%s",
			covered, tr.TotalNanos, 100*float64(covered)/float64(tr.TotalNanos), tr)
	}

	// A leader's trace walks the full pipeline.
	seen := map[string]bool{}
	for _, sp := range tr.Spans {
		seen[sp.Stage] = true
		if sp.DurNanos < 0 || sp.StartNanos < 0 {
			t.Errorf("span %+v has negative offset/duration", sp)
		}
	}
	for _, want := range []string{"parse", "queue", "lease", "evict", "match", "plan", "execute", "store", "rows"} {
		if !seen[want] {
			t.Errorf("trace is missing stage %q (got %v)", want, tr.Spans)
		}
	}

	// Without ?trace=1 the response carries no trace (the wire shape of
	// /v1/query is unchanged for existing clients).
	plain, err := c.Submit(projectQuery, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced submission returned a trace")
	}
}

// TestSlowRingEndToEnd drives distinct queries through the daemon and
// checks /v1/debug/slow retains them slowest-first with their traces.
func TestSlowRingEndToEnd(t *testing.T) {
	_, c := newTestServer(t)
	uploadPages(t, c)

	queries := []string{
		projectQuery,
		`A = load 'data/pages' as (user, views:int, revenue:double);
B = filter A by views > 2;
store B into 'out/busy';`,
		`A = load 'data/pages' as (user, views:int, revenue:double);
C = group A by user;
D = foreach C generate group, COUNT(A);
store D into 'out/counts';`,
	}
	for _, q := range queries {
		if _, err := c.Submit(q, false); err != nil {
			t.Fatalf("submit %q: %v", q[:20], err)
		}
	}
	// A parse failure is retained too (its trace has the parse span), so
	// the slow view answers "what was that 400" as well.
	if _, err := c.Submit("definitely not pig latin", false); err == nil {
		t.Fatal("expected parse error")
	}

	slow, err := c.Slow()
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) != len(queries)+1 {
		t.Fatalf("slow ring holds %d entries, want %d", len(slow), len(queries)+1)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Trace.TotalNanos > slow[i-1].Trace.TotalNanos {
			t.Errorf("slow entries not sorted slowest-first at %d", i)
		}
	}
	var sawError bool
	for _, sq := range slow {
		if sq.Trace == nil {
			t.Errorf("entry %q has no trace", sq.Script)
		}
		if sq.Error != "" {
			sawError = true
		}
	}
	if !sawError {
		t.Error("failed submission missing from the slow ring")
	}
}

// TestMetricsFailureSplitAndQPS1m checks the /v1/metrics extensions: the
// failure counters split by cause and sum to the total, the sliding-window
// rate moves under traffic, and the latency summary appears — all without
// disturbing the existing identity submitted = executed + deduped + failed.
func TestMetricsFailureSplitAndQPS1m(t *testing.T) {
	_, c := newTestServer(t)
	uploadPages(t, c)
	if _, err := c.Submit(projectQuery, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("syntax error here", false); err == nil {
		t.Fatal("expected parse error")
	}
	// The sliding window excludes the current (partial) second — including
	// it would bias every read low — so cross a second boundary before
	// reading the rate.
	time.Sleep(time.Second + 100*time.Millisecond)

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.QueriesFailedParse + m.QueriesFailedShed + m.QueriesFailedExec; got != m.QueriesFailed {
		t.Errorf("failure split sums to %d, total is %d", got, m.QueriesFailed)
	}
	if m.QueriesFailedParse != 1 {
		t.Errorf("queriesFailedParse = %d, want 1", m.QueriesFailedParse)
	}
	if got := m.QueriesExecuted + m.QueriesDeduped + m.QueriesFailed; got != m.QueriesSubmitted {
		t.Errorf("executed+deduped+failed = %d, submitted = %d", got, m.QueriesSubmitted)
	}
	// Both submissions landed within the last minute; the window divides by
	// elapsed-at-least-1s, so the rate must be positive and finite.
	if m.QPS1m <= 0 {
		t.Errorf("qps1m = %v, want > 0", m.QPS1m)
	}
	if m.Latency == nil || m.Latency.Count < 1 {
		t.Errorf("latency summary = %+v, want >= 1 sample", m.Latency)
	}
	if m.Latency != nil && m.Latency.P99Millis < m.Latency.P50Millis {
		t.Errorf("p99 %v < p50 %v", m.Latency.P99Millis, m.Latency.P50Millis)
	}
}

// TestDedupedTraceShape checks a flight joiner's trace: parse + flightWait
// only (it runs no pipeline stages of its own).
func TestDedupedTraceShape(t *testing.T) {
	srv, c := newTestServer(t)
	uploadPages(t, c)
	if _, err := c.Submit(projectQuery, false); err != nil {
		t.Fatal(err)
	}
	reg := srv.obsReg
	if reg.Stages[obs.StageFlightWait].Snapshot().Count != 0 {
		t.Fatal("flightWait samples before any dedup")
	}
	// Serialized identical re-submission is NOT deduped (the flight is
	// gone); this exercises the histogram stage counts instead.
	if reg.Stages[obs.StageExecute].Snapshot().Count < 1 {
		t.Error("no execute-stage samples after a query")
	}
	if reg.Stages[obs.StageParse].Snapshot().Count < 1 {
		t.Error("no parse-stage samples after a query")
	}
	if reg.Query.Snapshot().Count < 1 {
		t.Error("no end-to-end query samples")
	}
	if reg.LeaseWait.Snapshot().Count < 1 {
		t.Error("no lease-wait samples")
	}
}

// TestSlowRingScriptTruncation checks long scripts are excerpted in the
// ring instead of retained whole.
func TestSlowRingScriptTruncation(t *testing.T) {
	_, c := newTestServer(t)
	uploadPages(t, c)
	long := projectQuery + strings.Repeat("\n-- padding comment to overflow the excerpt length", 20)
	if _, err := c.Submit(long, false); err != nil {
		t.Fatal(err)
	}
	slow, err := c.Slow()
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) == 0 {
		t.Fatal("empty slow ring")
	}
	if len(slow[0].Script) > 500 {
		t.Errorf("retained script is %d bytes; want excerpt", len(slow[0].Script))
	}
}
