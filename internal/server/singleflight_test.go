package server

import (
	"sync"
	"sync/atomic"
	"testing"

	restore "repro"
)

func TestFlightKeyNormalizesWhitespace(t *testing.T) {
	a := flightKey("A = load 'x';\nstore A into 'y';\n")
	b := flightKey("  A = load 'x';  \r\n\r\n  store A into 'y';")
	if a != b {
		t.Fatalf("keys differ:\n%q\n%q", a, b)
	}
	c := flightKey("A = load 'x';\nstore A into 'z';")
	if a == c {
		t.Fatal("different scripts share a key")
	}
}

func TestFlightGroupDeduplicatesConcurrentCalls(t *testing.T) {
	var g flightGroup
	var runs atomic.Int64
	release := make(chan struct{})
	want := &restore.Result{Registered: 42}

	const callers = 8
	var wg sync.WaitGroup
	var arrived, sharedCount atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arrived.Add(1)
			out, shared := g.do("k", false, func(*atomic.Bool) flightOutcome {
				runs.Add(1)
				<-release // hold the flight open while the others join
				return flightOutcome{res: want}
			})
			if out.err != nil {
				t.Errorf("do: %v", out.err)
			}
			if out.res != want {
				t.Errorf("got %+v, want shared result", out.res)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let every caller reach do() before releasing the leader, so joins are
	// all but guaranteed; accounting below tolerates a straggler that missed
	// the flight and ran its own.
	for arrived.Load() < callers {
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got >= callers {
		t.Errorf("fn ran %d times for %d concurrent callers; no dedup", got, callers)
	}
	if runs.Load()+sharedCount.Load() != callers {
		t.Errorf("runs(%d) + shared(%d) != callers(%d)", runs.Load(), sharedCount.Load(), callers)
	}
	if sharedCount.Load() == 0 {
		t.Error("no caller reported shared=true")
	}

	// The key is released after the flight: a later call runs again.
	before := runs.Load()
	_, shared := g.do("k", false, func(*atomic.Bool) flightOutcome { runs.Add(1); return flightOutcome{res: want} })
	if shared {
		t.Error("post-flight call should not be shared")
	}
	if got := runs.Load(); got != before+1 {
		t.Errorf("fn ran %d times after post-flight call, want %d", got, before+1)
	}
}

// TestSchedulerSerializesAndDrains pins the degraded mode: with one worker
// and a barrier window of one, the conflict-aware scheduler behaves exactly
// like the old single-worker FIFO, even for mutually disjoint tasks.
func TestSchedulerSerializesAndDrains(t *testing.T) {
	s := newScheduler(16, 1, 1)
	var active, maxActive, n int64
	var mu sync.Mutex
	for i := 0; i < 10; i++ {
		err := s.submit(restore.AccessSet{}, func() {
			mu.Lock()
			active++
			if active > maxActive {
				maxActive = active
			}
			n++
			active--
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	s.close()
	if maxActive != 1 {
		t.Errorf("max concurrent tasks = %d, want 1", maxActive)
	}
	if n != 10 {
		t.Errorf("ran %d tasks before close returned, want 10", n)
	}
	if err := s.submit(restore.AccessSet{}, func() {}); err != errShuttingDown {
		t.Errorf("submit after close = %v, want errShuttingDown", err)
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s := newScheduler(1, 1, 1)
	defer s.close()
	block := make(chan struct{})
	defer close(block)
	if err := s.submit(restore.AccessSet{}, func() { <-block }); err != nil {
		t.Fatal(err)
	}
	// The single slot is occupied by the blocked task; the next submit must
	// be rejected.
	var err error
	for i := 0; i < 3; i++ {
		if err = s.submit(restore.AccessSet{}, func() {}); err != nil {
			break
		}
	}
	if err != errQueueFull {
		t.Fatalf("expected errQueueFull, got %v", err)
	}
}
