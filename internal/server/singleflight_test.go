package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	restore "repro"
)

// TestFlightKeySemanticEquivalence pins the canonical-fingerprint key: only
// semantic identity (same plans, same outputs) decides flight sharing, not
// script text.
func TestFlightKeySemanticEquivalence(t *testing.T) {
	sys := restore.New()
	key := func(src string) string {
		t.Helper()
		p, err := sys.Prepare(src)
		if err != nil {
			t.Fatalf("prepare %q: %v", src, err)
		}
		return p.FlightKey()
	}
	a := key("A = load 'x' as (k:int, v:int);\nB = filter A by v > 3;\nstore B into 'out/y';\n")
	// Same computation: different whitespace, line endings, and aliases.
	b := key("  alpha = load 'x' as (kk:int, vv:int);  \r\n\r\n  beta = filter alpha by vv > 3;   store beta into 'out/y';")
	if a != b {
		t.Fatalf("semantically identical scripts got different keys:\n%q\n%q", a, b)
	}
	// Different store path: must not share (the results land elsewhere).
	if c := key("A = load 'x' as (k:int, v:int);\nB = filter A by v > 3;\nstore B into 'out/z';"); a == c {
		t.Fatal("queries writing different outputs share a key")
	}
	// Different predicate constant: different plan, different key.
	if d := key("A = load 'x' as (k:int, v:int);\nB = filter A by v > 4;\nstore B into 'out/y';"); a == d {
		t.Fatal("different computations share a key")
	}
	// Re-preparing the same script must reproduce the key even though each
	// preparation mints a fresh restore/tmp/qN namespace.
	if e := key("A = load 'x' as (k:int, v:int);\nB = filter A by v > 3;\nstore B into 'out/y';\n"); a != e {
		t.Fatalf("same script re-prepared got a different key:\n%q\n%q", a, e)
	}
	// A multi-job workflow (group forces a job cut with an inter-job temp)
	// must also key stably across preparations.
	multi := "A = load 'x' as (k:int, v:int);\nB = group A by k;\nC = foreach B generate group, COUNT(A);\nD = order C by $1;\nstore D into 'out/m';\n"
	if key(multi) != key(multi) {
		t.Fatal("multi-job script keys unstable across preparations")
	}
}

func TestFlightGroupDeduplicatesConcurrentCalls(t *testing.T) {
	var g flightGroup
	var runs atomic.Int64
	release := make(chan struct{})
	want := &restore.Result{Registered: 42}

	const callers = 8
	var wg sync.WaitGroup
	var arrived, sharedCount atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arrived.Add(1)
			out, shared := g.do("k", false, func(*flightHandle) flightOutcome {
				runs.Add(1)
				<-release // hold the flight open while the others join
				return flightOutcome{res: want}
			})
			if out.err != nil {
				t.Errorf("do: %v", out.err)
			}
			if out.res != want {
				t.Errorf("got %+v, want shared result", out.res)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let every caller reach do() before releasing the leader, so joins are
	// all but guaranteed; accounting below tolerates a straggler that missed
	// the flight and ran its own.
	for arrived.Load() < callers {
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got >= callers {
		t.Errorf("fn ran %d times for %d concurrent callers; no dedup", got, callers)
	}
	if runs.Load()+sharedCount.Load() != callers {
		t.Errorf("runs(%d) + shared(%d) != callers(%d)", runs.Load(), sharedCount.Load(), callers)
	}
	if sharedCount.Load() == 0 {
		t.Error("no caller reported shared=true")
	}

	// The key is released after the flight: a later call runs again.
	before := runs.Load()
	_, shared := g.do("k", false, func(*flightHandle) flightOutcome { runs.Add(1); return flightOutcome{res: want} })
	if shared {
		t.Error("post-flight call should not be shared")
	}
	if got := runs.Load(); got != before+1 {
		t.Errorf("fn ran %d times after post-flight call, want %d", got, before+1)
	}
}

// TestSemanticSingleFlightSharesExecution proves the acceptance shape: two
// scripts differing only in variable names and whitespace share one flight —
// one execution, two results. The first submission's execution is slowed by
// cluster-latency emulation; the second is sent only once the first is
// observed executing, so it deterministically joins the open flight.
func TestSemanticSingleFlightSharesExecution(t *testing.T) {
	sys := restore.New(restore.WithJobLatency(5e-3))
	lines := make([]string, 200)
	for i := range lines {
		lines[i] = fmt.Sprintf("u%d\t%d", i%20, i%50)
	}
	if err := sys.LoadTSV("in/sf", "user, n:int", lines, 2); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		if err := srv.Close(context.Background()); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	c := NewClient(hs.URL)

	scriptA := "A = load 'in/sf' as (user, n:int);\nB = filter A by n > 5;\nC = group B by user;\nD = foreach C generate group, COUNT(B);\nstore D into 'out/sf';\n"
	// Same computation, same output — different aliases, spacing, and line
	// structure.
	scriptB := "  alpha = load 'in/sf' as (u, cnt:int);  \r\n beta = filter alpha by cnt > 5;\r\n\r\n  gamma = group beta by u;   delta = foreach gamma generate group, COUNT(beta);  store delta into 'out/sf';"

	type outcome struct {
		resp *QueryResponse
		err  error
	}
	chA := make(chan outcome, 1)
	go func() {
		resp, err := c.Submit(scriptA, true)
		chA <- outcome{resp, err}
	}()
	// Wait until A's execution occupies a worker (its flight is open for the
	// whole execution), then submit the semantically identical B.
	deadline := time.Now().Add(10 * time.Second)
	for srv.sched.executing() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first query never started executing")
		}
		time.Sleep(time.Millisecond)
	}
	respB, errB := c.Submit(scriptB, true)
	outA := <-chA
	if outA.err != nil || errB != nil {
		t.Fatalf("submit errors: A=%v B=%v", outA.err, errB)
	}
	if outA.resp.Deduped {
		t.Error("flight leader reported deduped")
	}
	if !respB.Deduped {
		t.Error("semantically identical concurrent script did not share the flight")
	}
	if la, lb := outA.resp.Rows["out/sf"], respB.Rows["out/sf"]; len(la) == 0 || fmt.Sprint(la) != fmt.Sprint(lb) {
		t.Errorf("shared flight returned different rows:\nA: %v\nB: %v", la, lb)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesExecuted != 1 || m.QueriesDeduped != 1 {
		t.Errorf("executed=%d deduped=%d, want 1 execution shared by 2 submissions",
			m.QueriesExecuted, m.QueriesDeduped)
	}
}

// TestFlightSealReleasesKeyMidFlight pins the seal semantics the in-slot
// rows read depends on: sealing removes the key while the leader is still
// running, so a later identical submission starts a fresh flight instead of
// joining one whose rows decision is already final.
func TestFlightSealReleasesKeyMidFlight(t *testing.T) {
	var g flightGroup
	r1, r2 := &restore.Result{Registered: 1}, &restore.Result{Registered: 2}
	sealed := make(chan struct{})
	finish := make(chan struct{})
	type res struct {
		out    flightOutcome
		shared bool
	}
	ch1 := make(chan res, 1)
	go func() {
		out, shared := g.do("k", false, func(h *flightHandle) flightOutcome {
			if h.wantRows() {
				t.Error("leader sees wantRows without any rows-interested member")
			}
			if h.seal() {
				t.Error("seal reported rows interest on a rows-free flight")
			}
			if h.seal() {
				t.Error("second seal changed the answer (must be idempotent)")
			}
			close(sealed)
			<-finish // hold the sealed flight open
			return flightOutcome{res: r1}
		})
		ch1 <- res{out, shared}
	}()
	<-sealed

	// The first flight is sealed but still running: the same key must start
	// a fresh flight, and its creation-time rows interest must be final at
	// its own seal.
	out2, shared2 := g.do("k", true, func(h *flightHandle) flightOutcome {
		if !h.seal() {
			t.Error("fresh flight lost its creator's rows interest")
		}
		return flightOutcome{res: r2}
	})
	if shared2 {
		t.Error("post-seal submission joined a sealed flight")
	}
	if out2.res != r2 {
		t.Errorf("post-seal submission got %+v, want its own result", out2.res)
	}

	close(finish)
	got1 := <-ch1
	if got1.shared || got1.out.res != r1 {
		t.Errorf("sealed leader outcome = %+v shared=%v, want its own result", got1.out.res, got1.shared)
	}
}

// TestFlightGroupJoinerStress hammers do() with joiners arriving throughout
// leader completion — including the window between fn returning and the
// done channel closing. Every caller must get a non-zero outcome (the
// finished flight's or a fresh flight's), never a hang and never a
// zero-value result. Run under -race this also proves the outcome handoff
// is properly ordered.
func TestFlightGroupJoinerStress(t *testing.T) {
	var g flightGroup
	const (
		keys    = 3
		workers = 8
		rounds  = 200
	)
	want := make([]*restore.Result, keys)
	for k := range want {
		want[k] = &restore.Result{Registered: k}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (w + r) % keys
				key := fmt.Sprintf("k%d", k)
				out, _ := g.do(key, r%2 == 0, func(h *flightHandle) flightOutcome {
					// Half the leaders seal mid-flight (the hot path and the
					// in-slot read do), half rely on do's backstop.
					if r%2 == 0 {
						h.seal()
					}
					return flightOutcome{res: want[k]}
				})
				if out.err != nil {
					errs <- fmt.Errorf("worker %d round %d: %v", w, r, out.err)
					return
				}
				if out.res != want[k] {
					errs <- fmt.Errorf("worker %d round %d: got %+v, want key %d's result (zero-value outcome?)", w, r, out.res, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSchedulerSerializesAndDrains pins the degraded mode: with one worker
// and a barrier window of one, the conflict-aware scheduler behaves exactly
// like the old single-worker FIFO, even for mutually disjoint tasks.
func TestSchedulerSerializesAndDrains(t *testing.T) {
	s := newScheduler(16, 1, 1)
	var active, maxActive, n int64
	var mu sync.Mutex
	for i := 0; i < 10; i++ {
		err := s.submit(restore.AccessSet{}, func() {
			mu.Lock()
			active++
			if active > maxActive {
				maxActive = active
			}
			n++
			active--
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	s.close()
	if maxActive != 1 {
		t.Errorf("max concurrent tasks = %d, want 1", maxActive)
	}
	if n != 10 {
		t.Errorf("ran %d tasks before close returned, want 10", n)
	}
	if err := s.submit(restore.AccessSet{}, func() {}); err != errShuttingDown {
		t.Errorf("submit after close = %v, want errShuttingDown", err)
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s := newScheduler(1, 1, 1)
	defer s.close()
	block := make(chan struct{})
	defer close(block)
	if err := s.submit(restore.AccessSet{}, func() { <-block }); err != nil {
		t.Fatal(err)
	}
	// The single slot is occupied by the blocked task; the next submit must
	// be rejected.
	var err error
	for i := 0; i < 3; i++ {
		if err = s.submit(restore.AccessSet{}, func() {}); err != nil {
			break
		}
	}
	if err != errQueueFull {
		t.Fatalf("expected errQueueFull, got %v", err)
	}
}
