package server

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	restore "repro"
)

// Property tests for the conflict-aware scheduler. Seeds are fixed so a
// failure reproduces: re-run with the seed printed in the failure message.

// randAccess draws a small access set from a hierarchical path universe, so
// generated sets exercise exact, prefix, and disjoint overlaps.
func randAccess(rng *rand.Rand) restore.AccessSet {
	universe := []string{
		"in/a", "in/b", "in/c",
		"out/a", "out/a/x", "out/a/y", "out/b", "out/b/deep/leaf", "out/c",
		"restore/tmp/q1", "restore/tmp/q2",
	}
	var a restore.AccessSet
	for i := 0; i < 1+rng.Intn(3); i++ {
		a.Reads = append(a.Reads, universe[rng.Intn(len(universe))])
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		a.Writes = append(a.Writes, universe[rng.Intn(len(universe))])
	}
	if rng.Intn(40) == 0 {
		a = restore.UniversalAccess() // occasional checkpoint-like task
	}
	return a
}

// TestPropertySchedulerNeverRunsConflictsConcurrently generates random
// workloads and asserts the two safety/liveness properties the scheduler
// promises: no two conflicting tasks are ever in flight together, and
// every task eventually runs (disjoint ones are not starved, blocked ones
// are not dropped).
func TestPropertySchedulerNeverRunsConflictsConcurrently(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const tasks = 80
			s := newScheduler(tasks+1, 4, 8)

			var mu sync.Mutex
			active := make(map[int]restore.AccessSet)
			ran := 0
			for i := 0; i < tasks; i++ {
				i := i
				access := randAccess(rng)
				err := s.submit(access, func() {
					mu.Lock()
					for j, other := range active {
						if access.ConflictsWith(other) {
							t.Errorf("seed %d: task %d (%+v) ran concurrently with conflicting task %d (%+v)",
								seed, i, access, j, other)
						}
					}
					active[i] = access
					mu.Unlock()

					runtime.Gosched() // widen the overlap window

					mu.Lock()
					delete(active, i)
					ran++
					mu.Unlock()
				})
				if err != nil {
					t.Fatalf("seed %d: submit %d: %v", seed, i, err)
				}
			}
			s.close()
			if ran != tasks {
				t.Fatalf("seed %d: ran %d of %d tasks — scheduler lost or starved work", seed, ran, tasks)
			}
		})
	}
}

// TestPropertyConcurrentEqualsSerial is the end-to-end equivalence
// property: a random write-disjoint workload executed concurrently through
// the full System (leases, pinned reuse, concurrent eviction and
// registration) must leave every user output with exactly the data a
// serial execution produces, even though the two runs reuse different
// repository entries at different times. Comparison is order-insensitive
// (sorted TSV).
func TestPropertyConcurrentEqualsSerial(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			queries := genQueries(rand.New(rand.NewSource(seed)), 16)

			serial := newPropertySystem(t, seed)
			serialRows := make(map[string][]string)
			for _, q := range queries {
				res, err := serial.Execute(q.src)
				if err != nil {
					t.Fatalf("seed %d: serial %s: %v", seed, q.out, err)
				}
				rows, err := serial.ReadOutputTSV(res, q.out)
				if err != nil {
					t.Fatalf("seed %d: serial read %s: %v", seed, q.out, err)
				}
				serialRows[q.out] = rows
			}

			conc := newPropertySystem(t, seed)
			var wg sync.WaitGroup
			concRows := make([][]string, len(queries))
			errs := make([]error, len(queries))
			for i, q := range queries {
				i, q := i, q
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := conc.Execute(q.src)
					if err != nil {
						errs[i] = err
						return
					}
					concRows[i], errs[i] = conc.ReadOutputTSV(res, q.out)
				}()
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("seed %d: concurrent %s: %v", seed, queries[i].out, err)
				}
			}
			for i, q := range queries {
				want := serialRows[q.out]
				got := concRows[i]
				if len(got) != len(want) {
					t.Fatalf("seed %d: %s: %d rows concurrent vs %d serial", seed, q.out, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("seed %d: %s row %d: %q concurrent vs %q serial", seed, q.out, j, got[j], want[j])
					}
				}
			}
			if conc.Stats().Queries != int64(len(queries)) {
				t.Errorf("seed %d: concurrent system recorded %d queries, want %d",
					seed, conc.Stats().Queries, len(queries))
			}
		})
	}
}

type propQuery struct {
	src string
	out string
}

// genQueries builds a random write-disjoint workload over the shared
// property datasets: filters and group-counts with overlapping reads and
// shared sub-computations (so rewrites actually fire), each storing to its
// own output path.
func genQueries(rng *rand.Rand, n int) []propQuery {
	qs := make([]propQuery, 0, n)
	for i := 0; i < n; i++ {
		ds := rng.Intn(3)
		cut := rng.Intn(4) * 10 // few distinct constants => repeated sub-plans
		out := fmt.Sprintf("out/q%02d", i)
		var src string
		switch rng.Intn(3) {
		case 0:
			src = fmt.Sprintf(`A = load 'in/d%d' as (k:int, v:int);
B = filter A by v > %d;
store B into '%s';`, ds, cut, out)
		case 1:
			src = fmt.Sprintf(`A = load 'in/d%d' as (k:int, v:int);
B = filter A by v > %d;
C = group B by k;
D = foreach C generate group, COUNT(B);
store D into '%s';`, ds, cut, out)
		default:
			src = fmt.Sprintf(`A = load 'in/d%d' as (k:int, v:int);
B = foreach A generate k, v;
C = group B by k;
D = foreach C generate group, SUM(B.v);
store D into '%s';`, ds, out)
		}
		qs = append(qs, propQuery{src: src, out: out})
	}
	return qs
}

// newPropertySystem builds a System preloaded with the three deterministic
// datasets the generated queries read.
func newPropertySystem(t *testing.T, seed int64) *restore.System {
	t.Helper()
	sys := restore.New()
	rng := rand.New(rand.NewSource(seed * 7919))
	for d := 0; d < 3; d++ {
		lines := make([]string, 300)
		for i := range lines {
			lines[i] = fmt.Sprintf("%d\t%d", rng.Intn(20), rng.Intn(40))
		}
		if err := sys.LoadTSV(fmt.Sprintf("in/d%d", d), "k:int, v:int", lines, 2); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}
