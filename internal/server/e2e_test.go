package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	restore "repro"
	"repro/internal/pigmix"
)

// tinyPigmix is a fast-but-real PigMix instance for the end-to-end test.
var tinyPigmix = pigmix.GenConfig{
	PageViewsRows: 400,
	Users:         60,
	PowerUsers:    10,
	WideRows:      80,
	Partitions:    2,
	Seed:          1,
}

// startDaemon boots a Server on a loopback listener and returns its base
// URL plus a stop function that performs the full shutdown (final
// checkpoint included).
func startDaemon(t *testing.T, cfg Config) (string, func()) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("daemon close: %v", err)
		}
		if err := <-serveErr; err != nil && err != http.ErrServerClosed {
			t.Errorf("serve: %v", err)
		}
	}
	return "http://" + ln.Addr().String(), stop
}

// TestEndToEndMixedConflictTrafficWithMidRunCheckpoint extends the daemon
// acceptance coverage to the concurrent scheduler: clients drive a mix of
// write-disjoint and write-conflicting (same store path, different
// predicates) workflows at a worker pool, a checkpoint fires mid-run, the
// daemon restarts from the state directory, and the reuse hit-rate must
// survive: repeated queries are still rewritten against the persisted
// repository.
func TestEndToEndMixedConflictTrafficWithMidRunCheckpoint(t *testing.T) {
	stateDir := t.TempDir()
	sys := restore.New()
	if err := pigmix.Generate(sys.FS(), tinyPigmix); err != nil {
		t.Fatal(err)
	}
	base, stop := startDaemon(t, Config{
		System:        sys,
		StateDir:      stateDir,
		Workers:       4,
		BarrierWindow: 8,
	})

	const clients = 6
	const rounds = 3
	// Precomputed on the test goroutine (pigmix.Query can error; t.Fatal is
	// not legal from workers).
	queries := make([][]string, clients)
	for cl := 0; cl < clients; cl++ {
		queries[cl] = make([]string, rounds)
		for r := 0; r < rounds; r++ {
			var src string
			var err error
			if cl%2 == 0 {
				// Disjoint lane: per-client output namespace.
				src, err = pigmix.Query("L2", fmt.Sprintf("out/mixed/cl%d/r%d", cl, r))
			} else {
				// Conflicting lane: every odd client stores to the same path
				// with a different variant, forcing write-write
				// serialization.
				name := pigmix.VariantNames()[r%len(pigmix.VariantNames())]
				src, err = pigmix.Query(name, "out/mixed/contended")
			}
			if err != nil {
				t.Fatal(err)
			}
			queries[cl][r] = src
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(base)
			for r := 0; r < rounds; r++ {
				if _, err := c.Submit(queries[cl][r], false); err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", cl, r, err)
					return
				}
			}
		}()
	}
	// A checkpoint lands in the middle of the mixed traffic (the drain
	// barrier makes it a consistent pair regardless of what is in flight).
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := NewClient(base).Checkpoint(); err != nil {
			errs <- fmt.Errorf("mid-run checkpoint: %w", err)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c := NewClient(base)
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesFailed != 0 {
		t.Errorf("%d queries failed in the mixed workload", m.QueriesFailed)
	}
	if m.Reuse.QueriesReused == 0 {
		t.Error("no repository reuse across the mixed workload")
	}
	stop()

	// Restart from disk with an empty System: the learned repository must
	// come back and keep producing hits.
	base2, stop2 := startDaemon(t, Config{StateDir: stateDir, Workers: 4})
	defer stop2()
	c2 := NewClient(base2)
	for r := 0; r < rounds; r++ {
		resp, err := c2.Submit(queries[0][r], false)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Result.Rewrites) == 0 {
			t.Errorf("restarted daemon applied no rewrites to repeated round %d", r)
		}
		if len(resp.Result.Evicted) != 0 {
			t.Errorf("restart evicted %v", resp.Result.Evicted)
		}
	}
	m2, err := c2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Reuse.HitRate < 1 {
		t.Errorf("post-restart hit rate = %.2f, want 1.00 (every repeat rewritten)", m2.Reuse.HitRate)
	}
}

// TestEndToEndConcurrentClientsWithRestart is the acceptance test for the
// restored daemon: 8 concurrent clients drive overlapping PigMix variant
// queries against a loopback daemon, identical in-flight queries
// deduplicate, cross-query repository reuse occurs, and the repository
// survives a daemon stop/start through the durable-state directory.
func TestEndToEndConcurrentClientsWithRestart(t *testing.T) {
	stateDir := t.TempDir()

	sys := restore.New()
	if err := pigmix.Generate(sys.FS(), tinyPigmix); err != nil {
		t.Fatal(err)
	}
	base, stop := startDaemon(t, Config{
		System:       sys,
		StateDir:     stateDir,
		SaveInterval: 5 * time.Millisecond, // exercise the periodic path too
	})

	// A background inspector hammers the read-only endpoints while queries
	// execute: repository serialization must never observe torn entries.
	inspectStop := make(chan struct{})
	inspectDone := make(chan struct{})
	go func() {
		defer close(inspectDone)
		c := NewClient(base)
		for {
			select {
			case <-inspectStop:
				return
			default:
			}
			if _, err := c.Repository(); err != nil {
				t.Errorf("repository poll: %v", err)
				return
			}
			if _, err := c.Metrics(); err != nil {
				t.Errorf("metrics poll: %v", err)
				return
			}
		}
	}()

	const clients = 8
	names := pigmix.VariantNames()
	for _, name := range names {
		src, err := pigmix.Query(name, "out/"+name)
		if err != nil {
			t.Fatal(err)
		}
		// All clients fire the identical script at once, so every round
		// gives the single-flight layer a pile of in-flight duplicates.
		start := make(chan struct{})
		errs := make(chan error, clients)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := NewClient(base)
				<-start
				// Every member asks for rows, so deduped joiners exercise
				// the flight-carried rows path.
				resp, err := c.Submit(src, true)
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Rows) == 0 {
					errs <- fmt.Errorf("%s: no rows returned (deduped=%v)", name, resp.Deduped)
				}
			}()
		}
		close(start)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	close(inspectStop)
	<-inspectDone

	c := NewClient(base)
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	submitted := int64(clients * len(names))
	if m.QueriesSubmitted != submitted {
		t.Errorf("submitted = %d, want %d", m.QueriesSubmitted, submitted)
	}
	if m.QueriesExecuted >= m.QueriesSubmitted {
		t.Errorf("no single-flight dedup: executed %d of %d submissions", m.QueriesExecuted, m.QueriesSubmitted)
	}
	if m.QueriesDeduped == 0 || m.QueriesDeduped != m.QueriesSubmitted-m.QueriesExecuted {
		t.Errorf("dedup accounting: submitted=%d executed=%d deduped=%d",
			m.QueriesSubmitted, m.QueriesExecuted, m.QueriesDeduped)
	}
	if m.QueriesFailed != 0 {
		t.Errorf("%d queries failed", m.QueriesFailed)
	}
	// Cross-query repository reuse: the variant stream shares whole jobs and
	// sub-jobs (that is the paper's §7.1 workload), so later variants must
	// have been rewritten against entries registered by earlier ones.
	if m.Reuse.QueriesReused == 0 {
		t.Error("no cross-query repository reuse over the variant stream")
	}
	// The periodic checkpointer runs on its own clock; give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for m.Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		if m, err = c.Metrics(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Checkpoints == 0 {
		t.Error("periodic checkpointing never ran")
	}

	repoBefore, err := c.Repository()
	if err != nil {
		t.Fatal(err)
	}
	if len(repoBefore.Entries) == 0 {
		t.Fatal("repository empty after the variant stream")
	}

	// Stop the daemon (writes the final checkpoint), then start a brand-new
	// one over the same state directory with an empty System: everything it
	// knows must come from disk.
	stop()

	base2, stop2 := startDaemon(t, Config{StateDir: stateDir})
	defer stop2()
	c2 := NewClient(base2)

	repoAfter, err := c2.Repository()
	if err != nil {
		t.Fatal(err)
	}
	if len(repoAfter.Entries) != len(repoBefore.Entries) {
		t.Fatalf("repository size changed across restart: %d -> %d",
			len(repoBefore.Entries), len(repoAfter.Entries))
	}
	for i := range repoAfter.Entries {
		a, b := repoBefore.Entries[i], repoAfter.Entries[i]
		if a.ID != b.ID || a.OutputPath != b.OutputPath || a.UseCount != b.UseCount {
			t.Errorf("entry %d differs across restart: %+v vs %+v", i, a, b)
		}
	}

	// The restored repository must actually answer queries: a repeat of a
	// variant query has to be rewritten against persisted entries, and the
	// rewrite must not be evicted first (the DFS snapshot preserved the
	// input versions Rule 4 checks).
	src, err := pigmix.Query("L3", "out/L3-after-restart")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c2.Submit(src, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rewrites) == 0 {
		t.Error("restarted daemon applied no rewrites to a repeated variant query")
	}
	if len(resp.Result.Evicted) != 0 {
		t.Errorf("restart invalidated entries: evicted %v", resp.Result.Evicted)
	}
}
