package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	restore "repro"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/obs"
	"repro/internal/persist"
)

// Durable state layout inside the daemon's state directory:
//
//	repository.json, dfs.json   snapshot pair, rewritten only by compaction
//	wal-NNNNNN.log              append-only mutation log segments
//
// Routine durability is the write-ahead log: every committed DFS and
// repository mutation is journaled (see dfs.Journal / core.Journal) into
// the current segment while queries execute, and fsynced on the -wal-sync
// cadence — no drain barrier, no rewrite of unchanged data. Only
// compaction (periodic, -compact-every; manual, POST /v1/checkpoint; and
// shutdown) quiesces the system: under System.Quiesce it sweeps orphaned
// restore/ files, rotates the log onto a fresh segment, writes the
// snapshot pair (tmp + rename per file), and finally deletes the
// pre-rotation segments.
//
// Crash safety does not rely on a manifest. Mutation records carry
// absolute resulting state, so recovery — load whatever snapshot pair is
// on disk, then replay every segment in ascending order — converges to
// the state at the end of the log no matter where a compaction crashed:
//
//   - before the snapshot renames: old pair + all segments replay to the
//     rotation point;
//   - between the two renames: the newer dfs.json already contains some
//     replayed records; re-applying them is idempotent (creates overwrite,
//     deletes of missing files are no-ops, repository adds deduplicate on
//     the plan's canonical form, use-counters are absolute);
//   - after the renames but before segment deletion: same argument, both
//     files newer;
//   - mid-append anywhere: the torn final record fails its length+CRC
//     frame and is truncated off the tail.
//
// Segments are deleted only after both renames succeed, so every record
// the on-disk pair lacks is always still on disk. A crash between a WAL
// fsync and the next loses at most that window's acknowledged-in-memory
// mutations; the HTTP layer acknowledges queries only after execution, so
// clients see at-most-a-window staleness, never corruption. A workflow in
// flight at the crash may leave a prefix of its mutations in the log
// (exactly as a crashed Hadoop job leaves partial task output); recovery's
// orphan sweep reclaims its unregistered restore/ files, and re-submitting
// the query overwrites its partial user outputs.
const (
	repoStateFile = "repository.json"
	dfsStateFile  = "dfs.json"
)

// persister owns a System's durable state: the write-ahead log on the
// routine path and snapshot+truncate compaction on the rare one.
type persister struct {
	dir      string
	sys      *restore.System
	syncEach bool // fsync every record instead of batching

	// obs times WAL appends and fsyncs. The server installs it after
	// construction on purpose: recovery replay and the startup orphan sweep
	// are not live append traffic and must not skew the histograms. nil is
	// a no-op sink.
	obs *obs.Registry

	// walMu guards the current-segment pointer: appenders and flushers
	// hold it shared, compaction's rotation holds it exclusive.
	walMu sync.RWMutex
	wal   *persist.Writer
	seg   uint64

	// compactMu serializes compactions (periodic, manual, shutdown): two
	// interleaved rotations would orphan a segment's records.
	compactMu sync.Mutex

	// dirty reports mutations since the last compaction; a clean system
	// skips the snapshot entirely.
	dirty atomic.Bool

	walRecords   atomic.Int64
	walBytes     atomic.Int64
	appendErrs   atomic.Int64
	compactions  atomic.Int64
	compactBytes atomic.Int64
	swept        atomic.Int64

	recoveredRecords int
	recoveredTorn    bool
}

// newPersister opens (or initializes) the state directory, recovers the
// System from snapshot + log, sweeps orphans, and attaches the mutation
// journals so every later change is WAL-logged.
func newPersister(dir string, sys *restore.System, syncEach bool) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	p := &persister{dir: dir, sys: sys, syncEach: syncEach}
	if err := p.recover(); err != nil {
		return nil, err
	}
	// Journals attach only after recovery: replayed records must not be
	// re-journaled, and the sweep below should be. From here on every
	// committed mutation lands in the current segment.
	sys.FS().SetJournal(fsJournal{p})
	sys.Repository().SetJournal(repoJournal{p})
	p.swept.Add(int64(p.sweepOrphans()))
	return p, nil
}

// recover loads the snapshot pair (if any), replays every WAL segment in
// order, installs the result, and opens the newest segment for appending.
func (p *persister) recover() error {
	fs := p.sys.FS()
	if f, err := os.Open(filepath.Join(p.dir, dfsStateFile)); err == nil {
		ierr := fs.Import(f)
		f.Close()
		if ierr != nil {
			return fmt.Errorf("server: load %s: %w", dfsStateFile, ierr)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	// The repository replays out-of-place and is only adopted once the log
	// has been applied; a pre-populated Config.System repository is kept
	// when no snapshot exists (fresh state dir over a warm system).
	repo := p.sys.Repository()
	if f, err := os.Open(filepath.Join(p.dir, repoStateFile)); err == nil {
		loaded, lerr := core.LoadRepository(f)
		f.Close()
		if lerr != nil {
			return fmt.Errorf("server: load %s: %w", repoStateFile, lerr)
		}
		repo = loaded
	} else if !os.IsNotExist(err) {
		return err
	}

	segs, err := persist.Segments(p.dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		// Only the segment being appended at the crash can tear, so only
		// the final one gets its tail repaired (truncated); a tear anywhere
		// earlier is real corruption — fail without modifying the file, so
		// the evidence (and the fatal error) survives restarts instead of
		// the next boot silently applying the later segments over a hole.
		final := i == len(segs)-1
		n, torn, rerr := persist.ReplayFile(seg.Path, func(rec persist.Record) error {
			switch {
			case rec.DFS != nil:
				return fs.Apply(*rec.DFS)
			case rec.Repo != nil:
				return repo.Apply(*rec.Repo)
			}
			return nil // empty record: tolerated for forward compatibility
		}, final)
		if rerr != nil {
			return fmt.Errorf("server: replay %s: %w", seg.Path, rerr)
		}
		p.recoveredRecords += n
		if torn {
			if !final {
				return fmt.Errorf("server: replay %s: torn record in a non-final segment", seg.Path)
			}
			p.recoveredTorn = true
		}
	}

	// Install the replayed repository and advance seq/namespace counters
	// past everything the log mentioned.
	p.sys.AdoptRepository(repo)

	// Append to the newest (tail-truncated) segment, or start the first.
	p.seg = 1
	if len(segs) > 0 {
		p.seg = segs[len(segs)-1].N
	}
	w, err := persist.OpenWriter(persist.SegmentPath(p.dir, p.seg), p.syncEach)
	if err != nil {
		return err
	}
	p.wal = w
	// Force one compaction after restart: whatever the log holds (or a
	// missing snapshot) is folded into a fresh pair on the first interval.
	p.dirty.Store(true)
	return nil
}

// fsJournal and repoJournal forward committed mutations into the WAL. They
// are called synchronously under the FS/repository write lock, so record
// order in the log is exactly commit order across both structures.
type fsJournal struct{ p *persister }

func (j fsJournal) Record(m dfs.Mutation) { j.p.append(persist.Record{DFS: &m}) }

type repoJournal struct{ p *persister }

func (j repoJournal) Record(m core.Mutation) { j.p.append(persist.Record{Repo: &m}) }

// append logs one record to the current segment. Journal hooks cannot
// return errors; a failed append (disk full, closed writer during a
// shutdown race) is counted and resurfaces as the writer's sticky error on
// the next flush or compaction.
func (p *persister) append(rec persist.Record) {
	t := time.Now()
	p.walMu.RLock()
	n, err := p.wal.Append(rec)
	p.walMu.RUnlock()
	p.obs.ObserveWALAppend(time.Since(t))
	if err != nil {
		p.appendErrs.Add(1)
		// The mutation now exists only in memory: the system is dirtier
		// than ever, and the next compaction's snapshot is the only thing
		// that can make it durable — it must not be skipped as a no-op.
		p.dirty.Store(true)
		return
	}
	p.walRecords.Add(1)
	p.walBytes.Add(int64(n))
	p.dirty.Store(true)
}

// flush makes every record appended so far durable. This is the routine
// checkpoint: no lease, no drain, cost proportional to the mutations since
// the last flush.
func (p *persister) flush() error {
	t := time.Now()
	p.walMu.RLock()
	defer p.walMu.RUnlock()
	err := p.wal.Flush()
	p.obs.ObserveWALFsync(time.Since(t))
	return err
}

// compact is the rare, heavyweight checkpoint: under the system's
// universal lease it sweeps orphaned restore/ files, rotates the WAL onto
// a fresh segment, writes the snapshot pair, and deletes the pre-rotation
// segments. It reports whether a compaction actually ran — a clean system
// (no mutations since the last one) skips entirely.
func (p *persister) compact() (bool, error) {
	p.compactMu.Lock()
	defer p.compactMu.Unlock()
	if !p.dirty.Load() {
		return false, nil
	}
	err := p.sys.Quiesce(func() error {
		// Sweep first so the snapshot is garbage-free; the deletions are
		// journaled into the outgoing segment, which the snapshot covers.
		p.swept.Add(int64(p.sweepOrphans()))

		p.walMu.Lock()
		old := p.wal
		next, err := persist.OpenWriter(persist.SegmentPath(p.dir, p.seg+1), p.syncEach)
		if err != nil {
			p.walMu.Unlock()
			return err
		}
		p.wal = next
		p.seg++
		p.walMu.Unlock()
		// A Close failure means the outgoing segment is missing records (a
		// sticky write error dropped them on disk, though they are all in
		// the quiesced in-memory state). The snapshot below supersedes the
		// damaged segment entirely, so press on — aborting here would keep
		// the hole on disk; the error is surfaced after the state is safe.
		closeErr := old.Close()

		written, err := p.writeSnapshot()
		if err != nil {
			return err
		}
		// Only now are the pre-rotation segments redundant: the renamed
		// pair covers every record they held.
		if _, err := persist.RemoveSegmentsBelow(p.dir, p.seg); err != nil {
			return err
		}
		p.sys.FS().TakeDirty()
		p.dirty.Store(false)
		p.compactions.Add(1)
		p.compactBytes.Add(written)
		if closeErr != nil {
			return fmt.Errorf("server: compact: close wal (state healed by snapshot): %w", closeErr)
		}
		return nil
	})
	return true, err
}

// writeSnapshot writes the repository+DFS pair via tmp files and renames
// (dfs first, repository second — recovery tolerates the torn middle, see
// the package comment). Returns the bytes written. Caller must hold the
// universal lease.
func (p *persister) writeSnapshot() (int64, error) {
	repoTmp, err := os.CreateTemp(p.dir, repoStateFile+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(repoTmp.Name())
	dfsTmp, err := os.CreateTemp(p.dir, dfsStateFile+".tmp*")
	if err != nil {
		repoTmp.Close()
		return 0, err
	}
	defer os.Remove(dfsTmp.Name())

	err = p.sys.Repository().Save(repoTmp)
	if err == nil {
		err = p.sys.FS().Export(dfsTmp)
	}
	var written int64
	for _, f := range []*os.File{repoTmp, dfsTmp} {
		if st, serr := f.Stat(); serr == nil {
			written += st.Size()
		}
		if serr := f.Sync(); err == nil {
			err = serr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return 0, fmt.Errorf("server: checkpoint: %w", err)
	}
	if err := os.Rename(dfsTmp.Name(), filepath.Join(p.dir, dfsStateFile)); err != nil {
		return 0, err
	}
	if err := os.Rename(repoTmp.Name(), filepath.Join(p.dir, repoStateFile)); err != nil {
		return 0, err
	}
	// The renames must be durable before the caller may delete the
	// segments they supersede — directory metadata does not order itself.
	return written, persist.SyncDir(p.dir)
}

// sweepOrphans deletes restore/ files no repository entry references:
// temps and sub-job outputs of failed or registration-disabled workflows,
// and (at recovery) files stranded by a crash mid-workflow. Runs at
// startup and during every compaction (under the universal lease, so no
// in-flight execution can be using an unreferenced file). Returns the
// number of files deleted.
func (p *persister) sweepOrphans() int {
	refs := make(map[string]bool)
	for _, e := range p.sys.Repository().All() {
		refs[e.OutputPath] = true
		for path := range e.InputVersions {
			refs[path] = true
		}
	}
	fs := p.sys.FS()
	swept := 0
	for _, path := range fs.List("restore/") {
		if !refs[path] {
			if fs.Delete(path) == nil {
				swept++
			}
		}
	}
	return swept
}

// close flushes and closes the current segment. Appends from workers still
// draining in the background after a timed-out shutdown hit the writer's
// sticky error and are dropped — exactly the never-acknowledged work a
// supervisor kill would have lost anyway.
func (p *persister) close() error {
	p.walMu.Lock()
	defer p.walMu.Unlock()
	return p.wal.Close()
}

// WALStats describes the persistence subsystem in GET /v1/metrics.
type WALStats struct {
	// Segment is the current WAL segment number; Records/Bytes count
	// appends since daemon start (across rotations).
	Segment uint64 `json:"segment"`
	Records int64  `json:"records"`
	Bytes   int64  `json:"bytes"`
	// AppendErrors counts records dropped by a failed append (sticky
	// writer errors surface on the next flush/compaction too).
	AppendErrors int64 `json:"appendErrors"`
	// Compactions/CompactBytes count snapshot+truncate cycles and the
	// snapshot bytes they wrote; TempFilesSwept the orphaned restore/
	// files reclaimed by the recovery and compaction sweeps.
	Compactions    int64 `json:"compactions"`
	CompactBytes   int64 `json:"compactBytes"`
	TempFilesSwept int64 `json:"tempFilesSwept"`
	// DirtyFiles is how many DFS files changed since the last compaction
	// (what the next snapshot must newly capture).
	DirtyFiles int `json:"dirtyFiles"`
	// RecoveredRecords/RecoveredTorn describe the startup replay: how many
	// log records were applied over the snapshot, and whether a torn final
	// record was truncated.
	RecoveredRecords int  `json:"recoveredRecords"`
	RecoveredTorn    bool `json:"recoveredTorn"`
}

func (p *persister) stats() *WALStats {
	p.walMu.RLock()
	seg := p.seg
	p.walMu.RUnlock()
	return &WALStats{
		Segment:          seg,
		Records:          p.walRecords.Load(),
		Bytes:            p.walBytes.Load(),
		AppendErrors:     p.appendErrs.Load(),
		Compactions:      p.compactions.Load(),
		CompactBytes:     p.compactBytes.Load(),
		TempFilesSwept:   p.swept.Load(),
		DirtyFiles:       p.sys.FS().DirtyCount(),
		RecoveredRecords: p.recoveredRecords,
		RecoveredTorn:    p.recoveredTorn,
	}
}
