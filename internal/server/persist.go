package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	restore "repro"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/obs"
	"repro/internal/persist"
)

// Durable state layout inside the daemon's state directory:
//
//	repository.json, dfs.json   snapshot pair, rewritten only by compaction
//	wal-NNNNNN.log              meta stream: repository mutations (and, for an
//	                            unsharded core, DFS mutations too)
//	wal-sC-SSS-NNNNNN.log       shard stream S of a C-shard core: the DFS
//	                            mutations of paths routed to shard S
//
// Routine durability is the write-ahead log: every committed DFS and
// repository mutation is journaled (see dfs.Journal / core.Journal) into
// the current segment of its stream while queries execute, and fsynced on
// the -wal-sync cadence — no drain barrier, no rewrite of unchanged data.
// A sharded core (-shards > 1) runs one WAL stream per shard so appends
// from disjoint shards never contend on one writer; repository mutations
// ride a single meta stream (the legacy wal-NNNNNN.log names, so an
// unsharded directory is just the degenerate one-stream layout). All
// streams share one epoch counter and rotate together: only compaction
// (periodic, -compact-every; manual, POST /v1/checkpoint; and shutdown)
// quiesces the system, sweeps orphaned restore/ files, rotates every
// stream onto a fresh epoch, writes the snapshot pair (tmp + rename per
// file), and finally deletes the pre-rotation segments of every stream.
//
// Replay order is epoch-ascending, meta stream first within an epoch, then
// the shard streams: two shard streams never carry records for the same
// path (the shard key routes each path to exactly one stream), so their
// relative order within an epoch is immaterial — replay of interleaved
// shard segments is order-independent. Stream counts are encoded in the
// filenames, so a directory written under a different -shards setting is
// self-describing: recovery replays it (each old layout is internally
// consistent), then bumps to a fresh epoch and synchronously compacts so
// new appends never share an epoch with records routed under the old
// layout.
//
// Crash safety does not rely on a manifest. Mutation records carry
// absolute resulting state, so recovery — load whatever snapshot pair is
// on disk, then replay every segment in order — converges to the state at
// the end of the log no matter where a compaction crashed:
//
//   - before the snapshot renames: old pair + all segments replay to the
//     rotation point;
//   - between the two renames: the newer dfs.json already contains some
//     replayed records; re-applying them is idempotent (creates overwrite,
//     deletes of missing files are no-ops, repository adds deduplicate on
//     the plan's canonical form, use-counters are absolute);
//   - after the renames but before segment deletion: same argument, both
//     files newer;
//   - mid-append anywhere: the torn final record fails its length+CRC
//     frame and is truncated off the tail. Only the final segment of each
//     stream can tear (appends only ever go to the newest epoch); a tear
//     anywhere earlier is real corruption and fails recovery.
//
// Segments are deleted only after both renames succeed, so every record
// the on-disk pair lacks is always still on disk. A crash between a WAL
// fsync and the next loses at most that window's acknowledged-in-memory
// mutations; because the streams fsync independently, such a crash can
// also strand a repository entry (meta stream) whose stored output's DFS
// create (shard stream) was lost — recovery heals the divergence by
// dropping every replayed entry whose output file is absent, and the
// orphan sweep reclaims the converse (a file whose entry was lost). The
// HTTP layer acknowledges queries only after execution, so clients see
// at-most-a-window staleness, never corruption. A workflow in flight at
// the crash may leave a prefix of its mutations in the log (exactly as a
// crashed Hadoop job leaves partial task output); recovery's orphan sweep
// reclaims its unregistered restore/ files, and re-submitting the query
// overwrites its partial user outputs.
const (
	repoStateFile = "repository.json"
	dfsStateFile  = "dfs.json"
)

// persister owns a System's durable state: the write-ahead log on the
// routine path and snapshot+truncate compaction on the rare one.
type persister struct {
	dir      string
	sys      *restore.System
	syncEach bool // fsync every record instead of batching

	// nshards is the execution core's shard count; >1 selects the
	// multi-stream WAL layout (one shard stream per DFS shard plus the
	// meta stream), 1 the legacy single-log layout.
	nshards int

	// obs times WAL appends and fsyncs. The server installs it after
	// construction on purpose: recovery replay and the startup orphan sweep
	// are not live append traffic and must not skew the histograms. nil is
	// a no-op sink.
	obs *obs.Registry

	// walMu guards the current-epoch writer pointers: appenders and
	// flushers hold it shared, compaction's rotation holds it exclusive.
	// wal is the meta stream; shardWals (empty for an unsharded core) is
	// indexed by DFS shard. seg is the unified rotation epoch shared by
	// every stream.
	walMu     sync.RWMutex
	wal       *persist.Writer
	shardWals []*persist.Writer
	seg       uint64

	// compactMu serializes compactions (periodic, manual, shutdown): two
	// interleaved rotations would orphan a segment's records.
	compactMu sync.Mutex

	// dirty reports mutations since the last compaction; a clean system
	// skips the snapshot entirely.
	dirty atomic.Bool

	// layoutChanged records that recovery found on-disk shard streams of a
	// different count than the configured core: newPersister forces one
	// synchronous compaction so the old layout's segments are folded into
	// a snapshot and deleted before live traffic resumes.
	layoutChanged bool

	walRecords   atomic.Int64
	walBytes     atomic.Int64
	appendErrs   atomic.Int64
	compactions  atomic.Int64
	compactBytes atomic.Int64
	swept        atomic.Int64

	recoveredRecords int
	recoveredTorn    bool
	recoveredDropped int
}

// newPersister opens (or initializes) the state directory, recovers the
// System from snapshot + log, sweeps orphans, and attaches the mutation
// journals so every later change is WAL-logged.
func newPersister(dir string, sys *restore.System, syncEach bool) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	p := &persister{dir: dir, sys: sys, syncEach: syncEach, nshards: sys.FS().NumShards()}
	if err := p.recover(); err != nil {
		return nil, err
	}
	// Journals attach only after recovery: replayed records must not be
	// re-journaled, and the sweep below should be. From here on every
	// committed mutation lands in the current segment of its stream — for
	// a sharded core, each DFS shard journals into its own stream.
	if p.nshards > 1 {
		js := make([]dfs.Journal, p.nshards)
		for i := range js {
			js[i] = shardFSJournal{p, i}
		}
		sys.FS().SetShardJournals(js)
	} else {
		sys.FS().SetJournal(fsJournal{p})
	}
	sys.Repository().SetJournal(repoJournal{p})
	p.swept.Add(int64(p.sweepOrphans()))
	if p.layoutChanged {
		// The directory holds streams written under a different shard
		// count. Replay was already correct (each layout is internally
		// consistent and epochs do not mix layouts); compacting now folds
		// it all into a snapshot and deletes the foreign-layout segments.
		if _, err := p.compact(); err != nil {
			p.close()
			return nil, fmt.Errorf("server: recompact after shard-layout change: %w", err)
		}
	}
	return p, nil
}

// replaySegment is one on-disk segment of any stream, flattened for the
// merged epoch-ordered replay.
type replaySegment struct {
	epoch uint64
	meta  bool // meta stream (sorts before shard streams within an epoch)
	count int  // shard-stream layout count (0 for meta)
	shard int
	path  string
	final bool // newest segment of its stream: the only one allowed to tear
}

// recover loads the snapshot pair (if any), replays every WAL stream
// epoch-ascending (meta first within an epoch), installs the result, and
// opens the newest epoch of every stream for appending.
func (p *persister) recover() error {
	fs := p.sys.FS()
	if f, err := os.Open(filepath.Join(p.dir, dfsStateFile)); err == nil {
		ierr := fs.Import(f)
		f.Close()
		if ierr != nil {
			return fmt.Errorf("server: load %s: %w", dfsStateFile, ierr)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	// The repository replays out-of-place and is only adopted once the log
	// has been applied; a pre-populated Config.System repository is kept
	// when no snapshot exists (fresh state dir over a warm system). Loading
	// with the live repository's path-shard count keeps a sharded daemon's
	// adopted repository sharded across restarts.
	repo := p.sys.Repository()
	if f, err := os.Open(filepath.Join(p.dir, repoStateFile)); err == nil {
		loaded, lerr := core.LoadRepositorySharded(f, repo.NumPathShards())
		f.Close()
		if lerr != nil {
			return fmt.Errorf("server: load %s: %w", repoStateFile, lerr)
		}
		repo = loaded
	} else if !os.IsNotExist(err) {
		return err
	}

	metaSegs, err := persist.Segments(p.dir)
	if err != nil {
		return err
	}
	shardSegs, err := persist.ShardSegments(p.dir)
	if err != nil {
		return err
	}

	// Flatten both stream families into one epoch-ordered list. The final
	// segment of each stream — the one being appended at the crash — is
	// the only one whose tail may be repaired; ShardSegments is sorted by
	// (epoch, shard), so a stream's final segment is the last one seen.
	var all []replaySegment
	for i, seg := range metaSegs {
		all = append(all, replaySegment{epoch: seg.N, meta: true, path: seg.Path, final: i == len(metaSegs)-1})
	}
	finalOf := make(map[[2]int]int) // (count, shard) -> index in all of its newest segment
	for _, seg := range shardSegs {
		all = append(all, replaySegment{epoch: seg.Epoch, count: seg.Count, shard: seg.Shard, path: seg.Path})
		finalOf[[2]int{seg.Count, seg.Shard}] = len(all) - 1
		if seg.Count != p.nshards {
			p.layoutChanged = true
		}
	}
	for _, i := range finalOf {
		all[i].final = true
	}
	sortReplaySegments(all)

	for _, seg := range all {
		// Only the segment a stream was appending at the crash can tear, so
		// only each stream's final segment gets its tail repaired
		// (truncated); a tear anywhere earlier is real corruption — fail
		// without modifying the file, so the evidence (and the fatal error)
		// survives restarts instead of the next boot silently applying the
		// later segments over a hole.
		n, torn, rerr := persist.ReplayFile(seg.path, func(rec persist.Record) error {
			switch {
			case rec.DFS != nil:
				return fs.Apply(*rec.DFS)
			case rec.Repo != nil:
				return repo.Apply(*rec.Repo)
			}
			return nil // empty record: tolerated for forward compatibility
		}, seg.final)
		if rerr != nil {
			return fmt.Errorf("server: replay %s: %w", seg.path, rerr)
		}
		p.recoveredRecords += n
		if torn {
			if !seg.final {
				return fmt.Errorf("server: replay %s: torn record in a non-final segment", seg.path)
			}
			p.recoveredTorn = true
		}
	}

	// Heal cross-stream divergence: with independent fsync tails, a crash
	// can persist an entry's meta-stream add while losing its output's
	// shard-stream create. An entry whose stored output is gone can never
	// serve a rewrite; drop it (deterministically — replaying the same
	// directory again re-drops it) rather than let a later match read a
	// missing file. The converse divergence (file without entry) is an
	// orphan and is reclaimed by the post-recovery sweep.
	for _, e := range repo.All() {
		if !fs.Exists(e.OutputPath) {
			repo.Remove(e.ID)
			p.recoveredDropped++
		}
	}

	// Install the replayed repository and advance seq/namespace counters
	// past everything the log mentioned.
	p.sys.AdoptRepository(repo)

	// Append to the newest epoch (tail-truncated), or start the first. A
	// shard-layout change instead bumps to a fresh epoch: new appends are
	// routed under the new shard count and must never share an epoch with
	// records routed under the old one (replay order within an epoch is
	// meaningful only within a single layout).
	var maxEpoch uint64
	for _, seg := range all {
		if seg.epoch > maxEpoch {
			maxEpoch = seg.epoch
		}
	}
	p.seg = 1
	if maxEpoch > 0 {
		p.seg = maxEpoch
	}
	if p.layoutChanged {
		p.seg = maxEpoch + 1
	}
	w, err := persist.OpenWriter(persist.SegmentPath(p.dir, p.seg), p.syncEach)
	if err != nil {
		return err
	}
	p.wal = w
	if p.nshards > 1 {
		p.shardWals = make([]*persist.Writer, p.nshards)
		for i := range p.shardWals {
			sw, serr := persist.OpenWriter(persist.ShardSegmentPath(p.dir, p.nshards, i, p.seg), p.syncEach)
			if serr != nil {
				p.close()
				return serr
			}
			p.shardWals[i] = sw
		}
	}
	// Force one compaction after restart: whatever the log holds (or a
	// missing snapshot) is folded into a fresh pair on the first interval.
	p.dirty.Store(true)
	return nil
}

// sortReplaySegments orders segments epoch-ascending, meta stream first
// within an epoch, then shard streams by (count, shard). Shard order
// within an epoch is for determinism only: streams of one layout never
// share a path, and distinct layouts never share an epoch.
func sortReplaySegments(all []replaySegment) {
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && replayBefore(all[j], all[j-1]); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
}

func replayBefore(a, b replaySegment) bool {
	if a.epoch != b.epoch {
		return a.epoch < b.epoch
	}
	if a.meta != b.meta {
		return a.meta
	}
	if a.count != b.count {
		return a.count < b.count
	}
	return a.shard < b.shard
}

// fsJournal, shardFSJournal, and repoJournal forward committed mutations
// into the WAL. They are called synchronously under the lock that committed
// the mutation (the DFS shard's write lock, the repository's), so record
// order in each stream is exactly commit order for everything that stream
// carries: per-path order in a shard stream, repository order in the meta
// stream. fsJournal is the unsharded core's single-stream routing;
// shardFSJournal routes shard i's mutations into shard stream i.
type fsJournal struct{ p *persister }

func (j fsJournal) Record(m dfs.Mutation) { j.p.append(persist.Record{DFS: &m}) }

type shardFSJournal struct {
	p     *persister
	shard int
}

func (j shardFSJournal) Record(m dfs.Mutation) { j.p.appendShard(j.shard, persist.Record{DFS: &m}) }

type repoJournal struct{ p *persister }

func (j repoJournal) Record(m core.Mutation) { j.p.append(persist.Record{Repo: &m}) }

// append logs one record to the meta stream's current segment. Journal
// hooks cannot return errors; a failed append (disk full, closed writer
// during a shutdown race) is counted and resurfaces as the writer's sticky
// error on the next flush or compaction.
func (p *persister) append(rec persist.Record) {
	t := time.Now()
	p.walMu.RLock()
	n, err := p.wal.Append(rec)
	p.walMu.RUnlock()
	p.obs.ObserveWALAppend(time.Since(t))
	p.account(n, err)
}

// appendShard logs one record to shard stream shard's current segment.
func (p *persister) appendShard(shard int, rec persist.Record) {
	t := time.Now()
	p.walMu.RLock()
	n, err := p.shardWals[shard].Append(rec)
	p.walMu.RUnlock()
	p.obs.ObserveWALAppend(time.Since(t))
	p.account(n, err)
}

func (p *persister) account(n int, err error) {
	if err != nil {
		p.appendErrs.Add(1)
		// The mutation now exists only in memory: the system is dirtier
		// than ever, and the next compaction's snapshot is the only thing
		// that can make it durable — it must not be skipped as a no-op.
		p.dirty.Store(true)
		return
	}
	p.walRecords.Add(1)
	p.walBytes.Add(int64(n))
	p.dirty.Store(true)
}

// flush makes every record appended so far durable, across all streams.
// This is the routine checkpoint: no lease, no drain, cost proportional to
// the mutations since the last flush.
func (p *persister) flush() error {
	t := time.Now()
	p.walMu.RLock()
	defer p.walMu.RUnlock()
	err := p.wal.Flush()
	for _, w := range p.shardWals {
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
	}
	p.obs.ObserveWALFsync(time.Since(t))
	return err
}

// compact is the rare, heavyweight checkpoint: under the system's
// universal lease it sweeps orphaned restore/ files, rotates every WAL
// stream onto a fresh epoch, writes the snapshot pair, and deletes the
// pre-rotation segments of every stream (including any foreign-layout
// shard streams). It reports whether a compaction actually ran — a clean
// system (no mutations since the last one) skips entirely.
func (p *persister) compact() (bool, error) {
	p.compactMu.Lock()
	defer p.compactMu.Unlock()
	if !p.dirty.Load() {
		return false, nil
	}
	err := p.sys.Quiesce(func() error {
		// Sweep first so the snapshot is garbage-free; the deletions are
		// journaled into the outgoing segments, which the snapshot covers.
		p.swept.Add(int64(p.sweepOrphans()))

		p.walMu.Lock()
		next, err := persist.OpenWriter(persist.SegmentPath(p.dir, p.seg+1), p.syncEach)
		if err != nil {
			p.walMu.Unlock()
			return err
		}
		nextShards := make([]*persist.Writer, len(p.shardWals))
		for i := range p.shardWals {
			nextShards[i], err = persist.OpenWriter(persist.ShardSegmentPath(p.dir, p.nshards, i, p.seg+1), p.syncEach)
			if err != nil {
				next.Close()
				for _, w := range nextShards[:i] {
					w.Close()
				}
				p.walMu.Unlock()
				return err
			}
		}
		old, oldShards := p.wal, p.shardWals
		p.wal, p.shardWals = next, nextShards
		p.seg++
		p.walMu.Unlock()
		// A Close failure means an outgoing segment is missing records (a
		// sticky write error dropped them on disk, though they are all in
		// the quiesced in-memory state). The snapshot below supersedes the
		// damaged segments entirely, so press on — aborting here would keep
		// the hole on disk; the error is surfaced after the state is safe.
		closeErr := old.Close()
		for _, w := range oldShards {
			if cerr := w.Close(); closeErr == nil {
				closeErr = cerr
			}
		}

		written, err := p.writeSnapshot()
		if err != nil {
			return err
		}
		// Only now are the pre-rotation segments redundant: the renamed
		// pair covers every record they held, whatever layout wrote them.
		if _, err := persist.RemoveAllSegmentsBelow(p.dir, p.seg); err != nil {
			return err
		}
		p.sys.FS().TakeDirty()
		p.dirty.Store(false)
		p.compactions.Add(1)
		p.compactBytes.Add(written)
		if closeErr != nil {
			return fmt.Errorf("server: compact: close wal (state healed by snapshot): %w", closeErr)
		}
		return nil
	})
	return true, err
}

// writeSnapshot writes the repository+DFS pair via tmp files and renames
// (dfs first, repository second — recovery tolerates the torn middle, see
// the package comment). Returns the bytes written. Caller must hold the
// universal lease.
func (p *persister) writeSnapshot() (int64, error) {
	repoTmp, err := os.CreateTemp(p.dir, repoStateFile+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(repoTmp.Name())
	dfsTmp, err := os.CreateTemp(p.dir, dfsStateFile+".tmp*")
	if err != nil {
		repoTmp.Close()
		return 0, err
	}
	defer os.Remove(dfsTmp.Name())

	err = p.sys.Repository().Save(repoTmp)
	if err == nil {
		err = p.sys.FS().Export(dfsTmp)
	}
	var written int64
	for _, f := range []*os.File{repoTmp, dfsTmp} {
		if st, serr := f.Stat(); serr == nil {
			written += st.Size()
		}
		if serr := f.Sync(); err == nil {
			err = serr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return 0, fmt.Errorf("server: checkpoint: %w", err)
	}
	if err := os.Rename(dfsTmp.Name(), filepath.Join(p.dir, dfsStateFile)); err != nil {
		return 0, err
	}
	if err := os.Rename(repoTmp.Name(), filepath.Join(p.dir, repoStateFile)); err != nil {
		return 0, err
	}
	// The renames must be durable before the caller may delete the
	// segments they supersede — directory metadata does not order itself.
	return written, persist.SyncDir(p.dir)
}

// sweepOrphans deletes restore/ files no repository entry references:
// temps and sub-job outputs of failed or registration-disabled workflows,
// and (at recovery) files stranded by a crash mid-workflow. Runs at
// startup and during every compaction (under the universal lease, so no
// in-flight execution can be using an unreferenced file). Returns the
// number of files deleted.
func (p *persister) sweepOrphans() int {
	refs := make(map[string]bool)
	for _, e := range p.sys.Repository().All() {
		refs[e.OutputPath] = true
		for path := range e.InputVersions {
			refs[path] = true
		}
	}
	fs := p.sys.FS()
	swept := 0
	for _, path := range fs.List("restore/") {
		if !refs[path] {
			if fs.Delete(path) == nil {
				swept++
			}
		}
	}
	return swept
}

// close flushes and closes the current segment of every stream. Appends
// from workers still draining in the background after a timed-out shutdown
// hit the writers' sticky errors and are dropped — exactly the
// never-acknowledged work a supervisor kill would have lost anyway.
func (p *persister) close() error {
	p.walMu.Lock()
	defer p.walMu.Unlock()
	var err error
	if p.wal != nil {
		err = p.wal.Close()
	}
	for _, w := range p.shardWals {
		if w == nil {
			continue
		}
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// WALStats describes the persistence subsystem in GET /v1/metrics.
type WALStats struct {
	// Segment is the current WAL rotation epoch (shared by every stream);
	// Streams how many append streams the layout runs (1 for an unsharded
	// core, 1 meta + N shard streams for -shards N); Records/Bytes count
	// appends since daemon start (across rotations, summed over streams).
	Segment uint64 `json:"segment"`
	Streams int    `json:"streams"`
	Records int64  `json:"records"`
	Bytes   int64  `json:"bytes"`
	// AppendErrors counts records dropped by a failed append (sticky
	// writer errors surface on the next flush/compaction too).
	AppendErrors int64 `json:"appendErrors"`
	// Compactions/CompactBytes count snapshot+truncate cycles and the
	// snapshot bytes they wrote; TempFilesSwept the orphaned restore/
	// files reclaimed by the recovery and compaction sweeps.
	Compactions    int64 `json:"compactions"`
	CompactBytes   int64 `json:"compactBytes"`
	TempFilesSwept int64 `json:"tempFilesSwept"`
	// DirtyFiles is how many DFS files changed since the last compaction
	// (what the next snapshot must newly capture).
	DirtyFiles int `json:"dirtyFiles"`
	// RecoveredRecords/RecoveredTorn describe the startup replay: how many
	// log records were applied over the snapshot, and whether a torn final
	// record was truncated. RecoveredDroppedEntries counts replayed
	// repository entries dropped because their stored output's DFS create
	// was lost to cross-stream fsync divergence.
	RecoveredRecords        int  `json:"recoveredRecords"`
	RecoveredTorn           bool `json:"recoveredTorn"`
	RecoveredDroppedEntries int  `json:"recoveredDroppedEntries,omitempty"`
}

func (p *persister) stats() *WALStats {
	p.walMu.RLock()
	seg := p.seg
	streams := 1 + len(p.shardWals)
	p.walMu.RUnlock()
	return &WALStats{
		Segment:                 seg,
		Streams:                 streams,
		Records:                 p.walRecords.Load(),
		Bytes:                   p.walBytes.Load(),
		AppendErrors:            p.appendErrs.Load(),
		Compactions:             p.compactions.Load(),
		CompactBytes:            p.compactBytes.Load(),
		TempFilesSwept:          p.swept.Load(),
		DirtyFiles:              p.sys.FS().DirtyCount(),
		RecoveredRecords:        p.recoveredRecords,
		RecoveredTorn:           p.recoveredTorn,
		RecoveredDroppedEntries: p.recoveredDropped,
	}
}
