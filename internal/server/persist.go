package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	restore "repro"
)

// State files inside the daemon's state directory. Both are written on every
// checkpoint as one consistent pair: System.SaveState takes a universal
// (write-set-universal) lease, the drain barrier that waits for every
// in-flight execution and blocks new admissions while both files are
// captured. A restarted daemon therefore resumes with the learned
// repository *and* the complete DFS files its entries reference — no torn
// half-committed outputs, no entry whose stored file missed the snapshot —
// otherwise Rule-4 eviction would drop entries on the first post-restart
// query. (Checkpoints submitted through the scheduler additionally run as
// universal tasks, draining the worker pool first; see checkpointNow.)
const (
	repoStateFile = "repository.json"
	dfsStateFile  = "dfs.json"
)

// persister checkpoints a System's durable state into a directory.
type persister struct {
	dir string
	sys *restore.System
	// mu serializes whole checkpoints: Close's direct save can otherwise
	// overlap a queued checkpoint task when HTTP shutdown times out, and
	// interleaved renames would pair dfs.json and repository.json from
	// different snapshots.
	mu sync.Mutex
}

func newPersister(dir string, sys *restore.System) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	return &persister{dir: dir, sys: sys}, nil
}

// load restores a previous checkpoint if one exists. DFS first, repository
// second, so loaded entries see the right file versions. Returns whether a
// repository was loaded.
func (p *persister) load() (bool, error) {
	dfsPath := filepath.Join(p.dir, dfsStateFile)
	if f, err := os.Open(dfsPath); err == nil {
		ierr := p.sys.FS().Import(f)
		f.Close()
		if ierr != nil {
			return false, fmt.Errorf("server: load %s: %w", dfsPath, ierr)
		}
	} else if !os.IsNotExist(err) {
		return false, err
	}

	repoPath := filepath.Join(p.dir, repoStateFile)
	f, err := os.Open(repoPath)
	if os.IsNotExist(err) {
		p.sweepOrphans()
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := p.sys.LoadRepositoryFrom(f); err != nil {
		return false, fmt.Errorf("server: load %s: %w", repoPath, err)
	}
	p.sweepOrphans()
	return true, nil
}

// sweepOrphans deletes restore/ files no repository entry references. A
// crash between the checkpoint's two renames can land a newer DFS beside an
// older repository; entries lost that way would otherwise leave their
// stored outputs in the DFS forever, since eviction only walks entries.
func (p *persister) sweepOrphans() {
	refs := make(map[string]bool)
	for _, e := range p.sys.Repository().All() {
		refs[e.OutputPath] = true
		for path := range e.InputVersions {
			refs[path] = true
		}
	}
	fs := p.sys.FS()
	for _, path := range fs.List("restore/") {
		if !refs[path] {
			_ = fs.Delete(path)
		}
	}
}

// save checkpoints the repository and DFS atomically (tmp + rename per
// file). SaveState takes the system's universal lease (the drain barrier),
// so the pair is always a consistent snapshot even while path-disjoint
// executions run concurrently; p.mu keeps two saves' renames from
// interleaving.
func (p *persister) save() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	repoTmp, err := os.CreateTemp(p.dir, repoStateFile+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(repoTmp.Name())
	dfsTmp, err := os.CreateTemp(p.dir, dfsStateFile+".tmp*")
	if err != nil {
		repoTmp.Close()
		return err
	}
	defer os.Remove(dfsTmp.Name())

	err = p.sys.SaveState(repoTmp, dfsTmp)
	if cerr := repoTmp.Close(); err == nil {
		err = cerr
	}
	if cerr := dfsTmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	if err := os.Rename(dfsTmp.Name(), filepath.Join(p.dir, dfsStateFile)); err != nil {
		return err
	}
	return os.Rename(repoTmp.Name(), filepath.Join(p.dir, repoStateFile))
}
