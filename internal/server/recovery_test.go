package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	restore "repro"
	"repro/internal/persist"
	"repro/internal/pigmix"
)

// Crash-recovery battery for the write-ahead-logged persister: a daemon
// killed without any shutdown checkpoint — including mid-record — must
// restart to exactly the state its fsynced log describes.

// crashableDaemon boots a Server whose WAL fsyncs every record, so "kill
// the process here" is modeled faithfully: everything acknowledged is on
// disk, and crash() abandons the daemon without Close — no drain, no
// shutdown compaction, the state directory left exactly as a SIGKILL
// would.
type crashableDaemon struct {
	t   *testing.T
	srv *Server
	ln  net.Listener
	err chan error
}

func startCrashable(t *testing.T, cfg Config) (*crashableDaemon, string) {
	t.Helper()
	if cfg.WALSyncInterval == 0 {
		cfg.WALSyncInterval = SyncEveryRecord
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := &crashableDaemon{t: t, srv: srv, ln: ln, err: make(chan error, 1)}
	go func() { d.err <- srv.Serve(ln) }()
	return d, "http://" + ln.Addr().String()
}

// crash kills the daemon the hard way: close the listener, detach nothing,
// checkpoint nothing. The Server object is abandoned mid-life.
func (d *crashableDaemon) crash() {
	d.ln.Close()
	<-d.err // Serve returned (listener closed); workers are idle by now
}

// stop is the graceful path (drain + compaction), for control daemons.
func (d *crashableDaemon) stop() {
	d.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.srv.Close(ctx); err != nil {
		d.t.Errorf("daemon close: %v", err)
	}
	if err := <-d.err; err != nil && err != http.ErrServerClosed {
		d.t.Errorf("serve: %v", err)
	}
}

// exportState captures a system's durable state (repository JSON + DFS
// JSON) for byte-level comparison.
func exportState(t *testing.T, sys *restore.System) []byte {
	t.Helper()
	var repo, dfs bytes.Buffer
	if err := sys.SaveState(&repo, &dfs); err != nil {
		t.Fatal(err)
	}
	return append(repo.Bytes(), dfs.Bytes()...)
}

// pigmixDaemonConfig seeds a fresh System with the tiny PigMix tables.
func pigmixSystem(t *testing.T) *restore.System {
	t.Helper()
	sys := restore.New()
	if err := pigmix.Generate(sys.FS(), tinyPigmix); err != nil {
		t.Fatal(err)
	}
	return sys
}

// variantWorkload returns deterministic PigMix variant scripts (heavy
// repository reuse across them).
func variantWorkload(t *testing.T, rounds int) []string {
	t.Helper()
	names := pigmix.VariantNames()
	out := make([]string, 0, rounds)
	for i := 0; i < rounds; i++ {
		src, err := pigmix.Query(names[i%len(names)], fmt.Sprintf("out/rec/q%d", i))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, src)
	}
	return out
}

// TestCrashBetweenWALAppendAndCompaction is the headline recovery test: a
// daemon killed after its WAL absorbed a workload but before ANY
// compaction folded it into a snapshot must restart to byte-identical
// repository and DFS state.
func TestCrashBetweenWALAppendAndCompaction(t *testing.T) {
	stateDir := t.TempDir()
	d, base := startCrashable(t, Config{System: pigmixSystem(t), StateDir: stateDir})
	c := NewClient(base)
	// Baseline snapshot: the preloaded tables predate the journal, so they
	// reach disk only via a compaction.
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, src := range variantWorkload(t, 6) {
		if _, err := c.Submit(src, false); err != nil {
			t.Fatal(err)
		}
	}
	want := exportState(t, d.srv.System())
	d.crash()

	// No compaction ever saw the workload: everything lives in the log.
	segs, err := persist.Segments(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected exactly 1 WAL segment after crash, found %d", len(segs))
	}
	if st, err := os.Stat(segs[0].Path); err != nil || st.Size() == 0 {
		t.Fatalf("WAL segment empty (size err=%v): the workload was never logged", err)
	}

	srv2, err := New(Config{StateDir: stateDir, WALSyncInterval: SyncEveryRecord})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if got := exportState(t, srv2.System()); !bytes.Equal(want, got) {
		t.Fatalf("recovered state differs from pre-crash state (%d vs %d bytes)", len(want), len(got))
	}
	ws := srv2.persist.stats()
	if ws.RecoveredRecords == 0 {
		t.Error("recovery replayed no WAL records")
	}
	if ws.RecoveredTorn {
		t.Error("clean log reported a torn tail")
	}
}

// TestCrashAfterMidRunCompaction kills the daemon after a compaction plus
// further WAL-only work: recovery must stack the post-compaction log onto
// the snapshot.
func TestCrashAfterMidRunCompaction(t *testing.T) {
	stateDir := t.TempDir()
	d, base := startCrashable(t, Config{System: pigmixSystem(t), StateDir: stateDir})
	c := NewClient(base)
	w := variantWorkload(t, 8)
	for _, src := range w[:4] {
		if _, err := c.Submit(src, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, src := range w[4:] {
		if _, err := c.Submit(src, false); err != nil {
			t.Fatal(err)
		}
	}
	want := exportState(t, d.srv.System())
	d.crash()

	srv2, err := New(Config{StateDir: stateDir, WALSyncInterval: SyncEveryRecord})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if got := exportState(t, srv2.System()); !bytes.Equal(want, got) {
		t.Fatal("recovered state differs from pre-crash state")
	}
	if srv2.persist.stats().RecoveredRecords == 0 {
		t.Error("post-compaction workload left no replayable records")
	}
}

// TestTornFinalRecordRecovery truncates the crashed daemon's WAL at a
// spread of byte offsets — including mid-record cuts — and requires every
// variant to recover deterministically: booting the same truncated
// directory twice yields byte-identical state, a mid-record cut is
// reported as a torn tail, and the recovered daemon keeps answering
// queries with reuse.
func TestTornFinalRecordRecovery(t *testing.T) {
	stateDir := t.TempDir()
	d, base := startCrashable(t, Config{System: pigmixSystem(t), StateDir: stateDir})
	c := NewClient(base)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, src := range variantWorkload(t, 4) {
		if _, err := c.Submit(src, false); err != nil {
			t.Fatal(err)
		}
	}
	d.crash()

	segs, err := persist.Segments(stateDir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments after crash (err=%v)", err)
	}
	walPath := segs[len(segs)-1].Path
	walData, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	snapshotFiles := map[string][]byte{}
	for _, f := range []string{repoStateFile, dfsStateFile} {
		b, err := os.ReadFile(filepath.Join(stateDir, f))
		if err != nil {
			t.Fatal(err)
		}
		snapshotFiles[f] = b
	}

	makeDir := func(cut int) string {
		dir := t.TempDir()
		for f, b := range snapshotFiles {
			if err := os.WriteFile(filepath.Join(dir, f), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(walPath)), walData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	recoverState := func(dir string) ([]byte, *WALStats) {
		// Per-record sync keeps the abandoned Server loop-free (no flush
		// ticker goroutine outlives this probe).
		srv, err := New(Config{StateDir: dir, WALSyncInterval: SyncEveryRecord})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		return exportState(t, srv.System()), srv.persist.stats()
	}

	// A spread of cuts: full log, then progressively deeper mid-log
	// truncations (byte-granular cut coverage lives in internal/persist's
	// every-offset sweep; this exercises the full daemon path).
	cuts := []int{len(walData), len(walData) - 3, len(walData) / 2, len(walData) / 3, 1}
	for _, cut := range cuts {
		if cut < 0 {
			continue
		}
		dirA := makeDir(cut)
		stateA, statsA := recoverState(dirA)
		// Determinism: recovering an identical directory must yield
		// byte-identical state.
		stateB, _ := recoverState(makeDir(cut))
		if !bytes.Equal(stateA, stateB) {
			t.Fatalf("cut %d: recovery is not deterministic", cut)
		}
		if cut == len(walData) && statsA.RecoveredTorn {
			t.Errorf("cut %d: full log reported torn", cut)
		}
		if cut == len(walData)-3 && !statsA.RecoveredTorn {
			t.Errorf("cut %d: mid-record cut not reported as torn tail", cut)
		}

		// The recovered daemon must still serve and reuse: boot it for real
		// over dirA (its WAL was truncated to a clean boundary by recovery,
		// so a second boot appends after the tear).
		srv, err := New(Config{StateDir: dirA, WALSyncInterval: SyncEveryRecord})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()
		cc := NewClient("http://" + ln.Addr().String())
		resp, err := cc.Submit(variantWorkload(t, 1)[0], true)
		if err != nil {
			t.Fatalf("cut %d: recovered daemon cannot execute: %v", cut, err)
		}
		if len(resp.Rows) == 0 {
			t.Fatalf("cut %d: recovered daemon returned no rows", cut)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srv.Close(ctx); err != nil {
			t.Errorf("cut %d: close: %v", cut, err)
		}
		cancel()
		<-serveErr
	}
}

// TestCrashedAndCleanShutdownConvergeOnHitRate runs the identical workload
// through a crashed daemon (recovered from WAL) and a cleanly stopped one
// (recovered from its shutdown compaction), then replays a second workload
// against both: reuse behavior must be identical — the log is as good as
// the snapshot.
func TestCrashedAndCleanShutdownConvergeOnHitRate(t *testing.T) {
	warmup := variantWorkload(t, 6)
	replay := variantWorkload(t, 6)

	runRecovered := func(graceful bool) (hitRate float64, rewrites int) {
		stateDir := t.TempDir()
		d, base := startCrashable(t, Config{System: pigmixSystem(t), StateDir: stateDir})
		c := NewClient(base)
		if err := c.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for _, src := range warmup {
			if _, err := c.Submit(src, false); err != nil {
				t.Fatal(err)
			}
		}
		if graceful {
			d.stop()
		} else {
			d.crash()
		}

		d2, base2 := startCrashable(t, Config{StateDir: stateDir})
		defer d2.stop()
		c2 := NewClient(base2)
		for _, src := range replay {
			resp, err := c2.Submit(src, false)
			if err != nil {
				t.Fatal(err)
			}
			rewrites += len(resp.Result.Rewrites)
			if len(resp.Result.Evicted) != 0 {
				t.Errorf("recovered daemon evicted %v on replay (graceful=%v)", resp.Result.Evicted, graceful)
			}
		}
		m, err := c2.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		return m.Reuse.HitRate, rewrites
	}

	crashHit, crashRw := runRecovered(false)
	cleanHit, cleanRw := runRecovered(true)
	if crashHit != cleanHit || crashRw != cleanRw {
		t.Errorf("crash recovery diverges from clean shutdown: hit-rate %.3f vs %.3f, rewrites %d vs %d",
			crashHit, cleanHit, crashRw, cleanRw)
	}
	if crashRw == 0 {
		t.Error("replayed workload was never rewritten against the recovered repository")
	}
}

// TestCompactionSweepsOrphanedTemps covers the output-GC half-fix: an
// unreferenced restore/tmp file (what a failed workflow strands) must be
// reclaimed — at startup recovery for pre-existing orphans, and by the
// next compaction for ones stranded at runtime — while
// repository-referenced restore/ files survive.
func TestCompactionSweepsOrphanedTemps(t *testing.T) {
	stateDir := t.TempDir()
	sys := pigmixSystem(t)
	// An orphan present before the daemon starts: recovery's sweep takes it.
	if err := sys.LoadTSV("restore/tmp/q9998/j0", "k:int", []string{"1"}, 1); err != nil {
		t.Fatal(err)
	}
	d, base := startCrashable(t, Config{System: sys, StateDir: stateDir})
	defer d.stop()
	c := NewClient(base)
	fs := d.srv.System().FS()
	if fs.Exists("restore/tmp/q9998/j0") {
		t.Error("startup sweep left a pre-existing orphan in the DFS")
	}
	// Build real repository entries whose restore/ files must survive.
	for _, src := range variantWorkload(t, 3) {
		if _, err := c.Submit(src, false); err != nil {
			t.Fatal(err)
		}
	}
	// Strand runtime orphans (what a failed workflow leaves behind): the
	// daemon is idle here, so direct FS writes do not race the scheduler.
	for _, p := range []string{"restore/tmp/q9999/j0", "restore/sub/s9999"} {
		if err := sys.LoadTSV(p, "k:int", []string{"1"}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"restore/tmp/q9999/j0", "restore/sub/s9999"} {
		if fs.Exists(p) {
			t.Errorf("compaction left orphan %s in the DFS", p)
		}
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.WAL == nil || m.WAL.TempFilesSwept < 3 {
		t.Fatalf("metrics report %+v swept temp files, want >= 3", m.WAL)
	}
	// Referenced stored outputs are untouched: repeats still rewrite.
	resp, err := c.Submit(variantWorkload(t, 1)[0], false)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rewrites) == 0 {
		t.Error("sweep deleted referenced stored outputs (no rewrites on repeat)")
	}
}
