package server

import (
	"context"
	"net/http/httptest"
	"testing"

	restore "repro"
)

// benchmarkHotSubmit drives repeated submissions of one query through a
// daemon; hot=true registers final outputs so every repeat after the first
// is served by the admission-time fast path, hot=false disables both hot
// layers (no plan cache, no whole-query match possible) so repeats pay the
// full prepare+schedule+execute path.
func benchmarkHotSubmit(b *testing.B, hot bool) {
	opts := []restore.Option{restore.WithRegisterFinalOutputs(hot)}
	if !hot {
		opts = append(opts, restore.WithPlanCache(0))
	}
	srv, err := New(Config{System: restore.New(opts...)})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		if err := srv.Close(context.Background()); err != nil {
			b.Errorf("close: %v", err)
		}
	}()
	c := NewClient(hs.URL)
	if _, err := c.Upload("data/pages", pagesSchema, 2, []string{
		"alice\t3\t1.5",
		"bob\t7\t2.5",
		"alice\t2\t4.0",
		"carol\t1\t0.5",
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Submit(hotQuery, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Submit(hotQuery, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerHot prices the repeat-query request with the zero-compile
// hot path on (plan cache + result fast path) vs off (recompile and
// re-execute every repeat). The representative comparison under emulated
// cluster latency is the server-hot experiment in restore-bench.
func BenchmarkServerHot(b *testing.B) {
	b.Run("hot", func(b *testing.B) { benchmarkHotSubmit(b, true) })
	b.Run("cold", func(b *testing.B) { benchmarkHotSubmit(b, false) })
}
