package server

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// metrics holds the daemon's own traffic counters; reuse counters live in
// core.Stats inside the System so library users get them too, and latency
// distributions live in the obs.Registry shared with the System.
type metrics struct {
	start time.Time
	// rate tracks submissions over a sliding 60s window, fixing the
	// lifetime-average qps field that went stale minutes after startup.
	rate      *obs.RateWindow
	submitted atomic.Int64
	executed  atomic.Int64
	deduped   atomic.Int64
	failed    atomic.Int64
	// hot counts the executed flights served by the admission-time result
	// fast path (a subset of executed: the flight completed, it just never
	// touched the scheduler or took a lease).
	hot atomic.Int64
	// The failed total splits by cause: a parse/plan/compile rejection
	// (client's script), a shed submission (queue full or shutting down —
	// capacity, not correctness), or an execution/rows failure. The split
	// is what distinguishes "clients send garbage" from "we are
	// overloaded" from "the engine is broken" on one dashboard.
	failedParse atomic.Int64
	failedShed  atomic.Int64
	failedExec  atomic.Int64
	uploads     atomic.Int64
	checkpoints atomic.Int64
	gcRuns      atomic.Int64
	gcShardRuns atomic.Int64
	gcEvicted   atomic.Int64
	gcRetired   atomic.Int64
}

// LatencySummary condenses a latency histogram for the JSON metrics
// document (full bucket detail is on GET /metrics).
type LatencySummary struct {
	Count      int64   `json:"count"`
	MeanMillis float64 `json:"meanMillis"`
	P50Millis  float64 `json:"p50Millis"`
	P90Millis  float64 `json:"p90Millis"`
	P99Millis  float64 `json:"p99Millis"`
}

// summarize condenses a histogram snapshot; nil when it holds no samples
// (so the JSON field disappears instead of reading as zero latency).
func summarize(h obs.HistogramSnapshot) *LatencySummary {
	if h.Count == 0 {
		return nil
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return &LatencySummary{
		Count:      h.Count,
		MeanMillis: ms(h.Mean()),
		P50Millis:  ms(h.Quantile(0.50)),
		P90Millis:  ms(h.Quantile(0.90)),
		P99Millis:  ms(h.Quantile(0.99)),
	}
}

// MetricsSnapshot is the JSON document served by GET /v1/metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// QueriesSubmitted counts every POST /v1/query; QueriesExecuted the
	// flights that ran to completion (parse errors and shed load excluded);
	// QueriesDeduped the submissions that shared an identical in-flight
	// query's result.
	QueriesSubmitted int64 `json:"queriesSubmitted"`
	QueriesExecuted  int64 `json:"queriesExecuted"`
	QueriesDeduped   int64 `json:"queriesDeduped"`
	QueriesFailed    int64 `json:"queriesFailed"`
	// QueriesHot counts executed flights the admission-time result fast
	// path served from fresh stored outputs — no scheduler, no lease, no
	// engine run. A subset of QueriesExecuted, so the identity
	// submitted = executed + deduped + failed is unaffected. Cache and
	// probe detail is under reuse.hot.
	QueriesHot int64 `json:"queriesHot"`
	// The failure split: parse/plan/compile rejections, shed submissions
	// (queue full or shutting down), and execution or rows-read failures.
	// The three always sum to QueriesFailed.
	QueriesFailedParse int64 `json:"queriesFailedParse"`
	QueriesFailedShed  int64 `json:"queriesFailedShed"`
	QueriesFailedExec  int64 `json:"queriesFailedExec"`
	// QPS is the lifetime average (kept for compatibility); QPS1m is the
	// submission rate over the last 60 seconds and is the one to watch.
	QPS        float64 `json:"qps"`
	QPS1m      float64 `json:"qps1m"`
	QueueDepth int64   `json:"queueDepth"`
	// Executing counts tasks running on the worker pool right now; Workers
	// is the pool size (how many path-disjoint workflows may run at once).
	Executing int64 `json:"executing"`
	Workers   int64 `json:"workers"`
	Uploads   int64 `json:"uploads"`
	// Checkpoints counts completed compactions (periodic, manual, and
	// shutdown); routine WAL flushes are not checkpoints and are reported
	// under WAL instead.
	Checkpoints int64 `json:"checkpoints"`
	// GCRuns counts background growth-management passes; GCShardRuns the
	// per-shard scanner passes of a sharded core (zero on a single-domain
	// one); GCEvicted and GCOutputsRetired what they reclaimed (repository
	// entries, user-named outputs). Per-query eviction work is reported
	// under reuse.evict.
	GCRuns           int64 `json:"gcRuns"`
	GCShardRuns      int64 `json:"gcShardRuns,omitempty"`
	GCEvicted        int64 `json:"gcEvicted"`
	GCOutputsRetired int64 `json:"gcOutputsRetired"`

	// Latency summarizes the end-to-end query latency distribution, and
	// LeaseWait the lease-admission waits; nil until a first sample lands.
	// Full per-stage histograms are on GET /metrics.
	Latency   *LatencySummary `json:"latency,omitempty"`
	LeaseWait *LatencySummary `json:"leaseWait,omitempty"`

	// WAL describes the write-ahead-log persistence subsystem; nil when
	// the daemon runs without a state directory.
	WAL *WALStats `json:"wal,omitempty"`

	// Fleet describes the distributed execution backend (worker liveness,
	// task dispatch and recovery counters, shuffle bytes pulled); nil when
	// the daemon executes in-process.
	Fleet *fleet.Stats `json:"fleet,omitempty"`

	// Reuse is the System's lifetime reuse statistics (hit rate, bytes and
	// simulated time saved).
	Reuse core.StatsSnapshot `json:"reuse"`

	RepositoryEntries     int   `json:"repositoryEntries"`
	RepositoryStoredBytes int64 `json:"repositoryStoredBytes"`
}

// fail counts one failed submission under its cause. cause is one of the
// failCause values.
func (m *metrics) fail(cause failCause) {
	m.failed.Add(1)
	switch cause {
	case failParse:
		m.failedParse.Add(1)
	case failShed:
		m.failedShed.Add(1)
	default:
		m.failedExec.Add(1)
	}
}

// failCause classifies a failed submission for the split counters.
type failCause uint8

// failCause values.
const (
	failParse failCause = iota // script rejected at prepare
	failShed                   // queue full or shutting down
	failExec                   // execution or rows read failed
)

func (m *metrics) snapshot() MetricsSnapshot {
	now := time.Now()
	up := now.Sub(m.start).Seconds()
	snap := MetricsSnapshot{
		UptimeSeconds:      up,
		QueriesSubmitted:   m.submitted.Load(),
		QueriesExecuted:    m.executed.Load(),
		QueriesDeduped:     m.deduped.Load(),
		QueriesFailed:      m.failed.Load(),
		QueriesHot:         m.hot.Load(),
		QueriesFailedParse: m.failedParse.Load(),
		QueriesFailedShed:  m.failedShed.Load(),
		QueriesFailedExec:  m.failedExec.Load(),
		QPS1m:              m.rate.Rate(now),
		Uploads:            m.uploads.Load(),
		Checkpoints:        m.checkpoints.Load(),
		GCRuns:             m.gcRuns.Load(),
		GCShardRuns:        m.gcShardRuns.Load(),
		GCEvicted:          m.gcEvicted.Load(),
		GCOutputsRetired:   m.gcRetired.Load(),
	}
	if up > 0 {
		snap.QPS = float64(snap.QueriesSubmitted) / up
	}
	return snap
}
