package server

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// metrics holds the daemon's own traffic counters; reuse counters live in
// core.Stats inside the System so library users get them too.
type metrics struct {
	start       time.Time
	submitted   atomic.Int64
	executed    atomic.Int64
	deduped     atomic.Int64
	failed      atomic.Int64
	uploads     atomic.Int64
	checkpoints atomic.Int64
	gcRuns      atomic.Int64
	gcEvicted   atomic.Int64
	gcRetired   atomic.Int64
}

// MetricsSnapshot is the JSON document served by GET /v1/metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// QueriesSubmitted counts every POST /v1/query; QueriesExecuted the
	// flights that ran to completion (parse errors and shed load excluded);
	// QueriesDeduped the submissions that shared an identical in-flight
	// query's result.
	QueriesSubmitted int64   `json:"queriesSubmitted"`
	QueriesExecuted  int64   `json:"queriesExecuted"`
	QueriesDeduped   int64   `json:"queriesDeduped"`
	QueriesFailed    int64   `json:"queriesFailed"`
	QPS              float64 `json:"qps"`
	QueueDepth       int64   `json:"queueDepth"`
	// Executing counts tasks running on the worker pool right now; Workers
	// is the pool size (how many path-disjoint workflows may run at once).
	Executing int64 `json:"executing"`
	Workers   int64 `json:"workers"`
	Uploads   int64 `json:"uploads"`
	// Checkpoints counts completed compactions (periodic, manual, and
	// shutdown); routine WAL flushes are not checkpoints and are reported
	// under WAL instead.
	Checkpoints int64 `json:"checkpoints"`
	// GCRuns counts background growth-management passes; GCEvicted and
	// GCOutputsRetired what they reclaimed (repository entries, user-named
	// outputs). Per-query eviction work is reported under reuse.evict.
	GCRuns           int64 `json:"gcRuns"`
	GCEvicted        int64 `json:"gcEvicted"`
	GCOutputsRetired int64 `json:"gcOutputsRetired"`

	// WAL describes the write-ahead-log persistence subsystem; nil when
	// the daemon runs without a state directory.
	WAL *WALStats `json:"wal,omitempty"`

	// Reuse is the System's lifetime reuse statistics (hit rate, bytes and
	// simulated time saved).
	Reuse core.StatsSnapshot `json:"reuse"`

	RepositoryEntries     int   `json:"repositoryEntries"`
	RepositoryStoredBytes int64 `json:"repositoryStoredBytes"`
}

func (m *metrics) snapshot() MetricsSnapshot {
	up := time.Since(m.start).Seconds()
	snap := MetricsSnapshot{
		UptimeSeconds:    up,
		QueriesSubmitted: m.submitted.Load(),
		QueriesExecuted:  m.executed.Load(),
		QueriesDeduped:   m.deduped.Load(),
		QueriesFailed:    m.failed.Load(),
		Uploads:          m.uploads.Load(),
		Checkpoints:      m.checkpoints.Load(),
		GCRuns:           m.gcRuns.Load(),
		GCEvicted:        m.gcEvicted.Load(),
		GCOutputsRetired: m.gcRetired.Load(),
	}
	if up > 0 {
		snap.QPS = float64(snap.QueriesSubmitted) / up
	}
	return snap
}
