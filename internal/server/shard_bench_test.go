package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	restore "repro"
)

// benchmarkShardSubmit prices one all-disjoint round against a core built
// with the given shard count: eight clients, each owning a private
// top-level namespace (so each maps to its own shard root), submit one
// distinct store query in parallel per iteration. A small op-latency
// emulation stands in for the metadata RPC of a remote DFS, held under the
// owning shard's write lock — the serialization the sharded core removes.
// The representative scaling curve is the server-shard experiment in
// restore-bench.
func benchmarkShardSubmit(b *testing.B, shards int) {
	const clients = 8
	sys := restore.New(restore.WithShards(shards))
	for cl := 0; cl < clients; cl++ {
		lines := make([]string, 200)
		for i := range lines {
			lines[i] = fmt.Sprintf("%d\t%d", (i*13+cl)%50, (i*7+cl)%100)
		}
		if err := sys.LoadTSV(fmt.Sprintf("c%d/in", cl), "k:int, v:int", lines, 2); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := New(Config{System: sys, Workers: clients, BarrierWindow: 16})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		if err := srv.Close(context.Background()); err != nil {
			b.Errorf("close: %v", err)
		}
	}()
	cs := make([]*Client, clients)
	for cl := range cs {
		cs[cl] = NewClient(hs.URL)
	}
	sys.FS().SetOpLatency(500 * time.Microsecond)
	defer sys.FS().SetOpLatency(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for cl := 0; cl < clients; cl++ {
			cl := cl
			wg.Add(1)
			go func() {
				defer wg.Done()
				src := fmt.Sprintf(`A = load 'c%d/in' as (k:int, v:int);
B = filter A by v > %d;
C = group B by k;
D = foreach C generate group, COUNT(B), SUM(B.v);
store D into 'c%d/out/b%d';`, cl, i%97, cl, i)
				if _, err := cs[cl].Submit(src, false); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerShard prices the all-disjoint round on the single-domain
// core vs an 8-shard one. The gap is lock-domain scaling: with one shard
// every client's namespace mutations serialize behind one write lock; with
// eight they overlap.
func BenchmarkServerShard(b *testing.B) {
	b.Run("shards=1", func(b *testing.B) { benchmarkShardSubmit(b, 1) })
	b.Run("shards=8", func(b *testing.B) { benchmarkShardSubmit(b, 8) })
}
