// Package server implements restored, the long-lived ReStore query service
// of the paper's deployment model (§2/§6): instead of replaying a hard-coded
// query stream from a one-shot CLI, a daemon watches a stream of incoming
// Pig Latin workflows from many concurrent clients and reuses stored job
// outputs across them.
//
// Architecture:
//
//   - Request goroutines parse, plan, compile (System.Prepare), and serve
//     all read-only endpoints concurrently.
//   - A conflict-aware scheduler dispatches the DFS-mutating phases
//     (eviction, rewrite, engine execution, registration, dataset uploads,
//     checkpoints) onto a worker pool: tasks whose declared read/write
//     path sets are mutually disjoint execute in parallel, conflicting
//     tasks wait FIFO (with a bounded overtake window for fairness), and
//     checkpoints are write-set-universal tasks that drain everything. A
//     bounded queue provides backpressure.
//   - A single-flight group deduplicates semantically identical in-flight
//     queries — keyed on the prepared workflow's canonical plan fingerprint
//     (restore.Prepared.FlightKey), so scripts differing only in whitespace
//     or variable names still share one execution: the first becomes the
//     leader, the rest share its result.
//   - A persister write-ahead-logs every repository and DFS mutation into
//     a state directory while queries execute (fsync-batched, no drain),
//     and periodically compacts the log into a snapshot pair under the
//     system's universal lease. A restarted daemon loads the snapshot,
//     replays the log (truncating a torn final record), sweeps orphaned
//     restore/ files, and resumes with its learned repository.
//
// Invariants:
//
//   - Two tasks whose declared access sets conflict never execute
//     concurrently, and a blocked task is never overtaken by a conflicting
//     or out-of-window one (see conflict.go).
//   - Everything the daemon has acknowledged to a client is either in the
//     WAL within one -wal-sync window or already in the snapshot pair;
//     recovery converges to the exact state at the end of the log no
//     matter where the process died (see persist.go).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	restore "repro"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// SyncEveryRecord, as Config.WALSyncInterval, makes every mutation fsync
// its WAL record before returning: nothing acknowledged is ever lost, at
// the cost of an fsync per mutation.
const SyncEveryRecord time.Duration = -1

// DefaultWALSync is the WAL fsync cadence when Config.WALSyncInterval is
// zero: the crash-loss window for acknowledged work.
const DefaultWALSync = 100 * time.Millisecond

// Config configures a Server.
type Config struct {
	// System is the ReStore deployment to serve. If nil a fresh one (empty
	// DFS, empty repository) is created.
	System *restore.System
	// Shards is the execution-core shard count used when System is nil:
	// the constructed System partitions its DFS namespace, repository
	// usage state, and lease admission into Shards independently locked
	// shards (restore.WithShards), and the persister runs one WAL stream
	// per shard. <= 1 builds the classic single-domain core. Ignored when
	// System is set — pass restore.WithShards to restore.New instead.
	Shards int
	// StateDir enables durable state when non-empty: the repository and DFS
	// are recovered from it at startup (snapshot + WAL replay) and every
	// later mutation is write-ahead-logged into it.
	StateDir string
	// SaveInterval is the legacy name for CompactInterval and is used only
	// when CompactInterval is zero. <= 0 compacts only at shutdown (and on
	// explicit POST /v1/checkpoint).
	SaveInterval time.Duration
	// WALSyncInterval is how often buffered WAL records are fsynced (the
	// crash-loss window). 0 selects the default (100ms);
	// SyncEveryRecord (-1) fsyncs inside every mutation.
	WALSyncInterval time.Duration
	// CompactInterval is how often the WAL is compacted into a fresh
	// snapshot pair (a universal drain). 0 falls back to SaveInterval.
	// Compaction is skipped when nothing changed since the last one.
	CompactInterval time.Duration
	// QueueDepth bounds the execution queue (default 256); a full queue
	// rejects submissions with 503.
	QueueDepth int
	// Workers is the execution worker-pool size: how many path-disjoint
	// workflows may execute concurrently (default GOMAXPROCS). 1 restores
	// strictly serialized execution.
	Workers int
	// BarrierWindow bounds FIFO overtaking: a queued task may only be
	// dispatched ahead of a blocked task if it sits within the first
	// BarrierWindow queue positions (default 16; 1 = strict FIFO).
	BarrierWindow int
	// Obs is the telemetry registry the daemon (and its System) records
	// latency histograms and gauges into. nil installs a fresh active
	// registry — or adopts one already set on the System via
	// restore.WithObserver; obs.Disabled switches recording off entirely
	// (the server-obs benchmark pins its cost).
	Obs *obs.Registry
	// SlowRingSize bounds how many slowest completions GET /v1/debug/slow
	// retains (default 64).
	SlowRingSize int
	// Logger receives structured operational logs: one completion line per
	// query with its stage breakdown, plus lifecycle events. nil discards
	// them (tests and embedded use).
	Logger *slog.Logger
	// Fleet is the distributed execution coordinator when the daemon runs
	// with a worker fleet (restored -fleet-workers). The server only reads
	// its stats — wiring the coordinator into the System's execution path
	// (restore.System.SetBackend) is the caller's job. nil means in-process
	// execution and omits the fleet section from both metrics endpoints.
	Fleet *fleet.Coordinator
	// GCInterval is the cadence of the background growth-management pass
	// (System.CollectGarbage: the reference full eviction sweep, Rule-3
	// window and size-budget enforcement, and user-output retention). It
	// runs off the request path under the System's lease table — write
	// leases on retention candidates only, so disjoint queries keep
	// executing. 0 disables the loop; per-query index-driven eviction
	// still runs.
	GCInterval time.Duration
}

// Server is the restored daemon: an HTTP/JSON front end over one shared
// restore.System.
type Server struct {
	sys     *restore.System
	sched   *scheduler
	flights flightGroup
	met     metrics
	persist *persister
	mux     *http.ServeMux
	// obsReg is the resolved telemetry registry (never nil; possibly
	// obs.Disabled), shared with the System and the persister so
	// GET /metrics renders one coherent view.
	obsReg *obs.Registry
	slow   *obs.SlowRing
	log    *slog.Logger
	fleet  *fleet.Coordinator

	httpSrv   *http.Server
	stopSave  chan struct{}
	saveWG    sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
	// testRowsHook, when set (tests only), runs after a successful
	// execution and before the in-slot rows read — the window in which a
	// disjoint query's eviction can delete an aliased stored file. Tests
	// use it to force that race deterministically.
	testRowsHook func(*restore.Result)
	// compacting lets the periodic compaction run off the persistLoop
	// goroutine (it blocks on a full drain) without piling up: at most one
	// timer-driven compaction is in flight.
	compacting atomic.Bool
}

// New builds a Server, loading a previous checkpoint when cfg.StateDir holds
// one.
func New(cfg Config) (*Server, error) {
	sys := cfg.System
	if sys == nil {
		if cfg.Shards > 1 {
			sys = restore.New(restore.WithShards(cfg.Shards))
		} else {
			sys = restore.New()
		}
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	reg := cfg.Obs
	if reg == nil {
		// Adopt a registry the caller already installed on the System, so
		// library-side samples and daemon-side samples land in one place;
		// otherwise telemetry is on by default.
		if reg = sys.Observer(); reg == nil {
			reg = obs.NewRegistry()
		}
	}
	sys.SetObserver(reg)
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		sys:      sys,
		sched:    newScheduler(cfg.QueueDepth, workers, cfg.BarrierWindow),
		mux:      http.NewServeMux(),
		stopSave: make(chan struct{}),
		obsReg:   reg,
		slow:     obs.NewSlowRing(cfg.SlowRingSize),
		log:      logger,
		fleet:    cfg.Fleet,
	}
	// Built here, not in Serve, so Close always has it to shut down even
	// when it races a Serve running on another goroutine.
	s.httpSrv = &http.Server{Handler: s.mux}
	s.met.start = time.Now()
	s.met.rate = obs.NewRateWindow(s.met.start)

	if cfg.StateDir != "" {
		p, err := newPersister(cfg.StateDir, sys, cfg.WALSyncInterval < 0)
		if err != nil {
			s.sched.close()
			return nil, err
		}
		// Attached after recovery on purpose: replayed records are not live
		// append traffic and must not skew the WAL histograms.
		p.obs = reg
		s.persist = p
		walSync := cfg.WALSyncInterval
		if walSync == 0 {
			walSync = DefaultWALSync
		}
		compactEvery := cfg.CompactInterval
		if compactEvery == 0 {
			compactEvery = cfg.SaveInterval
		}
		if walSync > 0 || compactEvery > 0 {
			s.saveWG.Add(1)
			go s.persistLoop(walSync, compactEvery)
		}
	}

	if cfg.GCInterval > 0 {
		s.saveWG.Add(1)
		go s.gcLoop(cfg.GCInterval)
		// A sharded core additionally runs one scanner per shard: each
		// drains its own shard's eviction-dirty feed under a shard-local
		// lease (System.CollectShardGarbage), so scanners of disjoint
		// shards collect concurrently with each other and with query
		// traffic, while the full gcLoop pass above keeps owning the
		// cross-shard work (window, size budget, output retention).
		if n := sys.Shards(); n > 1 {
			for i := 0; i < n; i++ {
				s.saveWG.Add(1)
				go s.shardGCLoop(i, cfg.GCInterval)
			}
		}
	}

	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/datasets", s.handleUpload)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v1/repository", s.handleRepository)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /metrics", s.handleProm)
	s.mux.HandleFunc("GET /v1/debug/slow", s.handleSlow)
	return s, nil
}

// System exposes the served deployment (tests and the daemon preload data
// through it).
func (s *Server) System() *restore.System { return s.sys }

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Close. It returns the error from
// http.Server.Serve (http.ErrServerClosed after a clean Close).
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// Close shuts the server down: stop accepting HTTP, stop the persistence
// tickers, flush the WAL (the no-stall durability point — everything
// acknowledged so far is now on disk), drain the execution queue within
// ctx's deadline, compact into a clean snapshot pair, and close the log.
// A supervisor kill during a long drain loses at most the queued
// (never-acknowledged) work: the pre-drain flush already persisted the
// rest, and a half-drained WAL replays on the next start.
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		// Shutdown on a never-served http.Server is a no-op that also makes
		// any later Serve return ErrServerClosed immediately.
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			s.closeErr = err
		}
		close(s.stopSave)
		s.saveWG.Wait()
		if s.persist != nil {
			if err := s.persist.flush(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		drained := s.sched.closeWithin(ctx)
		if s.persist != nil {
			if drained {
				if did, err := s.persist.compact(); err != nil && s.closeErr == nil {
					s.closeErr = err
				} else if did && err == nil {
					s.met.checkpoints.Add(1)
				}
			} else {
				// Workers are still draining in the background; capture what
				// they committed so far and let the WAL carry the rest.
				_ = s.persist.flush()
			}
			if err := s.persist.close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// persistLoop drives the two persistence cadences: frequent WAL fsyncs
// (cheap, no lease — the routine checkpoint) and rare compactions (drain
// barrier). Either ticker may be disabled (nil channel blocks forever).
func (s *Server) persistLoop(walSync, compactEvery time.Duration) {
	defer s.saveWG.Done()
	var flushC, compactC <-chan time.Time
	if walSync > 0 {
		t := time.NewTicker(walSync)
		defer t.Stop()
		flushC = t.C
	}
	if compactEvery > 0 {
		t := time.NewTicker(compactEvery)
		defer t.Stop()
		compactC = t.C
	}
	for {
		select {
		case <-flushC:
			// Best effort: a sticky WAL error resurfaces at compaction and
			// shutdown; the daemon keeps serving from memory.
			_ = s.persist.flush()
		case <-compactC:
			// Off-loop: compaction blocks on a universal drain, which can
			// far outlast the WAL-sync interval — flush ticks must keep
			// firing through it or the advertised crash-loss window
			// silently stretches to the drain time. One at a time; a tick
			// landing mid-compaction is dropped (the next one retries).
			if s.compacting.CompareAndSwap(false, true) {
				go func() {
					defer s.compacting.Store(false)
					_ = s.checkpointNow()
				}()
			}
		case <-s.stopSave:
			return
		}
	}
}

// gcLoop drives the background growth-management cadence: each tick runs
// one System.CollectGarbage pass (full sweep, window/budget, retention) and
// folds the outcome into the GC metrics. One pass at a time on this
// goroutine — a pass stalled on a retention lease simply absorbs the
// coalesced ticks behind it. Delete failures surface through the reuse
// eviction counters, never as loop failures.
func (s *Server) gcLoop(every time.Duration) {
	defer s.saveWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			t0 := time.Now()
			rep := s.sys.CollectGarbage()
			s.obsReg.ObserveGCSweep(time.Since(t0))
			s.met.gcRuns.Add(1)
			s.met.gcEvicted.Add(int64(len(rep.Evicted)))
			s.met.gcRetired.Add(int64(len(rep.Retired)))
		case <-s.stopSave:
			return
		}
	}
}

// shardGCLoop drives one shard's eviction scanner: each tick drains that
// shard's eviction-dirty feed (paths whose files changed since the last
// pass) and runs the index-driven eviction rules over just those paths,
// under a shard-local lease that excludes only universal barriers. Ticks
// on a clean shard are near-free, so every shard can afford the same
// cadence as the full pass.
func (s *Server) shardGCLoop(shard int, every time.Duration) {
	defer s.saveWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			t0 := time.Now()
			rep := s.sys.CollectShardGarbage(shard)
			s.obsReg.ObserveGCSweep(time.Since(t0))
			s.met.gcShardRuns.Add(1)
			s.met.gcEvicted.Add(int64(len(rep.Evicted)))
			s.met.gcRetired.Add(int64(len(rep.Retired)))
		case <-s.stopSave:
			return
		}
	}
}

// checkpointNow schedules a compaction as a write-set-universal task and
// waits for it: the scheduler lets every in-flight execution finish, keeps
// everything queued behind it parked, and only then snapshots and
// truncates the WAL — the drain barrier that keeps the repository+DFS
// snapshot pair consistent. (persister.compact quiesces the System too, so
// even compactions that bypass the scheduler — shutdown's — drain
// in-flight work.) Routine durability does NOT come through here: WAL
// flushes happen on their own cadence without any lease.
func (s *Server) checkpointNow() error {
	if s.persist == nil {
		// A client asking a stateless daemon to checkpoint is the client's
		// mistake (400), not a server fault.
		return badRequestError{errors.New("server: no state directory configured")}
	}
	type outcome struct {
		did bool
		err error
	}
	ch := make(chan outcome, 1)
	if err := s.sched.submit(restore.UniversalAccess(), func() {
		did, err := s.persist.compact()
		ch <- outcome{did, err}
	}); err != nil {
		return err
	}
	o := <-ch
	if o.err != nil {
		return o.err
	}
	if o.did {
		// Skipped no-op compactions (clean system) are not checkpoints;
		// this counter stays in step with WALStats.Compactions.
		s.met.checkpoints.Add(1)
	}
	return nil
}

// ---- wire types ----

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	Script string `json:"script"`
	// ReadOutputs additionally returns each output's rows as sorted TSV
	// lines.
	ReadOutputs bool `json:"readOutputs,omitempty"`
}

// QueryResponse is the reply to POST /v1/query.
type QueryResponse struct {
	// Deduped reports that this submission shared an identical in-flight
	// query's execution instead of running itself.
	Deduped bool                `json:"deduped"`
	Result  *restore.Result     `json:"result"`
	Rows    map[string][]string `json:"rows,omitempty"`
	// Trace is the submission's stage breakdown, present when the request
	// asked for it with ?trace=1. A deduped submission's trace shows
	// parse + flightWait (it ran no stages of its own); the leader's shows
	// the full pipeline.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

// ExplainRequest is the body of POST /v1/explain.
type ExplainRequest struct {
	Script string `json:"script"`
}

// UploadRequest is the body of POST /v1/datasets: a TSV dataset typed by a
// LOAD-AS style schema declaration.
type UploadRequest struct {
	Path       string   `json:"path"`
	Schema     string   `json:"schema"`
	Partitions int      `json:"partitions,omitempty"`
	Lines      []string `json:"lines"`
}

// DatasetInfo describes one DFS file in GET /v1/datasets.
type DatasetInfo struct {
	Path       string `json:"path"`
	Bytes      int64  `json:"bytes"`
	Records    int64  `json:"records"`
	Partitions int    `json:"partitions"`
}

// RepositoryResponse is the reply to GET /v1/repository: the entries in §3
// match-scan order (reusing the core Entry JSON form).
type RepositoryResponse struct {
	Entries          []*core.Entry `json:"entries"`
	TotalStoredBytes int64         `json:"totalStoredBytes"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// badRequestError marks client mistakes (unparsable script, bad schema) so
// they map to 400 instead of 500.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

// ---- handlers ----

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequestError{fmt.Errorf("bad request body: %w", err)})
		return
	}
	if req.Script == "" {
		writeError(w, badRequestError{errors.New("empty script")})
		return
	}
	wantTrace := r.URL.Query().Get("trace") == "1"
	// One retry, as a true last resort: flight sealing reads rows for every
	// joiner inside the leader's execution slot, so the fallback read that
	// could race eviction is nearly unreachable — but a leader whose own
	// in-slot read loses to a disjoint query's eviction still benefits from
	// re-submitting (typically rewritten against the repository) instead of
	// surfacing a 500 for a query that succeeded. The retry counts as a
	// fresh submission (with its own trace) so the metrics identity
	// submitted = executed + deduped + failed keeps holding.
	for attempt := 0; ; attempt++ {
		begin := time.Now()
		s.met.submitted.Add(1)
		s.met.rate.Mark(begin)
		tr := obs.NewTrace(begin)
		out := s.runQueryOnce(&req, tr)
		snap := tr.Snapshot()
		s.obsReg.ObserveQuery(time.Duration(snap.TotalNanos))
		if out.err != nil && out.retryable && attempt == 0 {
			// The failed attempt is a completed submission: it must reach
			// the slow-query ring and emit its completion line like any
			// other failure before the retry replaces it.
			s.finishQuery(&req, out, begin, snap)
			continue
		}
		s.finishQuery(&req, out, begin, snap)
		if out.err != nil {
			writeError(w, out.err)
			return
		}
		if wantTrace {
			out.resp.Trace = snap
		}
		writeJSON(w, http.StatusOK, out.resp)
		return
	}
}

// finishQuery folds one finished submission (success or failure) into the
// slow-query ring and emits its structured completion line.
func (s *Server) finishQuery(req *QueryRequest, out queryOutcome, begin time.Time, snap *obs.TraceSnapshot) {
	errMsg := ""
	if out.err != nil {
		errMsg = out.err.Error()
	}
	s.slow.Add(obs.SlowQuery{
		Script:    req.Script,
		FlightKey: out.flightKey,
		When:      begin,
		Deduped:   out.resp.Deduped,
		Error:     errMsg,
		Trace:     snap,
	})
	lvl := slog.LevelInfo
	attrs := []slog.Attr{
		slog.Bool("deduped", out.resp.Deduped),
		slog.Duration("total", time.Duration(snap.TotalNanos)),
		slog.String("stages", snap.String()),
	}
	if out.flightKey != "" {
		attrs = append(attrs, slog.String("flightKey", shortKey(out.flightKey)))
	}
	if out.err != nil {
		lvl = slog.LevelWarn
		attrs = append(attrs, slog.String("error", errMsg))
	}
	s.log.LogAttrs(context.Background(), lvl, "query", attrs...)
}

// shortKey abbreviates a flight key for log lines (full keys are 64 hex
// chars; 12 is plenty to correlate).
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// queryOutcome is one submission's final disposition: the response (on
// success), its flight key (empty when preparation failed), whether the
// error is worth one resubmission, and the failure-cause bucket it was
// counted under.
type queryOutcome struct {
	resp      QueryResponse
	flightKey string
	retryable bool
	err       error
}

// runQueryOnce runs one submission through single-flight and the scheduler,
// recording its stage spans on tr (and the registry's stage histograms).
// retryable reports an error worth one resubmission: the execution
// succeeded but its rows could not be read because a reused stored file was
// evicted in between.
//
// Every submission prepares (parse/plan/compile — lock-free) to derive its
// canonical flight key, so semantically identical scripts dedup onto one
// flight; only the flight leader's Prepared executes, joiners discard
// theirs. The trace belongs to this submission: a flight leader's closure
// records the queue and execution stages into it, a joiner records only
// parse and flightWait (its wall-clock is the leader's execution).
func (s *Server) runQueryOnce(req *QueryRequest, tr *obs.Trace) queryOutcome {
	t := time.Now()
	p, _, perr := s.sys.PrepareCached(req.Script)
	// The registry's parse histogram is recorded inside PrepareCached; only
	// the trace span is this caller's to add.
	tr.ObserveSince(obs.StageParse, t)
	if perr != nil {
		s.met.fail(failParse)
		return queryOutcome{err: badRequestError{perr}}
	}
	o := queryOutcome{flightKey: p.FlightKey()}
	tFlight := time.Now()
	out, shared := s.flights.do(p.FlightKey(), req.ReadOutputs, func(fl *flightHandle) flightOutcome {
		// Admission-time fast path: when the fingerprint index proves a
		// fresh whole-query match, serve the stored bytes right here —
		// no scheduler queueing, no lease, no execution. The flight is
		// sealed inside the pin window, so every joiner's rows come from
		// files that cannot be evicted mid-read.
		if fo, ok := s.tryHotServe(p, tr, fl); ok {
			return fo
		}
		tQueue := time.Now()
		ch := make(chan flightOutcome, 1)
		if serr := s.sched.submit(p.Access(), func() {
			s.obsReg.ObserveStage(obs.StageQueue, tr.ObserveSince(obs.StageQueue, tQueue))
			var fo flightOutcome
			fo.res, fo.err = s.sys.ExecutePreparedTraced(p, tr)
			if fo.err == nil {
				if h := s.testRowsHook; h != nil {
					h(fo.res)
				}
				// Seal before leaving the slot: no new joiner can arrive
				// after this, so the wantRows answer is final — every
				// member that asked for rows gets them read here, inside
				// the execution slot. The slot's access set keeps
				// conflicting work out, but a *disjoint* concurrent
				// query's eviction can still delete a stored file these
				// outputs alias (the execution's pins were released when
				// ExecutePrepared returned) — mark that case retryable.
				if fl.seal() {
					tRows := time.Now()
					fo.rows, fo.err = readRows(s.sys, fo.res)
					fo.rowsFailed = fo.err != nil
					s.obsReg.ObserveStage(obs.StageRows, tr.ObserveSince(obs.StageRows, tRows))
				}
			}
			ch <- fo
		}); serr != nil {
			return flightOutcome{err: serr}
		}
		return <-ch
	})
	if shared {
		// Joiner: its whole wait was the leader's execution.
		s.obsReg.ObserveStage(obs.StageFlightWait, tr.ObserveSince(obs.StageFlightWait, tFlight))
	}
	// Each submission lands in exactly one bucket — executed, deduped, or
	// failed — once its final outcome is known, so the identity
	// submitted = executed + deduped + failed holds: a joiner of a failed
	// flight counts as failed (not deduped), and a submission whose rows
	// read fails after a successful execution counts as failed too.
	if out.err != nil {
		cause := failExec
		if errors.Is(out.err, errQueueFull) || errors.Is(out.err, errShuttingDown) {
			cause = failShed
		}
		s.met.fail(cause)
		// rowsFailed: the execution itself succeeded but the post-execution
		// rows read lost a race with a disjoint query's eviction; one
		// resubmission re-executes (typically rewritten) instead of 500ing.
		o.retryable, o.err = out.rowsFailed, out.err
		return o
	}

	o.resp = QueryResponse{Deduped: shared, Result: out.res, Rows: out.rows}
	if req.ReadOutputs && o.resp.Rows == nil {
		// True last resort: flight sealing makes every joiner's interest
		// visible before the in-slot read, so this fallback should be
		// unreachable for joiners — it remains as defense in depth (e.g. a
		// future flight function that skips its seal point). Read through
		// the scheduler under a read-only access set on the actual output
		// files, so the read serializes with writers of those paths but
		// rides alongside disjoint work.
		reads := make([]string, 0, len(out.res.Outputs))
		for _, actual := range out.res.Outputs {
			reads = append(reads, actual)
		}
		tRows := time.Now()
		ch := make(chan flightOutcome, 1)
		if err := s.sched.submit(restore.AccessSet{Reads: reads}, func() {
			var fo flightOutcome
			fo.rows, fo.err = readRows(s.sys, out.res)
			ch <- fo
		}); err != nil {
			s.met.fail(failShed)
			o.err = err
			return o
		}
		lo := <-ch
		s.obsReg.ObserveStage(obs.StageRows, tr.ObserveSince(obs.StageRows, tRows))
		if lo.err != nil {
			// The aliased stored file was evicted between execution and
			// this read; let the caller resubmit once.
			s.met.fail(failExec)
			o.retryable, o.err = true, lo.err
			return o
		}
		o.resp.Rows = lo.rows
	}
	if shared {
		s.met.deduped.Add(1)
	} else {
		s.met.executed.Add(1)
	}
	return o
}

// tryHotServe attempts the admission-time result fast path for a flight
// leader: System.TryServeStored probes for a fresh whole-query match and,
// when it proves one, this callback seals the flight and reads rows while
// the matched entries are still pinned — a concurrently evicted entry fails
// its pin or freshness check inside the probe and lands on the normal
// scheduler path instead, never serving deleted bytes. ok=false means no
// serve happened and the caller must run the query normally.
func (s *Server) tryHotServe(p *restore.Prepared, tr *obs.Trace, fl *flightHandle) (flightOutcome, bool) {
	var fo flightOutcome
	res, ok := s.sys.TryServeStored(p, tr, func(r *restore.Result) error {
		// Sealing here (inside the pin window) fixes the set of joiners:
		// anyone who asked for rows is visible now, and the stored files
		// their rows alias cannot be evicted until the pins release.
		if !fl.seal() {
			return nil
		}
		tRows := time.Now()
		rows, err := readRows(s.sys, r)
		if err != nil {
			return err
		}
		s.obsReg.ObserveStage(obs.StageRows, tr.ObserveSince(obs.StageRows, tRows))
		fo.rows = rows
		return nil
	})
	if !ok {
		return flightOutcome{}, false
	}
	fo.res = res
	s.met.hot.Add(1)
	return fo, true
}

// readRows reads every output of res as sorted TSV lines.
func readRows(sys *restore.System, res *restore.Result) (map[string][]string, error) {
	rows := make(map[string][]string, len(res.Outputs))
	for p := range res.Outputs {
		lines, err := sys.ReadOutputTSV(res, p)
		if err != nil {
			return nil, err
		}
		rows[p] = lines
	}
	return rows, nil
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequestError{fmt.Errorf("bad request body: %w", err)})
		return
	}
	ex, err := s.sys.Explain(req.Script)
	if err != nil {
		writeError(w, badRequestError{err})
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequestError{fmt.Errorf("bad request body: %w", err)})
		return
	}
	if req.Path == "" || req.Schema == "" {
		writeError(w, badRequestError{errors.New("path and schema are required")})
		return
	}
	if strings.HasPrefix(req.Path, "restore/") {
		// The restore/ namespace holds repository-owned stored outputs;
		// letting a client overwrite one would silently corrupt every
		// future query rewritten to reuse it (Rule 4 only watches inputs).
		writeError(w, badRequestError{fmt.Errorf("path %q is in the reserved restore/ namespace", req.Path)})
		return
	}
	if _, err := restore.ParseSchema(req.Schema); err != nil {
		writeError(w, badRequestError{err})
		return
	}
	parts := req.Partitions
	if parts < 1 {
		parts = 1
	}
	// Dataset writes mutate the DFS (bumping versions Rule 4 watches), so
	// they serialize with queries touching the path — and only those:
	// the write access set covers just the uploaded path, so uploads ride
	// alongside disjoint query execution.
	ch := make(chan error, 1)
	if err := s.sched.submit(restore.AccessSet{Writes: []string{req.Path}}, func() {
		ch <- s.sys.LoadTSV(req.Path, req.Schema, req.Lines, parts)
	}); err != nil {
		writeError(w, err)
		return
	}
	if err := <-ch; err != nil {
		writeError(w, err)
		return
	}
	s.met.uploads.Add(1)
	st, err := s.sys.StatPath(req.Path)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DatasetInfo{Path: st.Path, Bytes: st.Bytes, Records: st.Records, Partitions: st.Partitions})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	out := []DatasetInfo{} // never null: clients iterate the array
	for _, p := range s.sys.FS().List(prefix) {
		st, err := s.sys.FS().StatFile(p)
		if err != nil {
			continue // deleted between List and Stat
		}
		out = append(out, DatasetInfo{Path: st.Path, Bytes: st.Bytes, Records: st.Records, Partitions: st.Partitions})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRepository(w http.ResponseWriter, r *http.Request) {
	repo := s.sys.Repository()
	writeJSON(w, http.StatusOK, RepositoryResponse{
		// Snapshot, not live pointers: encoding runs concurrently with
		// query execution mutating UseCount/LastUsedSeq.
		Entries:          repo.OrderedSnapshot(),
		TotalStoredBytes: repo.TotalStoredBytes(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.met.snapshot()
	snap.QueueDepth = s.sched.queueDepth()
	snap.Executing = s.sched.executing()
	snap.Workers = int64(s.sched.workers)
	if s.persist != nil {
		snap.WAL = s.persist.stats()
	}
	if s.fleet != nil {
		fs := s.fleet.Stats()
		snap.Fleet = &fs
	}
	snap.Reuse = s.sys.Stats()
	snap.Latency = summarize(s.obsReg.Query.Snapshot())
	snap.LeaseWait = summarize(s.obsReg.LeaseWait.Snapshot())
	repo := s.sys.Repository()
	snap.RepositoryEntries = repo.Len()
	snap.RepositoryStoredBytes = repo.TotalStoredBytes()
	writeJSON(w, http.StatusOK, snap)
}

// handleSlow serves the retained slowest completions, slowest first.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	out := s.slow.Snapshot()
	if out == nil {
		out = []obs.SlowQuery{} // never null: clients iterate the array
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if err := s.checkpointNow(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var bad badRequestError
	switch {
	case errors.As(err, &bad):
		code = http.StatusBadRequest
	case errors.Is(err, errQueueFull), errors.Is(err, errShuttingDown):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
