package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	restore "repro"
)

// End-to-end daemon coverage for the §5 growth-management subsystem: keep
// policies driven over HTTP, the background GC loop, and retention's
// crash-durability through the WAL.

// newPolicyServer boots an in-memory daemon over a System with the given
// policy and GC cadence.
func newPolicyServer(t *testing.T, policy restore.Policy, gcEvery time.Duration) (*Server, *Client) {
	t.Helper()
	sys := restore.New(restore.WithPolicy(policy))
	srv, err := New(Config{System: sys, GCInterval: gcEvery})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Close(context.Background()); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, NewClient(hs.URL)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const gcQueryTmpl = `A = load 'data/pages' as (user, views:int, revenue:double);
B = filter A by views > %d;
C = group B by user;
D = foreach C generate group, COUNT(B), SUM(B.revenue);
store D into '%s';`

// TestNonKeepAllPolicyOverHTTP drives Rules 1 and 2 through the daemon: a
// rejecting policy must leave no repository entries, no repository-owned
// temp files on the DFS, and a metrics trail showing the rejections.
func TestNonKeepAllPolicyOverHTTP(t *testing.T) {
	// Every materialization point of these queries copies or widens its
	// input (a keep-everything filter, then a column-duplicating project),
	// so Rule 1 deterministically rejects every candidate.
	_, c := newPolicyServer(t, restore.Policy{
		RequireSizeReduction: true,
		RequireTimeSaving:    true,
		CheckInputVersions:   true,
	}, 0)
	uploadPages(t, c)

	for i := 0; i < 3; i++ {
		q := fmt.Sprintf(`A = load 'data/pages' as (user, views:int, revenue:double);
B = filter A by views > -%d;
C = foreach B generate user, views, revenue, user, views;
store C into 'out/pol%d';`, i+1, i)
		resp, err := c.Submit(q, false)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if resp.Result.Registered != 0 {
			t.Errorf("query %d registered %d entries under a rejecting policy", i, resp.Result.Registered)
		}
	}

	repo, err := c.Repository()
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Entries) != 0 {
		t.Errorf("repository holds %d entries under a rejecting policy", len(repo.Entries))
	}
	// Rejected candidates' repository-owned files must be deleted from the
	// DFS — the accumulation the §5 rules exist to prevent.
	ds, err := c.Datasets("restore/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		var paths []string
		for _, d := range ds {
			paths = append(paths, d.Path)
		}
		t.Errorf("rejected candidates leaked temp files: %v", paths)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Reuse.Rejected == 0 {
		t.Error("metrics show no rejected candidates")
	}
	if m.Reuse.Registered != 0 {
		t.Errorf("metrics show %d registrations under a rejecting policy", m.Reuse.Registered)
	}
	// User outputs are untouched by the keep rules.
	if out, err := c.Datasets("out/"); err != nil || len(out) != 3 {
		t.Errorf("user outputs = %v (err %v), want 3", out, err)
	}
}

// TestGCLoopEvictsInBackground proves eviction no longer rides only on
// query traffic: after an input overwrite, the GC loop alone (no further
// queries) invalidates the stale entries.
func TestGCLoopEvictsInBackground(t *testing.T) {
	_, c := newPolicyServer(t, restore.Policy{KeepAll: true, CheckInputVersions: true}, 10*time.Millisecond)
	uploadPages(t, c)
	if _, err := c.Submit(fmt.Sprintf(gcQueryTmpl, 1, "out/bg"), false); err != nil {
		t.Fatal(err)
	}
	repo, err := c.Repository()
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Entries) == 0 {
		t.Fatal("premise: nothing stored")
	}

	// Overwrite the base input; no query follows, so only the GC loop can
	// notice.
	uploadPages(t, c)
	waitFor(t, "background eviction", func() bool {
		m, err := c.Metrics()
		if err != nil {
			return false
		}
		return m.RepositoryEntries == 0 && m.GCRuns > 0 && m.GCEvicted > 0
	})
}

// TestGCLoopRetiresOutputsAndSurvivesRestart drives retention end to end
// through the daemon — old out/ files retired by the background loop while
// fresh ones survive — and then restarts from the WAL to prove the
// retention table (NoteOutput/ForgetOutput records) is crash-durable: the
// recovered daemon neither resurrects the retired file nor forgets the ages
// of the surviving ones.
func TestGCLoopRetiresOutputsAndSurvivesRestart(t *testing.T) {
	stateDir := t.TempDir()
	// Sequences land at: ret_old=1, ret_fresh0..3=2..5. With the recovered
	// clock at 5 and a window of 3, exactly ret_old (age 4) has expired.
	policy := restore.Policy{KeepAll: true, CheckInputVersions: true, OutputRetention: 3}
	sys := restore.New(restore.WithPolicy(policy))
	d, base := startCrashable(t, Config{System: sys, StateDir: stateDir})
	c := NewClient(base)
	uploadPages(t, c)
	if _, err := c.Submit(fmt.Sprintf(gcQueryTmpl, 1, "out/ret_old"), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(fmt.Sprintf(gcQueryTmpl, 10+i, fmt.Sprintf("out/ret_fresh%d", i)), false); err != nil {
			t.Fatal(err)
		}
	}
	// No GC loop on this daemon: crash with the retention table only in
	// the WAL, then recover into a daemon WITH the loop.
	d.crash()

	sys2 := restore.New(restore.WithPolicy(policy))
	d2, base2 := startCrashable(t, Config{System: sys2, StateDir: stateDir, GCInterval: 10 * time.Millisecond})
	defer d2.crash()
	c2 := NewClient(base2)
	waitFor(t, "retention after recovery", func() bool {
		ds, err := c2.Datasets("out/")
		if err != nil {
			return false
		}
		for _, f := range ds {
			if f.Path == "out/ret_old" {
				return false
			}
		}
		return len(ds) > 0
	})
	ds, err := c2.Datasets("out/")
	if err != nil {
		t.Fatal(err)
	}
	fresh := 0
	for _, f := range ds {
		if strings.HasPrefix(f.Path, "out/ret_fresh") {
			fresh++
		}
	}
	if fresh != 4 {
		t.Errorf("retention after recovery kept %d fresh outputs, want 4 (%v)", fresh, ds)
	}
	m, err := c2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.GCOutputsRetired == 0 {
		t.Error("gcOutputsRetired not reported")
	}
}

// TestRepoBudgetOverHTTP holds the daemon's repository under a byte budget
// while a query stream tries to grow it: the per-query pass trims before
// each registration and the GC loop trims the tail end, so the repository
// settles at (not above) the budget with the most-recent entries surviving.
func TestRepoBudgetOverHTTP(t *testing.T) {
	// Each query stores two ~4-5KB sub-job outputs; the budget fits one
	// entry comfortably but never a whole stream's worth.
	const budget = 6000
	_, c := newPolicyServer(t, restore.Policy{KeepAll: true, CheckInputVersions: true, RepoBudgetBytes: budget}, 10*time.Millisecond)
	lines := make([]string, 240)
	for i := range lines {
		lines[i] = fmt.Sprintf("user%02d\t%d\t%d.5", i%40, i%13, i%7)
	}
	if _, err := c.Upload("data/pages", pagesSchema, 3, lines); err != nil {
		t.Fatal(err)
	}
	var peak int64
	for i := 0; i < 8; i++ {
		if _, err := c.Submit(fmt.Sprintf(gcQueryTmpl, i, fmt.Sprintf("out/bud%d", i)), false); err != nil {
			t.Fatal(err)
		}
		m, err := c.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if m.RepositoryStoredBytes > peak {
			peak = m.RepositoryStoredBytes
		}
	}
	if peak <= budget {
		t.Fatalf("premise: stream never pressured the %d-byte budget (peak %d)", budget, peak)
	}
	waitFor(t, "budget enforcement", func() bool {
		m, err := c.Metrics()
		if err != nil {
			return false
		}
		return m.RepositoryStoredBytes <= budget && m.Reuse.Evicted > 0 && m.RepositoryEntries > 0
	})
}
