package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Errors surfaced to HTTP handlers as 503s.
var (
	errShuttingDown = errors.New("server: shutting down")
	errQueueFull    = errors.New("server: execution queue full")
)

// scheduler serializes DFS-mutating work — query execution, dataset writes,
// checkpoints — on a single worker goroutine in FIFO order. Request
// goroutines keep parsing, planning, matching, and serving reads
// concurrently; only the phases that mutate the shared DFS and repository
// funnel through here. A bounded queue turns overload into backpressure
// (errQueueFull -> 503) instead of unbounded memory growth.
type scheduler struct {
	mu     sync.Mutex
	closed bool
	tasks  chan func()
	quit   chan struct{}
	done   chan struct{}
	depth  atomic.Int64
}

func newScheduler(queueDepth int) *scheduler {
	if queueDepth < 1 {
		queueDepth = 256
	}
	s := &scheduler{
		tasks: make(chan func(), queueDepth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *scheduler) run() {
	defer close(s.done)
	for {
		select {
		case fn := <-s.tasks:
			fn()
			s.depth.Add(-1)
		case <-s.quit:
			// Drain tasks accepted before close flipped, then exit.
			for {
				select {
				case fn := <-s.tasks:
					fn()
					s.depth.Add(-1)
				default:
					return
				}
			}
		}
	}
}

// submit enqueues fn for serialized execution. It never blocks: a full
// queue is reported as errQueueFull so callers can shed load.
func (s *scheduler) submit(fn func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShuttingDown
	}
	select {
	case s.tasks <- fn:
		s.depth.Add(1)
		return nil
	default:
		return errQueueFull
	}
}

// queueDepth reports the number of queued-or-running tasks.
func (s *scheduler) queueDepth() int64 { return s.depth.Load() }

// close stops accepting new work, runs everything already queued, and
// returns once the worker has exited. Idempotent.
func (s *scheduler) close() {
	s.closeWithin(context.Background())
}

// closeWithin is close bounded by ctx: it reports whether the drain
// finished. On timeout the worker keeps draining in the background (its
// waiters would otherwise hang), but the caller stops waiting — a daemon
// under a supervisor's kill grace period must checkpoint what it has rather
// than block on a deep queue.
func (s *scheduler) closeWithin(ctx context.Context) bool {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.quit)
	}
	select {
	case <-s.done:
		return true
	case <-ctx.Done():
		return false
	}
}
