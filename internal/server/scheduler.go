package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	restore "repro"
)

// Errors surfaced to HTTP handlers as 503s.
var (
	errShuttingDown = errors.New("server: shutting down")
	errQueueFull    = errors.New("server: execution queue full")
)

// task is one unit of DFS-mutating work awaiting dispatch.
type task struct {
	access restore.AccessSet
	fn     func()
}

// scheduler dispatches DFS-mutating work — query execution, dataset
// writes, checkpoints — onto a bounded worker pool, admitting concurrently
// only tasks whose declared read/write path sets are mutually disjoint
// (see conflict.go). Request goroutines keep parsing, planning, matching,
// and serving reads outside it; only mutating phases funnel through here.
//
// Admission is FIFO-fair with a bounded overtake window: a blocked head
// (conflicting with in-flight work) lets later path-disjoint tasks pass,
// but never more than barrier-window positions deep, and never a task that
// conflicts with anything queued ahead of it. A bounded queue turns
// overload into backpressure (errQueueFull -> 503) instead of unbounded
// memory growth. With workers=1 and window=1 the scheduler degrades to the
// old single-worker FIFO.
type scheduler struct {
	mu       sync.Mutex
	closed   bool
	queue    []*task
	inflight map[*task]struct{}
	running  int

	workers  int
	window   int
	maxQueue int

	depth   atomic.Int64 // queued + running (metrics)
	done    chan struct{}
	doneSet bool
}

func newScheduler(queueDepth, workers, window int) *scheduler {
	if queueDepth < 1 {
		queueDepth = 256
	}
	if workers < 1 {
		workers = 1
	}
	if window < 1 {
		window = 16
	}
	return &scheduler{
		inflight: make(map[*task]struct{}),
		workers:  workers,
		window:   window,
		maxQueue: queueDepth,
		done:     make(chan struct{}),
	}
}

// submit enqueues fn for execution under the given access set. It never
// blocks: a full queue is reported as errQueueFull so callers can shed
// load.
func (s *scheduler) submit(access restore.AccessSet, fn func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShuttingDown
	}
	// Bound the *queued* backlog only (as PR-1's channel did): running
	// tasks occupy worker slots, not queue capacity.
	if len(s.queue) >= s.maxQueue {
		return errQueueFull
	}
	s.queue = append(s.queue, &task{access: access, fn: fn})
	s.depth.Add(1)
	s.dispatchLocked()
	return nil
}

// dispatchLocked starts every currently-eligible task on its own worker
// slot. Called with mu held, on submit and on task completion.
func (s *scheduler) dispatchLocked() {
	sets := make([]restore.AccessSet, 0, len(s.inflight)+1)
	for t := range s.inflight {
		sets = append(sets, t.access)
	}
	for s.running < s.workers {
		i := nextDispatchable(s.queue, sets, s.window)
		if i < 0 {
			break
		}
		t := s.queue[i]
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.inflight[t] = struct{}{}
		sets = append(sets, t.access)
		s.running++
		go s.runTask(t)
	}
	s.maybeFinishLocked()
}

func (s *scheduler) runTask(t *task) {
	t.fn()
	s.mu.Lock()
	delete(s.inflight, t)
	s.running--
	s.depth.Add(-1)
	s.dispatchLocked()
	s.mu.Unlock()
}

// maybeFinishLocked closes done once the scheduler is closed and fully
// drained.
func (s *scheduler) maybeFinishLocked() {
	if s.closed && !s.doneSet && len(s.queue) == 0 && s.running == 0 {
		s.doneSet = true
		close(s.done)
	}
}

// queueDepth reports the number of queued-or-running tasks.
func (s *scheduler) queueDepth() int64 { return s.depth.Load() }

// executing reports the number of tasks running right now.
func (s *scheduler) executing() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.running)
}

// close stops accepting new work, runs everything already queued, and
// returns once the workers have drained. Idempotent.
func (s *scheduler) close() {
	s.closeWithin(context.Background())
}

// closeWithin is close bounded by ctx: it reports whether the drain
// finished. On timeout the workers keep draining in the background (their
// waiters would otherwise hang), but the caller stops waiting — a daemon
// under a supervisor's kill grace period must checkpoint what it has
// rather than block on a deep queue.
func (s *scheduler) closeWithin(ctx context.Context) bool {
	s.mu.Lock()
	s.closed = true
	s.maybeFinishLocked()
	s.mu.Unlock()
	select {
	case <-s.done:
		return true
	case <-ctx.Done():
		return false
	}
}
