package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	restore "repro"
	"repro/internal/obs"
)

// Client is a small typed client for a running restored daemon, used by
// restorectl's client mode, the server-mode benchmark, and the end-to-end
// tests.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7733".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) call(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit runs a query on the daemon.
func (c *Client) Submit(script string, readOutputs bool) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.call(http.MethodPost, "/v1/query", QueryRequest{Script: script, ReadOutputs: readOutputs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitTraced runs a query with ?trace=1: the response carries the
// submission's stage breakdown.
func (c *Client) SubmitTraced(script string, readOutputs bool) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.call(http.MethodPost, "/v1/query?trace=1", QueryRequest{Script: script, ReadOutputs: readOutputs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Explain dry-runs a query against the daemon's repository.
func (c *Client) Explain(script string) (*restore.Explanation, error) {
	var out restore.Explanation
	if err := c.call(http.MethodPost, "/v1/explain", ExplainRequest{Script: script}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Upload creates a dataset in the daemon's DFS from TSV lines.
func (c *Client) Upload(path, schema string, partitions int, lines []string) (*DatasetInfo, error) {
	var out DatasetInfo
	req := UploadRequest{Path: path, Schema: schema, Partitions: partitions, Lines: lines}
	if err := c.call(http.MethodPost, "/v1/datasets", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Datasets lists the daemon's DFS files with the given path prefix.
func (c *Client) Datasets(prefix string) ([]DatasetInfo, error) {
	var out []DatasetInfo
	path := "/v1/datasets"
	if prefix != "" {
		path += "?prefix=" + url.QueryEscape(prefix)
	}
	if err := c.call(http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Repository fetches the daemon's repository in match-scan order.
func (c *Client) Repository() (*RepositoryResponse, error) {
	var out RepositoryResponse
	if err := c.call(http.MethodGet, "/v1/repository", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the daemon's traffic and reuse counters.
func (c *Client) Metrics() (*MetricsSnapshot, error) {
	var out MetricsSnapshot
	if err := c.call(http.MethodGet, "/v1/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Slow fetches the daemon's retained slowest completions, slowest first.
func (c *Client) Slow() ([]obs.SlowQuery, error) {
	var out []obs.SlowQuery
	if err := c.call(http.MethodGet, "/v1/debug/slow", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Checkpoint forces a durable-state save on the daemon.
func (c *Client) Checkpoint() error {
	return c.call(http.MethodPost, "/v1/checkpoint", nil, nil)
}

// Health pings the daemon.
func (c *Client) Health() error {
	return c.call(http.MethodGet, "/v1/healthz", nil, nil)
}
