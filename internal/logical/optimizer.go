package logical

import (
	"repro/internal/expr"
	"repro/internal/physical"
)

// Optimize applies rule-based rewrites to the plan, mirroring the logical
// optimizer stage of the Pig compiler (§6.1 of the paper). The rules also
// canonicalize plan shape, which increases ReStore's match rate: two scripts
// that differ only in redundant projections or chained filters produce the
// same physical plan.
func Optimize(p *physical.Plan) error {
	changed := true
	for changed {
		changed = false
		if mergeAdjacentFilters(p) {
			changed = true
		}
		if removeIdentityForeach(p) {
			changed = true
		}
	}
	return nil
}

// mergeAdjacentFilters rewrites Filter(p2, Filter(p1, X)) into
// Filter(p1 and p2, X) when the inner filter has no other consumers.
func mergeAdjacentFilters(p *physical.Plan) bool {
	for _, outer := range p.Ops() {
		if outer.Kind != physical.OpFilter {
			continue
		}
		inner := p.Op(outer.Inputs[0])
		if inner == nil || inner.Kind != physical.OpFilter {
			continue
		}
		if len(p.Consumers(inner.ID)) != 1 {
			continue
		}
		outer.Pred = expr.Binary("and", inner.Pred, outer.Pred)
		outer.Inputs[0] = inner.Inputs[0]
		p.Remove(inner.ID)
		return true
	}
	return false
}

// removeIdentityForeach drops Foreach operators that project every input
// column unchanged and in order ("B = foreach A generate *;" patterns or
// compiler artifacts).
func removeIdentityForeach(p *physical.Plan) bool {
	for _, fe := range p.Ops() {
		if fe.Kind != physical.OpForeach || len(fe.Nested) > 0 {
			continue
		}
		in := p.Op(fe.Inputs[0])
		if in == nil || in.Schema.Len() == 0 || len(fe.Exprs) != in.Schema.Len() {
			continue
		}
		identity := true
		for i, e := range fe.Exprs {
			if e.Op != expr.OpCol || e.Index != i {
				identity = false
				break
			}
		}
		if !identity {
			continue
		}
		for _, c := range p.Consumers(fe.ID) {
			c.ReplaceInput(fe.ID, in.ID)
		}
		p.Remove(fe.ID)
		return true
	}
	return false
}
