// Package logical builds an executable physical plan from a parsed script:
// it resolves aliases, binds expressions against input schemas, propagates
// schemas through operators, prunes operators that do not reach a Store, and
// applies rule-based optimizations. As in Pig, every logical operator of our
// dialect maps 1:1 onto a physical operator, so the bound plan doubles as
// the physical plan the MapReduce compiler and ReStore operate on.
package logical

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/piglatin"
	"repro/internal/types"
)

// Build converts a script AST into a validated physical plan.
func Build(script *piglatin.Script) (*physical.Plan, error) {
	b := &builder{
		plan:    physical.NewPlan(),
		aliases: make(map[string]*physical.Operator),
	}
	stored := false
	for _, st := range script.Stmts {
		switch s := st.(type) {
		case *piglatin.AssignStmt:
			op, err := b.buildOp(s.Op, s.Alias)
			if err != nil {
				return nil, fmt.Errorf("logical: line %d (%s): %w", s.Line, s.Alias, err)
			}
			b.aliases[s.Alias] = op
		case *piglatin.StoreStmt:
			src, err := b.resolve(s.Alias)
			if err != nil {
				return nil, fmt.Errorf("logical: line %d: %w", s.Line, err)
			}
			b.plan.Add(&physical.Operator{
				Kind:   physical.OpStore,
				Path:   s.Path,
				Inputs: []int{src.ID},
				Schema: src.Schema,
			})
			stored = true
		case *piglatin.SplitStmt:
			// SPLIT compiles to one Filter per branch, fanning out from the
			// source — the plan-level equivalent of the Split tee plus
			// per-branch predicates.
			src, err := b.resolve(s.Src)
			if err != nil {
				return nil, fmt.Errorf("logical: line %d: %w", s.Line, err)
			}
			for _, br := range s.Branches {
				pred, err := br.Pred.Bind(src.Schema)
				if err != nil {
					return nil, fmt.Errorf("logical: line %d (%s): %w", s.Line, br.Alias, err)
				}
				b.aliases[br.Alias] = b.plan.Add(&physical.Operator{
					Kind:   physical.OpFilter,
					Inputs: []int{src.ID},
					Pred:   pred,
					Schema: src.Schema,
				})
			}
		default:
			return nil, fmt.Errorf("logical: unknown statement type %T", st)
		}
	}
	if !stored {
		return nil, fmt.Errorf("logical: script has no STORE statement; nothing to execute")
	}
	pruneDead(b.plan)
	if err := Optimize(b.plan); err != nil {
		return nil, err
	}
	if err := b.plan.Validate(); err != nil {
		return nil, fmt.Errorf("logical: built plan invalid: %w", err)
	}
	return b.plan, nil
}

type builder struct {
	plan    *physical.Plan
	aliases map[string]*physical.Operator
}

func (b *builder) resolve(alias string) (*physical.Operator, error) {
	op, ok := b.aliases[alias]
	if !ok {
		return nil, fmt.Errorf("undefined alias %q", alias)
	}
	return op, nil
}

func (b *builder) buildOp(node piglatin.OpNode, alias string) (*physical.Operator, error) {
	switch n := node.(type) {
	case *piglatin.LoadNode:
		return b.plan.Add(&physical.Operator{
			Kind:   physical.OpLoad,
			Path:   n.Path,
			Schema: n.Schema,
		}), nil

	case *piglatin.FilterNode:
		src, err := b.resolve(n.Src)
		if err != nil {
			return nil, err
		}
		pred, err := n.Pred.Bind(src.Schema)
		if err != nil {
			return nil, err
		}
		return b.plan.Add(&physical.Operator{
			Kind:   physical.OpFilter,
			Inputs: []int{src.ID},
			Pred:   pred,
			Schema: src.Schema,
		}), nil

	case *piglatin.ForeachNode:
		return b.buildForeach(n)

	case *piglatin.JoinNode:
		srcs, keys, err := b.bindJoinKeys(n.Srcs, n.Keys)
		if err != nil {
			return nil, err
		}
		schema := srcs[0].Schema.Concat(srcs[1].Schema)
		return b.plan.Add(&physical.Operator{
			Kind:   physical.OpJoin,
			Inputs: []int{srcs[0].ID, srcs[1].ID},
			Keys:   keys,
			Schema: schema,
		}), nil

	case *piglatin.CoGroupNode:
		srcs, keys, err := b.bindJoinKeys(n.Srcs, n.Keys)
		if err != nil {
			return nil, err
		}
		fields := []types.Field{{Name: "group", Kind: groupKeyKind(keys[0])}}
		inputs := make([]int, len(srcs))
		for i, s := range srcs {
			sub := s.Schema
			fields = append(fields, types.Field{Name: n.Srcs[i], Kind: types.KindBag, Sub: &sub})
			inputs[i] = s.ID
		}
		return b.plan.Add(&physical.Operator{
			Kind:   physical.OpCoGroup,
			Inputs: inputs,
			Keys:   keys,
			Schema: types.Schema{Fields: fields},
		}), nil

	case *piglatin.GroupNode:
		src, err := b.resolve(n.Src)
		if err != nil {
			return nil, err
		}
		var keys []*expr.Expr
		if !n.All {
			for _, k := range n.Keys {
				bk, err := k.Bind(src.Schema)
				if err != nil {
					return nil, err
				}
				keys = append(keys, bk)
			}
			if len(keys) == 0 {
				return nil, fmt.Errorf("group by with no keys")
			}
		}
		sub := src.Schema
		groupKind := types.KindString // GROUP ALL key is the string "all"
		if !n.All {
			groupKind = groupKeyKind(keys)
		}
		return b.plan.Add(&physical.Operator{
			Kind:   physical.OpGroup,
			Inputs: []int{src.ID},
			Keys:   [][]*expr.Expr{keys},
			Schema: types.Schema{Fields: []types.Field{
				{Name: "group", Kind: groupKind},
				{Name: n.Src, Kind: types.KindBag, Sub: &sub},
			}},
		}), nil

	case *piglatin.DistinctNode:
		src, err := b.resolve(n.Src)
		if err != nil {
			return nil, err
		}
		return b.plan.Add(&physical.Operator{
			Kind:   physical.OpDistinct,
			Inputs: []int{src.ID},
			Schema: src.Schema,
		}), nil

	case *piglatin.UnionNode:
		inputs := make([]int, len(n.Srcs))
		var schema types.Schema
		for i, alias := range n.Srcs {
			src, err := b.resolve(alias)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				schema = src.Schema
			} else if src.Schema.Len() != schema.Len() && src.Schema.Len() > 0 && schema.Len() > 0 {
				return nil, fmt.Errorf("union inputs have different arities (%d vs %d)", schema.Len(), src.Schema.Len())
			}
			inputs[i] = src.ID
		}
		return b.plan.Add(&physical.Operator{
			Kind:   physical.OpUnion,
			Inputs: inputs,
			Schema: schema,
		}), nil

	case *piglatin.OrderNode:
		src, err := b.resolve(n.Src)
		if err != nil {
			return nil, err
		}
		cols := make([]physical.SortCol, len(n.Cols))
		for i, c := range n.Cols {
			idx := c.Idx
			if c.Name != "" {
				idx = src.Schema.IndexOf(c.Name)
				if idx < 0 {
					return nil, fmt.Errorf("unknown sort column %q in schema %s", c.Name, src.Schema)
				}
			}
			if idx < 0 || (src.Schema.Len() > 0 && idx >= src.Schema.Len()) {
				return nil, fmt.Errorf("sort column $%d out of range for schema %s", idx, src.Schema)
			}
			cols[i] = physical.SortCol{Index: idx, Desc: c.Desc}
		}
		return b.plan.Add(&physical.Operator{
			Kind:     physical.OpOrder,
			Inputs:   []int{src.ID},
			SortCols: cols,
			Schema:   src.Schema,
		}), nil

	case *piglatin.LimitNode:
		src, err := b.resolve(n.Src)
		if err != nil {
			return nil, err
		}
		return b.plan.Add(&physical.Operator{
			Kind:   physical.OpLimit,
			Inputs: []int{src.ID},
			N:      n.N,
			Schema: src.Schema,
		}), nil

	default:
		return nil, fmt.Errorf("unknown operation %T", node)
	}
}

func (b *builder) bindJoinKeys(srcAliases []string, keyExprs [][]*expr.Expr) ([]*physical.Operator, [][]*expr.Expr, error) {
	srcs := make([]*physical.Operator, len(srcAliases))
	keys := make([][]*expr.Expr, len(srcAliases))
	arity := -1
	for i, alias := range srcAliases {
		src, err := b.resolve(alias)
		if err != nil {
			return nil, nil, err
		}
		srcs[i] = src
		keys[i] = make([]*expr.Expr, len(keyExprs[i]))
		for j, k := range keyExprs[i] {
			bk, err := k.Bind(src.Schema)
			if err != nil {
				return nil, nil, err
			}
			keys[i][j] = bk
		}
		if arity == -1 {
			arity = len(keys[i])
		} else if len(keys[i]) != arity {
			return nil, nil, fmt.Errorf("join/cogroup key arity mismatch: %d vs %d", arity, len(keys[i]))
		}
	}
	return srcs, keys, nil
}

// groupKeyKind infers the kind of the group column for single keys.
func groupKeyKind(keys []*expr.Expr) types.Kind {
	if len(keys) != 1 {
		return types.KindTuple
	}
	return types.KindNull
}

func (b *builder) buildForeach(n *piglatin.ForeachNode) (*physical.Operator, error) {
	src, err := b.resolve(n.Src)
	if err != nil {
		return nil, err
	}
	extSchema := src.Schema
	var nested []physical.NestedDef
	for _, nn := range n.Nested {
		idx := extSchema.IndexOf(nn.SrcAlias)
		if idx < 0 {
			return nil, fmt.Errorf("nested foreach: unknown bag %q in schema %s", nn.SrcAlias, extSchema)
		}
		bagField := extSchema.Fields[idx]
		if bagField.Kind != types.KindBag || bagField.Sub == nil {
			return nil, fmt.Errorf("nested foreach: %q is not a bag column", nn.SrcAlias)
		}
		elem := *bagField.Sub
		base := expr.Col(nn.SrcAlias)
		outElem := elem
		if nn.SrcField != "" {
			baseProj := expr.BagProj(base, nn.SrcField)
			fidx := elem.IndexOf(nn.SrcField)
			if fidx < 0 {
				return nil, fmt.Errorf("nested foreach: unknown field %q in bag %q", nn.SrcField, nn.SrcAlias)
			}
			outElem = types.Schema{Fields: []types.Field{elem.Fields[fidx]}}
			base = baseProj
		}
		boundBase, err := base.Bind(extSchema)
		if err != nil {
			return nil, err
		}
		def := physical.NestedDef{Alias: nn.Alias, Base: boundBase, Op: nn.Kind}
		if nn.Kind == "filter" {
			// The filter predicate is evaluated against the bag's element
			// schema (pre-projection: Pig filters the source bag's tuples).
			pred, err := nn.Pred.Bind(elem)
			if err != nil {
				return nil, err
			}
			if nn.SrcField != "" {
				// Filtering a projected bag: bind against the single field.
				pred, err = nn.Pred.Bind(outElem)
				if err != nil {
					return nil, err
				}
			}
			def.Pred = pred
		}
		nested = append(nested, def)
		sub := outElem
		extSchema.Fields = append(append([]types.Field(nil), extSchema.Fields...),
			types.Field{Name: nn.Alias, Kind: types.KindBag, Sub: &sub})
	}

	exprs := make([]*expr.Expr, len(n.Gens))
	names := make([]string, len(n.Gens))
	fields := make([]types.Field, len(n.Gens))
	for i, g := range n.Gens {
		bound, err := g.Expr.Bind(extSchema)
		if err != nil {
			return nil, err
		}
		exprs[i] = bound
		f := inferGenField(bound, extSchema, i)
		if g.As != "" {
			f.Name = g.As
		}
		names[i] = f.Name
		fields[i] = f
	}
	return b.plan.Add(&physical.Operator{
		Kind:   physical.OpForeach,
		Inputs: []int{src.ID},
		Exprs:  exprs,
		Names:  names,
		Nested: nested,
		Schema: types.Schema{Fields: fields},
	}), nil
}

// inferGenField derives the output column descriptor of one generate
// expression: plain column references keep their field (name, kind, nested
// schema); everything else gets a synthetic name.
func inferGenField(e *expr.Expr, in types.Schema, pos int) types.Field {
	if e.Op == expr.OpCol && e.Index >= 0 && e.Index < in.Len() {
		return in.Fields[e.Index]
	}
	return types.Field{Name: fmt.Sprintf("f%d", pos)}
}

// pruneDead removes operators that do not reach any Store.
func pruneDead(p *physical.Plan) {
	live := make(map[int]bool)
	for _, st := range p.Sinks() {
		for id := range p.ReachableFrom(st.ID) {
			live[id] = true
		}
	}
	for _, o := range p.Ops() {
		if !live[o.ID] {
			p.Remove(o.ID)
		}
	}
}
