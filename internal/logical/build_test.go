package logical

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/piglatin"
	"repro/internal/types"
)

func build(t *testing.T, src string) *physical.Plan {
	t.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := Build(script)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return plan
}

func buildErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Build(script); err == nil || !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("Build error = %v, want substring %q", err, wantSubstr)
	}
}

const q2 = `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'L3_out';
`

func TestBuildQ2Structure(t *testing.T) {
	plan := build(t, q2)
	kinds := map[physical.OpKind]int{}
	for _, o := range plan.Ops() {
		kinds[o.Kind]++
	}
	if kinds[physical.OpLoad] != 2 || kinds[physical.OpJoin] != 1 || kinds[physical.OpGroup] != 1 ||
		kinds[physical.OpForeach] != 3 || kinds[physical.OpStore] != 1 {
		t.Errorf("op census = %v", kinds)
	}
	// The group's bag column is named after the grouped alias C, and the
	// aggregate resolved est_revenue inside it.
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpGroup {
			if o.Schema.Fields[1].Name != "C" || o.Schema.Fields[1].Sub == nil {
				t.Errorf("group schema = %v", o.Schema)
			}
		}
	}
}

func TestBuildBindsAggregates(t *testing.T) {
	plan := build(t, q2)
	for _, o := range plan.Ops() {
		if o.Kind != physical.OpForeach || len(o.Exprs) != 2 {
			continue
		}
		c := o.Exprs[1].Canonical()
		if strings.Contains(c, "col(") {
			t.Errorf("unbound column survived binding: %q", c)
		}
	}
}

func TestBuildJoinSchemaConcat(t *testing.T) {
	plan := build(t, q2)
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpJoin {
			// beta(name) ++ B(user, est_revenue)
			if got := o.Schema.String(); got != "(name, user, est_revenue:float)" {
				t.Errorf("join schema = %s", got)
			}
		}
	}
}

func TestBuildPrunesDeadAliases(t *testing.T) {
	plan := build(t, `
A = load 'x' as (a);
dead = load 'y' as (b);
deader = foreach dead generate b;
store A into 'o';`)
	if plan.Len() != 2 {
		t.Errorf("dead ops survived: %s", plan)
	}
}

func TestBuildNoStoreFails(t *testing.T) {
	buildErr(t, `A = load 'x' as (a);`, "no STORE")
}

func TestBuildUndefinedAliasFails(t *testing.T) {
	buildErr(t, `B = filter nosuch by $0 == 1; store B into 'o';`, "undefined alias")
	buildErr(t, `A = load 'x'; store nosuch into 'o';`, "undefined alias")
}

func TestBuildUnknownColumnFails(t *testing.T) {
	buildErr(t, `A = load 'x' as (a, b);
B = filter A by missing == 1;
store B into 'o';`, "unknown column")
}

func TestBuildUnionArityMismatchFails(t *testing.T) {
	buildErr(t, `A = load 'x' as (a);
B = load 'y' as (a, b);
C = union A, B;
store C into 'o';`, "different arities")
}

func TestBuildOrderByNameAndPosition(t *testing.T) {
	plan := build(t, `A = load 'x' as (a, b, c);
B = order A by c desc, $0;
store B into 'o';`)
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpOrder {
			if len(o.SortCols) != 2 || o.SortCols[0].Index != 2 || !o.SortCols[0].Desc || o.SortCols[1].Index != 0 {
				t.Errorf("sort cols = %+v", o.SortCols)
			}
		}
	}
	buildErr(t, `A = load 'x' as (a);
B = order A by nosuch;
store B into 'o';`, "unknown sort column")
}

func TestBuildNestedForeach(t *testing.T) {
	plan := build(t, `A = load 'views' as (user, action:int);
B = group A by user;
C = foreach B {
  dst = distinct A.action;
  generate group, COUNT(dst);
};
store C into 'o';`)
	var fe *physical.Operator
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpForeach && len(o.Nested) > 0 {
			fe = o
		}
	}
	if fe == nil {
		t.Fatal("nested foreach not built")
	}
	if fe.Nested[0].Op != "distinct" || fe.Nested[0].Base.Canonical() != "$1.$1" {
		t.Errorf("nested def = %+v base=%q", fe.Nested[0], fe.Nested[0].Base.Canonical())
	}
	buildErr(t, `A = load 'views' as (user, action);
B = foreach A { d = distinct user; generate COUNT(d); };
store B into 'o';`, "not a bag")
}

func TestBuildGroupAllSchema(t *testing.T) {
	plan := build(t, `A = load 'x' as (v:int);
B = group A all;
C = foreach B generate COUNT(A), SUM(A.v);
store C into 'o';`)
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpGroup {
			if len(o.Keys) != 1 || len(o.Keys[0]) != 0 {
				t.Errorf("group all keys = %v", o.Keys)
			}
			if o.Schema.Fields[0].Kind != types.KindString {
				t.Errorf("group all key kind = %v", o.Schema.Fields[0].Kind)
			}
		}
	}
}

func TestOptimizerMergesFilters(t *testing.T) {
	plan := build(t, `A = load 'x' as (a:int, b:int);
B = filter A by a > 1;
C = filter B by b < 5;
store C into 'o';`)
	filters := 0
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpFilter {
			filters++
			if !strings.Contains(o.Pred.Canonical(), "and") {
				t.Errorf("merged predicate = %q", o.Pred.Canonical())
			}
		}
	}
	if filters != 1 {
		t.Errorf("filters after optimize = %d, want 1", filters)
	}
}

func TestOptimizerKeepsSharedFilters(t *testing.T) {
	// The inner filter feeds two consumers; merging would change semantics.
	plan := build(t, `A = load 'x' as (a:int);
B = filter A by a > 1;
C = filter B by a < 5;
store B into 'o1';
store C into 'o2';`)
	filters := 0
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpFilter {
			filters++
		}
	}
	if filters != 2 {
		t.Errorf("filters = %d, want 2 (inner is shared)", filters)
	}
}

func TestOptimizerRemovesIdentityForeach(t *testing.T) {
	plan := build(t, `A = load 'x' as (a, b);
B = foreach A generate a, b;
C = filter B by a == 1;
store C into 'o';`)
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpForeach {
			t.Errorf("identity foreach survived: %s", o)
		}
	}
}

func TestOptimizerKeepsReorderingForeach(t *testing.T) {
	plan := build(t, `A = load 'x' as (a, b);
B = foreach A generate b, a;
store B into 'o';`)
	found := false
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpForeach {
			found = true
		}
	}
	if !found {
		t.Error("column-swapping foreach was wrongly removed")
	}
}

func TestBuildGenExprBinding(t *testing.T) {
	plan := build(t, `A = load 'x' as (a:int, b:int);
B = foreach A generate a + b as s, a * 2 as d, 'tag' as tag;
store B into 'o';`)
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpForeach {
			if o.Schema.String() != "(s, d, tag)" {
				t.Errorf("foreach schema = %s", o.Schema)
			}
			if o.Exprs[0].Canonical() != "($0 + $1)" {
				t.Errorf("expr = %q", o.Exprs[0].Canonical())
			}
		}
	}
}

func TestForeachEvaluation(t *testing.T) {
	// End-to-end sanity of a built Foreach against a real tuple.
	plan := build(t, `A = load 'x' as (a:int, b:int);
B = foreach A generate a + b;
store B into 'o';`)
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpForeach {
			got := o.Exprs[0].Eval(types.Tuple{types.NewInt(2), types.NewInt(3)})
			if got.Int() != 5 {
				t.Errorf("eval = %v", got)
			}
		}
	}
	_ = expr.OpCol // keep expr imported for the helpers above
}

func TestBuildSplitInto(t *testing.T) {
	plan := build(t, `A = load 'x' as (a:int, b);
split A into lo if a < 5, hi if a >= 5;
C = foreach hi generate b;
store lo into 'o1';
store C into 'o2';`)
	filters := 0
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpFilter {
			filters++
		}
	}
	if filters != 2 {
		t.Errorf("split built %d filters, want 2", filters)
	}
	buildErr(t, `A = load 'x' as (a);
split A into b if nosuch == 1, c if a == 2;
store b into 'o';`, "unknown column")
	buildErr(t, `split nosuch into b if 1 == 1, c if 2 == 2; store b into 'o';`, "undefined alias")
}

func TestBuildSplitRuns(t *testing.T) {
	// Split branches behave like filters end-to-end (overlap allowed).
	plan := build(t, `A = load 'x' as (a:int);
split A into evens if a % 2 == 0, big if a > 2;
store evens into 'o1';
store big into 'o2';`)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}
