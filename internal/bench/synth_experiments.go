package bench

import (
	"fmt"

	"repro"
	"repro/internal/synth"
)

// Table2Synthetic verifies the synthetic data generator against the Table 2
// specification by measuring realized selectivities.
func Table2Synthetic(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Synthetic data fields: cardinality and realized selectivity",
		Columns: []string{"field", "cardinality", "target-sel", "measured-sel"},
	}
	s, err := newSynthSystem(cfg, baselineOpts()...)
	if err != nil {
		return nil, err
	}
	rows, err := s.FS().ReadAll(synth.Path)
	if err != nil {
		return nil, err
	}
	for i, spec := range synth.Table2() {
		hits := 0
		for _, r := range rows {
			if r[5+i].Int() == 0 {
				hits++
			}
		}
		measured := float64(hits) / float64(len(rows))
		t.AddRow(spec.Name,
			fmt.Sprintf("%.2f", spec.Cardinality),
			fmt.Sprintf("%.1f%%", spec.Selectivity*100),
			fmt.Sprintf("%.1f%%", measured*100))
	}
	t.AddNote("paper Table 2: selectivities 0.5%% to 60%%")
	return t, nil
}

// Fig16ProjectSweep reproduces Figure 16: overhead and speedup of storing
// and reusing the Project output of template QP as the number of projected
// fields grows (and with it the fraction of data retained).
func Fig16ProjectSweep(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "QP projection sweep: overhead and speedup vs retained data",
		Columns: []string{"fields", "retained", "overhead", "speedup"},
	}
	for k := 1; k <= 5; k++ {
		src, err := synth.QP(k, "out/qp")
		if err != nil {
			return nil, err
		}
		retained, ov, sp, err := sweepPoint(cfg, src)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.0f%%", retained*100), ratio(ov), ratio(sp))
	}
	t.AddNote("paper: overhead rises and speedup falls as projection keeps more data;")
	t.AddNote("net win if the Project halves the data and the output is reused once")
	return t, nil
}

// Fig17FilterSweep reproduces Figure 17: the same sweep over the Filter
// selectivities of Table 2 using template QF.
func Fig17FilterSweep(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "QF filter sweep: overhead and speedup vs selectivity",
		Columns: []string{"field", "selectivity", "overhead", "speedup"},
	}
	for i, spec := range synth.Table2() {
		src, err := synth.QF(6+i, "out/qf")
		if err != nil {
			return nil, err
		}
		_, ov, sp, err := sweepPoint(cfg, src)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name, fmt.Sprintf("%.1f%%", spec.Selectivity*100), ratio(ov), ratio(sp))
	}
	t.AddNote("paper: as the filter keeps more data, overhead rises and speedup falls")
	return t, nil
}

// sweepPoint measures one point of the §7.5 sweeps: baseline time, the
// generation run with a Store injected after the Project/Filter operator
// (Conservative Heuristic — exactly the paper's setup), and the reuse run.
// It returns the fraction of input bytes the materialized operator
// retained, the overhead ratio, and the speedup.
func sweepPoint(cfg Config, src string) (retained, overhead, speedup float64, err error) {
	base, err := newSynthSystem(cfg, baselineOpts()...)
	if err != nil {
		return 0, 0, 0, err
	}
	resBase, err := base.Execute(src)
	if err != nil {
		return 0, 0, 0, err
	}

	s, err := newSynthSystem(cfg, restore.WithHeuristic(restore.HeuristicConservative))
	if err != nil {
		return 0, 0, 0, err
	}
	gen, err := s.Execute(src)
	if err != nil {
		return 0, 0, 0, err
	}
	reuse, err := s.Execute(src)
	if err != nil {
		return 0, 0, 0, err
	}

	var inBytes int64
	for _, j := range gen.Jobs {
		inBytes += j.InputBytes
	}
	if inBytes > 0 {
		retained = float64(gen.InjectedBytes) / float64(inBytes)
	}
	overhead = safeRatio(gen.SimulatedTime, resBase.SimulatedTime)
	speedup = safeRatio(resBase.SimulatedTime, reuse.SimulatedTime)
	return retained, overhead, speedup, nil
}
