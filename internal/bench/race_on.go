//go:build race

package bench

// raceEnabled reports whether the race detector is on; the engine shape
// test skips its allocation assertion under race because sync.Pool
// deliberately drops entries there.
const raceEnabled = true
