package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunTiny smoke-tests every experiment end to end on the
// tiny configuration and sanity-checks the headline shapes.
func TestAllExperimentsRunTiny(t *testing.T) {
	cfg := TinyConfig()
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			table, err := exp.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", exp.ID, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", exp.ID)
			}
			out := table.String()
			if !strings.Contains(out, table.ID) {
				t.Error("rendered table missing ID")
			}
		})
	}
}

func cell(t *testing.T, table *Table, row int, col string) float64 {
	t.Helper()
	for i, c := range table.Columns {
		if c == col {
			v := strings.TrimSuffix(table.Rows[row][i], "%")
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("cell %s[%d] = %q: %v", col, row, table.Rows[row][i], err)
			}
			return f
		}
	}
	t.Fatalf("no column %q in %v", col, table.Columns)
	return 0
}

func TestFig9SpeedupShape(t *testing.T) {
	table, err := Fig9WholeJobReuse(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range table.Rows {
		if sp := cell(t, table, i, "speedup"); sp <= 1.0 {
			t.Errorf("%s: whole-job reuse speedup %.2f <= 1", table.Rows[i][0], sp)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	table, err := Fig10SubJobReuse(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range table.Rows {
		name := table.Rows[i][0]
		if sp := cell(t, table, i, "speedup"); sp <= 1.0 {
			t.Errorf("%s: sub-job reuse speedup %.2f <= 1", name, sp)
		}
		if ov := cell(t, table, i, "overhead"); ov < 1.0 {
			t.Errorf("%s: generation overhead %.2f < 1", name, ov)
		}
	}
}

func TestFig12LargerDataLargerSpeedup(t *testing.T) {
	table, err := Fig12Speedup(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's key scaling result: on average, speedup grows with data
	// size. Check the averages rather than each query.
	var s15, s150 float64
	for i := range table.Rows {
		s15 += cell(t, table, i, "15GB")
		s150 += cell(t, table, i, "150GB")
	}
	if s150 <= s15 {
		t.Errorf("avg speedup @150GB (%.1f) should exceed @15GB (%.1f)", s150, s15)
	}
}

func TestFig13AggressiveBeatsConservative(t *testing.T) {
	table, err := Fig13HeuristicsReuse(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var hc, ha, nh, no float64
	for i := range table.Rows {
		no += cell(t, table, i, "no-reuse")
		hc += cell(t, table, i, "conservative")
		ha += cell(t, table, i, "aggressive")
		nh += cell(t, table, i, "no-heuristic")
	}
	if ha > hc {
		t.Errorf("aggressive reuse (%.1f min) slower than conservative (%.1f min)", ha, hc)
	}
	if ha > no || hc > no {
		t.Error("reuse slower than no-reuse")
	}
	// HA should be within a whisker of NH (paper: identical).
	if ha > nh*1.15 {
		t.Errorf("aggressive (%.1f) much slower than no-heuristic (%.1f)", ha, nh)
	}
}

func TestTable1StoredBytesOrdering(t *testing.T) {
	table, err := Table1StoredBytes(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range table.Rows {
		name := table.Rows[i][0]
		hc := cell(t, table, i, "HC")
		ha := cell(t, table, i, "HA")
		nh := cell(t, table, i, "NH")
		if hc > ha+0.05 || ha > nh+0.05 {
			t.Errorf("%s: stored bytes not monotone HC(%.1f) <= HA(%.1f) <= NH(%.1f)", name, hc, ha, nh)
		}
	}
}

func TestFig16MonotoneTrends(t *testing.T) {
	table, err := Fig16ProjectSweep(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// As more fields are projected (more data retained), overhead must not
	// fall and speedup must not rise.
	// Tiny-scale runs are noisy (fixed costs dominate); allow small dips.
	// EXPERIMENTS.md records the default-scale run, where the trend is
	// strict.
	for i := 1; i < len(table.Rows); i++ {
		ovPrev, ov := cell(t, table, i-1, "overhead"), cell(t, table, i, "overhead")
		spPrev, sp := cell(t, table, i-1, "speedup"), cell(t, table, i, "speedup")
		if ov < ovPrev-0.10 {
			t.Errorf("QP overhead fell from %.2f to %.2f at %s fields", ovPrev, ov, table.Rows[i][0])
		}
		if sp > spPrev+0.15 {
			t.Errorf("QP speedup rose from %.2f to %.2f at %s fields", spPrev, sp, table.Rows[i][0])
		}
	}
}

func TestFig17MonotoneTrends(t *testing.T) {
	table, err := Fig17FilterSweep(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := len(table.Rows) - 1
	if sp0, spN := cell(t, table, 0, "speedup"), cell(t, table, first, "speedup"); sp0 < spN {
		t.Errorf("QF speedup should fall with selectivity: %.2f (0.5%%) < %.2f (60%%)", sp0, spN)
	}
	if ov0, ovN := cell(t, table, 0, "overhead"), cell(t, table, first, "overhead"); ov0 > ovN {
		t.Errorf("QF overhead should rise with selectivity: %.2f (0.5%%) > %.2f (60%%)", ov0, ovN)
	}
}

// TestMatchScalingShape pins the server-match headline: the indexed scan's
// full-repository (miss) probe counts stay flat while the naive path's grow
// linearly, and the indexed path is faster at every size. Wall-clock ratios
// are left to the recorded baseline (CI machines are noisy); probe counts
// are deterministic.
func TestMatchScalingShape(t *testing.T) {
	table, err := MatchScaling(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Rows alternate indexed/naive per size.
	if len(table.Rows)%2 != 0 || len(table.Rows) < 4 {
		t.Fatalf("unexpected row count %d", len(table.Rows))
	}
	var idxProbes, naiProbes []float64
	for i := 0; i < len(table.Rows); i += 2 {
		ip, np := cell(t, table, i, "probes_miss"), cell(t, table, i+1, "probes_miss")
		if ip >= np {
			t.Errorf("row %d: indexed probes %.0f >= naive %.0f", i, ip, np)
		}
		if iu, nu := cell(t, table, i, "miss_us"), cell(t, table, i+1, "miss_us"); iu >= nu {
			t.Errorf("row %d: indexed miss lookup %.1fus not faster than naive %.1fus", i, iu, nu)
		}
		idxProbes = append(idxProbes, ip)
		naiProbes = append(naiProbes, np)
	}
	last := len(naiProbes) - 1
	if naiProbes[last] < 2*naiProbes[0] {
		t.Errorf("naive probes did not grow with repository size: %v", naiProbes)
	}
	if idxProbes[last] > 2*idxProbes[0]+8 {
		t.Errorf("indexed probes grew with repository size: %v", idxProbes)
	}
}

// TestGCScalingShape pins the server-gc headline: per-mutation eviction
// scans and probes stay ~flat for the input-path-indexed pass while the
// naive sweep's grow linearly with repository size. Wall-clock ratios are
// left to the recorded baseline; the counters are deterministic.
func TestGCScalingShape(t *testing.T) {
	table, err := GCScaling(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Rows alternate indexed/naive per size.
	if len(table.Rows)%2 != 0 || len(table.Rows) < 4 {
		t.Fatalf("unexpected row count %d", len(table.Rows))
	}
	var idxScans, naiScans []float64
	for i := 0; i < len(table.Rows); i += 2 {
		is, ns := cell(t, table, i, "scans_rd"), cell(t, table, i+1, "scans_rd")
		if is >= ns {
			t.Errorf("row %d: indexed scans %.0f >= naive %.0f", i, is, ns)
		}
		if ip, np := cell(t, table, i, "probes_rd"), cell(t, table, i+1, "probes_rd"); ip >= np {
			t.Errorf("row %d: indexed probes %.0f >= naive %.0f", i, ip, np)
		}
		idxScans = append(idxScans, is)
		naiScans = append(naiScans, ns)
	}
	last := len(naiScans) - 1
	if naiScans[last] < 2*naiScans[0] {
		t.Errorf("naive scans did not grow with repository size: %v", naiScans)
	}
	if idxScans[last] > 2*idxScans[0]+4 {
		t.Errorf("indexed scans grew with repository size: %v", idxScans)
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig9"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment found")
	}
}

// TestEngineScalingShape pins the server-engine headline: the reduce-side
// ordering kernel (sorted runs + compiled-comparator k-way merge) must beat
// the serial concat-and-stable-sort reference by at least 2x wall-clock
// while allocating at most half its bytes, and every whole-job row on the
// default plane must beat the serial plane. The per-worker walls are NOT
// asserted monotone: on a single-core host the reduce pool cannot overlap
// partition work, so the sweep is ~flat there by design (the recorded
// baseline documents the curve of the machine that recorded it).
func TestEngineScalingShape(t *testing.T) {
	table, err := EngineDataPlane(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 + len(engineReduceWorkerSweep); len(table.Rows) != want {
		t.Fatalf("expected %d rows, got %d", want, len(table.Rows))
	}
	kSerial, kMerge := cell(t, table, 0, "wall_ms"), cell(t, table, 1, "wall_ms")
	if kMerge < 1 {
		kMerge = 1 // sub-millisecond kernel rounds round down to 0
	}
	if kSerial/kMerge < 2.0 {
		t.Errorf("kernel speedup %.2fx below the 2x floor (serial %.0fms, merge %.0fms)", kSerial/kMerge, kSerial, kMerge)
	}
	// Under the race detector sync.Pool deliberately drops entries, so the
	// pooled plane's allocation profile is meaningless there.
	if !raceEnabled {
		aSerial, aMerge := cell(t, table, 0, "alloc_mb"), cell(t, table, 1, "alloc_mb")
		if aMerge > aSerial/2 {
			t.Errorf("kernel allocation %.2fMB not cut >=50%% vs serial %.2fMB", aMerge, aSerial)
		}
	}
	jSerial := cell(t, table, 2, "wall_ms")
	for i := 3; i < len(table.Rows); i++ {
		w := cell(t, table, i, "wall_ms")
		if w >= jSerial {
			t.Errorf("parallel plane (workers=%s) wall %.0fms not under serial plane %.0fms", table.Rows[i][1], w, jSerial)
		}
	}
}

// TestShardScalingShape pins the server-shard headline: the all-disjoint
// workload must run strictly faster as the core's shard count grows, and
// the 8-shard row must beat the single-domain core by a clear margin. The
// asserted floor (2x) sits well under the recorded baseline (~3.8x) so the
// test survives scheduler jitter; the recorded curve is the number that
// matters.
func TestShardScalingShape(t *testing.T) {
	table, err := ShardScaling(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("expected 4 rows (shards 1/2/4/8), got %d", len(table.Rows))
	}
	walls := make([]float64, len(table.Rows))
	for i := range table.Rows {
		walls[i] = cell(t, table, i, "wall_ms")
		if sub, exe := cell(t, table, i, "submitted"), cell(t, table, i, "executed"); sub != exe {
			t.Errorf("row %d: %v submitted but %v executed; the disjoint stream must not dedup or shed", i, sub, exe)
		}
	}
	if walls[3] <= 0 || walls[0]/walls[3] < 2.0 {
		t.Errorf("8-shard speedup %.2fx below the 2x floor (walls %v)", walls[0]/walls[3], walls)
	}
	if walls[1] >= walls[0] || walls[3] >= walls[1] {
		t.Errorf("wall times not improving with shard count: %v", walls)
	}
}
