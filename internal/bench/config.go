package bench

import (
	"fmt"

	"repro"
	"repro/internal/pigmix"
	"repro/internal/synth"
)

// Config sizes the experiments. The defaults reproduce the paper's setup at
// laptop scale; tests shrink them further.
type Config struct {
	// Small and Large are the two PigMix instances (the paper's 15 GB and
	// 150 GB).
	Small pigmix.Instance
	Large pigmix.Instance
	// SynthRows sizes the §7.5 synthetic table; SynthTargetBytes is the
	// paper-scale size it represents (40 GB).
	SynthRows        int
	SynthTargetBytes int64
	// MatchRepoSizes are the repository populations the server-match
	// experiment sweeps (indexed vs naive match-scan cost).
	MatchRepoSizes []int
	// ObsPairs is how many back-to-back instrumented-vs-disabled round
	// pairs the server-obs experiment medians over. The measured cost is
	// microseconds against milliseconds of scheduling jitter, so the
	// recorded baseline needs many pairs; tests need few.
	ObsPairs int
	// EngineRows sizes the server-engine experiment: shuffle records in the
	// kernel rows and input rows in the whole-job rows. EngineRounds is how
	// many measured rounds each row totals over (after one warmup).
	EngineRows   int
	EngineRounds int
}

// DefaultConfig returns the full-size (laptop-scale) configuration.
func DefaultConfig() Config {
	return Config{
		Small:            pigmix.Instance15GB(),
		Large:            pigmix.Instance150GB(),
		SynthRows:        40_000,
		SynthTargetBytes: 40 << 30,
		MatchRepoSizes:   []int{50, 200, 800},
		ObsPairs:         12,
		EngineRows:       60_000,
		EngineRounds:     3,
	}
}

// TinyConfig returns a fast configuration for tests.
func TinyConfig() Config {
	small := pigmix.Instance15GB()
	small.Config.PageViewsRows = 800
	small.Config.Users = 80
	small.Config.PowerUsers = 12
	small.Config.WideRows = 160
	large := pigmix.Instance150GB()
	large.Config.PageViewsRows = 8_000
	large.Config.Users = 800
	large.Config.PowerUsers = 120
	large.Config.WideRows = 1_600
	return Config{
		Small:            small,
		Large:            large,
		SynthRows:        4_000,
		SynthTargetBytes: 40 << 30,
		MatchRepoSizes:   []int{20, 60},
		ObsPairs:         2,
		EngineRows:       8_000,
		EngineRounds:     2,
	}
}

// newPigmixSystem builds a ReStore system over a freshly generated PigMix
// instance, with the cluster clock extrapolating to the instance's
// paper-scale size.
func newPigmixSystem(inst pigmix.Instance, opts ...restore.Option) (*restore.System, error) {
	s := restore.New(opts...)
	if err := pigmix.Generate(s.FS(), inst.Config); err != nil {
		return nil, err
	}
	st, err := s.FS().StatFile(pigmix.PathPageViews)
	if err != nil {
		return nil, err
	}
	s.Cluster().ScaleFactor = float64(inst.TargetBytes) / float64(st.Bytes)
	return s, nil
}

// newSynthSystem builds a ReStore system over the §7.5 synthetic table.
func newSynthSystem(cfg Config, opts ...restore.Option) (*restore.System, error) {
	s := restore.New(opts...)
	if err := synth.Generate(s.FS(), cfg.SynthRows, 4, 11); err != nil {
		return nil, err
	}
	st, err := s.FS().StatFile(synth.Path)
	if err != nil {
		return nil, err
	}
	s.Cluster().ScaleFactor = float64(cfg.SynthTargetBytes) / float64(st.Bytes)
	return s, nil
}

// baselineOpts is the "No Data Reuse" configuration of §7: plain Pig.
func baselineOpts() []restore.Option {
	return []restore.Option{
		restore.WithReuse(false),
		restore.WithHeuristic(restore.HeuristicOff),
		restore.WithRegistration(false),
	}
}

// runQuery executes a named PigMix query, returning the result.
func runQuery(s *restore.System, name, out string) (*restore.Result, error) {
	src, err := pigmix.Query(name, out)
	if err != nil {
		return nil, err
	}
	res, err := s.Execute(src)
	if err != nil {
		return nil, fmt.Errorf("bench: query %s: %w", name, err)
	}
	return res, nil
}
