package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	restore "repro"
	"repro/internal/fleet"
	"repro/internal/server"
)

// fleetTaskDelay emulates per-task compute on a fleet worker for the
// server-fleet experiment: every map task and reduce partition sleeps this
// long while holding one of the worker's execution slots. With Slots=1 per
// worker this reproduces the remote-cluster regime where fleet size, not
// coordinator CPU, bounds throughput — which is exactly what adding workers
// buys, and makes the scaling measurable on any machine, single-core
// included: one worker serializes every task of every concurrent query
// behind one slot, N workers overlap N of them.
const fleetTaskDelay = 3 * time.Millisecond

// fleetQueriesPerClient is how many distinct queries each client submits in
// a server-fleet round. Distinct filter constants defeat single-flight and
// repository reuse, so every submission ships its full task set to the fleet.
const fleetQueriesPerClient = 4

// FleetScaling benchmarks the multi-process execution backend: the same
// all-distinct workload runs against daemons whose engines dispatch every
// map task and reduce partition to a fleet of 1, 2, and 3 HTTP workers
// (each a one-slot machine with emulated per-task compute). With one worker
// every task of every concurrent query serializes behind its single slot;
// with N workers the coordinator's round-robin overlaps N tasks. The
// speedup column is the headline: wall-clock of the one-worker fleet over
// this row's.
//
// The workload is deliberately reuse-free (distinct plans, disjoint output
// paths) so the table measures task-dispatch scaling and nothing else; the
// coordinator, codec, and shuffle path behave identically across rows.
func FleetScaling(cfg Config) (*Table, error) {
	table := &Table{
		ID:      "server-fleet",
		Title:   "fleet execution backend: wall-clock vs worker count",
		Columns: []string{"fleet", "clients", "submitted", "executed", "map_tasks", "shuffle_mb", "wall_ms", "qps", "speedup"},
	}
	const clients = 4
	var baseWall int64
	for _, workers := range []int{1, 2, 3} {
		wall, err := serverFleetRound(workers, clients, &baseWall, table)
		if err != nil {
			return nil, err
		}
		if workers == 1 {
			baseWall = wall
		}
	}
	table.AddNote("same workload, same coordinator, same wire codec on every row; only the number of one-slot worker processes changes")
	table.AddNote("per-task compute emulation %v on each worker slot, reproducing a cluster-bound deployment where fleet size caps concurrent tasks", fleetTaskDelay)
	return table, nil
}

// serverFleetRound boots `workers` one-slot fleet workers on loopback HTTP
// listeners, wires a daemon's engine to dispatch through a fleet coordinator
// over them, and drives the all-distinct query stream from concurrent
// clients. baseWall, when non-zero, is the one-worker wall time used for the
// speedup column.
func serverFleetRound(workers, clients int, baseWall *int64, table *Table) (wallMS int64, err error) {
	sys := restore.New()
	const rows = 600
	for cl := 0; cl < clients; cl++ {
		lines := make([]string, rows)
		for i := range lines {
			lines[i] = fmt.Sprintf("%d\t%d", (i*13+cl)%40, (i*7+cl)%100)
		}
		if err := sys.LoadTSV(fmt.Sprintf("c%d/in", cl), "k:int, v:int", lines, 3); err != nil {
			return 0, err
		}
	}

	addrs := make([]string, workers)
	stops := make([]func(), 0, workers)
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < workers; i++ {
		w := fleet.NewWorker(fleet.WorkerConfig{Slots: 1, TaskDelay: fleetTaskDelay})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		addrs[i] = "http://" + ln.Addr().String()
		w.SetAddr(addrs[i])
		hs := &http.Server{Handler: w.Handler()}
		serveErr := make(chan error, 1)
		go func() { serveErr <- hs.Serve(ln) }()
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = hs.Shutdown(ctx)
			<-serveErr
		})
	}

	coord := fleet.NewCoordinator(sys.Engine(), fleet.Config{
		FS:      sys.FS(),
		Workers: addrs,
		RepoCheck: func(path string) bool {
			return sys.Repository().ReferencesPath(path) || strings.HasPrefix(path, "restore/")
		},
	})
	sys.SetBackend(coord)

	srv, err := server.New(server.Config{System: sys, Workers: clients, BarrierWindow: 16, Fleet: coord})
	if err != nil {
		return 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
		<-serveErr
	}()

	base := "http://" + ln.Addr().String()
	start := time.Now()
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := server.NewClient(base)
			for q := 0; q < fleetQueriesPerClient; q++ {
				src := fmt.Sprintf(`A = load 'c%d/in' as (k:int, v:int);
B = filter A by v > %d;
C = group B by k;
D = foreach C generate group, COUNT(B), SUM(B.v);
store D into 'c%d/out/q%d';`, cl, q*17, cl, q)
				if _, err := c.Submit(src, false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, fmt.Errorf("bench: fleet round (workers=%d): %w", workers, err)
	}

	m, err := server.NewClient(base).Metrics()
	if err != nil {
		return 0, err
	}
	fs := coord.Stats()
	speedup := "1.00x"
	if *baseWall > 0 && wall.Milliseconds() > 0 {
		speedup = fmt.Sprintf("%.2fx", float64(*baseWall)/float64(wall.Milliseconds()))
	}
	table.AddRow(
		fmt.Sprintf("%d", workers),
		fmt.Sprintf("%d", clients),
		fmt.Sprintf("%d", m.QueriesSubmitted),
		fmt.Sprintf("%d", m.QueriesExecuted),
		fmt.Sprintf("%d", fs.MapTasksDispatched),
		fmt.Sprintf("%.2f", float64(fs.ShuffleBytesPulled)/(1<<20)),
		fmt.Sprintf("%d", wall.Milliseconds()),
		fmt.Sprintf("%.1f", float64(m.QueriesSubmitted)/wall.Seconds()),
		speedup,
	)
	return wall.Milliseconds(), nil
}
