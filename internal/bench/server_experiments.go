package bench

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	restore "repro"
	"repro/internal/pigmix"
	"repro/internal/server"
)

// ServerThroughput benchmarks restored in server mode, two ways:
//
//   - "variants": for each client count, a fresh daemon over the small
//     PigMix instance serves the §7.1 variant stream submitted by N
//     concurrent clients (every client submits every query, so identical
//     in-flight submissions pile up on single-flight and the repository).
//   - "disjoint": N clients each drive their own dataset and output
//     namespace — an all-disjoint workload — first through the old
//     single-worker FIFO configuration (workers=1, window=1), then through
//     the conflict-aware concurrent scheduler. The speedup between those
//     two rows is the scheduler's headline number: path-disjoint traffic
//     no longer serializes.
//
// The table reports wall-clock throughput, single-flight dedup, and the
// repository hit rate under traffic.
func ServerThroughput(cfg Config) (*Table, error) {
	table := &Table{
		ID:      "server",
		Title:   "restored server-mode throughput (variant stream + disjoint FIFO-vs-concurrent)",
		Columns: []string{"mode", "clients", "workers", "submitted", "executed", "deduped", "hit-rate", "wall_ms", "qps"},
	}
	for _, clients := range []int{1, 2, 4, 8} {
		if err := serverRound(cfg, clients, table); err != nil {
			return nil, err
		}
	}

	// Pool sized to the client count, not GOMAXPROCS, so recorded baselines
	// are comparable across machines: with cluster-latency emulation on
	// (see serverDisjointRound) workers spend most of their time waiting on
	// the emulated cluster, so even a single-core machine overlaps them; on
	// multicore the same pool also overlaps the CPU work.
	const disjointClients = 8
	workers := disjointClients
	fifoWall, err := serverDisjointRound(disjointClients, 1, 1, table)
	if err != nil {
		return nil, err
	}
	concWall, err := serverDisjointRound(disjointClients, workers, 16, table)
	if err != nil {
		return nil, err
	}
	if concWall > 0 {
		table.AddNote("disjoint workload: concurrent scheduler speedup %.2fx over FIFO (workers=%d, cluster-latency emulation %g)",
			float64(fifoWall)/float64(concWall), workers, disjointLatencyScale)
	}
	table.AddNote("executed < submitted is single-flight dedup; hit-rate is the repository reuse rate over executed queries")
	return table, nil
}

// disjointLatencyScale converts simulated job time into emulated remote
// cluster wall-clock wait for the disjoint rounds: ~114 s of simulated
// time per query becomes ~28 ms of real wait. This reproduces the paper's
// deployment regime (the daemon orchestrates a cluster that does the heavy
// lifting) so the FIFO-vs-concurrent comparison measures scheduling, not
// the local CPU count.
const disjointLatencyScale = 2.5e-4

// serverDisjointRound runs the all-disjoint workload: each client owns a
// private dataset and output namespace, and every query carries a distinct
// plan (different filter constants), so neither single-flight nor the
// repository can collapse the work — throughput is pure scheduling.
func serverDisjointRound(clients, workers, window int, table *Table) (wallMS int64, err error) {
	sys := restore.New(restore.WithJobLatency(disjointLatencyScale))
	const rows = 3000
	const queriesPerClient = 5
	for cl := 0; cl < clients; cl++ {
		lines := make([]string, rows)
		for i := range lines {
			lines[i] = fmt.Sprintf("%d\t%d", (i*13+cl)%50, (i*7+cl)%100)
		}
		if err := sys.LoadTSV(fmt.Sprintf("in/c%d", cl), "k:int, v:int", lines, 4); err != nil {
			return 0, err
		}
	}
	srv, err := server.New(server.Config{System: sys, Workers: workers, BarrierWindow: window})
	if err != nil {
		return 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
		<-serveErr
	}()

	base := "http://" + ln.Addr().String()
	start := time.Now()
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := server.NewClient(base)
			for q := 0; q < queriesPerClient; q++ {
				src := fmt.Sprintf(`A = load 'in/c%d' as (k:int, v:int);
B = filter A by v > %d;
C = group B by k;
D = foreach C generate group, COUNT(B), SUM(B.v);
store D into 'out/c%d/q%d';`, cl, q*11, cl, q)
				if _, err := c.Submit(src, false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, fmt.Errorf("bench: disjoint round (workers=%d): %w", workers, err)
	}

	m, err := server.NewClient(base).Metrics()
	if err != nil {
		return 0, err
	}
	mode := "disjoint-fifo"
	if workers > 1 {
		mode = "disjoint-conc"
	}
	table.AddRow(
		mode,
		fmt.Sprintf("%d", clients),
		fmt.Sprintf("%d", workers),
		fmt.Sprintf("%d", m.QueriesSubmitted),
		fmt.Sprintf("%d", m.QueriesExecuted),
		fmt.Sprintf("%d", m.QueriesDeduped),
		fmt.Sprintf("%.0f%%", 100*m.Reuse.HitRate),
		fmt.Sprintf("%d", wall.Milliseconds()),
		fmt.Sprintf("%.1f", float64(m.QueriesSubmitted)/wall.Seconds()),
	)
	return wall.Milliseconds(), nil
}

// ServerCheckpointCost measures what durability costs per interval as the
// DFS grows. Each round adds a fixed mutation volume (one new dataset +
// two queries over it) to a daemon with a durable state directory, then
// reads two counters from /v1/metrics:
//
//   - wal_kb: WAL bytes appended during the round — the routine
//     checkpoint's cost, O(mutations in the interval);
//   - snap_kb: snapshot bytes written by forcing a compaction after the
//     round — the pre-WAL full-checkpoint cost, O(total DFS size).
//
// The wal/snap column collapsing toward zero while dfs_kb grows is the
// incremental-persistence headline. A final stall probe runs long
// (cluster-latency-emulated) queries and times a mid-stream compaction:
// that drain stall is what every periodic checkpoint used to pay, and
// routine WAL durability now avoids.
func ServerCheckpointCost(cfg Config) (*Table, error) {
	table := &Table{
		ID:      "server-ckpt",
		Title:   "checkpoint cost per interval: WAL (O(mutations)) vs snapshot (O(DFS))",
		Columns: []string{"round", "dfs_kb", "wal_kb", "snap_kb", "wal/snap"},
	}
	stateDir, err := os.MkdirTemp("", "restore-bench-ckpt-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(stateDir)

	srv, err := server.New(server.Config{StateDir: stateDir})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
		<-serveErr
	}()

	c := server.NewClient("http://" + ln.Addr().String())
	const rounds = 6
	const rowsPerRound = 400
	var lastWAL, lastSnap, firstWAL, firstSnap int64
	for r := 0; r < rounds; r++ {
		m0, err := c.Metrics()
		if err != nil {
			return nil, err
		}
		lines := make([]string, rowsPerRound)
		for i := range lines {
			lines[i] = fmt.Sprintf("%d\t%d", (i*13+r)%50, (i*7+r)%100)
		}
		if _, err := c.Upload(fmt.Sprintf("in/ck%d", r), "k:int, v:int", 2, lines); err != nil {
			return nil, err
		}
		for q := 0; q < 2; q++ {
			src := fmt.Sprintf(`A = load 'in/ck%d' as (k:int, v:int);
B = filter A by v > %d;
C = group B by k;
D = foreach C generate group, COUNT(B), SUM(B.v);
store D into 'out/ck%d/q%d';`, r, q*17, r, q)
			if _, err := c.Submit(src, false); err != nil {
				return nil, err
			}
		}
		m1, err := c.Metrics()
		if err != nil {
			return nil, err
		}
		// Force a compaction so snap bytes reflect "a full checkpoint right
		// now"; the WAL delta above is what routine durability wrote instead.
		if err := c.Checkpoint(); err != nil {
			return nil, err
		}
		m2, err := c.Metrics()
		if err != nil {
			return nil, err
		}
		walBytes := m1.WAL.Bytes - m0.WAL.Bytes
		snapBytes := m2.WAL.CompactBytes - m1.WAL.CompactBytes
		var dfsBytes int64
		ds, err := c.Datasets("")
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			dfsBytes += d.Bytes
		}
		lastWAL, lastSnap = walBytes, snapBytes
		if r == 0 {
			firstWAL, firstSnap = walBytes, snapBytes
		}
		ratio := 0.0
		if snapBytes > 0 {
			ratio = float64(walBytes) / float64(snapBytes)
		}
		table.AddRow(
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%.1f", float64(dfsBytes)/1024),
			fmt.Sprintf("%.1f", float64(walBytes)/1024),
			fmt.Sprintf("%.1f", float64(snapBytes)/1024),
			fmt.Sprintf("%.3f", ratio),
		)
	}
	if firstWAL > 0 && firstSnap > 0 {
		table.AddNote("growth over %d rounds: wal %.2fx (fixed per-interval mutations), snapshot %.2fx (tracks total DFS size)",
			rounds, float64(lastWAL)/float64(firstWAL), float64(lastSnap)/float64(firstSnap))
	}

	stall, err := checkpointStallProbe()
	if err != nil {
		return nil, err
	}
	table.AddNote("drain-stall probe under in-flight cluster-latency queries: forced compaction stalled %d ms; routine WAL durability stalls 0 ms (no drain lease)", stall.Milliseconds())
	return table, nil
}

// checkpointStallProbe boots a daemon with remote-cluster latency
// emulation, saturates it with in-flight disjoint queries, and times a
// compaction submitted mid-stream: the universal task must wait for every
// execution to finish, which is exactly the stall the old
// full-snapshot-per-interval persister paid on every save.
func checkpointStallProbe() (time.Duration, error) {
	stateDir, err := os.MkdirTemp("", "restore-bench-stall-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(stateDir)
	sys := restore.New(restore.WithJobLatency(disjointLatencyScale * 4))
	const clients = 4
	for cl := 0; cl < clients; cl++ {
		lines := make([]string, 2000)
		for i := range lines {
			lines[i] = fmt.Sprintf("%d\t%d", (i*13+cl)%50, (i*7+cl)%100)
		}
		if err := sys.LoadTSV(fmt.Sprintf("in/st%d", cl), "k:int, v:int", lines, 4); err != nil {
			return 0, err
		}
	}
	srv, err := server.New(server.Config{System: sys, StateDir: stateDir, Workers: clients})
	if err != nil {
		return 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
		<-serveErr
	}()

	base := "http://" + ln.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := server.NewClient(base)
			for q := 0; q < 3; q++ {
				src := fmt.Sprintf(`A = load 'in/st%d' as (k:int, v:int);
B = filter A by v > %d;
C = group B by k;
D = foreach C generate group, SUM(B.v);
store D into 'out/st%d/q%d';`, cl, q*11, cl, q)
				if _, err := c.Submit(src, false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Let the workers fill with in-flight executions, then force the drain.
	time.Sleep(30 * time.Millisecond)
	start := time.Now()
	err = server.NewClient(base).Checkpoint()
	stall := time.Since(start)
	wg.Wait()
	close(errs)
	if err != nil {
		return 0, err
	}
	for err := range errs {
		return 0, fmt.Errorf("bench: stall probe: %w", err)
	}
	return stall, nil
}

func serverRound(cfg Config, clients int, table *Table) error {
	sys, err := newPigmixSystem(cfg.Small)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{System: sys})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
		<-serveErr
	}()

	base := "http://" + ln.Addr().String()
	names := pigmix.VariantNames()
	start := time.Now()
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := server.NewClient(base)
			for _, name := range names {
				src, err := pigmix.Query(name, "out/"+name)
				if err != nil {
					errs <- err
					return
				}
				if _, err := c.Submit(src, false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return fmt.Errorf("bench: server round (%d clients): %w", clients, err)
	}

	m, err := server.NewClient(base).Metrics()
	if err != nil {
		return err
	}
	qps := float64(m.QueriesSubmitted) / wall.Seconds()
	table.AddRow(
		"variants",
		fmt.Sprintf("%d", clients),
		fmt.Sprintf("%d", m.Workers),
		fmt.Sprintf("%d", m.QueriesSubmitted),
		fmt.Sprintf("%d", m.QueriesExecuted),
		fmt.Sprintf("%d", m.QueriesDeduped),
		fmt.Sprintf("%.0f%%", 100*m.Reuse.HitRate),
		fmt.Sprintf("%d", wall.Milliseconds()),
		fmt.Sprintf("%.1f", qps),
	)
	return nil
}
