package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/pigmix"
	"repro/internal/server"
)

// ServerThroughput benchmarks restored in server mode: for each client
// count, a fresh daemon over the small PigMix instance serves the §7.1
// variant stream submitted by N concurrent clients (every client submits
// every query, so identical in-flight submissions pile up). The table
// reports wall-clock throughput, single-flight dedup, and the repository
// hit rate under traffic.
func ServerThroughput(cfg Config) (*Table, error) {
	table := &Table{
		ID:      "server",
		Title:   "restored server-mode throughput (PigMix variant stream)",
		Columns: []string{"clients", "submitted", "executed", "deduped", "hit-rate", "wall_ms", "qps"},
	}
	for _, clients := range []int{1, 2, 4, 8} {
		if err := serverRound(cfg, clients, table); err != nil {
			return nil, err
		}
	}
	table.AddNote("executed < submitted is single-flight dedup; hit-rate is the repository reuse rate over executed queries")
	return table, nil
}

func serverRound(cfg Config, clients int, table *Table) error {
	sys, err := newPigmixSystem(cfg.Small)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{System: sys})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
		<-serveErr
	}()

	base := "http://" + ln.Addr().String()
	names := pigmix.VariantNames()
	start := time.Now()
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := server.NewClient(base)
			for _, name := range names {
				src, err := pigmix.Query(name, "out/"+name)
				if err != nil {
					errs <- err
					return
				}
				if _, err := c.Submit(src, false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return fmt.Errorf("bench: server round (%d clients): %w", clients, err)
	}

	m, err := server.NewClient(base).Metrics()
	if err != nil {
		return err
	}
	qps := float64(m.QueriesSubmitted) / wall.Seconds()
	table.AddRow(
		fmt.Sprintf("%d", clients),
		fmt.Sprintf("%d", m.QueriesSubmitted),
		fmt.Sprintf("%d", m.QueriesExecuted),
		fmt.Sprintf("%d", m.QueriesDeduped),
		fmt.Sprintf("%.0f%%", 100*m.Reuse.HitRate),
		fmt.Sprintf("%d", wall.Milliseconds()),
		fmt.Sprintf("%.1f", qps),
	)
	return nil
}
