package bench

import (
	"fmt"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/pigmix"
)

// AblationRepoOrdering tests the §3 repository ordering rules: with both a
// whole-join entry and its subsumed projection sub-job stored, the ordered
// scan must pick the join (maximum saving) for a query containing both,
// while a reversed scan settles for the projection.
func AblationRepoOrdering(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablation-order",
		Title:   "Repository ordering: first match under ordered vs reversed scan",
		Columns: []string{"scan-order", "picked-entry", "ops-matched", "reuse-minutes"},
	}

	// Populate a system by running L3 with the aggressive heuristic: the
	// repository then holds the join job's output (whole job, as the
	// workflow temp) and the projection sub-jobs it subsumes.
	s, err := newPigmixSystem(cfg.Large, restore.WithHeuristic(restore.HeuristicAggressive))
	if err != nil {
		return nil, err
	}
	if _, err := runQuery(s, "L3", "out/l3_populate"); err != nil {
		return nil, err
	}

	// Reuse run with the proper ordering.
	resOrdered, err := runQuery(s, "L3", "out/l3_ordered")
	if err != nil {
		return nil, err
	}

	entries := s.Repository().Ordered()
	if len(entries) < 2 {
		return nil, fmt.Errorf("bench: ordering ablation needs >=2 entries, have %d", len(entries))
	}
	best := entries[0]
	worst := entries[len(entries)-1]
	t.AddRow("ordered (paper §3)", describeEntry(best), fmt.Sprintf("%d", best.Plan.Len()-1), minutes(resOrdered.SimulatedTime))

	// Simulate a reversed repository: only the smallest entry available.
	s2, err := newPigmixSystem(cfg.Large, restore.WithHeuristic(restore.HeuristicOff))
	if err != nil {
		return nil, err
	}
	if _, err := runQuery(s2, "L3", "out/l3_populate2"); err != nil {
		return nil, err
	}
	// Drop every entry except ones no larger than the smallest, emulating a
	// scan that stops at the worst match first.
	minSize := worst.Plan.Len()
	for _, e := range s2.Repository().All() {
		if e.Plan.Len() > minSize {
			s2.Repository().Remove(e.ID)
		}
	}
	resReversed, err := runQuery(s2, "L3", "out/l3_reversed")
	if err != nil {
		return nil, err
	}
	t.AddRow("reversed (worst-first)", describeEntry(worst), fmt.Sprintf("%d", worst.Plan.Len()-1), minutes(resReversed.SimulatedTime))
	t.AddNote("ordered scan must be at least as fast: subsumers first (§3 rule 1)")
	return t, nil
}

func describeEntry(e *core.Entry) string {
	kinds := make([]string, 0, 4)
	for _, o := range e.Plan.Ops() {
		kinds = append(kinds, string(o.Kind)[:2])
	}
	return strings.Join(kinds, ">")
}

// AblationEviction compares repository growth and reuse under the §5
// policies over a stream of variant queries.
func AblationEviction(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablation-evict",
		Title:   "Repository policies over the variant query stream",
		Columns: []string{"policy", "entries", "stored-GB", "rewrites", "stream-minutes"},
	}
	policies := []struct {
		label string
		p     restore.Policy
	}{
		{"keep-all (paper)", core.DefaultPolicy()},
		{"rule1 size-reduction", restore.Policy{RequireSizeReduction: true, CheckInputVersions: true}},
		{"rule3 window=2", restore.Policy{KeepAll: true, EvictionWindow: 2, CheckInputVersions: true}},
	}
	for _, pol := range policies {
		s, err := newPigmixSystem(cfg.Large,
			restore.WithHeuristic(restore.HeuristicAggressive),
			restore.WithPolicy(pol.p))
		if err != nil {
			return nil, err
		}
		var total time.Duration
		rewrites := 0
		for i, name := range pigmix.VariantNames() {
			res, err := runQuery(s, name, fmt.Sprintf("out/%s_%d", name, i))
			if err != nil {
				return nil, err
			}
			total += res.SimulatedTime
			rewrites += len(res.Rewrites)
		}
		scale := s.Cluster().ScaleFactor
		t.AddRow(pol.label,
			fmt.Sprintf("%d", s.Repository().Len()),
			gb(float64(s.Repository().TotalStoredBytes())*scale),
			fmt.Sprintf("%d", rewrites),
			minutes(total))
	}
	t.AddNote("tighter policies shrink the repository at some cost in reuse")
	return t, nil
}
