package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/physical"
	"repro/internal/piglatin"
)

// MatchScaling measures the matcher's per-query probe cost as the
// repository grows — the server's hottest read path under sustained traffic
// (every submission runs FindBestMatch in the rewriter's repeated-scan
// loop, against a repository the paper expects to hold hundreds of sub-job
// entries). For each repository size it times the indexed scan
// (fingerprint-probe + collision verification) against the retained naive
// reference scan, on two inputs:
//
//   - "hit": a query containing one stored plan — the scan stops at the
//     matching entry;
//   - "miss": a query matching nothing — both paths must rule out every
//     entry, the worst case the index exists for.
//
// probes_* count pairwise-traversal attempts per lookup: sublinear
// (~constant) for the indexed path, linear in repository size for the
// naive one.
func MatchScaling(cfg Config) (*Table, error) {
	table := &Table{
		ID:      "server-match",
		Title:   "match-scan cost vs repository size: fingerprint index vs naive scan",
		Columns: []string{"entries", "mode", "hit_us", "miss_us", "probes_hit", "probes_miss"},
	}
	sizes := cfg.MatchRepoSizes
	if len(sizes) == 0 {
		sizes = []int{50, 200, 800}
	}
	type speedup struct {
		n    int
		x    float64
		pIdx int64
		pNai int64
	}
	var speedups []speedup
	for _, n := range sizes {
		repo, err := matchBenchRepo(n)
		if err != nil {
			return nil, err
		}
		// The hit input contains the chain of the last-added entry (distinct
		// constants make it the only match); the miss input's constant is
		// outside every entry's range.
		hit, err := matchBenchInput(n - 1)
		if err != nil {
			return nil, err
		}
		miss, err := matchBenchInput(-7)
		if err != nil {
			return nil, err
		}
		rounds := 400_000 / (n + 100) // keep wall time flat-ish across sizes
		if rounds < 20 {
			rounds = 20
		}
		var row [2]struct {
			hitUS, missUS         float64
			probesHit, probesMiss int64
		}
		for mode := 0; mode < 2; mode++ {
			find := core.FindBestMatchProbed
			if mode == 1 {
				find = core.FindBestMatchNaive
			}
			var stHit, stMiss core.MatchStats
			start := time.Now()
			for i := 0; i < rounds; i++ {
				if _, ok := find(hit, repo, nil, &stHit); !ok {
					return nil, fmt.Errorf("bench: server-match: hit input missed at %d entries", n)
				}
			}
			hitUS := float64(time.Since(start).Microseconds()) / float64(rounds)
			start = time.Now()
			for i := 0; i < rounds; i++ {
				if _, ok := find(miss, repo, nil, &stMiss); ok {
					return nil, fmt.Errorf("bench: server-match: miss input matched at %d entries", n)
				}
			}
			missUS := float64(time.Since(start).Microseconds()) / float64(rounds)
			row[mode].hitUS, row[mode].missUS = hitUS, missUS
			row[mode].probesHit = stHit.Probes / int64(rounds)
			row[mode].probesMiss = stMiss.Probes / int64(rounds)
			name := "indexed"
			if mode == 1 {
				name = "naive"
			}
			table.AddRow(
				fmt.Sprintf("%d", n),
				name,
				fmt.Sprintf("%.1f", hitUS),
				fmt.Sprintf("%.1f", missUS),
				fmt.Sprintf("%d", row[mode].probesHit),
				fmt.Sprintf("%d", row[mode].probesMiss),
			)
		}
		if row[0].missUS > 0 {
			speedups = append(speedups, speedup{n, row[1].missUS / row[0].missUS, row[0].probesMiss, row[1].probesMiss})
		}
	}
	for _, s := range speedups {
		table.AddNote("%d entries: indexed %.1fx faster than naive on the full-scan (miss) path; probes/lookup %d vs %d",
			s.n, s.x, s.pIdx, s.pNai)
	}
	table.AddNote("indexed probe counts stay ~flat as the repository grows (fingerprint-probe surfaces only hash-equal candidates); naive probes grow linearly")
	return table, nil
}

// matchBenchScript is the per-entry chain; constant i keeps every entry's
// plan (and terminal fingerprint) distinct.
func matchBenchScript(i int, out string) string {
	return fmt.Sprintf(`A = load 'pv' as (user, ts:int, rev:int);
B = filter A by ts > %d;
C = foreach B generate user, rev;
D = group C by user;
E = foreach D generate group, COUNT(C), SUM(C.rev);
store E into '%s';`, i+1000, out)
}

// matchBenchRepo builds a repository of n distinct stored chains.
func matchBenchRepo(n int) (*core.Repository, error) {
	repo := core.NewRepository()
	for i := 0; i < n; i++ {
		plan, err := matchBenchPlan(matchBenchScript(i, fmt.Sprintf("restore/m%d", i)), fmt.Sprintf("tmp/m%d", i))
		if err != nil {
			return nil, err
		}
		store := plan.Sinks()[0]
		cand, err := core.WholeJobCandidate(plan, store)
		if err != nil {
			return nil, err
		}
		_, added, err := repo.Add(&core.Entry{
			Plan:       cand,
			OutputPath: store.Path,
			Schema:     store.Schema,
			InputBytes: 1000, OutputBytes: 100,
			ExecTime: time.Minute,
		})
		if err != nil {
			return nil, err
		}
		if !added {
			return nil, fmt.Errorf("bench: server-match: entry %d deduplicated unexpectedly", i)
		}
	}
	return repo, nil
}

// matchBenchInput compiles the probe query for constant i (i < 0 lands
// outside every stored constant: a guaranteed miss).
func matchBenchInput(i int) (*physical.Plan, error) {
	return matchBenchPlan(matchBenchScript(i, "out/probe"), "tmp/probe")
}

// matchBenchPlan parses and compiles a single-job script to its plan.
func matchBenchPlan(src, tmp string) (*physical.Plan, error) {
	script, err := piglatin.Parse(src)
	if err != nil {
		return nil, err
	}
	lp, err := logical.Build(script)
	if err != nil {
		return nil, err
	}
	w, err := mrcompile.Compile(lp, tmp)
	if err != nil {
		return nil, err
	}
	if len(w.Jobs) != 1 {
		return nil, fmt.Errorf("bench: server-match: script compiled to %d jobs, want 1", len(w.Jobs))
	}
	return w.Jobs[0].Plan, nil
}
