// Package bench regenerates every table and figure of the paper's
// evaluation (§7) on the simulated cluster, plus the ablations listed in
// DESIGN.md. Each experiment returns a Table that cmd/restore-bench prints;
// bench_test.go exposes the same experiments as Go benchmarks.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote (averages, paper reference values).
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// minutes formats a duration as minutes with one decimal, the unit of the
// paper's time figures.
func minutes(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Minutes())
}

// ratio formats a unitless ratio.
func ratio(v float64) string {
	return fmt.Sprintf("%.2f", v)
}

// gb formats bytes as GB with one decimal.
func gb(b float64) string {
	return fmt.Sprintf("%.1f", b/(1<<30))
}
