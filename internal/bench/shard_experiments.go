package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	restore "repro"
	"repro/internal/server"
)

// shardOpLatency emulates the per-mutation metadata RPC of a remote DFS
// namenode for the server-shard experiment: every namespace mutation
// (create, schema, partition commit, delete) sleeps this long while holding
// its shard's write lock. The emulation reproduces the deployment regime
// where namespace mutations are wall-clock-bound (a round trip to the
// metadata service), not CPU-bound — which is exactly the serialization the
// sharded core removes, and makes the removal measurable on any machine,
// single-core included: under one shard the sleeps serialize behind one
// lock, under N shards disjoint clients overlap them.
const shardOpLatency = 2 * time.Millisecond

// shardQueriesPerClient is how many distinct queries each client submits in
// a server-shard round. Distinct filter constants defeat single-flight and
// repository reuse, so every submission pays the full mutation path.
const shardQueriesPerClient = 6

// ShardScaling benchmarks the sharded execution core: the same all-disjoint
// workload (every client owns a private top-level namespace, so every
// client maps to its own shard root) runs against daemons built with 1, 2,
// 4, and 8 core shards. With one shard every namespace mutation serializes
// behind a single write lock — the emulated metadata RPC latency adds up
// across all clients. With N shards the per-client mutation streams hold
// independent locks and the same waits overlap. The speedup column is the
// headline: wall-clock of the single-domain core over this row's.
//
// The workload is deliberately reuse-free (distinct plans, disjoint paths)
// so the table measures lock-domain scaling and nothing else; the matcher,
// single-flight, and the scheduler behave identically across rows.
func ShardScaling(cfg Config) (*Table, error) {
	table := &Table{
		ID:      "server-shard",
		Title:   "sharded execution core: all-disjoint throughput vs shard count",
		Columns: []string{"shards", "clients", "workers", "submitted", "executed", "wall_ms", "qps", "speedup"},
	}
	const clients = 8
	var baseWall int64
	for _, shards := range []int{1, 2, 4, 8} {
		wall, err := serverShardRound(shards, clients, &baseWall, table)
		if err != nil {
			return nil, err
		}
		if shards == 1 {
			baseWall = wall
		}
	}
	table.AddNote("same workload, same scheduler, same matcher on every row; only the number of independently locked core shards changes")
	table.AddNote("op-latency emulation %v per namespace mutation (held under the owning shard's write lock), reproducing a metadata-RPC-bound deployment", shardOpLatency)
	return table, nil
}

// serverShardRound boots a daemon over a core built with the given shard
// count, seeds one private dataset per client under a per-client top-level
// root (c0/in, c1/in, ... — the first path segment is the shard key root,
// so distinct clients land on distinct shards whenever shards allow), and
// drives the all-disjoint query stream. baseWall, when non-zero, is the
// single-shard wall time used for the speedup column.
func serverShardRound(shards, clients int, baseWall *int64, table *Table) (wallMS int64, err error) {
	sys := restore.New(restore.WithShards(shards))
	const rows = 2000
	for cl := 0; cl < clients; cl++ {
		lines := make([]string, rows)
		for i := range lines {
			lines[i] = fmt.Sprintf("%d\t%d", (i*13+cl)%50, (i*7+cl)%100)
		}
		if err := sys.LoadTSV(fmt.Sprintf("c%d/in", cl), "k:int, v:int", lines, 4); err != nil {
			return 0, err
		}
	}
	// Latency emulation starts after seeding: loading the datasets is setup,
	// not the measured workload.
	sys.FS().SetOpLatency(shardOpLatency)
	defer sys.FS().SetOpLatency(0)

	srv, err := server.New(server.Config{System: sys, Workers: clients, BarrierWindow: 16})
	if err != nil {
		return 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
		<-serveErr
	}()

	base := "http://" + ln.Addr().String()
	start := time.Now()
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := server.NewClient(base)
			for q := 0; q < shardQueriesPerClient; q++ {
				src := fmt.Sprintf(`A = load 'c%d/in' as (k:int, v:int);
B = filter A by v > %d;
C = group B by k;
D = foreach C generate group, COUNT(B), SUM(B.v);
store D into 'c%d/out/q%d';`, cl, q*11, cl, q)
				if _, err := c.Submit(src, false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, fmt.Errorf("bench: shard round (shards=%d): %w", shards, err)
	}

	m, err := server.NewClient(base).Metrics()
	if err != nil {
		return 0, err
	}
	speedup := "1.00x"
	if *baseWall > 0 && wall.Milliseconds() > 0 {
		speedup = fmt.Sprintf("%.2fx", float64(*baseWall)/float64(wall.Milliseconds()))
	}
	table.AddRow(
		fmt.Sprintf("%d", shards),
		fmt.Sprintf("%d", clients),
		fmt.Sprintf("%d", clients),
		fmt.Sprintf("%d", m.QueriesSubmitted),
		fmt.Sprintf("%d", m.QueriesExecuted),
		fmt.Sprintf("%d", wall.Milliseconds()),
		fmt.Sprintf("%.1f", float64(m.QueriesSubmitted)/wall.Seconds()),
		speedup,
	)
	return wall.Milliseconds(), nil
}
