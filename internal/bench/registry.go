package bench

import "fmt"

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Config) (*Table, error)
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig9", "Figure 9: whole-job reuse (150GB)", Fig9WholeJobReuse},
		{"fig10", "Figure 10: sub-job reuse, Aggressive (150GB)", Fig10SubJobReuse},
		{"fig11", "Figure 11: injection overhead (15GB vs 150GB)", Fig11Overhead},
		{"fig12", "Figure 12: sub-job reuse speedup (15GB vs 150GB)", Fig12Speedup},
		{"fig13", "Figure 13: reuse time by heuristic (150GB)", Fig13HeuristicsReuse},
		{"fig14", "Figure 14: generation time by heuristic (150GB)", Fig14HeuristicsGeneration},
		{"table1", "Table 1: stored bytes by heuristic (150GB)", Table1StoredBytes},
		{"fig15", "Figure 15: whole jobs vs sub-jobs (150GB)", Fig15ReuseTypes},
		{"table2", "Table 2: synthetic field selectivities", Table2Synthetic},
		{"fig16", "Figure 16: QP projection sweep", Fig16ProjectSweep},
		{"fig17", "Figure 17: QF filter sweep", Fig17FilterSweep},
		{"ablation-order", "Ablation: repository ordering rules", AblationRepoOrdering},
		{"ablation-evict", "Ablation: eviction policies", AblationEviction},
		{"server", "restored server-mode throughput (concurrent clients)", ServerThroughput},
		{"server-ckpt", "checkpoint cost per interval: WAL vs full snapshot", ServerCheckpointCost},
		{"server-match", "match-scan cost vs repository size: index vs naive", MatchScaling},
		{"server-gc", "eviction Rule-4 cost per mutation: index vs naive sweep", GCScaling},
		{"server-obs", "telemetry overhead: instrumented vs obs.Disabled", ServerObsOverhead},
		{"server-hot", "zero-compile hot path: repeat-query latency collapse", ServerHotPath},
		{"server-shard", "sharded execution core: all-disjoint scaling vs shard count", ShardScaling},
		{"server-engine", "engine data plane: sorted-run merge + parallel reduce vs serial sort", EngineDataPlane},
		{"server-fleet", "fleet execution backend: wall-clock vs worker count", FleetScaling},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
