package bench

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/pigmix"
)

// measureNoReuse runs the query on a fresh baseline system (plain Pig).
func measureNoReuse(inst pigmix.Instance, name string) (time.Duration, *restore.Result, error) {
	s, err := newPigmixSystem(inst, baselineOpts()...)
	if err != nil {
		return 0, nil, err
	}
	res, err := runQuery(s, name, "out/"+name+"_noreuse")
	if err != nil {
		return 0, nil, err
	}
	return res.SimulatedTime, res, nil
}

// measureGenerateAndReuse runs the query twice on a fresh system with the
// given heuristic: the first run pays the materialization overhead and
// populates the repository, the second reuses the stored outputs. It
// returns (generation time, reuse time, first-run result).
func measureGenerateAndReuse(inst pigmix.Instance, name string, h restore.Heuristic) (gen, reuse time.Duration, first *restore.Result, err error) {
	s, err := newPigmixSystem(inst, restore.WithHeuristic(h))
	if err != nil {
		return 0, 0, nil, err
	}
	first, err = runQuery(s, name, "out/"+name+"_gen")
	if err != nil {
		return 0, 0, nil, err
	}
	second, err := runQuery(s, name, "out/"+name+"_reuse")
	if err != nil {
		return 0, 0, nil, err
	}
	return first.SimulatedTime, second.SimulatedTime, first, nil
}

// Fig9WholeJobReuse reproduces Figure 9: execution time of the L3/L11
// variants at 150 GB without reuse and when reusing whole-job outputs
// stored by a previous execution (heuristic off — whole jobs only).
func Fig9WholeJobReuse(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "Reusing whole job outputs, 150GB (minutes)",
		Columns: []string{"query", "no-reuse", "reusing-jobs", "speedup"},
	}
	var sum float64
	for _, name := range pigmix.VariantNames() {
		noReuse, _, err := measureNoReuse(cfg.Large, name)
		if err != nil {
			return nil, err
		}
		_, reuse, _, err := measureGenerateAndReuse(cfg.Large, name, restore.HeuristicOff)
		if err != nil {
			return nil, err
		}
		sp := safeRatio(noReuse, reuse)
		sum += sp
		t.AddRow(name, minutes(noReuse), minutes(reuse), ratio(sp))
	}
	t.AddNote("average speedup %.1f (paper: 9.8, overhead 0%%)", sum/float64(len(pigmix.VariantNames())))
	return t, nil
}

// Fig10SubJobReuse reproduces Figure 10: L2-L8 and L11 at 150 GB — no
// reuse, generating sub-jobs under the Aggressive Heuristic, and reusing
// the stored sub-jobs.
func Fig10SubJobReuse(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "Reusing sub-job outputs (Aggressive), 150GB (minutes)",
		Columns: []string{"query", "no-reuse", "generating", "reusing", "speedup", "overhead"},
	}
	var spSum, ovSum float64
	for _, name := range pigmix.Names() {
		noReuse, _, err := measureNoReuse(cfg.Large, name)
		if err != nil {
			return nil, err
		}
		gen, reuse, _, err := measureGenerateAndReuse(cfg.Large, name, restore.HeuristicAggressive)
		if err != nil {
			return nil, err
		}
		sp := safeRatio(noReuse, reuse)
		ov := safeRatio(gen, noReuse)
		spSum += sp
		ovSum += ov
		t.AddRow(name, minutes(noReuse), minutes(gen), minutes(reuse), ratio(sp), ratio(ov))
	}
	n := float64(len(pigmix.Names()))
	t.AddNote("average speedup %.1f (paper: 24.4)", spSum/n)
	t.AddNote("average generation overhead %.1f (paper: 1.6)", ovSum/n)
	return t, nil
}

// Fig11Overhead reproduces Figure 11: the materialization overhead ratio
// for both data sizes under the Aggressive Heuristic.
func Fig11Overhead(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "Store-injection overhead, 15GB vs 150GB (ratio to no-reuse)",
		Columns: []string{"query", "15GB", "150GB"},
	}
	var sum15, sum150 float64
	for _, name := range pigmix.Names() {
		no15, _, err := measureNoReuse(cfg.Small, name)
		if err != nil {
			return nil, err
		}
		gen15, _, _, err := measureGenerateAndReuse(cfg.Small, name, restore.HeuristicAggressive)
		if err != nil {
			return nil, err
		}
		no150, _, err := measureNoReuse(cfg.Large, name)
		if err != nil {
			return nil, err
		}
		gen150, _, _, err := measureGenerateAndReuse(cfg.Large, name, restore.HeuristicAggressive)
		if err != nil {
			return nil, err
		}
		ov15 := safeRatio(gen15, no15)
		ov150 := safeRatio(gen150, no150)
		sum15 += ov15
		sum150 += ov150
		t.AddRow(name, ratio(ov15), ratio(ov150))
	}
	n := float64(len(pigmix.Names()))
	t.AddNote("average overhead %.1f @15GB, %.1f @150GB (paper: 2.4 and 1.6)", sum15/n, sum150/n)
	return t, nil
}

// Fig12Speedup reproduces Figure 12: sub-job reuse speedup for both sizes.
func Fig12Speedup(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "Sub-job reuse speedup, 15GB vs 150GB",
		Columns: []string{"query", "15GB", "150GB"},
	}
	var sum15, sum150 float64
	for _, name := range pigmix.Names() {
		no15, _, err := measureNoReuse(cfg.Small, name)
		if err != nil {
			return nil, err
		}
		_, reuse15, _, err := measureGenerateAndReuse(cfg.Small, name, restore.HeuristicAggressive)
		if err != nil {
			return nil, err
		}
		no150, _, err := measureNoReuse(cfg.Large, name)
		if err != nil {
			return nil, err
		}
		_, reuse150, _, err := measureGenerateAndReuse(cfg.Large, name, restore.HeuristicAggressive)
		if err != nil {
			return nil, err
		}
		sp15 := safeRatio(no15, reuse15)
		sp150 := safeRatio(no150, reuse150)
		sum15 += sp15
		sum150 += sp150
		t.AddRow(name, ratio(sp15), ratio(sp150))
	}
	n := float64(len(pigmix.Names()))
	t.AddNote("average speedup %.1f @15GB, %.1f @150GB (paper: 3.0 and 24.4)", sum15/n, sum150/n)
	return t, nil
}

var heuristicSeries = []struct {
	label string
	h     restore.Heuristic
}{
	{"conservative", restore.HeuristicConservative},
	{"aggressive", restore.HeuristicAggressive},
	{"no-heuristic", restore.HeuristicAll},
}

// Fig13HeuristicsReuse reproduces Figure 13: execution time when reusing
// sub-jobs chosen by each heuristic (150 GB).
func Fig13HeuristicsReuse(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Reuse execution time by heuristic, 150GB (minutes)",
		Columns: []string{"query", "no-reuse", "conservative", "aggressive", "no-heuristic"},
	}
	for _, name := range pigmix.Names() {
		noReuse, _, err := measureNoReuse(cfg.Large, name)
		if err != nil {
			return nil, err
		}
		row := []string{name, minutes(noReuse)}
		for _, hs := range heuristicSeries {
			_, reuse, _, err := measureGenerateAndReuse(cfg.Large, name, hs.h)
			if err != nil {
				return nil, err
			}
			row = append(row, minutes(reuse))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: HA matches NH and beats HC; all beat no-reuse")
	return t, nil
}

// Fig14HeuristicsGeneration reproduces Figure 14: execution time of the
// generation run (with injected Stores) under each heuristic (150 GB).
func Fig14HeuristicsGeneration(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Generation execution time by heuristic, 150GB (minutes)",
		Columns: []string{"query", "no-reuse", "conservative", "aggressive", "no-heuristic"},
	}
	for _, name := range pigmix.Names() {
		noReuse, _, err := measureNoReuse(cfg.Large, name)
		if err != nil {
			return nil, err
		}
		row := []string{name, minutes(noReuse)}
		for _, hs := range heuristicSeries {
			gen, _, _, err := measureGenerateAndReuse(cfg.Large, name, hs.h)
			if err != nil {
				return nil, err
			}
			row = append(row, minutes(gen))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: NH is always worst; HA is close to HC except L6")
	return t, nil
}

// Table1StoredBytes reproduces Table 1: input bytes, stored sub-job bytes
// under each heuristic, and final output size per query (paper-scale GB).
func Table1StoredBytes(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Loaded, stored, and output data per query (GB at paper scale)",
		Columns: []string{"query", "input", "HC", "HA", "NH", "output"},
	}
	for _, name := range pigmix.Names() {
		row := []string{name}
		var inputGB, outputGB string
		for i, hs := range heuristicSeries {
			s, err := newPigmixSystem(cfg.Large, restore.WithHeuristic(hs.h))
			if err != nil {
				return nil, err
			}
			res, err := runQuery(s, name, "out/"+name)
			if err != nil {
				return nil, err
			}
			scale := s.Cluster().ScaleFactor
			if i == 0 {
				var in, out int64
				for _, j := range res.Jobs {
					in += j.InputBytes
					out += j.OutputBytes
				}
				inputGB = gb(float64(in) * scale)
				outputGB = gb(float64(out) * scale)
			}
			row = append(row, gb(float64(res.InjectedBytes)*scale))
		}
		// Order: query, input, HC, HA, NH, output.
		t.AddRow(row[0], inputGB, row[1], row[2], row[3], outputGB)
	}
	t.AddNote("paper: NH stores far more than HA; HA is usually close to HC (L6 excepted)")
	return t, nil
}

// Fig15ReuseTypes reproduces Figure 15: the variant workload with no reuse,
// sub-job reuse under HC and HA, and whole-job reuse (150 GB).
func Fig15ReuseTypes(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "Whole jobs vs sub-jobs, 150GB (minutes)",
		Columns: []string{"query", "no-reuse", "sub-jobs-HC", "sub-jobs-HA", "whole-jobs"},
	}
	for _, name := range pigmix.VariantNames() {
		noReuse, _, err := measureNoReuse(cfg.Large, name)
		if err != nil {
			return nil, err
		}
		_, hc, _, err := measureGenerateAndReuse(cfg.Large, name, restore.HeuristicConservative)
		if err != nil {
			return nil, err
		}
		_, ha, _, err := measureGenerateAndReuse(cfg.Large, name, restore.HeuristicAggressive)
		if err != nil {
			return nil, err
		}
		_, whole, _, err := measureGenerateAndReuse(cfg.Large, name, restore.HeuristicOff)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, minutes(noReuse), minutes(hc), minutes(ha), minutes(whole))
	}
	t.AddNote("paper: whole-job reuse and HA sub-job reuse are nearly equal and best")
	return t, nil
}

func safeRatio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return a.Seconds() / b.Seconds()
}

var _ = fmt.Sprintf
