package bench

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"
)

// loadRecordedTable reads the checked-in BENCH_server.json baseline and
// returns the table with the given ID.
func loadRecordedTable(t *testing.T, id string) *Table {
	t.Helper()
	data, err := os.ReadFile("../../BENCH_server.json")
	if err != nil {
		t.Fatalf("recorded baseline missing: %v", err)
	}
	var tables []*Table
	if err := json.Unmarshal(data, &tables); err != nil {
		t.Fatalf("BENCH_server.json: %v", err)
	}
	for _, tbl := range tables {
		if tbl.ID == id {
			return tbl
		}
	}
	t.Fatalf("BENCH_server.json has no %q table (re-record with restore-bench -json)", id)
	return nil
}

// recordedCell parses one cell of a recorded table, stripping the %/x
// suffixes the formatted columns carry.
func recordedCell(t *testing.T, tbl *Table, row int, col string) float64 {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == col {
			v := strings.TrimSuffix(strings.TrimSuffix(tbl.Rows[row][i], "%"), "x")
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("cell %s[%d] = %q: %v", col, row, tbl.Rows[row][i], err)
			}
			return f
		}
	}
	t.Fatalf("no column %q in %v", col, tbl.Columns)
	return 0
}

// TestRecordedEngineBaselineShape pins the checked-in server-engine
// baseline: the recorded run must show the acceptance floors — reduce-side
// kernel at least 2x over the serial reference with allocated bytes cut at
// least 50%, and every whole-job parallel-plane row at least even with the
// serial plane. Monotone scaling across reduce workers is deliberately NOT
// asserted: the recorded baseline may come from a single-core machine,
// where the worker sweep is flat by design and only the constant-factor
// kernel wins show.
func TestRecordedEngineBaselineShape(t *testing.T) {
	tbl := loadRecordedTable(t, "server-engine")
	if want := 3 + len(engineReduceWorkerSweep); len(tbl.Rows) != want {
		t.Fatalf("expected %d rows, got %d", want, len(tbl.Rows))
	}
	if got := tbl.Rows[0][0] + "|" + tbl.Rows[1][0] + "|" + tbl.Rows[2][0]; got != "kernel/serial-sort|kernel/run-merge|job/serial-plane" {
		t.Fatalf("unexpected row layout: %s", got)
	}
	if sp := recordedCell(t, tbl, 1, "speedup"); sp < 2.0 {
		t.Errorf("recorded kernel speedup %.2fx below the 2x acceptance floor", sp)
	}
	aSerial, aMerge := recordedCell(t, tbl, 0, "alloc_mb"), recordedCell(t, tbl, 1, "alloc_mb")
	if aMerge > aSerial/2 {
		t.Errorf("recorded kernel allocation %.2fMB not cut >=50%% vs serial %.2fMB", aMerge, aSerial)
	}
	for i := 3; i < len(tbl.Rows); i++ {
		if sp := recordedCell(t, tbl, i, "speedup"); sp < 1.0 {
			t.Errorf("recorded job row (workers=%s) speedup %.2fx below 1x", tbl.Rows[i][1], sp)
		}
	}
}

// TestRecordedFleetBaselineShape pins the checked-in server-fleet baseline:
// the recorded run must show wall-clock improving monotonically as the
// worker fleet grows 1 -> 2 -> 3 (the acceptance criterion for the
// multi-process backend), with the 3-worker row clearing a conservative
// 1.5x floor over the one-worker fleet — well under the recorded ~2.7x so
// the pin survives re-recording on noisy machines. Every submission must
// execute: the workload is reuse-free by construction.
func TestRecordedFleetBaselineShape(t *testing.T) {
	tbl := loadRecordedTable(t, "server-fleet")
	if len(tbl.Rows) != 3 {
		t.Fatalf("expected 3 rows (fleet 1/2/3), got %d", len(tbl.Rows))
	}
	prev := 0.0
	for i := range tbl.Rows {
		if got := tbl.Rows[i][0]; got != strconv.Itoa(i+1) {
			t.Errorf("row %d: fleet size %s, want %d", i, got, i+1)
		}
		if sub, exe := recordedCell(t, tbl, i, "submitted"), recordedCell(t, tbl, i, "executed"); sub != exe {
			t.Errorf("row %d: %v submitted but %v executed; the distinct stream must not dedup", i, sub, exe)
		}
		sp := recordedCell(t, tbl, i, "speedup")
		if sp <= prev {
			t.Errorf("recorded speedup not monotone at row %d: %.2fx after %.2fx", i, sp, prev)
		}
		prev = sp
	}
	if prev < 1.5 {
		t.Errorf("recorded 3-worker speedup %.2fx below the 1.5x floor", prev)
	}
}
