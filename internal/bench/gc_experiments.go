package bench

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/types"
)

// GCScaling measures eviction's per-query Rule-4 cost as the repository
// grows — the other half of the scan problem the PR-4 match index solved.
// Every query's phase 0 must decide which stored entries a recent DFS
// mutation invalidated; the old implementation re-scanned every entry and
// probed every input version per query (O(entries x inputs)), while the
// input-path index touches only the entries reading a mutated path.
//
// Each round mutates ONE input file, runs one eviction pass (which must
// evict exactly the one reader), and re-registers the evicted entry so the
// repository holds n entries at every round. scans/round and probes/round
// stay ~flat for the indexed pass and grow linearly with n for the naive
// sweep — repository size stops taxing the query hot path.
func GCScaling(cfg Config) (*Table, error) {
	table := &Table{
		ID:      "server-gc",
		Title:   "eviction Rule-4 cost per mutation: input-path index vs naive sweep",
		Columns: []string{"entries", "mode", "scans_rd", "probes_rd", "us_rd"},
	}
	sizes := cfg.MatchRepoSizes
	if len(sizes) == 0 {
		sizes = []int{50, 200, 800}
	}
	type point struct {
		n                  int
		scansIdx, scansNai int64
		x                  float64
	}
	var points []point
	for _, n := range sizes {
		rounds := 40_000 / (n + 50) // keep wall time flat-ish across sizes
		if rounds < 10 {
			rounds = 10
		}
		var perMode [2]struct {
			scans, probes int64
			us            float64
		}
		for mode := 0; mode < 2; mode++ {
			sel, fs, err := gcBenchSelector(n)
			if err != nil {
				return nil, err
			}
			fs.TakeEvictionDirty() // construction churn: start the feed clean
			var st core.EvictStats
			var elapsed time.Duration
			seq := int64(2)
			for r := 0; r < rounds; r++ {
				i := r % n
				if err := gcBenchMutateInput(fs, i); err != nil {
					return nil, err
				}
				var ev []string
				if mode == 0 {
					dirty := fs.TakeEvictionDirty()
					start := time.Now()
					ev, err = sel.EvictPaths(seq, dirty, &st)
					elapsed += time.Since(start)
				} else {
					start := time.Now()
					ev, err = sel.Evict(seq, &st)
					elapsed += time.Since(start)
				}
				if err != nil {
					return nil, err
				}
				if len(ev) != 1 {
					return nil, fmt.Errorf("bench: server-gc: round %d evicted %v, want exactly the mutated reader", r, ev)
				}
				if err := gcBenchAddEntry(sel, fs, i, seq); err != nil {
					return nil, err
				}
				seq++
			}
			perMode[mode].scans = st.Scans / int64(rounds)
			perMode[mode].probes = st.Probes / int64(rounds)
			perMode[mode].us = float64(elapsed.Microseconds()) / float64(rounds)
			name := "indexed"
			if mode == 1 {
				name = "naive"
			}
			table.AddRow(
				fmt.Sprintf("%d", n),
				name,
				fmt.Sprintf("%d", perMode[mode].scans),
				fmt.Sprintf("%d", perMode[mode].probes),
				fmt.Sprintf("%.1f", perMode[mode].us),
			)
		}
		p := point{n: n, scansIdx: perMode[0].scans, scansNai: perMode[1].scans}
		if perMode[0].us > 0 {
			p.x = perMode[1].us / perMode[0].us
		}
		points = append(points, p)
	}
	for _, p := range points {
		table.AddNote("%d entries: indexed pass %.1fx faster per mutation; scans/round %d vs %d",
			p.n, p.x, p.scansIdx, p.scansNai)
	}
	table.AddNote("indexed scans/probes stay ~flat as the repository grows (only entries reading the mutated path are checked); naive scans every entry and probes every input per round")
	return table, nil
}

// gcBenchSelector builds a selector over n entries, each reading its own
// input in/iN and owning restore/gN.
func gcBenchSelector(n int) (*core.Selector, *dfs.FS, error) {
	fs := dfs.New()
	sel := &core.Selector{Repo: core.NewRepository(), FS: fs, Cluster: cluster.Default(), Policy: core.DefaultPolicy()}
	for i := 0; i < n; i++ {
		if err := gcBenchAddEntry(sel, fs, i, 1); err != nil {
			return nil, nil, err
		}
	}
	return sel, fs, nil
}

// gcBenchAddEntry (re)writes entry i's input and output files and registers
// the entry at seq.
func gcBenchAddEntry(sel *core.Selector, fs *dfs.FS, i int, seq int64) error {
	in := fmt.Sprintf("in/i%d", i)
	out := fmt.Sprintf("restore/g%d", i)
	if !fs.Exists(in) {
		if err := fs.WriteTuples(in, types.Schema{}, []types.Tuple{{types.NewInt(int64(i))}}); err != nil {
			return err
		}
	}
	if err := fs.WriteTuples(out, types.Schema{}, []types.Tuple{{types.NewInt(int64(i))}}); err != nil {
		return err
	}
	plan, err := matchBenchPlan(fmt.Sprintf(`A = load '%s' as (k:int, v:int);
B = filter A by v > %d;
store B into '%s';`, in, i+1000, out), fmt.Sprintf("tmp/g%d", i))
	if err != nil {
		return err
	}
	cand, err := core.WholeJobCandidate(plan, plan.Sinks()[0])
	if err != nil {
		return err
	}
	_, added, err := sel.Consider(core.Candidate{
		Plan:       cand,
		OutputPath: out,
		Schema:     types.SchemaFromNames("k", "v"),
		InputBytes: 1000, OutputBytes: 100,
		ExecTime: time.Minute,
		OwnsFile: true,
	}, seq)
	if err != nil {
		return err
	}
	if !added {
		return fmt.Errorf("bench: server-gc: entry %d deduplicated unexpectedly", i)
	}
	return nil
}

// gcBenchMutateInput rewrites entry i's input, invalidating its reader
// under Rule 4.
func gcBenchMutateInput(fs *dfs.FS, i int) error {
	return fs.WriteTuples(fmt.Sprintf("in/i%d", i), types.Schema{}, []types.Tuple{{types.NewInt(int64(-i - 1))}})
}
