package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	restore "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

// ServerObsOverhead measures what end-to-end telemetry costs on the serving
// path. The same disjoint workload (cluster-latency emulation, so queries
// look like real deployments rather than microsecond stubs) runs through two
// daemons: one fully instrumented (histograms, stage traces, slow ring,
// sliding rate window) and one built with obs.Disabled, where every record
// call is a single predictable branch.
//
// The workload's wall-clock is dominated by emulated cluster sleeps, so any
// single round carries scheduling jitter far larger than the cost being
// measured. The comparison therefore runs back-to-back pairs (alternating
// which mode goes first) and reports the median of the per-pair wall-clock
// ratios: pairing cancels slow machine drift, the median discards jitter
// outliers. The headline note is that median relative overhead; the
// observability PR's budget for it is <3%.
func ServerObsOverhead(cfg Config) (*Table, error) {
	table := &Table{
		ID:      "server-obs",
		Title:   "telemetry overhead: instrumented daemon vs obs.Disabled (disjoint workload)",
		Columns: []string{"mode", "reps", "clients", "workers", "submitted", "wall_ms_min", "qps"},
	}
	const (
		clients = 8
		workers = 8
	)
	reps := cfg.ObsPairs
	if reps < 2 {
		reps = 2
	}
	minWall := [2]time.Duration{1 << 62, 1 << 62}
	var submitted [2]int64
	ratios := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		var wall [2]time.Duration
		for i := 0; i < 2; i++ {
			mode := (r + i) % 2
			w, sub, err := obsRound(mode == 1, clients, workers)
			if err != nil {
				return nil, err
			}
			wall[mode] = w
			if w < minWall[mode] {
				minWall[mode] = w
			}
			submitted[mode] = sub
		}
		ratios = append(ratios, float64(wall[0])/float64(wall[1]))
	}
	for mode, name := range []string{"instrumented", "disabled"} {
		table.AddRow(
			name,
			fmt.Sprintf("%d", reps),
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%d", submitted[mode]),
			fmt.Sprintf("%d", minWall[mode].Milliseconds()),
			fmt.Sprintf("%.1f", float64(submitted[mode])/minWall[mode].Seconds()),
		)
	}
	sort.Float64s(ratios)
	median := (ratios[(len(ratios)-1)/2] + ratios[len(ratios)/2]) / 2
	table.AddNote("instrumented wall-clock overhead %.2f%% over obs.Disabled (median of %d back-to-back pair ratios; budget <3%%); cluster-latency emulation %g",
		100*(median-1), reps, disjointLatencyScale)
	table.AddNote("instrumented = per-stage histograms + traces + slow ring + rate window on every query; disabled = one branch per record call")
	return table, nil
}

// obsRound boots a daemon over a fresh disjoint-workload system — with
// telemetry either fully on or hard-disabled — drives the workload, and
// returns the wall-clock and submission count.
func obsRound(disabled bool, clients, workers int) (wall time.Duration, submitted int64, err error) {
	sys := restore.New(restore.WithJobLatency(disjointLatencyScale))
	const rows = 3000
	const queriesPerClient = 10
	for cl := 0; cl < clients; cl++ {
		lines := make([]string, rows)
		for i := range lines {
			lines[i] = fmt.Sprintf("%d\t%d", (i*13+cl)%50, (i*7+cl)%100)
		}
		if err := sys.LoadTSV(fmt.Sprintf("in/c%d", cl), "k:int, v:int", lines, 4); err != nil {
			return 0, 0, err
		}
	}
	scfg := server.Config{System: sys, Workers: workers, BarrierWindow: 16}
	if disabled {
		scfg.Obs = obs.Disabled
	}
	srv, err := server.New(scfg)
	if err != nil {
		return 0, 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
		<-serveErr
	}()

	base := "http://" + ln.Addr().String()
	// Collect garbage carried over from prior rounds (and, in a full
	// restore-bench run, prior experiments) before timing: a GC pause from
	// someone else's allocations landing inside one mode's round is the
	// largest single source of paired-comparison skew.
	runtime.GC()
	start := time.Now()
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := server.NewClient(base)
			for q := 0; q < queriesPerClient; q++ {
				src := fmt.Sprintf(`A = load 'in/c%d' as (k:int, v:int);
B = filter A by v > %d;
C = group B by k;
D = foreach C generate group, COUNT(B), SUM(B.v);
store D into 'out/c%d/q%d';`, cl, q*11, cl, q)
				if _, err := c.Submit(src, false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall = time.Since(start)
	close(errs)
	for err := range errs {
		return 0, 0, fmt.Errorf("bench: obs round (disabled=%v): %w", disabled, err)
	}
	m, err := server.NewClient(base).Metrics()
	if err != nil {
		return 0, 0, err
	}
	return wall, m.QueriesSubmitted, nil
}
