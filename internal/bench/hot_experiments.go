package bench

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	restore "repro"
	"repro/internal/server"
)

// ServerHotPath measures the zero-compile hot path on a repeat-heavy
// workload under remote-cluster latency emulation (the paper's deployment
// regime: the daemon orchestrates a cluster that does the heavy lifting).
// A daemon in keep-results mode serves a set of distinct queries cold
// (full prepare + schedule + lease + execute), then the same set repeated
// by concurrent clients: every repeat is answerable from the repository,
// so the fast path serves it at index-probe + read cost with no scheduler
// or lease involvement, and the plan cache strips the repeats' compile
// cost. The cold/hot mean-latency ratio is the headline: repeat traffic
// stops paying execution cost.
func ServerHotPath(cfg Config) (*Table, error) {
	table := &Table{
		ID:      "server-hot",
		Title:   "zero-compile hot path: repeat-query latency collapse (cluster-latency emulation)",
		Columns: []string{"phase", "submissions", "hot-served", "plan-hits", "mean_ms", "p95_ms"},
	}

	sys := restore.New(
		restore.WithRegisterFinalOutputs(true),
		restore.WithJobLatency(disjointLatencyScale),
	)
	const rows = 3000
	lines := make([]string, rows)
	for i := range lines {
		lines[i] = fmt.Sprintf("%d\t%d", (i*13)%50, (i*7)%100)
	}
	if err := sys.LoadTSV("in/hot", "k:int, v:int", lines, 4); err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{System: sys, Workers: 4})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
		<-serveErr
	}()
	base := "http://" + ln.Addr().String()

	const queries = 6
	script := func(q int) string {
		return fmt.Sprintf(`A = load 'in/hot' as (k:int, v:int);
B = filter A by v > %d;
C = group B by k;
D = foreach C generate group, COUNT(B), SUM(B.v);
store D into 'out/hot/q%d';`, q*11, q)
	}

	phase := func(name string, submit func(c *server.Client, errs chan<- error) []time.Duration) error {
		c := server.NewClient(base)
		m0, err := c.Metrics()
		if err != nil {
			return err
		}
		errs := make(chan error, 64)
		lat := submit(c, errs)
		close(errs)
		for err := range errs {
			return fmt.Errorf("bench: server-hot %s phase: %w", name, err)
		}
		m1, err := c.Metrics()
		if err != nil {
			return err
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		mean := sum / time.Duration(len(lat))
		p95 := lat[len(lat)*95/100]
		table.AddRow(
			name,
			fmt.Sprintf("%d", m1.QueriesSubmitted-m0.QueriesSubmitted),
			fmt.Sprintf("%d", m1.QueriesHot-m0.QueriesHot),
			fmt.Sprintf("%d", m1.Reuse.Hot.PlanCacheHits-m0.Reuse.Hot.PlanCacheHits),
			fmt.Sprintf("%.2f", float64(mean.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(p95.Microseconds())/1000),
		)
		return nil
	}

	// Cold: every query executes for real (and registers its result).
	var coldMean time.Duration
	if err := phase("cold", func(c *server.Client, errs chan<- error) []time.Duration {
		var lat []time.Duration
		for q := 0; q < queries; q++ {
			t0 := time.Now()
			if _, err := c.Submit(script(q), true); err != nil {
				errs <- err
				return lat
			}
			lat = append(lat, time.Since(t0))
		}
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		coldMean = sum / time.Duration(len(lat))
		return lat
	}); err != nil {
		return nil, err
	}

	// Hot: concurrent clients repeat the same queries; every submission is
	// servable from the repository.
	const clients = 4
	const repeats = 10
	var hotMean time.Duration
	if err := phase("hot", func(_ *server.Client, errs chan<- error) []time.Duration {
		var mu sync.Mutex
		var lat []time.Duration
		var wg sync.WaitGroup
		for cl := 0; cl < clients; cl++ {
			cl := cl
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := server.NewClient(base)
				for r := 0; r < repeats; r++ {
					q := (cl + r) % queries
					t0 := time.Now()
					if _, err := c.Submit(script(q), true); err != nil {
						errs <- err
						return
					}
					d := time.Since(t0)
					mu.Lock()
					lat = append(lat, d)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		if len(lat) > 0 {
			hotMean = sum / time.Duration(len(lat))
		}
		return lat
	}); err != nil {
		return nil, err
	}

	if hotMean > 0 {
		table.AddNote("repeat-query latency collapse: %.1fx (cold mean %.2f ms -> hot mean %.2f ms; emulation scale %g)",
			float64(coldMean)/float64(hotMean),
			float64(coldMean.Microseconds())/1000,
			float64(hotMean.Microseconds())/1000,
			disjointLatencyScale)
	}
	table.AddNote("hot-served = flights answered from fresh stored outputs with no scheduler, lease, or engine involvement; plan-hits = preparations served by cloning a cached compiled plan")
	return table, nil
}
