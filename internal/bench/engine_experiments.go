package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/physical"
	"repro/internal/types"
)

// engineReduceWorkerSweep is the reduce-pool widths the whole-job rows
// sweep. On a single-core host the walls stay ~flat across widths (the win
// there is the merge/comparator kernel, not core scaling); on multi-core
// hosts the sweep shows the reduce pool overlapping partition work.
var engineReduceWorkerSweep = []int{1, 2, 4, 8}

// EngineDataPlane benchmarks the rebuilt MapReduce data plane against the
// serial reference plane it replaced. The first row pair isolates the
// reduce-side ordering kernel (concatenate + closure-driven stable sort vs
// sorted runs + compiled-comparator k-way merge into pooled buffers) — the
// code the optimization replaced, measured on identical input. The
// remaining rows run a whole shuffle-heavy order-by job end to end
// (decode, shuffle, sort/merge, reduce, encode, commit) on the serial
// plane and then on the default plane across reduce-pool widths. All rows
// run with zero emulated op latency: the table measures CPU, not simulated
// cluster time.
func EngineDataPlane(cfg Config) (*Table, error) {
	table := &Table{
		ID:      "server-engine",
		Title:   "engine data plane: sorted-run merge + parallel reduce vs serial single sort",
		Columns: []string{"config", "reduce_workers", "records", "rounds", "wall_ms", "alloc_mb", "speedup"},
	}
	rounds := cfg.EngineRounds
	recs := cfg.EngineRows

	// Kernel pair: same synthetic runs, serial reference vs merge kernel.
	const kernelRuns = 8
	kWallSerial, kAllocSerial := mapred.RunKernelBench(kernelRuns, recs/kernelRuns, rounds, true)
	kWallMerge, kAllocMerge := mapred.RunKernelBench(kernelRuns, recs/kernelRuns, rounds, false)
	addEngineRow(table, "kernel/serial-sort", "-", recs, rounds, kWallSerial, kAllocSerial, kWallSerial)
	addEngineRow(table, "kernel/run-merge", "-", recs, rounds, kWallMerge, kAllocMerge, kWallSerial)

	// Whole-job sweep: serial plane baseline, then the default plane across
	// reduce-pool widths.
	jWallSerial, jAllocSerial, err := engineJobRound(recs, rounds, true, 0)
	if err != nil {
		return nil, err
	}
	addEngineRow(table, "job/serial-plane", "-", recs, rounds, jWallSerial, jAllocSerial, jWallSerial)
	for _, workers := range engineReduceWorkerSweep {
		wall, alloc, err := engineJobRound(recs, rounds, false, workers)
		if err != nil {
			return nil, err
		}
		addEngineRow(table, "job/parallel-plane", fmt.Sprintf("%d", workers), recs, rounds, wall, alloc, jWallSerial)
	}
	table.AddNote("kernel rows: reduce-side ordering only, identical input runs; job rows: whole order-by job on %d rows", recs)
	table.AddNote("serial rows are the pre-optimization plane (concat + closure-driven sort.SliceStable, no pooling), kept as the differential-test oracle")
	table.AddNote("wall and alloc are the best of the measured rounds (heap flushed per round), after one untimed warmup (pools warm, as in a long-lived daemon); input generation excluded")
	return table, nil
}

func addEngineRow(table *Table, config, workers string, recs, rounds int, wall time.Duration, alloc uint64, baseWall time.Duration) {
	speedup := "1.00x"
	if wall > 0 && baseWall != wall {
		speedup = fmt.Sprintf("%.2fx", float64(baseWall)/float64(wall))
	}
	table.AddRow(
		config,
		workers,
		fmt.Sprintf("%d", recs),
		fmt.Sprintf("%d", rounds),
		fmt.Sprintf("%d", wall.Milliseconds()),
		fmt.Sprintf("%.2f", float64(alloc)/(1<<20)),
		speedup,
	)
}

// engineJobRound runs the shuffle-heavy order-by job `rounds` times (after
// one untimed warmup) on a fresh engine and reports the best (minimum)
// round's wall time and allocated bytes; the heap is flushed before each
// round and the min filters rounds a GC cycle landed in. Every input row
// rides the shuffle: the job is ORDER BY (city, rev, name DESC) over nRows
// rows with tie-heavy leading columns, so the reduce side is pure ordering
// work.
func engineJobRound(nRows, rounds int, serial bool, reduceWorkers int) (time.Duration, uint64, error) {
	fs := dfs.New()
	schema := types.NewSchema(
		types.Field{Name: "name", Kind: types.KindString},
		types.Field{Name: "city", Kind: types.KindString},
		types.Field{Name: "rev", Kind: types.KindInt},
	)
	rng := rand.New(rand.NewSource(11))
	rows := make([]types.Tuple, nRows)
	for i := range rows {
		rows[i] = types.Tuple{
			types.NewString(fmt.Sprintf("u%05d", rng.Intn(nRows))),
			types.NewString(fmt.Sprintf("c%02d", rng.Intn(20))),
			types.NewInt(int64(rng.Intn(8))),
		}
	}
	if err := fs.WritePartitioned("bench/in", schema, rows, 8); err != nil {
		return 0, 0, err
	}
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "bench/in", Schema: schema})
	o := p.Add(&physical.Operator{Kind: physical.OpOrder, Inputs: []int{l.ID},
		SortCols: []physical.SortCol{{Index: 1}, {Index: 2}, {Index: 0, Desc: true}}, Schema: schema})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "bench/out", Inputs: []int{o.ID}, Schema: schema})
	job, err := mapred.NewJob("bench-order", p)
	if err != nil {
		return 0, 0, err
	}
	e := mapred.NewEngine(fs, cluster.Default())
	e.SerialDataPlane = serial
	e.ReduceTasks = 8
	e.ReduceParallelism = reduceWorkers
	if _, err := e.RunJob(context.Background(), job); err != nil { // warmup
		return 0, 0, err
	}
	var wall time.Duration
	var alloc uint64
	var ms runtime.MemStats
	for i := 0; i < rounds; i++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		before := ms.TotalAlloc
		start := time.Now()
		if _, err := e.RunJob(context.Background(), job); err != nil {
			return 0, 0, err
		}
		w := time.Since(start)
		runtime.ReadMemStats(&ms)
		a := ms.TotalAlloc - before
		if i == 0 || w < wall {
			wall = w
		}
		if i == 0 || a < alloc {
			alloc = a
		}
	}
	return wall, alloc, nil
}
