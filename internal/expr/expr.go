// Package expr implements the expression language used inside physical
// operators: column references, literals, arithmetic, comparisons, boolean
// connectives, scalar functions, aggregate functions over bags, and bag
// projections (C.est_revenue).
//
// Expressions have two lifecycle phases. The parser produces *unbound* trees
// that reference columns by name; the plan builder *binds* them against an
// input schema, resolving every name to a column index. Binding errors
// (unknown column, arity mismatch) surface at compile time; evaluation never
// fails structurally — type mismatches yield null, matching Pig semantics.
//
// Canonical() renders a deterministic, alias-free signature used by ReStore's
// plan matcher to decide operator equivalence: two expressions are equivalent
// iff their canonical strings are equal.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/types"
)

// Op identifies the node type of an expression.
type Op string

// Expression node types.
const (
	OpCol     Op = "col"     // column reference
	OpLit     Op = "lit"     // literal constant
	OpBinary  Op = "bin"     // binary operator (Sym)
	OpUnary   Op = "un"      // unary operator (Sym)
	OpCall    Op = "call"    // function call (Name)
	OpBagProj Op = "bagproj" // project a field out of a bag column
)

// Expr is one node of an expression tree. A single concrete struct (rather
// than an interface per node type) keeps JSON serialization for the ReStore
// repository trivial.
type Expr struct {
	Op Op `json:"op"`
	// Name holds the unresolved column name for OpCol/OpBagProj and the
	// function name for OpCall.
	Name string `json:"name,omitempty"`
	// Index is the bound column index; -1 while unbound.
	Index int `json:"index"`
	// Lit is the constant payload for OpLit.
	Lit types.Value `json:"lit,omitempty"`
	// Sym is the operator symbol for OpBinary/OpUnary.
	Sym string `json:"sym,omitempty"`
	// Args are the child expressions.
	Args []*Expr `json:"args,omitempty"`
}

// Col references a column by name (bound later).
func Col(name string) *Expr { return &Expr{Op: OpCol, Name: name, Index: -1} }

// ColIdx references a column by position ($n in Pig Latin).
func ColIdx(i int) *Expr { return &Expr{Op: OpCol, Index: i} }

// Lit wraps a constant.
func Lit(v types.Value) *Expr { return &Expr{Op: OpLit, Lit: v, Index: -1} }

// Binary builds a binary operation.
func Binary(sym string, l, r *Expr) *Expr {
	return &Expr{Op: OpBinary, Sym: sym, Args: []*Expr{l, r}, Index: -1}
}

// Unary builds a unary operation ("not", "neg").
func Unary(sym string, e *Expr) *Expr {
	return &Expr{Op: OpUnary, Sym: sym, Args: []*Expr{e}, Index: -1}
}

// Call builds a function call. Function names are case-insensitive and
// canonicalized to upper case.
func Call(name string, args ...*Expr) *Expr {
	return &Expr{Op: OpCall, Name: strings.ToUpper(name), Args: args, Index: -1}
}

// BagProj projects the named field from each tuple of the bag produced by
// base, yielding a bag of 1-tuples (Pig's C.est_revenue).
func BagProj(base *Expr, field string) *Expr {
	return &Expr{Op: OpBagProj, Name: field, Args: []*Expr{base}, Index: -1}
}

// Clone deep-copies the expression tree.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	out := *e
	out.Args = make([]*Expr, len(e.Args))
	for i, a := range e.Args {
		out.Args[i] = a.Clone()
	}
	return &out
}

// aggregates maps aggregate function names to true. Aggregates take a bag and
// fold it to a scalar.
var aggregates = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregateCall reports whether e is a call to an aggregate function.
func (e *Expr) IsAggregateCall() bool {
	return e.Op == OpCall && aggregates[e.Name]
}

// Bind resolves column names against the schema, returning a new bound tree.
// For OpBagProj the field name is resolved inside the bag column's element
// schema (Field.Sub).
func (e *Expr) Bind(schema types.Schema) (*Expr, error) {
	out := e.Clone()
	if err := out.bind(schema); err != nil {
		return nil, err
	}
	return out, nil
}

func (e *Expr) bind(schema types.Schema) error {
	switch e.Op {
	case OpCol:
		if e.Index >= 0 {
			if e.Index >= schema.Len() && schema.Len() > 0 {
				return fmt.Errorf("expr: column $%d out of range for schema %s", e.Index, schema)
			}
			return nil
		}
		ix := schema.IndexOf(e.Name)
		if ix < 0 {
			return fmt.Errorf("expr: unknown column %q in schema %s", e.Name, schema)
		}
		e.Index = ix
		return nil
	case OpLit:
		return nil
	case OpBagProj:
		if err := e.Args[0].bind(schema); err != nil {
			return err
		}
		// Resolve the projected field within the bag's element schema.
		sub := bagElementSchema(e.Args[0], schema)
		if e.Index >= 0 {
			return nil
		}
		if sub == nil {
			return fmt.Errorf("expr: cannot resolve %q: bag column has no element schema", e.Name)
		}
		ix := sub.IndexOf(e.Name)
		if ix < 0 {
			return fmt.Errorf("expr: unknown field %q in bag schema %s", e.Name, sub)
		}
		e.Index = ix
		return nil
	default:
		for _, a := range e.Args {
			if err := a.bind(schema); err != nil {
				return err
			}
		}
		return nil
	}
}

// bagElementSchema returns the element schema of the bag a column expression
// refers to, or nil if unknown.
func bagElementSchema(e *Expr, schema types.Schema) *types.Schema {
	if e.Op != OpCol || e.Index < 0 || e.Index >= schema.Len() {
		return nil
	}
	return schema.Fields[e.Index].Sub
}

// Canonical renders the alias-free deterministic signature of the bound
// expression. Unbound columns render by name (used in error paths only).
func (e *Expr) Canonical() string {
	var sb strings.Builder
	e.canonical(&sb)
	return sb.String()
}

func (e *Expr) canonical(sb *strings.Builder) {
	switch e.Op {
	case OpCol:
		if e.Index >= 0 {
			fmt.Fprintf(sb, "$%d", e.Index)
		} else {
			fmt.Fprintf(sb, "col(%s)", e.Name)
		}
	case OpLit:
		fmt.Fprintf(sb, "lit:%s:%s", e.Lit.Kind(), e.Lit.String())
	case OpBinary:
		// Commutative operators canonicalize argument order so that
		// "a == b" matches "b == a" in the repository.
		l, r := e.Args[0].Canonical(), e.Args[1].Canonical()
		if isCommutative(e.Sym) && r < l {
			l, r = r, l
		}
		fmt.Fprintf(sb, "(%s %s %s)", l, e.Sym, r)
	case OpUnary:
		fmt.Fprintf(sb, "(%s %s)", e.Sym, e.Args[0].Canonical())
	case OpCall:
		sb.WriteString(e.Name)
		sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			a.canonical(sb)
		}
		sb.WriteByte(')')
	case OpBagProj:
		if e.Index >= 0 {
			fmt.Fprintf(sb, "%s.$%d", e.Args[0].Canonical(), e.Index)
		} else {
			fmt.Fprintf(sb, "%s.%s", e.Args[0].Canonical(), e.Name)
		}
	}
}

func isCommutative(sym string) bool {
	switch sym {
	case "+", "*", "==", "!=", "and", "or":
		return true
	}
	return false
}

// Eval evaluates the bound expression against a tuple. Type mismatches and
// nulls propagate as null; boolean context treats null as false.
func (e *Expr) Eval(t types.Tuple) types.Value {
	switch e.Op {
	case OpCol:
		if e.Index < 0 || e.Index >= len(t) {
			return types.Null()
		}
		return t[e.Index]
	case OpLit:
		return e.Lit
	case OpBinary:
		return evalBinary(e.Sym, e.Args[0].Eval(t), e.Args[1].Eval(t))
	case OpUnary:
		return evalUnary(e.Sym, e.Args[0].Eval(t))
	case OpCall:
		args := make([]types.Value, len(e.Args))
		for i, a := range e.Args {
			args[i] = a.Eval(t)
		}
		return evalCall(e.Name, args)
	case OpBagProj:
		base := e.Args[0].Eval(t)
		if base.Kind() != types.KindBag {
			return types.Null()
		}
		out := &types.Bag{}
		for _, row := range base.Bag().Tuples {
			if e.Index >= 0 && e.Index < len(row) {
				out.Add(types.Tuple{row[e.Index]})
			}
		}
		return types.NewBag(out)
	default:
		return types.Null()
	}
}

func evalBinary(sym string, l, r types.Value) types.Value {
	switch sym {
	case "and":
		return types.NewBool(l.Truthy() && r.Truthy())
	case "or":
		return types.NewBool(l.Truthy() || r.Truthy())
	}
	if l.IsNull() || r.IsNull() {
		return types.Null()
	}
	switch sym {
	case "==":
		return types.NewBool(types.Compare(l, r) == 0)
	case "!=":
		return types.NewBool(types.Compare(l, r) != 0)
	case "<":
		return types.NewBool(types.Compare(l, r) < 0)
	case "<=":
		return types.NewBool(types.Compare(l, r) <= 0)
	case ">":
		return types.NewBool(types.Compare(l, r) > 0)
	case ">=":
		return types.NewBool(types.Compare(l, r) >= 0)
	case "+", "-", "*", "/", "%":
		return evalArith(sym, l, r)
	default:
		return types.Null()
	}
}

func evalArith(sym string, l, r types.Value) types.Value {
	if l.Kind() == types.KindInt && r.Kind() == types.KindInt {
		a, b := l.Int(), r.Int()
		switch sym {
		case "+":
			return types.NewInt(a + b)
		case "-":
			return types.NewInt(a - b)
		case "*":
			return types.NewInt(a * b)
		case "/":
			if b == 0 {
				return types.Null()
			}
			return types.NewInt(a / b)
		case "%":
			if b == 0 {
				return types.Null()
			}
			return types.NewInt(a % b)
		}
	}
	a, okA := types.CoerceFloat(l)
	b, okB := types.CoerceFloat(r)
	if !okA || !okB {
		return types.Null()
	}
	switch sym {
	case "+":
		return types.NewFloat(a + b)
	case "-":
		return types.NewFloat(a - b)
	case "*":
		return types.NewFloat(a * b)
	case "/":
		if b == 0 {
			return types.Null()
		}
		return types.NewFloat(a / b)
	case "%":
		if b == 0 {
			return types.Null()
		}
		return types.NewFloat(math.Mod(a, b))
	}
	return types.Null()
}

func evalUnary(sym string, v types.Value) types.Value {
	switch sym {
	case "not":
		return types.NewBool(!v.Truthy())
	case "neg":
		switch v.Kind() {
		case types.KindInt:
			return types.NewInt(-v.Int())
		case types.KindFloat:
			return types.NewFloat(-v.Float())
		}
		return types.Null()
	default:
		return types.Null()
	}
}

func evalCall(name string, args []types.Value) types.Value {
	switch name {
	case "COUNT":
		if len(args) != 1 || args[0].Kind() != types.KindBag {
			return types.Null()
		}
		return types.NewInt(int64(args[0].Bag().Len()))
	case "SUM", "AVG", "MIN", "MAX":
		if len(args) != 1 || args[0].Kind() != types.KindBag {
			return types.Null()
		}
		return foldBag(name, args[0].Bag())
	case "ISEMPTY":
		if len(args) != 1 || args[0].Kind() != types.KindBag {
			return types.Null()
		}
		return types.NewBool(args[0].Bag().Len() == 0)
	case "SIZE":
		if len(args) != 1 {
			return types.Null()
		}
		switch args[0].Kind() {
		case types.KindBag:
			return types.NewInt(int64(args[0].Bag().Len()))
		case types.KindString:
			return types.NewInt(int64(len(args[0].Str())))
		case types.KindTuple:
			return types.NewInt(int64(len(args[0].Tuple())))
		}
		return types.Null()
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return types.Null()
			}
			sb.WriteString(a.String())
		}
		return types.NewString(sb.String())
	case "LOWER":
		if len(args) != 1 || args[0].Kind() != types.KindString {
			return types.Null()
		}
		return types.NewString(strings.ToLower(args[0].Str()))
	case "UPPER":
		if len(args) != 1 || args[0].Kind() != types.KindString {
			return types.Null()
		}
		return types.NewString(strings.ToUpper(args[0].Str()))
	case "ROUND":
		if len(args) != 1 {
			return types.Null()
		}
		if f, ok := types.CoerceFloat(args[0]); ok {
			return types.NewInt(int64(math.Round(f)))
		}
		return types.Null()
	case "ABS":
		if len(args) != 1 {
			return types.Null()
		}
		switch args[0].Kind() {
		case types.KindInt:
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return types.NewInt(v)
		case types.KindFloat:
			return types.NewFloat(math.Abs(args[0].Float()))
		}
		return types.Null()
	case "DISTINCTCOUNT":
		// Number of distinct tuples in a bag (used by PigMix L4's nested
		// distinct + count idiom).
		if len(args) != 1 || args[0].Kind() != types.KindBag {
			return types.Null()
		}
		return types.NewInt(distinctCount(args[0].Bag()))
	default:
		return types.Null()
	}
}

func distinctCount(b *types.Bag) int64 {
	tuples := make([]types.Tuple, len(b.Tuples))
	copy(tuples, b.Tuples)
	sort.Slice(tuples, func(i, j int) bool { return types.CompareTuples(tuples[i], tuples[j]) < 0 })
	var n int64
	for i := range tuples {
		if i == 0 || types.CompareTuples(tuples[i], tuples[i-1]) != 0 {
			n++
		}
	}
	return n
}

// foldBag computes SUM/AVG/MIN/MAX over the first field of each tuple in the
// bag, skipping nulls (Pig aggregate semantics).
func foldBag(name string, b *types.Bag) types.Value {
	var (
		sum    float64
		allInt = true
		count  int64
		best   types.Value
	)
	for _, t := range b.Tuples {
		if len(t) == 0 || t[0].IsNull() {
			continue
		}
		v := t[0]
		switch name {
		case "SUM", "AVG":
			f, ok := types.CoerceFloat(v)
			if !ok {
				continue
			}
			if v.Kind() != types.KindInt {
				allInt = false
			}
			sum += f
			count++
		case "MIN":
			if count == 0 || types.Compare(v, best) < 0 {
				best = v
			}
			count++
		case "MAX":
			if count == 0 || types.Compare(v, best) > 0 {
				best = v
			}
			count++
		}
	}
	if count == 0 {
		return types.Null()
	}
	switch name {
	case "SUM":
		if allInt {
			return types.NewInt(int64(sum))
		}
		return types.NewFloat(sum)
	case "AVG":
		return types.NewFloat(sum / float64(count))
	default:
		return best
	}
}

// String renders the expression for diagnostics; identical to Canonical.
func (e *Expr) String() string { return e.Canonical() }
