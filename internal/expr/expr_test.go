package expr

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/types"
)

func bindOrFatal(t *testing.T, e *Expr, s types.Schema) *Expr {
	t.Helper()
	b, err := e.Bind(s)
	if err != nil {
		t.Fatalf("bind %s: %v", e, err)
	}
	return b
}

var testSchema = types.NewSchema(
	types.Field{Name: "user", Kind: types.KindString},
	types.Field{Name: "n", Kind: types.KindInt},
	types.Field{Name: "rev", Kind: types.KindFloat},
)

var testTuple = types.Tuple{types.NewString("alice"), types.NewInt(7), types.NewFloat(2.5)}

func TestBindResolvesNames(t *testing.T) {
	e := bindOrFatal(t, Binary("+", Col("n"), Lit(types.NewInt(1))), testSchema)
	if got := e.Eval(testTuple); got.Int() != 8 {
		t.Errorf("n+1 = %v", got)
	}
	if _, err := Col("missing").Bind(testSchema); err == nil {
		t.Error("binding unknown column should fail")
	}
	if _, err := ColIdx(9).Bind(testSchema); err == nil {
		t.Error("binding out-of-range index should fail")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		sym  string
		l, r types.Value
		want types.Value
	}{
		{"+", types.NewInt(2), types.NewInt(3), types.NewInt(5)},
		{"-", types.NewInt(2), types.NewInt(3), types.NewInt(-1)},
		{"*", types.NewInt(4), types.NewInt(3), types.NewInt(12)},
		{"/", types.NewInt(7), types.NewInt(2), types.NewInt(3)},
		{"%", types.NewInt(7), types.NewInt(2), types.NewInt(1)},
		{"/", types.NewInt(7), types.NewInt(0), types.Null()},
		{"+", types.NewFloat(1.5), types.NewInt(1), types.NewFloat(2.5)},
		{"/", types.NewFloat(1), types.NewFloat(0), types.Null()},
		{"+", types.NewString("x"), types.NewInt(1), types.Null()},
	}
	for _, c := range cases {
		got := Binary(c.sym, Lit(c.l), Lit(c.r)).Eval(nil)
		if !types.Equal(got, c.want) {
			t.Errorf("%v %s %v = %v, want %v", c.l, c.sym, c.r, got, c.want)
		}
	}
}

func TestComparisonsAndBooleans(t *testing.T) {
	e := bindOrFatal(t, Binary("and",
		Binary(">", Col("n"), Lit(types.NewInt(5))),
		Binary("==", Col("user"), Lit(types.NewString("alice")))), testSchema)
	if !e.Eval(testTuple).Truthy() {
		t.Error("predicate should hold")
	}
	ne := bindOrFatal(t, Unary("not", Binary("<", Col("rev"), Lit(types.NewFloat(100)))), testSchema)
	if ne.Eval(testTuple).Truthy() {
		t.Error("not(rev<100) should be false")
	}
	// Null comparison propagates null, which is not truthy.
	nullCmp := Binary("<", Lit(types.Null()), Lit(types.NewInt(1)))
	if nullCmp.Eval(nil).Truthy() {
		t.Error("null < 1 should not be truthy")
	}
}

func bagOf(rows ...types.Tuple) types.Value {
	b := &types.Bag{}
	for _, r := range rows {
		b.Add(r)
	}
	return types.NewBag(b)
}

func TestAggregates(t *testing.T) {
	bag := bagOf(
		types.Tuple{types.NewInt(1)},
		types.Tuple{types.NewInt(5)},
		types.Tuple{types.NewInt(3)},
		types.Tuple{types.Null()},
	)
	cases := []struct {
		fn   string
		want types.Value
	}{
		{"COUNT", types.NewInt(4)}, // COUNT counts all tuples
		{"SUM", types.NewInt(9)},
		{"AVG", types.NewFloat(3)},
		{"MIN", types.NewInt(1)},
		{"MAX", types.NewInt(5)},
	}
	for _, c := range cases {
		got := Call(c.fn, Lit(bag)).Eval(nil)
		if !types.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.fn, got, c.want)
		}
	}
	if got := Call("SUM", Lit(bagOf())).Eval(nil); !got.IsNull() {
		t.Errorf("SUM of empty bag = %v, want null", got)
	}
	if got := Call("ISEMPTY", Lit(bagOf())).Eval(nil); !got.Truthy() {
		t.Error("ISEMPTY of empty bag should be true")
	}
	fbag := bagOf(types.Tuple{types.NewFloat(1.5)}, types.Tuple{types.NewInt(1)})
	if got := Call("SUM", Lit(fbag)).Eval(nil); !types.Equal(got, types.NewFloat(2.5)) {
		t.Errorf("mixed SUM = %v", got)
	}
}

func TestDistinctCount(t *testing.T) {
	bag := bagOf(
		types.Tuple{types.NewString("a")},
		types.Tuple{types.NewString("b")},
		types.Tuple{types.NewString("a")},
	)
	if got := Call("DISTINCTCOUNT", Lit(bag)).Eval(nil); got.Int() != 2 {
		t.Errorf("DISTINCTCOUNT = %v", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	if got := Call("CONCAT", Lit(types.NewString("a")), Lit(types.NewString("b"))).Eval(nil); got.Str() != "ab" {
		t.Errorf("CONCAT = %v", got)
	}
	if got := Call("LOWER", Lit(types.NewString("ABC"))).Eval(nil); got.Str() != "abc" {
		t.Errorf("LOWER = %v", got)
	}
	if got := Call("UPPER", Lit(types.NewString("abc"))).Eval(nil); got.Str() != "ABC" {
		t.Errorf("UPPER = %v", got)
	}
	if got := Call("SIZE", Lit(types.NewString("abcd"))).Eval(nil); got.Int() != 4 {
		t.Errorf("SIZE = %v", got)
	}
	if got := Call("ROUND", Lit(types.NewFloat(2.6))).Eval(nil); got.Int() != 3 {
		t.Errorf("ROUND = %v", got)
	}
	if got := Call("ABS", Lit(types.NewInt(-5))).Eval(nil); got.Int() != 5 {
		t.Errorf("ABS = %v", got)
	}
	if got := Call("NOSUCHFN", Lit(types.NewInt(1))).Eval(nil); !got.IsNull() {
		t.Errorf("unknown function = %v, want null", got)
	}
}

func TestBagProjection(t *testing.T) {
	inner := types.NewSchema(
		types.Field{Name: "user", Kind: types.KindString},
		types.Field{Name: "rev", Kind: types.KindFloat},
	)
	grouped := types.NewSchema(
		types.Field{Name: "group", Kind: types.KindString},
		types.Field{Name: "C", Kind: types.KindBag, Sub: &inner},
	)
	bag := bagOf(
		types.Tuple{types.NewString("a"), types.NewFloat(1.5)},
		types.Tuple{types.NewString("a"), types.NewFloat(2.5)},
	)
	row := types.Tuple{types.NewString("a"), bag}

	e := bindOrFatal(t, Call("SUM", BagProj(Col("C"), "rev")), grouped)
	if got := e.Eval(row); !types.Equal(got, types.NewFloat(4)) {
		t.Errorf("SUM(C.rev) = %v", got)
	}
	// Unknown nested field fails at bind time.
	if _, err := Call("SUM", BagProj(Col("C"), "bogus")).Bind(grouped); err == nil {
		t.Error("binding unknown bag field should fail")
	}
	// Projecting a non-bag yields null at eval time.
	bad := bindOrFatal(t, BagProj(Col("group"), "rev").withIndex(0), grouped)
	if got := bad.Eval(row); got.Kind() != types.KindNull {
		t.Errorf("bagproj of scalar = %v", got)
	}
}

// withIndex force-binds the projection index for tests that bypass schema
// resolution.
func (e *Expr) withIndex(i int) *Expr {
	e.Index = i
	return e
}

func TestCanonicalStableAndAliasFree(t *testing.T) {
	s1 := types.SchemaFromNames("user", "rev")
	s2 := types.SchemaFromNames("u", "r") // same positions, different aliases
	e1 := bindOrFatal(t, Binary("==", Col("user"), Lit(types.NewString("x"))), s1)
	e2 := bindOrFatal(t, Binary("==", Col("u"), Lit(types.NewString("x"))), s2)
	if e1.Canonical() != e2.Canonical() {
		t.Errorf("alias change altered canonical: %q vs %q", e1.Canonical(), e2.Canonical())
	}
}

func TestCanonicalCommutativeNormalization(t *testing.T) {
	a := Binary("==", ColIdx(1), ColIdx(0))
	b := Binary("==", ColIdx(0), ColIdx(1))
	if a.Canonical() != b.Canonical() {
		t.Errorf("commutative == not normalized: %q vs %q", a.Canonical(), b.Canonical())
	}
	lt := Binary("<", ColIdx(1), ColIdx(0))
	gt := Binary("<", ColIdx(0), ColIdx(1))
	if lt.Canonical() == gt.Canonical() {
		t.Error("non-commutative < must not normalize")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	e := bindOrFatal(t, Binary("and",
		Binary(">=", Col("n"), Lit(types.NewInt(5))),
		Call("ISEMPTY", BagProj(ColIdx(0), "x").withIndex(2))), testSchema)
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Expr
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Canonical() != e.Canonical() {
		t.Errorf("JSON round trip changed canonical: %q vs %q", back.Canonical(), e.Canonical())
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := Binary("+", Col("n"), Lit(types.NewInt(1)))
	c := e.Clone()
	c.Args[0].Name = "changed"
	if e.Args[0].Name != "n" {
		t.Error("clone aliases original args")
	}
}

func TestIsAggregateCall(t *testing.T) {
	if !Call("sum", ColIdx(0)).IsAggregateCall() {
		t.Error("sum should be aggregate (case-insensitive)")
	}
	if Call("CONCAT").IsAggregateCall() {
		t.Error("CONCAT is not aggregate")
	}
}

func TestCanonicalLiteralIncludesKind(t *testing.T) {
	i := Lit(types.NewInt(1)).Canonical()
	s := Lit(types.NewString("1")).Canonical()
	if i == s {
		t.Error("int 1 and string \"1\" literals must differ canonically")
	}
	if !strings.Contains(i, "int") || !strings.Contains(s, "string") {
		t.Errorf("canonical literals lack kinds: %q %q", i, s)
	}
}
