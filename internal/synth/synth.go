// Package synth implements the synthetic workload of §7.5: a 12-field data
// set whose string fields study Project data reduction and whose integer
// fields have calibrated cardinalities so equality predicates select fixed
// fractions of the data (Table 2), plus the QP (projection sweep) and QF
// (filter sweep) query templates.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dfs"
	"repro/internal/types"
)

// Path is the DFS location of the generated table.
const Path = "synth/data"

// FieldSpec describes one filterable field of Table 2.
type FieldSpec struct {
	Name        string
	Cardinality float64 // number of distinct values
	Selectivity float64 // fraction selected by an equality predicate
}

// Table2 returns the paper's field specification: cardinalities 200, 100,
// 20, 10, 5, 2, and 1.67, i.e. selectivities 0.5%–60%.
func Table2() []FieldSpec {
	return []FieldSpec{
		{Name: "field6", Cardinality: 200, Selectivity: 0.005},
		{Name: "field7", Cardinality: 100, Selectivity: 0.01},
		{Name: "field8", Cardinality: 20, Selectivity: 0.05},
		{Name: "field9", Cardinality: 10, Selectivity: 0.10},
		{Name: "field10", Cardinality: 5, Selectivity: 0.20},
		{Name: "field11", Cardinality: 2, Selectivity: 0.50},
		{Name: "field12", Cardinality: 1.67, Selectivity: 0.60},
	}
}

// Schema returns the 12-field schema: field1–field5 are 20-character
// strings, field6–field12 integers.
func Schema() types.Schema {
	var fields []types.Field
	for i := 1; i <= 5; i++ {
		fields = append(fields, types.Field{Name: fmt.Sprintf("field%d", i), Kind: types.KindString})
	}
	for i := 6; i <= 12; i++ {
		fields = append(fields, types.Field{Name: fmt.Sprintf("field%d", i), Kind: types.KindInt})
	}
	return types.Schema{Fields: fields}
}

// Generate writes rows of synthetic data. String fields are random
// 20-character strings; integer field values are distributed so that the
// predicate "fieldN == 0" selects the Table 2 fraction.
func Generate(fs *dfs.FS, rows, partitions int, seed int64) error {
	if rows <= 0 {
		return fmt.Errorf("synth: rows must be positive")
	}
	if partitions <= 0 {
		partitions = 4
	}
	rng := rand.New(rand.NewSource(seed))
	specs := Table2()
	data := make([]types.Tuple, rows)
	for i := range data {
		t := make(types.Tuple, 12)
		// The string fields carry the paper's size structure (20 chars
		// each, so projecting k of them retains ~18%..74% of the bytes).
		// field2..field5 are denormalized attributes of field1 so that
		// QP's group-by collapses to ~1000 groups regardless of how many
		// fields are projected — the grouped output stays small while the
		// projected (materialized) data grows, as in the paper's sweep.
		key := rng.Intn(1000)
		t[0] = types.NewString(fmt.Sprintf("key%017d", key))
		for f := 1; f < 5; f++ {
			t[f] = types.NewString(fmt.Sprintf("val%d%016d", f, key))
		}
		for f, spec := range specs {
			if spec.Cardinality >= 2 {
				t[5+f] = types.NewInt(int64(rng.Intn(int(spec.Cardinality))))
			} else {
				// Fractional cardinality (1.67): value 0 with probability
				// equal to the target selectivity.
				v := int64(1)
				if rng.Float64() < spec.Selectivity {
					v = 0
				}
				t[5+f] = types.NewInt(v)
			}
		}
		data[i] = t
	}
	return fs.WritePartitioned(Path, Schema(), data, partitions)
}

func randString(rng *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + rng.Intn(26)))
	}
	return sb.String()
}

const loadStmt = `A = load 'synth/data' as (field1, field2, field3, field4, field5, field6:int, field7:int, field8:int, field9:int, field10:int, field11:int, field12:int);`

// QP returns the projection-sweep template of §7.5 selecting the first
// numFields string fields (1–5), grouping by them, and counting.
func QP(numFields int, out string) (string, error) {
	if numFields < 1 || numFields > 5 {
		return "", fmt.Errorf("synth: QP selects 1..5 fields, got %d", numFields)
	}
	var cols []string
	for i := 1; i <= numFields; i++ {
		cols = append(cols, fmt.Sprintf("field%d", i))
	}
	colList := strings.Join(cols, ", ")
	keySpec := colList
	if numFields > 1 {
		keySpec = "(" + colList + ")"
	}
	return fmt.Sprintf(`%s
B = foreach A generate %s;
C = group B by %s;
D = foreach C generate group, COUNT(B);
store D into '%s';`, loadStmt, colList, keySpec, out), nil
}

// QF returns the filter-sweep template of §7.5 applying an equality
// predicate on one of field6..field12 (always "== 0", matching the Table 2
// selectivities), grouping by field1, and counting.
func QF(fieldIdx int, out string) (string, error) {
	if fieldIdx < 6 || fieldIdx > 12 {
		return "", fmt.Errorf("synth: QF filters field6..field12, got field%d", fieldIdx)
	}
	return fmt.Sprintf(`%s
B = filter A by field%d == 0;
C = group B by field1;
D = foreach C generate group, COUNT(B);
store D into '%s';`, loadStmt, fieldIdx, out), nil
}
