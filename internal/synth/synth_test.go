package synth

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mrcompile"
	"repro/internal/piglatin"
)

func TestGenerateSelectivities(t *testing.T) {
	fs := dfs.New()
	const rows = 20000
	if err := Generate(fs, rows, 4, 3); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadAll(Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != rows {
		t.Fatalf("rows = %d", len(data))
	}
	// Each integer field's "== 0" selectivity must approximate Table 2.
	for i, spec := range Table2() {
		hits := 0
		for _, row := range data {
			if row[5+i].Int() == 0 {
				hits++
			}
		}
		got := float64(hits) / rows
		if math.Abs(got-spec.Selectivity) > spec.Selectivity*0.25+0.005 {
			t.Errorf("%s selectivity = %.4f, want ~%.4f", spec.Name, got, spec.Selectivity)
		}
	}
	// String fields are 20 characters.
	if l := len(data[0][1].Str()); l != 20 {
		t.Errorf("string field length = %d", l)
	}
}

func TestProjectionSizeRatios(t *testing.T) {
	// The paper designed the data so projecting 1 field keeps ~18% of the
	// bytes and all 5 keep ~74%. Verify the generated encoding reproduces
	// that shape (monotone growth from <25% to >55%).
	fs := dfs.New()
	if err := Generate(fs, 5000, 2, 3); err != nil {
		t.Fatal(err)
	}
	full, err := fs.StatFile(Path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadAll(Path)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for k := 1; k <= 5; k++ {
		var bytes int64
		for _, row := range data {
			for f := 0; f < k; f++ {
				bytes += int64(len(row[f].Str())) + 2
			}
		}
		ratio := float64(bytes) / float64(full.Bytes)
		if ratio <= prev {
			t.Errorf("projection ratio not increasing at k=%d: %.3f", k, ratio)
		}
		prev = ratio
		if k == 1 && (ratio < 0.10 || ratio > 0.30) {
			t.Errorf("1-field ratio = %.3f, want ~0.18", ratio)
		}
		if k == 5 && (ratio < 0.55 || ratio > 0.95) {
			t.Errorf("5-field ratio = %.3f, want ~0.74", ratio)
		}
	}
}

func TestQPTemplatesCompile(t *testing.T) {
	for k := 1; k <= 5; k++ {
		src, err := QP(k, "out/qp")
		if err != nil {
			t.Fatal(err)
		}
		script, err := piglatin.Parse(src)
		if err != nil {
			t.Fatalf("QP(%d) parse: %v\n%s", k, err, src)
		}
		plan, err := logical.Build(script)
		if err != nil {
			t.Fatalf("QP(%d) build: %v", k, err)
		}
		if _, err := mrcompile.Compile(plan, "tmp/qp"); err != nil {
			t.Fatalf("QP(%d) compile: %v", k, err)
		}
	}
	if _, err := QP(0, "o"); err == nil {
		t.Error("QP(0) accepted")
	}
	if _, err := QP(6, "o"); err == nil {
		t.Error("QP(6) accepted")
	}
}

func TestQFTemplatesCompile(t *testing.T) {
	for f := 6; f <= 12; f++ {
		src, err := QF(f, "out/qf")
		if err != nil {
			t.Fatal(err)
		}
		script, err := piglatin.Parse(src)
		if err != nil {
			t.Fatalf("QF(%d) parse: %v", f, err)
		}
		plan, err := logical.Build(script)
		if err != nil {
			t.Fatalf("QF(%d) build: %v", f, err)
		}
		if _, err := mrcompile.Compile(plan, "tmp/qf"); err != nil {
			t.Fatalf("QF(%d) compile: %v", f, err)
		}
		if !strings.Contains(src, "filter A by field") {
			t.Error("QF missing filter")
		}
	}
	if _, err := QF(5, "o"); err == nil {
		t.Error("QF(5) accepted")
	}
	if _, err := QF(13, "o"); err == nil {
		t.Error("QF(13) accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := Generate(dfs.New(), 0, 1, 1); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	specs := Table2()
	if len(specs) != 7 {
		t.Fatalf("fields = %d", len(specs))
	}
	wantSel := []float64{0.005, 0.01, 0.05, 0.10, 0.20, 0.50, 0.60}
	for i, s := range specs {
		if s.Selectivity != wantSel[i] {
			t.Errorf("%s selectivity = %v, want %v", s.Name, s.Selectivity, wantSel[i])
		}
	}
}
