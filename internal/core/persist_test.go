package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRepositorySaveLoadRoundTrip(t *testing.T) {
	repo := NewRepository()
	q1 := compileJobs(t, q1Src, "tmp/q1")
	e := entryFromJob(t, q1[0], "persisted")
	e.InputVersions = map[string]uint64{"page_views": 3, "users": 7}
	e.UseCount = 5
	e.LastUsedSeq = 9
	e.OwnsFile = true
	if _, _, err := repo.Add(e); err != nil {
		t.Fatal(err)
	}
	sub := compileJobs(t, `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into 'restore/pv_proj';`, "tmp/s")
	if _, _, err := repo.Add(entryFromJob(t, sub[0], "proj")); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d entries", back.Len())
	}
	got := back.Get("persisted")
	if got == nil {
		t.Fatal("entry lost")
	}
	if got.UseCount != 5 || got.LastUsedSeq != 9 || !got.OwnsFile {
		t.Errorf("stats lost: %+v", got)
	}
	if got.InputVersions["users"] != 7 {
		t.Errorf("input versions lost: %v", got.InputVersions)
	}

	// The reloaded repository must still match and order correctly.
	q2 := compileJobs(t, q2Src, "tmp/q2")
	m, ok := FindBestMatch(q2[0].Plan, back)
	if !ok || m.Entry.ID != "persisted" {
		t.Errorf("reloaded repository failed to match: %+v", m)
	}
}

func TestLoadRepositoryRejectsCorrupt(t *testing.T) {
	if _, err := LoadRepository(strings.NewReader("not json")); err == nil {
		t.Error("corrupt JSON accepted")
	}
	if _, err := LoadRepository(strings.NewReader(`{"version": 99, "entries": []}`)); err == nil {
		t.Error("unknown version accepted")
	}
	// An entry whose plan has no store is invalid.
	if _, err := LoadRepository(strings.NewReader(
		`{"version":1,"entries":[{"id":"x","plan":{"ops":[]},"outputPath":"o"}]}`)); err == nil {
		t.Error("invalid entry accepted")
	}
}

func TestSaveLoadEmptyRepository(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRepository().Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepository(&buf)
	if err != nil || back.Len() != 0 {
		t.Errorf("empty round trip: %v len=%d", err, back.Len())
	}
}

func TestPersistedEntryMatchesAfterReload(t *testing.T) {
	// Statistics relevant to ordering must survive the trip.
	repo := NewRepository()
	q1 := compileJobs(t, q1Src, "tmp/q1")
	e := entryFromJob(t, q1[0], "big")
	e.InputBytes = 1 << 40
	e.OutputBytes = 1 << 20
	e.ExecTime = time.Hour
	if _, _, err := repo.Add(e); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Get("big")
	if got.ExecTime != time.Hour || got.InputBytes != 1<<40 {
		t.Errorf("stats = %+v", got)
	}
}
