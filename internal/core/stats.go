package core

import (
	"sync/atomic"
	"time"
)

// Stats aggregates reuse counters across the lifetime of a ReStore
// deployment. All methods are safe for concurrent use; the counters back the
// restored daemon's metrics endpoint (reuse hit-rate, bytes and simulated
// time saved).
type Stats struct {
	queries        atomic.Int64
	queriesReused  atomic.Int64
	wholeJobReuses atomic.Int64
	subJobReuses   atomic.Int64
	jobsCompiled   atomic.Int64
	jobsExecuted   atomic.Int64
	registered     atomic.Int64
	evicted        atomic.Int64
	savedBytes     atomic.Int64
	savedTimeNanos atomic.Int64
	simTimeNanos   atomic.Int64

	// Match-path observability: cumulative pairwise-traversal probes,
	// fingerprint-index hits, and unindexable fallback scans (see
	// MatchStats in matcher.go).
	matchProbes        atomic.Int64
	matchIndexHits     atomic.Int64
	matchFallbackScans atomic.Int64

	// Hot-path observability: prepared-plan cache outcomes and admission-
	// time result fast-path outcomes (see HotStats).
	hotPlanHits   atomic.Int64
	hotPlanMisses atomic.Int64
	hotServed     atomic.Int64
	hotFallbacks  atomic.Int64

	// rejected counts candidates the §5 keep rules (or a vanished input)
	// kept out of the repository.
	rejected atomic.Int64
	// Eviction-path observability (see EvictStats in selector.go).
	evictScans          atomic.Int64
	evictProbes         atomic.Int64
	evictDeleteErrors   atomic.Int64
	evictRequeueRetired atomic.Int64
	outputsRetired      atomic.Int64
}

// QueryStats describes one executed query for aggregation.
type QueryStats struct {
	// WholeJobReuses and SubJobReuses count the rewrites the matcher applied.
	WholeJobReuses int
	SubJobReuses   int
	// JobsCompiled is the workflow's job count before rewriting;
	// JobsExecuted after (eliminated jobs never run).
	JobsCompiled int
	JobsExecuted int
	// Registered counts repository entries added; Rejected the candidates
	// the §5 keep rules turned away.
	Registered int
	Rejected   int
	// Evict counts the eviction-path work this query's phase-0 passes did
	// (entries evicted, staleness scans/probes, delete failures).
	Evict EvictStats
	// SavedBytes estimates input bytes not re-scanned thanks to reuse;
	// SavedTime estimates the recomputation time avoided (the reused
	// entries' recorded execution times).
	SavedBytes int64
	SavedTime  time.Duration
	// SimulatedTime is the Equation-1 completion time of what did run.
	SimulatedTime time.Duration
	// Match counts the matcher probe work this query's rewrite scans did.
	Match MatchStats
}

// RecordQuery folds one query's outcome into the counters.
func (s *Stats) RecordQuery(q QueryStats) {
	s.queries.Add(1)
	if q.WholeJobReuses+q.SubJobReuses > 0 {
		s.queriesReused.Add(1)
	}
	s.wholeJobReuses.Add(int64(q.WholeJobReuses))
	s.subJobReuses.Add(int64(q.SubJobReuses))
	s.jobsCompiled.Add(int64(q.JobsCompiled))
	s.jobsExecuted.Add(int64(q.JobsExecuted))
	s.registered.Add(int64(q.Registered))
	s.rejected.Add(int64(q.Rejected))
	s.RecordEviction(q.Evict)
	s.savedBytes.Add(q.SavedBytes)
	s.savedTimeNanos.Add(int64(q.SavedTime))
	s.simTimeNanos.Add(int64(q.SimulatedTime))
	s.matchProbes.Add(q.Match.Probes)
	s.matchIndexHits.Add(q.Match.IndexHits)
	s.matchFallbackScans.Add(q.Match.FallbackScans)
}

// RecordPlanCache counts one prepared-plan cache outcome: hit (a Prepared
// minted by cloning a cached compiled plan — no parse, plan, or compile) or
// miss (a full preparation that populated the cache).
func (s *Stats) RecordPlanCache(hit bool) {
	if hit {
		s.hotPlanHits.Add(1)
	} else {
		s.hotPlanMisses.Add(1)
	}
}

// RecordFastPath counts one admission-time result fast-path outcome: served
// (the whole query answered from fresh stored outputs, no execution lease)
// or a fallback to normal execution (no fresh whole-query match, or the
// pinned read failed).
func (s *Stats) RecordFastPath(served bool) {
	if served {
		s.hotServed.Add(1)
	} else {
		s.hotFallbacks.Add(1)
	}
}

// RecordMatchWork folds matcher probe work that happened outside an executed
// query — fast-path probes that fell back to normal execution still did
// index lookups and containment tests worth counting.
func (s *Stats) RecordMatchWork(m MatchStats) {
	s.matchProbes.Add(m.Probes)
	s.matchIndexHits.Add(m.IndexHits)
	s.matchFallbackScans.Add(m.FallbackScans)
}

// RecordEviction folds one eviction pass's work into the counters — used by
// RecordQuery for the per-query passes and directly by the background GC
// loop, whose sweeps run outside any query.
func (s *Stats) RecordEviction(e EvictStats) {
	s.evicted.Add(e.Evicted)
	s.evictScans.Add(e.Scans)
	s.evictProbes.Add(e.Probes)
	s.evictDeleteErrors.Add(e.DeleteErrors)
	s.evictRequeueRetired.Add(e.RequeueRetired)
	s.outputsRetired.Add(e.OutputsRetired)
}

// StatsSnapshot is a point-in-time copy of the counters plus derived rates,
// in the JSON shape served by the daemon's metrics endpoint.
type StatsSnapshot struct {
	Queries        int64         `json:"queries"`
	QueriesReused  int64         `json:"queriesReused"`
	HitRate        float64       `json:"hitRate"`
	WholeJobReuses int64         `json:"wholeJobReuses"`
	SubJobReuses   int64         `json:"subJobReuses"`
	JobsCompiled   int64         `json:"jobsCompiled"`
	JobsExecuted   int64         `json:"jobsExecuted"`
	JobsEliminated int64         `json:"jobsEliminated"`
	Registered     int64         `json:"registered"`
	Rejected       int64         `json:"candidatesRejected"`
	Evicted        int64         `json:"evicted"`
	SavedBytes     int64         `json:"savedBytes"`
	SavedTime      time.Duration `json:"savedTimeNanos"`
	SimulatedTime  time.Duration `json:"simulatedTimeNanos"`
	// Match is the cumulative matcher probe work: served by /v1/metrics
	// (under "reuse", next to "wal") so index effectiveness is observable
	// under live traffic.
	Match MatchStats `json:"match"`
	// Evict is the cumulative eviction-path work (staleness scans and
	// probes, delete failures and their retirements, retention): served
	// under "reuse" so the indexed path's flat per-query cost — and any
	// delete trouble — is observable under live traffic.
	Evict EvictStats `json:"evict"`
	// Hot is the zero-compile hot path's work: prepared-plan cache hit
	// rate and result fast-path serve rate, served under "reuse" so the
	// repeat-traffic latency collapse is observable under live traffic.
	Hot HotStats `json:"hot"`
}

// HotStats counts the zero-compile hot path's outcomes.
type HotStats struct {
	// PlanCacheHits counts preparations served by cloning a cached compiled
	// plan (skipping parse/plan/compile); PlanCacheMisses counts full
	// preparations that populated the cache. Preparations on a System with
	// the cache disabled count as neither.
	PlanCacheHits   int64 `json:"planCacheHits"`
	PlanCacheMisses int64 `json:"planCacheMisses"`
	// ResultsServed counts queries answered entirely from fresh stored
	// outputs without execution leases; Fallbacks counts fast-path probes
	// that found no fresh whole-query match (or lost their pinned read) and
	// fell back to normal execution.
	ResultsServed int64 `json:"resultsServed"`
	Fallbacks     int64 `json:"fallbacks"`
}

// Snapshot returns a consistent-enough copy of the counters (each counter is
// read atomically; cross-counter skew is bounded by in-flight queries).
func (s *Stats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Queries:        s.queries.Load(),
		QueriesReused:  s.queriesReused.Load(),
		WholeJobReuses: s.wholeJobReuses.Load(),
		SubJobReuses:   s.subJobReuses.Load(),
		JobsCompiled:   s.jobsCompiled.Load(),
		JobsExecuted:   s.jobsExecuted.Load(),
		Registered:     s.registered.Load(),
		Rejected:       s.rejected.Load(),
		Evicted:        s.evicted.Load(),
		SavedBytes:     s.savedBytes.Load(),
		SavedTime:      time.Duration(s.savedTimeNanos.Load()),
		SimulatedTime:  time.Duration(s.simTimeNanos.Load()),
		Match: MatchStats{
			Probes:        s.matchProbes.Load(),
			IndexHits:     s.matchIndexHits.Load(),
			FallbackScans: s.matchFallbackScans.Load(),
		},
		Evict: EvictStats{
			Scans:          s.evictScans.Load(),
			Probes:         s.evictProbes.Load(),
			Evicted:        s.evicted.Load(),
			DeleteErrors:   s.evictDeleteErrors.Load(),
			RequeueRetired: s.evictRequeueRetired.Load(),
			OutputsRetired: s.outputsRetired.Load(),
		},
		Hot: HotStats{
			PlanCacheHits:   s.hotPlanHits.Load(),
			PlanCacheMisses: s.hotPlanMisses.Load(),
			ResultsServed:   s.hotServed.Load(),
			Fallbacks:       s.hotFallbacks.Load(),
		},
	}
	snap.JobsEliminated = snap.JobsCompiled - snap.JobsExecuted
	if snap.Queries > 0 {
		snap.HitRate = float64(snap.QueriesReused) / float64(snap.Queries)
	}
	return snap
}
