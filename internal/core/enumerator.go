package core

import (
	"fmt"

	"repro/internal/physical"
)

// Heuristic selects which operators' outputs the sub-job enumerator
// materializes (§4).
type Heuristic int

const (
	// HeuristicOff injects nothing: only whole-job outputs are candidates.
	HeuristicOff Heuristic = iota
	// HeuristicConservative materializes operators known to reduce their
	// input size: Project (Foreach) and Filter.
	HeuristicConservative
	// HeuristicAggressive additionally materializes expensive operators:
	// Join, Group, and CoGroup. The paper's default.
	HeuristicAggressive
	// HeuristicAll ("No Heuristic" in §7.3) materializes after every
	// physical operator.
	HeuristicAll
)

// String names the heuristic as the paper does.
func (h Heuristic) String() string {
	switch h {
	case HeuristicOff:
		return "off"
	case HeuristicConservative:
		return "conservative"
	case HeuristicAggressive:
		return "aggressive"
	case HeuristicAll:
		return "no-heuristic"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// materializes reports whether the heuristic stores the output of the given
// operator kind. Load produces no new data, Store is already materialized,
// and Split is ReStore's own plumbing — none are ever candidates.
func (h Heuristic) materializes(k physical.OpKind) bool {
	switch k {
	case physical.OpLoad, physical.OpStore, physical.OpSplit:
		return false
	}
	switch h {
	case HeuristicOff:
		return false
	case HeuristicConservative:
		return k == physical.OpForeach || k == physical.OpFilter
	case HeuristicAggressive:
		switch k {
		case physical.OpForeach, physical.OpFilter, physical.OpJoin, physical.OpGroup, physical.OpCoGroup:
			return true
		}
		return false
	case HeuristicAll:
		return true
	default:
		return false
	}
}

// Injection records one materialization point added to a job plan.
type Injection struct {
	// OpID is the operator (in the job plan) whose output is materialized.
	OpID int
	// Path is the DFS file the injected Store writes.
	Path string
	// CandidatePlan is the standalone sub-job plan (Loads ... op, Store)
	// registered in the repository after execution; Splits and injected
	// stores are spliced out so it matches future pre-injection jobs.
	CandidatePlan *physical.Plan
}

// EnumerateSubJobs walks the job plan and injects Split+Store after every
// operator the heuristic selects (§4, Figure 8). pathGen must return a fresh
// DFS path per call. The plan is modified in place; the returned injections
// carry the candidate plans to register after the job executes.
//
// Operators whose output is already stored (they feed a Store directly) are
// skipped — their output will be a whole-job candidate anyway.
func EnumerateSubJobs(plan *physical.Plan, h Heuristic, pathGen func() string) ([]Injection, error) {
	if h == HeuristicOff {
		return nil, nil
	}
	order, err := plan.TopoOrder()
	if err != nil {
		return nil, err
	}
	var injections []Injection
	for _, op := range order {
		if !h.materializes(op.Kind) {
			continue
		}
		if feedsStore(plan, op.ID) {
			continue
		}
		path := pathGen()
		candidate, err := plan.ExtractPrefix(op.ID, path)
		if err != nil {
			return nil, fmt.Errorf("core: extract sub-job at %s: %w", op, err)
		}
		split := plan.Add(&physical.Operator{
			Kind:     physical.OpSplit,
			Inputs:   []int{op.ID},
			Schema:   op.Schema,
			Injected: true,
		})
		for _, c := range plan.Consumers(op.ID) {
			if c.ID == split.ID {
				continue
			}
			c.ReplaceInput(op.ID, split.ID)
		}
		plan.Add(&physical.Operator{
			Kind:     physical.OpStore,
			Path:     path,
			Inputs:   []int{split.ID},
			Schema:   op.Schema,
			Injected: true,
		})
		injections = append(injections, Injection{OpID: op.ID, Path: path, CandidatePlan: candidate})
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("core: plan invalid after sub-job injection: %w", err)
	}
	return injections, nil
}

// feedsStore reports whether the operator's output is already written to the
// DFS by a directly attached Store.
func feedsStore(plan *physical.Plan, id int) bool {
	for _, c := range plan.Consumers(id) {
		if c.Kind == physical.OpStore {
			return true
		}
		// Look through tees: op -> Split -> Store counts as stored.
		if c.Kind == physical.OpSplit {
			for _, cc := range plan.Consumers(c.ID) {
				if cc.Kind == physical.OpStore {
					return true
				}
			}
		}
	}
	return false
}

// WholeJobCandidate builds the repository candidate plan for one of the
// job's own (non-injected) Stores: the upstream cone of the store's producer
// with injected plumbing spliced out.
func WholeJobCandidate(plan *physical.Plan, store *physical.Operator) (*physical.Plan, error) {
	if store.Kind != physical.OpStore {
		return nil, fmt.Errorf("core: %s is not a Store", store)
	}
	return plan.ExtractPrefix(store.Inputs[0], store.Path)
}
