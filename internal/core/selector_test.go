package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/types"
)

func newSelector(t *testing.T, policy Policy) (*Selector, *dfs.FS) {
	t.Helper()
	fs := dfs.New()
	return &Selector{
		Repo:    NewRepository(),
		FS:      fs,
		Cluster: cluster.Default(),
		Policy:  policy,
	}, fs
}

// seedCandidate writes the base input and the candidate output files and
// returns a candidate over them.
func seedCandidate(t *testing.T, fs *dfs.FS, outPath string, inBytes, outBytes int64, execTime time.Duration) Candidate {
	t.Helper()
	if !fs.Exists("page_views") {
		if err := fs.WriteTuples("page_views", types.Schema{}, []types.Tuple{{types.NewInt(1)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteTuples(outPath, types.Schema{}, []types.Tuple{{types.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	jobs := compileJobs(t, `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into '`+outPath+`';`, "tmp/sel")
	cand, err := WholeJobCandidate(jobs[0].Plan, jobs[0].Plan.Sinks()[0])
	if err != nil {
		t.Fatal(err)
	}
	return Candidate{
		Plan:       cand,
		OutputPath: outPath,
		Schema:     types.SchemaFromNames("user", "est_revenue"),
		InputBytes: inBytes, OutputBytes: outBytes,
		ExecTime: execTime,
		OwnsFile: true,
	}
}

func TestKeepAllStoresEverything(t *testing.T) {
	s, fs := newSelector(t, DefaultPolicy())
	c := seedCandidate(t, fs, "restore/a", 100, 1000, time.Second) // output > input
	if _, added, err := s.Consider(c, 1); err != nil || !added {
		t.Fatalf("KeepAll rejected candidate: %v %v", added, err)
	}
	if s.Repo.Len() != 1 {
		t.Error("entry missing")
	}
}

func TestRule1SizeReduction(t *testing.T) {
	s, fs := newSelector(t, Policy{RequireSizeReduction: true, CheckInputVersions: true})
	grow := seedCandidate(t, fs, "restore/grow", 100, 1000, time.Second)
	if _, added, err := s.Consider(grow, 1); err != nil || added {
		t.Errorf("rule 1 accepted growing output: %v %v", added, err)
	}
	if fs.Exists("restore/grow") {
		t.Error("rejected owned file not deleted")
	}
	shrink := seedCandidate(t, fs, "restore/shrink", 1000, 100, time.Second)
	if _, added, err := s.Consider(shrink, 1); err != nil || !added {
		t.Errorf("rule 1 rejected shrinking output: %v %v", added, err)
	}
}

func TestRule2TimeSaving(t *testing.T) {
	s, fs := newSelector(t, Policy{RequireTimeSaving: true, CheckInputVersions: true})
	// Reading back ~1GB costs well over a minute of simulated time; a job
	// that only took 1s to run is not worth storing.
	cheap := seedCandidate(t, fs, "restore/cheap", 10<<30, 1<<30, time.Second)
	if _, added, err := s.Consider(cheap, 1); err != nil || added {
		t.Errorf("rule 2 accepted cheap job: %v %v", added, err)
	}
	// A job that took an hour is worth a one-minute read-back.
	costly := seedCandidate(t, fs, "restore/costly", 10<<30, 1<<30, time.Hour)
	if _, added, err := s.Consider(costly, 1); err != nil || !added {
		t.Errorf("rule 2 rejected costly job: %v %v", added, err)
	}
}

func TestDuplicateCandidateDiscarded(t *testing.T) {
	s, fs := newSelector(t, DefaultPolicy())
	a := seedCandidate(t, fs, "restore/a", 1000, 10, time.Second)
	if _, added, err := s.Consider(a, 1); err != nil || !added {
		t.Fatal(err)
	}
	b := seedCandidate(t, fs, "restore/b", 1000, 10, time.Second) // same plan, new file
	prev, added, err := s.Consider(b, 2)
	if err != nil || added {
		t.Fatalf("duplicate added: %v %v", added, err)
	}
	if prev.OutputPath != "restore/a" {
		t.Errorf("kept %s, want restore/a", prev.OutputPath)
	}
	if fs.Exists("restore/b") {
		t.Error("redundant duplicate file not deleted")
	}
	if !fs.Exists("restore/a") {
		t.Error("original file deleted")
	}
}

func TestEvictionRule3Window(t *testing.T) {
	s, fs := newSelector(t, Policy{KeepAll: true, EvictionWindow: 5})
	c := seedCandidate(t, fs, "restore/old", 1000, 10, time.Second)
	if _, _, err := s.Consider(c, 1); err != nil {
		t.Fatal(err)
	}
	// Within the window: survives.
	if ev, err := s.Evict(4, nil); err != nil || len(ev) != 0 {
		t.Errorf("early eviction: %v %v", ev, err)
	}
	// Reuse at seq 6 extends the lease.
	s.Repo.MarkUsed(s.Repo.All()[0].ID, 6)
	if ev, err := s.Evict(10, nil); err != nil || len(ev) != 0 {
		t.Errorf("evicted despite recent use: %v %v", ev, err)
	}
	// Far beyond the window: evicted, file deleted.
	ev, err := s.Evict(20, nil)
	if err != nil || len(ev) != 1 {
		t.Fatalf("eviction failed: %v %v", ev, err)
	}
	if fs.Exists("restore/old") || s.Repo.Len() != 0 {
		t.Error("evicted entry's file or index entry survived")
	}
}

func TestEvictionRule4InputModified(t *testing.T) {
	s, fs := newSelector(t, DefaultPolicy())
	c := seedCandidate(t, fs, "restore/x", 1000, 10, time.Second)
	if _, _, err := s.Consider(c, 1); err != nil {
		t.Fatal(err)
	}
	if ev, err := s.Evict(2, nil); err != nil || len(ev) != 0 {
		t.Errorf("spurious eviction: %v %v", ev, err)
	}
	// Rewrite the base input: the stored result is stale.
	if err := fs.WriteTuples("page_views", types.Schema{}, []types.Tuple{{types.NewInt(2)}}); err != nil {
		t.Fatal(err)
	}
	ev, err := s.Evict(3, nil)
	if err != nil || len(ev) != 1 {
		t.Fatalf("rule 4 eviction failed: %v %v", ev, err)
	}
	if fs.Exists("restore/x") {
		t.Error("stale file survived")
	}
}

func TestEvictionRule4InputDeleted(t *testing.T) {
	s, fs := newSelector(t, DefaultPolicy())
	c := seedCandidate(t, fs, "restore/y", 1000, 10, time.Second)
	if _, _, err := s.Consider(c, 1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("page_views"); err != nil {
		t.Fatal(err)
	}
	ev, err := s.Evict(2, nil)
	if err != nil || len(ev) != 1 {
		t.Fatalf("rule 4 (deleted input) failed: %v %v", ev, err)
	}
}

func TestUserOutputNotDeletedOnEvict(t *testing.T) {
	s, fs := newSelector(t, Policy{KeepAll: true, EvictionWindow: 1})
	c := seedCandidate(t, fs, "out/user_owned", 1000, 10, time.Second)
	c.OwnsFile = false
	if _, _, err := s.Consider(c, 1); err != nil {
		t.Fatal(err)
	}
	ev, err := s.Evict(10, nil)
	if err != nil || len(ev) != 1 {
		t.Fatalf("eviction: %v %v", ev, err)
	}
	if !fs.Exists("out/user_owned") {
		t.Error("user-owned output was deleted by eviction")
	}
}

func TestConsiderVanishedInputDiscards(t *testing.T) {
	s, fs := newSelector(t, DefaultPolicy())
	c := seedCandidate(t, fs, "restore/z", 1000, 10, time.Second)
	if err := fs.Delete("page_views"); err != nil {
		t.Fatal(err)
	}
	if _, added, err := s.Consider(c, 1); err != nil || added {
		t.Errorf("candidate with vanished input accepted: %v %v", added, err)
	}
	if fs.Exists("restore/z") {
		t.Error("discarded candidate file survived")
	}
}
