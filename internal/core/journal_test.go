package core

import (
	"bytes"
	"testing"
)

// recordingJournal captures mutations for replay.
type recordingJournal struct{ recs []Mutation }

func (j *recordingJournal) Record(m Mutation) { j.recs = append(j.recs, m) }

// TestRepositoryJournalReplayReconstructs drives adds, uses, and removes
// through a journaled repository and replays the records into a fresh one:
// the Save output must be byte-identical, and the ID counter must have
// advanced so post-replay adds cannot collide.
func TestRepositoryJournalReplayReconstructs(t *testing.T) {
	src := NewRepository()
	j := &recordingJournal{}
	src.SetJournal(j)

	q1 := compileJobs(t, q1Src, "tmp/q1")
	e1 := entryFromJob(t, q1[0], "") // repository assigns entry-1
	e1.InputVersions = map[string]uint64{"page_views": 3}
	if _, _, err := src.Add(e1); err != nil {
		t.Fatal(err)
	}
	sub := compileJobs(t, `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into 'restore/pv_proj';`, "tmp/s")
	e2 := entryFromJob(t, sub[0], "")
	if _, _, err := src.Add(e2); err != nil {
		t.Fatal(err)
	}
	src.MarkUsed(e1.ID, 4)
	src.MarkUsed(e1.ID, 9)
	src.Remove(e2.ID)

	if len(j.recs) != 5 {
		t.Fatalf("journaled %d records, want 5 (2 adds, 2 uses, 1 remove)", len(j.recs))
	}
	// The add record must be insulated from later MarkUsed on the live
	// entry: it captured UseCount at add time.
	if j.recs[0].Op != MutAdd || j.recs[0].Entry.UseCount != 0 {
		t.Fatalf("add record mutated after the fact: %+v", j.recs[0])
	}
	if j.recs[3].Op != MutUse || j.recs[3].UseCount != 2 || j.recs[3].LastUsedSeq != 9 {
		t.Fatalf("use record not absolute: %+v", j.recs[3])
	}

	dst := NewRepository()
	for _, m := range j.recs {
		if err := dst.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	var want, got bytes.Buffer
	if err := src.Save(&want); err != nil {
		t.Fatal(err)
	}
	if err := dst.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("replayed repository differs:\nwant %s\ngot  %s", want.Bytes(), got.Bytes())
	}

	// Replay is convergent: applying the whole log a second time over the
	// replayed state must change nothing (the crash-between-renames case).
	for _, m := range j.recs {
		if err := dst.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	var again bytes.Buffer
	if err := dst.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), again.Bytes()) {
		t.Fatal("double replay diverged — records are not convergent")
	}

	// nextID advanced past replayed IDs: a fresh add gets a fresh ID (the
	// removed e2's canonical slot is free again, so its plan re-registers).
	e3 := entryFromJob(t, sub[0], "")
	added, ok, err := dst.Add(e3)
	if err != nil || !ok {
		t.Fatalf("post-replay add: ok=%v err=%v", ok, err)
	}
	if added.ID == e1.ID || added.ID == e2.ID {
		t.Fatalf("post-replay add reused ID %s", added.ID)
	}
}
