package core

import (
	"testing"
	"time"

	"repro/internal/logical"
	"repro/internal/mapred"
	"repro/internal/mrcompile"
	"repro/internal/physical"
	"repro/internal/piglatin"
)

// compileJobs parses and compiles a script into its workflow jobs.
func compileJobs(t testing.TB, src, tmp string) []*mapred.Job {
	t.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := logical.Build(script)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	w, err := mrcompile.Compile(plan, tmp)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return w.Jobs
}

const q1Src = `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'out/q1';
`

const q2Src = `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'out/q2';
`

// entryFromJob builds a repository entry for a job's primary output.
func entryFromJob(t testing.TB, job *mapred.Job, id string) *Entry {
	t.Helper()
	stores := job.Plan.Sinks()
	if len(stores) != 1 {
		t.Fatalf("job %s has %d stores", job.ID, len(stores))
	}
	cand, err := WholeJobCandidate(job.Plan, stores[0])
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{
		ID:         id,
		Plan:       cand,
		OutputPath: stores[0].Path,
		Schema:     stores[0].Schema,
		InputBytes: 1000, OutputBytes: 100, ExecTime: time.Minute,
	}
	if err := e.finish(); err != nil {
		t.Fatalf("entry %s: %v", id, err)
	}
	return e
}

func TestMatchWholeJobQ1InQ2(t *testing.T) {
	// The paper's running example: Q1's join job is contained in Q2's
	// first job (Figures 2-4).
	q1 := compileJobs(t, q1Src, "tmp/q1")
	if len(q1) != 1 {
		t.Fatalf("q1 jobs = %d", len(q1))
	}
	q2 := compileJobs(t, q2Src, "tmp/q2")
	if len(q2) != 2 {
		t.Fatalf("q2 jobs = %d", len(q2))
	}
	entry := entryFromJob(t, q1[0], "q1")

	m, ok := Match(q2[0].Plan, entry)
	if !ok {
		t.Fatalf("Q1 plan not found in Q2 job1:\ninput:\n%s\nrepo:\n%s", q2[0].Plan, entry.Plan)
	}
	if m.Terminal.Kind != physical.OpJoin {
		t.Errorf("matched terminal = %s, want Join", m.Terminal)
	}
	// Q2's second job (group over the temp) must NOT match Q1's entry.
	if _, ok := Match(q2[1].Plan, entry); ok {
		t.Error("Q1 entry matched Q2's group job")
	}
}

func TestMatchSubPlanProjection(t *testing.T) {
	// A stored projection sub-job (Figure 5) matches inside Q1 (Figure 6).
	q1 := compileJobs(t, q1Src, "tmp/q1")
	sub := compileJobs(t, `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into 'restore/pv_proj';
`, "tmp/sub")
	entry := entryFromJob(t, sub[0], "pv-proj")
	m, ok := Match(q1[0].Plan, entry)
	if !ok {
		t.Fatal("projection sub-job not matched in Q1")
	}
	if m.Terminal.Kind != physical.OpForeach {
		t.Errorf("terminal = %s, want Foreach", m.Terminal)
	}
}

func TestNoMatchDifferentSource(t *testing.T) {
	q1 := compileJobs(t, q1Src, "tmp/q1")
	other := compileJobs(t, `
A = load 'OTHER_TABLE' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into 'restore/other';
`, "tmp/o")
	entry := entryFromJob(t, other[0], "other")
	if _, ok := Match(q1[0].Plan, entry); ok {
		t.Error("matched across different source tables")
	}
}

func TestNoMatchDifferentPredicate(t *testing.T) {
	mk := func(pred, out string) *Entry {
		jobs := compileJobs(t, `
A = load 'page_views' as (user, timestamp:int, est_revenue:double);
B = filter A by timestamp `+pred+`;
store B into '`+out+`';
`, "tmp/p")
		return entryFromJob(t, jobs[0], out)
	}
	e1 := mk("> 100", "restore/f1")
	input := compileJobs(t, `
A = load 'page_views' as (user, timestamp:int, est_revenue:double);
B = filter A by timestamp > 200;
store B into 'out/f';
`, "tmp/f")
	if _, ok := Match(input[0].Plan, e1); ok {
		t.Error("filter with different constant matched")
	}
	e2 := mk("> 200", "restore/f2")
	if _, ok := Match(input[0].Plan, e2); !ok {
		t.Error("identical filter did not match")
	}
}

func TestMatchIgnoresAliasesAndStorePath(t *testing.T) {
	a := compileJobs(t, `
x = load 'page_views' as (u, ts, rev:double, pi, pl);
y = foreach x generate u, rev;
store y into 'somewhere/else';
`, "tmp/a")
	entry := entryFromJob(t, a[0], "renamed")
	input := compileJobs(t, `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into 'out/b';
`, "tmp/b")
	if _, ok := Match(input[0].Plan, entry); !ok {
		t.Error("alias/store-path differences blocked the match")
	}
}

func TestMatchSkipsLoadOfOwnOutput(t *testing.T) {
	// A plan that already loads the stored output must not "match" again.
	sub := compileJobs(t, `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into 'restore/pv_proj';
`, "tmp/s")
	entry := entryFromJob(t, sub[0], "proj")
	rewritten := compileJobs(t, `
B = load 'restore/pv_proj' as (user, est_revenue:double);
C = filter B by est_revenue > 1.0;
store C into 'out/c';
`, "tmp/r")
	if _, ok := Match(rewritten[0].Plan, entry); ok {
		t.Error("matched a plan that already loads the stored output")
	}
}

func TestMatchSeesThroughInjectedSplits(t *testing.T) {
	q1 := compileJobs(t, q1Src, "tmp/q1")
	plan := q1[0].Plan.Clone()
	n := 0
	if _, err := EnumerateSubJobs(plan, HeuristicAggressive, func() string {
		n++
		return "restore/inj" + string(rune('a'+n))
	}); err != nil {
		t.Fatal(err)
	}
	sub := compileJobs(t, `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into 'restore/pv_proj';
`, "tmp/s")
	entry := entryFromJob(t, sub[0], "proj")
	if _, ok := Match(plan, entry); !ok {
		t.Errorf("injected Splits broke matching:\n%s", plan)
	}
}

func TestSubsumptionAndOrdering(t *testing.T) {
	q1 := compileJobs(t, q1Src, "tmp/q1")
	whole := entryFromJob(t, q1[0], "whole")
	sub := compileJobs(t, `
A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into 'restore/pv_proj';
`, "tmp/s")
	part := entryFromJob(t, sub[0], "part")

	if !Subsumes(whole, part) {
		t.Error("whole job should subsume its projection sub-job")
	}
	if Subsumes(part, whole) {
		t.Error("projection cannot subsume the whole job")
	}

	repo := NewRepository()
	if _, _, err := repo.Add(part); err != nil {
		t.Fatal(err)
	}
	if _, _, err := repo.Add(whole); err != nil {
		t.Fatal(err)
	}
	ordered := repo.Ordered()
	if ordered[0].ID != "whole" {
		t.Errorf("ordering = [%s, %s], want whole first (§3 rule 1)", ordered[0].ID, ordered[1].ID)
	}

	// FindBestMatch against Q2's join job must pick the whole join, not
	// the smaller projection.
	q2 := compileJobs(t, q2Src, "tmp/q2")
	m, ok := FindBestMatch(q2[0].Plan, repo)
	if !ok || m.Entry.ID != "whole" {
		t.Errorf("best match = %+v, want whole", m)
	}
}

func TestRepositoryDedup(t *testing.T) {
	repo := NewRepository()
	q1a := compileJobs(t, q1Src, "tmp/a")
	q1b := compileJobs(t, q1Src, "tmp/b")
	e1 := entryFromJob(t, q1a[0], "first")
	e2 := entryFromJob(t, q1b[0], "second")
	if _, added, err := repo.Add(e1); err != nil || !added {
		t.Fatalf("first add: %v %v", added, err)
	}
	prev, added, err := repo.Add(e2)
	if err != nil {
		t.Fatal(err)
	}
	if added || prev.ID != "first" {
		t.Errorf("duplicate plan added twice: added=%v id=%s", added, prev.ID)
	}
	if repo.Len() != 1 {
		t.Errorf("repo len = %d", repo.Len())
	}
}

func TestRepositoryRejectsTrivialEntry(t *testing.T) {
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "x"})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "y", Inputs: []int{l.ID}})
	e := &Entry{Plan: p, OutputPath: "y"}
	if _, _, err := NewRepository().Add(e); err == nil {
		t.Error("trivial Load->Store entry accepted")
	}
}

func TestMarkUsedAndRemove(t *testing.T) {
	repo := NewRepository()
	q1 := compileJobs(t, q1Src, "tmp/q1")
	e := entryFromJob(t, q1[0], "e")
	if _, _, err := repo.Add(e); err != nil {
		t.Fatal(err)
	}
	repo.MarkUsed("e", 7)
	got := repo.Get("e")
	if got.UseCount != 1 || got.LastUsedSeq != 7 {
		t.Errorf("use stats = %d/%d", got.UseCount, got.LastUsedSeq)
	}
	if repo.Remove("e") == nil || repo.Len() != 0 {
		t.Error("remove failed")
	}
	if repo.Remove("e") != nil {
		t.Error("double remove returned entry")
	}
}
