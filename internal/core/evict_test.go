package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/types"
)

// faultFS wraps the real DFS and fails Delete for paths matching fail(),
// modeling a flaky DFS namenode during eviction.
type faultFS struct {
	*dfs.FS
	fail func(path string) bool
}

func (f *faultFS) Delete(path string) error {
	if f.fail != nil && f.fail(path) {
		return fmt.Errorf("injected delete fault for %s", path)
	}
	return f.FS.Delete(path)
}

// gcSelector builds a selector over n owned entries, each loading its own
// input in/i<i> and storing restore/g<i>, with input versions snapshotted
// through Consider exactly as the system does.
func gcSelector(t testing.TB, n int, policy Policy) (*Selector, *dfs.FS) {
	t.Helper()
	fs := dfs.New()
	s := &Selector{Repo: NewRepository(), FS: fs, Cluster: cluster.Default(), Policy: policy}
	for i := 0; i < n; i++ {
		gcAddEntry(t, s, fs, i)
	}
	return s, fs
}

// gcAddEntry writes entry i's input and output files and registers it.
func gcAddEntry(t testing.TB, s *Selector, fs *dfs.FS, i int) {
	t.Helper()
	in := fmt.Sprintf("in/i%d", i)
	out := fmt.Sprintf("restore/g%d", i)
	if !fs.Exists(in) {
		if err := fs.WriteTuples(in, types.Schema{}, []types.Tuple{{types.NewInt(int64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteTuples(out, types.Schema{}, []types.Tuple{{types.NewInt(int64(i))}}); err != nil {
		t.Fatal(err)
	}
	src := fmt.Sprintf(`A = load '%s' as (k:int, v:int);
B = filter A by v > %d;
store B into '%s';`, in, i+1000, out)
	jobs := compileJobs(t, src, fmt.Sprintf("tmp/g%d", i))
	cand, err := WholeJobCandidate(jobs[0].Plan, jobs[0].Plan.Sinks()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, added, err := s.Consider(Candidate{
		Plan:       cand,
		OutputPath: out,
		Schema:     types.SchemaFromNames("k", "v"),
		InputBytes: 1000, OutputBytes: 100,
		ExecTime: time.Minute,
		OwnsFile: true,
	}, 1); err != nil || !added {
		t.Fatalf("consider entry %d: added=%v err=%v", i, added, err)
	}
}

// mutateInput rewrites entry i's input file, invalidating it under Rule 4.
func mutateInput(t testing.TB, fs *dfs.FS, i int) {
	t.Helper()
	if err := fs.WriteTuples(fmt.Sprintf("in/i%d", i), types.Schema{}, []types.Tuple{{types.NewInt(int64(-i - 1))}}); err != nil {
		t.Fatal(err)
	}
}

// TestEvictContinuesPastDeleteFailure is the regression test for the
// abort-on-first-delete-failure bug: a mid-sweep delete failure must not
// stop the sweep, must aggregate into the returned error, and must leave
// the failed file queued for a later retry instead of orphaned forever.
func TestEvictContinuesPastDeleteFailure(t *testing.T) {
	s, fs := gcSelector(t, 3, DefaultPolicy())
	ff := &faultFS{FS: fs, fail: func(p string) bool { return p == "restore/g0" }}
	s.FS = ff

	// Invalidate every entry; g0's delete will fail, g1/g2 must still go.
	for i := 0; i < 3; i++ {
		mutateInput(t, fs, i)
	}
	var st EvictStats
	ev, err := s.Evict(2, &st)
	if len(ev) != 3 {
		t.Fatalf("sweep aborted early: evicted %v", ev)
	}
	if err == nil || !strings.Contains(err.Error(), "injected delete fault") {
		t.Fatalf("delete failure not aggregated: %v", err)
	}
	if st.DeleteErrors != 1 {
		t.Errorf("DeleteErrors = %d, want 1", st.DeleteErrors)
	}
	if s.Repo.Len() != 0 {
		t.Errorf("stale entries survived: %d", s.Repo.Len())
	}
	if fs.Exists("restore/g1") || fs.Exists("restore/g2") {
		t.Error("successfully evicted entries' files survived")
	}
	// The failed file is still on the DFS, outside the repository — queued.
	if !fs.Exists("restore/g0") {
		t.Fatal("failed delete removed the file anyway?")
	}
	if got := s.DeferredDeletes(); len(got) != 1 || got[0] != "restore/g0" {
		t.Fatalf("deferred queue = %v, want [restore/g0]", got)
	}

	// Transient fault clears: the next pass retires the leaked file.
	ff.fail = nil
	if _, err := s.Evict(3, &st); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("restore/g0") {
		t.Error("requeued delete never retired the file: permanent leak")
	}
	if len(s.DeferredDeletes()) != 0 {
		t.Error("deferred queue not drained after successful retry")
	}
	if st.RequeueRetired != 1 {
		t.Errorf("RequeueRetired = %d, want 1", st.RequeueRetired)
	}
}

// TestEvictPathsRetiresDeferredWhenOrphanSweptExternally models the
// compaction orphan sweep beating the retry to the file: the queue entry is
// dropped without another delete.
func TestEvictPathsRetiresDeferredWhenOrphanSweptExternally(t *testing.T) {
	s, fs := gcSelector(t, 1, DefaultPolicy())
	ff := &faultFS{FS: fs, fail: func(p string) bool { return p == "restore/g0" }}
	s.FS = ff
	mutateInput(t, fs, 0)
	if ev, _ := s.Evict(2, nil); len(ev) != 1 {
		t.Fatalf("evicted %v", ev)
	}
	// "Orphan sweep" deletes the unreferenced file directly on the DFS.
	if err := fs.Delete("restore/g0"); err != nil {
		t.Fatal(err)
	}
	var st EvictStats
	if _, err := s.EvictPaths(3, nil, &st); err != nil {
		t.Fatal(err)
	}
	if len(s.DeferredDeletes()) != 0 {
		t.Error("deferred queue kept a path the orphan sweep already retired")
	}
	if st.RequeueRetired != 1 {
		t.Errorf("RequeueRetired = %d, want 1", st.RequeueRetired)
	}
}

// TestEvictPathsScansOnlyTouchedEntries pins the index-driven scan bound:
// a mutation batch touches only the entries reading those paths, and the
// cascade after an eviction examines only readers of the deleted output —
// the short-circuit the old full-snapshot fixpoint lacked.
func TestEvictPathsScansOnlyTouchedEntries(t *testing.T) {
	s, fs := gcSelector(t, 8, DefaultPolicy())

	// A chain entry reading entry 0's stored output: evicting g0 must
	// cascade to it, and only to it.
	if err := fs.WriteTuples("restore/chain", types.Schema{}, []types.Tuple{{types.NewInt(99)}}); err != nil {
		t.Fatal(err)
	}
	chainSrc := `A = load 'restore/g0' as (k:int, v:int);
B = filter A by v > 5;
store B into 'restore/chain';`
	jobs := compileJobs(t, chainSrc, "tmp/chain")
	cand, err := WholeJobCandidate(jobs[0].Plan, jobs[0].Plan.Sinks()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, added, err := s.Consider(Candidate{
		Plan: cand, OutputPath: "restore/chain", Schema: types.SchemaFromNames("k", "v"),
		InputBytes: 1000, OutputBytes: 10, ExecTime: time.Minute, OwnsFile: true,
	}, 1); err != nil || !added {
		t.Fatalf("chain entry: %v %v", added, err)
	}

	mutateInput(t, fs, 0)
	var st EvictStats
	ev, err := s.EvictPaths(2, []string{"in/i0"}, &st)
	if err != nil || len(ev) != 1 {
		t.Fatalf("pass 1: evicted %v err %v", ev, err)
	}
	if st.Scans != 1 {
		t.Errorf("pass 1 scanned %d entries, want 1 (only the in/i0 reader)", st.Scans)
	}

	// Cascade: g0's deletion invalidates the chain entry; the pass over
	// {restore/g0} must scan exactly the one reader.
	st = EvictStats{}
	ev, err = s.EvictPaths(3, []string{"restore/g0"}, &st)
	if err != nil || len(ev) != 1 {
		t.Fatalf("pass 2: evicted %v err %v", ev, err)
	}
	if st.Scans != 1 {
		t.Errorf("cascade scanned %d entries, want 1", st.Scans)
	}

	// No reader of the chain output: the fixpoint short-circuits at zero
	// scans instead of re-walking the 7 surviving entries.
	st = EvictStats{}
	ev, err = s.EvictPaths(4, []string{"restore/chain"}, &st)
	if err != nil || len(ev) != 0 {
		t.Fatalf("pass 3: evicted %v err %v", ev, err)
	}
	if st.Scans != 0 {
		t.Errorf("terminal pass scanned %d entries, want 0", st.Scans)
	}
	if s.Repo.Len() != 7 {
		t.Errorf("survivors = %d, want 7", s.Repo.Len())
	}
}

// TestRecheckCatchesPinSkippedStaleEntry: an entry judged stale while
// pinned must be re-examined after the pin drops, even though its mutation
// batch was already consumed.
func TestRecheckCatchesPinSkippedStaleEntry(t *testing.T) {
	s, fs := gcSelector(t, 1, DefaultPolicy())
	id := s.Repo.All()[0].ID
	mutateInput(t, fs, 0)
	if !s.Repo.Pin(id) {
		t.Fatal("pin failed")
	}
	if ev, _ := s.EvictPaths(2, []string{"in/i0"}, nil); len(ev) != 0 {
		t.Fatalf("evicted a pinned entry: %v", ev)
	}
	s.Repo.Unpin([]string{id})
	// The batch is gone; only the recheck queue can catch it now.
	ev, _ := s.EvictPaths(3, nil, nil)
	if len(ev) != 1 || ev[0] != id {
		t.Fatalf("recheck missed the stale entry: %v", ev)
	}
}

// TestWindowBudgetEvictsLRUUntilUnderBudget checks the size-budget policy:
// least-recently-used-by-sequence entries go first, and eviction stops as
// soon as the repository fits.
func TestWindowBudgetEvictsLRUUntilUnderBudget(t *testing.T) {
	s, _ := gcSelector(t, 5, Policy{KeepAll: true, CheckInputVersions: true, RepoBudgetBytes: 250})
	// Touch entries 0 and 1 recently; 2,3,4 stay at their creation seq.
	for i, e := range s.Repo.All() {
		if i < 2 {
			s.Repo.MarkUsed(e.ID, 10)
		}
	}
	// 5 entries x 100 bytes = 500 > 250: evict LRU until <= 250.
	ev, err := s.EvictWindowBudget(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 3 {
		t.Fatalf("evicted %v, want the 3 least-recently-used", ev)
	}
	for _, e := range s.Repo.All() {
		if e.LastUsedSeq != 10 {
			t.Errorf("recently-used entry evicted instead: %s", e.ID)
		}
	}
	if total := s.Repo.TotalStoredBytes(); total > 250 {
		t.Errorf("still over budget: %d", total)
	}
}

// TestBudgetIgnoresUserNamedEntries: evicting an OwnsFile=false entry
// reclaims no storage, so the budget must neither count its bytes nor
// spend evictions on it.
func TestBudgetIgnoresUserNamedEntries(t *testing.T) {
	s, fs := gcSelector(t, 2, Policy{KeepAll: true, CheckInputVersions: true, RepoBudgetBytes: 250})
	// A large user-named entry, least recently used of all.
	if err := fs.WriteTuples("out/user", types.Schema{}, []types.Tuple{{types.NewInt(7)}}); err != nil {
		t.Fatal(err)
	}
	src := `A = load 'in/i0' as (k:int, v:int);
B = filter A by v > 90000;
store B into 'out/user';`
	jobs := compileJobs(t, src, "tmp/user")
	cand, err := WholeJobCandidate(jobs[0].Plan, jobs[0].Plan.Sinks()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, added, err := s.Consider(Candidate{
		Plan: cand, OutputPath: "out/user", Schema: types.SchemaFromNames("k", "v"),
		InputBytes: 1000, OutputBytes: 10000, ExecTime: time.Minute, OwnsFile: false,
	}, 0); err != nil || !added {
		t.Fatalf("user entry: %v %v", added, err)
	}
	// Owned bytes = 2 x 100 <= 250: nothing to evict, despite the user
	// entry's 10000 bytes dwarfing the budget.
	if ev, err := s.EvictWindowBudget(1, nil); err != nil || len(ev) != 0 {
		t.Fatalf("budget evicted %v (err %v) with owned bytes under budget", ev, err)
	}
	// Tighten the budget: only owned entries may go; the user entry (the
	// LRU of all three) survives.
	s.Policy.RepoBudgetBytes = 150
	ev, err := s.EvictWindowBudget(2, nil)
	if err != nil || len(ev) != 1 {
		t.Fatalf("budget evicted %v err %v, want one owned entry", ev, err)
	}
	if s.Repo.Get("entry-3") == nil {
		t.Error("budget evicted the user-named entry")
	}
	if !fs.Exists("out/user") {
		t.Error("user file deleted")
	}
}

// TestRetentionLifecycle drives a tracked user output through the §5
// keep-results-for-N mode: kept inside the window, kept while referenced,
// retired after, and left alone (tracking dropped) when overwritten by an
// untracked writer.
func TestRetentionLifecycle(t *testing.T) {
	s, fs := gcSelector(t, 0, Policy{KeepAll: true, CheckInputVersions: true, OutputRetention: 3})
	write := func(path string, v int64) uint64 {
		t.Helper()
		if err := fs.WriteTuples(path, types.Schema{}, []types.Tuple{{types.NewInt(v)}}); err != nil {
			t.Fatal(err)
		}
		ver, err := fs.Version(path)
		if err != nil {
			t.Fatal(err)
		}
		return ver
	}

	v := write("out/a", 1)
	s.Repo.NoteOutput("out/a", 1, v)

	// Inside the window: no candidates.
	if c := RetentionCandidates(s.Repo, s.Policy, 3); len(c) != 0 {
		t.Fatalf("retired inside the window: %v", c)
	}
	// Expired: candidate, and RetireOutputs deletes it.
	cands := RetentionCandidates(s.Repo, s.Policy, 5)
	if len(cands) != 1 || cands[0] != "out/a" {
		t.Fatalf("candidates = %v", cands)
	}
	var st EvictStats
	retired, err := s.RetireOutputs(5, cands, &st)
	if err != nil || len(retired) != 1 {
		t.Fatalf("retired %v err %v", retired, err)
	}
	if fs.Exists("out/a") {
		t.Error("retired output still on the DFS")
	}
	if len(s.Repo.TrackedOutputs()) != 0 {
		t.Error("retired output still tracked")
	}
	if st.OutputsRetired != 1 {
		t.Errorf("OutputsRetired = %d", st.OutputsRetired)
	}

	// An overwritten (version-moved) output is user data now: tracking is
	// dropped, the file survives.
	v = write("out/b", 1)
	s.Repo.NoteOutput("out/b", 1, v)
	write("out/b", 2) // upload-style overwrite the tracker never saw
	cands = RetentionCandidates(s.Repo, s.Policy, 10)
	if _, err := s.RetireOutputs(10, cands, nil); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("out/b") {
		t.Error("retention deleted an overwritten (user-owned) file")
	}
	if len(s.Repo.TrackedOutputs()) != 0 {
		t.Error("overwritten output still tracked")
	}
}
