package core

import (
	"fmt"

	"repro/internal/mapred"
	"repro/internal/physical"
)

// Rewriter applies repository matches to an input workflow of MapReduce
// jobs (§3). Jobs are processed in dependency order — the ones reading base
// data first — so that by the time a job is matched, the jobs it depends on
// have been rewritten and its Loads reference stable repository paths
// rather than fresh temporaries.
type Rewriter struct {
	Repo *Repository
	// Seq is the submitting workflow's sequence number, recorded on reused
	// entries for the Rule-3 eviction window.
	Seq int64
	// DryRun suppresses usage-statistics updates (for Explain-style
	// inspection that must not perturb eviction decisions).
	DryRun bool
	// Guard, when set, is consulted before each reuse is applied: a false
	// return skips the entry for the rest of this workflow. The System uses
	// it to refuse user-named stored outputs (OwnsFile=false) that a
	// concurrent path-disjoint workflow is currently writing — repository-
	// owned files are immutable and pin-protected, but user paths can be
	// overwritten by a writer the declared access sets could not predict.
	Guard func(*Entry) bool
	// DeferUses suppresses the MarkUsed usage-statistics updates during
	// rewriting and records the reused entry IDs in Outcome.Uses instead.
	// The result fast path probes with this set so an abandoned probe (the
	// workflow did not fully collapse, or the stored bytes were never
	// served) perturbs no eviction statistics; the caller commits the
	// deferred updates with Repository.MarkUsed once it decides to serve.
	DeferUses bool
}

// RewriteInfo describes one applied reuse.
type RewriteInfo struct {
	JobID      string
	EntryID    string
	OutputPath string // the stored output now loaded instead of recomputed
	WholeJob   bool   // true when the whole job collapsed and was removed
}

// Outcome is the rewritten workflow.
type Outcome struct {
	Jobs []*mapred.Job
	// Aliases maps output paths of eliminated jobs to the stored files that
	// hold identical data. Downstream jobs were remapped already; callers
	// use this to locate user-visible outputs that were never written.
	Aliases  map[string]string
	Rewrites []RewriteInfo
	// Pinned lists the repository pins this rewrite took (one per applied
	// reuse, duplicates allowed). The caller must Unpin them once the
	// rewritten workflow has finished executing; until then the pinned
	// entries and their stored outputs are safe from concurrent eviction.
	Pinned []string
	// Match accumulates the matcher probe work across every scan of this
	// workflow's repeated-scan loops (observability, folded into
	// core.Stats by the System).
	Match MatchStats
	// Uses lists the reused entry IDs whose MarkUsed updates were deferred
	// (Rewriter.DeferUses); empty otherwise. One ID per applied reuse,
	// duplicates allowed, in application order.
	Uses []string
}

// RewriteWorkflow rewrites every job against the repository and drops jobs
// whose entire computation is available in stored outputs.
func (rw *Rewriter) RewriteWorkflow(w *mapred.Workflow) (*Outcome, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	out := &Outcome{Aliases: make(map[string]string)}
	// Entries the Guard refused; skipped for the whole workflow so the
	// match scan cannot return them again and spin.
	var skip map[string]bool
	for _, job := range order {
		plan := job.Plan.Clone()

		// Remap loads of outputs of eliminated upstream jobs.
		for _, load := range plan.Sources() {
			if actual, ok := out.Aliases[load.Path]; ok {
				load.Path = actual
			}
		}

		// Repeated scans: after each rewrite, scan the repository again for
		// further matches against the rewritten job (§3).
		for {
			m, ok := FindBestMatchProbed(plan, rw.Repo, skip, &out.Match)
			if !ok {
				break
			}
			if !rw.DryRun {
				if rw.Guard != nil && !rw.Guard(m.Entry) {
					if skip == nil {
						skip = make(map[string]bool)
					}
					skip[m.Entry.ID] = true
					continue
				}
				// Pin before touching the plan: a concurrent execution's
				// eviction may have removed the entry since the match scan's
				// snapshot. A failed pin means the entry (and possibly its
				// file) is gone — rescan instead of reusing it.
				if !rw.Repo.Pin(m.Entry.ID) {
					continue
				}
				out.Pinned = append(out.Pinned, m.Entry.ID)
			}
			whole := rewriteMatch(plan, m)
			if !rw.DryRun {
				if rw.DeferUses {
					out.Uses = append(out.Uses, m.Entry.ID)
				} else {
					rw.Repo.MarkUsed(m.Entry.ID, rw.Seq)
				}
			}
			out.Rewrites = append(out.Rewrites, RewriteInfo{
				JobID:      job.ID,
				EntryID:    m.Entry.ID,
				OutputPath: m.Entry.OutputPath,
				WholeJob:   whole,
			})
		}

		if loads, trivial := trivialCopy(plan); trivial {
			// The full job is answered by stored outputs: record aliases
			// and drop the job (Figure 4 in the paper: rewritten Q2 reads
			// stored o/p Q1 directly).
			for storePath, loadPath := range loads {
				out.Aliases[storePath] = loadPath
			}
			if n := len(out.Rewrites); n > 0 && out.Rewrites[n-1].JobID == job.ID {
				out.Rewrites[n-1].WholeJob = true
			}
			continue
		}
		newJob, err := mapred.NewJob(job.ID, plan)
		if err != nil {
			rw.Repo.Unpin(out.Pinned)
			return nil, fmt.Errorf("core: rewritten job %s invalid: %w", job.ID, err)
		}
		out.Jobs = append(out.Jobs, newJob)
	}
	return out, nil
}

// rewriteMatch replaces the matched plan region with a Load of the stored
// output. It reports whether the plan is now a trivial copy.
func rewriteMatch(plan *physical.Plan, m *MatchResult) bool {
	load := plan.Add(&physical.Operator{
		Kind:   physical.OpLoad,
		Path:   m.Entry.OutputPath,
		Schema: m.Entry.Schema,
	})
	for _, c := range plan.Consumers(m.Terminal.ID) {
		c.ReplaceInput(m.Terminal.ID, load.ID)
	}
	pruneToStores(plan)
	_, trivial := trivialCopy(plan)
	return trivial
}

// pruneToStores removes operators that no longer reach a Store.
func pruneToStores(plan *physical.Plan) {
	live := make(map[int]bool)
	for _, st := range plan.Sinks() {
		for id := range plan.ReachableFrom(st.ID) {
			live[id] = true
		}
	}
	for _, o := range plan.Ops() {
		if !live[o.ID] {
			plan.Remove(o.ID)
		}
	}
}

// trivialCopy reports whether every operator is a Load or a Store fed
// directly by a Load. On success it returns storePath -> loadPath.
func trivialCopy(plan *physical.Plan) (map[string]string, bool) {
	aliases := make(map[string]string)
	for _, o := range plan.Ops() {
		switch o.Kind {
		case physical.OpLoad:
		case physical.OpStore:
			in := plan.Op(o.Inputs[0])
			if in == nil || in.Kind != physical.OpLoad {
				return nil, false
			}
			aliases[o.Path] = in.Path
		default:
			return nil, false
		}
	}
	return aliases, len(aliases) > 0
}
