package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/physical"
	"repro/internal/types"
)

// Policy configures the enumerated sub-job selector (§5). The paper's
// experiments store every candidate (KeepAll); the rules are available for
// deployments where storage or repository scan time matters.
type Policy struct {
	// KeepAll stores every candidate regardless of the rules below.
	KeepAll bool
	// RequireSizeReduction is Rule 1: keep only candidates whose output is
	// smaller than their input.
	RequireSizeReduction bool
	// RequireTimeSaving is Rule 2: keep only candidates whose stored output
	// can be read back faster than re-executing the job (Equation 1).
	RequireTimeSaving bool
	// EvictionWindow is Rule 3: evict entries not reused within this many
	// workflows. Zero disables the rule.
	EvictionWindow int64
	// CheckInputVersions is Rule 4: evict entries whose inputs were deleted
	// or modified.
	CheckInputVersions bool
	// RepoBudgetBytes bounds the bytes of repository-owned stored outputs
	// (OwnsFile entries — the files eviction can actually reclaim): once
	// exceeded, owned entries are evicted least-recently-used-by-sequence
	// first until the repository fits, skipping entries pinned by in-flight
	// executions. User-named entries occupy no reclaimable storage and are
	// neither counted nor evicted by the budget. Zero disables it.
	RepoBudgetBytes int64
	// OutputRetention is the paper's keep-results-for-N mode for user-named
	// outputs: a tracked out/... file is retired once it has not been
	// rewritten or re-requested for this many workflows AND no live
	// repository entry references it. Enforced by RetireOutputs (the GC
	// pass), not the per-query path — retiring a user file needs a write
	// lease on it. Zero keeps user outputs forever.
	OutputRetention int64
}

// DefaultPolicy is the paper's experimental configuration: keep everything,
// but still honor Rule 4 so stale results are never served.
func DefaultPolicy() Policy {
	return Policy{KeepAll: true, CheckInputVersions: true}
}

// SelectorFS is the slice of the DFS the selector needs: version probes for
// Rule 4, existence checks, and owned-file deletion. *dfs.FS implements it;
// tests substitute fault-injecting wrappers.
type SelectorFS interface {
	Version(path string) (uint64, error)
	Exists(path string) bool
	Delete(path string) error
}

// EvictStats counts eviction-path work, mirroring MatchStats for the match
// path. A scan is one entry examined for staleness; a probe is one DFS
// version or existence lookup. The per-query indexed path keeps both
// proportional to the mutated paths; the naive full sweep's grow with the
// repository (the server-gc benchmark compares them). Delete failures are
// counted, not surfaced as query errors.
type EvictStats struct {
	Scans        int64 `json:"scans"`
	Probes       int64 `json:"probes"`
	Evicted      int64 `json:"evicted"`
	DeleteErrors int64 `json:"deleteErrors"`
	// RequeueRetired counts previously-failed owned-file deletes that a
	// later pass (or the compaction orphan sweep) finally retired.
	RequeueRetired int64 `json:"requeueRetired"`
	// OutputsRetired counts user-named outputs deleted by retention.
	OutputsRetired int64 `json:"outputsRetired"`
}

// Add folds another accumulation into s.
func (s *EvictStats) Add(o EvictStats) {
	s.Scans += o.Scans
	s.Probes += o.Probes
	s.Evicted += o.Evicted
	s.DeleteErrors += o.DeleteErrors
	s.RequeueRetired += o.RequeueRetired
	s.OutputsRetired += o.OutputsRetired
}

// Candidate is a materialized output considered for the repository after a
// workflow executed.
type Candidate struct {
	Plan       *physical.Plan
	OutputPath string
	Schema     types.Schema

	InputBytes  int64
	OutputBytes int64
	ExecTime    time.Duration
	// OwnsFile marks files the repository manages (temps and injected
	// sub-job outputs): rejected or evicted candidates are deleted.
	OwnsFile bool
}

// Selector decides which candidates enter the repository and which stored
// entries to evict. All methods are safe for concurrent use (the deferred-
// delete and recheck queues have their own lock; everything else goes
// through the Repository's).
type Selector struct {
	Repo    *Repository
	FS      SelectorFS
	Cluster *cluster.Config
	Policy  Policy

	mu sync.Mutex
	// deferred holds repository-owned files whose entry is already evicted
	// but whose DFS delete failed: they are retried on every eviction pass
	// (and the compaction orphan sweep retires them too), so a transient
	// delete failure never leaks a file permanently.
	deferred map[string]struct{}
	// recheck holds entry IDs judged stale but skipped by RemoveIfIdle
	// (pinned, or refreshed since the staleness snapshot). The indexed path
	// re-examines them on its next pass — without this, an entry that was
	// pinned exactly when its mutation batch was consumed would outlive its
	// staleness until the next full sweep.
	recheck map[string]struct{}
}

// Consider applies Rules 1–2 to a candidate. When the candidate is accepted
// it becomes a repository entry stamped with the current sequence number; a
// rejected repository-owned file is deleted from the DFS.
func (s *Selector) Consider(c Candidate, seq int64) (*Entry, bool, error) {
	if !s.Policy.KeepAll {
		if s.Policy.RequireSizeReduction && c.OutputBytes >= c.InputBytes {
			return nil, false, s.discard(c)
		}
		if s.Policy.RequireTimeSaving && s.readBackTime(c.OutputBytes) >= c.ExecTime {
			return nil, false, s.discard(c)
		}
	}
	versions := make(map[string]uint64)
	for _, load := range c.Plan.Sources() {
		v, err := s.FS.Version(load.Path)
		if err != nil {
			// Input vanished between execution and selection; the candidate
			// can never be validated, so discard it.
			return nil, false, s.discard(c)
		}
		versions[load.Path] = v
	}
	outV, err := s.FS.Version(c.OutputPath)
	if err != nil {
		// The freshly written output vanished already; nothing to store.
		return nil, false, s.discard(c)
	}
	entry := &Entry{
		Plan:          c.Plan,
		OutputPath:    c.OutputPath,
		Schema:        c.Schema,
		InputBytes:    c.InputBytes,
		OutputBytes:   c.OutputBytes,
		ExecTime:      c.ExecTime,
		CreatedSeq:    seq,
		LastUsedSeq:   seq,
		InputVersions: versions,
		OutputVersion: outV,
		OwnsFile:      c.OwnsFile,
	}
	prev, added, err := s.Repo.Add(entry)
	if err != nil {
		return nil, false, err
	}
	if !added {
		// An identical plan is already stored; this candidate's file is
		// redundant unless it IS the stored file.
		if c.OwnsFile && c.OutputPath != prev.OutputPath {
			if err := s.discard(c); err != nil {
				return prev, false, err
			}
		}
		return prev, false, nil
	}
	return entry, true, nil
}

// discard deletes a rejected candidate's file when the repository owns it.
func (s *Selector) discard(c Candidate) error {
	if !c.OwnsFile {
		return nil
	}
	if err := s.FS.Delete(c.OutputPath); err != nil {
		return fmt.Errorf("core: discard candidate %s: %w", c.OutputPath, err)
	}
	return nil
}

// readBackTime estimates how long a future workflow spends loading the
// stored output (a map-only scan of the file).
func (s *Selector) readBackTime(bytes int64) time.Duration {
	return s.Cluster.Simulate(cluster.JobStats{InputBytes: bytes}).Total
}

// EntryFresh reports whether an entry's Rule-4 invariants still hold: its
// stored output exists, and (when checkVersions) every input and the output
// itself are at the versions snapshotted when the entry was stored. The
// rewriter's Guard calls it at pin time — with per-query eviction demoted to
// the mutation feed and the background GC loop, this check is what
// guarantees a modified input is never answered from old results, no matter
// which concurrent query consumed the feed batch that would have evicted
// the entry.
func EntryFresh(fs SelectorFS, e *Entry, checkVersions bool, st *EvictStats) bool {
	return !rule4Stale(fs, e, checkVersions, st)
}

// rule4Stale implements the Rule-4 staleness predicate shared by the naive
// sweep, the indexed pass, and the pin-time freshness guard.
func rule4Stale(fs SelectorFS, e *Entry, checkVersions bool, st *EvictStats) bool {
	if checkVersions {
		for path, v := range e.InputVersions {
			st.Probes++
			cur, err := fs.Version(path)
			if err != nil || cur != v {
				return true
			}
		}
		// The stored output itself may have been recycled: user-named paths
		// (OwnsFile=false) can be overwritten by a later query or upload,
		// after which the entry's plan no longer describes the file's
		// contents. 0 = persisted before output versions existed.
		if e.OutputVersion != 0 {
			st.Probes++
			cur, err := fs.Version(e.OutputPath)
			// A successful version probe also proves existence, so the
			// Exists check below would be a redundant second probe.
			return err != nil || cur != e.OutputVersion
		}
	}
	// An entry whose stored output vanished from the DFS can never be
	// reused safely, whatever the policy says. This matters once
	// repositories persist across processes: a repository loaded without
	// its DFS snapshot must shed such entries instead of rewriting jobs
	// to load missing files.
	st.Probes++
	return !fs.Exists(e.OutputPath)
}

// staleEntry applies the full staleness predicate of the naive sweep: the
// Rule-3 window (when checkWindow) and Rule 4 + output existence.
func (s *Selector) staleEntry(e *Entry, nowSeq int64, checkWindow bool, st *EvictStats) bool {
	if checkWindow {
		if w := s.Policy.EvictionWindow; w > 0 {
			last := e.LastUsedSeq
			if e.CreatedSeq > last {
				last = e.CreatedSeq
			}
			if nowSeq-last > w {
				return true
			}
		}
	}
	return rule4Stale(s.FS, e, s.Policy.CheckInputVersions, st)
}

// removeEntry evicts one stale entry and deletes its owned file. A failed
// delete is counted, aggregated into errs, and the file re-queued for a
// later pass — never surfaced as the caller's failure, and never leaked:
// the entry is already out of the index, so the compaction orphan sweep
// would reclaim the file even if every retry kept failing. When
// queueOnSkip, entries skipped by RemoveIfIdle (pinned, or refreshed since
// the staleness snapshot) are queued for recheck so the indexed Rule-4
// path revisits them; the window/budget callers pass false — their
// policies are re-applied on every pass anyway, and the Rule-4-only
// recheck could not act on them.
func (s *Selector) removeEntry(id string, lastUsedSeq int64, queueOnSkip bool, st *EvictStats, errs *[]error) (string, bool) {
	removed := s.Repo.RemoveIfIdle(id, lastUsedSeq)
	if removed == nil {
		if queueOnSkip {
			s.queueRecheck(id)
		}
		return "", false
	}
	st.Evicted++
	if removed.OwnsFile && s.FS.Exists(removed.OutputPath) {
		if err := s.FS.Delete(removed.OutputPath); err != nil {
			st.DeleteErrors++
			s.deferDelete(removed.OutputPath)
			*errs = append(*errs, fmt.Errorf("core: evict %s: delete %s: %w", removed.ID, removed.OutputPath, err))
		}
	}
	return removed.ID, true
}

// Evict applies Rules 3 and 4 at the given sequence over the whole
// repository, removing stale or invalidated entries (and their repository-
// owned files). It returns the IDs of the evicted entries; the error is the
// errors.Join of any owned-file delete failures, which never abort the
// sweep (the files are re-queued — see removeEntry). Safe for concurrent
// use: entries pinned by an in-flight execution are skipped (RemoveIfIdle),
// and when several executions race to evict the same entry exactly one wins
// the removal and deletes the file.
//
// This is the reference sweep: the per-query path runs the index-driven
// EvictPaths/EvictWindowBudget instead, and the property tests hold the two
// equivalent. st may be nil.
func (s *Selector) Evict(nowSeq int64, st *EvictStats) ([]string, error) {
	if st == nil {
		st = &EvictStats{}
	}
	var errs []error
	s.retryDeferred(st, &errs)
	// The sweep re-validates everything, so pending rechecks are subsumed;
	// draining them here keeps the next indexed pass from re-probing
	// entries this sweep just cleared.
	s.takeRecheck()
	var evicted []string
	// Deep-copied snapshot, not All(): staleness reads LastUsedSeq, which a
	// concurrent execution's MarkUsed mutates under the repository lock.
	for _, e := range s.Repo.Snapshot() {
		st.Scans++
		if !s.staleEntry(e, nowSeq, true, st) {
			continue
		}
		if id, ok := s.removeEntry(e.ID, e.LastUsedSeq, true, st, &errs); ok {
			evicted = append(evicted, id)
		}
	}
	return evicted, errors.Join(errs...)
}

// EvictPaths applies Rule 4 (and the output-existence check) only to the
// entries whose input set or stored output touches one of the given mutated
// paths — the indexed counterpart of Evict's full scan, driven by the DFS
// mutation feed. It also retries deferred deletes and drains the recheck
// queue. The Rule-3 window and the size budget are sequence-driven, not
// mutation-driven, and are handled by EvictWindowBudget. st may be nil.
func (s *Selector) EvictPaths(nowSeq int64, paths []string, st *EvictStats) ([]string, error) {
	if st == nil {
		st = &EvictStats{}
	}
	var errs []error
	s.retryDeferred(st, &errs)
	cands := s.Repo.EntriesTouching(paths)
	if ids := s.takeRecheck(); len(ids) > 0 {
		seen := make(map[string]bool, len(cands))
		for _, e := range cands {
			seen[e.ID] = true
		}
		for _, id := range ids {
			if seen[id] {
				continue
			}
			if e := s.Repo.CloneOf(id); e != nil {
				cands = append(cands, e)
			}
		}
	}
	var evicted []string
	for _, e := range cands {
		st.Scans++
		if !s.staleEntry(e, nowSeq, false, st) {
			continue
		}
		if id, ok := s.removeEntry(e.ID, e.LastUsedSeq, true, st, &errs); ok {
			evicted = append(evicted, id)
		}
	}
	return evicted, errors.Join(errs...)
}

// EvictWindowBudget applies the sequence-driven policies: the Rule-3 window
// and the size budget. Both passes scan only the repository's in-memory
// usage metadata (UsageSnapshot — no DFS probes), so they stay cheap even
// per query. Budget eviction removes least-recently-used-by-sequence
// entries until total stored bytes fit; entries pinned by in-flight
// executions are skipped by RemoveIfIdle and never evicted. st may be nil.
func (s *Selector) EvictWindowBudget(nowSeq int64, st *EvictStats) ([]string, error) {
	w, budget := s.Policy.EvictionWindow, s.Policy.RepoBudgetBytes
	if w <= 0 && budget <= 0 {
		return nil, nil
	}
	if st == nil {
		st = &EvictStats{}
	}
	var errs []error
	var evicted []string
	gone := make(map[string]bool)
	us := s.Repo.UsageSnapshot()
	if w > 0 {
		for _, u := range us {
			st.Scans++
			if nowSeq-u.Touch() <= w {
				continue
			}
			if id, ok := s.removeEntry(u.ID, u.LastUsedSeq, false, st, &errs); ok {
				evicted = append(evicted, id)
				gone[id] = true
			}
		}
	}
	if budget > 0 {
		// Only repository-owned outputs occupy reclaimable storage;
		// evicting a user-named entry deletes no file, so the budget
		// neither counts nor evicts those. Entries the window pass just
		// removed are filtered from the shared snapshot.
		owned := us[:0]
		for _, u := range us {
			if u.OwnsFile && !gone[u.ID] {
				owned = append(owned, u)
			}
		}
		sort.Slice(owned, func(i, j int) bool {
			if ti, tj := owned[i].Touch(), owned[j].Touch(); ti != tj {
				return ti < tj
			}
			return owned[i].ID < owned[j].ID
		})
		var total int64
		for _, u := range owned {
			total += u.OutputBytes
		}
		for _, u := range owned {
			if total <= budget {
				break
			}
			st.Scans++
			if id, ok := s.removeEntry(u.ID, u.LastUsedSeq, false, st, &errs); ok {
				evicted = append(evicted, id)
				total -= u.OutputBytes
			}
			// A skipped (pinned/refreshed) entry keeps its bytes; the pass
			// moves on to the next-least-recently-used instead of waiting.
		}
	}
	return evicted, errors.Join(errs...)
}

// RetentionCandidates returns the tracked user-named outputs the §5
// retention mode would retire from repo at nowSeq: older than the policy's
// retention window and referenced by no live entry. Read-only — the caller
// acquires write leases on the result before letting Selector.RetireOutputs
// delete anything (which re-validates every candidate under the lease, so
// a stale candidate set is harmless). A free function over an explicit
// repository: the System calls it with its atomically-loaded repository
// pointer before holding any lease, where reading Selector.Repo would race
// a concurrent AdoptRepository swap.
func RetentionCandidates(repo *Repository, pol Policy, nowSeq int64) []string {
	r := pol.OutputRetention
	if r <= 0 {
		return nil
	}
	var out []string
	for _, rec := range repo.TrackedOutputs() {
		if nowSeq-rec.Seq <= r {
			continue
		}
		if repo.ReferencesPath(rec.Path) {
			continue
		}
		out = append(out, rec.Path)
	}
	return out
}

// RetireOutputs deletes expired tracked outputs, restricted to the allowed
// set (the paths the caller holds write leases on). Every deletion is
// re-validated under the lease: still expired (a concurrent query may have
// refreshed it), still unreferenced (the caller's sweep may have evicted
// the referencing entry after candidacy — such paths wait for the next
// pass), and still at the tracked version (a mismatch means an upload
// overwrote the path; the file is user data now and only the tracking is
// dropped). A failed delete stays tracked and is retried next pass. st may
// be nil.
func (s *Selector) RetireOutputs(nowSeq int64, allowed []string, st *EvictStats) ([]string, error) {
	if s.Policy.OutputRetention <= 0 || len(allowed) == 0 {
		return nil, nil
	}
	if st == nil {
		st = &EvictStats{}
	}
	allow := make(map[string]bool, len(allowed))
	for _, p := range allowed {
		allow[p] = true
	}
	var retired []string
	var errs []error
	for _, rec := range s.Repo.TrackedOutputs() {
		if !allow[rec.Path] {
			continue
		}
		if nowSeq-rec.Seq <= s.Policy.OutputRetention || s.Repo.ReferencesPath(rec.Path) {
			continue
		}
		st.Probes++
		cur, err := s.FS.Version(rec.Path)
		if err != nil {
			// Already gone; drop the tracking.
			s.Repo.ForgetOutput(rec.Path)
			continue
		}
		if cur != rec.Version {
			s.Repo.ForgetOutput(rec.Path)
			continue
		}
		if err := s.FS.Delete(rec.Path); err != nil {
			st.DeleteErrors++
			errs = append(errs, fmt.Errorf("core: retire %s: %w", rec.Path, err))
			continue
		}
		s.Repo.ForgetOutput(rec.Path)
		st.OutputsRetired++
		retired = append(retired, rec.Path)
	}
	return retired, errors.Join(errs...)
}

// PendingWork reports whether the selector has deferred deletes or recheck
// entries queued — the per-query path runs an indexed pass even with an
// empty mutation batch while this holds.
func (s *Selector) PendingWork() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.deferred) > 0 || len(s.recheck) > 0
}

// DeferredDeletes returns the owned files currently awaiting a delete
// retry, sorted (tests and metrics).
func (s *Selector) DeferredDeletes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.deferred))
	for p := range s.deferred {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// deferDelete queues an owned file whose delete failed for retry.
func (s *Selector) deferDelete(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deferred == nil {
		s.deferred = make(map[string]struct{})
	}
	s.deferred[path] = struct{}{}
}

// NoteStale queues an entry observed stale outside an eviction pass (the
// System's pin-time freshness guard) so the next indexed pass evicts it.
func (s *Selector) NoteStale(id string) { s.queueRecheck(id) }

// queueRecheck queues an entry judged stale but skipped by RemoveIfIdle.
func (s *Selector) queueRecheck(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recheck == nil {
		s.recheck = make(map[string]struct{})
	}
	s.recheck[id] = struct{}{}
}

// takeRecheck drains the recheck queue.
func (s *Selector) takeRecheck() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.recheck) == 0 {
		return nil
	}
	out := make([]string, 0, len(s.recheck))
	for id := range s.recheck {
		out = append(out, id)
	}
	s.recheck = nil
	sort.Strings(out)
	return out
}

// retryDeferred re-attempts previously-failed owned-file deletes. A path
// that vanished in the meantime (the compaction orphan sweep reclaimed it)
// or succeeds now is retired from the queue; a path a live entry references
// again is dropped without deleting (minted-once namespaces make this
// impossible in practice, but the invariant is cheap to keep).
func (s *Selector) retryDeferred(st *EvictStats, errs *[]error) {
	s.mu.Lock()
	if len(s.deferred) == 0 {
		s.mu.Unlock()
		return
	}
	paths := make([]string, 0, len(s.deferred))
	for p := range s.deferred {
		paths = append(paths, p)
	}
	s.mu.Unlock()
	sort.Strings(paths)
	for _, p := range paths {
		if s.Repo.ReferencesPath(p) {
			s.dropDeferred(p)
			continue
		}
		if !s.FS.Exists(p) {
			s.dropDeferred(p)
			st.RequeueRetired++
			continue
		}
		if err := s.FS.Delete(p); err != nil {
			st.DeleteErrors++
			*errs = append(*errs, fmt.Errorf("core: retry deferred delete %s: %w", p, err))
			continue
		}
		s.dropDeferred(p)
		st.RequeueRetired++
	}
}

func (s *Selector) dropDeferred(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.deferred, path)
}
