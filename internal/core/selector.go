package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/physical"
	"repro/internal/types"
)

// Policy configures the enumerated sub-job selector (§5). The paper's
// experiments store every candidate (KeepAll); the rules are available for
// deployments where storage or repository scan time matters.
type Policy struct {
	// KeepAll stores every candidate regardless of the rules below.
	KeepAll bool
	// RequireSizeReduction is Rule 1: keep only candidates whose output is
	// smaller than their input.
	RequireSizeReduction bool
	// RequireTimeSaving is Rule 2: keep only candidates whose stored output
	// can be read back faster than re-executing the job (Equation 1).
	RequireTimeSaving bool
	// EvictionWindow is Rule 3: evict entries not reused within this many
	// workflows. Zero disables the rule.
	EvictionWindow int64
	// CheckInputVersions is Rule 4: evict entries whose inputs were deleted
	// or modified.
	CheckInputVersions bool
}

// DefaultPolicy is the paper's experimental configuration: keep everything,
// but still honor Rule 4 so stale results are never served.
func DefaultPolicy() Policy {
	return Policy{KeepAll: true, CheckInputVersions: true}
}

// Candidate is a materialized output considered for the repository after a
// workflow executed.
type Candidate struct {
	Plan       *physical.Plan
	OutputPath string
	Schema     types.Schema

	InputBytes  int64
	OutputBytes int64
	ExecTime    time.Duration
	// OwnsFile marks files the repository manages (temps and injected
	// sub-job outputs): rejected or evicted candidates are deleted.
	OwnsFile bool
}

// Selector decides which candidates enter the repository and which stored
// entries to evict.
type Selector struct {
	Repo    *Repository
	FS      *dfs.FS
	Cluster *cluster.Config
	Policy  Policy
}

// Consider applies Rules 1–2 to a candidate. When the candidate is accepted
// it becomes a repository entry stamped with the current sequence number; a
// rejected repository-owned file is deleted from the DFS.
func (s *Selector) Consider(c Candidate, seq int64) (*Entry, bool, error) {
	if !s.Policy.KeepAll {
		if s.Policy.RequireSizeReduction && c.OutputBytes >= c.InputBytes {
			return nil, false, s.discard(c)
		}
		if s.Policy.RequireTimeSaving && s.readBackTime(c.OutputBytes) >= c.ExecTime {
			return nil, false, s.discard(c)
		}
	}
	versions := make(map[string]uint64)
	for _, load := range c.Plan.Sources() {
		v, err := s.FS.Version(load.Path)
		if err != nil {
			// Input vanished between execution and selection; the candidate
			// can never be validated, so discard it.
			return nil, false, s.discard(c)
		}
		versions[load.Path] = v
	}
	outV, err := s.FS.Version(c.OutputPath)
	if err != nil {
		// The freshly written output vanished already; nothing to store.
		return nil, false, s.discard(c)
	}
	entry := &Entry{
		Plan:          c.Plan,
		OutputPath:    c.OutputPath,
		Schema:        c.Schema,
		InputBytes:    c.InputBytes,
		OutputBytes:   c.OutputBytes,
		ExecTime:      c.ExecTime,
		CreatedSeq:    seq,
		LastUsedSeq:   seq,
		InputVersions: versions,
		OutputVersion: outV,
		OwnsFile:      c.OwnsFile,
	}
	prev, added, err := s.Repo.Add(entry)
	if err != nil {
		return nil, false, err
	}
	if !added {
		// An identical plan is already stored; this candidate's file is
		// redundant unless it IS the stored file.
		if c.OwnsFile && c.OutputPath != prev.OutputPath {
			if err := s.discard(c); err != nil {
				return prev, false, err
			}
		}
		return prev, false, nil
	}
	return entry, true, nil
}

// discard deletes a rejected candidate's file when the repository owns it.
func (s *Selector) discard(c Candidate) error {
	if !c.OwnsFile {
		return nil
	}
	if err := s.FS.Delete(c.OutputPath); err != nil {
		return fmt.Errorf("core: discard candidate %s: %w", c.OutputPath, err)
	}
	return nil
}

// readBackTime estimates how long a future workflow spends loading the
// stored output (a map-only scan of the file).
func (s *Selector) readBackTime(bytes int64) time.Duration {
	return s.Cluster.Simulate(cluster.JobStats{InputBytes: bytes}).Total
}

// Evict applies Rules 3 and 4 at the given sequence, removing stale or
// invalidated entries (and their repository-owned files). It returns the
// IDs of the evicted entries. Safe for concurrent use: entries pinned by
// an in-flight execution are skipped (RemoveIfIdle), and when several
// executions race to evict the same entry exactly one wins the removal and
// deletes the file.
func (s *Selector) Evict(nowSeq int64) ([]string, error) {
	var evicted []string
	// Deep-copied snapshot, not All(): staleness reads LastUsedSeq, which a
	// concurrent execution's MarkUsed mutates under the repository lock.
	for _, e := range s.Repo.Snapshot() {
		stale := false
		if w := s.Policy.EvictionWindow; w > 0 {
			last := e.LastUsedSeq
			if e.CreatedSeq > last {
				last = e.CreatedSeq
			}
			if nowSeq-last > w {
				stale = true
			}
		}
		if !stale && s.Policy.CheckInputVersions {
			for path, v := range e.InputVersions {
				cur, err := s.FS.Version(path)
				if err != nil || cur != v {
					stale = true
					break
				}
			}
			// The stored output itself may have been recycled: user-named
			// paths (OwnsFile=false) can be overwritten by a later query or
			// upload, after which the entry's plan no longer describes the
			// file's contents. 0 = persisted before output versions existed.
			if !stale && e.OutputVersion != 0 {
				cur, err := s.FS.Version(e.OutputPath)
				if err != nil || cur != e.OutputVersion {
					stale = true
				}
			}
		}
		// An entry whose stored output vanished from the DFS can never be
		// reused safely, whatever the policy says. This matters once
		// repositories persist across processes: a repository loaded without
		// its DFS snapshot must shed such entries instead of rewriting jobs
		// to load missing files.
		if !stale && !s.FS.Exists(e.OutputPath) {
			stale = true
		}
		if !stale {
			continue
		}
		removed := s.Repo.RemoveIfIdle(e.ID, e.LastUsedSeq)
		if removed == nil {
			// Pinned by an in-flight reuse, refreshed by a concurrent
			// rewrite since our staleness snapshot, or a concurrent evictor
			// won the race; either way this entry is not ours to delete.
			continue
		}
		if removed.OwnsFile && s.FS.Exists(removed.OutputPath) {
			if err := s.FS.Delete(removed.OutputPath); err != nil {
				return evicted, fmt.Errorf("core: evict %s: %w", removed.ID, err)
			}
		}
		evicted = append(evicted, removed.ID)
	}
	return evicted, nil
}
