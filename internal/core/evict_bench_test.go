package core

import (
	"fmt"
	"testing"
)

// Eviction microbenchmarks (run via `make bench-gc`): one input mutation's
// Rule-4 invalidation cost through the input-path index vs the naive full
// sweep, across repository sizes. Each iteration mutates one input, evicts
// its single stale reader, and re-registers it so the repository size holds
// steady.

func benchEvictRound(b *testing.B, n int, indexed bool) {
	s, fs := gcSelector(b, n, DefaultPolicy())
	fs.TakeEvictionDirty()
	seq := int64(2)
	b.ReportAllocs()
	b.ResetTimer()
	for r := 0; r < b.N; r++ {
		i := r % n
		b.StopTimer()
		mutateInput(b, fs, i)
		b.StartTimer()
		var ev []string
		var err error
		if indexed {
			ev, err = s.EvictPaths(seq, fs.TakeEvictionDirty(), nil)
		} else {
			ev, err = s.Evict(seq, nil)
		}
		if err != nil || len(ev) != 1 {
			b.Fatalf("evicted %v err %v", ev, err)
		}
		b.StopTimer()
		gcAddEntry(b, s, fs, i)
		seq++
		b.StartTimer()
	}
}

func BenchmarkEvictIndexed(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) { benchEvictRound(b, n, true) })
	}
}

func BenchmarkEvictNaive(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) { benchEvictRound(b, n, false) })
	}
}
