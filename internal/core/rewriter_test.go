package core

import (
	"strings"
	"testing"

	"repro/internal/mapred"
	"repro/internal/physical"
)

func rewrite(t *testing.T, repo *Repository, jobs []*mapred.Job) *Outcome {
	t.Helper()
	rw := &Rewriter{Repo: repo, Seq: 1}
	out, err := rw.RewriteWorkflow(&mapred.Workflow{Jobs: jobs})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	return out
}

func TestRewriteQ2WithWholeQ1(t *testing.T) {
	// Figure 4: Q2 rewritten to reuse the stored output of Q1. Q2's join
	// job collapses entirely; the group job loads the stored file.
	repo := NewRepository()
	q1 := compileJobs(t, q1Src, "tmp/q1")
	if _, _, err := repo.Add(entryFromJob(t, q1[0], "q1")); err != nil {
		t.Fatal(err)
	}
	q2 := compileJobs(t, q2Src, "tmp/q2")
	out := rewrite(t, repo, q2)

	if len(out.Jobs) != 1 {
		t.Fatalf("rewritten Q2 has %d jobs, want 1 (Figure 4)", len(out.Jobs))
	}
	job := out.Jobs[0]
	if job.Blocking() == nil || job.Blocking().Kind != physical.OpGroup {
		t.Errorf("surviving job blocks on %v, want Group", job.Blocking())
	}
	if in := job.InputPaths(); len(in) != 1 || in[0] != "out/q1" {
		t.Errorf("surviving job reads %v, want the stored Q1 output", in)
	}
	if len(out.Rewrites) == 0 || !out.Rewrites[0].WholeJob {
		t.Errorf("rewrites = %+v, want a whole-job rewrite", out.Rewrites)
	}
	if repo.Get("q1").UseCount != 1 {
		t.Error("reuse not recorded on entry")
	}
}

func TestRewriteQ1WithSubJobs(t *testing.T) {
	// Figure 6: Q1 rewritten to load both stored projections and keep only
	// the join.
	repo := NewRepository()
	for i, src := range []string{
		`A = load 'page_views' as (user, timestamp, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
store B into 'restore/pv_proj';`,
		`alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
store beta into 'restore/user_proj';`,
	} {
		jobs := compileJobs(t, src, "tmp/s")
		if _, _, err := repo.Add(entryFromJob(t, jobs[0], []string{"pv", "users"}[i])); err != nil {
			t.Fatal(err)
		}
	}
	q1 := compileJobs(t, q1Src, "tmp/q1")
	out := rewrite(t, repo, q1)

	if len(out.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(out.Jobs))
	}
	plan := out.Jobs[0].Plan
	var kinds []string
	for _, o := range plan.Ops() {
		kinds = append(kinds, string(o.Kind))
	}
	got := strings.Join(kinds, ",")
	// Exactly: two Loads of stored outputs, the Join, the Store.
	if plan.Len() != 4 {
		t.Errorf("rewritten plan ops = %s\n%s", got, plan)
	}
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpForeach {
			t.Error("projection survived rewriting")
		}
		if o.Kind == physical.OpLoad && !strings.HasPrefix(o.Path, "restore/") {
			t.Errorf("load of %s, want stored outputs only", o.Path)
		}
	}
	if len(out.Rewrites) != 2 {
		t.Errorf("rewrites = %d, want 2 (repeated scans)", len(out.Rewrites))
	}
}

func TestRewriteNoMatchesLeavesWorkflowIntact(t *testing.T) {
	repo := NewRepository()
	q2 := compileJobs(t, q2Src, "tmp/q2")
	out := rewrite(t, repo, q2)
	if len(out.Jobs) != 2 || len(out.Rewrites) != 0 || len(out.Aliases) != 0 {
		t.Errorf("empty repo changed workflow: %d jobs, %d rewrites", len(out.Jobs), len(out.Rewrites))
	}
}

func TestRewriteWholeFinalJobAliasesUserOutput(t *testing.T) {
	// When the final job itself is fully answered by a stored output, the
	// user's requested path is aliased to the stored file.
	repo := NewRepository()
	q1 := compileJobs(t, q1Src, "tmp/q1a")
	if _, _, err := repo.Add(entryFromJob(t, q1[0], "q1")); err != nil {
		t.Fatal(err)
	}
	// Same query stored under a different user path.
	q1b := compileJobs(t, strings.Replace(q1Src, "out/q1", "out/q1_again", 1), "tmp/q1b")
	out := rewrite(t, repo, q1b)
	if len(out.Jobs) != 0 {
		t.Fatalf("jobs = %d, want 0 (fully reused)", len(out.Jobs))
	}
	if got := out.Aliases["out/q1_again"]; got != "out/q1" {
		t.Errorf("alias = %q, want out/q1", got)
	}
}

func TestRewriteChainAcrossJobs(t *testing.T) {
	// Store both Q2 jobs' outputs: re-running Q2 should collapse to zero
	// jobs, with the final output aliased — this requires job2's loads to
	// be remapped after job1's elimination (the §3 bottom-up order).
	repo := NewRepository()
	q2 := compileJobs(t, q2Src, "tmp/q2")

	// Entry for job1 (join into temp).
	e1 := entryFromJob(t, q2[0], "join")
	if _, _, err := repo.Add(e1); err != nil {
		t.Fatal(err)
	}
	// Entry for job2 (group over the temp) — its plan loads the temp path,
	// which is exactly what a future rewritten job2 will reference.
	e2 := entryFromJob(t, q2[1], "group")
	if _, _, err := repo.Add(e2); err != nil {
		t.Fatal(err)
	}

	q2again := compileJobs(t, strings.Replace(q2Src, "out/q2", "out/q2_again", 1), "tmp/q2x")
	out := rewrite(t, repo, q2again)
	if len(out.Jobs) != 0 {
		t.Fatalf("jobs = %d, want 0:\n%+v", len(out.Jobs), out.Rewrites)
	}
	if got := out.Aliases["out/q2_again"]; got != "out/q2" {
		t.Errorf("alias = %q, want out/q2", got)
	}
}

func TestRewritePreservesFanOut(t *testing.T) {
	// A matched region that also feeds an unmatched consumer must survive
	// for that consumer.
	repo := NewRepository()
	sub := compileJobs(t, `
A = load 'page_views' as (user, timestamp:int, est_revenue:double);
B = filter A by timestamp > 100;
store B into 'restore/recent';`, "tmp/s")
	if _, _, err := repo.Add(entryFromJob(t, sub[0], "recent")); err != nil {
		t.Fatal(err)
	}
	// The load feeds both the matched filter and an unmatched projection.
	input := compileJobs(t, `
A = load 'page_views' as (user, timestamp:int, est_revenue:double);
B = filter A by timestamp > 100;
C = foreach A generate user;
store B into 'out/recent';
store C into 'out/all_users';`, "tmp/i")
	out := rewrite(t, repo, input)
	if len(out.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(out.Jobs))
	}
	plan := out.Jobs[0].Plan
	loads := plan.Sources()
	foundBase, foundStored := false, false
	for _, l := range loads {
		if l.Path == "page_views" {
			foundBase = true
		}
		if l.Path == "restore/recent" {
			foundStored = true
		}
	}
	if !foundBase || !foundStored {
		t.Errorf("loads = %v, want both base and stored", plan)
	}
	for _, o := range plan.Ops() {
		if o.Kind == physical.OpFilter {
			t.Error("matched filter not replaced")
		}
	}
}
