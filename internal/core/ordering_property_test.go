package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randomEntries builds a repository population of chained-filter plans of
// random depth over the same source, so deeper entries subsume shallower
// ones with matching prefixes.
func randomEntries(t *testing.T, r *rand.Rand, n int) []*Entry {
	t.Helper()
	var out []*Entry
	for i := 0; i < n; i++ {
		depth := 1 + r.Intn(3)
		src := "A = load 'page_views' as (user, ts:int, rev:double);\n"
		cur := "A"
		for d := 0; d < depth; d++ {
			next := fmt.Sprintf("S%d", d)
			// A shared prefix (ts > 10) followed by random suffix filters.
			bound := 10
			if d > 0 {
				bound = 20 + r.Intn(5)*10
			}
			src += fmt.Sprintf("%s = filter %s by ts > %d;\n", next, cur, bound)
			cur = next
		}
		src += fmt.Sprintf("store %s into 'restore/prop%d';\n", cur, i)
		jobs := compileJobs(t, src, fmt.Sprintf("tmp/p%d", i))
		e := entryFromJob(t, jobs[0], fmt.Sprintf("e%d", i))
		// Statistics derive deterministically from the plan so that
		// duplicate plans (deduplicated on Add, keeping the first) carry
		// identical ordering metrics regardless of which copy survives.
		h := int64(0)
		for _, c := range e.Plan.Canonical() {
			h = h*31 + int64(c)
			h &= 0xffffff
		}
		e.InputBytes = 1000 + h
		e.OutputBytes = 1 + h%2000
		e.ExecTime = time.Duration(h%1000) * time.Second
		out = append(out, e)
	}
	return out
}

// TestPropertyOrderingRespectsSubsumption checks the §3 invariant the
// repository scan depends on: no entry may appear before another entry that
// subsumes it (otherwise "first match" would not be "best match").
func TestPropertyOrderingRespectsSubsumption(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		repo := NewRepository()
		for _, e := range randomEntries(t, r, 2+r.Intn(5)) {
			if _, _, err := repo.Add(e); err != nil {
				return false
			}
		}
		ordered := repo.Ordered()
		for i := 0; i < len(ordered); i++ {
			for j := i + 1; j < len(ordered); j++ {
				// If a later entry subsumes an earlier one, the order is
				// wrong (equal plans are deduplicated, so strict).
				if Subsumes(ordered[j], ordered[i]) && !Subsumes(ordered[i], ordered[j]) {
					t.Logf("entry %s (pos %d) subsumed by later %s (pos %d)",
						ordered[i].ID, i, ordered[j].ID, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOrderingDeterministic: Ordered() must be stable across calls
// and independent of insertion order.
func TestPropertyOrderingDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		entries := randomEntries(t, r, 2+r.Intn(5))

		repoA := NewRepository()
		for _, e := range entries {
			if _, _, err := repoA.Add(e); err != nil {
				return false
			}
		}
		repoB := NewRepository()
		for _, i := range r.Perm(len(entries)) {
			if _, _, err := repoB.Add(entries[i]); err != nil {
				return false
			}
		}
		a, b := repoA.Ordered(), repoB.Ordered()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			// Duplicate plans may survive under different IDs depending on
			// insertion order; the *plans* must order identically.
			if a[i].Plan.Canonical() != b[i].Plan.Canonical() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMatchAgreesWithCanonKey cross-validates the pairwise
// traversal against the recursive canonical keys: an entry matches an input
// plan iff some input operator's upstream cone has the same canon key as
// the entry's terminal.
func TestPropertyMatchAgreesWithCanonKey(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		entries := randomEntries(t, r, 3)
		probeJobs := compileJobs(t, `
A = load 'page_views' as (user, ts:int, rev:double);
S0 = filter A by ts > 10;
S1 = filter S0 by ts > 30;
store S1 into 'out/probe';`, "tmp/probe")
		probe := probeJobs[0].Plan
		for _, e := range entries {
			_, matched := Match(probe, e)
			termKey := e.Plan.CanonKey(e.Plan.Sinks()[0].Inputs[0])
			canonHit := false
			for _, o := range probe.Ops() {
				if probe.CanonKey(o.ID) == termKey {
					canonHit = true
					break
				}
			}
			if matched != canonHit {
				t.Logf("disagreement on entry %s: match=%v canon=%v", e.ID, matched, canonHit)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
