package core
