package core

import (
	"fmt"
	"maps"
	"math/rand"
	"testing"
	"time"

	"repro/internal/physical"
)

// Randomized equivalence battery: the indexed match path
// (FindBestMatchProbed) must return the *same entry and mapping* as the
// retained naive reference scan (FindBestMatchNaive) on every input — across
// plan corpora that include DAGs with shared operators (shared filter
// prefixes feeding self-joins) and injected OpSplit tees. Runs under make
// check's `-race -count=2` gate.

// corpusScript generates one random script from a small pool of tables,
// shapes, and constants; the small pools make repo/input plan collisions
// (and hence matches) common.
func corpusScript(r *rand.Rand, out string) string {
	c1 := 1 + r.Intn(4)
	c2 := 1 + r.Intn(4)
	switch r.Intn(5) {
	case 0: // projection chain
		return fmt.Sprintf(`A = load 'pv' as (user, ts:int, rev:int);
B = filter A by ts > %d;
C = foreach B generate user, rev;
store C into '%s';`, c1, out)
	case 1: // group-aggregate
		return fmt.Sprintf(`A = load 'pv' as (user, ts:int, rev:int);
B = filter A by ts > %d;
C = group B by user;
D = foreach C generate group, COUNT(B), SUM(B.rev);
store D into '%s';`, c1, out)
	case 2: // shared-prefix self-join: A is a DAG-shared operator
		return fmt.Sprintf(`A = load 'pv' as (user, ts:int, rev:int);
B = filter A by ts > %d;
C = filter A by rev > %d;
D = join B by user, C by user;
store D into '%s';`, c1, c2, out)
	case 3: // two-table join
		return fmt.Sprintf(`A = load 'pv' as (user, ts:int, rev:int);
B = foreach A generate user, rev;
U = load 'users' as (name, city, age:int);
V = filter U by age > %d;
C = join V by name, B by user;
store C into '%s';`, c1, out)
	default: // distinct/order tail
		return fmt.Sprintf(`A = load 'clicks' as (user, n:int);
B = filter A by n > %d;
C = distinct B;
store C into '%s';`, c1, out)
	}
}

// corpusRepo populates a repository from n random scripts with randomized
// (deterministic) statistics so the §3 ordering varies.
func corpusRepo(t testing.TB, r *rand.Rand, n int) *Repository {
	repo := NewRepository()
	for i := 0; i < n; i++ {
		src := corpusScript(r, fmt.Sprintf("restore/c%d", i))
		jobs := compileJobs(t, src, fmt.Sprintf("tmp/c%d", i))
		e := entryFromJob(t, jobs[0], fmt.Sprintf("e%d", i))
		e.InputBytes = int64(1000 + r.Intn(5000))
		e.OutputBytes = int64(1 + r.Intn(2000))
		e.ExecTime = time.Duration(r.Intn(900)) * time.Second
		if _, _, err := repo.Add(e); err != nil {
			t.Fatalf("add %s: %v", e.ID, err)
		}
	}
	return repo
}

// assertSameMatch runs both scan paths and fails on any divergence.
func assertSameMatch(t *testing.T, input *physical.Plan, repo *Repository, skip map[string]bool) (hit bool) {
	t.Helper()
	var stI, stN MatchStats
	mi, oki := FindBestMatchProbed(input, repo, skip, &stI)
	mn, okn := FindBestMatchNaive(input, repo, skip, &stN)
	if oki != okn {
		t.Fatalf("indexed ok=%v, naive ok=%v\ninput:\n%s", oki, okn, input)
	}
	if !oki {
		return false
	}
	if mi.Entry.ID != mn.Entry.ID {
		t.Fatalf("indexed entry %s, naive entry %s", mi.Entry.ID, mn.Entry.ID)
	}
	if mi.Terminal.ID != mn.Terminal.ID {
		t.Fatalf("entry %s: indexed terminal #%d, naive terminal #%d", mi.Entry.ID, mi.Terminal.ID, mn.Terminal.ID)
	}
	if !maps.Equal(mi.Mapping, mn.Mapping) {
		t.Fatalf("entry %s: mappings differ:\nindexed: %v\nnaive:   %v", mi.Entry.ID, mi.Mapping, mn.Mapping)
	}
	if stI.Probes > stN.Probes {
		t.Fatalf("indexed path probed more than naive (%d > %d)", stI.Probes, stN.Probes)
	}
	return true
}

func TestPropertyIndexedMatchEqualsNaive(t *testing.T) {
	hits := 0
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		repo := corpusRepo(t, r, 4+r.Intn(20))
		for q := 0; q < 8; q++ {
			src := corpusScript(r, fmt.Sprintf("out/s%d-q%d", seed, q))
			jobs := compileJobs(t, src, fmt.Sprintf("tmp/s%d-q%d", seed, q))
			for _, job := range jobs {
				plan := job.Plan.Clone()
				if assertSameMatch(t, plan, repo, nil) {
					hits++
				}

				// Same plan with injected Split+Store tees: the input-side
				// skip rule and the fingerprint's fold must agree.
				injected := job.Plan.Clone()
				ni := 0
				if _, err := EnumerateSubJobs(injected, HeuristicAggressive, func() string {
					ni++
					return fmt.Sprintf("restore/inj-s%d-q%d-%d", seed, q, ni)
				}); err != nil {
					t.Fatalf("inject: %v", err)
				}
				if assertSameMatch(t, injected, repo, nil) {
					hits++
				}

				// With the best entry skipped, both paths must agree on the
				// second-best too (exercises the skip-set path).
				if m, ok := FindBestMatch(plan, repo); ok {
					assertSameMatch(t, plan, repo, map[string]bool{m.Entry.ID: true})
				}
			}
		}
	}
	if hits == 0 {
		t.Fatal("corpus produced no matches at all; the equivalence property was vacuous")
	}
}

// distinctChainRepo populates a repository with n guaranteed-distinct
// filter-chain entries (constant i per entry, so nothing deduplicates).
func distinctChainRepo(t testing.TB, n int) *Repository {
	repo := NewRepository()
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(`A = load 'pv' as (user, ts:int, rev:int);
B = filter A by ts > %d;
C = foreach B generate user, rev;
store C into 'restore/d%d';`, i+1000, i)
		jobs := compileJobs(t, src, fmt.Sprintf("tmp/d%d", i))
		e := entryFromJob(t, jobs[0], fmt.Sprintf("d%d", i))
		if _, added, err := repo.Add(e); err != nil || !added {
			t.Fatalf("add d%d: added=%v err=%v", i, added, err)
		}
	}
	return repo
}

// TestPropertyProbesSublinear pins the perf shape the index exists for: as
// the repository grows with unmatchable entries, naive probe counts grow
// linearly while indexed probes stay flat. The input misses every entry, so
// neither path can stop early.
func TestPropertyProbesSublinear(t *testing.T) {
	input := compileJobs(t, `A = load 'pv' as (user, ts:int, rev:int);
B = filter A by ts > 7;
C = foreach B generate user, rev;
store C into 'out/miss';`, "tmp/miss")[0].Plan
	probesAt := func(n int) (indexed, naive int64) {
		repo := distinctChainRepo(t, n)
		var stI, stN MatchStats
		if _, ok := FindBestMatchProbed(input, repo, nil, &stI); ok {
			t.Fatal("miss input matched")
		}
		if _, ok := FindBestMatchNaive(input, repo, nil, &stN); ok {
			t.Fatal("miss input matched naively")
		}
		return stI.Probes, stN.Probes
	}
	i1, n1 := probesAt(8)
	i2, n2 := probesAt(64)
	if n2 < n1*4 {
		t.Errorf("naive probes did not grow ~linearly: %d at 8 entries, %d at 64", n1, n2)
	}
	if i2 > i1*2+8 {
		t.Errorf("indexed probes grew with repository size: %d at 8 entries, %d at 64", i1, i2)
	}
}

// TestSubsumesNilTerminal is the regression test for the nil-terminal crash:
// a corrupt/unfinished entry (terminal never indexed) must be handled, not
// panic inside pairwiseTraversal.
func TestSubsumesNilTerminal(t *testing.T) {
	q1 := compileJobs(t, q1Src, "tmp/q1")
	good := entryFromJob(t, q1[0], "good")
	corrupt := &Entry{ID: "corrupt", Plan: physical.NewPlan(), OutputPath: "nowhere"}
	if Subsumes(good, corrupt) {
		t.Error("nothing subsumes a corrupt entry")
	}
	if Subsumes(corrupt, good) {
		t.Error("a corrupt entry subsumes nothing")
	}
	if _, ok := Match(q1[0].Plan, corrupt); ok {
		t.Error("corrupt entry matched")
	}
}
