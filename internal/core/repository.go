// Package core implements ReStore itself — the paper's contribution:
//
//   - a repository of stored MapReduce job outputs, each entry holding the
//     job's physical plan, the DFS filename of its output, and execution
//     statistics (§2.2);
//   - the plan matcher and rewriter (§3, Algorithm 1), which tests whether a
//     repository plan is contained in an input job's plan and rewrites the
//     job to load the stored output instead of recomputing it;
//   - the sub-job enumerator (§4), which injects Split+Store operators after
//     selected physical operators (Conservative / Aggressive / No-Heuristic)
//     so their outputs are materialized during execution;
//   - the enumerated sub-job selector (§5), which applies keep/evict rules
//     based on post-execution statistics.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/physical"
	"repro/internal/types"
)

// Entry is one stored job output: the physical plan that produced it (ending
// in a Store), where the output lives, and statistics used for repository
// ordering and eviction.
type Entry struct {
	ID         string         `json:"id"`
	Plan       *physical.Plan `json:"plan"`
	OutputPath string         `json:"outputPath"`
	Schema     types.Schema   `json:"schema"`

	// Statistics (§2.2): sizes, execution time, and usage.
	InputBytes  int64         `json:"inputBytes"`
	OutputBytes int64         `json:"outputBytes"`
	ExecTime    time.Duration `json:"execTime"`
	UseCount    int64         `json:"useCount"`
	CreatedSeq  int64         `json:"createdSeq"`
	LastUsedSeq int64         `json:"lastUsedSeq"`

	// InputVersions snapshots the DFS version of every base input when the
	// output was stored; eviction Rule 4 compares them against the current
	// versions.
	InputVersions map[string]uint64 `json:"inputVersions"`

	// OwnsFile marks outputs whose files the repository manages (temps and
	// injected sub-job outputs). Evicting such an entry also deletes the
	// file; user-named outputs are only dropped from the index.
	OwnsFile bool `json:"ownsFile"`

	// terminal caches the ID of the operator feeding the entry's Store.
	terminal int
	// planOps caches len(Plan.Ops()) minus the Store for ordering.
	matchSize int
}

// ioRatio is the input/output size ratio used as ordering metric 2a (§3):
// higher means the stored output compresses its input more.
func (e *Entry) ioRatio() float64 {
	if e.OutputBytes <= 0 {
		return float64(e.InputBytes)
	}
	return float64(e.InputBytes) / float64(e.OutputBytes)
}

// finish validates and indexes a freshly built entry.
func (e *Entry) finish() error {
	sinks := e.Plan.Sinks()
	if len(sinks) != 1 {
		return fmt.Errorf("core: entry %s: plan must have exactly one Store, has %d", e.ID, len(sinks))
	}
	if sinks[0].Path != e.OutputPath {
		return fmt.Errorf("core: entry %s: store path %q != output path %q", e.ID, sinks[0].Path, e.OutputPath)
	}
	e.terminal = sinks[0].Inputs[0]
	e.matchSize = e.Plan.Len() - 1
	if term := e.Plan.Op(e.terminal); term != nil && term.Kind == physical.OpLoad {
		return fmt.Errorf("core: entry %s: trivial Load->Store plan is not storable", e.ID)
	}
	return e.Plan.Validate()
}

// Repository holds the stored job outputs. All methods are safe for
// concurrent use.
type Repository struct {
	mu      sync.RWMutex
	entries []*Entry
	byCanon map[string]*Entry // dedup on plan canonical form
	nextID  int
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{byCanon: make(map[string]*Entry)}
}

// Len returns the number of entries.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Add registers an entry. If an entry with an identical plan already exists
// the repository keeps the existing one (its output is the same data) and
// returns it with added=false.
func (r *Repository) Add(e *Entry) (*Entry, bool, error) {
	if err := e.finish(); err != nil {
		return nil, false, err
	}
	canon := e.Plan.Canonical()
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byCanon[canon]; ok {
		return prev, false, nil
	}
	if e.ID == "" {
		r.nextID++
		e.ID = fmt.Sprintf("entry-%d", r.nextID)
	}
	r.entries = append(r.entries, e)
	r.byCanon[canon] = e
	return e, true, nil
}

// Remove evicts an entry by ID, returning it (or nil if absent).
func (r *Repository) Remove(id string) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, e := range r.entries {
		if e.ID == id {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			delete(r.byCanon, e.Plan.Canonical())
			return e
		}
	}
	return nil
}

// Get returns the entry with the given ID, or nil.
func (r *Repository) Get(id string) *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// Ordered returns the entries in match-scan order, implementing the §3
// ordering rules:
//
//  1. If plan A subsumes plan B, A comes first. Subsumption implies A has at
//     least as many operators as B (every B operator needs an equivalent in
//     A), so ordering by descending plan size guarantees no subsumed entry
//     precedes its subsumer; identical plans are deduplicated at Add.
//  2. Ties order by descending input/output ratio, then descending
//     execution time — both favor entries whose reuse saves more.
func (r *Repository) Ordered() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, len(r.entries))
	copy(out, r.entries)
	sort.SliceStable(out, func(i, j int) bool { return matchOrderLess(out[i], out[j]) })
	return out
}

// matchOrderLess is the §3 match-scan comparator shared by Ordered and
// OrderedSnapshot.
func matchOrderLess(a, b *Entry) bool {
	if a.matchSize != b.matchSize {
		return a.matchSize > b.matchSize
	}
	ra, rb := a.ioRatio(), b.ioRatio()
	if ra != rb {
		return ra > rb
	}
	if a.ExecTime != b.ExecTime {
		return a.ExecTime > b.ExecTime
	}
	return a.ID < b.ID
}

// All returns the entries in insertion order (for inspection tools).
func (r *Repository) All() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// OrderedSnapshot returns deep copies of the entries in match-scan order.
// Unlike Ordered, the result shares no mutable state with the repository
// (plans are immutable and stay shared), so callers may read or serialize
// it while queries keep executing — the repository endpoint of the restored
// daemon encodes these concurrently with MarkUsed.
func (r *Repository) OrderedSnapshot() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, len(r.entries))
	for i, e := range r.entries {
		c := *e
		c.InputVersions = make(map[string]uint64, len(e.InputVersions))
		for k, v := range e.InputVersions {
			c.InputVersions[k] = v
		}
		out[i] = &c
	}
	r.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool { return matchOrderLess(out[i], out[j]) })
	return out
}

// MarkUsed records a reuse of the entry at the given workflow sequence.
func (r *Repository) MarkUsed(id string, seq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.ID == id {
			e.UseCount++
			if seq > e.LastUsedSeq {
				e.LastUsedSeq = seq
			}
			return
		}
	}
}

// TotalStoredBytes sums OutputBytes over all entries.
func (r *Repository) TotalStoredBytes() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var n int64
	for _, e := range r.entries {
		n += e.OutputBytes
	}
	return n
}
