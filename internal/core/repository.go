// Package core implements ReStore itself — the paper's contribution:
//
//   - a repository of stored MapReduce job outputs, each entry holding the
//     job's physical plan, the DFS filename of its output, and execution
//     statistics (§2.2);
//   - the plan matcher and rewriter (§3, Algorithm 1), which tests whether a
//     repository plan is contained in an input job's plan and rewrites the
//     job to load the stored output instead of recomputing it;
//   - the sub-job enumerator (§4), which injects Split+Store operators after
//     selected physical operators (Conservative / Aggressive / No-Heuristic)
//     so their outputs are materialized during execution;
//   - the enumerated sub-job selector (§5), which applies keep/evict rules
//     based on post-execution statistics.
//
// Concurrency and durability invariants:
//
//   - All Repository methods are safe for concurrent use. Entries pinned by
//     an in-flight execution (Pin) are never evicted — RemoveIfIdle refuses
//     both pinned entries and entries whose LastUsedSeq moved since the
//     caller's staleness check — so a stored output a rewrite reuses cannot
//     be deleted mid-run.
//   - Every committed mutation (Add, Remove/RemoveIfIdle, MarkUsed,
//     NoteOutput/ForgetOutput) is forwarded to an attached Journal in its
//     commit order; a snapshot (Save) plus the journaled suffix (Apply)
//     reconstructs the repository exactly after a crash. Pins are
//     process-local and never persisted.
//   - The match index (byCanon/ordered/byFP/unindexed) stays under the one
//     repository mutex — reuse semantics are identical at any shard count.
//     Only the path-keyed state (the Rule-4 invalidation index byPath and
//     the §5 retention table) is sharded by shardkey, each shard behind its
//     own lock, so per-shard GC scanners and disjoint queries' invalidation
//     probes never contend. Lock order is r.mu → pathShard.mu → r.jmu;
//     methods that take a later lock never hold an earlier one afterwards.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/physical"
	"repro/internal/shardkey"
	"repro/internal/types"
)

// Entry is one stored job output: the physical plan that produced it (ending
// in a Store), where the output lives, and statistics used for repository
// ordering and eviction.
type Entry struct {
	ID         string         `json:"id"`
	Plan       *physical.Plan `json:"plan"`
	OutputPath string         `json:"outputPath"`
	Schema     types.Schema   `json:"schema"`

	// Statistics (§2.2): sizes, execution time, and usage.
	InputBytes  int64         `json:"inputBytes"`
	OutputBytes int64         `json:"outputBytes"`
	ExecTime    time.Duration `json:"execTime"`
	UseCount    int64         `json:"useCount"`
	CreatedSeq  int64         `json:"createdSeq"`
	LastUsedSeq int64         `json:"lastUsedSeq"`

	// InputVersions snapshots the DFS version of every base input when the
	// output was stored; eviction Rule 4 compares them against the current
	// versions.
	InputVersions map[string]uint64 `json:"inputVersions"`
	// OutputVersion snapshots the stored output file's own DFS version.
	// Repository-owned files are never rewritten, but user-named outputs
	// (WithRegisterFinalOutputs) can be overwritten by a later query or
	// upload; eviction drops the entry when the version moved, so a match
	// never serves another plan's data from a recycled path. 0 means
	// unknown (entries persisted before this field existed) and skips the
	// check.
	OutputVersion uint64 `json:"outputVersion,omitempty"`

	// OwnsFile marks outputs whose files the repository manages (temps and
	// injected sub-job outputs). Evicting such an entry also deletes the
	// file; user-named outputs are only dropped from the index.
	OwnsFile bool `json:"ownsFile"`

	// terminal caches the ID of the operator feeding the entry's Store.
	terminal int
	// planOps caches len(Plan.Ops()) minus the Store for ordering.
	matchSize int
	// ix is the plan's signature/fingerprint index, computed once at finish
	// (plans are immutable once stored) and shared read-only thereafter.
	ix *physical.PlanIndex
	// termFP is the terminal operator's subtree fingerprint — the key this
	// entry is filed under in the repository's inverted match index.
	termFP physical.Fingerprint
	// indexable is false for plans containing Split operators, whose
	// traversal-side transparency the terminal fingerprint cannot summarize;
	// such entries (never produced by the enumerator, which splices Splits
	// out of candidate plans) are probed exhaustively instead.
	indexable bool
	// pins counts in-flight executions reusing this entry; guarded by the
	// repository mutex. A pinned entry (and its stored output file) must
	// not be evicted — a concurrent workflow's engine run is about to load
	// the file.
	pins int
}

// ioRatio is the input/output size ratio used as ordering metric 2a (§3):
// higher means the stored output compresses its input more.
func (e *Entry) ioRatio() float64 {
	if e.OutputBytes <= 0 {
		return float64(e.InputBytes)
	}
	return float64(e.InputBytes) / float64(e.OutputBytes)
}

// finish validates and indexes a freshly built entry.
func (e *Entry) finish() error {
	sinks := e.Plan.Sinks()
	if len(sinks) != 1 {
		return fmt.Errorf("core: entry %s: plan must have exactly one Store, has %d", e.ID, len(sinks))
	}
	if sinks[0].Path != e.OutputPath {
		return fmt.Errorf("core: entry %s: store path %q != output path %q", e.ID, sinks[0].Path, e.OutputPath)
	}
	e.terminal = sinks[0].Inputs[0]
	e.matchSize = e.Plan.Len() - 1
	if term := e.Plan.Op(e.terminal); term != nil && term.Kind == physical.OpLoad {
		return fmt.Errorf("core: entry %s: trivial Load->Store plan is not storable", e.ID)
	}
	if err := e.Plan.Validate(); err != nil {
		return err
	}
	e.ix = physical.IndexPlan(e.Plan)
	e.termFP = e.ix.Fingerprint(e.terminal)
	e.indexable = true
	for _, o := range e.Plan.Ops() {
		if o.Kind == physical.OpSplit {
			e.indexable = false
			break
		}
	}
	return nil
}

// index returns the entry plan's memoized signature/fingerprint index,
// building one on the fly for hand-assembled entries that never went
// through finish (the fresh index is not retained: entries shared across
// goroutines only ever expose the immutable index finish built).
func (e *Entry) index() *physical.PlanIndex {
	if e.ix != nil {
		return e.ix
	}
	return physical.IndexPlan(e.Plan)
}

// pathShard is one independently locked slice of the repository's
// path-keyed state: the Rule-4 invalidation index and the §5 retention
// table, restricted to the DFS paths shardkey routes here. Per-shard GC
// scanners drain the DFS eviction feed shard-by-shard and probe only the
// matching pathShard, so scanners never contend with each other or with
// disjoint queries' invalidation checks.
type pathShard struct {
	mu sync.RWMutex
	// byPath is the inverted invalidation index: DFS path -> entries whose
	// input set or stored output touches it (exact-path keys; DFS paths are
	// flat). Eviction Rule-4 checks driven by the DFS mutation feed probe it
	// so their work scales with the mutated paths, not the repository size.
	byPath map[string][]*Entry
	// outputs tracks user-named query outputs for the §5 keep-results-for-N
	// retention mode: path -> the workflow sequence and file version that
	// last produced (or re-requested) it. Journaled (MutNoteOutput /
	// MutForgetOutput) and persisted with the repository, so retention
	// decisions survive crashes.
	outputs map[string]OutputRecord
}

// Repository holds the stored job outputs. All methods are safe for
// concurrent use.
type Repository struct {
	mu      sync.RWMutex
	entries []*Entry
	byID    map[string]*Entry // O(1) Get/Pin/MarkUsed; same lifetime as entries
	byCanon map[string]*Entry // dedup on plan canonical form
	// ordered maintains the §3 match-scan order incrementally (ordered
	// insert on Add, removal on Remove) — Ordered() is a copy, never a
	// re-sort. Sound because every matchOrderLess key (matchSize, byte
	// ratio, ExecTime, ID) is immutable after Add; MarkUsed only touches
	// usage counters.
	ordered []*Entry
	// byFP is the inverted match index: entry-terminal subtree fingerprint
	// -> entries filed under it. Maintained under mu by Add/Remove (and so
	// rebuilt for free by AdoptRepository/journal replay, which go through
	// Add). FindBestMatchProbed probes it with the input plan's fingerprint
	// set instead of scanning every entry.
	byFP map[physical.Fingerprint][]*Entry
	// unindexed lists entries excluded from byFP (Split-bearing plans);
	// every probe also verifies these, preserving exact §3 semantics.
	unindexed []*Entry
	// pathShards holds the sharded path-keyed state (see pathShard). A
	// path's shard is shardkey.Index(path, len(pathShards)) — the same
	// routing the DFS namespace and WAL streams use.
	pathShards []pathShard
	nextID     int
	// jmu is a leaf mutex guarding the journal pointer, so mutations
	// committed under a pathShard lock (NoteOutput) and mutations committed
	// under r.mu (Add, Remove, MarkUsed) both journal without either lock
	// needing the other. Always the last lock taken.
	jmu sync.Mutex
	// journal, when attached, receives every committed mutation (see
	// journal.go) — the repository half of the write-ahead log.
	journal Journal
}

// NewRepository returns an empty repository with a single path shard — the
// single-domain oracle configuration.
func NewRepository() *Repository { return NewShardedRepository(1) }

// NewShardedRepository returns an empty repository whose path-keyed state
// (Rule-4 invalidation index, retention table) is split over n
// independently locked shards (n < 1 is clamped to 1). The match index is
// unaffected: reuse semantics are identical at any n.
func NewShardedRepository(n int) *Repository {
	if n < 1 {
		n = 1
	}
	r := &Repository{
		byID:       make(map[string]*Entry),
		byCanon:    make(map[string]*Entry),
		byFP:       make(map[physical.Fingerprint][]*Entry),
		pathShards: make([]pathShard, n),
	}
	for i := range r.pathShards {
		r.pathShards[i].byPath = make(map[string][]*Entry)
		r.pathShards[i].outputs = make(map[string]OutputRecord)
	}
	return r
}

// NumPathShards returns how many path shards the repository was built with.
func (r *Repository) NumPathShards() int { return len(r.pathShards) }

// pathShardOf returns the shard owning the path-keyed state for path.
func (r *Repository) pathShardOf(path string) *pathShard {
	return &r.pathShards[shardkey.Index(path, len(r.pathShards))]
}

// touchedPaths returns the DFS paths the entry is filed under in byPath:
// every input path plus the stored output itself (the output key is what
// lets a deleted or overwritten stored file invalidate its entry, and a
// deleted entry's file invalidate entries reading it).
func (e *Entry) touchedPaths() []string {
	out := make([]string, 0, len(e.InputVersions)+1)
	for p := range e.InputVersions {
		out = append(out, p)
	}
	if _, ok := e.InputVersions[e.OutputPath]; !ok {
		out = append(out, e.OutputPath)
	}
	return out
}

// Len returns the number of entries.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Add registers an entry. If an entry with an identical plan already exists
// the repository keeps the existing one (its output is the same data) and
// returns it with added=false.
func (r *Repository) Add(e *Entry) (*Entry, bool, error) {
	if err := e.finish(); err != nil {
		return nil, false, err
	}
	canon := e.Plan.Canonical()
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byCanon[canon]; ok {
		return prev, false, nil
	}
	if e.ID == "" {
		r.nextID++
		e.ID = fmt.Sprintf("entry-%d", r.nextID)
	}
	r.entries = append(r.entries, e)
	r.byID[e.ID] = e
	r.byCanon[canon] = e
	// Ordered insert keeps r.ordered in §3 match order without a per-lookup
	// sort; insertion after equal keys mirrors the stable sort it replaces.
	i := sort.Search(len(r.ordered), func(i int) bool { return matchOrderLess(e, r.ordered[i]) })
	r.ordered = append(r.ordered, nil)
	copy(r.ordered[i+1:], r.ordered[i:])
	r.ordered[i] = e
	if e.indexable {
		r.byFP[e.termFP] = append(r.byFP[e.termFP], e)
	} else {
		r.unindexed = append(r.unindexed, e)
	}
	for _, p := range e.touchedPaths() {
		sh := r.pathShardOf(p)
		sh.mu.Lock()
		sh.byPath[p] = append(sh.byPath[p], e)
		sh.mu.Unlock()
	}
	r.journalEmit(Mutation{Op: MutAdd, Entry: e.clone()})
	return e, true, nil
}

// dropFromSlice removes the first pointer-identical occurrence of e.
func dropFromSlice(s []*Entry, e *Entry) []*Entry {
	for i, x := range s {
		if x == e {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Remove evicts an entry by ID, returning it (or nil if absent). Exactly
// one of any set of concurrent Remove(id) calls receives the entry, so the
// winner alone may delete the entry's owned file.
func (r *Repository) Remove(id string) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.removeLocked(id)
}

func (r *Repository) removeLocked(id string) *Entry {
	e, ok := r.byID[id]
	if !ok {
		return nil
	}
	r.entries = dropFromSlice(r.entries, e)
	delete(r.byID, id)
	delete(r.byCanon, e.Plan.Canonical())
	r.ordered = dropFromSlice(r.ordered, e)
	if e.indexable {
		if b := dropFromSlice(r.byFP[e.termFP], e); len(b) > 0 {
			r.byFP[e.termFP] = b
		} else {
			delete(r.byFP, e.termFP)
		}
	} else {
		r.unindexed = dropFromSlice(r.unindexed, e)
	}
	for _, p := range e.touchedPaths() {
		sh := r.pathShardOf(p)
		sh.mu.Lock()
		if b := dropFromSlice(sh.byPath[p], e); len(b) > 0 {
			sh.byPath[p] = b
		} else {
			delete(sh.byPath, p)
		}
		sh.mu.Unlock()
	}
	r.journalEmit(Mutation{Op: MutRemove, ID: id})
	return e
}

// RemoveIfIdle evicts the entry only when no in-flight execution has it
// pinned AND it has not been reused since the caller judged it stale
// (lastUsedSeq is the LastUsedSeq the caller observed; a mismatch means a
// concurrent rewrite refreshed the entry between the staleness check and
// this removal, so the Rule-3 verdict no longer holds). It returns the
// entry when removed, or nil when the entry is absent, pinned, or
// refreshed. Eviction uses this instead of Remove so it can never delete a
// stored output another concurrent workflow was rewritten to load, nor
// drop an entry that just proved its worth.
func (r *Repository) RemoveIfIdle(id string, lastUsedSeq int64) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[id]
	if !ok || e.pins > 0 || e.LastUsedSeq != lastUsedSeq {
		return nil
	}
	return r.removeLocked(id)
}

// Pin marks the entry as in use by an in-flight execution, preventing its
// eviction (and its owned file's deletion) until Unpin. It reports whether
// the entry was still present — a false return means the entry was evicted
// concurrently and the caller must rescan instead of reusing it.
func (r *Repository) Pin(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byID[id]; ok {
		e.pins++
		return true
	}
	return false
}

// Unpin releases pins taken by Pin. IDs of entries removed in the meantime
// (impossible for eviction, which skips pinned entries, but Remove is
// unconditional) are ignored.
func (r *Repository) Unpin(ids []string) {
	if len(ids) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range ids {
		if e, ok := r.byID[id]; ok && e.pins > 0 {
			e.pins--
		}
	}
}

// Get returns the entry with the given ID, or nil.
func (r *Repository) Get(id string) *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byID[id]
}

// Ordered returns the entries in match-scan order, implementing the §3
// ordering rules:
//
//  1. If plan A subsumes plan B, A comes first. Subsumption implies A has at
//     least as many operators as B (every B operator needs an equivalent in
//     A), so ordering by descending plan size guarantees no subsumed entry
//     precedes its subsumer; identical plans are deduplicated at Add.
//  2. Ties order by descending input/output ratio, then descending
//     execution time — both favor entries whose reuse saves more.
//
// The order is maintained incrementally on Add/Remove (all comparator keys
// are immutable after Add), so this is a copy, not a per-call sort.
func (r *Repository) Ordered() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, len(r.ordered))
	copy(out, r.ordered)
	return out
}

// probeCandidates returns the entries a fingerprint probe must verify for an
// input plan with the given index: entries whose terminal fingerprint
// appears among the input's per-operator fingerprints (indexHits), plus
// every unindexable entry (fallback) — in §3 match-scan order, so verifying
// them first-match-wins reproduces the naive best-first scan exactly.
func (r *Repository) probeCandidates(inIx *physical.PlanIndex) (cands []*Entry, indexHits, fallback int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, fp := range inIx.Fingerprints() {
		cands = append(cands, r.byFP[fp]...)
	}
	indexHits = int64(len(cands))
	fallback = int64(len(r.unindexed))
	cands = append(cands, r.unindexed...)
	sort.Slice(cands, func(i, j int) bool { return matchOrderLess(cands[i], cands[j]) })
	return cands, indexHits, fallback
}

// matchOrderLess is the §3 match-scan comparator shared by Ordered and
// OrderedSnapshot.
func matchOrderLess(a, b *Entry) bool {
	if a.matchSize != b.matchSize {
		return a.matchSize > b.matchSize
	}
	ra, rb := a.ioRatio(), b.ioRatio()
	if ra != rb {
		return ra > rb
	}
	if a.ExecTime != b.ExecTime {
		return a.ExecTime > b.ExecTime
	}
	return a.ID < b.ID
}

// All returns the entries in insertion order (for inspection tools).
func (r *Repository) All() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// clone returns a deep copy of the entry sharing only the immutable Plan.
// Runtime-only state (pins) is zeroed.
func (e *Entry) clone() *Entry {
	c := *e
	c.InputVersions = make(map[string]uint64, len(e.InputVersions))
	for k, v := range e.InputVersions {
		c.InputVersions[k] = v
	}
	c.pins = 0
	return &c
}

// Snapshot returns deep copies of the entries in insertion order. The
// result shares no mutable state with the repository (plans are immutable
// and stay shared), so callers may read it while queries keep executing —
// eviction iterates these on every execution's hot path, where the
// match-scan sort of OrderedSnapshot would be wasted work.
func (r *Repository) Snapshot() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.clone()
	}
	return out
}

// OrderedSnapshot returns deep copies of the entries in match-scan order —
// the repository endpoint of the restored daemon serializes these
// concurrently with MarkUsed.
func (r *Repository) OrderedSnapshot() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, len(r.ordered))
	for i, e := range r.ordered {
		out[i] = e.clone()
	}
	return out
}

// EntriesTouching returns deep copies of the entries whose input set or
// stored output touches any of the given DFS paths, deduplicated. This is
// the indexed Rule-4 candidate set for a batch of mutated paths: its size
// scales with the mutations, not the repository. Two-phase: candidate IDs
// are collected under only the involved path-shard read locks, then cloned
// under the repository read lock — an entry removed between the phases is
// simply skipped (it no longer needs invalidating), an entry added between
// them belongs to a later feed batch.
func (r *Repository) EntriesTouching(paths []string) []*Entry {
	if len(paths) == 0 {
		return nil
	}
	var ids []string
	seen := make(map[string]bool)
	for _, p := range paths {
		sh := r.pathShardOf(p)
		sh.mu.RLock()
		for _, e := range sh.byPath[p] {
			if !seen[e.ID] {
				seen[e.ID] = true
				ids = append(ids, e.ID)
			}
		}
		sh.mu.RUnlock()
	}
	if len(ids) == 0 {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(ids))
	for _, id := range ids {
		if e, ok := r.byID[id]; ok {
			out = append(out, e.clone())
		}
	}
	return out
}

// CloneOf returns a deep copy of the entry with the given ID, or nil.
func (r *Repository) CloneOf(id string) *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.byID[id]; ok {
		return e.clone()
	}
	return nil
}

// ReferencesPath reports whether any live entry reads the path as an input
// or stores its output there. Retention and deferred-delete retries use it
// to refuse deleting a file the repository still depends on.
func (r *Repository) ReferencesPath(path string) bool {
	sh := r.pathShardOf(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.byPath[path]) > 0
}

// EntryUsage is the lightweight per-entry metadata the Rule-3 window and
// size-budget passes scan: no plan, no version map, so a pass over the whole
// repository touches only a few words per entry and never probes the DFS.
type EntryUsage struct {
	ID          string
	OutputPath  string
	OutputBytes int64
	OwnsFile    bool
	CreatedSeq  int64
	LastUsedSeq int64
}

// Touch is the recency key the window and budget policies order by: the
// last sequence at which the entry was created or reused.
func (u EntryUsage) Touch() int64 {
	if u.LastUsedSeq > u.CreatedSeq {
		return u.LastUsedSeq
	}
	return u.CreatedSeq
}

// UsageSnapshot returns the usage metadata of every entry, in insertion
// order.
func (r *Repository) UsageSnapshot() []EntryUsage {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]EntryUsage, len(r.entries))
	for i, e := range r.entries {
		out[i] = EntryUsage{
			ID:          e.ID,
			OutputPath:  e.OutputPath,
			OutputBytes: e.OutputBytes,
			OwnsFile:    e.OwnsFile,
			CreatedSeq:  e.CreatedSeq,
			LastUsedSeq: e.LastUsedSeq,
		}
	}
	return out
}

// OutputRecord tracks one user-named query output for the §5
// keep-results-for-N retention mode.
type OutputRecord struct {
	Path string `json:"path"`
	// Seq is the workflow sequence that last wrote or re-requested the path.
	Seq int64 `json:"seq"`
	// Version is the file's DFS version at that point; a mismatch at
	// retirement time means the path was overwritten by something the
	// tracker never saw (an upload), so retention must leave it alone.
	Version uint64 `json:"version"`
}

// NoteOutput records (or refreshes) a user-named query output for
// retention. Journaled, so a recovered repository remembers how old every
// tracked output is. Takes only the path's shard lock — disjoint queries'
// output registrations never serialize on the repository mutex.
func (r *Repository) NoteOutput(path string, seq int64, version uint64) {
	sh := r.pathShardOf(path)
	sh.mu.Lock()
	sh.outputs[path] = OutputRecord{Path: path, Seq: seq, Version: version}
	sh.mu.Unlock()
	r.journalEmit(Mutation{Op: MutNoteOutput, Path: path, Seq: seq, Version: version})
}

// ForgetOutput drops a tracked output (it was retired, overwritten, or
// vanished). Forgetting an untracked path is a no-op and is not journaled.
func (r *Repository) ForgetOutput(path string) {
	sh := r.pathShardOf(path)
	sh.mu.Lock()
	_, ok := sh.outputs[path]
	if ok {
		delete(sh.outputs, path)
	}
	sh.mu.Unlock()
	if ok {
		r.journalEmit(Mutation{Op: MutForgetOutput, Path: path})
	}
}

// TrackedOutputs returns the retention table sorted by path.
func (r *Repository) TrackedOutputs() []OutputRecord {
	var out []OutputRecord
	for i := range r.pathShards {
		sh := &r.pathShards[i]
		sh.mu.RLock()
		for _, rec := range sh.outputs {
			out = append(out, rec)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// MarkUsed records a reuse of the entry at the given workflow sequence.
func (r *Repository) MarkUsed(id string, seq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[id]
	if !ok {
		return
	}
	e.UseCount++
	if seq > e.LastUsedSeq {
		e.LastUsedSeq = seq
	}
	r.journalEmit(Mutation{Op: MutUse, ID: id, UseCount: e.UseCount, LastUsedSeq: e.LastUsedSeq})
}

// TotalStoredBytes sums OutputBytes over all entries.
func (r *Repository) TotalStoredBytes() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var n int64
	for _, e := range r.entries {
		n += e.OutputBytes
	}
	return n
}
