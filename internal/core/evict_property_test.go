package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/types"
)

// Seeded property tests holding the index-driven eviction path equivalent
// to the naive full sweep (the retained reference/oracle), and pinning the
// budget policy's no-pinned-evictions invariant. They run under the
// `make check` -race -count=2 gate alongside the match-path equivalence
// test.

// gcTwin is one side of the equivalence harness: a selector over its own
// FS, fed an identical entry set and mutation stream as its twin.
type gcTwin struct {
	sel *Selector
	fs  *dfs.FS
}

func newGCTwin(t *testing.T, n int, policy Policy) *gcTwin {
	t.Helper()
	fs := dfs.New()
	sel := &Selector{Repo: NewRepository(), FS: fs, Cluster: cluster.Default(), Policy: policy}
	for i := 0; i < n; i++ {
		gcAddEntry(t, sel, fs, i)
	}
	// Chain entries reading stored outputs, so cascades have something to
	// propagate through.
	for i := 0; i < n/4; i++ {
		src := fmt.Sprintf(`A = load 'restore/g%d' as (k:int, v:int);
B = filter A by v > %d;
store B into 'restore/c%d';`, i, i, i)
		if err := fs.WriteTuples(fmt.Sprintf("restore/c%d", i), types.Schema{}, []types.Tuple{{types.NewInt(int64(i))}}); err != nil {
			t.Fatal(err)
		}
		jobs := compileJobs(t, src, fmt.Sprintf("tmp/c%d", i))
		cand, err := WholeJobCandidate(jobs[0].Plan, jobs[0].Plan.Sinks()[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, added, err := sel.Consider(Candidate{
			Plan: cand, OutputPath: fmt.Sprintf("restore/c%d", i),
			Schema:     types.SchemaFromNames("k", "v"),
			InputBytes: 1000, OutputBytes: 50, OwnsFile: true,
		}, 1); err != nil || !added {
			t.Fatalf("chain %d: %v %v", i, added, err)
		}
	}
	return &gcTwin{sel: sel, fs: fs}
}

// survivorIDs returns the sorted surviving entry IDs.
func (tw *gcTwin) survivorIDs() []string {
	var out []string
	for _, e := range tw.sel.Repo.All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// TestPropertyIndexedSweepEquivalentToNaive applies an identical random
// mutation stream to two twins and, after every round, evicts one through
// the naive full-sweep fixpoint and the other through the mutation-feed-
// indexed passes. Survivor sets, stored-file sets, and usage counters must
// agree at every round, under keep-all and window policies alike.
func TestPropertyIndexedSweepEquivalentToNaive(t *testing.T) {
	policies := []struct {
		name string
		p    Policy
	}{
		{"keep-all-rule4", DefaultPolicy()},
		{"window-3", Policy{KeepAll: true, CheckInputVersions: true, EvictionWindow: 3}},
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			const entries = 24
			rng := rand.New(rand.NewSource(0xec1c7))
			naive := newGCTwin(t, entries, pol.p)
			indexed := newGCTwin(t, entries, pol.p)
			indexed.fs.TakeEvictionDirty() // construction churn: start the feed clean

			seq := int64(1)
			for round := 0; round < 12; round++ {
				// Identical mutation batch on both twins: mutate or delete a
				// few random inputs (some rounds mutate nothing, exercising
				// the no-op fast path).
				for k := rng.Intn(3); k > 0; k-- {
					i := rng.Intn(entries)
					path := fmt.Sprintf("in/i%d", i)
					if rng.Intn(4) == 0 && naive.fs.Exists(path) {
						if err := naive.fs.Delete(path); err != nil {
							t.Fatal(err)
						}
						if err := indexed.fs.Delete(path); err != nil {
							t.Fatal(err)
						}
						continue
					}
					mutateInput(t, naive.fs, i)
					mutateInput(t, indexed.fs, i)
				}
				// Refresh a random surviving entry on both sides so the
				// window policy sees divergent-recency traffic.
				if all := naive.sel.Repo.All(); len(all) > 0 {
					pick := all[rng.Intn(len(all))].ID
					naive.sel.Repo.MarkUsed(pick, seq)
					indexed.sel.Repo.MarkUsed(pick, seq)
				}
				seq += int64(rng.Intn(3))

				// Naive oracle: full sweep to a fixpoint.
				for {
					ev, err := naive.sel.Evict(seq, nil)
					if err != nil {
						t.Fatal(err)
					}
					if len(ev) == 0 {
						break
					}
				}
				// Indexed path: feed batch + window pass + cascade rounds.
				var stI EvictStats
				if _, err := indexed.sel.EvictPaths(seq, indexed.fs.TakeEvictionDirty(), &stI); err != nil {
					t.Fatal(err)
				}
				if _, err := indexed.sel.EvictWindowBudget(seq, &stI); err != nil {
					t.Fatal(err)
				}
				for {
					dirty := indexed.fs.TakeEvictionDirty()
					if len(dirty) == 0 {
						break
					}
					ev, err := indexed.sel.EvictPaths(seq, dirty, &stI)
					if err != nil {
						t.Fatal(err)
					}
					if len(ev) == 0 {
						break
					}
				}

				ns, is := naive.survivorIDs(), indexed.survivorIDs()
				if fmt.Sprint(ns) != fmt.Sprint(is) {
					t.Fatalf("round %d (seq %d): survivors diverged\n naive:   %v\n indexed: %v", round, seq, ns, is)
				}
				for _, id := range ns {
					nf := naive.sel.Repo.Get(id).OutputPath
					if naive.fs.Exists(nf) != indexed.fs.Exists(nf) {
						t.Fatalf("round %d: file %s existence diverged", round, nf)
					}
				}
			}
			if len(naive.survivorIDs()) == entries {
				t.Fatal("mutation stream never evicted anything; property vacuous")
			}
		})
	}
}

// TestPropertyBudgetNeverEvictsPinned pins the budget-policy safety
// invariant: entries pinned by in-flight executions survive any budget
// pressure, and the pass still reclaims every unpinned entry it needs (or
// everything unpinned, when the pinned set alone exceeds the budget).
func TestPropertyBudgetNeverEvictsPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(0xb4d6e7))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		budget := int64(100 * (1 + rng.Intn(n)))
		s, _ := gcSelector(t, n, Policy{KeepAll: true, CheckInputVersions: true, RepoBudgetBytes: budget})
		pinned := make(map[string]bool)
		for _, e := range s.Repo.All() {
			s.Repo.MarkUsed(e.ID, int64(1+rng.Intn(5)))
			if rng.Intn(3) == 0 {
				if !s.Repo.Pin(e.ID) {
					t.Fatal("pin failed")
				}
				pinned[e.ID] = true
			}
		}
		if _, err := s.EvictWindowBudget(10, nil); err != nil {
			t.Fatal(err)
		}
		var pinnedBytes int64
		survivors := make(map[string]bool)
		for _, e := range s.Repo.All() {
			survivors[e.ID] = true
			if pinned[e.ID] {
				pinnedBytes += e.OutputBytes
			}
		}
		for id := range pinned {
			if !survivors[id] {
				t.Fatalf("trial %d: pinned entry %s evicted under budget pressure", trial, id)
			}
		}
		// Everything over budget that could go must have gone: survivors
		// fit, unless the pinned set alone is over budget — then no
		// unpinned entry may remain.
		total := s.Repo.TotalStoredBytes()
		if total > budget && total != pinnedBytes {
			t.Fatalf("trial %d: over budget (%d > %d) with unpinned entries still stored", trial, total, budget)
		}
	}
}
