package core

import (
	"repro/internal/physical"
)

// Matching (§3 of the paper). A repository plan matches an input MapReduce
// job when the repository plan (minus its final Store) is *contained* in the
// input job's physical plan: every repository operator has an equivalent
// operator in the input plan. Two operators are equivalent when (1) they
// perform the same function — equal Signature() — and (2) their inputs are
// pairwise equivalent operators or the same stored data sets.
//
// The paper's Algorithm 1 (PairwisePlanTraversal) establishes containment by
// a simultaneous depth-first traversal of both plans starting from their
// Load operators. We perform the same simultaneous traversal anchored at the
// repository plan's terminal operator and walking producer edges — the
// traversal visits exactly the same operator pairs (the repository plan is
// the upstream cone of its terminal), but needs no backtracking over which
// Load pairs up with which, because the pairing is forced by walking inputs
// in argument order.
//
// The scan itself is index-driven: every entry's terminal carries a
// Merkle-style subtree fingerprint (physical.PlanIndex), and the repository
// keeps an inverted index from terminal fingerprint to entries. A traversal
// match forces fingerprint equality (each compared pair has equal signatures
// and recursively fingerprint-equal inputs, with Split tees folded
// identically on both sides), so probing the input plan's fingerprint set
// against that index surfaces a superset of the matchable entries; the
// traversal then runs only on hash-equal candidates, as collision
// verification. FindBestMatchNaive retains the exhaustive reference scan —
// the equivalence property test and the server-match benchmark compare the
// two paths.

// MatchResult describes a successful containment: Terminal is the input-plan
// operator equivalent to the repository plan's last operator before its
// Store — the operator whose output the stored file holds.
type MatchResult struct {
	Entry    *Entry
	Terminal *physical.Operator
	// Mapping pairs repository operator IDs with input operator IDs.
	Mapping map[int]int
}

// MatchStats counts matcher probe work. A probe is one pairwise-traversal
// attempt (one candidate input operator verified against one entry's
// terminal); index hits are entries surfaced by the fingerprint index;
// fallback scans are entries probed exhaustively because their plans contain
// Split operators the fingerprint cannot summarize (never produced by the
// enumerator, defensively supported). Accumulated per call; callers fold
// them into core.Stats for the /v1/metrics reuse block.
type MatchStats struct {
	Probes        int64 `json:"probes"`
	IndexHits     int64 `json:"indexHits"`
	FallbackScans int64 `json:"fallbackScans"`
}

// Add folds another accumulation into s.
func (s *MatchStats) Add(o MatchStats) {
	s.Probes += o.Probes
	s.IndexHits += o.IndexHits
	s.FallbackScans += o.FallbackScans
}

// Match tests whether the entry's plan is contained in the input plan. On
// success it returns the input operator that computes the stored output.
// Every input operator is tried as the image of the repository terminal
// (the reference semantics; FindBestMatchExcluding narrows the candidates
// through the fingerprint index first).
func Match(input *physical.Plan, e *Entry) (*MatchResult, bool) {
	return matchEntry(input, physical.IndexPlan(input), e, allOpIDs(input), nil)
}

// allOpIDs returns every operator ID of the plan, ascending — the naive
// candidate list.
func allOpIDs(p *physical.Plan) []int {
	ops := p.Ops()
	ids := make([]int, len(ops))
	for i, o := range ops {
		ids[i] = o.ID
	}
	return ids
}

// matchEntry runs the candidate scan of Match over an explicit candidate
// list (input operator IDs, ascending): each candidate is verified by the
// pairwise traversal as the image of the entry's terminal, and the first
// success wins — identical semantics whether the list came from the
// fingerprint index or is the full operator set. One mapping map is reused
// across candidates (cleared between attempts) instead of allocating per
// operator; on success the map escapes into the MatchResult and the scan
// stops.
func matchEntry(input *physical.Plan, inIx *physical.PlanIndex, e *Entry, candIDs []int, st *MatchStats) (*MatchResult, bool) {
	repoTerm := e.Plan.Op(e.terminal)
	if repoTerm == nil || len(candIDs) == 0 {
		return nil, false
	}
	repoIx := e.index()
	mapping := make(map[int]int, e.matchSize)
	for _, id := range candIDs {
		cand := input.Op(id)
		if cand == nil {
			continue
		}
		if st != nil {
			st.Probes++
		}
		clear(mapping)
		if pairwiseTraversal(input, inIx, cand, e.Plan, repoIx, repoTerm, mapping) {
			// A match that is already a Load of this entry's output is a
			// no-op rewrite; report no match to keep rewriting terminating.
			if cand.Kind == physical.OpLoad && cand.Path == e.OutputPath {
				continue
			}
			return &MatchResult{Entry: e, Terminal: cand, Mapping: mapping}, true
		}
	}
	return nil, false
}

// pairwiseTraversal is the simultaneous DFS of Algorithm 1: it checks that
// inOp is equivalent to repoOp, recursing over their producers pairwise.
// mapping accumulates repoOpID -> inOpID and enforces consistency when the
// repository plan's DAG shares operators between branches. Signatures are
// read from the plans' memoized indexes, never re-derived.
func pairwiseTraversal(input *physical.Plan, inIx *physical.PlanIndex, inOp *physical.Operator, repo *physical.Plan, repoIx *physical.PlanIndex, repoOp *physical.Operator, mapping map[int]int) bool {
	if prev, ok := mapping[repoOp.ID]; ok {
		return prev == inOp.ID
	}
	if inIx.Signature(inOp.ID) != repoIx.Signature(repoOp.ID) {
		return false
	}
	if len(inOp.Inputs) != len(repoOp.Inputs) {
		return false
	}
	mapping[repoOp.ID] = inOp.ID
	for i, repoIn := range repoOp.Inputs {
		rp := repo.Op(repoIn)
		ip := input.Op(inOp.Inputs[i])
		if rp == nil || ip == nil {
			delete(mapping, repoOp.ID)
			return false
		}
		// Splits are transparent tees: skip them on the input side so a
		// previously injected materialization point does not break
		// equivalence.
		for ip.Kind == physical.OpSplit {
			ip = input.Op(ip.Inputs[0])
			if ip == nil {
				delete(mapping, repoOp.ID)
				return false
			}
		}
		if !pairwiseTraversal(input, inIx, ip, repo, repoIx, rp, mapping) {
			delete(mapping, repoOp.ID)
			return false
		}
	}
	return true
}

// FindBestMatch scans the repository in §3 order and returns the first (and
// therefore best) entry contained in the input plan.
func FindBestMatch(input *physical.Plan, repo *Repository) (*MatchResult, bool) {
	return FindBestMatchExcluding(input, repo, nil)
}

// FindBestMatchExcluding is FindBestMatch with a skip set of entry IDs the
// caller has ruled out for this workflow (e.g. a user-named stored output a
// concurrent workflow is currently writing).
func FindBestMatchExcluding(input *physical.Plan, repo *Repository, skip map[string]bool) (*MatchResult, bool) {
	return FindBestMatchProbed(input, repo, skip, nil)
}

// FindBestMatchProbed is the index-driven §3 scan: it fingerprints the input
// plan once, probes the repository's terminal-fingerprint index with the
// input's per-operator fingerprint set, and verifies only the surfaced
// candidates — in exact §3 match order, so the first verified candidate is
// the same "best" entry the naive full scan returns, with the same terminal
// and mapping. st, when non-nil, accumulates probe counts.
func FindBestMatchProbed(input *physical.Plan, repo *Repository, skip map[string]bool, st *MatchStats) (*MatchResult, bool) {
	inIx := physical.IndexPlan(input)
	cands, hits, fallback := repo.probeCandidates(inIx)
	if st != nil {
		st.IndexHits += hits
		st.FallbackScans += fallback
	}
	for _, e := range cands {
		if skip[e.ID] {
			continue
		}
		candIDs := inIx.OpsWithFingerprint(e.termFP)
		if !e.indexable {
			candIDs = allOpIDs(input)
		}
		if m, ok := matchEntry(input, inIx, e, candIDs, st); ok {
			return m, true
		}
	}
	return nil, false
}

// FindBestMatchNaive is the retained reference implementation: the
// exhaustive §3 scan trying every input operator against every entry. The
// equivalence property test asserts it returns the same entry and mapping
// as FindBestMatchProbed; the server-match benchmark measures the gap.
func FindBestMatchNaive(input *physical.Plan, repo *Repository, skip map[string]bool, st *MatchStats) (*MatchResult, bool) {
	inIx := physical.IndexPlan(input)
	candIDs := allOpIDs(input)
	for _, e := range repo.Ordered() {
		if skip[e.ID] {
			continue
		}
		if m, ok := matchEntry(input, inIx, e, candIDs, st); ok {
			return m, true
		}
	}
	return nil, false
}

// Subsumes reports whether entry A's plan contains entry B's plan (used by
// ordering diagnostics and tests; the scan order guarantees subsumers come
// first without computing this per pair). A corrupt or unfinished entry
// (nil terminal) subsumes nothing and is subsumed by nothing.
func Subsumes(a, b *Entry) bool {
	bTerm := b.Plan.Op(b.terminal)
	if bTerm == nil {
		return false
	}
	aIx := a.index()
	bIx := b.index()
	mapping := make(map[int]int, b.matchSize)
	for _, cand := range a.Plan.Ops() {
		clear(mapping)
		if pairwiseTraversal(a.Plan, aIx, cand, b.Plan, bIx, bTerm, mapping) {
			return true
		}
	}
	return false
}
