package core

import (
	"repro/internal/physical"
)

// Matching (§3 of the paper). A repository plan matches an input MapReduce
// job when the repository plan (minus its final Store) is *contained* in the
// input job's physical plan: every repository operator has an equivalent
// operator in the input plan. Two operators are equivalent when (1) they
// perform the same function — equal Signature() — and (2) their inputs are
// pairwise equivalent operators or the same stored data sets.
//
// The paper's Algorithm 1 (PairwisePlanTraversal) establishes containment by
// a simultaneous depth-first traversal of both plans starting from their
// Load operators. We perform the same simultaneous traversal anchored at the
// repository plan's terminal operator and walking producer edges — the
// traversal visits exactly the same operator pairs (the repository plan is
// the upstream cone of its terminal), but needs no backtracking over which
// Load pairs up with which, because the pairing is forced by walking inputs
// in argument order.

// MatchResult describes a successful containment: Terminal is the input-plan
// operator equivalent to the repository plan's last operator before its
// Store — the operator whose output the stored file holds.
type MatchResult struct {
	Entry    *Entry
	Terminal *physical.Operator
	// Mapping pairs repository operator IDs with input operator IDs.
	Mapping map[int]int
}

// Match tests whether the entry's plan is contained in the input plan. On
// success it returns the input operator that computes the stored output.
func Match(input *physical.Plan, e *Entry) (*MatchResult, bool) {
	repoTerm := e.Plan.Op(e.terminal)
	if repoTerm == nil {
		return nil, false
	}
	// Try every input operator as the image of the repository terminal.
	for _, cand := range input.Ops() {
		mapping := make(map[int]int)
		if pairwiseTraversal(input, cand, e.Plan, repoTerm, mapping) {
			// A match that is already a Load of this entry's output is a
			// no-op rewrite; report no match to keep rewriting terminating.
			if cand.Kind == physical.OpLoad && cand.Path == e.OutputPath {
				continue
			}
			return &MatchResult{Entry: e, Terminal: cand, Mapping: mapping}, true
		}
	}
	return nil, false
}

// pairwiseTraversal is the simultaneous DFS of Algorithm 1: it checks that
// inOp is equivalent to repoOp, recursing over their producers pairwise.
// mapping accumulates repoOpID -> inOpID and enforces consistency when the
// repository plan's DAG shares operators between branches.
func pairwiseTraversal(input *physical.Plan, inOp *physical.Operator, repo *physical.Plan, repoOp *physical.Operator, mapping map[int]int) bool {
	if prev, ok := mapping[repoOp.ID]; ok {
		return prev == inOp.ID
	}
	if inOp.Signature() != repoOp.Signature() {
		return false
	}
	if len(inOp.Inputs) != len(repoOp.Inputs) {
		return false
	}
	mapping[repoOp.ID] = inOp.ID
	for i, repoIn := range repoOp.Inputs {
		rp := repo.Op(repoIn)
		ip := input.Op(inOp.Inputs[i])
		if rp == nil || ip == nil {
			delete(mapping, repoOp.ID)
			return false
		}
		// Splits are transparent tees: skip them on the input side so a
		// previously injected materialization point does not break
		// equivalence.
		for ip.Kind == physical.OpSplit {
			ip = input.Op(ip.Inputs[0])
			if ip == nil {
				delete(mapping, repoOp.ID)
				return false
			}
		}
		if !pairwiseTraversal(input, ip, repo, rp, mapping) {
			delete(mapping, repoOp.ID)
			return false
		}
	}
	return true
}

// FindBestMatch scans the repository in §3 order and returns the first (and
// therefore best) entry contained in the input plan.
func FindBestMatch(input *physical.Plan, repo *Repository) (*MatchResult, bool) {
	return FindBestMatchExcluding(input, repo, nil)
}

// FindBestMatchExcluding is FindBestMatch with a skip set of entry IDs the
// caller has ruled out for this workflow (e.g. a user-named stored output a
// concurrent workflow is currently writing).
func FindBestMatchExcluding(input *physical.Plan, repo *Repository, skip map[string]bool) (*MatchResult, bool) {
	for _, e := range repo.Ordered() {
		if skip[e.ID] {
			continue
		}
		if m, ok := Match(input, e); ok {
			return m, true
		}
	}
	return nil, false
}

// Subsumes reports whether entry A's plan contains entry B's plan (used by
// ordering diagnostics and tests; the scan order guarantees subsumers come
// first without computing this per pair).
func Subsumes(a, b *Entry) bool {
	bTerm := b.Plan.Op(b.terminal)
	for _, cand := range a.Plan.Ops() {
		mapping := make(map[int]int)
		if pairwiseTraversal(a.Plan, cand, b.Plan, bTerm, mapping) {
			return true
		}
	}
	return false
}
