package core

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the repository half of the incremental-persistence subsystem
// (the FS half lives in internal/dfs/journal.go): instead of re-serializing
// the whole repository on every checkpoint (Save), the repository emits one
// append-only Mutation record per committed change. Replaying a snapshot
// plus the journaled suffix (Apply) reconstructs the repository exactly —
// including the usage statistics the §3 match ordering and §5 eviction
// window read. Pins are deliberately not journaled: they describe in-flight
// executions of one process and are meaningless after a crash.

// MutationOp enumerates the journaled repository mutations.
type MutationOp string

// Mutation operations.
const (
	// MutAdd records a successful Add: the full entry (plan, output path,
	// statistics, input/output version snapshots) as it entered the index.
	MutAdd MutationOp = "add"
	// MutRemove records Remove/RemoveIfIdle evicting an entry.
	MutRemove MutationOp = "remove"
	// MutUse records MarkUsed, with the resulting absolute counters (not
	// the increment), so replaying a record twice cannot double-count.
	MutUse MutationOp = "use"
	// MutNoteOutput records NoteOutput: a user-named query output entered
	// (or refreshed in) the retention table, with its absolute sequence and
	// file version — replaying twice converges.
	MutNoteOutput MutationOp = "note-output"
	// MutForgetOutput records ForgetOutput retiring a tracked output.
	MutForgetOutput MutationOp = "forget-output"
)

// Mutation is one committed repository change, journaled in commit order.
// Like dfs.Mutation, records carry absolute resulting state so replay is
// convergent: re-applying records already reflected in a newer snapshot is
// harmless (Add deduplicates on the plan's canonical form, Remove of an
// absent ID is a no-op, Use sets counters rather than incrementing them).
type Mutation struct {
	Op MutationOp `json:"op"`
	// Entry is the added entry (MutAdd), deep-copied at journal time so the
	// record is immune to later MarkUsed updates of the live entry.
	Entry *Entry `json:"entry,omitempty"`
	// ID names the entry for MutRemove and MutUse.
	ID string `json:"id,omitempty"`
	// UseCount and LastUsedSeq are the absolute post-MarkUsed values.
	UseCount    int64 `json:"useCount,omitempty"`
	LastUsedSeq int64 `json:"lastUsedSeq,omitempty"`
	// Path, Seq, and Version carry the retention-table state for
	// MutNoteOutput (all three) and MutForgetOutput (Path only).
	Path    string `json:"path,omitempty"`
	Seq     int64  `json:"seq,omitempty"`
	Version uint64 `json:"version,omitempty"`
}

// Journal receives every committed repository mutation. Record is called
// synchronously under the lock that committed the mutation (r.mu for entry
// mutations, the path shard's lock for retention-table mutations) plus the
// journal leaf mutex, so records for any one entry or any one path arrive
// in exactly the order those mutations took effect; implementations must be
// fast and must not call back into the repository.
type Journal interface {
	Record(m Mutation)
}

// SetJournal attaches (or with nil detaches) the mutation journal. Attach
// only while the repository is quiescent (daemon startup, after recovery);
// earlier mutations are not replayed to the journal.
func (r *Repository) SetJournal(j Journal) {
	r.jmu.Lock()
	defer r.jmu.Unlock()
	r.journal = j
}

// journalEmit forwards one committed mutation to the attached journal.
// Called by every mutating method while still holding the lock that
// committed the mutation; takes only the leaf mutex jmu itself, so callers
// holding r.mu and callers holding a pathShard lock both emit without
// taking the other's lock.
func (r *Repository) journalEmit(m Mutation) {
	r.jmu.Lock()
	defer r.jmu.Unlock()
	if r.journal != nil {
		r.journal.Record(m)
	}
}

// Apply replays one journaled mutation without re-journaling it (call it
// before SetJournal, during recovery). Records are tolerated out of sync
// with the snapshot they extend — see the Mutation docs — so replaying a
// log whose prefix a crash-interrupted compaction already folded into the
// snapshot still converges to the right final state.
func (r *Repository) Apply(m Mutation) error {
	switch m.Op {
	case MutAdd:
		if m.Entry == nil {
			return fmt.Errorf("core: apply: add record without an entry")
		}
		if _, _, err := r.Add(m.Entry); err != nil {
			return err
		}
		// Advance the ID counter like LoadRepository does, so entries
		// registered after recovery never collide with replayed ones.
		r.mu.Lock()
		if n, ok := entryIDCounter(m.Entry.ID); ok && n > r.nextID {
			r.nextID = n
		}
		r.mu.Unlock()
	case MutRemove:
		r.Remove(m.ID)
	case MutUse:
		r.mu.Lock()
		if e, ok := r.byID[m.ID]; ok {
			e.UseCount = m.UseCount
			if m.LastUsedSeq > e.LastUsedSeq {
				e.LastUsedSeq = m.LastUsedSeq
			}
		}
		r.mu.Unlock()
	case MutNoteOutput:
		r.NoteOutput(m.Path, m.Seq, m.Version)
	case MutForgetOutput:
		r.ForgetOutput(m.Path)
	default:
		return fmt.Errorf("core: apply: unknown mutation op %q", m.Op)
	}
	return nil
}

// entryIDCounter extracts N from an "entry-N" ID.
func entryIDCounter(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "entry-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return n, true
}
