package core

import (
	"fmt"
	"testing"
)

// Matcher microbenchmarks (run via `make bench-match`): the indexed vs
// naive best-match scan across repository sizes, and the per-candidate
// allocation profile of Match's reused mapping map.

func benchSizes() []int { return []int{50, 200, 800} }

func BenchmarkFindBestMatchIndexed(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			repo := distinctChainRepo(b, n)
			input := compileJobs(b, `A = load 'pv' as (user, ts:int, rev:int);
B = filter A by ts > 7;
C = foreach B generate user, rev;
store C into 'out/miss';`, "tmp/bm")[0].Plan
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := FindBestMatchProbed(input, repo, nil, nil); ok {
					b.Fatal("miss input matched")
				}
			}
		})
	}
}

func BenchmarkFindBestMatchNaive(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			repo := distinctChainRepo(b, n)
			input := compileJobs(b, `A = load 'pv' as (user, ts:int, rev:int);
B = filter A by ts > 7;
C = foreach B generate user, rev;
store C into 'out/miss';`, "tmp/bn")[0].Plan
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := FindBestMatchNaive(input, repo, nil, nil); ok {
					b.Fatal("miss input matched")
				}
			}
		})
	}
}

// BenchmarkMatchMappingAllocs pins the mapping-map churn fix: one Match call
// scans every input operator as a candidate, and the reused (cleared)
// mapping map keeps allocations flat in the candidate count instead of one
// map per operator. Input and entry share a long signature-equal prefix
// (only the bottom filter constant differs), so traversals run deep before
// failing.
func BenchmarkMatchMappingAllocs(b *testing.B) {
	mk := func(c int, tmp string) string {
		return fmt.Sprintf(`A = load 'pv' as (user, ts:int, rev:int);
B = filter A by ts > %d;
C = foreach B generate user, rev;
D = group C by user;
E = foreach D generate group, COUNT(C), SUM(C.rev);
store E into '%s';`, c, tmp)
	}
	entry := entryFromJob(b, compileJobs(b, mk(9999, "restore/alloc"), "tmp/alloc")[0], "alloc-entry")
	input := compileJobs(b, mk(7, "out/alloc"), "tmp/alloc-in")[0].Plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Match(input, entry); ok {
			b.Fatal("different filter constants should not match")
		}
	}
}
