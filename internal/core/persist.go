package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// The repository survives restarts in the paper's deployment model (§6.2
// describes it as a table of records: physical plan, HDFS filename,
// statistics). Save/Load serialize exactly that.

// repositoryJSON is the persisted form.
type repositoryJSON struct {
	Version int      `json:"version"`
	Entries []*Entry `json:"entries"`
	// Outputs is the §5 retention table (user-named query outputs and the
	// sequence that last produced them). Absent in pre-retention snapshots,
	// which load with an empty table.
	Outputs []OutputRecord `json:"outputs,omitempty"`
}

const persistVersion = 1

// Save writes the repository as JSON.
func (r *Repository) Save(w io.Writer) error {
	doc := repositoryJSON{Version: persistVersion, Entries: r.All(), Outputs: r.TrackedOutputs()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("core: save repository: %w", err)
	}
	return nil
}

// LoadRepository reads a repository written by Save. Entries are re-indexed
// and re-validated; corrupt entries abort the load.
func LoadRepository(rd io.Reader) (*Repository, error) {
	return LoadRepositorySharded(rd, 1)
}

// LoadRepositorySharded is LoadRepository building an n-path-shard
// repository (NewShardedRepository) — the recovery path uses it so a
// sharded daemon's adopted repository keeps its shard count across
// restarts. The persisted form is shard-count-agnostic: paths re-route on
// load, so any snapshot loads at any n.
func LoadRepositorySharded(rd io.Reader, n int) (*Repository, error) {
	var doc repositoryJSON
	if err := json.NewDecoder(rd).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: load repository: %w", err)
	}
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("core: load repository: unsupported version %d", doc.Version)
	}
	repo := NewShardedRepository(n)
	for _, e := range doc.Entries {
		if _, added, err := repo.Add(e); err != nil {
			return nil, fmt.Errorf("core: load repository entry %s: %w", e.ID, err)
		} else if !added {
			return nil, fmt.Errorf("core: load repository: duplicate plan for entry %s", e.ID)
		}
		// Advance the ID counter past loaded "entry-N" IDs so entries
		// registered after a restart never collide with persisted ones.
		if n, ok := entryIDCounter(e.ID); ok && n > repo.nextID {
			repo.nextID = n
		}
	}
	for _, rec := range doc.Outputs {
		repo.NoteOutput(rec.Path, rec.Seq, rec.Version)
	}
	return repo, nil
}
