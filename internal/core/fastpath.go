package core

import "repro/internal/mapred"

// FastServe is a successful whole-query fast-path probe: every job of the
// probed workflow collapsed against fresh stored outputs, so the query can
// be answered by reading repository files without executing (or leasing)
// anything. The admission-time hot path in the System is built on it.
type FastServe struct {
	// Aliases maps each store path of the collapsed workflow to the stored
	// repository file holding identical data.
	Aliases map[string]string
	// Rewrites lists the reuses the probe applied (all whole-job).
	Rewrites []RewriteInfo
	// Pinned are the repository pins the probe took; they keep the matched
	// entries and their stored files safe from concurrent eviction. The
	// caller must Unpin them once the stored bytes have been read (or the
	// serve abandoned) — the pin-for-read window of the hot path.
	Pinned []string
	// Uses are the reused entry IDs awaiting a MarkUsed commit: usage
	// statistics are deferred (Rewriter.DeferUses) so a probe that is
	// abandoned — not fully collapsed, or its read failed — perturbs no
	// eviction decisions. Commit with Repository.MarkUsed when serving.
	Uses []string
	// Match is the probe's matcher work, for observability.
	Match MatchStats
}

// ProbeWholeQuery attempts to prove w is answerable entirely from stored
// outputs: it rewrites the workflow against repo (guard filters candidate
// entries — the System requires repository-owned, pin-time-fresh files) and
// reports ok only when every job collapsed. On ok the returned FastServe
// holds the pins, aliases, and deferred usage updates; the caller owns the
// pins. When the workflow does not fully collapse, every pin taken along
// the way is released before returning and the FastServe carries only the
// probe's match statistics. The probe itself takes no leases and mutates
// nothing beyond transient pins.
func ProbeWholeQuery(w *mapred.Workflow, repo *Repository, guard func(*Entry) bool) (*FastServe, bool, error) {
	rw := &Rewriter{Repo: repo, Guard: guard, DeferUses: true}
	out, err := rw.RewriteWorkflow(w)
	if err != nil {
		// RewriteWorkflow released its pins before erroring.
		return nil, false, err
	}
	if len(out.Jobs) != 0 {
		repo.Unpin(out.Pinned)
		return &FastServe{Match: out.Match}, false, nil
	}
	return &FastServe{
		Aliases:  out.Aliases,
		Rewrites: out.Rewrites,
		Pinned:   out.Pinned,
		Uses:     out.Uses,
		Match:    out.Match,
	}, true, nil
}
