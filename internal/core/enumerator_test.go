package core

import (
	"fmt"
	"testing"

	"repro/internal/physical"
)

func pathGen(prefix string) func() string {
	n := 0
	return func() string {
		n++
		return fmt.Sprintf("restore/%s_%d", prefix, n)
	}
}

func countKind(p *physical.Plan, k physical.OpKind) int {
	n := 0
	for _, o := range p.Ops() {
		if o.Kind == k {
			n++
		}
	}
	return n
}

func countInjectedStores(p *physical.Plan) int {
	n := 0
	for _, o := range p.Ops() {
		if o.Kind == physical.OpStore && o.Injected {
			n++
		}
	}
	return n
}

func TestHeuristicSelection(t *testing.T) {
	cases := []struct {
		h    Heuristic
		kind physical.OpKind
		want bool
	}{
		{HeuristicConservative, physical.OpForeach, true},
		{HeuristicConservative, physical.OpFilter, true},
		{HeuristicConservative, physical.OpJoin, false},
		{HeuristicConservative, physical.OpGroup, false},
		{HeuristicAggressive, physical.OpForeach, true},
		{HeuristicAggressive, physical.OpJoin, true},
		{HeuristicAggressive, physical.OpGroup, true},
		{HeuristicAggressive, physical.OpCoGroup, true},
		{HeuristicAggressive, physical.OpUnion, false},
		{HeuristicAll, physical.OpUnion, true},
		{HeuristicAll, physical.OpDistinct, true},
		{HeuristicAll, physical.OpLoad, false},
		{HeuristicAll, physical.OpStore, false},
		{HeuristicAll, physical.OpSplit, false},
		{HeuristicOff, physical.OpForeach, false},
	}
	for _, c := range cases {
		if got := c.h.materializes(c.kind); got != c.want {
			t.Errorf("%s.materializes(%s) = %v, want %v", c.h, c.kind, got, c.want)
		}
	}
}

func TestEnumerateQ1Conservative(t *testing.T) {
	// Figure 8: Q1 with Store operators injected after the two projections.
	q1 := compileJobs(t, q1Src, "tmp/q1")
	plan := q1[0].Plan.Clone()
	inj, err := EnumerateSubJobs(plan, HeuristicConservative, pathGen("hc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) != 2 {
		t.Fatalf("HC injections = %d, want 2 (the projections)", len(inj))
	}
	if countInjectedStores(plan) != 2 || countKind(plan, physical.OpSplit) != 2 {
		t.Errorf("plan after injection:\n%s", plan)
	}
	for _, in := range inj {
		if err := in.CandidatePlan.Validate(); err != nil {
			t.Errorf("candidate invalid: %v", err)
		}
		if countKind(in.CandidatePlan, physical.OpSplit) != 0 {
			t.Error("candidate plan contains Split plumbing")
		}
		if len(in.CandidatePlan.Sinks()) != 1 || in.CandidatePlan.Sinks()[0].Path != in.Path {
			t.Errorf("candidate sinks = %v", in.CandidatePlan.Sinks())
		}
	}
}

func TestEnumerateQ1AggressiveSkipsStoredJoin(t *testing.T) {
	// The join feeds Q1's own Store, so HA must not inject another Store
	// after it: its output is a whole-job candidate already.
	q1 := compileJobs(t, q1Src, "tmp/q1")
	plan := q1[0].Plan.Clone()
	inj, err := EnumerateSubJobs(plan, HeuristicAggressive, pathGen("ha"))
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) != 2 {
		t.Errorf("HA injections = %d, want 2 (join already stored)", len(inj))
	}
}

func TestEnumerateQ2Aggressive(t *testing.T) {
	q2 := compileJobs(t, q2Src, "tmp/q2")
	// Job 1: projections + join; join feeds the temp store -> skip.
	plan1 := q2[0].Plan.Clone()
	inj1, err := EnumerateSubJobs(plan1, HeuristicAggressive, pathGen("j1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(inj1) != 2 {
		t.Errorf("job1 HA injections = %d, want 2", len(inj1))
	}
	// Job 2: group feeds foreach; the group gets a store, the final
	// foreach feeds the user store -> skip.
	plan2 := q2[1].Plan.Clone()
	inj2, err := EnumerateSubJobs(plan2, HeuristicAggressive, pathGen("j2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(inj2) != 1 {
		t.Errorf("job2 HA injections = %d, want 1 (the group)", len(inj2))
	}
	if len(inj2) == 1 {
		term := plan2.Op(inj2[0].OpID)
		if term.Kind != physical.OpGroup {
			t.Errorf("job2 injection after %s, want Group", term)
		}
	}
}

func TestEnumerateAllInjectsEverywhere(t *testing.T) {
	q2 := compileJobs(t, q2Src, "tmp/q2")
	plan := q2[0].Plan.Clone()
	injAll, err := EnumerateSubJobs(plan.Clone(), HeuristicAll, pathGen("nh"))
	if err != nil {
		t.Fatal(err)
	}
	injHA, err := EnumerateSubJobs(plan.Clone(), HeuristicAggressive, pathGen("ha"))
	if err != nil {
		t.Fatal(err)
	}
	if len(injAll) < len(injHA) {
		t.Errorf("NH injected %d < HA %d", len(injAll), len(injHA))
	}
}

func TestEnumerateOffInjectsNothing(t *testing.T) {
	q1 := compileJobs(t, q1Src, "tmp/q1")
	plan := q1[0].Plan.Clone()
	inj, err := EnumerateSubJobs(plan, HeuristicOff, pathGen("off"))
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) != 0 || countKind(plan, physical.OpSplit) != 0 {
		t.Error("HeuristicOff modified the plan")
	}
}

func TestEnumeratedPlanStillExecutable(t *testing.T) {
	// After injection the plan must still form a valid single-blocking job.
	q1 := compileJobs(t, q1Src, "tmp/q1")
	plan := q1[0].Plan.Clone()
	if _, err := EnumerateSubJobs(plan, HeuristicAggressive, pathGen("x")); err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("injected plan invalid: %v", err)
	}
}

func TestCandidatePlansMatchFutureJobs(t *testing.T) {
	// The central invariant of §4: a candidate registered from an injected
	// sub-job must match the SAME query when submitted again, pre-injection.
	q1 := compileJobs(t, q1Src, "tmp/q1")
	plan := q1[0].Plan.Clone()
	inj, err := EnumerateSubJobs(plan, HeuristicAggressive, pathGen("c"))
	if err != nil {
		t.Fatal(err)
	}
	fresh := compileJobs(t, q1Src, "tmp/q1b")
	for _, in := range inj {
		e := &Entry{ID: in.Path, Plan: in.CandidatePlan, OutputPath: in.Path,
			Schema: in.CandidatePlan.Sinks()[0].Schema}
		if err := e.finish(); err != nil {
			t.Fatalf("candidate entry: %v", err)
		}
		if _, ok := Match(fresh[0].Plan, e); !ok {
			t.Errorf("candidate %s does not match a fresh Q1:\n%s", in.Path, in.CandidatePlan)
		}
	}
}
