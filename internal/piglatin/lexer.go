// Package piglatin implements the query language front end: a lexer and
// recursive-descent parser for a Pig Latin dialect covering the statements
// the paper's workloads need — LOAD, FOREACH...GENERATE (including nested
// blocks), FILTER, JOIN, GROUP/COGROUP, DISTINCT, UNION, ORDER, LIMIT, and
// STORE. The parser produces an AST; internal/logical turns it into a
// logical plan.
package piglatin

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString // 'single quoted'
	tokPosCol // $3
	tokPunct  // operators and punctuation
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokPosCol:
		return "positional column"
	case tokPunct:
		return "punctuation"
	default:
		return "token"
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a parse error with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("piglatin: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	tk := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tk.kind = tokEOF
		return tk, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		tk.kind = tokIdent
		tk.text = l.src[start:l.pos]
		return tk, nil
	case c >= '0' && c <= '9':
		return l.lexNumber(tk)
	case c == '$':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
			l.advance()
		}
		if start == l.pos {
			// A lone $ introduces a template variable name like $data.
			for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
				l.advance()
			}
			if start == l.pos {
				return tk, l.errf("expected digits or name after $")
			}
			tk.kind = tokIdent
			tk.text = "$" + l.src[start:l.pos]
			return tk, nil
		}
		tk.kind = tokPosCol
		tk.text = l.src[start:l.pos]
		return tk, nil
	case c == '\'':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return tk, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\'':
					sb.WriteByte('\'')
				case '\\':
					sb.WriteByte('\\')
				default:
					sb.WriteByte(esc)
				}
				continue
			}
			if ch == '\'' {
				break
			}
			sb.WriteByte(ch)
		}
		tk.kind = tokString
		tk.text = sb.String()
		return tk, nil
	default:
		return l.lexPunct(tk)
	}
}

func (l *lexer) lexNumber(tk token) (token, error) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.peekByte()
		if c >= '0' && c <= '9' {
			l.advance()
			continue
		}
		if c == '.' && !isFloat && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			isFloat = true
			l.advance()
			continue
		}
		break
	}
	tk.text = l.src[start:l.pos]
	if isFloat {
		tk.kind = tokFloat
	} else {
		tk.kind = tokInt
	}
	return tk, nil
}

var twoBytePunct = map[string]bool{"==": true, "!=": true, "<=": true, ">=": true}

func (l *lexer) lexPunct(tk token) (token, error) {
	c := l.advance()
	tk.kind = tokPunct
	tk.text = string(c)
	if l.pos < len(l.src) {
		two := tk.text + string(l.peekByte())
		if twoBytePunct[two] {
			l.advance()
			tk.text = two
			return tk, nil
		}
	}
	switch c {
	case '=', ';', ',', '(', ')', '{', '}', '.', ':', '<', '>', '+', '-', '*', '/', '%', '#':
		return tk, nil
	default:
		if c == '!' {
			return tk, l.errf("unexpected '!' (use != for inequality)")
		}
		return tk, l.errf("unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
