package piglatin

import (
	"repro/internal/expr"
	"repro/internal/types"
)

// Script is a parsed query: an ordered list of statements.
type Script struct {
	Stmts []Stmt
}

// Stmt is a top-level statement.
type Stmt interface{ stmt() }

// AssignStmt binds an alias to a relational operation.
type AssignStmt struct {
	Alias string
	Op    OpNode
	Line  int
}

// StoreStmt writes an alias to a DFS path.
type StoreStmt struct {
	Alias string
	Path  string
	Line  int
}

// SplitStmt routes tuples of Src into multiple aliases by predicate
// (Pig's SPLIT ... INTO a IF p1, b IF p2). Each branch compiles to a
// Filter; a tuple can reach several branches.
type SplitStmt struct {
	Src      string
	Branches []SplitBranch
	Line     int
}

// SplitBranch is one conditional output of a SPLIT.
type SplitBranch struct {
	Alias string
	Pred  *expr.Expr
}

func (*AssignStmt) stmt() {}
func (*StoreStmt) stmt()  {}
func (*SplitStmt) stmt()  {}

// OpNode is a relational operation on the right-hand side of an assignment.
type OpNode interface{ opNode() }

// LoadNode reads a DFS path with an optional declared schema.
type LoadNode struct {
	Path   string
	Schema types.Schema
}

// GenExpr is one generated column of a FOREACH.
type GenExpr struct {
	Expr *expr.Expr
	As   string
}

// NestedNode is one statement inside a nested FOREACH block, e.g.
// "dst = distinct C.action;" or "m = filter C by x > 1;".
type NestedNode struct {
	Alias string
	// Kind is "distinct", "filter", or "ident".
	Kind string
	// Src is the bag being derived from: an alias (the grouped bag) with an
	// optional projected field.
	SrcAlias string
	SrcField string
	Pred     *expr.Expr
}

// ForeachNode projects/transforms each tuple of Src.
type ForeachNode struct {
	Src    string
	Nested []NestedNode
	Gens   []GenExpr
}

// FilterNode keeps tuples of Src satisfying Pred.
type FilterNode struct {
	Src  string
	Pred *expr.Expr
}

// JoinNode equi-joins two or more aliases on per-input key expressions.
type JoinNode struct {
	Srcs []string
	Keys [][]*expr.Expr
}

// GroupNode groups Src by key expressions (All means GROUP ... ALL).
type GroupNode struct {
	Src  string
	Keys []*expr.Expr
	All  bool
}

// CoGroupNode cogroups multiple aliases on per-input keys.
type CoGroupNode struct {
	Srcs []string
	Keys [][]*expr.Expr
}

// DistinctNode removes duplicate tuples.
type DistinctNode struct {
	Src string
}

// UnionNode concatenates aliases.
type UnionNode struct {
	Srcs []string
}

// OrderCol is one sort key of an ORDER BY.
type OrderCol struct {
	Name string // named column, or
	Idx  int    // positional column when Name == ""
	Desc bool
}

// OrderNode globally sorts Src.
type OrderNode struct {
	Src  string
	Cols []OrderCol
}

// LimitNode keeps the first N tuples of Src.
type LimitNode struct {
	Src string
	N   int64
}

func (*LoadNode) opNode()     {}
func (*ForeachNode) opNode()  {}
func (*FilterNode) opNode()   {}
func (*JoinNode) opNode()     {}
func (*GroupNode) opNode()    {}
func (*CoGroupNode) opNode()  {}
func (*DistinctNode) opNode() {}
func (*UnionNode) opNode()    {}
func (*OrderNode) opNode()    {}
func (*LimitNode) opNode()    {}
