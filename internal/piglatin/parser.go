package piglatin

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/types"
)

// Parse parses a script into an AST.
func Parse(src string) (*Script, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	script := &Script{}
	for p.tok.kind != tokEOF {
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		script.Stmts = append(script.Stmts, st)
	}
	if len(script.Stmts) == 0 {
		return nil, &Error{Line: 1, Col: 1, Msg: "empty script"}
	}
	return script, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) *Error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

// keyword matching is case-insensitive.
func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %q, found %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, found %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) isPunct(s string) bool {
	return p.tok.kind == tokPunct && p.tok.text == s
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected identifier, found %s %q", p.tok.kind, p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) expectString() (string, error) {
	if p.tok.kind != tokString {
		return "", p.errf("expected quoted string, found %q", p.tok.text)
	}
	s := p.tok.text
	return s, p.advance()
}

// reserved words cannot be used as relation aliases on the LHS.
var reserved = map[string]bool{
	"load": true, "store": true, "foreach": true, "generate": true,
	"filter": true, "join": true, "group": true, "cogroup": true,
	"distinct": true, "union": true, "order": true, "limit": true,
	"by": true, "as": true, "into": true, "all": true, "and": true,
	"or": true, "not": true, "asc": true, "desc": true, "if": true,
	"split": true, "using": true,
}

func (p *parser) parseStatement() (Stmt, error) {
	line := p.tok.line
	if p.isKeyword("split") {
		return p.parseSplit(line)
	}
	if p.isKeyword("store") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("into"); err != nil {
			return nil, err
		}
		path, err := p.expectString()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &StoreStmt{Alias: alias, Path: path, Line: line}, nil
	}

	alias, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if reserved[strings.ToLower(alias)] {
		return nil, p.errf("reserved word %q cannot be an alias", alias)
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	op, err := p.parseOp()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &AssignStmt{Alias: alias, Op: op, Line: line}, nil
}

func (p *parser) parseSplit(line int) (Stmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	st := &SplitStmt{Src: src, Line: line}
	for {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if reserved[strings.ToLower(alias)] {
			return nil, p.errf("reserved word %q cannot be an alias", alias)
		}
		if err := p.expectKeyword("if"); err != nil {
			return nil, err
		}
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Branches = append(st.Branches, SplitBranch{Alias: alias, Pred: pred})
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if len(st.Branches) < 2 {
		return nil, p.errf("split needs at least two branches")
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseOp() (OpNode, error) {
	switch {
	case p.isKeyword("load"):
		return p.parseLoad()
	case p.isKeyword("foreach"):
		return p.parseForeach()
	case p.isKeyword("filter"):
		return p.parseFilter()
	case p.isKeyword("join"):
		return p.parseJoinLike(false)
	case p.isKeyword("cogroup"):
		return p.parseJoinLike(true)
	case p.isKeyword("group"):
		return p.parseGroup()
	case p.isKeyword("distinct"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		src, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DistinctNode{Src: src}, nil
	case p.isKeyword("union"):
		return p.parseUnion()
	case p.isKeyword("order"):
		return p.parseOrder()
	case p.isKeyword("limit"):
		return p.parseLimit()
	default:
		return nil, p.errf("expected an operation keyword, found %q", p.tok.text)
	}
}

func (p *parser) parseLoad() (OpNode, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	path, err := p.expectString()
	if err != nil {
		return nil, err
	}
	node := &LoadNode{Path: path}
	// Optional "using loader" clause, accepted and ignored (all our data is
	// in the native tuple format).
	if p.isKeyword("using") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expectIdent(); err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			if err := p.skipParens(); err != nil {
				return nil, err
			}
		}
	}
	if p.isKeyword("as") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		schema, err := p.parseSchema()
		if err != nil {
			return nil, err
		}
		node.Schema = schema
	}
	return node, nil
}

func (p *parser) skipParens() error {
	depth := 0
	for {
		switch {
		case p.isPunct("("):
			depth++
		case p.isPunct(")"):
			depth--
		case p.tok.kind == tokEOF:
			return p.errf("unbalanced parentheses")
		}
		if err := p.advance(); err != nil {
			return err
		}
		if depth == 0 {
			return nil
		}
	}
}

func (p *parser) parseSchema() (types.Schema, error) {
	if err := p.expectPunct("("); err != nil {
		return types.Schema{}, err
	}
	var fields []types.Field
	for {
		name, err := p.expectIdent()
		if err != nil {
			return types.Schema{}, err
		}
		f := types.Field{Name: name}
		if p.isPunct(":") {
			if err := p.advance(); err != nil {
				return types.Schema{}, err
			}
			tname, err := p.expectIdent()
			if err != nil {
				return types.Schema{}, err
			}
			kind, ok := kindFromTypeName(tname)
			if !ok {
				return types.Schema{}, p.errf("unknown type %q", tname)
			}
			f.Kind = kind
		}
		fields = append(fields, f)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return types.Schema{}, err
			}
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return types.Schema{}, err
	}
	return types.Schema{Fields: fields}, nil
}

func kindFromTypeName(name string) (types.Kind, bool) {
	switch strings.ToLower(name) {
	case "int", "long":
		return types.KindInt, true
	case "float", "double":
		return types.KindFloat, true
	case "chararray", "string":
		return types.KindString, true
	case "boolean", "bool":
		return types.KindBool, true
	case "bytearray":
		return types.KindNull, true
	default:
		return types.KindNull, false
	}
}

func (p *parser) parseForeach() (OpNode, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	node := &ForeachNode{Src: src}
	if p.isPunct("{") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for !p.isKeyword("generate") {
			n, err := p.parseNested()
			if err != nil {
				return nil, err
			}
			node.Nested = append(node.Nested, n)
		}
		gens, err := p.parseGenerate()
		if err != nil {
			return nil, err
		}
		node.Gens = gens
		if p.isPunct(";") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return node, nil
	}
	gens, err := p.parseGenerate()
	if err != nil {
		return nil, err
	}
	node.Gens = gens
	return node, nil
}

func (p *parser) parseNested() (NestedNode, error) {
	alias, err := p.expectIdent()
	if err != nil {
		return NestedNode{}, err
	}
	if err := p.expectPunct("="); err != nil {
		return NestedNode{}, err
	}
	n := NestedNode{Alias: alias, Kind: "ident"}
	switch {
	case p.isKeyword("distinct"):
		n.Kind = "distinct"
		if err := p.advance(); err != nil {
			return NestedNode{}, err
		}
		if err := p.parseNestedSrc(&n); err != nil {
			return NestedNode{}, err
		}
	case p.isKeyword("filter"):
		n.Kind = "filter"
		if err := p.advance(); err != nil {
			return NestedNode{}, err
		}
		if err := p.parseNestedSrc(&n); err != nil {
			return NestedNode{}, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return NestedNode{}, err
		}
		pred, err := p.parseExpr()
		if err != nil {
			return NestedNode{}, err
		}
		n.Pred = pred
	default:
		if err := p.parseNestedSrc(&n); err != nil {
			return NestedNode{}, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return NestedNode{}, err
	}
	return n, nil
}

func (p *parser) parseNestedSrc(n *NestedNode) error {
	src, err := p.expectIdent()
	if err != nil {
		return err
	}
	n.SrcAlias = src
	if p.isPunct(".") {
		if err := p.advance(); err != nil {
			return err
		}
		field, err := p.expectIdent()
		if err != nil {
			return err
		}
		n.SrcField = field
	}
	return nil
}

func (p *parser) parseGenerate() ([]GenExpr, error) {
	if err := p.expectKeyword("generate"); err != nil {
		return nil, err
	}
	var gens []GenExpr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		g := GenExpr{Expr: e}
		if p.isKeyword("as") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			g.As = name
		}
		gens = append(gens, g)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		return gens, nil
	}
}

func (p *parser) parseFilter() (OpNode, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("by"); err != nil {
		return nil, err
	}
	pred, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &FilterNode{Src: src, Pred: pred}, nil
}

func (p *parser) parseJoinLike(cogroup bool) (OpNode, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	var srcs []string
	var keys [][]*expr.Expr
	for {
		src, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		ks, err := p.parseKeySpec()
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, src)
		keys = append(keys, ks)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if len(srcs) < 2 {
		return nil, p.errf("join/cogroup needs at least two inputs")
	}
	if cogroup {
		return &CoGroupNode{Srcs: srcs, Keys: keys}, nil
	}
	if len(srcs) != 2 {
		return nil, p.errf("join supports exactly two inputs (got %d)", len(srcs))
	}
	return &JoinNode{Srcs: srcs, Keys: keys}, nil
}

func (p *parser) parseKeySpec() ([]*expr.Expr, error) {
	if p.isPunct("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		var ks []*expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ks = append(ks, e)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return ks, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return []*expr.Expr{e}, nil
}

func (p *parser) parseGroup() (OpNode, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.isKeyword("all") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &GroupNode{Src: src, All: true}, nil
	}
	if err := p.expectKeyword("by"); err != nil {
		return nil, err
	}
	keys, err := p.parseKeySpec()
	if err != nil {
		return nil, err
	}
	return &GroupNode{Src: src, Keys: keys}, nil
}

func (p *parser) parseUnion() (OpNode, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	var srcs []string
	for {
		src, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, src)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if len(srcs) < 2 {
		return nil, p.errf("union needs at least two inputs")
	}
	return &UnionNode{Srcs: srcs}, nil
}

func (p *parser) parseOrder() (OpNode, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("by"); err != nil {
		return nil, err
	}
	var cols []OrderCol
	for {
		var col OrderCol
		switch p.tok.kind {
		case tokIdent:
			col.Name = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokPosCol:
			idx, err := strconv.Atoi(p.tok.text)
			if err != nil {
				return nil, p.errf("bad positional column $%s", p.tok.text)
			}
			col.Idx = idx
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected sort column, found %q", p.tok.text)
		}
		if p.isKeyword("desc") {
			col.Desc = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.isKeyword("asc") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		cols = append(cols, col)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return &OrderNode{Src: src, Cols: cols}, nil
}

func (p *parser) parseLimit() (OpNode, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokInt {
		return nil, p.errf("expected limit count, found %q", p.tok.text)
	}
	n, err := strconv.ParseInt(p.tok.text, 10, 64)
	if err != nil || n < 0 {
		return nil, p.errf("bad limit count %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &LimitNode{Src: src, N: n}, nil
}

// --- expressions ---

// parseExpr parses with precedence: or < and < not < comparison < additive <
// multiplicative < unary < postfix < primary.
func (p *parser) parseExpr() (*expr.Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (*expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Binary("or", left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (*expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.Binary("and", left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (*expr.Expr, error) {
	if p.isKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.Unary("not", e), nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseComparison() (*expr.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokPunct && comparisonOps[p.tok.text] {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return expr.Binary(op, left, right), nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (*expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = expr.Binary(op, left, right)
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (*expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") || p.isPunct("%") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = expr.Binary(op, left, right)
	}
	return left, nil
}

func (p *parser) parseUnary() (*expr.Expr, error) {
	if p.isPunct("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return expr.Unary("neg", e), nil
	}
	return p.parsePostfix()
}

// parsePostfix handles "alias.field" bag projection.
func (p *parser) parsePostfix() (*expr.Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.isPunct(".") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		field, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		base = expr.BagProj(base, field)
	}
	return base, nil
}

func (p *parser) parsePrimary() (*expr.Expr, error) {
	switch p.tok.kind {
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.Lit(types.NewInt(n)), nil
	case tokFloat:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.Lit(types.NewFloat(f)), nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.Lit(types.NewString(s)), nil
	case tokPosCol:
		idx, err := strconv.Atoi(p.tok.text)
		if err != nil {
			return nil, p.errf("bad positional column $%s", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.ColIdx(idx), nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			var args []*expr.Expr
			if !p.isPunct(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.isPunct(",") {
						if err := p.advance(); err != nil {
							return nil, err
						}
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return expr.Call(name, args...), nil
		}
		return expr.Col(name), nil
	case tokPunct:
		if p.tok.text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("expected an expression, found %q", p.tok.text)
}
