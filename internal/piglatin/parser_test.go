package piglatin

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func parseOK(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v\nscript:\n%s", err, src)
	}
	return s
}

func parseFail(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("expected parse error containing %q, got success", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err, wantSubstr)
	}
}

// The paper's Q1 (based on PigMix L2).
const q1Source = `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'L2_out';
`

// The paper's Q2 (based on PigMix L3).
const q2Source = `
A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'L3_out';
`

func TestParseQ1(t *testing.T) {
	s := parseOK(t, q1Source)
	if len(s.Stmts) != 6 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
	load, ok := s.Stmts[0].(*AssignStmt)
	if !ok || load.Alias != "A" {
		t.Fatalf("stmt 0 = %+v", s.Stmts[0])
	}
	ln, ok := load.Op.(*LoadNode)
	if !ok || ln.Path != "page_views" || ln.Schema.Len() != 5 {
		t.Fatalf("load = %+v", load.Op)
	}
	join, ok := s.Stmts[4].(*AssignStmt).Op.(*JoinNode)
	if !ok || len(join.Srcs) != 2 || join.Srcs[0] != "beta" || join.Srcs[1] != "B" {
		t.Fatalf("join = %+v", join)
	}
	st, ok := s.Stmts[5].(*StoreStmt)
	if !ok || st.Alias != "C" || st.Path != "L2_out" {
		t.Fatalf("store = %+v", s.Stmts[5])
	}
}

func TestParseQ2GroupAndAggregate(t *testing.T) {
	s := parseOK(t, q2Source)
	grp, ok := s.Stmts[5].(*AssignStmt).Op.(*GroupNode)
	if !ok || grp.Src != "C" || grp.All || len(grp.Keys) != 1 {
		t.Fatalf("group = %+v", grp)
	}
	fe, ok := s.Stmts[6].(*AssignStmt).Op.(*ForeachNode)
	if !ok || len(fe.Gens) != 2 {
		t.Fatalf("foreach = %+v", fe)
	}
	if got := fe.Gens[1].Expr.Canonical(); got != "SUM(col(C).est_revenue)" {
		t.Errorf("aggregate expr = %q", got)
	}
}

func TestParseTypedSchema(t *testing.T) {
	s := parseOK(t, `A = load 'x' as (a:int, b:chararray, c:double, d:bool, e);
store A into 'o';`)
	ln := s.Stmts[0].(*AssignStmt).Op.(*LoadNode)
	want := []types.Kind{types.KindInt, types.KindString, types.KindFloat, types.KindBool, types.KindNull}
	for i, k := range want {
		if ln.Schema.Fields[i].Kind != k {
			t.Errorf("field %d kind = %v, want %v", i, ln.Schema.Fields[i].Kind, k)
		}
	}
}

func TestParseLoadUsingClauseIgnored(t *testing.T) {
	s := parseOK(t, `A = load 'x' using PigStorage(',') as (a, b);
store A into 'o';`)
	ln := s.Stmts[0].(*AssignStmt).Op.(*LoadNode)
	if ln.Schema.Len() != 2 {
		t.Errorf("schema = %v", ln.Schema)
	}
}

func TestParseFilterPredicates(t *testing.T) {
	s := parseOK(t, `A = load 'x' as (a:int, b:int);
B = filter A by a > 1 and not (b == 2 or a + b * 2 >= 10);
store B into 'o';`)
	f := s.Stmts[1].(*AssignStmt).Op.(*FilterNode)
	got := f.Pred.Canonical()
	// Multiplication binds tighter than +, which binds tighter than >=.
	if !strings.Contains(got, "(col(b) * lit:int:2)") {
		t.Errorf("precedence wrong: %q", got)
	}
	if !strings.Contains(got, "and") || !strings.Contains(got, "not") {
		t.Errorf("boolean structure missing: %q", got)
	}
}

func TestParseGroupAll(t *testing.T) {
	s := parseOK(t, `A = load 'x' as (a);
B = group A all;
C = foreach B generate COUNT(A);
store C into 'o';`)
	g := s.Stmts[1].(*AssignStmt).Op.(*GroupNode)
	if !g.All || g.Keys != nil {
		t.Errorf("group all = %+v", g)
	}
}

func TestParseMultiKeyGroup(t *testing.T) {
	s := parseOK(t, `A = load 'x' as (a, b, c);
B = group A by (a, b);
store B into 'o';`)
	g := s.Stmts[1].(*AssignStmt).Op.(*GroupNode)
	if len(g.Keys) != 2 {
		t.Errorf("keys = %d", len(g.Keys))
	}
}

func TestParseCoGroup(t *testing.T) {
	s := parseOK(t, `A = load 'x' as (a);
B = load 'y' as (b);
C = cogroup A by a, B by b;
store C into 'o';`)
	cg := s.Stmts[2].(*AssignStmt).Op.(*CoGroupNode)
	if len(cg.Srcs) != 2 || len(cg.Keys) != 2 {
		t.Errorf("cogroup = %+v", cg)
	}
}

func TestParseNestedForeach(t *testing.T) {
	s := parseOK(t, `A = load 'x' as (user, action);
B = group A by user;
C = foreach B {
  dst = distinct A.action;
  mrn = filter A by action < 43200;
  generate group, COUNT(dst), COUNT(mrn);
};
store C into 'o';`)
	fe := s.Stmts[2].(*AssignStmt).Op.(*ForeachNode)
	if len(fe.Nested) != 2 {
		t.Fatalf("nested = %+v", fe.Nested)
	}
	if fe.Nested[0].Kind != "distinct" || fe.Nested[0].SrcAlias != "A" || fe.Nested[0].SrcField != "action" {
		t.Errorf("nested[0] = %+v", fe.Nested[0])
	}
	if fe.Nested[1].Kind != "filter" || fe.Nested[1].Pred == nil {
		t.Errorf("nested[1] = %+v", fe.Nested[1])
	}
	if len(fe.Gens) != 3 {
		t.Errorf("gens = %d", len(fe.Gens))
	}
}

func TestParseUnionOrderLimitDistinct(t *testing.T) {
	s := parseOK(t, `A = load 'x' as (a, b);
B = load 'y' as (a, b);
C = union A, B;
D = distinct C;
E = order D by a desc, $1;
F = limit E 10;
store F into 'o';`)
	if u := s.Stmts[2].(*AssignStmt).Op.(*UnionNode); len(u.Srcs) != 2 {
		t.Errorf("union = %+v", u)
	}
	o := s.Stmts[4].(*AssignStmt).Op.(*OrderNode)
	if len(o.Cols) != 2 || !o.Cols[0].Desc || o.Cols[0].Name != "a" || o.Cols[1].Idx != 1 {
		t.Errorf("order = %+v", o)
	}
	if l := s.Stmts[5].(*AssignStmt).Op.(*LimitNode); l.N != 10 {
		t.Errorf("limit = %+v", l)
	}
}

func TestParseComments(t *testing.T) {
	s := parseOK(t, `-- leading comment
A = load 'x' as (a); -- trailing comment
store A into 'o';`)
	if len(s.Stmts) != 2 {
		t.Errorf("stmts = %d", len(s.Stmts))
	}
}

func TestParseStringEscapes(t *testing.T) {
	s := parseOK(t, `A = load 'pa\'th';
B = filter A by $0 == 'tab\there';
store B into 'o';`)
	ln := s.Stmts[0].(*AssignStmt).Op.(*LoadNode)
	if ln.Path != "pa'th" {
		t.Errorf("path = %q", ln.Path)
	}
}

func TestParseErrors(t *testing.T) {
	parseFail(t, ``, "empty script")
	parseFail(t, `A = load ;`, "expected quoted string")
	parseFail(t, `A = bogus B;`, "expected an operation keyword")
	parseFail(t, `load = load 'x'; store load into 'o';`, "reserved word")
	parseFail(t, `A = load 'x' as (a:frobnicate); store A into 'o';`, "unknown type")
	parseFail(t, `A = load 'x'; B = join A by x; store B into 'o';`, "at least two inputs")
	parseFail(t, `A = load 'x'; B = limit A x; store B into 'o';`, "expected limit count")
	parseFail(t, `A = load 'x' store A into 'o';`, `expected ";"`)
	parseFail(t, `A = load 'unterminated`, "unterminated string")
	parseFail(t, `A = filter B by (a == 1; store A into 'o';`, `expected ")"`)
	parseFail(t, `A = load 'x'; B = union A; store B into 'o';`, "at least two inputs")
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("A = load 'x';\nB = bogus A;\nstore B into 'o';")
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
}

func TestParseJoinThreeWayRejected(t *testing.T) {
	parseFail(t, `A = load 'x'; B = load 'y'; C = load 'z';
D = join A by $0, B by $0, C by $0;
store D into 'o';`, "exactly two")
}

func TestParsePositionalColumns(t *testing.T) {
	s := parseOK(t, `A = load 'x';
B = foreach A generate $0, $2 as renamed;
store B into 'o';`)
	fe := s.Stmts[1].(*AssignStmt).Op.(*ForeachNode)
	if fe.Gens[0].Expr.Canonical() != "$0" {
		t.Errorf("gen 0 = %q", fe.Gens[0].Expr.Canonical())
	}
	if fe.Gens[1].As != "renamed" {
		t.Errorf("gen 1 as = %q", fe.Gens[1].As)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	s := parseOK(t, `a = LOAD 'x' AS (col1);
b = FILTER a BY col1 == 1;
STORE b INTO 'o';`)
	if len(s.Stmts) != 3 {
		t.Errorf("stmts = %d", len(s.Stmts))
	}
}

func TestParseSplitInto(t *testing.T) {
	s := parseOK(t, `A = load 'x' as (a:int);
split A into small if a < 10, big if a >= 10;
store small into 'o1';
store big into 'o2';`)
	sp, ok := s.Stmts[1].(*SplitStmt)
	if !ok || sp.Src != "A" || len(sp.Branches) != 2 {
		t.Fatalf("split = %+v", s.Stmts[1])
	}
	if sp.Branches[0].Alias != "small" || sp.Branches[1].Alias != "big" {
		t.Errorf("branches = %+v", sp.Branches)
	}
	if sp.Branches[0].Pred == nil {
		t.Error("predicate missing")
	}
}

func TestParseSplitErrors(t *testing.T) {
	parseFail(t, `split A into b if 1;`, "at least two branches")
	parseFail(t, `split A into store if 1, c if 2;`, "reserved word")
	parseFail(t, `split A into b 1, c if 2;`, `expected "if"`)
}
