package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Stage identifies one phase of a query's life. The stage set covers the
// full request wall-clock: a non-deduped query's spans are
// parse → hot → queue → lease → evict → match → plan → execute → store
// (→ rows), a fast-path-served query's are parse → hot (→ rows), and a
// deduped submission's are parse → flight-wait (→ rows). The server's
// trace e2e test pins that the spans account for >= 95% of the measured
// request time, so any new await added to the query path must either live
// inside an existing stage or add its own.
type Stage uint8

// Stage values, in query-lifecycle order.
const (
	// StageParse is System.Prepare: parse, logical plan, MapReduce compile.
	StageParse Stage = iota
	// StageQueue is the wait in the server's conflict-aware scheduler queue
	// (submit to dispatch on a worker slot).
	StageQueue
	// StageFlightWait is a deduped submission's wait on its flight leader's
	// execution (the joiner runs no stages of its own).
	StageFlightWait
	// StageHot is the admission-time result fast path: the whole-query
	// match probe (with its pin-time staleness guards) a flight leader runs
	// before any scheduler queueing or lease. Recorded for served and
	// fallen-back queries alike — on a fallback it measures the probe cost
	// the miss added.
	StageHot
	// StageLease is the wait for the System's path-lease admission
	// (conflicting in-flight work draining).
	StageLease
	// StageEvict is phase 0: the Rule-4/window/budget eviction passes.
	StageEvict
	// StageMatch is phase 1: the repository match scan and plan rewrite.
	StageMatch
	// StagePlan is phase 2: sub-job enumeration and final job construction.
	StagePlan
	// StageExecute is phase 3: the MapReduce engine run (including any
	// emulated remote-cluster latency).
	StageExecute
	// StageStore is phase 4: candidate registration and retention notes.
	StageStore
	// StageRows is the post-execution output read (readOutputs requests).
	StageRows
	// NumStages is the number of Stage values (array sizing).
	NumStages
)

// stageNames are the wire/label names, indexed by Stage.
var stageNames = [NumStages]string{
	"parse", "queue", "flightWait", "hot", "lease", "evict",
	"match", "plan", "execute", "store", "rows",
}

// String returns the stage's wire name (stable: metric labels and trace
// JSON both use it).
func (st Stage) String() string {
	if int(st) < len(stageNames) {
		return stageNames[st]
	}
	return fmt.Sprintf("stage(%d)", uint8(st))
}

// Span is one completed stage of a trace, with offsets relative to the
// trace's begin time.
type Span struct {
	// Stage is the stage's wire name (see Stage.String).
	Stage string `json:"stage"`
	// StartNanos is the span's offset from the trace start.
	StartNanos int64 `json:"startNanos"`
	// DurNanos is the span's duration.
	DurNanos int64 `json:"durNanos"`
}

// Trace collects the stage spans of one query submission. A nil *Trace is
// a valid no-op sink, so instrumented code paths never branch on "is
// tracing on". The handful of appends per query go through a mutex: spans
// are recorded from both the request goroutine and the scheduler worker,
// and the channel handoffs between them do not cover every interleaving a
// future refactor might introduce.
type Trace struct {
	begin time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace whose span offsets are relative to begin.
func NewTrace(begin time.Time) *Trace {
	return &Trace{begin: begin, spans: make([]Span, 0, int(NumStages))}
}

// ObserveSince records stage as having run from start until now, returning
// the span's duration. A nil trace records nothing but still returns the
// elapsed time, so one call can feed both a trace span and a histogram
// sample without re-reading the clock.
func (t *Trace) ObserveSince(stage Stage, start time.Time) time.Duration {
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	if t == nil {
		return d
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Stage:      stage.String(),
		StartNanos: start.Sub(t.begin).Nanoseconds(),
		DurNanos:   d.Nanoseconds(),
	})
	t.mu.Unlock()
	return d
}

// Snapshot finalizes the trace: total wall-clock from the trace's begin to
// now, plus a copy of the recorded spans.
func (t *Trace) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	return &TraceSnapshot{
		TotalNanos: time.Since(t.begin).Nanoseconds(),
		Spans:      spans,
	}
}

// TraceSnapshot is the JSON form of a completed trace — returned to clients
// on ?trace=1 and retained by the slow-query ring.
type TraceSnapshot struct {
	// TotalNanos is the wall-clock from request arrival to response build.
	TotalNanos int64 `json:"totalNanos"`
	// Spans are the recorded stages in completion order.
	Spans []Span `json:"spans"`
}

// SpanNanos sums the span durations — what fraction of TotalNanos the
// instrumentation accounts for.
func (s *TraceSnapshot) SpanNanos() int64 {
	if s == nil {
		return 0
	}
	var sum int64
	for _, sp := range s.Spans {
		sum += sp.DurNanos
	}
	return sum
}

// String renders the trace as a compact stage=duration list for log lines,
// e.g. "parse=1.2ms execute=48ms total=51ms".
func (s *TraceSnapshot) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, sp := range s.Spans {
		fmt.Fprintf(&b, "%s=%s ", sp.Stage, time.Duration(sp.DurNanos).Round(10*time.Microsecond))
	}
	fmt.Fprintf(&b, "total=%s", time.Duration(s.TotalNanos).Round(10*time.Microsecond))
	return b.String()
}
