// Package obs is the daemon's telemetry substrate: lock-free log-scale
// latency histograms, per-query stage traces, a sliding-window rate
// estimator, and a bounded worst-queries ring. Everything here is designed
// for the hot path: recording a sample is a couple of atomic adds, tracing
// a stage is one time.Now plus an append, and the whole layer can be
// switched off with the Disabled registry (every record call then returns
// after a single branch), which is what the server-obs benchmark compares
// against.
//
// The types are deliberately dependency-free (no Prometheus client): the
// server renders snapshots into Prometheus text exposition itself, so the
// daemon stays a single static binary.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram: powers of two
// starting at 1µs, so bucket i counts samples with
// 2^(i-1)µs < d <= 2^i µs (bucket 0 holds everything <= 1µs). 36 buckets
// reach ~9.5 hours; anything slower lands in the last bucket.
const NumBuckets = 36

// Histogram is a fixed-bucket log-scale duration histogram. Observe is
// lock-free (two atomic adds and one atomic increment) and safe for any
// number of concurrent writers; Snapshot may run concurrently with writers
// and yields a mergeable point-in-time copy. The zero value is ready to
// use.
type Histogram struct {
	count   atomic.Int64
	sumNano atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketIndex maps a duration to its bucket: ceil(log2(µs)), clamped.
func bucketIndex(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us <= 1 {
		return 0
	}
	// bits.Len64(x-1) is ceil(log2(x)) for x >= 2: the first bucket whose
	// upper bound 2^i µs is >= the sample.
	i := bits.Len64(us - 1)
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBound returns bucket i's inclusive upper bound (2^i microseconds).
// The final bucket reports math.MaxInt64 (it absorbs every slower sample,
// rendering as +Inf in Prometheus exposition).
func BucketBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Microsecond << uint(i)
}

// Observe records one sample. Negative durations are clamped to zero (a
// clock step mid-span must not corrupt the sum).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNano.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// Snapshot copies the histogram's counters. Concurrent Observes may land
// between the count and bucket reads, so the invariant is Count <= sum of
// Buckets rather than exact equality during traffic; a quiesced histogram
// snapshots exactly.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	// Buckets before count/sum: a sample that lands mid-snapshot then
	// inflates count at worst, and Quantile clamps to the bucketed total.
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNanos = h.sumNano.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram: plain integers,
// safe to serialize, merge, and query.
type HistogramSnapshot struct {
	// Count and SumNanos aggregate every recorded sample.
	Count    int64 `json:"count"`
	SumNanos int64 `json:"sumNanos"`
	// Buckets[i] counts samples in (BucketBound(i-1), BucketBound(i)].
	Buckets [NumBuckets]int64 `json:"buckets"`
}

// Merge folds o into s (bucket-wise addition) — how per-shard or
// per-process snapshots combine into one distribution.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumNanos += o.SumNanos
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) as the upper bound of the
// bucket holding that rank — a conservative estimate whose error is bounded
// by the 2x bucket width. An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := int64(0)
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			if i == NumBuckets-1 {
				// The overflow bucket has no meaningful upper bound; report
				// the mean of what is known instead of +Inf.
				return s.Mean()
			}
			return BucketBound(i)
		}
	}
	return s.Mean()
}

// Mean returns the average recorded duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}
