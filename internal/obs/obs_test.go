package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 0}, // sub-µs resolution truncates
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10}, // 1024 µs -> 2^10
		{time.Second, 20},      // ~1.05s bound at 2^20 µs
		{240 * time.Hour, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 0; i < NumBuckets-1; i++ {
		b := BucketBound(i)
		if got := bucketIndex(b); got != i {
			t.Errorf("bound %v of bucket %d lands in bucket %d (bounds must be inclusive)", b, i, got)
		}
		if got := bucketIndex(b + time.Microsecond); got != i+1 {
			t.Errorf("bound+1µs of bucket %d lands in bucket %d, want %d", i, got, i+1)
		}
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	var h Histogram
	// 90 fast samples, 10 slow ones: p50 in the fast bucket, p99 in the slow.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if p50 := s.Quantile(0.5); p50 < 100*time.Microsecond || p50 > 256*time.Microsecond {
		t.Errorf("p50 = %v, want within the 100µs bucket bound", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 80*time.Millisecond || p99 > 256*time.Millisecond {
		t.Errorf("p99 = %v, want within the 80ms bucket bound", p99)
	}
	wantMean := (90*100*time.Microsecond + 10*80*time.Millisecond) / 100
	if m := s.Mean(); m != wantMean {
		t.Errorf("mean = %v, want %v", m, wantMean)
	}
	if q := (HistogramSnapshot{}).Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (run under -race by make check) and verifies no samples are
// lost and the snapshot invariants hold.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Microsecond)
			}
		}()
	}
	// Concurrent snapshots must be safe (and internally consistent enough:
	// bucketed total never below count).
	for i := 0; i < 100; i++ {
		s := h.Snapshot()
		var total int64
		for _, c := range s.Buckets {
			total += c
		}
		if total < s.Count {
			t.Fatalf("mid-traffic snapshot: bucket total %d < count %d", total, s.Count)
		}
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d after quiesce", total, s.Count)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	b.Observe(3 * time.Microsecond)
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != sa.Count+sb.Count {
		t.Errorf("merged count = %d, want %d", merged.Count, sa.Count+sb.Count)
	}
	if merged.SumNanos != sa.SumNanos+sb.SumNanos {
		t.Errorf("merged sum = %d, want %d", merged.SumNanos, sa.SumNanos+sb.SumNanos)
	}
	for i := range merged.Buckets {
		if merged.Buckets[i] != sa.Buckets[i]+sb.Buckets[i] {
			t.Errorf("bucket %d = %d, want %d", i, merged.Buckets[i], sa.Buckets[i]+sb.Buckets[i])
		}
	}
	// Merge is how shard snapshots combine; quantiles must see both sides.
	if p99 := merged.Quantile(0.99); p99 < time.Second {
		t.Errorf("merged p99 = %v, want >= 1s (b's samples)", p99)
	}
}

func TestRateWindowSlidesAndExpires(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	w := NewRateWindow(base)
	// 120 events spread over seconds 1..4 (the anchor second stays empty so
	// the whole burst is in closed seconds when read at +5s).
	for s := 1; s <= 4; s++ {
		for i := 0; i < 30; i++ {
			w.Mark(base.Add(time.Duration(s) * time.Second))
		}
	}
	// Read at +5s: 120 events over 5s of uptime (window not yet full).
	if r := w.Rate(base.Add(5 * time.Second)); r < 23 || r > 25 {
		t.Errorf("rate at +5s = %.1f, want ~24", r)
	}
	// Read at +30s: same events over a longer elapsed window.
	if r := w.Rate(base.Add(30 * time.Second)); r < 3.9 || r > 4.1 {
		t.Errorf("rate at +30s = %.1f, want ~4", r)
	}
	// Past the window the events expire entirely.
	if r := w.Rate(base.Add(120 * time.Second)); r != 0 {
		t.Errorf("rate at +120s = %.1f, want 0 (all slots stale)", r)
	}
	// New traffic reclaims stale slots.
	w.Mark(base.Add(119 * time.Second))
	if r := w.Rate(base.Add(120 * time.Second)); r == 0 {
		t.Error("rate after reclaiming a stale slot = 0, want > 0")
	}
}

func TestRateWindowConcurrentMark(t *testing.T) {
	now := time.Unix(1_700_000_100, 0)
	w := NewRateWindow(now.Add(-time.Minute)) // full window elapsed
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w.Mark(now)
			}
		}()
	}
	wg.Wait()
	want := float64(goroutines*perG) / rateSlots
	if r := w.Rate(now.Add(time.Second)); r != want {
		t.Errorf("rate = %.2f, want %.2f (no lost marks)", r, want)
	}
}

func TestTraceSpansAndSnapshot(t *testing.T) {
	begin := time.Now()
	tr := NewTrace(begin)
	start := time.Now()
	time.Sleep(2 * time.Millisecond)
	d := tr.ObserveSince(StageExecute, start)
	if d < 2*time.Millisecond {
		t.Errorf("span duration %v < slept 2ms", d)
	}
	tr.ObserveSince(StageRows, time.Now())
	s := tr.Snapshot()
	if len(s.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(s.Spans))
	}
	if s.Spans[0].Stage != "execute" || s.Spans[1].Stage != "rows" {
		t.Errorf("stages = %q,%q", s.Spans[0].Stage, s.Spans[1].Stage)
	}
	if s.TotalNanos < s.Spans[0].DurNanos {
		t.Errorf("total %d < first span %d", s.TotalNanos, s.Spans[0].DurNanos)
	}
	if got := s.SpanNanos(); got != s.Spans[0].DurNanos+s.Spans[1].DurNanos {
		t.Errorf("SpanNanos = %d, want sum of spans", got)
	}
	// Nil traces are silent no-ops that still report elapsed time.
	var nilTr *Trace
	if d := nilTr.ObserveSince(StageParse, time.Now().Add(-time.Second)); d < time.Second {
		t.Errorf("nil trace ObserveSince = %v, want >= 1s elapsed", d)
	}
	if nilTr.Snapshot() != nil {
		t.Error("nil trace Snapshot != nil")
	}
}

func TestSlowRingRetainsWorst(t *testing.T) {
	r := NewSlowRing(3)
	add := func(ms int64) {
		r.Add(SlowQuery{
			Script: fmt.Sprintf("q%d", ms),
			Trace:  &TraceSnapshot{TotalNanos: ms * int64(time.Millisecond)},
		})
	}
	for _, ms := range []int64{5, 50, 1, 30, 2, 40, 3} {
		add(ms)
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	wantOrder := []string{"q50", "q40", "q30"}
	for i, w := range wantOrder {
		if got[i].Script != w {
			t.Errorf("slot %d = %s, want %s (slowest-first, worst retained)", i, got[i].Script, w)
		}
	}
	// Ties with the minimum do not churn the ring.
	add(30)
	if got := r.Snapshot(); got[2].Script != "q30" {
		t.Errorf("tie displaced the retained entry: %v", got[2].Script)
	}
}

func TestSlowRingTruncatesScripts(t *testing.T) {
	r := NewSlowRing(1)
	long := make([]byte, 2*scriptExcerptLen)
	for i := range long {
		long[i] = 'a'
	}
	r.Add(SlowQuery{Script: string(long), Trace: &TraceSnapshot{TotalNanos: 1}})
	if got := r.Snapshot()[0].Script; len(got) > scriptExcerptLen+4 {
		t.Errorf("retained script length %d, want <= %d", len(got), scriptExcerptLen+4)
	}
}

func TestSlowRingConcurrentAdd(t *testing.T) {
	r := NewSlowRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(SlowQuery{Trace: &TraceSnapshot{TotalNanos: int64(g*1000 + i)}})
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	got := r.Snapshot()
	if len(got) != 8 {
		t.Fatalf("retained %d, want 8", len(got))
	}
	// The 8 slowest across all writers are 3499..3492.
	if got[0].Trace.TotalNanos != 3499 || got[7].Trace.TotalNanos != 3492 {
		t.Errorf("retained range [%d..%d], want [3499..3492]", got[0].Trace.TotalNanos, got[7].Trace.TotalNanos)
	}
}

func TestRegistryDisabledAndNil(t *testing.T) {
	for _, r := range []*Registry{nil, Disabled} {
		r.ObserveStage(StageExecute, time.Second)
		r.ObserveQuery(time.Second)
		r.ObserveLeaseWait(time.Second)
		r.ObserveWALAppend(time.Second)
		r.ObserveWALFsync(time.Second)
		r.ObserveGCSweep(time.Second)
		r.LeaseQueued(1)
		r.LeaseAdmitted(1)
		r.UniversalQueued(1)
		if !r.Off() {
			t.Error("Off() = false for disabled/nil registry")
		}
	}
	if Disabled.Query.Snapshot().Count != 0 {
		t.Error("Disabled registry recorded a sample")
	}
	r := NewRegistry()
	r.ObserveStage(StageMatch, time.Millisecond)
	r.UniversalQueued(1)
	r.UniversalQueued(-1)
	if r.Stages[StageMatch].Snapshot().Count != 1 {
		t.Error("active registry lost a stage sample")
	}
	if r.UniversalAcquires.Load() != 1 || r.UniversalWaiting.Load() != 0 {
		t.Error("universal gauge/counter wrong after queue+dequeue")
	}
}
