package obs

import (
	"sort"
	"sync"
	"time"
)

// SlowQuery is one retained query completion: enough to answer "what was
// slow and where did its time go" without external tracing infrastructure.
type SlowQuery struct {
	// Script is the submitted query text, truncated to a bounded excerpt.
	Script string `json:"script"`
	// FlightKey is the prepared query's canonical plan fingerprint (empty
	// when preparation itself failed).
	FlightKey string `json:"flightKey,omitempty"`
	// When is the submission's arrival time.
	When time.Time `json:"when"`
	// Deduped reports a submission served by joining another's flight.
	Deduped bool `json:"deduped"`
	// Error carries the failure message for failed submissions.
	Error string `json:"error,omitempty"`
	// Trace is the submission's stage breakdown.
	Trace *TraceSnapshot `json:"trace"`
}

// scriptExcerptLen bounds retained script text so the ring's memory stays
// fixed no matter what clients submit.
const scriptExcerptLen = 400

// SlowRing retains the slowest query completions seen so far, up to a fixed
// capacity: an Add cheaper than the fastest query (one mutex acquisition,
// no allocation on the common not-slow-enough path) and a Snapshot sorted
// slowest-first for /v1/debug/slow. Unlike a recency ring, a burst of fast
// queries can never wash out the interesting outliers; the trade-off is
// that a one-off startup spike sticks until something slower displaces it.
type SlowRing struct {
	mu      sync.Mutex
	cap     int
	entries []SlowQuery
	minIdx  int // index of the fastest retained entry (eviction candidate)
}

// NewSlowRing returns a ring retaining the n slowest completions (n < 1
// selects 64).
func NewSlowRing(n int) *SlowRing {
	if n < 1 {
		n = 64
	}
	return &SlowRing{cap: n}
}

// Add offers one completion to the ring; it is retained if the ring has
// room or the completion is slower than the current fastest retained entry.
func (r *SlowRing) Add(q SlowQuery) {
	if r == nil || q.Trace == nil {
		return
	}
	if len(q.Script) > scriptExcerptLen {
		q.Script = q.Script[:scriptExcerptLen] + "…"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, q)
		r.reindexLocked()
		return
	}
	if q.Trace.TotalNanos <= r.entries[r.minIdx].Trace.TotalNanos {
		return
	}
	r.entries[r.minIdx] = q
	r.reindexLocked()
}

// reindexLocked recomputes the eviction candidate. O(cap), but cap is small
// (tens) and Add already paid a mutex; keeping a heap would only matter at
// capacities this ring is not meant for.
func (r *SlowRing) reindexLocked() {
	min := 0
	for i := 1; i < len(r.entries); i++ {
		if r.entries[i].Trace.TotalNanos < r.entries[min].Trace.TotalNanos {
			min = i
		}
	}
	r.minIdx = min
}

// Snapshot returns the retained completions, slowest first.
func (r *SlowRing) Snapshot() []SlowQuery {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]SlowQuery(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return out[i].Trace.TotalNanos > out[j].Trace.TotalNanos
	})
	return out
}
