package obs

import (
	"sync/atomic"
	"time"
)

// Registry is the set of histograms and gauges one deployment records into.
// The System, lease table, server, and persister all share one Registry
// (the server wires it through), so GET /metrics renders a single coherent
// view.
//
// Every record method is safe for concurrent use and nil-safe, and the
// Disabled sentinel turns each into a single-branch no-op — library users
// who never construct a Registry pay only a nil check, and the server-obs
// benchmark pins the instrumented-vs-disabled cost.
type Registry struct {
	disabled bool

	// Query is the end-to-end request latency distribution (handler
	// arrival to response build), and Stages the per-stage breakdowns.
	Query  Histogram
	Stages [NumStages]Histogram
	// LeaseWait is the admission wait of every lease acquisition (queries,
	// GC passes, universal barriers alike); StageLease covers query
	// executions only.
	LeaseWait Histogram
	// WALAppend and WALFsync time the persistence hot path: framing+append
	// per mutation record, and each batched fsync.
	WALAppend Histogram
	WALFsync  Histogram
	// GCSweep times each background CollectGarbage pass.
	GCSweep Histogram

	// LeaseWaiting and LeaseInflight gauge the lease table (queued vs
	// admitted operations); UniversalWaiting gauges universal-barrier
	// acquisitions currently stalled draining the system, and
	// UniversalAcquires counts them over the lifetime.
	LeaseWaiting      atomic.Int64
	LeaseInflight     atomic.Int64
	UniversalWaiting  atomic.Int64
	UniversalAcquires atomic.Int64
}

// Disabled is the no-op Registry: every record call returns after one
// branch. Pass it where a *Registry is required to switch telemetry off
// (the server-obs benchmark's baseline).
var Disabled = &Registry{disabled: true}

// NewRegistry returns an active registry.
func NewRegistry() *Registry { return &Registry{} }

// Off reports whether recording into r is a no-op (nil or Disabled).
func (r *Registry) Off() bool { return r == nil || r.disabled }

// ObserveStage records one stage duration.
func (r *Registry) ObserveStage(st Stage, d time.Duration) {
	if r.Off() {
		return
	}
	r.Stages[st].Observe(d)
}

// ObserveQuery records one end-to-end request duration.
func (r *Registry) ObserveQuery(d time.Duration) {
	if r.Off() {
		return
	}
	r.Query.Observe(d)
}

// ObserveLeaseWait records one lease-admission wait.
func (r *Registry) ObserveLeaseWait(d time.Duration) {
	if r.Off() {
		return
	}
	r.LeaseWait.Observe(d)
}

// ObserveWALAppend records one WAL record append.
func (r *Registry) ObserveWALAppend(d time.Duration) {
	if r.Off() {
		return
	}
	r.WALAppend.Observe(d)
}

// ObserveWALFsync records one WAL fsync.
func (r *Registry) ObserveWALFsync(d time.Duration) {
	if r.Off() {
		return
	}
	r.WALFsync.Observe(d)
}

// ObserveGCSweep records one background garbage-collection pass.
func (r *Registry) ObserveGCSweep(d time.Duration) {
	if r.Off() {
		return
	}
	r.GCSweep.Observe(d)
}

// LeaseQueued adjusts the waiting-leases gauge by delta.
func (r *Registry) LeaseQueued(delta int64) {
	if r.Off() {
		return
	}
	r.LeaseWaiting.Add(delta)
}

// LeaseAdmitted adjusts the in-flight-leases gauge by delta.
func (r *Registry) LeaseAdmitted(delta int64) {
	if r.Off() {
		return
	}
	r.LeaseInflight.Add(delta)
}

// UniversalQueued adjusts the stalled-universal-barriers gauge by delta,
// counting each new wait in the lifetime total.
func (r *Registry) UniversalQueued(delta int64) {
	if r.Off() {
		return
	}
	r.UniversalWaiting.Add(delta)
	if delta > 0 {
		r.UniversalAcquires.Add(delta)
	}
}
