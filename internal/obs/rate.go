package obs

import (
	"sync/atomic"
	"time"
)

// rateSlots is the sliding window length in seconds.
const rateSlots = 60

// RateWindow estimates a current event rate over the trailing 60 seconds —
// the "qps right now" a dashboard wants, as opposed to a lifetime
// events/uptime average that stops moving after the first traffic burst.
//
// Implementation: one slot per wall-clock second, each packing
// (unix-second << 20 | count) into a single atomic word so Mark is
// lock-free. A slot is only trusted at read time if its recorded second is
// within the window, so stale slots from minutes ago never leak into the
// rate. Counts saturate at ~1M events per second per slot, far above
// anything one daemon serves.
type RateWindow struct {
	start time.Time
	slots [rateSlots]atomic.Uint64
}

// countBits is the per-slot event-count width.
const countBits = 20

// NewRateWindow returns a window anchored at now (rates during the first
// minute divide by elapsed time, not the full window).
func NewRateWindow(now time.Time) *RateWindow {
	return &RateWindow{start: now}
}

// Mark records one event at time now.
func (w *RateWindow) Mark(now time.Time) {
	if w == nil {
		return
	}
	sec := uint64(now.Unix())
	slot := &w.slots[sec%rateSlots]
	for {
		old := slot.Load()
		var next uint64
		if old>>countBits == sec {
			if old&(1<<countBits-1) == 1<<countBits-1 {
				return // saturated
			}
			next = old + 1
		} else {
			// A different (older) second owns the slot; reclaim it.
			next = sec<<countBits | 1
		}
		if slot.CompareAndSwap(old, next) {
			return
		}
	}
}

// Rate returns events per second over the window ending at now. The
// current (partial) second is excluded — including it would bias every
// read low — and the divisor is the full window, or the elapsed uptime
// when the window has not filled yet.
func (w *RateWindow) Rate(now time.Time) float64 {
	if w == nil {
		return 0
	}
	sec := uint64(now.Unix())
	var total uint64
	for i := range w.slots {
		v := w.slots[i].Load()
		s := v >> countBits
		if s < sec && sec-s <= rateSlots {
			total += v & (1<<countBits - 1)
		}
	}
	window := now.Sub(w.start).Seconds()
	if window > rateSlots {
		window = rateSlots
	}
	if window < 1 {
		window = 1
	}
	return float64(total) / window
}
