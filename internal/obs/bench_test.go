package obs

import (
	"testing"
	"time"
)

// BenchmarkHistogramObserve prices one sample on the lock-free histogram —
// the cost every instrumented stage pays per query.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		d := time.Microsecond
		for pb.Next() {
			h.Observe(d)
			d += 137 * time.Microsecond
		}
	})
}

// BenchmarkRegistryObserveStage prices a live registry's stage record.
func BenchmarkRegistryObserveStage(b *testing.B) {
	r := NewRegistry()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.ObserveStage(StageExecute, 42*time.Microsecond)
		}
	})
}

// BenchmarkRegistryDisabled prices the same record against obs.Disabled —
// the single branch library users pay with telemetry off.
func BenchmarkRegistryDisabled(b *testing.B) {
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			Disabled.ObserveStage(StageExecute, 42*time.Microsecond)
		}
	})
}

// BenchmarkTracePerQuery prices one query's worth of tracing: allocate the
// trace, record a full pipeline of spans, snapshot it.
func BenchmarkTracePerQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := NewTrace(time.Now())
		start := time.Now()
		for st := Stage(0); st < NumStages; st++ {
			tr.ObserveSince(st, start)
		}
		if tr.Snapshot() == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// BenchmarkRateWindowMark prices the sliding-window counter's per-query mark.
func BenchmarkRateWindowMark(b *testing.B) {
	w := NewRateWindow(time.Now())
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w.Mark(time.Now())
		}
	})
}
