// Package fleet is the first remote execution backend: a coordinator that
// ships compiled job stages to N worker processes over HTTP/JSON (the same
// protocol shape as the daemon's) and the worker those processes run.
//
// The split follows the engine's TaskRunner boundary. The engine keeps
// planning, output-file creation, partition commits, and stats; the fleet
// Coordinator implements mapred.TaskRunner by serializing each job once
// (mapred.EncodeJob, fingerprint-verified on the worker), shipping map tasks
// with their raw input partition bytes, and shipping reduce partitions with
// RunRefs that name which worker holds each sorted shuffle run. Workers pull
// runs from their peers (GET /v1/shuffle) through the engine's
// ShuffleTransport interface, so PR 9's k-way merge consumes remote runs
// unchanged.
//
// Worker death triggers recovery, not query failure: the coordinator
// re-executes only the lost tasks, consulting the repository first —
// a lost map task whose blocking inputs were materialized by injected
// sub-job stores is rebuilt from those stored bytes (mapred.ReplayMapTask)
// instead of re-running its map pipeline, ReStore's reuse-as-recovery path.
package fleet

import (
	"repro/internal/mapred"
)

// mapRequest asks a worker to execute (or replay) one map task.
type mapRequest struct {
	// Key uniquely identifies the job run fleet-wide (job IDs repeat across
	// concurrent queries).
	Key string `json:"key"`
	// Job is the mapred wire envelope of the compiled job.
	Job []byte `json:"job"`
	// ReduceParts and Combine mirror the coordinator's JobContext so both
	// sides compile identical execution state.
	ReduceParts int  `json:"reduceParts"`
	Combine     bool `json:"combine"`
	// Spec identifies the task.
	Spec mapred.MapTaskSpec `json:"spec"`
	// Input is the raw input partition payload (normal execution).
	Input []byte `json:"input,omitempty"`
	// Replay selects reuse-as-recovery: rebuild the task's shuffle runs
	// from ReplayTags (per blocking-input tag stored partition payloads)
	// instead of re-running the map pipeline over Input.
	Replay     bool           `json:"replay,omitempty"`
	ReplayTags map[int][]byte `json:"replayTags,omitempty"`
}

// mapResponse reports one executed map task's buffered outputs. The worker
// retains the encoded shuffle runs for peer pulls; Runs carries their
// metadata (the coordinator stamps each ref with the worker's address).
type mapResponse struct {
	Stores       map[string]mapred.StorePart `json:"stores"`
	Runs         []mapred.RunRef             `json:"runs"`
	InputBytes   int64                       `json:"inputBytes"`
	ShuffleBytes int64                       `json:"shuffleBytes"`
}

// reduceRequest asks a worker to execute one reduce partition, pulling the
// named runs from the workers holding them.
type reduceRequest struct {
	Key         string          `json:"key"`
	Job         []byte          `json:"job"`
	ReduceParts int             `json:"reduceParts"`
	Combine     bool            `json:"combine"`
	Part        int             `json:"part"`
	Refs        []mapred.RunRef `json:"refs"`
}

// reduceResponse reports one reduce partition's outputs and how many shuffle
// bytes the worker pulled from peers to compute it.
type reduceResponse struct {
	Stores      map[string]mapred.StorePart `json:"stores"`
	PulledBytes int64                       `json:"pulledBytes"`
}

// errorResponse is the body of a non-2xx worker reply. BadAddr names the
// peer a shuffle pull failed against, so the coordinator can tell "this
// worker is sick" from "this worker's upstream is dead" and recover the
// right tasks.
type errorResponse struct {
	Error   string `json:"error"`
	BadAddr string `json:"badAddr,omitempty"`
}

// releaseRequest frees a finished job run's retained state on a worker.
type releaseRequest struct {
	Key string `json:"key"`
}

// healthResponse is the GET /v1/healthz body: liveness plus the task
// counters restorectl's fleet listing renders.
type healthResponse struct {
	OK           bool   `json:"ok"`
	Addr         string `json:"addr"`
	MapTasks     int64  `json:"mapTasks"`
	ReduceTasks  int64  `json:"reduceTasks"`
	Jobs         int    `json:"jobs"`
	RetainedRuns int    `json:"retainedRuns"`
}
