package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapred"
)

// WorkerConfig configures one fleet worker process.
type WorkerConfig struct {
	// Addr is the worker's advertised base URL (how peers and the
	// coordinator reach it). A worker recognizes its own address in RunRefs
	// and reads those runs from memory instead of pulling over HTTP.
	Addr string
	// Slots bounds how many tasks execute concurrently on this worker,
	// emulating a machine with that many cores; 0 selects GOMAXPROCS.
	Slots int
	// TaskDelay adds emulated per-task compute latency, the knob the
	// server-fleet benchmark uses to reproduce the remote-cluster regime
	// where fleet size, not coordinator CPU, bounds throughput.
	TaskDelay time.Duration
	// Client performs peer shuffle pulls; nil selects a default client.
	Client *http.Client
}

// Worker executes map tasks and reduce partitions shipped by a fleet
// coordinator. It is stateless with respect to the DFS — inputs arrive as
// raw bytes, outputs return as raw bytes — and retains only the encoded
// shuffle runs of executed map tasks so reduce-side peers can pull them.
type Worker struct {
	cfg WorkerConfig
	sem chan struct{}

	mapTasks    atomic.Int64
	reduceTasks atomic.Int64

	mu   sync.Mutex
	jobs map[string]*workerJob

	// failNextMap / tornNextShuffle are fault-injection hooks: when
	// positive, the next map request fails with HTTP 500 / the next shuffle
	// pull serves a truncated payload. Tests use them to exercise retry and
	// torn-pull detection.
	failNextMap     atomic.Int32
	tornNextShuffle atomic.Int32
}

// workerJob is one job run's retained state: the decoded execution context
// (decoded once, reused by every task of the run) and the encoded runs.
type workerJob struct {
	jc   *mapred.JobContext
	runs map[runKey][]byte
}

type runKey struct{ task, part int }

// NewWorker constructs a worker.
func NewWorker(cfg WorkerConfig) *Worker {
	slots := cfg.Slots
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{cfg: cfg, sem: make(chan struct{}, slots), jobs: make(map[string]*workerJob)}
}

// SetAddr updates the worker's advertised address (tests bind it after the
// HTTP listener picks a port). Call before serving traffic.
func (w *Worker) SetAddr(addr string) { w.cfg.Addr = addr }

// Handler returns the worker's HTTP API:
//
//	POST /v1/map      execute or replay one map task
//	POST /v1/reduce   execute one reduce partition (pulls peer runs)
//	GET  /v1/shuffle  serve one retained encoded run to a peer
//	POST /v1/release  free a finished job run's retained state
//	GET  /v1/healthz  liveness + task counters
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", w.handleMap)
	mux.HandleFunc("POST /v1/reduce", w.handleReduce)
	mux.HandleFunc("GET /v1/shuffle", w.handleShuffle)
	mux.HandleFunc("POST /v1/release", w.handleRelease)
	mux.HandleFunc("GET /v1/healthz", w.handleHealth)
	return mux
}

// job returns the retained state for a job run, decoding the wire envelope
// (and re-verifying its plan fingerprint) on first sight.
func (w *Worker) job(key string, env []byte, reduceParts int, combine bool) (*workerJob, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if wj, ok := w.jobs[key]; ok {
		return wj, nil
	}
	job, err := mapred.DecodeJob(env)
	if err != nil {
		return nil, err
	}
	wj := &workerJob{jc: mapred.NewJobContext(job, reduceParts, combine), runs: make(map[runKey][]byte)}
	w.jobs[key] = wj
	return wj, nil
}

// acquire takes an execution slot and applies the emulated task latency.
func (w *Worker) acquire() func() {
	w.sem <- struct{}{}
	if w.cfg.TaskDelay > 0 {
		time.Sleep(w.cfg.TaskDelay)
	}
	return func() { <-w.sem }
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

func writeError(rw http.ResponseWriter, status int, badAddr string, err error) {
	writeJSON(rw, status, errorResponse{Error: err.Error(), BadAddr: badAddr})
}

func (w *Worker) handleMap(rw http.ResponseWriter, r *http.Request) {
	if w.failNextMap.Add(-1) >= 0 {
		writeError(rw, http.StatusInternalServerError, "", fmt.Errorf("fleet: injected map fault"))
		return
	}
	w.failNextMap.Store(0)
	var req mapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "", err)
		return
	}
	wj, err := w.job(req.Key, req.Job, req.ReduceParts, req.Combine)
	if err != nil {
		writeError(rw, http.StatusUnprocessableEntity, "", err)
		return
	}
	release := w.acquire()
	defer release()
	var mr *mapred.MapResult
	if req.Replay {
		mr, err = mapred.ReplayMapTask(r.Context(), wj.jc, req.Spec, req.ReplayTags)
	} else {
		mr, err = mapred.ExecMapTask(r.Context(), wj.jc, req.Spec, req.Input)
	}
	if err != nil {
		writeError(rw, http.StatusUnprocessableEntity, "", err)
		return
	}
	// Retain the encoded runs for peer pulls. Duplicate completions (the
	// coordinator re-executing a task another partition already recovered)
	// overwrite byte-identical payloads, so retention is idempotent.
	encoded := mr.EncodedRuns()
	w.mu.Lock()
	for i, ref := range mr.Runs {
		wj.runs[runKey{ref.TaskIdx, ref.Part}] = encoded[i]
	}
	w.mu.Unlock()
	w.mapTasks.Add(1)
	writeJSON(rw, http.StatusOK, mapResponse{
		Stores:       mr.Stores,
		Runs:         mr.Runs,
		InputBytes:   mr.InputBytes,
		ShuffleBytes: mr.ShuffleBytes,
	})
}

func (w *Worker) handleReduce(rw http.ResponseWriter, r *http.Request) {
	var req reduceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "", err)
		return
	}
	wj, err := w.job(req.Key, req.Job, req.ReduceParts, req.Combine)
	if err != nil {
		writeError(rw, http.StatusUnprocessableEntity, "", err)
		return
	}
	release := w.acquire()
	defer release()
	var pulled int64
	var badAddr string
	fetch := func(ctx context.Context, ref mapred.RunRef) ([]byte, error) {
		if ref.Addr == w.cfg.Addr {
			w.mu.Lock()
			data, ok := wj.runs[runKey{ref.TaskIdx, ref.Part}]
			w.mu.Unlock()
			if !ok {
				badAddr = ref.Addr
				return nil, fmt.Errorf("fleet: run task %d part %d not retained locally", ref.TaskIdx, ref.Part)
			}
			return data, nil
		}
		data, err := w.pullRun(ctx, req.Key, ref)
		if err != nil {
			badAddr = ref.Addr
			return nil, err
		}
		// A torn pull shows up as a byte-length mismatch against the run's
		// advertised size before the record decoder even runs; attribute it
		// to the holder so the coordinator probes the right peer.
		if ref.Bytes > 0 && int64(len(data)) != ref.Bytes {
			badAddr = ref.Addr
			return nil, fmt.Errorf("fleet: torn shuffle pull: run task %d part %d from %s: got %d bytes, want %d",
				ref.TaskIdx, ref.Part, ref.Addr, len(data), ref.Bytes)
		}
		pulled += int64(len(data))
		return data, nil
	}
	rr, err := mapred.ExecReducePartition(r.Context(), wj.jc, req.Part, req.Refs, mapred.NewFetchTransport(fetch))
	if err != nil {
		// Torn decodes surface from the transport after a successful HTTP
		// pull; attribute them to the run's holder too so the coordinator
		// probes the right peer.
		status := http.StatusUnprocessableEntity
		if badAddr != "" {
			status = http.StatusBadGateway
		}
		writeError(rw, status, badAddr, err)
		return
	}
	w.reduceTasks.Add(1)
	writeJSON(rw, http.StatusOK, reduceResponse{Stores: rr.Stores, PulledBytes: pulled})
}

// pullRun fetches one encoded run from the peer holding it.
func (w *Worker) pullRun(ctx context.Context, key string, ref mapred.RunRef) ([]byte, error) {
	u := fmt.Sprintf("%s/v1/shuffle?key=%s&task=%d&part=%d",
		ref.Addr, url.QueryEscape(key), ref.TaskIdx, ref.Part)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("fleet: shuffle pull %s: %s: %s", u, resp.Status, body)
	}
	return io.ReadAll(resp.Body)
}

func (w *Worker) handleShuffle(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	task, err1 := strconv.Atoi(q.Get("task"))
	part, err2 := strconv.Atoi(q.Get("part"))
	if err1 != nil || err2 != nil {
		writeError(rw, http.StatusBadRequest, "", fmt.Errorf("fleet: bad shuffle query %q", r.URL.RawQuery))
		return
	}
	w.mu.Lock()
	wj := w.jobs[q.Get("key")]
	var data []byte
	var ok bool
	if wj != nil {
		data, ok = wj.runs[runKey{task, part}]
	}
	w.mu.Unlock()
	if !ok {
		writeError(rw, http.StatusNotFound, "", fmt.Errorf("fleet: run task %d part %d not retained", task, part))
		return
	}
	if w.tornNextShuffle.Add(-1) >= 0 {
		data = data[:len(data)/2] // injected torn pull
	} else {
		w.tornNextShuffle.Store(0)
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	_, _ = rw.Write(data)
}

func (w *Worker) handleRelease(rw http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "", err)
		return
	}
	w.mu.Lock()
	delete(w.jobs, req.Key)
	w.mu.Unlock()
	writeJSON(rw, http.StatusOK, struct{}{})
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	jobs := len(w.jobs)
	runs := 0
	for _, wj := range w.jobs {
		runs += len(wj.runs)
	}
	w.mu.Unlock()
	writeJSON(rw, http.StatusOK, healthResponse{
		OK:           true,
		Addr:         w.cfg.Addr,
		MapTasks:     w.mapTasks.Load(),
		ReduceTasks:  w.reduceTasks.Load(),
		Jobs:         jobs,
		RetainedRuns: runs,
	})
}
