package fleet

// Fleet backend battery: differential equivalence against the in-process
// backend, fault injection (worker crash before/during/after the map phase,
// torn shuffle pulls, duplicate task completion), and the kill-a-worker
// end-to-end recovery proof where a lost map task is rebuilt from stored
// sub-job outputs (reuse as recovery) instead of re-executed.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	restore "repro"
	"repro/internal/logical"
	"repro/internal/mapred"
	"repro/internal/mrcompile"
	"repro/internal/physical"
	"repro/internal/piglatin"
)

// testFleet is N workers behind httptest servers plus the addresses a
// coordinator dispatches to.
type testFleet struct {
	workers []*Worker
	servers []*httptest.Server
	addrs   []string
}

func startFleet(t *testing.T, n int, cfg WorkerConfig) *testFleet {
	t.Helper()
	tf := &testFleet{}
	for i := 0; i < n; i++ {
		w := NewWorker(cfg)
		srv := httptest.NewServer(w.Handler())
		w.SetAddr(srv.URL)
		tf.workers = append(tf.workers, w)
		tf.servers = append(tf.servers, srv)
		tf.addrs = append(tf.addrs, srv.URL)
	}
	t.Cleanup(func() {
		for _, srv := range tf.servers {
			srv.Close()
		}
	})
	return tf
}

// newFleetSystem builds a System executing through a fleet coordinator wired
// the way restored -fleet-workers wires it (repository-or-restore/-prefix
// RepoCheck).
func newFleetSystem(t *testing.T, addrs []string, opts ...restore.Option) (*restore.System, *Coordinator) {
	t.Helper()
	sys := restore.New(opts...)
	coord := NewCoordinator(sys.Engine(), Config{
		FS:      sys.FS(),
		Workers: addrs,
		RepoCheck: func(path string) bool {
			return sys.Repository().ReferencesPath(path) || strings.HasPrefix(path, "restore/")
		},
	})
	sys.SetBackend(coord)
	return sys, coord
}

// seedFleetData loads identical seeded fact/dim tables into a system.
func seedFleetData(t *testing.T, s *restore.System, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var facts, dims []string
	for i := 0; i < 200; i++ {
		facts = append(facts, fmt.Sprintf("k%02d\t%d\t%d\tv%d",
			rng.Intn(20), rng.Intn(100), rng.Intn(10), rng.Intn(5)))
	}
	for i := 0; i < 20; i++ {
		dims = append(dims, fmt.Sprintf("k%02d\tname%d", i, i))
	}
	if err := s.LoadTSV("data/facts", "k, a:int, b:int, c", facts, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTSV("data/dims", "k, label", dims, 2); err != nil {
		t.Fatal(err)
	}
}

// randomFleetQuery builds a random pipeline; the small operator space repeats
// sub-plans across queries so the repository fills and rewrites kick in.
func randomFleetQuery(rng *rand.Rand, idx int) (src, out string) {
	out = fmt.Sprintf("out/q%d", idx)
	var sb strings.Builder
	sb.WriteString("F = load 'data/facts' as (k, a:int, b:int, c);\n")
	cur := "F"
	for i := 0; i < 1+rng.Intn(2); i++ {
		next := fmt.Sprintf("S%d", i)
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&sb, "%s = filter %s by a > %d;\n", next, cur, 10+10*rng.Intn(6))
		case 1:
			fmt.Fprintf(&sb, "%s = foreach %s generate k, a, b, c;\n", next, cur)
		case 2:
			fmt.Fprintf(&sb, "%s = distinct %s;\n", next, cur)
		}
		cur = next
	}
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&sb, "G = group %s by k;\nR = foreach G generate group, COUNT(%s), SUM(%s.a);\n", cur, cur, cur)
		cur = "R"
	case 1:
		sb.WriteString("D = load 'data/dims' as (k, label);\n")
		fmt.Fprintf(&sb, "J = join D by k, %s by k;\n", cur)
		cur = "J"
	case 2:
		fmt.Fprintf(&sb, "O = order %s by a desc, k;\n", cur)
		cur = "O"
	}
	fmt.Fprintf(&sb, "store %s into '%s';\n", cur, out)
	return sb.String(), out
}

// groupQuery is the canonical blocking query the fault tests run: one job,
// injected map-side sub-job stores (aggressive heuristic), a reduce phase.
const groupQuery = `F = load 'data/facts' as (k, a:int, b:int, c);
S = filter F by a > 20;
G = group S by k;
R = foreach G generate group, COUNT(S), SUM(S.a);
store R into 'out/fault';
`

// exportState captures repository + DFS for byte-level comparison.
func exportState(t *testing.T, s *restore.System) []byte {
	t.Helper()
	var repo, fsb bytes.Buffer
	if err := s.SaveState(&repo, &fsb); err != nil {
		t.Fatal(err)
	}
	return append(repo.Bytes(), fsb.Bytes()...)
}

// runAndRead executes one query and returns its output rows.
func runAndRead(t *testing.T, s *restore.System, src, out string) []string {
	t.Helper()
	res, err := s.Execute(src)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, src)
	}
	rows, err := s.ReadOutputTSV(res, out)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestFleetDifferentialOracle: a fleet-backed system must be observationally
// identical to the in-process oracle on seeded workloads — the same rewrite
// decisions, the same rows, and byte-identical final repository + DFS state.
func TestFleetDifferentialOracle(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tf := startFleet(t, 2, WorkerConfig{})
			oracle := restore.New()
			fleetSys, coord := newFleetSystem(t, tf.addrs)
			seedFleetData(t, oracle, seed)
			seedFleetData(t, fleetSys, seed)

			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 12; q++ {
				src, out := randomFleetQuery(rng, q)
				resO, err := oracle.Execute(src)
				if err != nil {
					t.Fatalf("oracle q%d: %v\n%s", q, err, src)
				}
				resF, err := fleetSys.Execute(src)
				if err != nil {
					t.Fatalf("fleet q%d: %v\n%s", q, err, src)
				}
				if len(resO.Rewrites) != len(resF.Rewrites) {
					t.Fatalf("q%d rewrite decisions diverged: oracle %d, fleet %d",
						q, len(resO.Rewrites), len(resF.Rewrites))
				}
				rowsO, err := oracle.ReadOutputTSV(resO, out)
				if err != nil {
					t.Fatal(err)
				}
				rowsF, err := fleetSys.ReadOutputTSV(resF, out)
				if err != nil {
					t.Fatal(err)
				}
				if strings.Join(rowsO, "\n") != strings.Join(rowsF, "\n") {
					t.Fatalf("q%d rows diverged: oracle %d rows, fleet %d rows\n%s",
						q, len(rowsO), len(rowsF), src)
				}
			}
			if want, got := exportState(t, oracle), exportState(t, fleetSys); !bytes.Equal(want, got) {
				t.Fatalf("final state diverged: oracle %d bytes, fleet %d bytes", len(want), len(got))
			}
			st := coord.Stats()
			if st.MapTasksDispatched == 0 {
				t.Fatal("fleet system dispatched no map tasks — backend not wired")
			}
			if st.TasksRetried != 0 || st.WorkerFailures != 0 {
				t.Fatalf("fault-free run recorded failures: %+v", st)
			}
		})
	}
}

// TestFleetWorkerFaultBeforeMap: a worker failing a map dispatch (HTTP 500)
// while staying alive forces a retry that succeeds; the query completes with
// rows identical to the in-process run.
func TestFleetWorkerFaultBeforeMap(t *testing.T) {
	tf := startFleet(t, 2, WorkerConfig{})
	oracle := restore.New()
	fleetSys, coord := newFleetSystem(t, tf.addrs)
	seedFleetData(t, oracle, 7)
	seedFleetData(t, fleetSys, 7)

	tf.workers[0].failNextMap.Store(1)
	want := runAndRead(t, oracle, groupQuery, "out/fault")
	got := runAndRead(t, fleetSys, groupQuery, "out/fault")
	if strings.Join(want, "\n") != strings.Join(got, "\n") {
		t.Fatalf("rows diverged after injected map fault: %d vs %d rows", len(want), len(got))
	}
	if st := coord.Stats(); st.TasksRetried == 0 {
		t.Fatalf("injected map fault not retried: %+v", st)
	}
}

// TestFleetWorkerCrashMidMap: a worker dying outright (server closed) during
// the map phase is declared dead and its tasks re-dispatched to the survivor.
func TestFleetWorkerCrashMidMap(t *testing.T) {
	tf := startFleet(t, 2, WorkerConfig{})
	oracle := restore.New()
	fleetSys, coord := newFleetSystem(t, tf.addrs)
	seedFleetData(t, oracle, 11)
	seedFleetData(t, fleetSys, 11)

	// Close before the query: every dispatch to it is a transport error, so
	// the first map task lands on a dead worker mid-stream.
	tf.servers[1].Close()
	want := runAndRead(t, oracle, groupQuery, "out/fault")
	got := runAndRead(t, fleetSys, groupQuery, "out/fault")
	if strings.Join(want, "\n") != strings.Join(got, "\n") {
		t.Fatalf("rows diverged after worker crash: %d vs %d rows", len(want), len(got))
	}
	st := coord.Stats()
	if st.WorkerFailures == 0 {
		t.Fatalf("crashed worker never declared dead: %+v", st)
	}
	if st.TasksRetried == 0 {
		t.Fatalf("no task re-dispatched off the dead worker: %+v", st)
	}
}

// TestFleetWorkerCrashAfterMap: a worker killed after the map phase takes its
// retained shuffle runs with it; the reduce phase must detect the missing
// holder, recover the lost map tasks, and still produce identical rows.
func TestFleetWorkerCrashAfterMap(t *testing.T) {
	tf := startFleet(t, 2, WorkerConfig{})
	oracle := restore.New()
	fleetSys, coord := newFleetSystem(t, tf.addrs)
	seedFleetData(t, oracle, 13)
	seedFleetData(t, fleetSys, 13)

	var once sync.Once
	coord.Engine().PhaseHook = func(jobID, phase string) {
		if phase == "map-done" {
			once.Do(func() { tf.servers[0].Close() })
		}
	}
	want := runAndRead(t, oracle, groupQuery, "out/fault")
	got := runAndRead(t, fleetSys, groupQuery, "out/fault")
	if strings.Join(want, "\n") != strings.Join(got, "\n") {
		t.Fatalf("rows diverged after post-map crash: %d vs %d rows", len(want), len(got))
	}
	st := coord.Stats()
	if st.WorkerFailures == 0 {
		t.Fatalf("post-map crash never declared dead: %+v", st)
	}
	if st.TasksRetried+st.TasksRecovered == 0 {
		t.Fatalf("lost shuffle runs never re-materialized: %+v", st)
	}
}

// TestFleetTornShufflePull: a truncated shuffle payload must be detected by
// the run decoder (record count mismatch), attributed to the holding peer,
// and retried — never silently folded into the merge.
func TestFleetTornShufflePull(t *testing.T) {
	tf := startFleet(t, 2, WorkerConfig{})
	oracle := restore.New()
	fleetSys, coord := newFleetSystem(t, tf.addrs)
	seedFleetData(t, oracle, 17)
	seedFleetData(t, fleetSys, 17)

	tf.workers[0].tornNextShuffle.Store(1)
	tf.workers[1].tornNextShuffle.Store(1)
	want := runAndRead(t, oracle, groupQuery, "out/fault")
	got := runAndRead(t, fleetSys, groupQuery, "out/fault")
	if strings.Join(want, "\n") != strings.Join(got, "\n") {
		t.Fatalf("rows diverged after torn shuffle pull: %d vs %d rows", len(want), len(got))
	}
	if st := coord.Stats(); st.TasksRetried == 0 {
		t.Fatalf("torn pull never retried: %+v", st)
	}
}

// TestFleetDuplicateCompletionIdempotent: re-dispatching an already-completed
// map task (what recovery does when two reduce partitions race) must be
// idempotent at the worker protocol level — the duplicate returns a
// byte-identical response, the retained run set is overwritten in place, and
// a reduce over the (twice-completed) runs still succeeds.
func TestFleetDuplicateCompletionIdempotent(t *testing.T) {
	tf := startFleet(t, 1, WorkerConfig{})
	sys := restore.New()
	seedFleetData(t, sys, 19)

	script, err := piglatin.Parse(groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := logical.Build(script)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := mrcompile.Compile(lp, "tmp/dup")
	if err != nil {
		t.Fatal(err)
	}
	job := wf.Jobs[0]
	if job.Blocking() == nil {
		t.Fatal("expected a blocking job")
	}
	env, err := mapred.EncodeJob(job)
	if err != nil {
		t.Fatal(err)
	}
	var loadID int
	for _, op := range job.Plan.Ops() {
		if op.Kind == physical.OpLoad {
			loadID = op.ID
			break
		}
	}
	input, err := sys.FS().ReadPartitionRaw("data/facts", 0)
	if err != nil {
		t.Fatal(err)
	}
	req := mapRequest{
		Key:         "dup-test",
		Job:         env,
		ReduceParts: 4,
		Combine:     true,
		Spec:        mapred.MapTaskSpec{TaskIdx: 0, LoadID: loadID, Partition: 0},
		Input:       input,
	}
	post := func(path string, in any) []byte {
		t.Helper()
		body, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(tf.addrs[0]+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s: %s", path, resp.Status, data)
		}
		return data
	}

	first := post("/v1/map", &req)
	w := tf.workers[0]
	w.mu.Lock()
	retained := len(w.jobs["dup-test"].runs)
	w.mu.Unlock()
	if retained == 0 {
		t.Fatal("map task retained no runs")
	}

	second := post("/v1/map", &req)
	if !bytes.Equal(first, second) {
		t.Fatalf("duplicate completion responses differ:\n%s\n%s", first, second)
	}
	w.mu.Lock()
	after := len(w.jobs["dup-test"].runs)
	w.mu.Unlock()
	if after != retained {
		t.Fatalf("duplicate completion grew retention: %d -> %d runs", retained, after)
	}

	// The twice-completed runs still serve a reduce.
	var mresp mapResponse
	if err := json.Unmarshal(second, &mresp); err != nil {
		t.Fatal(err)
	}
	for i := range mresp.Runs {
		mresp.Runs[i].Addr = tf.addrs[0]
	}
	var refs []mapred.RunRef
	for _, r := range mresp.Runs {
		if r.Part == mresp.Runs[0].Part {
			refs = append(refs, r)
		}
	}
	post("/v1/reduce", &reduceRequest{
		Key: "dup-test", Job: env, ReduceParts: 4, Combine: true,
		Part: mresp.Runs[0].Part, Refs: refs,
	})
}

// TestFleetKillWorkerRecoversFromRepository is the end-to-end recovery proof:
// with 3 workers and a worker killed after the map phase, every query still
// completes, and at least one lost map task is rebuilt from stored sub-job
// outputs (TasksRecovered) — ReStore's reuse-as-recovery — rather than
// re-executed from scratch.
func TestFleetKillWorkerRecoversFromRepository(t *testing.T) {
	tf := startFleet(t, 3, WorkerConfig{})
	oracle := restore.New()
	fleetSys, coord := newFleetSystem(t, tf.addrs)
	seedFleetData(t, oracle, 23)
	seedFleetData(t, fleetSys, 23)

	var once sync.Once
	coord.Engine().PhaseHook = func(jobID, phase string) {
		if phase == "map-done" {
			// Map-side sub-job stores are committed by now; killing a worker
			// forces the reduce phase to recover its lost runs, and the
			// stored partitions let it replay instead of re-execute.
			once.Do(func() { tf.servers[0].Close() })
		}
	}

	queries := []string{groupQuery}
	rng := rand.New(rand.NewSource(23))
	for q := 0; q < 5; q++ {
		src, _ := randomFleetQuery(rng, q)
		queries = append(queries, src)
	}
	for qi, src := range queries {
		out := "out/fault"
		if qi > 0 {
			out = fmt.Sprintf("out/q%d", qi-1)
		}
		want := runAndRead(t, oracle, src, out)
		got := runAndRead(t, fleetSys, src, out)
		if strings.Join(want, "\n") != strings.Join(got, "\n") {
			t.Fatalf("q%d rows diverged after worker kill: %d vs %d rows\n%s",
				qi, len(want), len(got), src)
		}
	}
	st := coord.Stats()
	if st.WorkerFailures == 0 {
		t.Fatalf("killed worker never declared dead: %+v", st)
	}
	if st.TasksRecovered == 0 {
		t.Fatalf("no lost task recovered from stored sub-job outputs (reuse as recovery): %+v", st)
	}
	alive := 0
	for _, w := range st.Workers {
		if w.Alive {
			alive++
		}
	}
	if alive != 2 {
		t.Fatalf("worker liveness wrong after kill: %+v", st.Workers)
	}
}

// BenchmarkFleetGroupQuery drives the canonical blocking query through a
// 2-worker fleet — the bench-fleet-smoke gate.
func BenchmarkFleetGroupQuery(b *testing.B) {
	tf := &testFleet{}
	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{})
		srv := httptest.NewServer(w.Handler())
		w.SetAddr(srv.URL)
		tf.workers = append(tf.workers, w)
		tf.servers = append(tf.servers, srv)
		tf.addrs = append(tf.addrs, srv.URL)
	}
	defer func() {
		for _, srv := range tf.servers {
			srv.Close()
		}
	}()
	sys := restore.New()
	coord := NewCoordinator(sys.Engine(), Config{FS: sys.FS(), Workers: tf.addrs})
	sys.SetBackend(coord)
	rng := rand.New(rand.NewSource(1))
	var facts []string
	for i := 0; i < 500; i++ {
		facts = append(facts, fmt.Sprintf("k%02d\t%d\t%d\tv%d",
			rng.Intn(20), rng.Intn(100), rng.Intn(10), rng.Intn(5)))
	}
	if err := sys.LoadTSV("data/facts", "k, a:int, b:int, c", facts, 4); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := strings.Replace(groupQuery, "out/fault", fmt.Sprintf("out/b%d", i), 1)
		if _, err := sys.Execute(src); err != nil {
			b.Fatal(err)
		}
	}
}
