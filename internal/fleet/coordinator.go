package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/physical"
)

// Config configures a fleet coordinator.
type Config struct {
	// FS is the coordinator-side DFS (the same one the engine commits to):
	// input partitions are read from it and shipped to workers, and replay
	// payloads for recovery are assembled from its stored sub-job outputs.
	FS *dfs.FS
	// Workers lists the worker base URLs tasks are dispatched to
	// (round-robin over the live ones).
	Workers []string
	// Client performs coordinator→worker requests; nil selects a default.
	Client *http.Client
	// RepoCheck reports whether a stored path may serve replay recovery.
	// The daemon wires it to the repository (stored sub-job outputs
	// short-circuit recovery; ReStore's reuse-as-recovery); nil accepts
	// every injected store the plan materialized.
	RepoCheck func(path string) bool
	// MaxRetries bounds how many times one task is re-dispatched before the
	// job fails; 0 selects a default of 3.
	MaxRetries int
	// ProbeTimeout bounds a liveness probe; 0 selects 2s.
	ProbeTimeout time.Duration
}

// Coordinator is the fleet-side mapred.TaskRunner and the restore.Backend a
// fleet-configured System executes through: it wraps an in-process engine
// (which keeps planning, commits, and stats) and ships the engine's tasks to
// worker processes, recovering from worker death by re-executing only the
// lost tasks — from repository-backed stored bytes when possible.
type Coordinator struct {
	cfg Config
	eng *mapred.Engine

	workers []*workerState
	rr      atomic.Uint64
	seq     atomic.Int64

	mu   sync.Mutex
	jobs map[*mapred.JobContext]*jobState

	mapDispatched    atomic.Int64
	reduceDispatched atomic.Int64
	tasksRetried     atomic.Int64
	tasksRecovered   atomic.Int64
	workerFailures   atomic.Int64
	shuffleBytes     atomic.Int64
}

// workerState tracks one worker's liveness and task counters.
type workerState struct {
	addr        string
	alive       atomic.Bool
	mapTasks    atomic.Int64
	reduceTasks atomic.Int64
	failures    atomic.Int64
}

// jobState is the coordinator's per-job-run dispatch memory: what each task
// was, who executed it last, and which runs it produced — the inputs
// recovery needs when a worker dies holding shuffle state.
type jobState struct {
	key string
	env []byte

	mu    sync.Mutex
	specs map[int]mapred.MapTaskSpec
	owner map[int]*workerState
	runs  map[int][]mapred.RunRef
}

// NewCoordinator wires a coordinator to the engine: the engine's TaskRunner
// becomes the fleet dispatch path while everything else about the engine
// (planning, DFS commits, stats, cost model) is unchanged. The engine's FS
// and cfg.FS must be the same filesystem.
func NewCoordinator(eng *mapred.Engine, cfg Config) *Coordinator {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	c := &Coordinator{cfg: cfg, eng: eng, jobs: make(map[*mapred.JobContext]*jobState)}
	for _, addr := range cfg.Workers {
		ws := &workerState{addr: addr}
		ws.alive.Store(true)
		c.workers = append(c.workers, ws)
	}
	eng.Runner = c
	return c
}

// RunWorkflow implements the execution backend: the wrapped engine runs the
// workflow, dispatching every task through this coordinator.
func (c *Coordinator) RunWorkflow(ctx context.Context, w *mapred.Workflow) (*mapred.WorkflowResult, error) {
	return c.eng.RunWorkflow(ctx, w)
}

// Engine returns the wrapped engine (tests tune its knobs through it).
func (c *Coordinator) Engine() *mapred.Engine { return c.eng }

// jobState returns (creating on first sight) the dispatch state of a job
// run, serializing the job into its wire envelope once.
func (c *Coordinator) jobState(jc *mapred.JobContext) (*jobState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if js, ok := c.jobs[jc]; ok {
		return js, nil
	}
	env, err := mapred.EncodeJob(jc.Job)
	if err != nil {
		return nil, err
	}
	js := &jobState{
		key:   fmt.Sprintf("%s#%d", jc.Job.ID, c.seq.Add(1)),
		env:   env,
		specs: make(map[int]mapred.MapTaskSpec),
		owner: make(map[int]*workerState),
		runs:  make(map[int][]mapred.RunRef),
	}
	c.jobs[jc] = js
	return js, nil
}

// ReleaseJob frees the job run's state here and (best-effort) on every live
// worker; the engine calls it when the job finishes.
func (c *Coordinator) ReleaseJob(jc *mapred.JobContext) {
	c.mu.Lock()
	js := c.jobs[jc]
	delete(c.jobs, jc)
	c.mu.Unlock()
	if js == nil {
		return
	}
	body, _ := json.Marshal(releaseRequest{Key: js.key})
	for _, w := range c.workers {
		if !w.alive.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.addr+"/v1/release", bytes.NewReader(body))
		if err == nil {
			if resp, err := c.cfg.Client.Do(req); err == nil {
				resp.Body.Close()
			}
		}
		cancel()
	}
}

// pickWorker round-robins over the live workers; nil when none remain.
func (c *Coordinator) pickWorker() *workerState {
	n := len(c.workers)
	for i := 0; i < n; i++ {
		w := c.workers[int(c.rr.Add(1))%n]
		if w.alive.Load() {
			return w
		}
	}
	return nil
}

// probe health-checks one address.
func (c *Coordinator) probe(addr string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// markDead records a worker failure.
func (c *Coordinator) markDead(w *workerState) {
	if w.alive.CompareAndSwap(true, false) {
		c.workerFailures.Add(1)
	}
	w.failures.Add(1)
}

func (c *Coordinator) workerByAddr(addr string) *workerState {
	for _, w := range c.workers {
		if w.addr == addr {
			return w
		}
	}
	return nil
}

// taskError is an application-level task failure (the task body itself
// errored on a healthy worker): never retried, never blamed on the worker.
type taskError struct{ err error }

func (e taskError) Error() string { return e.err.Error() }
func (e taskError) Unwrap() error { return e.err }

// post sends one JSON request to a worker and decodes the response into out.
// Worker-level failures (unreachable, 5xx) come back as plain errors;
// application-level failures (422) come back as taskError. badAddr reports
// the peer a reduce worker blamed for a failed shuffle pull.
func (c *Coordinator) post(ctx context.Context, w *workerState, path string, in, out any) (badAddr string, err error) {
	body, err := json.Marshal(in)
	if err != nil {
		return "", taskError{err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.addr+path, bytes.NewReader(body))
	if err != nil {
		return "", taskError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return "", fmt.Errorf("fleet: %s %s: %w", path, w.addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if json.Unmarshal(data, &er) != nil || er.Error == "" {
			er.Error = string(data)
		}
		err := fmt.Errorf("fleet: %s %s: %s: %s", path, w.addr, resp.Status, er.Error)
		if resp.StatusCode == http.StatusUnprocessableEntity {
			return er.BadAddr, taskError{err}
		}
		return er.BadAddr, err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return "", fmt.Errorf("fleet: %s %s: decode: %w", path, w.addr, err)
	}
	return "", nil
}

// dispatchMap sends one map request to a live worker, retrying on worker
// failure (each failed worker is probed and marked dead before moving on).
func (c *Coordinator) dispatchMap(ctx context.Context, req *mapRequest) (*mapred.MapResult, *workerState, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		w := c.pickWorker()
		if w == nil {
			if lastErr != nil {
				return nil, nil, fmt.Errorf("fleet: no live workers: %w", lastErr)
			}
			return nil, nil, errors.New("fleet: no live workers")
		}
		if attempt > 0 {
			c.tasksRetried.Add(1)
		}
		c.mapDispatched.Add(1)
		var resp mapResponse
		_, err := c.post(ctx, w, "/v1/map", req, &resp)
		if err == nil {
			w.mapTasks.Add(1)
			for i := range resp.Runs {
				resp.Runs[i].Addr = w.addr
			}
			return &mapred.MapResult{
				Stores:       resp.Stores,
				Runs:         resp.Runs,
				InputBytes:   resp.InputBytes,
				ShuffleBytes: resp.ShuffleBytes,
			}, w, nil
		}
		var te taskError
		if errors.As(err, &te) || ctx.Err() != nil {
			return nil, nil, err
		}
		lastErr = err
		if !c.probe(w.addr) {
			c.markDead(w)
		}
	}
	return nil, nil, fmt.Errorf("fleet: map task %d exhausted retries: %w", req.Spec.TaskIdx, lastErr)
}

// RunMapTask implements mapred.TaskRunner: read the input partition, ship it
// to a worker, remember who ran the task (recovery needs it), and hand the
// engine a result whose runs point at that worker.
func (c *Coordinator) RunMapTask(ctx context.Context, jc *mapred.JobContext, spec mapred.MapTaskSpec) (*mapred.MapResult, error) {
	js, err := c.jobState(jc)
	if err != nil {
		return nil, err
	}
	load := jc.Job.Plan.Op(spec.LoadID)
	input, err := c.cfg.FS.ReadPartitionRaw(load.Path, spec.Partition)
	if err != nil {
		return nil, err
	}
	req := mapRequest{
		Key:         js.key,
		Job:         js.env,
		ReduceParts: jc.ReduceParts,
		Combine:     jc.Combining(),
		Spec:        spec,
		Input:       input,
	}
	mr, w, err := c.dispatchMap(ctx, &req)
	if err != nil {
		return nil, err
	}
	js.mu.Lock()
	js.specs[spec.TaskIdx] = spec
	js.owner[spec.TaskIdx] = w
	js.runs[spec.TaskIdx] = mr.Runs
	js.mu.Unlock()
	return mr, nil
}

// RunReducePartition implements mapred.TaskRunner: dispatch the partition to
// a worker, and on failure decide whether the executor died, a run-holding
// peer died (recover its tasks and retry with fresh refs), or the pull was
// transiently torn (retry as-is).
func (c *Coordinator) RunReducePartition(ctx context.Context, jc *mapred.JobContext, part int, refs []mapred.RunRef) (*mapred.ReduceResult, error) {
	js, err := c.jobState(jc)
	if err != nil {
		return nil, err
	}
	req := reduceRequest{
		Key:         js.key,
		Job:         js.env,
		ReduceParts: jc.ReduceParts,
		Combine:     jc.Combining(),
		Part:        part,
		Refs:        refs,
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		w := c.pickWorker()
		if w == nil {
			if lastErr != nil {
				return nil, fmt.Errorf("fleet: no live workers: %w", lastErr)
			}
			return nil, errors.New("fleet: no live workers")
		}
		if attempt > 0 {
			c.tasksRetried.Add(1)
		}
		c.reduceDispatched.Add(1)
		var resp reduceResponse
		badAddr, err := c.post(ctx, w, "/v1/reduce", &req, &resp)
		if err == nil {
			w.reduceTasks.Add(1)
			c.shuffleBytes.Add(resp.PulledBytes)
			return &mapred.ReduceResult{Stores: resp.Stores}, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		var te taskError
		isTask := errors.As(err, &te)
		switch {
		case badAddr != "":
			// A shuffle pull failed against badAddr. A live holder means a
			// transient/torn pull — retry as-is. A dead one means its runs
			// are gone — recover the lost tasks and retry with fresh refs.
			if c.probe(badAddr) {
				continue
			}
			if ws := c.workerByAddr(badAddr); ws != nil {
				c.markDead(ws)
			}
			fresh, rerr := c.recoverLostRuns(ctx, jc, js, req.Refs, badAddr, part)
			if rerr != nil {
				return nil, rerr
			}
			req.Refs = fresh
		case isTask:
			// The task body itself failed on a healthy worker: not
			// recoverable by retrying elsewhere.
			return nil, err
		default:
			// The reduce executor itself is unreachable or sick.
			if !c.probe(w.addr) {
				c.markDead(w)
				// Its retained runs died with it; recover any refs that
				// pointed there before retrying on another worker.
				fresh, rerr := c.recoverLostRuns(ctx, jc, js, req.Refs, w.addr, part)
				if rerr != nil {
					return nil, rerr
				}
				req.Refs = fresh
			}
		}
	}
	return nil, fmt.Errorf("fleet: reduce partition %d exhausted retries: %w", part, lastErr)
}

// recoverLostRuns re-materializes the runs of every map task in refs whose
// holder is deadAddr, returning refs updated to the new holders. For each
// lost task the repository is consulted first: when every blocking input of
// the task was materialized by an (approved) injected map-side store, the
// task is replayed from those stored partition bytes (counted in
// TasksRecovered) instead of re-executed from its input (TasksRetried). If
// another partition's recovery already re-ran the task on a live worker, its
// fresh runs are reused outright.
func (c *Coordinator) recoverLostRuns(ctx context.Context, jc *mapred.JobContext, js *jobState, refs []mapred.RunRef, deadAddr string, part int) ([]mapred.RunRef, error) {
	js.mu.Lock()
	defer js.mu.Unlock()

	fresh := make([]mapred.RunRef, len(refs))
	copy(fresh, refs)
	for i, ref := range fresh {
		if ref.Addr != deadAddr {
			continue
		}
		task := ref.TaskIdx
		if w := js.owner[task]; w != nil && w.alive.Load() && w.addr != deadAddr {
			// Already recovered on behalf of another partition.
			if nr, ok := runForPart(js.runs[task], part); ok {
				fresh[i] = nr
				continue
			}
		}
		spec, ok := js.specs[task]
		if !ok {
			return nil, fmt.Errorf("fleet: lost run of unknown task %d", task)
		}
		req := mapRequest{
			Key:         js.key,
			Job:         js.env,
			ReduceParts: jc.ReduceParts,
			Combine:     jc.Combining(),
			Spec:        spec,
		}
		replayed := false
		if stored, ok := c.replayPayloads(jc, spec); ok {
			req.Replay = true
			req.ReplayTags = stored
			replayed = true
		} else {
			load := jc.Job.Plan.Op(spec.LoadID)
			input, err := c.cfg.FS.ReadPartitionRaw(load.Path, spec.Partition)
			if err != nil {
				return nil, err
			}
			req.Input = input
		}
		mr, w, err := c.dispatchMap(ctx, &req)
		if err != nil {
			return nil, fmt.Errorf("fleet: recover task %d: %w", task, err)
		}
		if replayed {
			c.tasksRecovered.Add(1)
		} else {
			c.tasksRetried.Add(1)
		}
		js.owner[task] = w
		js.runs[task] = mr.Runs
		nr, ok := runForPart(mr.Runs, part)
		if !ok {
			return nil, fmt.Errorf("fleet: recovered task %d produced no run for partition %d", task, part)
		}
		fresh[i] = nr
	}
	return fresh, nil
}

// runForPart finds the run ref for one reduce partition.
func runForPart(runs []mapred.RunRef, part int) (mapred.RunRef, bool) {
	for _, r := range runs {
		if r.Part == part {
			return r, true
		}
	}
	return mapred.RunRef{}, false
}

// replayPayloads assembles the reuse-as-recovery inputs for one lost map
// task: for every blocking-input tag, the plan must contain an injected
// map-side store materializing that input (resolved through Split
// transparency), the store's path must pass RepoCheck (the repository
// consultation), and the task's partition of it must be readable. Returns
// false when any tag lacks stored coverage — the caller falls back to full
// re-execution.
func (c *Coordinator) replayPayloads(jc *mapred.JobContext, spec mapred.MapTaskSpec) (map[int][]byte, bool) {
	blocking := jc.Job.Blocking()
	if blocking == nil {
		return nil, false
	}
	plan := jc.Job.Plan
	resolve := func(id int) int {
		for plan.Op(id).Kind == physical.OpSplit {
			id = plan.Op(id).Inputs[0]
		}
		return id
	}
	out := make(map[int][]byte, len(blocking.Inputs))
	for tag, inID := range blocking.Inputs {
		pid := resolve(inID)
		var found *physical.Operator
		for _, st := range plan.Sinks() {
			if st.Injected && jc.Job.MapSide(st.ID) && resolve(st.Inputs[0]) == pid {
				found = st
				break
			}
		}
		if found == nil {
			return nil, false
		}
		if c.cfg.RepoCheck != nil && !c.cfg.RepoCheck(found.Path) {
			return nil, false
		}
		data, err := c.cfg.FS.ReadPartitionRaw(found.Path, spec.TaskIdx)
		if err != nil {
			return nil, false
		}
		out[tag] = data
	}
	return out, true
}

// WorkerStatus is one worker's row in the fleet stats.
type WorkerStatus struct {
	// Addr is the worker's base URL.
	Addr string `json:"addr"`
	// Alive reports whether the coordinator still dispatches to it.
	Alive bool `json:"alive"`
	// MapTasks / ReduceTasks / Failures count dispatches to this worker.
	MapTasks    int64 `json:"mapTasks"`
	ReduceTasks int64 `json:"reduceTasks"`
	Failures    int64 `json:"failures"`
}

// Stats is a point-in-time snapshot of the coordinator's counters, surfaced
// through /v1/metrics, the Prometheus exposition, and `restorectl fleet`.
type Stats struct {
	// Workers lists per-worker liveness and task counts.
	Workers []WorkerStatus `json:"workers"`
	// MapTasksDispatched / ReduceTasksDispatched count dispatch attempts.
	MapTasksDispatched    int64 `json:"mapTasksDispatched"`
	ReduceTasksDispatched int64 `json:"reduceTasksDispatched"`
	// TasksRetried counts re-dispatches after worker failure (full
	// re-execution); TasksRecovered counts lost tasks rebuilt from
	// repository-backed stored outputs instead (reuse as recovery).
	TasksRetried   int64 `json:"tasksRetried"`
	TasksRecovered int64 `json:"tasksRecovered"`
	// WorkerFailures counts live→dead transitions.
	WorkerFailures int64 `json:"workerFailures"`
	// ShuffleBytesPulled totals the bytes reduce workers pulled from peers.
	ShuffleBytesPulled int64 `json:"shuffleBytesPulled"`
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		MapTasksDispatched:    c.mapDispatched.Load(),
		ReduceTasksDispatched: c.reduceDispatched.Load(),
		TasksRetried:          c.tasksRetried.Load(),
		TasksRecovered:        c.tasksRecovered.Load(),
		WorkerFailures:        c.workerFailures.Load(),
		ShuffleBytesPulled:    c.shuffleBytes.Load(),
	}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			Addr:        w.addr,
			Alive:       w.alive.Load(),
			MapTasks:    w.mapTasks.Load(),
			ReduceTasks: w.reduceTasks.Load(),
			Failures:    w.failures.Load(),
		})
	}
	return st
}
