// Package cluster models the execution time of MapReduce jobs on the paper's
// 15-node Hadoop cluster (one master plus 14 workers, 4 map and 2 reduce
// slots each). The MapReduce engine in internal/mapred really executes jobs
// over real tuples; this package converts the engine's byte/record counters
// into simulated wall-clock time using the paper's cost structure:
//
//	ET(Job)    = Tload + Σ ET(OPi) + Tsort + Tstore          (Equation 2)
//	Ttotal(Jn) = ET(Jn) + max over dependencies Ttotal(Ji)   (Equation 1)
//
// Tasks are scheduled in waves over the available slots, so a job reading
// 150 GB runs ~2400 map tasks in ~43 waves while a job reading a 3 GB stored
// sub-job output finishes in one wave — which is exactly the mechanism behind
// the paper's reuse speedups.
//
// A ScaleFactor extrapolates the laptop-sized test data to the paper's
// 15 GB / 150 GB instances: all byte counters are multiplied by it before
// costing. Execution (and therefore correctness) is unaffected.
package cluster

import (
	"fmt"
	"time"
)

// Config describes the simulated cluster and its cost parameters. Bandwidth
// values are per-slot effective throughputs in MB/s; they were calibrated so
// the no-reuse PigMix queries land in the paper's "minutes on Hadoop" range
// (see EXPERIMENTS.md).
type Config struct {
	Workers              int   // worker nodes running tasks
	MapSlotsPerWorker    int   // concurrent map tasks per worker
	ReduceSlotsPerWorker int   // concurrent reduce tasks per worker
	SplitSize            int64 // bytes per map task (HDFS block)
	Replication          int   // DFS replication factor for writes

	DiskReadMBps  float64 // per-slot read bandwidth
	DiskWriteMBps float64 // per-slot write bandwidth (before replication)
	NetworkMBps   float64 // per-node shuffle bandwidth
	CPUMBps       float64 // per-slot map pipeline rate (decode + evaluate)
	// ReduceCPUMBps is the per-slot reduce pipeline rate. Reducers stream
	// pre-sorted, pre-decoded runs through simple fold logic, so they move
	// bytes considerably faster than map pipelines.
	ReduceCPUMBps float64
	SortMBps      float64 // per-slot sort/merge rate during shuffle

	JobStartup  time.Duration // job setup/teardown (JobTracker overhead)
	TaskStartup time.Duration // per-task JVM/scheduling overhead
	// StoreCommitTime is the fixed per-job cost of each *extra* output the
	// job writes (ReStore-injected stores): output-committer renames,
	// NameNode metadata operations, and commit-protocol serialization.
	// Being size-independent, it is why the paper measures HIGHER
	// materialization overhead on the 15 GB instance than on 150 GB
	// (Figure 11): the same fixed cost lands on a much shorter job.
	StoreCommitTime time.Duration

	BytesPerReducer int64 // sizing rule for the number of reduce tasks

	// ScaleFactor multiplies all byte counters before costing, mapping the
	// real (small) test data onto the paper's data sizes. 1 = no scaling.
	ScaleFactor float64
}

// Default returns the paper's cluster: 14 workers with 4 map + 2 reduce
// slots each, 64 MB splits, 3-way replication, and throughputs calibrated to
// 2006-era Opteron/SCSI hardware.
func Default() *Config {
	return &Config{
		Workers:              14,
		MapSlotsPerWorker:    4,
		ReduceSlotsPerWorker: 2,
		SplitSize:            64 << 20,
		Replication:          3,
		DiskReadMBps:         30,
		DiskWriteMBps:        25,
		NetworkMBps:          40,
		CPUMBps:              8,
		ReduceCPUMBps:        20,
		SortMBps:             20,
		JobStartup:           20 * time.Second,
		TaskStartup:          2 * time.Second,
		StoreCommitTime:      45 * time.Second,
		BytesPerReducer:      256 << 20,
		ScaleFactor:          1,
	}
}

// Validate rejects nonsensical configurations.
func (c *Config) Validate() error {
	if c.Workers < 1 || c.MapSlotsPerWorker < 1 || c.ReduceSlotsPerWorker < 1 {
		return fmt.Errorf("cluster: need at least one worker and one slot of each kind")
	}
	if c.SplitSize < 1 || c.BytesPerReducer < 1 {
		return fmt.Errorf("cluster: split size and bytes-per-reducer must be positive")
	}
	if c.DiskReadMBps <= 0 || c.DiskWriteMBps <= 0 || c.NetworkMBps <= 0 || c.CPUMBps <= 0 || c.ReduceCPUMBps <= 0 || c.SortMBps <= 0 {
		return fmt.Errorf("cluster: all bandwidths must be positive")
	}
	if c.Replication < 1 {
		return fmt.Errorf("cluster: replication must be >= 1")
	}
	if c.ScaleFactor <= 0 {
		return fmt.Errorf("cluster: scale factor must be positive")
	}
	return nil
}

// MapSlots returns the cluster-wide number of concurrent map tasks.
func (c *Config) MapSlots() int { return c.Workers * c.MapSlotsPerWorker }

// ReduceSlots returns the cluster-wide number of concurrent reduce tasks.
func (c *Config) ReduceSlots() int { return c.Workers * c.ReduceSlotsPerWorker }

// JobStats carries the real (unscaled) execution counters of one MapReduce
// job, as measured by the engine.
type JobStats struct {
	// InputBytes is the total bytes loaded from the DFS by map tasks.
	InputBytes int64
	// ShuffleBytes is the map-output bytes sorted and moved to reducers
	// (zero for map-only jobs).
	ShuffleBytes int64
	// OutputBytes is the bytes written by the job's terminal Store(s).
	OutputBytes int64
	// MapStoreBytes / ReduceStoreBytes are the bytes written by Store
	// operators ReStore injected into the map / reduce phase to
	// materialize sub-jobs. They add write cost to the respective phase.
	MapStoreBytes    int64
	ReduceStoreBytes int64
	// InjectedStores counts the extra Store operators ReStore added; each
	// one pays the fixed StoreCommitTime.
	InjectedStores int
	// HasReduce distinguishes map-only jobs.
	HasReduce bool
}

// Times is the simulated timing breakdown of one job.
type Times struct {
	Map     time.Duration
	Shuffle time.Duration
	Reduce  time.Duration
	Total   time.Duration

	MapTasks    int
	MapWaves    int
	ReduceTasks int
	ReduceWaves int

	MapTaskAvg    time.Duration
	ReduceTaskAvg time.Duration
}

func (c *Config) scale(b int64) float64 { return float64(b) * c.ScaleFactor }

// seconds converts (bytes, MB/s) to seconds.
func seconds(bytes float64, mbps float64) float64 {
	return bytes / (mbps * (1 << 20))
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 1
	}
	return (a + b - 1) / b
}

// Simulate computes the wall-clock time of one job under Equation 2 with
// wave-based task scheduling.
func (c *Config) Simulate(s JobStats) Times {
	var t Times
	in := c.scale(s.InputBytes)
	shuffle := c.scale(s.ShuffleBytes)
	out := c.scale(s.OutputBytes)
	mapStore := c.scale(s.MapStoreBytes)
	reduceStore := c.scale(s.ReduceStoreBytes)

	// --- Map phase ---
	t.MapTasks = int(ceilDiv(int64(in), c.SplitSize))
	if t.MapTasks < 1 {
		t.MapTasks = 1
	}
	t.MapWaves = (t.MapTasks + c.MapSlots() - 1) / c.MapSlots()
	perMapIn := in / float64(t.MapTasks)
	// Map-side writes: shuffle spill (unreplicated local disk), plus the
	// job output when map-only, plus injected sub-job stores (replicated).
	perMapSpill := shuffle / float64(t.MapTasks)
	perMapStore := mapStore / float64(t.MapTasks) * float64(c.Replication)
	if !s.HasReduce {
		perMapStore += out / float64(t.MapTasks) * float64(c.Replication)
	}
	mapTaskSec := c.TaskStartup.Seconds() +
		seconds(perMapIn, c.DiskReadMBps) + // Tload
		seconds(perMapIn, c.CPUMBps) + // Σ ET(OPi), map side
		seconds(perMapSpill, c.DiskWriteMBps) +
		seconds(perMapStore, c.DiskWriteMBps) // Tstore contributions
	t.MapTaskAvg = durSec(mapTaskSec)
	t.Map = durSec(mapTaskSec * float64(t.MapWaves))

	commit := time.Duration(s.InjectedStores) * c.StoreCommitTime
	if !s.HasReduce {
		t.Total = c.JobStartup + t.Map + commit
		return t
	}

	// --- Shuffle / sort (Tsort) ---
	t.ReduceTasks = int(ceilDiv(int64(shuffle), c.BytesPerReducer))
	if t.ReduceTasks < 1 {
		t.ReduceTasks = 1
	}
	if max := c.ReduceSlots(); t.ReduceTasks > max {
		t.ReduceTasks = max
	}
	t.ReduceWaves = (t.ReduceTasks + c.ReduceSlots() - 1) / c.ReduceSlots()
	aggNet := c.NetworkMBps * float64(c.Workers)
	sortSec := seconds(shuffle, aggNet) +
		seconds(shuffle/float64(t.ReduceTasks), c.SortMBps)
	t.Shuffle = durSec(sortSec)

	// --- Reduce phase ---
	perRedIn := shuffle / float64(t.ReduceTasks)
	perRedOut := (out + reduceStore) / float64(t.ReduceTasks) * float64(c.Replication)
	redTaskSec := c.TaskStartup.Seconds() +
		seconds(perRedIn, c.ReduceCPUMBps) + // Σ ET(OPi), reduce side
		seconds(perRedOut, c.DiskWriteMBps) // Tstore
	t.ReduceTaskAvg = durSec(redTaskSec)
	t.Reduce = durSec(redTaskSec * float64(t.ReduceWaves))

	t.Total = c.JobStartup + t.Map + t.Shuffle + t.Reduce + commit
	return t
}

func durSec(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// CriticalPath implements Equation 1 over a workflow DAG: the completion
// time of each job is its own duration plus the maximum completion time of
// its dependencies; the workflow time is the maximum over all jobs. deps maps
// job id -> dependency ids; durations maps job id -> simulated duration.
func CriticalPath(durations map[string]time.Duration, deps map[string][]string) (time.Duration, error) {
	memo := make(map[string]time.Duration, len(durations))
	visiting := make(map[string]bool)
	var total func(id string) (time.Duration, error)
	total = func(id string) (time.Duration, error) {
		if d, ok := memo[id]; ok {
			return d, nil
		}
		if visiting[id] {
			return 0, fmt.Errorf("cluster: dependency cycle at job %q", id)
		}
		visiting[id] = true
		defer delete(visiting, id)
		d, ok := durations[id]
		if !ok {
			return 0, fmt.Errorf("cluster: unknown job %q in dependency graph", id)
		}
		var maxDep time.Duration
		for _, dep := range deps[id] {
			dd, err := total(dep)
			if err != nil {
				return 0, err
			}
			if dd > maxDep {
				maxDep = dd
			}
		}
		memo[id] = d + maxDep
		return memo[id], nil
	}
	var max time.Duration
	for id := range durations {
		d, err := total(id)
		if err != nil {
			return 0, err
		}
		if d > max {
			max = d
		}
	}
	return max, nil
}
