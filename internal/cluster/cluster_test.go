package cluster

import (
	"testing"
	"time"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	c := Default()
	if c.MapSlots() != 56 || c.ReduceSlots() != 28 {
		t.Errorf("slots = %d/%d, want 56/28 (paper cluster)", c.MapSlots(), c.ReduceSlots())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.MapSlotsPerWorker = 0 },
		func(c *Config) { c.ReduceSlotsPerWorker = 0 },
		func(c *Config) { c.SplitSize = 0 },
		func(c *Config) { c.DiskReadMBps = 0 },
		func(c *Config) { c.DiskWriteMBps = -1 },
		func(c *Config) { c.NetworkMBps = 0 },
		func(c *Config) { c.CPUMBps = 0 },
		func(c *Config) { c.ReduceCPUMBps = 0 },
		func(c *Config) { c.SortMBps = 0 },
		func(c *Config) { c.Replication = 0 },
		func(c *Config) { c.ScaleFactor = 0 },
		func(c *Config) { c.BytesPerReducer = 0 },
	}
	for i, m := range mutations {
		c := Default()
		m(c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSimulateMapOnlyScalesWithInput(t *testing.T) {
	c := Default()
	small := c.Simulate(JobStats{InputBytes: 1 << 30, OutputBytes: 1 << 20})
	big := c.Simulate(JobStats{InputBytes: 150 << 30, OutputBytes: 1 << 20})
	if big.Total <= small.Total {
		t.Errorf("150GB (%v) should take longer than 1GB (%v)", big.Total, small.Total)
	}
	if small.ReduceTasks != 0 || small.Reduce != 0 {
		t.Errorf("map-only job has reduce component: %+v", small)
	}
	// 150GB at 64MB splits = 2400 tasks, ceil(2400/56) = 43 waves.
	if big.MapTasks != 2400 || big.MapWaves != 43 {
		t.Errorf("map tasks/waves = %d/%d, want 2400/43", big.MapTasks, big.MapWaves)
	}
}

func TestSimulateReduceJob(t *testing.T) {
	c := Default()
	s := JobStats{
		InputBytes:   10 << 30,
		ShuffleBytes: 4 << 30,
		OutputBytes:  1 << 30,
		HasReduce:    true,
	}
	ts := c.Simulate(s)
	if ts.Shuffle <= 0 || ts.Reduce <= 0 {
		t.Errorf("reduce job missing phases: %+v", ts)
	}
	if ts.Total != c.JobStartup+ts.Map+ts.Shuffle+ts.Reduce {
		t.Error("total != sum of phases + startup")
	}
	// 4GB shuffle at 256MB per reducer = 16 reduce tasks.
	if ts.ReduceTasks != 16 {
		t.Errorf("reduce tasks = %d, want 16", ts.ReduceTasks)
	}
}

func TestReduceTasksCappedAtSlots(t *testing.T) {
	c := Default()
	ts := c.Simulate(JobStats{InputBytes: 1 << 40, ShuffleBytes: 1 << 40, HasReduce: true})
	if ts.ReduceTasks != c.ReduceSlots() {
		t.Errorf("reduce tasks = %d, want capped at %d", ts.ReduceTasks, c.ReduceSlots())
	}
}

func TestInjectedStoreAddsOverhead(t *testing.T) {
	c := Default()
	base := JobStats{InputBytes: 10 << 30, ShuffleBytes: 1 << 30, OutputBytes: 1 << 20, HasReduce: true}
	withStore := base
	withStore.MapStoreBytes = 3 << 30
	a, b := c.Simulate(base), c.Simulate(withStore)
	if b.Total <= a.Total {
		t.Errorf("injected map store did not add time: %v vs %v", a.Total, b.Total)
	}
	// A large store in the reduce phase (the paper's L6 case) hurts more
	// than the same bytes in the map phase, because few reduce tasks share
	// the write.
	mapHeavy := base
	mapHeavy.MapStoreBytes = 5 << 30
	redHeavy := base
	redHeavy.ReduceStoreBytes = 5 << 30
	mt, rt := c.Simulate(mapHeavy), c.Simulate(redHeavy)
	if rt.Total <= mt.Total {
		t.Errorf("reduce-side store (%v) should cost more than map-side (%v)", rt.Total, mt.Total)
	}
}

func TestScaleFactorExtrapolates(t *testing.T) {
	c := Default()
	small := c.Simulate(JobStats{InputBytes: 1 << 20})
	c.ScaleFactor = 150 * 1024 // 1MB -> 150GB
	big := c.Simulate(JobStats{InputBytes: 1 << 20})
	if big.Total < 10*small.Total {
		t.Errorf("scale factor barely changed time: %v -> %v", small.Total, big.Total)
	}
	if big.Map < 100*small.Map {
		t.Errorf("map phase should scale ~linearly: %v -> %v", small.Map, big.Map)
	}
	if big.MapTasks != 2400 {
		t.Errorf("scaled map tasks = %d, want 2400", big.MapTasks)
	}
}

func TestFixedCostsDominateSmallJobs(t *testing.T) {
	// A tiny job should still pay startup: this is why reuse speedups
	// saturate and why overhead ratios are worse on the 15GB instance.
	c := Default()
	tiny := c.Simulate(JobStats{InputBytes: 1})
	if tiny.Total < c.JobStartup {
		t.Errorf("tiny job (%v) cheaper than job startup (%v)", tiny.Total, c.JobStartup)
	}
}

func TestCriticalPathLinearChain(t *testing.T) {
	dur := map[string]time.Duration{"a": time.Minute, "b": 2 * time.Minute, "c": 3 * time.Minute}
	deps := map[string][]string{"b": {"a"}, "c": {"b"}}
	got, err := CriticalPath(dur, deps)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6*time.Minute {
		t.Errorf("chain = %v, want 6m", got)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	// Equation 1: job waits for its slowest dependency.
	dur := map[string]time.Duration{
		"load1": 10 * time.Minute,
		"load2": 2 * time.Minute,
		"join":  5 * time.Minute,
	}
	deps := map[string][]string{"join": {"load1", "load2"}}
	got, err := CriticalPath(dur, deps)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15*time.Minute {
		t.Errorf("diamond = %v, want 15m", got)
	}
}

func TestCriticalPathErrors(t *testing.T) {
	if _, err := CriticalPath(map[string]time.Duration{"a": 1}, map[string][]string{"a": {"missing"}}); err == nil {
		t.Error("unknown dependency accepted")
	}
	if _, err := CriticalPath(
		map[string]time.Duration{"a": 1, "b": 1},
		map[string][]string{"a": {"b"}, "b": {"a"}}); err == nil {
		t.Error("cycle accepted")
	}
}

func TestReuseSpeedupShape(t *testing.T) {
	// The headline mechanism: a query over 150GB vs the same query reading
	// a 3GB stored sub-job output. The paper reports order-of-magnitude
	// speedups at 150GB (avg 24.4) and much smaller at 15GB (avg 3.0).
	c := Default()
	full := c.Simulate(JobStats{InputBytes: 150 << 30, ShuffleBytes: 2 << 30, OutputBytes: 1 << 20, HasReduce: true})
	reuse := c.Simulate(JobStats{InputBytes: 3 << 30, ShuffleBytes: 2 << 30, OutputBytes: 1 << 20, HasReduce: true})
	speedup150 := full.Total.Seconds() / reuse.Total.Seconds()
	if speedup150 < 5 {
		t.Errorf("150GB speedup = %.1f, want >5", speedup150)
	}
	full15 := c.Simulate(JobStats{InputBytes: 15 << 30, ShuffleBytes: 200 << 20, OutputBytes: 1 << 20, HasReduce: true})
	reuse15 := c.Simulate(JobStats{InputBytes: 300 << 20, ShuffleBytes: 200 << 20, OutputBytes: 1 << 20, HasReduce: true})
	speedup15 := full15.Total.Seconds() / reuse15.Total.Seconds()
	if speedup15 >= speedup150 {
		t.Errorf("speedup should grow with data size: 15GB=%.1f, 150GB=%.1f", speedup15, speedup150)
	}
}
