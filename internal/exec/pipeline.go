// Package exec evaluates the non-blocking portion of a physical plan inside
// a single map or reduce task. A Pipeline is a push-based dataflow: the task
// pushes input tuples into entry operators (Loads in the map phase, the
// blocking operator's output in the reduce phase); tuples stream through
// Foreach/Filter/Split/Union nodes and arrive at registered outputs (shuffle
// collectors or DFS store writers).
package exec

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/types"
)

// Output receives the tuples produced by one operator of the pipeline.
type Output func(t types.Tuple) error

// Pipeline is a compiled per-task executor over a subset of a plan's
// operators. It is not safe for concurrent use: each task builds its own.
type Pipeline struct {
	plan    *physical.Plan
	include map[int]bool
	nodes   map[int]*node
}

type node struct {
	op        *physical.Operator
	consumers []*node
	outputs   []Output
}

// NewPipeline compiles the operators in include (a subset of plan op IDs,
// closed under the edges the task executes). Tuples are delivered to every
// consumer inside the subset and to every output registered with SetOutput.
func NewPipeline(plan *physical.Plan, include map[int]bool) *Pipeline {
	p := &Pipeline{plan: plan, include: include, nodes: make(map[int]*node)}
	for id := range include {
		if op := plan.Op(id); op != nil {
			p.nodes[id] = &node{op: op}
		}
	}
	for id, n := range p.nodes {
		for _, c := range plan.Consumers(id) {
			if include[c.ID] {
				n.consumers = append(n.consumers, p.nodes[c.ID])
			}
		}
		// Deterministic consumer order.
		sort.Slice(n.consumers, func(i, j int) bool { return n.consumers[i].op.ID < n.consumers[j].op.ID })
	}
	return p
}

// SetOutput registers a callback receiving the output tuples of the given
// operator. Multiple callbacks may be registered on the same operator (e.g.
// a self-join shuffles the same producer under two tags).
func (p *Pipeline) SetOutput(opID int, out Output) error {
	n := p.nodes[opID]
	if n == nil {
		return fmt.Errorf("exec: operator %d not in pipeline", opID)
	}
	n.outputs = append(n.outputs, out)
	return nil
}

// Validate checks that every included operator either has a consumer inside
// the subset or a registered output, so no tuples silently vanish.
func (p *Pipeline) Validate() error {
	for id, n := range p.nodes {
		if len(n.consumers) == 0 && len(n.outputs) == 0 {
			return fmt.Errorf("exec: operator %d (%s) has no consumers and no outputs", id, n.op.Kind)
		}
	}
	return nil
}

// Push feeds one tuple into the operator with the given ID. For Load
// operators the tuple is the loaded record; for other entry points it is the
// operator's input.
func (p *Pipeline) Push(opID int, t types.Tuple) error {
	n := p.nodes[opID]
	if n == nil {
		return fmt.Errorf("exec: push into unknown operator %d", opID)
	}
	return p.process(n, t)
}

// PushOutputOf delivers a tuple as if it were the *output* of the given
// operator, bypassing its evaluation. The reduce phase uses this to inject
// the blocking operator's results into the downstream pipeline.
func (p *Pipeline) PushOutputOf(opID int, t types.Tuple) error {
	n := p.nodes[opID]
	if n == nil {
		return fmt.Errorf("exec: push-output into unknown operator %d", opID)
	}
	return p.deliver(n, t)
}

// process evaluates the node's operator on t, then delivers results.
func (p *Pipeline) process(n *node, t types.Tuple) error {
	switch n.op.Kind {
	case physical.OpLoad, physical.OpUnion, physical.OpSplit, physical.OpStore:
		// Pass-through operators: Load emits records as-is (the task read
		// them from the DFS), Union merges its producers, Split tees, and
		// Store forwards to its registered writer output.
		return p.deliver(n, t)
	case physical.OpFilter:
		if n.op.Pred.Eval(t).Truthy() {
			return p.deliver(n, t)
		}
		return nil
	case physical.OpForeach:
		out, err := EvalForeach(n.op, t)
		if err != nil {
			return err
		}
		return p.deliver(n, out)
	default:
		return fmt.Errorf("exec: operator %s is blocking and cannot run in a pipeline", n.op.Kind)
	}
}

func (p *Pipeline) deliver(n *node, t types.Tuple) error {
	for _, out := range n.outputs {
		if err := out(t); err != nil {
			return err
		}
	}
	for _, c := range n.consumers {
		if err := p.process(c, t); err != nil {
			return err
		}
	}
	return nil
}

// EvalForeach applies a Foreach operator to one input tuple: nested defs
// compute derived bags appended to the tuple, then the generate expressions
// produce the output tuple.
func EvalForeach(op *physical.Operator, t types.Tuple) (types.Tuple, error) {
	work := t
	if len(op.Nested) > 0 {
		work = make(types.Tuple, len(t), len(t)+len(op.Nested))
		copy(work, t)
		for _, def := range op.Nested {
			bagVal := def.Base.Eval(work)
			if bagVal.Kind() != types.KindBag {
				// Null or scalar: treat as empty bag so aggregates behave.
				work = append(work, types.NewBag(&types.Bag{}))
				continue
			}
			work = append(work, applyNested(def, bagVal.Bag()))
		}
	}
	out := make(types.Tuple, len(op.Exprs))
	for i, e := range op.Exprs {
		out[i] = e.Eval(work)
	}
	return out, nil
}

func applyNested(def physical.NestedDef, in *types.Bag) types.Value {
	switch def.Op {
	case "distinct":
		sorted := make([]types.Tuple, len(in.Tuples))
		copy(sorted, in.Tuples)
		sort.Slice(sorted, func(i, j int) bool { return types.CompareTuples(sorted[i], sorted[j]) < 0 })
		out := &types.Bag{}
		for i, tu := range sorted {
			if i == 0 || types.CompareTuples(tu, sorted[i-1]) != 0 {
				out.Add(tu)
			}
		}
		return types.NewBag(out)
	case "filter":
		out := &types.Bag{}
		for _, tu := range in.Tuples {
			if def.Pred != nil && def.Pred.Eval(tu).Truthy() {
				out.Add(tu)
			}
		}
		return types.NewBag(out)
	default: // "ident"
		return types.NewBag(in)
	}
}

// EvalKey evaluates a key-expression list over a tuple, producing the
// shuffle key tuple.
func EvalKey(keys []*expr.Expr, t types.Tuple) types.Tuple {
	return EvalKeyInto(make(types.Tuple, 0, len(keys)), keys, t)
}

// EvalKeyInto evaluates a key-expression list into dst's backing array,
// returning the key tuple. Callers that retain the key across calls must
// Clone it — the engine's combiner path reuses one scratch tuple per map
// task so key evaluation costs no allocation per record.
func EvalKeyInto(dst types.Tuple, keys []*expr.Expr, t types.Tuple) types.Tuple {
	dst = dst[:0]
	for _, k := range keys {
		dst = append(dst, k.Eval(t))
	}
	return dst
}

// KeyHasNull reports whether any component of a key is null. Null join keys
// never match (SQL semantics, which Pig follows for joins).
func KeyHasNull(k types.Tuple) bool {
	for _, v := range k {
		if v.IsNull() {
			return true
		}
	}
	return false
}
