package exec

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/types"
)

// buildLinear constructs Load -> Filter(n>1) -> Foreach(n, n*10) -> Store.
func buildLinear(t *testing.T) (*physical.Plan, *physical.Operator, *physical.Operator) {
	t.Helper()
	p := physical.NewPlan()
	load := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "in",
		Schema: types.SchemaFromNames("n")})
	filt := p.Add(&physical.Operator{Kind: physical.OpFilter, Inputs: []int{load.ID},
		Pred:   expr.Binary(">", expr.ColIdx(0), expr.Lit(types.NewInt(1))),
		Schema: load.Schema})
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{filt.ID},
		Exprs:  []*expr.Expr{expr.ColIdx(0), expr.Binary("*", expr.ColIdx(0), expr.Lit(types.NewInt(10)))},
		Schema: types.SchemaFromNames("n", "n10")})
	store := p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out", Inputs: []int{fe.ID},
		Schema: fe.Schema})
	return p, load, store
}

func includeAll(p *physical.Plan) map[int]bool {
	m := make(map[int]bool)
	for _, o := range p.Ops() {
		m[o.ID] = true
	}
	return m
}

func TestLinearPipeline(t *testing.T) {
	p, load, store := buildLinear(t)
	pl := NewPipeline(p, includeAll(p))
	var got []types.Tuple
	if err := pl.SetOutput(store.ID, func(tu types.Tuple) error {
		got = append(got, tu)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if err := pl.Push(load.ID, types.Tuple{types.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// 0 and 1 filtered out; 2 and 3 pass and get transformed.
	if len(got) != 2 {
		t.Fatalf("got %d tuples: %v", len(got), got)
	}
	if got[0][1].Int() != 20 || got[1][1].Int() != 30 {
		t.Errorf("transformed = %v", got)
	}
}

func TestSplitTees(t *testing.T) {
	p := physical.NewPlan()
	load := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "in", Schema: types.SchemaFromNames("n")})
	split := p.Add(&physical.Operator{Kind: physical.OpSplit, Inputs: []int{load.ID}, Schema: load.Schema})
	s1 := p.Add(&physical.Operator{Kind: physical.OpStore, Path: "o1", Inputs: []int{split.ID}, Schema: load.Schema})
	filt := p.Add(&physical.Operator{Kind: physical.OpFilter, Inputs: []int{split.ID},
		Pred: expr.Binary("==", expr.ColIdx(0), expr.Lit(types.NewInt(2))), Schema: load.Schema})
	s2 := p.Add(&physical.Operator{Kind: physical.OpStore, Path: "o2", Inputs: []int{filt.ID}, Schema: load.Schema})

	pl := NewPipeline(p, includeAll(p))
	var all, filtered int
	if err := pl.SetOutput(s1.ID, func(types.Tuple) error { all++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := pl.SetOutput(s2.ID, func(types.Tuple) error { filtered++; return nil }); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := pl.Push(load.ID, types.Tuple{types.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if all != 5 || filtered != 1 {
		t.Errorf("all=%d filtered=%d, want 5/1", all, filtered)
	}
}

func TestUnionMerges(t *testing.T) {
	p := physical.NewPlan()
	l1 := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "a", Schema: types.SchemaFromNames("n")})
	l2 := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "b", Schema: types.SchemaFromNames("n")})
	u := p.Add(&physical.Operator{Kind: physical.OpUnion, Inputs: []int{l1.ID, l2.ID}, Schema: l1.Schema})
	st := p.Add(&physical.Operator{Kind: physical.OpStore, Path: "o", Inputs: []int{u.ID}, Schema: l1.Schema})

	pl := NewPipeline(p, includeAll(p))
	var n int
	if err := pl.SetOutput(st.ID, func(types.Tuple) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := pl.Push(l1.ID, types.Tuple{types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := pl.Push(l2.ID, types.Tuple{types.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("union delivered %d, want 2", n)
	}
}

func TestMultipleOutputsOnOneOperator(t *testing.T) {
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "a", Schema: types.SchemaFromNames("n")})
	st := p.Add(&physical.Operator{Kind: physical.OpStore, Path: "o", Inputs: []int{l.ID}, Schema: l.Schema})
	pl := NewPipeline(p, includeAll(p))
	var a, b int
	if err := pl.SetOutput(st.ID, func(types.Tuple) error { a++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := pl.SetOutput(st.ID, func(types.Tuple) error { b++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := pl.Push(l.ID, types.Tuple{types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 1 {
		t.Errorf("outputs fired %d/%d times", a, b)
	}
}

func TestValidateCatchesDeadEnds(t *testing.T) {
	p, _, _ := buildLinear(t)
	pl := NewPipeline(p, includeAll(p))
	if err := pl.Validate(); err == nil {
		t.Error("store without output should fail validation")
	}
}

func TestPushErrors(t *testing.T) {
	p, _, _ := buildLinear(t)
	pl := NewPipeline(p, includeAll(p))
	if err := pl.Push(999, types.Tuple{}); err == nil {
		t.Error("push into unknown op should fail")
	}
	if err := pl.SetOutput(999, func(types.Tuple) error { return nil }); err == nil {
		t.Error("SetOutput on unknown op should fail")
	}
	if err := pl.PushOutputOf(999, types.Tuple{}); err == nil {
		t.Error("PushOutputOf unknown op should fail")
	}
}

func TestOutputErrorPropagates(t *testing.T) {
	p, load, store := buildLinear(t)
	pl := NewPipeline(p, includeAll(p))
	wantErr := fmt.Errorf("disk full")
	if err := pl.SetOutput(store.ID, func(types.Tuple) error { return wantErr }); err != nil {
		t.Fatal(err)
	}
	if err := pl.Push(load.ID, types.Tuple{types.NewInt(5)}); err == nil {
		t.Error("output error swallowed")
	}
}

func TestPushOutputOfBypassesEvaluation(t *testing.T) {
	// Simulate the reduce side: push the blocking op's outputs downstream.
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "a", Schema: types.SchemaFromNames("k", "v")})
	g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{l.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}}})
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{g.ID},
		Exprs:  []*expr.Expr{expr.ColIdx(0), expr.Call("COUNT", expr.ColIdx(1))},
		Schema: types.SchemaFromNames("group", "cnt")})
	st := p.Add(&physical.Operator{Kind: physical.OpStore, Path: "o", Inputs: []int{fe.ID}, Schema: fe.Schema})

	include := map[int]bool{g.ID: true, fe.ID: true, st.ID: true}
	pl := NewPipeline(p, include)
	var got []types.Tuple
	if err := pl.SetOutput(st.ID, func(tu types.Tuple) error { got = append(got, tu); return nil }); err != nil {
		t.Fatal(err)
	}
	bag := &types.Bag{Tuples: []types.Tuple{
		{types.NewString("a"), types.NewInt(1)},
		{types.NewString("a"), types.NewInt(2)},
	}}
	if err := pl.PushOutputOf(g.ID, types.Tuple{types.NewString("a"), types.NewBag(bag)}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][1].Int() != 2 {
		t.Errorf("grouped count = %v", got)
	}
}

func TestBlockingOpInPipelineFails(t *testing.T) {
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "a", Schema: types.SchemaFromNames("k")})
	d := p.Add(&physical.Operator{Kind: physical.OpDistinct, Inputs: []int{l.ID}, Schema: l.Schema})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "o", Inputs: []int{d.ID}, Schema: l.Schema})
	pl := NewPipeline(p, includeAll(p))
	if err := pl.Push(l.ID, types.Tuple{types.NewInt(1)}); err == nil {
		t.Error("pushing through a blocking operator should fail")
	}
}

func TestEvalForeachNestedDistinctAndFilter(t *testing.T) {
	inner := types.NewSchema(types.Field{Name: "action", Kind: types.KindInt})
	grouped := types.NewSchema(
		types.Field{Name: "group", Kind: types.KindString},
		types.Field{Name: "C", Kind: types.KindBag, Sub: &inner},
	)
	// foreach grouped { dst = distinct C; pos = filter C by action > 0;
	//                   generate group, COUNT(dst), COUNT(pos) }
	nestedBase, err := expr.Col("C").Bind(grouped)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := expr.Binary(">", expr.Col("action"), expr.Lit(types.NewInt(0))).Bind(inner)
	if err != nil {
		t.Fatal(err)
	}
	extended := grouped
	dstSchema := inner
	extended.Fields = append(extended.Fields,
		types.Field{Name: "dst", Kind: types.KindBag, Sub: &dstSchema},
		types.Field{Name: "pos", Kind: types.KindBag, Sub: &dstSchema})
	genGroup, err := expr.Col("group").Bind(extended)
	if err != nil {
		t.Fatal(err)
	}
	genD, err := expr.Call("COUNT", expr.Col("dst")).Bind(extended)
	if err != nil {
		t.Fatal(err)
	}
	genP, err := expr.Call("COUNT", expr.Col("pos")).Bind(extended)
	if err != nil {
		t.Fatal(err)
	}
	op := &physical.Operator{
		Kind: physical.OpForeach,
		Nested: []physical.NestedDef{
			{Alias: "dst", Base: nestedBase, Op: "distinct"},
			{Alias: "pos", Base: nestedBase.Clone(), Op: "filter", Pred: pred},
		},
		Exprs: []*expr.Expr{genGroup, genD, genP},
	}
	bag := &types.Bag{Tuples: []types.Tuple{
		{types.NewInt(1)}, {types.NewInt(1)}, {types.NewInt(0)}, {types.NewInt(-2)},
	}}
	out, err := EvalForeach(op, types.Tuple{types.NewString("g"), types.NewBag(bag)})
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Int() != 3 { // distinct {1,0,-2}
		t.Errorf("distinct count = %v", out[1])
	}
	if out[2].Int() != 2 { // filter >0 keeps the two 1s
		t.Errorf("filter count = %v", out[2])
	}
}

func TestEvalForeachNestedOnNonBag(t *testing.T) {
	op := &physical.Operator{
		Kind:   physical.OpForeach,
		Nested: []physical.NestedDef{{Alias: "x", Base: expr.ColIdx(0), Op: "distinct"}},
		Exprs:  []*expr.Expr{expr.Call("COUNT", expr.ColIdx(1))},
	}
	out, err := EvalForeach(op, types.Tuple{types.NewInt(5)})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Int() != 0 {
		t.Errorf("nested over scalar should act as empty bag, got %v", out[0])
	}
}

func TestEvalKeyAndNulls(t *testing.T) {
	keys := []*expr.Expr{expr.ColIdx(0), expr.ColIdx(1)}
	k := EvalKey(keys, types.Tuple{types.NewInt(1), types.Null()})
	if len(k) != 2 {
		t.Fatalf("key = %v", k)
	}
	if !KeyHasNull(k) {
		t.Error("null component not detected")
	}
	k2 := EvalKey(keys, types.Tuple{types.NewInt(1), types.NewInt(2)})
	if KeyHasNull(k2) {
		t.Error("false null detection")
	}
}
