package physical

import (
	"testing"

	"repro/internal/types"
)

// chainPlan builds Load -> Filter-ish chain using parameterless ops (Distinct
// stages) so tests need no expression values: Load(path) -> Distinct x n ->
// Store(out).
func chainPlan(path string, n int, out string) *Plan {
	p := NewPlan()
	cur := p.Add(&Operator{Kind: OpLoad, Path: path, Schema: types.Schema{Fields: []types.Field{{Name: "k", Kind: types.KindInt}}}})
	for i := 0; i < n; i++ {
		cur = p.Add(&Operator{Kind: OpDistinct, Inputs: []int{cur.ID}})
	}
	p.Add(&Operator{Kind: OpStore, Path: out, Inputs: []int{cur.ID}})
	return p
}

func terminalOf(p *Plan) *Operator {
	return p.Op(p.Sinks()[0].Inputs[0])
}

func TestFingerprintDeterministicAcrossPlans(t *testing.T) {
	a := chainPlan("in/x", 2, "out/a")
	b := chainPlan("in/x", 2, "out/b") // different store path: irrelevant upstream
	fa := IndexPlan(a).Fingerprint(terminalOf(a).ID)
	fb := IndexPlan(b).Fingerprint(terminalOf(b).ID)
	if fa != fb {
		t.Errorf("identical cones fingerprint differently: %x vs %x", fa, fb)
	}
	c := chainPlan("in/OTHER", 2, "out/c")
	if fc := IndexPlan(c).Fingerprint(terminalOf(c).ID); fc == fa {
		t.Error("different source path collided")
	}
	d := chainPlan("in/x", 3, "out/d")
	if fd := IndexPlan(d).Fingerprint(terminalOf(d).ID); fd == fa {
		t.Error("different depth collided")
	}
}

func TestFingerprintFoldsSplitTees(t *testing.T) {
	// Load -> Distinct -> Store  vs  Load -> Distinct -> Split -> Store:
	// the Split is a transparent tee, so the Store's *input cone* fingerprint
	// (seen through the splice) must be unchanged for consumers above it.
	plain := chainPlan("in/x", 1, "out/p")
	teed := NewPlan()
	l := teed.Add(&Operator{Kind: OpLoad, Path: "in/x", Schema: types.Schema{Fields: []types.Field{{Name: "k", Kind: types.KindInt}}}})
	d := teed.Add(&Operator{Kind: OpDistinct, Inputs: []int{l.ID}})
	sp := teed.Add(&Operator{Kind: OpSplit, Inputs: []int{d.ID}})
	st := teed.Add(&Operator{Kind: OpStore, Path: "out/t", Inputs: []int{sp.ID}})

	ixPlain := IndexPlan(plain)
	ixTeed := IndexPlan(teed)
	if ixPlain.Fingerprint(plain.Sinks()[0].ID) != ixTeed.Fingerprint(st.ID) {
		t.Error("Store above a Split tee fingerprints differently from Store above the producer")
	}
	// The Split itself is not erased: it has its own fingerprint (a Split can
	// only be the image of a stored Split terminal, which the traversal also
	// never skips at the root).
	if ixTeed.Fingerprint(sp.ID) == ixTeed.Fingerprint(d.ID) {
		t.Error("Split operator shares its producer's fingerprint; only consumers should fold it")
	}
}

func TestFingerprintArgumentOrderMatters(t *testing.T) {
	mk := func(p1, p2 string) (Fingerprint, *Plan) {
		p := NewPlan()
		a := p.Add(&Operator{Kind: OpLoad, Path: p1, Schema: types.Schema{}})
		b := p.Add(&Operator{Kind: OpLoad, Path: p2, Schema: types.Schema{}})
		u := p.Add(&Operator{Kind: OpUnion, Inputs: []int{a.ID, b.ID}})
		p.Add(&Operator{Kind: OpStore, Path: "out", Inputs: []int{u.ID}})
		return IndexPlan(p).Fingerprint(u.ID), p
	}
	ab, _ := mk("in/a", "in/b")
	ba, _ := mk("in/b", "in/a")
	if ab == ba {
		t.Error("input argument order ignored by fingerprint")
	}
}

func TestIndexMemoizesSignatures(t *testing.T) {
	p := chainPlan("in/x", 3, "out/a")
	ix := IndexPlan(p)
	for _, o := range p.Ops() {
		if got, want := ix.Signature(o.ID), o.Signature(); got != want {
			t.Errorf("op %d: memoized signature %q != derived %q", o.ID, got, want)
		}
	}
	if ix.Signature(9999) != "" {
		t.Error("unknown id should have empty signature")
	}
	if ix.Fingerprint(9999) != fpMissing {
		t.Error("unknown id should fingerprint as missing")
	}
}

func TestOpsWithFingerprintAscendingAndComplete(t *testing.T) {
	// Two identical chains in one plan: their ops pair up under shared
	// fingerprints, listed ascending by ID.
	p := NewPlan()
	for i := 0; i < 2; i++ {
		l := p.Add(&Operator{Kind: OpLoad, Path: "in/x", Schema: types.Schema{}})
		d := p.Add(&Operator{Kind: OpDistinct, Inputs: []int{l.ID}})
		p.Add(&Operator{Kind: OpStore, Path: "out", Inputs: []int{d.ID}})
	}
	ix := IndexPlan(p)
	total := 0
	for _, fp := range ix.Fingerprints() {
		ids := ix.OpsWithFingerprint(fp)
		total += len(ids)
		if len(ids) != 2 {
			t.Errorf("fingerprint %x groups %d ops, want 2 (duplicated chain)", fp, len(ids))
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Errorf("group for %x not ascending: %v", fp, ids)
			}
		}
	}
	if total != p.Len() {
		t.Errorf("groups cover %d ops, plan has %d", total, p.Len())
	}
}
