package physical

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Plan is a DAG of physical operators. Operators reference producers by ID;
// consumer edges are derived. Plans are the unit ReStore matches, rewrites,
// and stores in its repository.
type Plan struct {
	ops    map[int]*Operator
	nextID int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{ops: make(map[int]*Operator), nextID: 1}
}

// Add inserts the operator, assigning it a fresh ID, and returns it.
func (p *Plan) Add(o *Operator) *Operator {
	o.ID = p.nextID
	p.nextID++
	p.ops[o.ID] = o
	return o
}

// AddWithID inserts an operator preserving its ID (deserialization path).
func (p *Plan) AddWithID(o *Operator) error {
	if _, dup := p.ops[o.ID]; dup {
		return fmt.Errorf("physical: duplicate operator id %d", o.ID)
	}
	p.ops[o.ID] = o
	if o.ID >= p.nextID {
		p.nextID = o.ID + 1
	}
	return nil
}

// Remove deletes the operator with the given ID. Callers must fix up any
// consumer Inputs referencing it.
func (p *Plan) Remove(id int) { delete(p.ops, id) }

// Op returns the operator with the given ID, or nil.
func (p *Plan) Op(id int) *Operator { return p.ops[id] }

// Len returns the number of operators.
func (p *Plan) Len() int { return len(p.ops) }

// Ops returns all operators ordered by ID (deterministic).
func (p *Plan) Ops() []*Operator {
	out := make([]*Operator, 0, len(p.ops))
	for _, id := range sortedIDs(p.ops) {
		out = append(out, p.ops[id])
	}
	return out
}

// Sources returns the Load operators ordered by ID.
func (p *Plan) Sources() []*Operator {
	var out []*Operator
	for _, o := range p.Ops() {
		if o.Kind == OpLoad {
			out = append(out, o)
		}
	}
	return out
}

// Sinks returns the Store operators ordered by ID.
func (p *Plan) Sinks() []*Operator {
	var out []*Operator
	for _, o := range p.Ops() {
		if o.Kind == OpStore {
			out = append(out, o)
		}
	}
	return out
}

// Consumers returns the operators that read the output of id, ordered by ID.
func (p *Plan) Consumers(id int) []*Operator {
	var out []*Operator
	for _, o := range p.Ops() {
		for _, in := range o.Inputs {
			if in == id {
				out = append(out, o)
				break
			}
		}
	}
	return out
}

// Producers returns the input operators of o in argument order.
func (p *Plan) Producers(o *Operator) []*Operator {
	out := make([]*Operator, len(o.Inputs))
	for i, id := range o.Inputs {
		out[i] = p.ops[id]
	}
	return out
}

// ReplaceInput rewires every reference to oldID in o.Inputs to newID.
func (o *Operator) ReplaceInput(oldID, newID int) {
	for i, in := range o.Inputs {
		if in == oldID {
			o.Inputs[i] = newID
		}
	}
}

// TopoOrder returns the operators in a topological order (producers before
// consumers), deterministic across runs. It returns an error when the plan
// contains a cycle or a dangling input reference.
func (p *Plan) TopoOrder() ([]*Operator, error) {
	indeg := make(map[int]int, len(p.ops))
	for _, o := range p.ops {
		for _, in := range o.Inputs {
			if p.ops[in] == nil {
				return nil, fmt.Errorf("physical: operator %s references missing input %d", o, in)
			}
		}
		indeg[o.ID] = len(o.Inputs)
	}
	var ready []int
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Ints(ready)
	var out []*Operator
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, p.ops[id])
		var unlocked []int
		for _, c := range p.Consumers(id) {
			indeg[c.ID]--
			if indeg[c.ID] == 0 {
				unlocked = append(unlocked, c.ID)
			}
		}
		sort.Ints(unlocked)
		ready = append(ready, unlocked...)
		sort.Ints(ready)
	}
	if len(out) != len(p.ops) {
		return nil, fmt.Errorf("physical: plan has a cycle (%d of %d ordered)", len(out), len(p.ops))
	}
	return out, nil
}

// Validate checks structural invariants: acyclicity, input references, input
// arity per operator kind, and that sources are Loads and every non-Store
// operator has at least one consumer.
func (p *Plan) Validate() error {
	order, err := p.TopoOrder()
	if err != nil {
		return err
	}
	for _, o := range order {
		switch o.Kind {
		case OpLoad:
			if len(o.Inputs) != 0 {
				return fmt.Errorf("physical: %s must have no inputs", o)
			}
			if o.Path == "" {
				return fmt.Errorf("physical: %s has empty path", o)
			}
		case OpJoin:
			if len(o.Inputs) != 2 {
				return fmt.Errorf("physical: %s wants 2 inputs, has %d", o, len(o.Inputs))
			}
			if len(o.Keys) != 2 {
				return fmt.Errorf("physical: %s wants 2 key lists, has %d", o, len(o.Keys))
			}
		case OpCoGroup:
			if len(o.Inputs) < 2 || len(o.Keys) != len(o.Inputs) {
				return fmt.Errorf("physical: %s wants >=2 inputs with matching key lists", o)
			}
		case OpUnion:
			if len(o.Inputs) < 2 {
				return fmt.Errorf("physical: %s wants >=2 inputs", o)
			}
		case OpStore:
			if len(o.Inputs) != 1 {
				return fmt.Errorf("physical: %s wants 1 input", o)
			}
			if o.Path == "" {
				return fmt.Errorf("physical: %s has empty path", o)
			}
		default:
			if len(o.Inputs) != 1 {
				return fmt.Errorf("physical: %s wants 1 input, has %d", o, len(o.Inputs))
			}
		}
		if o.Kind != OpStore && len(p.Consumers(o.ID)) == 0 {
			return fmt.Errorf("physical: %s has no consumers and is not a Store", o)
		}
	}
	return nil
}

// Clone deep-copies the plan.
func (p *Plan) Clone() *Plan {
	out := &Plan{ops: make(map[int]*Operator, len(p.ops)), nextID: p.nextID}
	for id, o := range p.ops {
		out.ops[id] = o.Clone()
	}
	return out
}

// CanonKey returns a recursive description of the operator's upstream cone:
// its signature plus the keys of its inputs in argument order. Two operators
// with equal canon keys compute the same function over the same sources.
func (p *Plan) CanonKey(id int) string {
	memo := make(map[int]string)
	return p.canonKey(id, memo)
}

func (p *Plan) canonKey(id int, memo map[int]string) string {
	if k, ok := memo[id]; ok {
		return k
	}
	o := p.ops[id]
	if o == nil {
		return "?"
	}
	// Guard against cycles: mark in-progress.
	memo[id] = "..."
	var sb strings.Builder
	sb.WriteString(o.Signature())
	sb.WriteByte('<')
	for i, in := range o.Inputs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.canonKey(in, memo))
	}
	sb.WriteByte('>')
	k := sb.String()
	memo[id] = k
	return k
}

// Canonical renders a deterministic, alias-free description of the whole
// plan: operators in topological order with their signatures and re-numbered
// input references. Ordering ties are broken by each operator's recursive
// canon key, so two structurally identical plans produce identical canonical
// strings regardless of operator IDs or insertion order. The repository uses
// this to deduplicate entries.
//
// Canonicalization is best-effort for plans containing *duplicated*
// identical subgraphs consumed asymmetrically (general graph isomorphism);
// compiler-produced plans share operators via fan-out instead of duplicating
// them, and a missed tie only costs a missed deduplication, never a wrong
// match.
func (p *Plan) Canonical() string {
	if _, err := p.TopoOrder(); err != nil {
		// Cyclic plans cannot be canonicalized; render something stable.
		return "invalid-plan"
	}
	memo := make(map[int]string)
	for id := range p.ops {
		p.canonKey(id, memo)
	}
	indeg := make(map[int]int, len(p.ops))
	for _, o := range p.ops {
		indeg[o.ID] = len(o.Inputs)
	}
	var ready []int
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	byKey := func(ids []int) {
		sort.Slice(ids, func(i, j int) bool {
			ki, kj := memo[ids[i]], memo[ids[j]]
			if ki != kj {
				return ki < kj
			}
			return ids[i] < ids[j]
		})
	}
	byKey(ready)
	renum := make(map[int]int, len(p.ops))
	var order []*Operator
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		renum[id] = len(order)
		order = append(order, p.ops[id])
		for _, c := range p.Consumers(id) {
			indeg[c.ID]--
			if indeg[c.ID] == 0 {
				ready = append(ready, c.ID)
			}
		}
		byKey(ready)
	}
	var sb strings.Builder
	for i, o := range order {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%d:%s<-[", i, o.Signature())
		refs := canonicalRefs(o, renum, memo)
		for j, ref := range refs {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", ref)
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

// canonicalRefs renders an operator's renumbered input references. Input
// positions whose producers have identical canon keys are interchangeable
// (the cones compute the same data), so their references are sorted among
// themselves; this makes the canonical form independent of which of two
// identical subgraphs was inserted first (e.g. a self-join of one source).
func canonicalRefs(o *Operator, renum map[int]int, memo map[int]string) []int {
	refs := make([]int, len(o.Inputs))
	byKey := make(map[string][]int) // canon key -> input positions
	for j, in := range o.Inputs {
		refs[j] = renum[in]
		byKey[memo[in]] = append(byKey[memo[in]], j)
	}
	for _, positions := range byKey {
		if len(positions) < 2 {
			continue
		}
		vals := make([]int, len(positions))
		for i, pos := range positions {
			vals[i] = refs[pos]
		}
		sort.Ints(vals)
		for i, pos := range positions {
			refs[pos] = vals[i]
		}
	}
	return refs
}

// String renders the plan for diagnostics.
func (p *Plan) String() string {
	var sb strings.Builder
	for _, o := range p.Ops() {
		fmt.Fprintf(&sb, "%s <- %v\n", o, o.Inputs)
	}
	return sb.String()
}

// planJSON is the serialized form.
type planJSON struct {
	Ops []*Operator `json:"ops"`
}

// MarshalJSON implements json.Marshaler.
func (p *Plan) MarshalJSON() ([]byte, error) {
	return json.Marshal(planJSON{Ops: p.Ops()})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var j planJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	p.ops = make(map[int]*Operator, len(j.Ops))
	p.nextID = 1
	for _, o := range j.Ops {
		if err := p.AddWithID(o); err != nil {
			return err
		}
	}
	return nil
}

// ReachableFrom returns the set of operator IDs reachable by following
// producer edges backwards from the given operator (inclusive): the
// "upstream cone" that computes its output.
func (p *Plan) ReachableFrom(id int) map[int]bool {
	seen := make(map[int]bool)
	var walk func(int)
	walk = func(cur int) {
		if seen[cur] {
			return
		}
		seen[cur] = true
		o := p.ops[cur]
		if o == nil {
			return
		}
		for _, in := range o.Inputs {
			walk(in)
		}
	}
	walk(id)
	return seen
}

// ExtractPrefix builds a standalone plan containing the upstream cone of the
// operator with the given ID, with a Store appended writing to storePath.
// The result is the "sub-job" plan the paper materializes and registers in
// the repository (§4): a complete MapReduce job from Loads up to and
// including the operator, finished by a Store.
func (p *Plan) ExtractPrefix(id int, storePath string) (*Plan, error) {
	root := p.ops[id]
	if root == nil {
		return nil, fmt.Errorf("physical: no operator %d", id)
	}
	cone := p.ReachableFrom(id)
	out := NewPlan()
	// Preserve relative order via ascending-ID insertion, remapping IDs.
	remap := make(map[int]int, len(cone))
	for _, oldID := range sortedKeys(cone) {
		op := p.ops[oldID].Clone()
		// Splits inside the cone may reference consumers outside it; a
		// prefix plan treats a Split as transparent (it is a tee), so we
		// drop it and splice its producer through.
		out.Add(op)
		remap[oldID] = op.ID
	}
	for _, oldID := range sortedKeys(cone) {
		op := out.ops[remap[oldID]]
		for i, in := range op.Inputs {
			op.Inputs[i] = remap[in]
		}
	}
	// Splice out Split tees: they don't change data.
	for _, o := range out.Ops() {
		if o.Kind != OpSplit {
			continue
		}
		producer := o.Inputs[0]
		for _, c := range out.Consumers(o.ID) {
			c.ReplaceInput(o.ID, producer)
		}
		if remap[id] == o.ID {
			remap[id] = producer
		}
		out.Remove(o.ID)
	}
	store := out.Add(&Operator{
		Kind:   OpStore,
		Path:   storePath,
		Inputs: []int{remap[id]},
		Schema: p.ops[id].Schema,
	})
	_ = store
	return out, nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
