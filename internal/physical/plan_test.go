package physical

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

// buildQ1 constructs the paper's Figure 2 plan:
//
//	Load(page_views) -> Foreach(user, est_revenue) \
//	                                                Join -> Store
//
// Load(users)      -> Foreach(name)              /
func buildQ1(t *testing.T, outPath string) *Plan {
	t.Helper()
	p := NewPlan()
	pv := p.Add(&Operator{Kind: OpLoad, Path: "data/page_views",
		Schema: types.SchemaFromNames("user", "timestamp", "est_revenue", "page_info", "page_links")})
	users := p.Add(&Operator{Kind: OpLoad, Path: "data/users",
		Schema: types.SchemaFromNames("name", "phone", "address", "city")})
	projPV := p.Add(&Operator{Kind: OpForeach, Inputs: []int{pv.ID},
		Exprs:  []*expr.Expr{expr.ColIdx(0), expr.ColIdx(2)},
		Names:  []string{"user", "est_revenue"},
		Schema: types.SchemaFromNames("user", "est_revenue")})
	projU := p.Add(&Operator{Kind: OpForeach, Inputs: []int{users.ID},
		Exprs:  []*expr.Expr{expr.ColIdx(0)},
		Names:  []string{"name"},
		Schema: types.SchemaFromNames("name")})
	join := p.Add(&Operator{Kind: OpJoin, Inputs: []int{projU.ID, projPV.ID},
		Keys:   [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}},
		Schema: types.SchemaFromNames("name", "user", "est_revenue")})
	p.Add(&Operator{Kind: OpStore, Path: outPath, Inputs: []int{join.ID},
		Schema: join.Schema})
	if err := p.Validate(); err != nil {
		t.Fatalf("Q1 plan invalid: %v", err)
	}
	return p
}

func TestPlanNavigation(t *testing.T) {
	p := buildQ1(t, "out/q1")
	if p.Len() != 6 {
		t.Fatalf("len = %d", p.Len())
	}
	srcs := p.Sources()
	if len(srcs) != 2 || srcs[0].Path != "data/page_views" {
		t.Errorf("sources = %v", srcs)
	}
	sinks := p.Sinks()
	if len(sinks) != 1 || sinks[0].Path != "out/q1" {
		t.Errorf("sinks = %v", sinks)
	}
	cons := p.Consumers(srcs[0].ID)
	if len(cons) != 1 || cons[0].Kind != OpForeach {
		t.Errorf("consumers of load = %v", cons)
	}
	prods := p.Producers(sinks[0])
	if len(prods) != 1 || prods[0].Kind != OpJoin {
		t.Errorf("producers of store = %v", prods)
	}
}

func TestTopoOrderProducersFirst(t *testing.T) {
	p := buildQ1(t, "out/q1")
	order, err := p.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, o := range order {
		pos[o.ID] = i
	}
	for _, o := range order {
		for _, in := range o.Inputs {
			if pos[in] >= pos[o.ID] {
				t.Errorf("input %d of %s ordered after it", in, o)
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	p := NewPlan()
	a := p.Add(&Operator{Kind: OpFilter, Pred: expr.Lit(types.NewBool(true))})
	b := p.Add(&Operator{Kind: OpFilter, Pred: expr.Lit(types.NewBool(true))})
	a.Inputs = []int{b.ID}
	b.Inputs = []int{a.ID}
	if _, err := p.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestValidateCatchesArityAndDangling(t *testing.T) {
	p := NewPlan()
	l := p.Add(&Operator{Kind: OpLoad, Path: "x", Schema: types.SchemaFromNames("a")})
	j := p.Add(&Operator{Kind: OpJoin, Inputs: []int{l.ID}, Keys: [][]*expr.Expr{{expr.ColIdx(0)}}})
	p.Add(&Operator{Kind: OpStore, Path: "o", Inputs: []int{j.ID}})
	if err := p.Validate(); err == nil {
		t.Error("join with one input should fail validation")
	}

	p2 := NewPlan()
	st := p2.Add(&Operator{Kind: OpStore, Path: "o", Inputs: []int{99}})
	_ = st
	if err := p2.Validate(); err == nil {
		t.Error("dangling input should fail validation")
	}

	p3 := NewPlan()
	p3.Add(&Operator{Kind: OpLoad, Path: "x", Schema: types.SchemaFromNames("a")})
	if err := p3.Validate(); err == nil {
		t.Error("load without consumers should fail validation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildQ1(t, "out/q1")
	c := p.Clone()
	for _, o := range c.Ops() {
		if o.Kind == OpJoin {
			o.Keys[0][0] = expr.ColIdx(7)
		}
		if o.Kind == OpLoad {
			o.Path = "changed"
		}
	}
	for _, o := range p.Ops() {
		if o.Kind == OpJoin && o.Keys[0][0].Index == 7 {
			t.Error("clone aliases join keys")
		}
		if o.Kind == OpLoad && o.Path == "changed" {
			t.Error("clone aliases operators")
		}
	}
}

func TestCanonicalIgnoresIDsAndAliases(t *testing.T) {
	a := buildQ1(t, "out/q1")

	// Build the same dataflow but in a different insertion order and with
	// different Foreach output aliases.
	p := NewPlan()
	users := p.Add(&Operator{Kind: OpLoad, Path: "data/users",
		Schema: types.SchemaFromNames("name", "phone", "address", "city")})
	projU := p.Add(&Operator{Kind: OpForeach, Inputs: []int{users.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0)}, Names: []string{"renamed"},
		Schema: types.SchemaFromNames("renamed")})
	pv := p.Add(&Operator{Kind: OpLoad, Path: "data/page_views",
		Schema: types.SchemaFromNames("user", "timestamp", "est_revenue", "page_info", "page_links")})
	projPV := p.Add(&Operator{Kind: OpForeach, Inputs: []int{pv.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0), expr.ColIdx(2)}, Names: []string{"u", "r"},
		Schema: types.SchemaFromNames("u", "r")})
	join := p.Add(&Operator{Kind: OpJoin, Inputs: []int{projU.ID, projPV.ID},
		Keys:   [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}},
		Schema: types.SchemaFromNames("name", "user", "est_revenue")})
	p.Add(&Operator{Kind: OpStore, Path: "different/out", Inputs: []int{join.ID}, Schema: join.Schema})

	if a.Canonical() != p.Canonical() {
		t.Errorf("canonical differs:\n%s\n---\n%s", a.Canonical(), p.Canonical())
	}
}

func TestCanonicalDistinguishesPaths(t *testing.T) {
	a := buildQ1(t, "out/q1")
	p := NewPlan()
	l := p.Add(&Operator{Kind: OpLoad, Path: "data/OTHER",
		Schema: types.SchemaFromNames("user", "timestamp", "est_revenue", "page_info", "page_links")})
	f := p.Add(&Operator{Kind: OpForeach, Inputs: []int{l.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0)}, Schema: types.SchemaFromNames("user")})
	p.Add(&Operator{Kind: OpStore, Path: "o", Inputs: []int{f.ID}, Schema: f.Schema})
	if a.Canonical() == p.Canonical() {
		t.Error("plans over different sources must differ")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := buildQ1(t, "out/q1")
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Canonical() != p.Canonical() {
		t.Errorf("round trip changed canonical:\n%s\n---\n%s", back.Canonical(), p.Canonical())
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped plan invalid: %v", err)
	}
}

func TestSignatureExcludesStorePathIncludesLoadPath(t *testing.T) {
	s1 := (&Operator{Kind: OpStore, Path: "a"}).Signature()
	s2 := (&Operator{Kind: OpStore, Path: "b"}).Signature()
	if s1 != s2 {
		t.Error("store path must not affect signature")
	}
	l1 := (&Operator{Kind: OpLoad, Path: "a", Schema: types.SchemaFromNames("x")}).Signature()
	l2 := (&Operator{Kind: OpLoad, Path: "b", Schema: types.SchemaFromNames("x")}).Signature()
	if l1 == l2 {
		t.Error("load path must affect signature")
	}
}

func TestBlockingKinds(t *testing.T) {
	blocking := []OpKind{OpJoin, OpGroup, OpCoGroup, OpDistinct, OpOrder, OpLimit}
	for _, k := range blocking {
		if !k.Blocking() {
			t.Errorf("%s should be blocking", k)
		}
	}
	streaming := []OpKind{OpLoad, OpStore, OpForeach, OpFilter, OpUnion, OpSplit}
	for _, k := range streaming {
		if k.Blocking() {
			t.Errorf("%s should not be blocking", k)
		}
	}
}

func TestExtractPrefix(t *testing.T) {
	p := buildQ1(t, "out/q1")
	// Extract the cone of the page_views projection.
	var projID int
	for _, o := range p.Ops() {
		if o.Kind == OpForeach && len(o.Exprs) == 2 {
			projID = o.ID
		}
	}
	sub, err := p.ExtractPrefix(projID, "restore/sub1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("prefix invalid: %v\n%s", err, sub)
	}
	if len(sub.Sources()) != 1 || sub.Sources()[0].Path != "data/page_views" {
		t.Errorf("prefix sources = %v", sub.Sources())
	}
	sinks := sub.Sinks()
	if len(sinks) != 1 || sinks[0].Path != "restore/sub1" {
		t.Errorf("prefix sinks = %v", sinks)
	}
	if sub.Len() != 3 { // Load, Foreach, Store
		t.Errorf("prefix len = %d\n%s", sub.Len(), sub)
	}
}

func TestExtractPrefixSplicesSplit(t *testing.T) {
	p := NewPlan()
	l := p.Add(&Operator{Kind: OpLoad, Path: "x", Schema: types.SchemaFromNames("a")})
	f := p.Add(&Operator{Kind: OpForeach, Inputs: []int{l.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0)}, Schema: types.SchemaFromNames("a")})
	sp := p.Add(&Operator{Kind: OpSplit, Inputs: []int{f.ID}, Schema: f.Schema})
	flt := p.Add(&Operator{Kind: OpFilter, Inputs: []int{sp.ID},
		Pred: expr.Binary("==", expr.ColIdx(0), expr.Lit(types.NewInt(1))), Schema: f.Schema})
	p.Add(&Operator{Kind: OpStore, Path: "o1", Inputs: []int{sp.ID}, Schema: f.Schema})
	p.Add(&Operator{Kind: OpStore, Path: "o2", Inputs: []int{flt.ID}, Schema: f.Schema})

	sub, err := p.ExtractPrefix(flt.ID, "restore/f")
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sub.Ops() {
		if o.Kind == OpSplit {
			t.Errorf("split survived extraction:\n%s", sub)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("spliced prefix invalid: %v\n%s", err, sub)
	}
}

func TestInferSchema(t *testing.T) {
	in := types.SchemaFromNames("a", "b")
	cases := []struct {
		op     *Operator
		inputs []types.Schema
		want   string
	}{
		{&Operator{Kind: OpFilter}, []types.Schema{in}, "(a, b)"},
		{&Operator{Kind: OpForeach, Exprs: []*expr.Expr{expr.ColIdx(1)}, Names: []string{"x"}},
			[]types.Schema{in}, "(x)"},
		{&Operator{Kind: OpJoin}, []types.Schema{in, types.SchemaFromNames("a", "c")}, "(a, b, r::a, c)"},
	}
	for _, c := range cases {
		got, err := InferSchema(c.op, c.inputs)
		if err != nil {
			t.Fatalf("%s: %v", c.op.Kind, err)
		}
		if got.String() != c.want {
			t.Errorf("%s schema = %s, want %s", c.op.Kind, got, c.want)
		}
	}
	g, err := InferSchema(&Operator{Kind: OpGroup}, []types.Schema{in})
	if err != nil {
		t.Fatal(err)
	}
	if g.Fields[1].Kind != types.KindBag || g.Fields[1].Sub == nil {
		t.Errorf("group schema = %+v", g)
	}
	if _, err := InferSchema(&Operator{Kind: OpJoin}, []types.Schema{in}); err == nil {
		t.Error("join with 1 input schema should error")
	}
}

func TestPlanStringContainsOps(t *testing.T) {
	p := buildQ1(t, "out/q1")
	s := p.String()
	for _, want := range []string{"Load", "Join", "Store"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %s:\n%s", want, s)
		}
	}
}
