package physical

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/types"
)

// randomPlan builds a random valid plan: distinct Load sources, a few
// layers of unary/binary operators with per-plan-unique parameters (so no
// two separate operators compute identical cones — mirroring compiler
// output, which shares operators via fan-out instead of duplicating them),
// and a Store on every dangling frontier.
func randomPlan(r *rand.Rand) *Plan {
	p := NewPlan()
	frontier := make([]*Operator, 0, 4)
	paths := []string{"t/a", "t/b", "t/c"}
	nLoads := 1 + r.Intn(3)
	for i := 0; i < nLoads; i++ {
		frontier = append(frontier, p.Add(&Operator{
			Kind:   OpLoad,
			Path:   paths[i],
			Schema: types.SchemaFromNames("c0", "c1", "c2"),
		}))
	}
	uniq := int64(0) // per-plan unique literal, keeps operator cones distinct
	usedJoins := make(map[[2]int]bool)
	steps := 1 + r.Intn(5)
	for i := 0; i < steps; i++ {
		src := frontier[r.Intn(len(frontier))]
		uniq++
		switch r.Intn(4) {
		case 0, 2:
			frontier = append(frontier, p.Add(&Operator{
				Kind:   OpFilter,
				Inputs: []int{src.ID},
				Pred:   expr.Binary(">", expr.ColIdx(r.Intn(3)), expr.Lit(types.NewInt(uniq))),
				Schema: src.Schema,
			}))
		case 1:
			frontier = append(frontier, p.Add(&Operator{
				Kind:   OpForeach,
				Inputs: []int{src.ID},
				Exprs: []*expr.Expr{
					expr.ColIdx(r.Intn(3)),
					expr.ColIdx(r.Intn(3)),
					expr.Binary("+", expr.ColIdx(r.Intn(3)), expr.Lit(types.NewInt(uniq))),
				},
				Schema: types.SchemaFromNames("c0", "c1", "c2"),
			}))
		case 3:
			other := frontier[r.Intn(len(frontier))]
			if other.ID == src.ID || usedJoins[[2]int{src.ID, other.ID}] {
				continue
			}
			usedJoins[[2]int{src.ID, other.ID}] = true
			frontier = append(frontier, p.Add(&Operator{
				Kind:   OpJoin,
				Inputs: []int{src.ID, other.ID},
				Keys:   [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}},
				Schema: src.Schema.Concat(other.Schema),
			}))
		}
	}
	// Store every operator that has no consumer (keeps the plan valid).
	for _, o := range p.Ops() {
		if o.Kind != OpStore && len(p.Consumers(o.ID)) == 0 {
			p.Add(&Operator{
				Kind:   OpStore,
				Path:   "out/" + o.Signature()[:2],
				Inputs: []int{o.ID},
				Schema: o.Schema,
			})
		}
	}
	return p
}

// TestPropertyRandomPlansValid: the generator itself must produce valid
// plans, otherwise the remaining properties are vacuous.
func TestPropertyRandomPlansValid(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPlan(rand.New(rand.NewSource(seed)))
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyJSONRoundTripPreservesCanonical: serialization must preserve
// plan structure exactly (the repository depends on it).
func TestPropertyJSONRoundTripPreservesCanonical(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPlan(rand.New(rand.NewSource(seed)))
		data, err := json.Marshal(p)
		if err != nil {
			return false
		}
		var back Plan
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.Canonical() == p.Canonical() && back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCanonicalIDInvariant: re-inserting the same operators under
// fresh IDs (in shuffled order) must not change the canonical form.
func TestPropertyCanonicalIDInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPlan(r)
		ops := p.Ops()
		perm := r.Perm(len(ops))
		q := NewPlan()
		remap := make(map[int]int, len(ops))
		// Insert in permuted order; producers may not exist yet, so fix
		// input references in a second pass.
		for _, i := range perm {
			cp := ops[i].Clone()
			oldID := cp.ID
			q.Add(cp)
			remap[oldID] = cp.ID
		}
		for _, o := range q.Ops() {
			for i, in := range o.Inputs {
				o.Inputs[i] = remap[in]
			}
		}
		return q.Canonical() == p.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyClonePreservesCanonical: Clone must be structure-preserving.
func TestPropertyClonePreservesCanonical(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPlan(rand.New(rand.NewSource(seed)))
		return p.Clone().Canonical() == p.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExtractPrefixValid: any non-Store operator's prefix must be a
// valid standalone sub-job plan with exactly one Store.
func TestPropertyExtractPrefixValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPlan(r)
		var candidates []*Operator
		for _, o := range p.Ops() {
			if o.Kind != OpStore && o.Kind != OpSplit {
				candidates = append(candidates, o)
			}
		}
		o := candidates[r.Intn(len(candidates))]
		sub, err := p.ExtractPrefix(o.ID, "restore/prop")
		if err != nil {
			return false
		}
		return sub.Validate() == nil && len(sub.Sinks()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
