package physical

import (
	"hash/fnv"
	"io"
	"sort"
)

// Fingerprint is a Merkle-style hash of an operator's upstream cone: its
// Signature() combined with the fingerprints of its inputs in argument
// order. Two operators with equal fingerprints compute (up to hash
// collision) the same function over the same sources, so the repository can
// index stored plans by their terminal fingerprint and the matcher can
// restrict the §3 pairwise traversal to hash-equal candidates. Equality is a
// *necessary* condition for a traversal match, never a sufficient one —
// collisions are resolved by running the exact traversal as verification.
type Fingerprint uint64

// PlanIndex memoizes per-operator Signature() strings and subtree
// Fingerprints for one plan. Signatures and fingerprints are pure functions
// of the plan, so an index is computed once — at plan freeze time: when an
// entry enters the repository, or per match scan for an input plan — and
// never re-derived during traversal.
//
// The index is built eagerly and is immutable afterwards, so one PlanIndex
// may be shared by any number of concurrent readers (repository entries keep
// theirs for the lifetime of the entry). It does NOT observe later plan
// mutations; re-index after rewriting a plan.
type PlanIndex struct {
	plan *Plan
	sigs map[int]string
	fps  map[int]Fingerprint
	// byFP groups operator IDs by fingerprint, each group ascending by ID —
	// the candidate list order the matcher's ID-ascending scan requires.
	byFP map[Fingerprint][]int
}

// fpMissing feeds the hash for a dangling input reference, keeping the index
// total (and distinct from any real subtree) on corrupt plans.
const fpMissing Fingerprint = 0x9e3779b97f4a7c15

// IndexPlan computes the signature and fingerprint index of a plan. The
// fingerprint of an operator hashes its memoized signature plus the
// fingerprints of its inputs in argument order, with OpSplit transparency
// folded in: an input reached through Split tees contributes the fingerprint
// of the first non-Split producer, mirroring exactly the skip rule of the
// matcher's pairwise traversal (a Split is a tee; it does not change data).
// A Split operator itself still carries its own fingerprint over its folded
// input, so a Split can only pair with a stored plan whose terminal is a
// Split — again matching the traversal, which never skips the root
// candidate.
func IndexPlan(p *Plan) *PlanIndex {
	n := p.Len()
	ix := &PlanIndex{
		plan: p,
		sigs: make(map[int]string, n),
		fps:  make(map[int]Fingerprint, n),
		byFP: make(map[Fingerprint][]int, n),
	}
	// Ops() iterates ascending by ID, so byFP groups come out ascending.
	for _, o := range p.Ops() {
		fp := ix.fingerprint(o.ID)
		ix.byFP[fp] = append(ix.byFP[fp], o.ID)
	}
	return ix
}

// Signature returns the operator's memoized Signature(). Every operator in
// the plan is cached at IndexPlan time; the map is never written afterwards,
// keeping concurrent reads safe. Unknown IDs derive (uncached) or return "".
func (ix *PlanIndex) Signature(id int) string {
	if s, ok := ix.sigs[id]; ok {
		return s
	}
	if o := ix.plan.Op(id); o != nil {
		return o.Signature()
	}
	return ""
}

// signature memoizes one operator's Signature() during index construction.
func (ix *PlanIndex) signature(id int) string {
	if s, ok := ix.sigs[id]; ok {
		return s
	}
	o := ix.plan.Op(id)
	if o == nil {
		return ""
	}
	s := o.Signature()
	ix.sigs[id] = s
	return s
}

// Fingerprint returns the operator's subtree fingerprint. IDs not in the
// plan return fpMissing.
func (ix *PlanIndex) Fingerprint(id int) Fingerprint {
	if fp, ok := ix.fps[id]; ok {
		return fp
	}
	return fpMissing
}

// OpsWithFingerprint returns the IDs of the operators whose subtree
// fingerprint equals fp, ascending. The returned slice is owned by the
// index; callers must not modify it.
func (ix *PlanIndex) OpsWithFingerprint(fp Fingerprint) []int {
	return ix.byFP[fp]
}

// Fingerprints returns the distinct subtree fingerprints present in the
// plan, sorted (deterministic iteration for probing and tests).
func (ix *PlanIndex) Fingerprints() []Fingerprint {
	out := make([]Fingerprint, 0, len(ix.byFP))
	for fp := range ix.byFP {
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// fingerprint computes (and memoizes) one operator's subtree fingerprint.
// Plans are validated DAGs; a cycle in a corrupt plan is broken by the
// in-progress sentinel rather than recursing forever.
func (ix *PlanIndex) fingerprint(id int) Fingerprint {
	if fp, ok := ix.fps[id]; ok {
		return fp
	}
	o := ix.plan.Op(id)
	if o == nil {
		return fpMissing
	}
	ix.fps[id] = fpMissing // in-progress sentinel; overwritten below
	h := fnv.New64a()
	_, _ = io.WriteString(h, ix.signature(id))
	h.Write([]byte{0}) // unambiguous signature/input boundary
	var buf [8]byte
	for _, in := range o.Inputs {
		sub := fpMissing
		// Fold Split transparency: descend to the first non-Split producer,
		// as pairwiseTraversal does before comparing.
		p := ix.plan.Op(in)
		for p != nil && p.Kind == OpSplit && len(p.Inputs) == 1 {
			p = ix.plan.Op(p.Inputs[0])
		}
		if p != nil {
			sub = ix.fingerprint(p.ID)
		}
		for i := 0; i < 8; i++ {
			buf[i] = byte(sub >> (8 * i))
		}
		h.Write(buf[:])
	}
	fp := Fingerprint(h.Sum64())
	ix.fps[id] = fp
	return fp
}
