// Package physical defines the physical query execution plan model: the
// operator vocabulary shared by the dataflow compiler, the MapReduce engine,
// and ReStore. A MapReduce job carries one Plan (a DAG of operators from
// Load(s) to Store(s)); ReStore's matcher tests plan containment over this
// representation, and the repository persists plans as JSON.
//
// The vocabulary mirrors Pig's physical operators as described in the paper:
// Load, Store, Foreach (projection/transformation), Filter, Join, Group,
// CoGroup, Union, Distinct, Order, Limit, and Split (the tee operator
// ReStore injects to materialize sub-job outputs).
package physical

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/types"
)

// OpKind names a physical operator type.
type OpKind string

// Operator kinds.
const (
	OpLoad     OpKind = "Load"
	OpStore    OpKind = "Store"
	OpForeach  OpKind = "Foreach"
	OpFilter   OpKind = "Filter"
	OpJoin     OpKind = "Join"
	OpGroup    OpKind = "Group"
	OpCoGroup  OpKind = "CoGroup"
	OpUnion    OpKind = "Union"
	OpDistinct OpKind = "Distinct"
	OpOrder    OpKind = "Order"
	OpLimit    OpKind = "Limit"
	OpSplit    OpKind = "Split"
)

// Blocking reports whether the operator requires a shuffle (map/reduce
// boundary). The MapReduce compiler places at most one blocking operator per
// job — the paper's job-cutting rule. Limit is blocking because it funnels
// through a single reducer to produce an exact row count, as in Pig.
func (k OpKind) Blocking() bool {
	switch k {
	case OpJoin, OpGroup, OpCoGroup, OpDistinct, OpOrder, OpLimit:
		return true
	}
	return false
}

// SortCol is one sort key of an Order operator.
type SortCol struct {
	Index int  `json:"index"`
	Desc  bool `json:"desc,omitempty"`
}

// NestedDef is one statement inside a nested foreach block: it derives a new
// bag from a bag-valued expression over the input tuple, optionally running a
// nested operator (distinct, filter) over the bag's tuples. The resulting bag
// is appended to the input tuple under Alias before the generate expressions
// run.
type NestedDef struct {
	Alias string     `json:"alias"`
	Base  *expr.Expr `json:"base"`
	// Op is "ident", "distinct", or "filter".
	Op   string     `json:"nestedOp"`
	Pred *expr.Expr `json:"pred,omitempty"`
}

// Operator is one node of a physical plan.
type Operator struct {
	ID   int    `json:"id"`
	Kind OpKind `json:"kind"`
	// Inputs are producer operator IDs, in argument order (order matters
	// for Join/CoGroup output layout).
	Inputs []int `json:"inputs,omitempty"`

	// Path is the DFS path for Load (source) and Store (destination).
	Path string `json:"path,omitempty"`
	// Schema is the operator's output schema.
	Schema types.Schema `json:"schema"`

	// Exprs are the generate expressions of a Foreach.
	Exprs []*expr.Expr `json:"exprs,omitempty"`
	// Names are the output column aliases of a Foreach (not part of
	// operator equivalence).
	Names []string `json:"names,omitempty"`
	// Nested are the nested-block statements of a Foreach.
	Nested []NestedDef `json:"nested,omitempty"`

	// Pred is the Filter predicate.
	Pred *expr.Expr `json:"predExpr,omitempty"`

	// Keys hold one key-expression list per input for Join/CoGroup, and a
	// single list (Keys[0]) for Group. An empty Keys on Group means
	// GROUP ALL.
	Keys [][]*expr.Expr `json:"keys,omitempty"`

	// SortCols are the Order keys.
	SortCols []SortCol `json:"sortCols,omitempty"`

	// N is the Limit row count.
	N int64 `json:"n,omitempty"`

	// Injected marks Store (and their feeding Split) operators that
	// ReStore added to materialize sub-job outputs, as opposed to the
	// query's own Stores. Injected stores are costed separately (they are
	// the "overhead" the paper measures) and never count as job outputs.
	Injected bool `json:"injected,omitempty"`
}

// Clone deep-copies the operator.
func (o *Operator) Clone() *Operator {
	out := *o
	out.Inputs = append([]int(nil), o.Inputs...)
	out.Exprs = cloneExprs(o.Exprs)
	out.Names = append([]string(nil), o.Names...)
	out.Nested = make([]NestedDef, len(o.Nested))
	for i, n := range o.Nested {
		out.Nested[i] = NestedDef{Alias: n.Alias, Base: n.Base.Clone(), Op: n.Op, Pred: n.Pred.Clone()}
	}
	if o.Pred != nil {
		out.Pred = o.Pred.Clone()
	}
	out.Keys = make([][]*expr.Expr, len(o.Keys))
	for i, ks := range o.Keys {
		out.Keys[i] = cloneExprs(ks)
	}
	out.SortCols = append([]SortCol(nil), o.SortCols...)
	return &out
}

func cloneExprs(es []*expr.Expr) []*expr.Expr {
	if es == nil {
		return nil
	}
	out := make([]*expr.Expr, len(es))
	for i, e := range es {
		out[i] = e.Clone()
	}
	return out
}

// Signature returns the canonical description of the *function* the operator
// performs, excluding its input linkage and output aliases. Two operators
// are equivalent (paper §3) iff their signatures match AND their inputs are
// pairwise equivalent — the plan matcher checks the latter by simultaneous
// traversal.
//
// Store signatures deliberately exclude the destination path: a stored
// repository plan matches an input job regardless of where either writes.
func (o *Operator) Signature() string {
	var sb strings.Builder
	sb.WriteString(string(o.Kind))
	switch o.Kind {
	case OpLoad:
		// Column names are user aliases and excluded; the declared kinds
		// affect decoding and stay.
		fmt.Fprintf(&sb, "[%s](", o.Path)
		for i, f := range o.Schema.Fields {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(f.Kind.String())
		}
		sb.WriteByte(')')
	case OpStore:
		// path excluded
	case OpForeach:
		sb.WriteByte('[')
		for i, n := range o.Nested {
			if i > 0 {
				sb.WriteByte(';')
			}
			fmt.Fprintf(&sb, "%s:%s(%s", n.Alias, n.Op, n.Base.Canonical())
			if n.Pred != nil {
				fmt.Fprintf(&sb, "|%s", n.Pred.Canonical())
			}
			sb.WriteByte(')')
		}
		sb.WriteByte(']')
		sb.WriteByte('[')
		for i, e := range o.Exprs {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(e.Canonical())
		}
		sb.WriteByte(']')
	case OpFilter:
		fmt.Fprintf(&sb, "[%s]", o.Pred.Canonical())
	case OpJoin, OpCoGroup, OpGroup:
		sb.WriteByte('[')
		for i, ks := range o.Keys {
			if i > 0 {
				sb.WriteByte('|')
			}
			for j, k := range ks {
				if j > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(k.Canonical())
			}
		}
		sb.WriteByte(']')
	case OpOrder:
		sb.WriteByte('[')
		for i, sc := range o.SortCols {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "$%d", sc.Index)
			if sc.Desc {
				sb.WriteString(" desc")
			}
		}
		sb.WriteByte(']')
	case OpLimit:
		fmt.Fprintf(&sb, "[%d]", o.N)
	case OpUnion, OpDistinct, OpSplit:
		// no parameters
	}
	return sb.String()
}

// String renders the operator for diagnostics.
func (o *Operator) String() string {
	return fmt.Sprintf("#%d %s", o.ID, o.Signature())
}

// InferSchema computes the operator's output schema from its input schemas.
// It is used by the plan builder and revalidated when plans are rewritten.
func InferSchema(o *Operator, inputs []types.Schema) (types.Schema, error) {
	switch o.Kind {
	case OpLoad:
		return o.Schema, nil
	case OpStore, OpLimit:
		if len(inputs) != 1 {
			return types.Schema{}, fmt.Errorf("physical: %s wants 1 input, got %d", o.Kind, len(inputs))
		}
		return inputs[0], nil
	case OpFilter, OpDistinct, OpOrder, OpSplit:
		if len(inputs) != 1 {
			return types.Schema{}, fmt.Errorf("physical: %s wants 1 input, got %d", o.Kind, len(inputs))
		}
		return inputs[0], nil
	case OpForeach:
		if len(inputs) != 1 {
			return types.Schema{}, fmt.Errorf("physical: Foreach wants 1 input, got %d", len(inputs))
		}
		fields := make([]types.Field, len(o.Exprs))
		for i := range o.Exprs {
			name := fmt.Sprintf("f%d", i)
			if i < len(o.Names) && o.Names[i] != "" {
				name = o.Names[i]
			}
			fields[i] = types.Field{Name: name, Kind: types.KindNull}
		}
		return types.Schema{Fields: fields}, nil
	case OpUnion:
		if len(inputs) == 0 {
			return types.Schema{}, fmt.Errorf("physical: Union wants >=1 input")
		}
		return inputs[0], nil
	case OpJoin:
		if len(inputs) != 2 {
			return types.Schema{}, fmt.Errorf("physical: Join wants 2 inputs, got %d", len(inputs))
		}
		return inputs[0].Concat(inputs[1]), nil
	case OpGroup:
		if len(inputs) != 1 {
			return types.Schema{}, fmt.Errorf("physical: Group wants 1 input, got %d", len(inputs))
		}
		sub := inputs[0]
		return types.Schema{Fields: []types.Field{
			{Name: "group"},
			{Name: "$bag", Kind: types.KindBag, Sub: &sub},
		}}, nil
	case OpCoGroup:
		if len(inputs) < 2 {
			return types.Schema{}, fmt.Errorf("physical: CoGroup wants >=2 inputs, got %d", len(inputs))
		}
		fields := []types.Field{{Name: "group"}}
		for i := range inputs {
			sub := inputs[i]
			fields = append(fields, types.Field{Name: fmt.Sprintf("$bag%d", i), Kind: types.KindBag, Sub: &sub})
		}
		return types.Schema{Fields: fields}, nil
	default:
		return types.Schema{}, fmt.Errorf("physical: unknown operator kind %q", o.Kind)
	}
}

// sortedIDs returns the keys of m ascending.
func sortedIDs(m map[int]*Operator) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
